// Command uselessmiss regenerates the tables and figures of Dubois et al.,
// "The Detection and Elimination of Useless Misses in Multiprocessors"
// (ISCA 1993), and exposes the library's classifiers, protocol simulators
// and trace tooling on the command line.
//
// Usage:
//
//	uselessmiss <subcommand> [flags]
//
// Subcommands:
//
//	list       list the available workloads
//	table1     classification comparison (paper Table 1)
//	table2     benchmark characteristics (paper Table 2)
//	fig5       miss decomposition vs. block size (paper Fig. 5)
//	fig6       invalidation schedules at one block size (paper Fig. 6)
//	large      large-data-set study (paper §7)
//	traffic    memory-traffic study incl. update protocols (paper §8)
//	finite     finite-cache classification sweep (paper §8)
//	ablate     design-choice ablations (-what cu | wbwi)
//	compare    joint per-miss verdicts of the three schemes (paper §3)
//	penalty    execution-time model of the schedules (miss penalties)
//	hotspots   miss attribution by data structure (the §6 narrative)
//	phases     miss classification over computation phases
//	bench      profile-guided benchmark harness (BENCH_*.json + perf gate)
//	regen      write every experiment's report into a directory
//	selfcheck  verify the paper's structural identities on any trace
//	classify   classify one workload or trace file at one block size
//	protocols  run protocol simulators over one workload or trace file
//	serve      long-running classification service (HTTP job API)
//	load       seeded open-loop load generator against a running server
//	trace      packed trace-store tooling: pack, info, cat
//	tracegen   write a workload's trace to a file (v2 stream codec)
//	traceinfo  summarize a trace file
//
// Run 'uselessmiss <subcommand> -h' for the flags of each subcommand.
//
// Exit codes:
//
//	0    success (for 'serve': a clean graceful drain)
//	1    error
//	3    partial report: -keep-going rendered a table with FAILED cells,
//	     or a 'serve' drain hit its deadline and force-canceled jobs
//	130  interrupted: SIGINT/SIGTERM received or -timeout expired
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/experiment"
)

const (
	exitOK          = 0
	exitErr         = 1
	exitPartial     = 3
	exitInterrupted = 130
)

func main() {
	// The first SIGINT/SIGTERM cancels the run context: in-flight sweep
	// cells stop at the next batch boundary, the pool drains, and the
	// metrics report still flushes. A second signal kills the process via
	// the restored default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code := exitCode(runContext(ctx, os.Args[1:], os.Stdout))
	stop()
	os.Exit(code)
}

// exitCode prints the run error and maps it onto the exit-code scheme.
func exitCode(err error) int {
	if err != nil {
		fmt.Fprintln(os.Stderr, "uselessmiss:", err)
	}
	return exitCodeFor(err)
}

// exitCodeFor maps a run error onto the CLI's exit-code scheme:
// cancellation (signal or -timeout) outranks a partial report, which
// outranks a plain error. Pure, so the provenance manifest records the
// same status the process exits with.
func exitCodeFor(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return exitInterrupted
	case errors.Is(err, experiment.ErrPartial):
		return exitPartial
	}
	return exitErr
}
