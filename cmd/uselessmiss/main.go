// Command uselessmiss regenerates the tables and figures of Dubois et al.,
// "The Detection and Elimination of Useless Misses in Multiprocessors"
// (ISCA 1993), and exposes the library's classifiers, protocol simulators
// and trace tooling on the command line.
//
// Usage:
//
//	uselessmiss <subcommand> [flags]
//
// Subcommands:
//
//	list       list the available workloads
//	table1     classification comparison (paper Table 1)
//	table2     benchmark characteristics (paper Table 2)
//	fig5       miss decomposition vs. block size (paper Fig. 5)
//	fig6       invalidation schedules at one block size (paper Fig. 6)
//	large      large-data-set study (paper §7)
//	traffic    memory-traffic study incl. update protocols (paper §8)
//	finite     finite-cache classification sweep (paper §8)
//	ablate     design-choice ablations (-what cu | wbwi)
//	compare    joint per-miss verdicts of the three schemes (paper §3)
//	penalty    execution-time model of the schedules (miss penalties)
//	hotspots   miss attribution by data structure (the §6 narrative)
//	phases     miss classification over computation phases
//	regen      write every experiment's report into a directory
//	selfcheck  verify the paper's structural identities on any trace
//	classify   classify one workload or trace file at one block size
//	protocols  run protocol simulators over one workload or trace file
//	tracegen   write a workload's trace to a file
//	traceinfo  summarize a trace file
//
// Run 'uselessmiss <subcommand> -h' for the flags of each subcommand.
package main

import (
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "uselessmiss:", err)
		os.Exit(1)
	}
}
