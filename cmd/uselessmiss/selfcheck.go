package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workload"
)

// cmdSelfcheck verifies the paper's structural identities on any trace — a
// named workload or a user-supplied trace file — so that externally
// captured traces can be validated before being analyzed:
//
//  1. the three classifications agree on the total miss count;
//  2. ours and Eggers' agree on every cold miss;
//  3. every Eggers true-sharing miss is a PTS miss of ours;
//  4. the OTF simulator's decomposition equals the classification;
//  5. MIN's miss count equals the essential miss count, with no false
//     sharing (the paper's §2.2 headline);
//  6. MIN <= OTF <= MAX.
func cmdSelfcheck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("selfcheck", flag.ContinueOnError)
	workloadName := fs.String("workload", "", "workload name (see 'list')")
	file := fs.String("trace", "", "binary trace file (alternative to -workload)")
	block := fs.Int("block", 64, "block size in bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := mem.NewGeometry(*block)
	if err != nil {
		return err
	}

	// The trace must be replayed several times: collect files into
	// memory, regenerate workloads per pass.
	var reader func() (trace.Reader, error)
	if *workloadName != "" && *file == "" {
		w, err := workload.Get(*workloadName)
		if err != nil {
			return err
		}
		reader = func() (trace.Reader, error) { return w.Reader(), nil }
	} else {
		r, err := openTrace(*workloadName, *file)
		if err != nil {
			return err
		}
		tr, err := trace.Collect(r)
		if err != nil {
			return err
		}
		if err := tr.Validate(); err != nil {
			return err
		}
		reader = func() (trace.Reader, error) { return tr.Reader(), nil }
	}

	r, err := reader()
	if err != nil {
		return err
	}
	procs := r.NumProcs()
	ours := core.NewClassifier(procs, g)
	eggers := core.NewEggers(procs, g)
	torr := core.NewTorrellas(procs, g)
	if err := trace.Drive(r, ours, eggers, torr); err != nil {
		return err
	}
	oursC, eggersC, torrC := ours.Finish(), eggers.Finish(), torr.Finish()

	runProto := func(name string) (coherence.Result, error) {
		r, err := reader()
		if err != nil {
			return coherence.Result{}, err
		}
		return coherence.RunWith(name, r, g)
	}
	otf, err := runProto("OTF")
	if err != nil {
		return err
	}
	min, err := runProto("MIN")
	if err != nil {
		return err
	}
	max, err := runProto("MAX")
	if err != nil {
		return err
	}

	failures := 0
	check := func(name string, ok bool, detail string) {
		verdict := "ok"
		if !ok {
			verdict = "FAIL"
			failures++
		}
		fmt.Fprintf(out, "%-44s %-4s %s\n", name, verdict, detail)
	}
	check("classifications agree on the miss total",
		oursC.Total() == eggersC.Total() && oursC.Total() == torrC.Total(),
		fmt.Sprintf("ours=%d eggers=%d torrellas=%d", oursC.Total(), eggersC.Total(), torrC.Total()))
	check("cold misses identical (ours vs eggers)",
		oursC.Cold() == eggersC.Cold,
		fmt.Sprintf("%d vs %d", oursC.Cold(), eggersC.Cold))
	check("eggers TSM within ours PTS",
		eggersC.True <= oursC.PTS,
		fmt.Sprintf("%d <= %d", eggersC.True, oursC.PTS))
	check("OTF decomposition equals the classification",
		otf.Counts == oursC,
		fmt.Sprintf("%+v", otf.Counts))
	check("MIN reaches the essential miss count",
		min.Misses == oursC.Essential() && min.Counts.PFS == 0,
		fmt.Sprintf("MIN=%d essential=%d PFS=%d", min.Misses, oursC.Essential(), min.Counts.PFS))
	check("MIN <= OTF <= MAX",
		min.Misses <= otf.Misses && otf.Misses <= max.Misses,
		fmt.Sprintf("%d <= %d <= %d", min.Misses, otf.Misses, max.Misses))

	if failures > 0 {
		return fmt.Errorf("%d identity check(s) failed", failures)
	}
	fmt.Fprintln(out, "all identities hold")
	return nil
}
