package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"

	"repro/internal/perfbench"
	"repro/internal/report"
)

// perfGateError marks a perf-gate failure so main can exit non-zero with
// the regression table already rendered.
type perfGateError struct{ failures int }

func (e *perfGateError) Error() string {
	return fmt.Sprintf("perf gate failed: %d workload(s) regressed against baseline", e.failures)
}

// cmdBench runs the profile-guided benchmark harness: every registered
// workload is measured (refs/s, ns/ref, allocs/pass) and profiled into a
// per-phase breakdown, and the report is written as schema-versioned
// BENCH_<host>_<date>.json. With -baseline, the run is additionally gated:
// a readable regression table is printed and the command fails when a
// workload is slower than the baseline beyond -tolerance or a pinned path
// allocates per pass.
func cmdBench(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	output := fs.String("o", "", "output JSON path (default BENCH_<host>_<date>.json)")
	baseline := fs.String("baseline", "", "gate against this baseline BENCH_*.json (exit 1 on regression)")
	tolerance := fs.Float64("tolerance", 0.10, "allowed fractional refs/s drop against baseline")
	benchtime := fs.Duration("benchtime", 300*time.Millisecond, "wall-clock floor for one timing window per workload")
	repeats := fs.Int("repeats", 5, "timing windows per workload (the fastest wins)")
	proftime := fs.Duration("profiletime", 500*time.Millisecond, "wall-clock floor for the profiled passes per workload")
	allocPasses := fs.Int("allocpasses", 3, "passes to average allocs/pass over")
	workloads := fs.String("workloads", "", "comma-separated workload subset (default all)")
	list := fs.Bool("list", false, "list the registered workloads and exit")
	logLevel := fs.String("log", "warn", "slog level: debug, info, warn or error")
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := parseLevel(*logLevel)
	if err != nil {
		return err
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))

	if *list {
		tb := report.NewTable("workload", "pinned")
		for _, w := range perfbench.All() {
			tb.Rowf(w.Name, w.Pinned)
		}
		tb.Note("pinned workloads hard-fail the gate at >= 1 alloc/pass")
		tb.Fprint(out)
		return nil
	}

	rep, err := perfbench.Run(perfbench.Options{
		MinTime:     *benchtime,
		Repeats:     *repeats,
		ProfileTime: *proftime,
		AllocPasses: *allocPasses,
		Workloads:   splitList(*workloads),
		Logf: func(format string, args ...any) {
			slog.Info(fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		return err
	}

	path := *output
	if path == "" {
		path = perfbench.DefaultFilename(time.Now())
	}
	if err := rep.WriteFile(path); err != nil {
		return err
	}

	benchSummary(rep, out)
	fmt.Fprintf(out, "wrote %s (%d workloads)\n", path, len(rep.Workloads))

	if *baseline == "" {
		return nil
	}
	base, err := perfbench.Load(*baseline)
	if err != nil {
		return fmt.Errorf("loading baseline: %w", err)
	}
	gate, err := perfbench.Compare(base, rep, perfbench.Tolerance{Throughput: *tolerance})
	if err != nil {
		return err
	}
	gate.Fprint(out)
	if !gate.OK() {
		return &perfGateError{failures: len(gate.Failures())}
	}
	return nil
}

// benchSummary renders the fresh measurements, including the per-phase
// breakdown, as an aligned table.
func benchSummary(rep *perfbench.Report, out io.Writer) {
	headers := []string{"workload", "refs/s", "ns/ref", "allocs/pass"}
	headers = append(headers, perfbench.Phases...)
	tb := report.NewTable(headers...)
	for _, w := range rep.Workloads {
		cells := []any{
			w.Name,
			fmt.Sprintf("%.0f", w.RefsPerSec),
			fmt.Sprintf("%.2f", w.NsPerRef),
			fmt.Sprintf("%.1f", w.AllocsPerPass),
		}
		for _, ph := range perfbench.Phases {
			cells = append(cells, fmt.Sprintf("%.1f%%", w.Phases[ph]))
		}
		tb.Rowf(cells...)
	}
	tb.Notef("%s on %s (%s/%s, %d CPUs, %s)", rep.Schema, rep.Host, rep.GOOS, rep.GOARCH, rep.NumCPU, rep.GoVersion)
	tb.Fprint(out)
}
