package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"os"
	"path/filepath"

	"repro/internal/tracestore"
)

// The regen checkpoint manifest records, per artifact, the SHA-256 and size
// of the bytes regen last wrote, so an interrupted run can -resume without
// redoing finished artifacts and without ever trusting a file it cannot
// verify. The manifest itself and every artifact are written via temp file
// + rename, so an interrupt at any instant leaves either the old state or
// the new — never a torn file that -resume would mistake for complete.

const (
	manifestName    = "manifest.json"
	manifestVersion = 1
)

type manifest struct {
	Version   int                      `json:"version"`
	Quick     bool                     `json:"quick"`
	Artifacts map[string]manifestEntry `json:"artifacts"`
	// Traces checkpoints the packed trace files of a -trace-out run, keyed
	// by workload name.
	Traces map[string]manifestTrace `json:"traces,omitempty"`
}

type manifestEntry struct {
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
}

// manifestTrace records a packed trace: the format version it was written
// with and the TOC content hash (which covers every segment's CRC, so
// verifying it re-validates the whole file's index cheaply at Open).
type manifestTrace struct {
	FormatVersion int    `json:"format_version"`
	Segments      int    `json:"segments"`
	Refs          uint64 `json:"refs"`
	Bytes         int64  `json:"bytes"`
	TOCSHA256     string `json:"toc_sha256"`
}

// loadManifest reads dir's manifest. A missing file, unreadable JSON, or a
// configuration mismatch (manifest version or -quick setting) yields a
// fresh manifest: resume degrades to regenerating everything rather than
// mixing artifacts from incompatible runs.
func loadManifest(dir string, quick bool) *manifest {
	fresh := &manifest{Version: manifestVersion, Quick: quick, Artifacts: map[string]manifestEntry{}}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return fresh
	}
	var m manifest
	if json.Unmarshal(data, &m) != nil || m.Version != manifestVersion ||
		m.Quick != quick || m.Artifacts == nil {
		return fresh
	}
	if m.Traces == nil {
		m.Traces = map[string]manifestTrace{}
	}
	return &m
}

// upToDate reports whether file exists in dir with exactly the content the
// manifest recorded: a touched, truncated or corrupted artifact is
// regenerated, not trusted.
func (m *manifest) upToDate(dir, file string) bool {
	e, ok := m.Artifacts[file]
	if !ok {
		return false
	}
	f, err := os.Open(filepath.Join(dir, file))
	if err != nil {
		return false
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	return err == nil && n == e.Bytes && hex.EncodeToString(h.Sum(nil)) == e.SHA256
}

// record checkpoints one completed artifact.
func (m *manifest) record(file, sum string, n int64) {
	m.Artifacts[file] = manifestEntry{SHA256: sum, Bytes: n}
}

// recordTrace checkpoints one packed trace file.
func (m *manifest) recordTrace(name string, s tracestore.PackStats) {
	if m.Traces == nil {
		m.Traces = map[string]manifestTrace{}
	}
	m.Traces[name] = manifestTrace{
		FormatVersion: tracestore.FormatVersion,
		Segments:      s.Segments,
		Refs:          s.Refs,
		Bytes:         s.Bytes,
		TOCSHA256:     s.TOCDigest,
	}
}

// traceUpToDate reports whether the packed trace at path matches the
// checkpoint for name: same format version, and a file whose size and TOC
// digest (verified by Open along with the TOC CRC) agree with the record.
func (m *manifest) traceUpToDate(path, name string) bool {
	e, ok := m.Traces[name]
	if !ok || e.FormatVersion != tracestore.FormatVersion {
		return false
	}
	f, err := tracestore.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	return f.TOCDigest() == e.TOCSHA256 && f.Size() == e.Bytes &&
		f.NumRefs() == e.Refs && len(f.Segments()) == e.Segments
}

// save writes the manifest atomically.
func (m *manifest) save(dir string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(dir, manifestName), append(data, '\n'))
}

// atomicWrite replaces path with data via a temp file in the same
// directory and a rename.
func atomicWrite(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
