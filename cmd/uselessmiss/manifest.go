package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
)

// The regen checkpoint manifest records, per artifact, the SHA-256 and size
// of the bytes regen last wrote, so an interrupted run can -resume without
// redoing finished artifacts and without ever trusting a file it cannot
// verify. The manifest itself and every artifact are written via temp file
// + rename, so an interrupt at any instant leaves either the old state or
// the new — never a torn file that -resume would mistake for complete.

const (
	manifestName    = "manifest.json"
	manifestVersion = 1
)

type manifest struct {
	Version   int                      `json:"version"`
	Quick     bool                     `json:"quick"`
	Artifacts map[string]manifestEntry `json:"artifacts"`
}

type manifestEntry struct {
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
}

// loadManifest reads dir's manifest. A missing file, unreadable JSON, or a
// configuration mismatch (manifest version or -quick setting) yields a
// fresh manifest: resume degrades to regenerating everything rather than
// mixing artifacts from incompatible runs.
func loadManifest(dir string, quick bool) *manifest {
	fresh := &manifest{Version: manifestVersion, Quick: quick, Artifacts: map[string]manifestEntry{}}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return fresh
	}
	var m manifest
	if json.Unmarshal(data, &m) != nil || m.Version != manifestVersion ||
		m.Quick != quick || m.Artifacts == nil {
		return fresh
	}
	return &m
}

// upToDate reports whether file exists in dir with exactly the content the
// manifest recorded: a touched, truncated or corrupted artifact is
// regenerated, not trusted.
func (m *manifest) upToDate(dir, file string) bool {
	e, ok := m.Artifacts[file]
	if !ok {
		return false
	}
	f, err := os.Open(filepath.Join(dir, file))
	if err != nil {
		return false
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	return err == nil && n == e.Bytes && hex.EncodeToString(h.Sum(nil)) == e.SHA256
}

// record checkpoints one completed artifact.
func (m *manifest) record(file, sum string, n int64) {
	m.Artifacts[file] = manifestEntry{SHA256: sum, Bytes: n}
}

// save writes the manifest atomically.
func (m *manifest) save(dir string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(dir, manifestName), append(data, '\n'))
}

// atomicWrite replaces path with data via a temp file in the same
// directory and a rename.
func atomicWrite(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
