package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// cmdTrace dispatches the packed trace-store tooling: pack (generate a
// workload's trace into the segmented columnar on-disk format), info
// (header plus TOC/segment statistics) and cat (decode a packed file back
// to the v2 stream codec).
func cmdTrace(ctx context.Context, args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("trace needs a subcommand: pack, info or cat")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "pack":
		return cmdTracePack(rest, out)
	case "info":
		return cmdTracePackedInfo(rest, out)
	case "cat":
		return cmdTraceCat(ctx, rest, out)
	default:
		return fmt.Errorf("unknown trace subcommand %q (want pack, info or cat)", sub)
	}
}

func cmdTracePack(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace pack", flag.ContinueOnError)
	name := fs.String("workload", "", "workload name (see 'list')")
	output := fs.String("o", "", "output file (required; written via temp file and rename)")
	segRefs := fs.Int("segment-refs", 0, "references per segment (0 = default)")
	repeat := fs.Int("repeat", 1, "pack N back-to-back generations — the scale knob for building traces far larger than memory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *output == "" {
		return fmt.Errorf("trace pack needs -workload and -o")
	}
	if *repeat < 1 {
		return fmt.Errorf("-repeat must be at least 1")
	}
	w, err := workload.Get(*name)
	if err != nil {
		return err
	}
	stats, err := tracestore.PackFile(*output, w.RepeatReader(*repeat), tracestore.WriterOptions{SegmentRefs: *segRefs})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "packed %s ×%d → %s\n", *name, *repeat, *output)
	fmt.Fprintf(out, "  %d refs (%d data, %d side), %d segments, %d bytes (%.2f bytes/ref)\n",
		stats.Refs, stats.DataRefs, stats.SideRefs, stats.Segments, stats.Bytes,
		float64(stats.Bytes)/float64(stats.Refs))
	fmt.Fprintf(out, "  toc sha256 %s\n", stats.TOCDigest)
	return nil
}

func cmdTracePackedInfo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace info", flag.ContinueOnError)
	segRows := fs.Int("segments", 16, "segment rows to print (-1 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("trace info needs exactly one packed trace file argument")
	}
	f, err := tracestore.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()

	segs := f.Segments()
	tb := report.NewTable("property", "value")
	tb.Rowf("format version", tracestore.FormatVersion)
	tb.Rowf("processors", f.Procs())
	tb.Rowf("refs", f.NumRefs())
	tb.Rowf("data refs", f.DataRefs())
	tb.Rowf("side refs", f.NumRefs()-f.DataRefs())
	tb.Rowf("segments", len(segs))
	tb.Rowf("segment target refs", f.SegmentTargetRefs())
	tb.Rowf("file bytes", f.Size())
	if f.NumRefs() > 0 {
		tb.Rowf("bytes/ref", fmt.Sprintf("%.2f", float64(f.Size())/float64(f.NumRefs())))
	}
	tb.Rowf("toc sha256", f.TOCDigest())
	tb.Fprint(out)

	n := len(segs)
	if *segRows >= 0 && n > *segRows {
		n = *segRows
	}
	if n == 0 {
		return nil
	}
	fmt.Fprintln(out)
	st := report.NewTable("segment", "offset", "payload", "refs", "data", "side", "minaddr", "maxaddr", "crc")
	for i, s := range segs[:n] {
		st.Rowf(i, s.Offset, s.PayloadLen, s.Refs, s.DataRefs, s.SideRefs,
			fmt.Sprintf("%#x", uint64(s.MinAddr)), fmt.Sprintf("%#x", uint64(s.MaxAddr)),
			fmt.Sprintf("%08x", s.CRC))
	}
	st.Fprint(out)
	if n < len(segs) {
		fmt.Fprintf(out, "… %d more segments (rerun with -segments -1 for all)\n", len(segs)-n)
	}
	return nil
}

func cmdTraceCat(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace cat", flag.ContinueOnError)
	output := fs.String("o", "", "output file for the v2 stream (required)")
	format := fs.String("format", "binary", "output format: binary or text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("trace cat needs exactly one packed trace file argument")
	}
	if *output == "" {
		return fmt.Errorf("trace cat needs -o")
	}
	r, err := tracestore.OpenReaderContext(ctx, fs.Arg(0))
	if err != nil {
		return err
	}
	f, err := os.Create(*output)
	if err != nil {
		trace.CloseReader(r) //nolint:errcheck // error-path cleanup
		return err
	}
	switch *format {
	case "binary":
		err = trace.WriteBinary(f, r)
	case "text":
		err = trace.WriteText(f, r)
	default:
		err = fmt.Errorf("unknown format %q", *format)
		trace.CloseReader(r) //nolint:errcheck // error-path cleanup
	}
	if err != nil {
		f.Close() //nolint:errcheck // error-path cleanup
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(*output)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d bytes)\n", *output, info.Size())
	return nil
}
