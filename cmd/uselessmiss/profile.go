package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profiler carries the -cpuprofile/-memprofile flag values shared by the
// experiment subcommands and regen.
type profiler struct {
	cpu string
	mem string
}

// addProfileFlags registers the profiling flags on fs.
func addProfileFlags(fs *flag.FlagSet) *profiler {
	p := &profiler{}
	fs.StringVar(&p.cpu, "cpuprofile", "", "write a pprof CPU profile of the replay to this file")
	fs.StringVar(&p.mem, "memprofile", "", "write a pprof heap profile to this file on exit")
	return p
}

// around runs fn with profiling active: the CPU profile covers fn, and the
// heap profile is snapshotted after fn returns. The run error wins over
// profile-writing errors.
func (p *profiler) around(fn func() error) error {
	stop, err := p.start()
	if err != nil {
		return err
	}
	runErr := fn()
	if err := stop(); runErr == nil {
		runErr = err
	}
	return runErr
}

// start begins the requested profiles and returns the function that stops
// them and writes the results.
func (p *profiler) start() (stop func() error, err error) {
	var cpuFile *os.File
	if p.cpu != "" {
		cpuFile, err = os.Create(p.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = err
			}
		}
		if p.mem != "" {
			f, err := os.Create(p.mem)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return firstErr
			}
			runtime.GC() // flush dead objects so the profile shows live state
			err = pprof.WriteHeapProfile(f)
			if closeErr := f.Close(); err == nil {
				err = closeErr
			}
			if firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}
