package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/serve"
)

// startDiffServer boots an in-process serving instance for the
// differential suite and tears it down through the graceful drain.
func startDiffServer(t *testing.T) string {
	t.Helper()
	s, err := serve.New(serve.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("serve drain: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("serve drain hung")
			s.Close()
		}
	})
	base := "http://" + s.Addr()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return base
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("serve never ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// postJob submits one body and returns the response bytes, failing on any
// non-200.
func postJob(t *testing.T, url, contentType string, body []byte) []byte {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, out)
	}
	return out
}

// TestServeDifferentialSpecJobs: a JSON job spec must render byte-identical
// tables to the offline CLI across the replay configurations a spec can
// reach — sweep parallelism, per-cell sharding and fusion.
func TestServeDifferentialSpecJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("differential grid is not short")
	}
	base := startDiffServer(t)

	t.Run("classify", func(t *testing.T) {
		want := runOut(t, "classify", "-workload", "LU32", "-block", "32")
		got := postJob(t, base+"/v1/jobs", "application/json",
			[]byte(`{"experiment":"classify","workload":"LU32","block":32}`))
		if want != string(got) {
			t.Errorf("classify spec diverges from CLI:\n--- want\n%s\n--- got\n%s", want, got)
		}
	})

	want := runOut(t, "fig5", "-workloads", "LU32")
	for _, tc := range []struct {
		name string
		spec string
	}{
		{"defaults", `{"experiment":"fig5","workloads":["LU32"]}`},
		{"j1_shards1", `{"experiment":"fig5","workloads":["LU32"],"parallelism":1,"shards":1}`},
		{"j8_shards8", `{"experiment":"fig5","workloads":["LU32"],"parallelism":8,"shards":8}`},
		{"unfused", `{"experiment":"fig5","workloads":["LU32"],"no_fuse":true}`},
		{"unfused_j8", `{"experiment":"fig5","workloads":["LU32"],"no_fuse":true,"parallelism":8,"shards":4}`},
	} {
		t.Run("fig5_"+tc.name, func(t *testing.T) {
			got := postJob(t, base+"/v1/jobs", "application/json", []byte(tc.spec))
			if want != string(got) {
				t.Errorf("fig5 spec %s diverges from CLI:\n--- want\n%s\n--- got\n%s", tc.name, want, got)
			}
		})
	}
}

// TestServeDifferentialUploadedTraces: uploading the trace bytes
// themselves — both the packed store format and the v2 stream codec — must
// classify byte-identically to the CLI reading the same file.
func TestServeDifferentialUploadedTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("uploads full traces")
	}
	base := startDiffServer(t)

	t.Run("packed", func(t *testing.T) {
		path := packLU32(t)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		want := runOut(t, "classify", "-trace", path, "-block", "64")
		got := postJob(t, base+"/v1/jobs?block=64&scheme=all", "application/octet-stream", raw)
		if want != string(got) {
			t.Errorf("packed upload diverges from CLI:\n--- want\n%s\n--- got\n%s", want, got)
		}
	})

	t.Run("codec", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "LU32.bin")
		runOut(t, "tracegen", "-workload", "LU32", "-o", path)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range []string{"all", "ours"} {
			want := runOut(t, "classify", "-trace", path, "-block", "64", "-scheme", scheme)
			got := postJob(t, fmt.Sprintf("%s/v1/jobs?block=64&scheme=%s", base, scheme), "application/octet-stream", raw)
			if want != string(got) {
				t.Errorf("codec upload (%s) diverges from CLI:\n--- want\n%s\n--- got\n%s", scheme, want, got)
			}
		}
	})
}
