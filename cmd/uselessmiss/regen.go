package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/experiment"
	"repro/internal/obs/span"
	"repro/internal/sweep"
	"repro/internal/timing"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// cmdRegen regenerates every paper artifact (and the extension studies)
// into one file per experiment under the output directory — the one-shot
// reproduction entry point. Progress is checkpointed in a content-hashed
// manifest after every artifact, so an interrupted run (SIGINT or
// -timeout) can continue with -resume instead of starting over.
func cmdRegen(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("regen", flag.ContinueOnError)
	dir := fs.String("o", "results", "output directory")
	quick := fs.Bool("quick", false, "substitute small data sets in the heavy runs")
	par := fs.Int("j", 0, "worker goroutines for the sweep grids (0 = GOMAXPROCS, 1 = serial)")
	shards := fs.Int("shards", 0, "block shards per cell (0 or 1 = serial; output is identical at any value)")
	keepGoing := fs.Bool("keep-going", false, "render partial artifacts with failed sweep cells marked FAILED instead of aborting (exit code 3)")
	resume := fs.Bool("resume", false, "skip artifacts whose manifest checkpoint matches the file on disk")
	traceOut := fs.String("trace-out", "", "pack every workload's trace into this directory first, then replay all artifacts out-of-core from the packed files")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration, like an interrupt (0 = no limit)")
	prof := addProfileFlags(fs)
	// -trace-out means "pack traces here" for regen, so the span trace
	// registers as -span-out instead.
	in := addObsFlagsNamed(fs, "span-out")
	if err := in.parse(fs, args); err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	cfg := regenConfig{
		dir: *dir, quick: *quick, par: *par, shards: *shards,
		keepGoing: *keepGoing, resume: *resume, traceOut: *traceOut,
		onTraces: func(s *experiment.TraceFileSet) { in.traceManifest = s.Manifest },
	}
	return prof.around(in.around(func() error { return regenAll(ctx, cfg, out) }))
}

// regenConfig carries regen's flag values into the replay loop.
type regenConfig struct {
	dir              string
	quick, keepGoing bool
	resume           bool
	par, shards      int
	traceOut         string
	traces           *experiment.TraceFileSet
	// onTraces, when set, is told about the packed trace set once it is
	// opened (the provenance manifest lists it).
	onTraces func(*experiment.TraceFileSet)
}

// regenArtifact is one entry of the regeneration list: the output file name
// and the experiment driver that renders it.
type regenArtifact struct {
	file string
	run  func(experiment.Options) error
}

// regenArtifacts is the full reproduction: every paper artifact and
// extension study, in replay order. A package-level var so the manifest
// tests can substitute a cheap synthetic list.
var regenArtifacts = []regenArtifact{
	{"table2.txt", experiment.Table2},
	{"table1.txt", experiment.Table1},
	{"fig5.txt", experiment.Fig5},
	{"fig6a.txt", func(o experiment.Options) error { return experiment.Fig6(o, 64) }},
	{"fig6b.txt", func(o experiment.Options) error { return experiment.Fig6(o, 1024) }},
	{"large.txt", experiment.Large},
	{"traffic.txt", experiment.Traffic},
	{"finite.txt", func(o experiment.Options) error { return experiment.FiniteSweep(o, 64, 4) }},
	{"compare.txt", func(o experiment.Options) error { return experiment.Compare(o, 64) }},
	{"penalty.txt", func(o experiment.Options) error {
		return experiment.Penalty(o, 1024, timing.DefaultModel())
	}},
	{"hotspots.txt", func(o experiment.Options) error { return experiment.Hotspots(o, 64) }},
	{"phases.txt", func(o experiment.Options) error { return experiment.Phases(o, 64, 10) }},
	{"ablate_cu.txt", func(o experiment.Options) error { return experiment.AblationCU(o, 64) }},
	{"ablate_wbwi.txt", func(o experiment.Options) error { return experiment.AblationWBWI(o, 1024) }},
	{"ablate_sector.txt", func(o experiment.Options) error { return experiment.AblationSector(o, 1024) }},
}

// regenAll replays every artifact; split out so profiling brackets exactly
// the replay work. Each artifact is written to a temp file and renamed into
// place only when its driver succeeds, then checkpointed in the manifest —
// an interrupt can never leave a truncated artifact that looks complete.
func regenAll(ctx context.Context, cfg regenConfig, out io.Writer) error {
	m := loadManifest(cfg.dir, cfg.quick)
	if cfg.traceOut != "" {
		files, err := packTraces(ctx, cfg, m, out)
		if err != nil {
			return err
		}
		defer files.Close() //nolint:errcheck // read-only handles
		cfg.traces = files
		if cfg.onTraces != nil {
			cfg.onTraces(files)
		}
	}
	// One trace cache for the whole run: each workload's trace is
	// materialized once and replayed by every artifact that wants it (when
	// -trace-out is set, the cache streams from the packed files instead).
	cache := experiment.NewTraceCache()
	partial := false
	for _, a := range regenArtifacts {
		if err := ctx.Err(); err != nil {
			return err
		}
		path := filepath.Join(cfg.dir, a.file)
		if cfg.resume && m.upToDate(cfg.dir, a.file) {
			fmt.Fprintf(out, "skipped %s (up to date)\n", path)
			continue
		}
		sp := span.Root(span.OpArtifact, span.Fields{Note: a.file})
		sum, n, err := writeArtifact(ctx, path, cfg, cache, a.run)
		sp.End()
		if errors.Is(err, experiment.ErrPartial) {
			// The partial report is on disk for inspection but is not
			// checkpointed: -resume regenerates it.
			partial = true
			fmt.Fprintf(out, "wrote %s (PARTIAL)\n", path)
			continue
		}
		if err != nil {
			return fmt.Errorf("%s: %w", a.file, err)
		}
		m.record(a.file, sum, n)
		if err := m.save(cfg.dir); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", path)
	}
	if partial {
		return fmt.Errorf("regen: %w", experiment.ErrPartial)
	}
	return nil
}

// packTraces packs every workload the run will replay (the small data sets
// under -quick, all registered workloads otherwise) into cfg.traceOut, one
// file per workload via temp file + rename, checkpointing each in the
// manifest. With -resume, a file whose size and TOC digest match its
// checkpoint is kept. The opened set is returned for the artifact replays.
func packTraces(ctx context.Context, cfg regenConfig, m *manifest, out io.Writer) (*experiment.TraceFileSet, error) {
	if err := os.MkdirAll(cfg.traceOut, 0o755); err != nil {
		return nil, err
	}
	names := workload.Names()
	if cfg.quick {
		names = workload.SmallSet()
	}
	specs := make(map[string]string, len(names))
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		path := filepath.Join(cfg.traceOut, name+".umt")
		specs[name] = path
		if cfg.resume && m.traceUpToDate(path, name) {
			fmt.Fprintf(out, "skipped %s (up to date)\n", path)
			continue
		}
		w, err := workload.Get(name)
		if err != nil {
			return nil, err
		}
		sp := span.Root(span.OpPack, span.Fields{Workload: name})
		stats, err := w.PackFile(path, tracestore.WriterOptions{})
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("pack %s: %w", name, err)
		}
		m.recordTrace(name, stats)
		if err := m.save(cfg.dir); err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "packed %s (%d refs, %d bytes)\n", path, stats.Refs, stats.Bytes)
	}
	return experiment.OpenTraceFiles(specs)
}

// writeArtifact renders one artifact into a temp file (hashing the bytes as
// they stream) and renames it into place unless the driver failed outright.
// A keep-going partial report is renamed too — the table is valid, just
// marked — and the ErrPartial comes back so the caller can skip the
// checkpoint. Any other error removes the temp file and leaves the final
// path untouched.
func writeArtifact(ctx context.Context, path string, cfg regenConfig,
	cache *sweep.TraceCache, run func(experiment.Options) error) (sum string, n int64, err error) {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-")
	if err != nil {
		return "", 0, err
	}
	h := sha256.New()
	count := &countingWriter{w: io.MultiWriter(tmp, h)}
	o := experiment.Options{
		Out: count, Quick: cfg.quick, Parallelism: cfg.par, Shards: cfg.shards,
		Cache: cache, Ctx: ctx, KeepGoing: cfg.keepGoing, TraceFiles: cfg.traces,
	}
	runErr := run(o)
	closeErr := tmp.Close()
	if runErr != nil && !errors.Is(runErr, experiment.ErrPartial) {
		os.Remove(tmp.Name())
		return "", 0, runErr
	}
	if closeErr != nil {
		os.Remove(tmp.Name())
		return "", 0, closeErr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), count.n, runErr
}

// countingWriter counts the bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
