package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/experiment"
	"repro/internal/timing"
)

// cmdRegen regenerates every paper artifact (and the extension studies)
// into one file per experiment under the output directory — the one-shot
// reproduction entry point.
func cmdRegen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("regen", flag.ContinueOnError)
	dir := fs.String("o", "results", "output directory")
	quick := fs.Bool("quick", false, "substitute small data sets in the heavy runs")
	par := fs.Int("j", 0, "worker goroutines for the sweep grids (0 = GOMAXPROCS, 1 = serial)")
	shards := fs.Int("shards", 0, "block shards per cell (0 or 1 = serial; output is identical at any value)")
	prof := addProfileFlags(fs)
	in := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	return prof.around(in.around(func() error { return regenAll(*dir, *quick, *par, *shards, out) }))
}

// regenAll replays every artifact; split out so profiling brackets exactly
// the replay work.
func regenAll(dir string, quick bool, par, shards int, out io.Writer) error {

	artifacts := []struct {
		file string
		run  func(experiment.Options) error
	}{
		{"table2.txt", experiment.Table2},
		{"table1.txt", experiment.Table1},
		{"fig5.txt", experiment.Fig5},
		{"fig6a.txt", func(o experiment.Options) error { return experiment.Fig6(o, 64) }},
		{"fig6b.txt", func(o experiment.Options) error { return experiment.Fig6(o, 1024) }},
		{"large.txt", experiment.Large},
		{"traffic.txt", experiment.Traffic},
		{"finite.txt", func(o experiment.Options) error { return experiment.FiniteSweep(o, 64, 4) }},
		{"compare.txt", func(o experiment.Options) error { return experiment.Compare(o, 64) }},
		{"penalty.txt", func(o experiment.Options) error {
			return experiment.Penalty(o, 1024, timing.DefaultModel())
		}},
		{"hotspots.txt", func(o experiment.Options) error { return experiment.Hotspots(o, 64) }},
		{"phases.txt", func(o experiment.Options) error { return experiment.Phases(o, 64, 10) }},
		{"ablate_cu.txt", func(o experiment.Options) error { return experiment.AblationCU(o, 64) }},
		{"ablate_wbwi.txt", func(o experiment.Options) error { return experiment.AblationWBWI(o, 1024) }},
		{"ablate_sector.txt", func(o experiment.Options) error { return experiment.AblationSector(o, 1024) }},
	}
	// One trace cache for the whole run: each workload's trace is
	// materialized once and replayed by every artifact that wants it.
	cache := experiment.NewTraceCache()
	for _, a := range artifacts {
		path := filepath.Join(dir, a.file)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		o := experiment.Options{Out: f, Quick: quick, Parallelism: par, Shards: shards, Cache: cache}
		err = a.run(o)
		if closeErr := f.Close(); err == nil {
			err = closeErr
		}
		if err != nil {
			return fmt.Errorf("%s: %w", a.file, err)
		}
		fmt.Fprintf(out, "wrote %s\n", path)
	}
	return nil
}
