package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/obs/span"
)

// instruments carries the observability flag values shared by the
// experiment subcommands and regen: where to write the run-metrics JSON,
// whether to render the live progress line, the debug-server address, the
// slog level, and the flight-recorder outputs — the span trace, the span
// log, the streaming metrics snapshots and the provenance manifest.
type instruments struct {
	metricsPath     string
	metricsInterval time.Duration
	progress        bool
	debugAddr       string
	logLevel        string
	traceOutPath    string
	spanLogPath     string
	provenancePath  string

	// argv is the subcommand name plus its raw arguments, captured by
	// parse for the provenance manifest.
	argv []string
	// traceManifest, when set, lists the packed trace files the run
	// replayed from, for the provenance manifest.
	traceManifest func() []experiment.TraceFileInfo
}

// addObsFlags registers the observability flags on fs.
func addObsFlags(fs *flag.FlagSet) *instruments { return addObsFlagsNamed(fs, "trace-out") }

// addObsFlagsNamed is addObsFlags with a custom name for the span-trace
// flag: regen's -trace-out already means "pack the workload traces here",
// so it registers the span trace under -span-out instead.
func addObsFlagsNamed(fs *flag.FlagSet, traceOutFlag string) *instruments {
	in := &instruments{}
	fs.StringVar(&in.metricsPath, "metrics", "", "write the run-metrics JSON report to this file (with -metrics-interval: a JSONL snapshot stream)")
	fs.DurationVar(&in.metricsInterval, "metrics-interval", 0, "stream metrics-delta snapshots as JSONL at this period, to the -metrics file or stderr")
	fs.BoolVar(&in.progress, "progress", false, "render a live progress line on stderr")
	fs.StringVar(&in.debugAddr, "debug-addr", "", "serve /metrics, /healthz, /debug/vars and /debug/pprof on this address (e.g. :6060)")
	fs.StringVar(&in.logLevel, "log", "warn", "slog level: debug, info, warn or error")
	fs.StringVar(&in.traceOutPath, traceOutFlag, "", "record execution spans and write a Chrome trace_event JSON trace (load in Perfetto) to this file")
	fs.StringVar(&in.spanLogPath, "span-log", "", "record execution spans and write them as compact JSONL to this file")
	fs.StringVar(&in.provenancePath, "provenance", "", "write a run-provenance manifest (argv, environment, inputs, outcome) as JSON to this file")
	return in
}

// parse captures the subcommand's argv for the provenance manifest, then
// parses the flags.
func (in *instruments) parse(fs *flag.FlagSet, args []string) error {
	in.argv = append([]string{fs.Name()}, args...)
	return fs.Parse(args)
}

// parseLevel maps the -log flag value to a slog level.
func parseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
	}
}

// around wraps fn with the instrumentation lifecycle: slog setup, the
// optional debug server, span recording, progress line and snapshot
// stream, the run timer, and — after fn returns — the metrics report, the
// span exports and the provenance manifest. Everything it prints goes to
// stderr or to the flag-named files, never to the experiment's Out writer,
// so report bytes are untouched. The run error wins over reporting errors.
func (in *instruments) around(fn func() error) func() error {
	return func() error {
		level, err := parseLevel(in.logLevel)
		if err != nil {
			return err
		}
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))

		if in.debugAddr != "" {
			srv, err := obs.ServeDebug(in.debugAddr)
			if err != nil {
				return err
			}
			defer srv.Close() //nolint:errcheck // best-effort shutdown
			slog.Info("debug server listening", "addr", srv.Addr())
		}

		if in.traceOutPath != "" || in.spanLogPath != "" {
			span.StartRecording(0)
		}

		start := time.Now()
		before := obs.Default.Report()
		timer := obs.StartRunTimer(obs.Default)
		var prog *obs.Progress
		if in.progress {
			prog = obs.StartProgress(os.Stderr, obs.Default, 0)
		}
		snap, snapClose, err := in.startSnapshots(before)
		if err != nil {
			return err
		}

		runErr := fn()

		elapsed := timer.Stop()
		if prog != nil {
			prog.Stop()
		}
		if snap != nil {
			err := snap.Stop()
			if closeErr := snapClose(); err == nil {
				err = closeErr
			}
			if err != nil && runErr == nil {
				runErr = fmt.Errorf("writing metrics snapshots: %w", err)
			}
		}
		delta := obs.Delta(before, obs.Default.Report())
		slog.Info("run finished", "elapsed", elapsed, "report", delta.String())

		if in.metricsPath != "" && in.metricsInterval <= 0 {
			if err := in.writeReport(delta); err != nil && runErr == nil {
				runErr = err
			}
		}
		if err := in.exportSpans(); err != nil && runErr == nil {
			runErr = err
		}
		if in.provenancePath != "" {
			if err := in.writeProvenance(start, elapsed, delta, runErr); err != nil && runErr == nil {
				runErr = err
			}
		}
		return runErr
	}
}

// startSnapshots starts the -metrics-interval JSONL snapshot stream. The
// stream goes to the -metrics file when one is given, to stderr otherwise.
func (in *instruments) startSnapshots(base obs.RunReport) (*obs.Snapshotter, func() error, error) {
	if in.metricsInterval <= 0 {
		return nil, nil, nil
	}
	w := io.Writer(os.Stderr)
	closeFn := func() error { return nil }
	if in.metricsPath != "" {
		f, err := os.Create(in.metricsPath)
		if err != nil {
			return nil, nil, err
		}
		w, closeFn = f, f.Close
	}
	return obs.StartSnapshots(w, obs.Default, in.metricsInterval, base), closeFn, nil
}

// exportSpans stops the recorder and writes the trace_event and JSONL
// exports. Every pipeline goroutine (sweep workers, demux pump, shard
// consumers, readahead decoders) is joined before the experiment returns,
// so all tracks are released by the time this runs.
func (in *instruments) exportSpans() error {
	if in.traceOutPath == "" && in.spanLogPath == "" {
		return nil
	}
	snap := span.StopRecording()
	if snap == nil {
		return nil
	}
	if in.traceOutPath != "" {
		if err := writeFileWith(in.traceOutPath, snap.WriteTraceEvent); err != nil {
			return fmt.Errorf("writing span trace: %w", err)
		}
		slog.Info("span trace written", "path", in.traceOutPath, "spans", snap.Summary())
	}
	if in.spanLogPath != "" {
		if err := writeFileWith(in.spanLogPath, snap.WriteJSONL); err != nil {
			return fmt.Errorf("writing span log: %w", err)
		}
		slog.Info("span log written", "path", in.spanLogPath)
	}
	return nil
}

// writeFileWith creates path and streams write's output into it.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	return err
}

// writeReport writes the delta report to the -metrics file.
func (in *instruments) writeReport(rep obs.RunReport) error {
	err := writeFileWith(in.metricsPath, rep.WriteJSON)
	if err != nil {
		return fmt.Errorf("writing metrics report: %w", err)
	}
	slog.Debug("metrics report written", "path", in.metricsPath)
	return nil
}
