package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/obs"
)

// instruments carries the observability flag values shared by the
// experiment subcommands and regen: where to write the run-metrics JSON,
// whether to render the live progress line, the debug-server address and
// the slog level.
type instruments struct {
	metricsPath string
	progress    bool
	debugAddr   string
	logLevel    string
}

// addObsFlags registers the observability flags on fs.
func addObsFlags(fs *flag.FlagSet) *instruments {
	in := &instruments{}
	fs.StringVar(&in.metricsPath, "metrics", "", "write the run-metrics JSON report to this file")
	fs.BoolVar(&in.progress, "progress", false, "render a live progress line on stderr")
	fs.StringVar(&in.debugAddr, "debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :6060)")
	fs.StringVar(&in.logLevel, "log", "warn", "slog level: debug, info, warn or error")
	return in
}

// parseLevel maps the -log flag value to a slog level.
func parseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
	}
}

// around wraps fn with the instrumentation lifecycle: slog setup, the
// optional debug server and progress line, the run timer, and — after fn
// returns — the snapshot-delta metrics report. Everything it prints goes
// to stderr or to -metrics' file, never to the experiment's Out writer, so
// report bytes are untouched. The run error wins over reporting errors.
func (in *instruments) around(fn func() error) func() error {
	return func() error {
		level, err := parseLevel(in.logLevel)
		if err != nil {
			return err
		}
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))

		if in.debugAddr != "" {
			srv, err := obs.ServeDebug(in.debugAddr)
			if err != nil {
				return err
			}
			defer srv.Close() //nolint:errcheck // best-effort shutdown
			slog.Info("debug server listening", "addr", srv.Addr())
		}

		before := obs.Default.Report()
		timer := obs.StartRunTimer(obs.Default)
		var prog *obs.Progress
		if in.progress {
			prog = obs.StartProgress(os.Stderr, obs.Default, 0)
		}

		runErr := fn()

		elapsed := timer.Stop()
		if prog != nil {
			prog.Stop()
		}
		delta := obs.Delta(before, obs.Default.Report())
		slog.Info("run finished", "elapsed", elapsed, "report", delta.String())

		if in.metricsPath != "" {
			if err := in.writeReport(delta); err != nil && runErr == nil {
				runErr = err
			}
		}
		return runErr
	}
}

// writeReport writes the delta report to the -metrics file.
func (in *instruments) writeReport(rep obs.RunReport) error {
	f, err := os.Create(in.metricsPath)
	if err != nil {
		return err
	}
	err = rep.WriteJSON(f)
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		return fmt.Errorf("writing metrics report: %w", err)
	}
	slog.Debug("metrics report written", "path", in.metricsPath)
	return nil
}
