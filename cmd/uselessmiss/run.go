package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/timing"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// run dispatches a subcommand under a background context; it is the
// testable entry point for callers that never cancel.
func run(args []string, out io.Writer) error {
	return runContext(context.Background(), args, out)
}

// runContext dispatches a subcommand under ctx — the CLI's signal context,
// tightened further by each subcommand's -timeout flag. Cancelling ctx
// aborts in-flight sweep cells at batch granularity and surfaces
// context.Canceled (or DeadlineExceeded) to the caller.
func runContext(ctx context.Context, args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (try 'list', 'table1', 'table2', 'fig5', 'fig6', 'large', 'traffic', 'finite', 'ablate', 'compare', 'penalty', 'hotspots', 'phases', 'bench', 'regen', 'selfcheck', 'classify', 'protocols', 'serve', 'load', 'trace', 'tracegen', 'traceinfo')")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "list":
		return cmdList(out)
	case "table1":
		return cmdExperiment(ctx, rest, out, "table1")
	case "table2":
		return cmdExperiment(ctx, rest, out, "table2")
	case "fig5":
		return cmdFig5(ctx, rest, out)
	case "fig6":
		return cmdFig6(ctx, rest, out)
	case "large":
		return cmdExperiment(ctx, rest, out, "large")
	case "traffic":
		return cmdExperiment(ctx, rest, out, "traffic")
	case "finite":
		return cmdFinite(ctx, rest, out)
	case "ablate":
		return cmdAblate(ctx, rest, out)
	case "compare":
		return cmdCompare(ctx, rest, out)
	case "penalty":
		return cmdPenalty(ctx, rest, out)
	case "hotspots":
		return cmdHotspots(ctx, rest, out)
	case "phases":
		return cmdPhases(ctx, rest, out)
	case "bench":
		return cmdBench(rest, out)
	case "regen":
		return cmdRegen(ctx, rest, out)
	case "selfcheck":
		return cmdSelfcheck(rest, out)
	case "classify":
		return cmdClassify(ctx, rest, out)
	case "serve":
		return cmdServe(ctx, rest, out)
	case "load":
		return cmdLoad(ctx, rest, out)
	case "protocols":
		return cmdProtocols(ctx, rest, out)
	case "trace":
		return cmdTrace(ctx, rest, out)
	case "tracegen":
		return cmdTracegen(rest, out)
	case "traceinfo":
		return cmdTraceinfo(ctx, rest, out)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func cmdList(out io.Writer) error {
	tb := report.NewTable("workload", "procs", "data(KB)", "description")
	for _, name := range workload.Names() {
		w, err := workload.Get(name)
		if err != nil {
			return err
		}
		tb.Rowf(w.Name, w.Procs, fmt.Sprintf("%.0f", float64(w.DataBytes)/1024), w.Description)
	}
	tb.Fprint(out)
	return nil
}

// splitList parses a comma-separated flag value.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad block size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// expFlags carries the flag values shared by the experiment subcommands.
type expFlags struct {
	quick, csv, keepGoing *bool
	fused                 *bool
	workloads, protocols  *string
	traceFiles            *string
	par, shards           *int
	timeout               *time.Duration
	prof                  *profiler
	in                    *instruments
}

// experimentFlags registers the flags shared by the experiment subcommands.
func experimentFlags(fs *flag.FlagSet) *expFlags {
	ef := &expFlags{}
	ef.quick = fs.Bool("quick", false, "use the small data sets for the heavy runs")
	ef.csv = fs.Bool("csv", false, "emit CSV instead of aligned tables")
	ef.workloads = fs.String("workloads", "", "comma-separated workload list (default: the experiment's own)")
	ef.protocols = fs.String("protocols", "", "comma-separated protocol list (fig6/large only)")
	ef.par = fs.Int("j", 0, "worker goroutines for the sweep grid (0 = GOMAXPROCS, 1 = serial)")
	ef.shards = fs.Int("shards", 0, "block shards per cell (0 or 1 = serial; output is identical at any value)")
	ef.keepGoing = fs.Bool("keep-going", false, "render a partial report with failed sweep cells marked FAILED instead of aborting (exit code 3)")
	ef.fused = fs.Bool("fused", true, "replay each workload once per grid row, feeding all block sizes and schemes from one pass (false = one replay per cell; output is identical)")
	ef.traceFiles = fs.String("trace-file", "", "replay workloads from packed trace files: comma-separated NAME=PATH bindings (see 'trace pack'); bound workloads stream out-of-core instead of regenerating")
	ef.timeout = fs.Duration("timeout", 0, "abort the run after this duration, like an interrupt (0 = no limit)")
	ef.prof = addProfileFlags(fs)
	ef.in = addObsFlags(fs)
	return ef
}

// options builds the experiment Options for one invocation, deriving the
// run context from ctx and -timeout and opening any -trace-file bindings.
// The caller must defer the cleanup so a timeout timer or an open trace
// file never outlives its run.
func (ef *expFlags) options(ctx context.Context, out io.Writer) (experiment.Options, func(), error) {
	specs, err := parseTraceFileSpecs(*ef.traceFiles)
	if err != nil {
		return experiment.Options{}, nil, err
	}
	var files *experiment.TraceFileSet
	if len(specs) > 0 {
		if files, err = experiment.OpenTraceFiles(specs); err != nil {
			return experiment.Options{}, nil, err
		}
	}
	ctx, cancel := ef.withTimeout(ctx)
	cleanup := func() {
		cancel()
		files.Close() //nolint:errcheck // read-only handles; nothing to lose
	}
	ef.in.traceManifest = files.Manifest
	return experiment.Options{
		Out: out, Quick: *ef.quick, CSV: *ef.csv,
		Workloads:   splitList(*ef.workloads),
		Protocols:   splitList(*ef.protocols),
		Parallelism: *ef.par,
		Shards:      *ef.shards,
		Ctx:         ctx,
		KeepGoing:   *ef.keepGoing,
		NoFuse:      !*ef.fused,
		TraceFiles:  files,
	}, cleanup, nil
}

// parseTraceFileSpecs splits a -trace-file value ("NAME=PATH,NAME=PATH")
// into its bindings.
func parseTraceFileSpecs(s string) (map[string]string, error) {
	parts := splitList(s)
	if len(parts) == 0 {
		return nil, nil
	}
	specs := make(map[string]string, len(parts))
	for _, part := range parts {
		name, path, ok := strings.Cut(part, "=")
		if !ok || name == "" || path == "" {
			return nil, fmt.Errorf("bad -trace-file binding %q (want NAME=PATH)", part)
		}
		if _, dup := specs[name]; dup {
			return nil, fmt.Errorf("duplicate -trace-file binding for %s", name)
		}
		specs[name] = path
	}
	return specs, nil
}

// withTimeout tightens ctx with the -timeout flag. Expiry behaves exactly
// like an interrupt: the sweep drains, the metrics report flushes (the obs
// wrapper runs after the experiment returns) and the CLI exits 130.
func (ef *expFlags) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if *ef.timeout > 0 {
		return context.WithTimeout(ctx, *ef.timeout)
	}
	return ctx, func() {}
}

// around wraps fn in the profiling and instrumentation lifecycles.
func (ef *expFlags) around(fn func() error) error {
	return ef.prof.around(ef.in.around(fn))
}

func cmdExperiment(ctx context.Context, args []string, out io.Writer, which string) error {
	fs := flag.NewFlagSet(which, flag.ContinueOnError)
	ef := experimentFlags(fs)
	if err := ef.in.parse(fs, args); err != nil {
		return err
	}
	o, cleanup, err := ef.options(ctx, out)
	if err != nil {
		return err
	}
	defer cleanup()
	return ef.around(func() error {
		switch which {
		case "table1":
			return experiment.Table1(o)
		case "table2":
			return experiment.Table2(o)
		case "large":
			return experiment.Large(o)
		case "traffic":
			return experiment.Traffic(o)
		default:
			return fmt.Errorf("internal: unknown experiment %q", which)
		}
	})
}

func cmdCompare(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	ef := experimentFlags(fs)
	block := fs.Int("block", 64, "block size in bytes")
	if err := ef.in.parse(fs, args); err != nil {
		return err
	}
	o, cleanup, err := ef.options(ctx, out)
	if err != nil {
		return err
	}
	defer cleanup()
	return ef.around(func() error { return experiment.Compare(o, *block) })
}

func cmdPhases(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("phases", flag.ContinueOnError)
	ef := experimentFlags(fs)
	block := fs.Int("block", 64, "block size in bytes")
	buckets := fs.Int("buckets", 10, "maximum rows per workload")
	if err := ef.in.parse(fs, args); err != nil {
		return err
	}
	o, cleanup, err := ef.options(ctx, out)
	if err != nil {
		return err
	}
	defer cleanup()
	return ef.around(func() error { return experiment.Phases(o, *block, *buckets) })
}

func cmdHotspots(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hotspots", flag.ContinueOnError)
	ef := experimentFlags(fs)
	block := fs.Int("block", 64, "block size in bytes")
	if err := ef.in.parse(fs, args); err != nil {
		return err
	}
	o, cleanup, err := ef.options(ctx, out)
	if err != nil {
		return err
	}
	defer cleanup()
	return ef.around(func() error { return experiment.Hotspots(o, *block) })
}

func cmdPenalty(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("penalty", flag.ContinueOnError)
	ef := experimentFlags(fs)
	block := fs.Int("block", 64, "block size in bytes")
	missPenalty := fs.Uint64("miss-penalty", 30, "blocking cycles per miss")
	syncCycles := fs.Uint64("sync-cycles", 3, "cycles per acquire/release")
	if err := ef.in.parse(fs, args); err != nil {
		return err
	}
	o, cleanup, err := ef.options(ctx, out)
	if err != nil {
		return err
	}
	defer cleanup()
	m := timing.Model{RefCycles: 1, MissPenalty: *missPenalty, SyncCycles: *syncCycles}
	return ef.around(func() error { return experiment.Penalty(o, *block, m) })
}

func cmdFinite(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("finite", flag.ContinueOnError)
	ef := experimentFlags(fs)
	block := fs.Int("block", 64, "block size in bytes")
	assoc := fs.Int("assoc", 4, "cache associativity")
	if err := ef.in.parse(fs, args); err != nil {
		return err
	}
	o, cleanup, err := ef.options(ctx, out)
	if err != nil {
		return err
	}
	defer cleanup()
	return ef.around(func() error { return experiment.FiniteSweep(o, *block, *assoc) })
}

func cmdAblate(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ablate", flag.ContinueOnError)
	ef := experimentFlags(fs)
	what := fs.String("what", "cu", "ablation to run: cu (competitive-update threshold), wbwi (invalidation buffer) or sector (coherence grain)")
	block := fs.Int("block", 64, "block size in bytes")
	if err := ef.in.parse(fs, args); err != nil {
		return err
	}
	o, cleanup, err := ef.options(ctx, out)
	if err != nil {
		return err
	}
	defer cleanup()
	return ef.around(func() error {
		switch *what {
		case "cu":
			return experiment.AblationCU(o, *block)
		case "wbwi":
			return experiment.AblationWBWI(o, *block)
		case "sector":
			return experiment.AblationSector(o, *block)
		default:
			return fmt.Errorf("unknown ablation %q (want cu, wbwi or sector)", *what)
		}
	})
}

func cmdFig5(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fig5", flag.ContinueOnError)
	ef := experimentFlags(fs)
	blocks := fs.String("blocks", "", "comma-separated block sizes in bytes (default 4..2048)")
	if err := ef.in.parse(fs, args); err != nil {
		return err
	}
	blockList, err := splitInts(*blocks)
	if err != nil {
		return err
	}
	o, cleanup, err := ef.options(ctx, out)
	if err != nil {
		return err
	}
	defer cleanup()
	o.Blocks = blockList
	return ef.around(func() error { return experiment.Fig5(o) })
}

func cmdFig6(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fig6", flag.ContinueOnError)
	ef := experimentFlags(fs)
	block := fs.Int("block", 64, "block size in bytes (64 for Fig. 6a, 1024 for Fig. 6b)")
	if err := ef.in.parse(fs, args); err != nil {
		return err
	}
	o, cleanup, err := ef.options(ctx, out)
	if err != nil {
		return err
	}
	defer cleanup()
	return ef.around(func() error { return experiment.Fig6(o, *block) })
}

// openTrace returns a reader for either a named workload or a trace file.
// Files are sniffed by magic: packed trace-store files (see 'trace pack')
// replay out-of-core; anything else decodes as the v2 stream codec.
func openTrace(workloadName, file string) (trace.Reader, error) {
	switch {
	case workloadName != "" && file != "":
		return nil, fmt.Errorf("give either -workload or -trace, not both")
	case workloadName != "":
		w, err := workload.Get(workloadName)
		if err != nil {
			return nil, err
		}
		return w.Reader(), nil
	case file != "":
		packed, err := isPackedTrace(file)
		if err != nil {
			return nil, err
		}
		if packed {
			return tracestore.OpenReader(file)
		}
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		dec, err := trace.NewDecoder(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		return &closingReader{Decoder: dec, c: f}, nil
	default:
		return nil, fmt.Errorf("need -workload NAME or -trace FILE")
	}
}

// isPackedTrace reports whether the file starts with the trace-store magic.
func isPackedTrace(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var magic [len(tracestore.Magic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return false, nil // shorter than any valid packed file: let the codec report it
	}
	return string(magic[:]) == tracestore.Magic, nil
}

// closingReader closes the underlying file when the stream is closed.
type closingReader struct {
	*trace.Decoder
	c io.Closer
}

func (r *closingReader) Close() error { return r.c.Close() }

func cmdClassify(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	workloadName := fs.String("workload", "", "workload name (see 'list')")
	file := fs.String("trace", "", "binary trace file (alternative to -workload)")
	block := fs.Int("block", 64, "block size in bytes")
	scheme := fs.String("scheme", "all", "classification scheme: ours, eggers, torrellas or all")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r, err := openTrace(*workloadName, *file)
	if err != nil {
		return err
	}
	return experiment.ClassifyReader(experiment.Options{Out: out, Ctx: ctx}, r, *block, *scheme)
}

func pctf(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

func cmdProtocols(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("protocols", flag.ContinueOnError)
	workloadName := fs.String("workload", "", "workload name (see 'list')")
	file := fs.String("trace", "", "binary trace file (alternative to -workload)")
	block := fs.Int("block", 64, "block size in bytes")
	protocols := fs.String("protocols", "", "comma-separated protocol subset (default all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := mem.NewGeometry(*block)
	if err != nil {
		return err
	}
	protos := splitList(*protocols)
	if len(protos) == 0 {
		protos = coherence.Protocols
	}
	r, err := openTrace(*workloadName, *file)
	if err != nil {
		return err
	}
	sims := make([]coherence.Simulator, len(protos))
	consumers := make([]trace.Consumer, len(protos))
	for i, name := range protos {
		sim, err := coherence.New(name, r.NumProcs(), g)
		if err != nil {
			trace.CloseReader(r) //nolint:errcheck // error path cleanup
			return err
		}
		sims[i] = sim
		consumers[i] = sim
	}
	if err := trace.DriveContext(ctx, r, consumers...); err != nil {
		return err
	}
	tb := report.NewTable("protocol", "misses", "miss%", "TRUE%", "COLD%", "FALSE%", "invalidations", "upgrades", "writethroughs")
	for _, sim := range sims {
		res := sim.Finish()
		c := res.Counts
		tb.Rowf(res.Protocol, res.Misses,
			pctf(res.MissRate()),
			pctf(core.Rate(c.PTS, res.DataRefs)),
			pctf(core.Rate(c.Cold(), res.DataRefs)),
			pctf(core.Rate(c.PFS, res.DataRefs)),
			res.Invalidations, res.Upgrades, res.WriteThroughs)
	}
	tb.Fprint(out)
	return nil
}

func cmdTracegen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	workloadName := fs.String("workload", "", "workload name (see 'list')")
	output := fs.String("o", "", "output file (required)")
	format := fs.String("format", "binary", "output format: binary or text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workloadName == "" || *output == "" {
		return fmt.Errorf("tracegen needs -workload and -o")
	}
	w, err := workload.Get(*workloadName)
	if err != nil {
		return err
	}
	f, err := os.Create(*output)
	if err != nil {
		return err
	}
	defer f.Close()
	switch *format {
	case "binary":
		err = trace.WriteBinary(f, w.Reader())
	case "text":
		err = trace.WriteText(f, w.Reader())
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(*output)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d bytes)\n", *output, info.Size())
	return nil
}

func cmdTraceinfo(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("traceinfo", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("traceinfo needs exactly one trace file argument")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	dec, err := trace.NewDecoder(f)
	if err != nil {
		return err
	}
	s := trace.NewStats(dec.NumProcs(), true)
	if err := trace.DriveContext(ctx, dec, s); err != nil {
		return err
	}
	tb := report.NewTable("property", "value")
	tb.Rowf("processors", dec.NumProcs())
	tb.Rowf("loads", s.Loads)
	tb.Rowf("stores", s.Stores)
	tb.Rowf("acquires", s.Acquires)
	tb.Rowf("releases", s.Releases)
	tb.Rowf("data refs", s.DataRefs())
	tb.Rowf("data set bytes", s.DataSetBytes())
	tb.Rowf("modeled speedup", fmt.Sprintf("%.1f", s.Speedup()))
	tb.Fprint(out)
	return nil
}
