//go:build race

package main

// raceEnabled reports whether this test binary was built with the race
// detector; tests whose replay volume is prohibitive under race
// instrumentation consult it to skip.
const raceEnabled = true
