package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"repro/internal/obs"
)

// perfettoTrace is the trace_event JSON container -trace-out writes.
type perfettoTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		ID   uint64         `json:"id"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// loadPerfetto parses a -trace-out file.
func loadPerfetto(t *testing.T, path string) perfettoTrace {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	var tr perfettoTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return tr
}

// TestTraceOutPerfettoValid drives a sharded, fused, file-backed fig5 run
// with the span recorder on and checks the exported trace is a loadable
// trace_event stream covering every pipeline layer: the experiment root,
// the sweep cells, the shard consumers, the fused level sweeps and the
// tracestore segment reads.
func TestTraceOutPerfettoValid(t *testing.T) {
	packed := packLU32(t)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	// -j 1 keeps the whole shard budget for the cell, so the run spawns
	// real shard consumers even on a single-CPU machine.
	runOut(t, "fig5", "-workloads", "LU32", "-j", "1", "-shards", "2",
		"-trace-file", "LU32="+packed, "-trace-out", tracePath)

	tr := loadPerfetto(t, tracePath)
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	threads := map[int]string{}
	ops := map[string]int{}
	flows := map[string][]uint64{}
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				name, _ := ev.Args["name"].(string)
				threads[ev.Tid] = name
			}
		case "X":
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("span %s has negative ts/dur: ts=%v dur=%v", ev.Name, ev.Ts, ev.Dur)
			}
			ops[ev.Name]++
		case "s", "f":
			flows[ev.Ph] = append(flows[ev.Ph], ev.ID)
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}

	// Every span event must land on a named track.
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			if _, ok := threads[ev.Tid]; !ok {
				t.Fatalf("span %s on tid %d has no thread_name metadata", ev.Name, ev.Tid)
			}
		}
	}

	// The acceptance bar: at least these four instrumented layers show up
	// in one run (plus the driver root and the replay cells).
	for _, want := range []string{
		"experiment", "cell.replay", "sweep.cell", "shard.consume",
		"fused.level_sweep", "tracestore.segment_io",
	} {
		if ops[want] == 0 {
			t.Errorf("no %q spans in trace (ops seen: %v)", want, ops)
		}
	}

	// Level sweeps carry their grid attributes.
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" && ev.Name == "fused.level_sweep" {
			if _, ok := ev.Args["block"]; !ok {
				t.Errorf("fused.level_sweep span missing block attr: %v", ev.Args)
			}
			break
		}
	}
}

// TestTraceOutFlowEvents checks the demux-sharded (non-fused) pipeline
// draws producer→consumer flow arrows: every flow-out id must be matched
// by a flow-in on a shard consumer track.
func TestTraceOutFlowEvents(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	runOut(t, "fig5", "-workloads", "JACOBI", "-blocks", "64",
		"-j", "1", "-shards", "4", "-fused=false", "-trace-out", tracePath)

	tr := loadPerfetto(t, tracePath)
	outs, ins := map[uint64]bool{}, map[uint64]bool{}
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "s":
			outs[ev.ID] = true
		case "f":
			ins[ev.ID] = true
		}
	}
	if len(outs) == 0 {
		t.Fatal("no flow-out events in demux-sharded trace")
	}
	for id := range outs {
		if !ins[id] {
			t.Errorf("flow id %d has an out endpoint but no in", id)
		}
	}
}

// TestTraceOutGoldenMatrix proves recording is an observer: with
// -trace-out on, fig5's stdout stays byte-identical to the committed
// golden at every combination of sweep parallelism, per-cell sharding and
// fusion.
func TestTraceOutGoldenMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix is not short")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "fig5.txt"))
	if err != nil {
		t.Fatalf("missing golden: %v", err)
	}
	base := []string{"fig5", "-workloads", "LU32,JACOBI", "-blocks", "8,64,512"}
	for _, j := range []string{"1", "8"} {
		for _, shards := range []string{"1", "8"} {
			for _, fused := range []string{"true", "false"} {
				name := fmt.Sprintf("j%s_shards%s_fused%s", j, shards, fused)
				t.Run(name, func(t *testing.T) {
					tracePath := filepath.Join(t.TempDir(), "trace.json")
					got := runOut(t, append(append([]string{}, base...),
						"-j", j, "-shards", shards, "-fused="+fused,
						"-trace-out", tracePath)...)
					if got != string(want) {
						t.Errorf("fig5 output with -trace-out differs from golden at %s", name)
					}
					if st, err := os.Stat(tracePath); err != nil || st.Size() == 0 {
						t.Errorf("trace file missing or empty at %s: %v", name, err)
					}
				})
			}
		}
	}
}

// TestSpanLogJSONL checks the -span-log export: a schema header line whose
// span count matches the body, then one well-formed JSON object per span.
func TestSpanLogJSONL(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "spans.jsonl")
	runOut(t, "fig5", "-workloads", "JACOBI", "-blocks", "64",
		"-j", "2", "-span-log", logPath)

	f, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("span log is empty")
	}
	var hdr struct {
		Schema string `json:"schema"`
		Tracks int    `json:"tracks"`
		Spans  int    `json:"spans"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("bad header line: %v", err)
	}
	if hdr.Schema != "uselessmiss/spans/v1" {
		t.Fatalf("header schema = %q", hdr.Schema)
	}
	body := 0
	for sc.Scan() {
		var line struct {
			Track string `json:"track"`
			Op    string `json:"op"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad span line %d: %v", body+1, err)
		}
		if line.Track == "" || line.Op == "" {
			t.Fatalf("span line %d missing track/op: %s", body+1, sc.Text())
		}
		body++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if body != hdr.Spans {
		t.Errorf("header says %d spans, body has %d", hdr.Spans, body)
	}
	if hdr.Tracks < 2 {
		t.Errorf("expected at least the main track and a worker track, got %d", hdr.Tracks)
	}
}

// TestProvenanceManifest checks the -provenance manifest: the captured
// argv, toolchain identity, trace-file digests, outcome and metrics delta.
func TestProvenanceManifest(t *testing.T) {
	packed := packLU32(t)
	provPath := filepath.Join(t.TempDir(), "prov.json")
	runOut(t, "fig5", "-workloads", "LU32", "-blocks", "64", "-shards", "2",
		"-trace-file", "LU32="+packed, "-provenance", provPath)

	data, err := os.ReadFile(provPath)
	if err != nil {
		t.Fatal(err)
	}
	var m provenanceManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Schema != ProvenanceSchema {
		t.Errorf("schema = %q, want %q", m.Schema, ProvenanceSchema)
	}
	if len(m.Argv) == 0 || m.Argv[0] != "fig5" {
		t.Errorf("argv = %v, want to start with fig5", m.Argv)
	}
	if !strings.Contains(strings.Join(m.Argv, " "), "LU32="+packed) {
		t.Errorf("argv does not carry the trace-file binding: %v", m.Argv)
	}
	if m.GoVersion != runtime.Version() {
		t.Errorf("go_version = %q, want %q", m.GoVersion, runtime.Version())
	}
	if m.GOMAXPROCS < 1 {
		t.Errorf("gomaxprocs = %d", m.GOMAXPROCS)
	}
	if m.ExitStatus != 0 || m.Error != "" {
		t.Errorf("exit_status = %d, error = %q; want a clean run", m.ExitStatus, m.Error)
	}
	if m.WallSeconds <= 0 {
		t.Errorf("wall_seconds = %v", m.WallSeconds)
	}
	if len(m.TraceFiles) != 1 || m.TraceFiles[0].Workload != "LU32" {
		t.Fatalf("trace_files = %+v, want the LU32 binding", m.TraceFiles)
	}
	tf := m.TraceFiles[0]
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(tf.TOCSHA256) {
		t.Errorf("toc_sha256 = %q, want 64 hex chars", tf.TOCSHA256)
	}
	if tf.Refs == 0 || tf.Bytes == 0 || tf.Path != packed {
		t.Errorf("trace file entry incomplete: %+v", tf)
	}
	if m.Metrics.Deterministic.Counters[obs.NameDriveRefs] == 0 {
		t.Errorf("metrics delta records no replayed refs: %v", m.Metrics.Deterministic.Counters)
	}
}

// TestProvenanceManifestOnError checks the manifest still lands when the
// run fails, carrying the mapped exit status and the error text.
func TestProvenanceManifestOnError(t *testing.T) {
	provPath := filepath.Join(t.TempDir(), "prov.json")
	var sb strings.Builder
	err := run([]string{"fig5", "-workloads", "NOSUCH", "-provenance", provPath}, &sb)
	if err == nil {
		t.Fatal("expected an unknown-workload error")
	}
	data, readErr := os.ReadFile(provPath)
	if readErr != nil {
		t.Fatalf("manifest not written on failure: %v", readErr)
	}
	var m provenanceManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.ExitStatus != exitErr {
		t.Errorf("exit_status = %d, want %d", m.ExitStatus, exitErr)
	}
	if m.Error == "" {
		t.Error("manifest has no error text for a failed run")
	}
}

// TestMetricsIntervalStream checks the -metrics-interval JSONL stream:
// dense sequence numbers, exactly one final line (the last), and deltas
// that telescope to the run's own totals.
func TestMetricsIntervalStream(t *testing.T) {
	metricsPath := filepath.Join(t.TempDir(), "metrics.jsonl")
	runOut(t, "fig5", "-workloads", "JACOBI", "-blocks", "8,64,512",
		"-j", "2", "-metrics", metricsPath, "-metrics-interval", "1ms")

	f, err := os.Open(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var snaps []obs.MetricsSnapshot
	for sc.Scan() {
		var s obs.MetricsSnapshot
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad snapshot line %d: %v", len(snaps)+1, err)
		}
		snaps = append(snaps, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshot lines")
	}
	var refs uint64
	for i, s := range snaps {
		if s.Schema != obs.SnapshotSchema {
			t.Fatalf("line %d schema = %q", i+1, s.Schema)
		}
		if s.Seq != i {
			t.Fatalf("line %d seq = %d, want dense numbering", i+1, s.Seq)
		}
		if s.Final != (i == len(snaps)-1) {
			t.Fatalf("line %d final = %v", i+1, s.Final)
		}
		refs += s.Delta.Deterministic.Counters[obs.NameDriveRefs]
	}
	if refs == 0 {
		t.Error("telescoped deltas record no replayed refs")
	}
}
