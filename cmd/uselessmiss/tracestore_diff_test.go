package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// packLU32 packs one LU32 trace through the CLI and returns its path.
func packLU32(t *testing.T, extra ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "LU32.umt")
	args := append([]string{"trace", "pack", "-workload", "LU32", "-o", path}, extra...)
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("trace pack: %v", err)
	}
	return path
}

// runOut runs one CLI invocation and returns its rendered output.
func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("%v: %v", args, err)
	}
	return sb.String()
}

// TestTracestoreDifferentialFig5 is the out-of-core equivalence suite for
// the classification grid: replaying Fig. 5 from a packed trace file must
// be byte-for-byte identical to the in-memory replay at every combination
// of sweep parallelism, per-cell sharding and fusion. The file-backed fused
// path opens segment-skipping shard readers, so this also proves the skip
// transparent end to end.
func TestTracestoreDifferentialFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("differential grid is not short")
	}
	packed := packLU32(t)
	want := runOut(t, "fig5", "-workloads", "LU32")
	for _, j := range []string{"1", "8"} {
		for _, shards := range []string{"1", "8"} {
			for _, fused := range []string{"true", "false"} {
				name := fmt.Sprintf("j%s_shards%s_fused%s", j, shards, fused)
				t.Run(name, func(t *testing.T) {
					got := runOut(t, "fig5", "-workloads", "LU32",
						"-j", j, "-shards", shards, "-fused="+fused,
						"-trace-file", "LU32="+packed)
					if got != want {
						t.Errorf("file-backed fig5 diverges from in-memory at %s:\n--- want\n%s\n--- got\n%s", name, want, got)
					}
				})
			}
		}
	}
}

// TestTracestoreDifferentialTable1 runs the same check over the Table 1
// driver (three classification schemes off one fused pass).
func TestTracestoreDifferentialTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("differential grid is not short")
	}
	packed := packLU32(t)
	want := runOut(t, "table1", "-quick", "-workloads", "LU32")
	for _, shards := range []string{"1", "8"} {
		for _, fused := range []string{"true", "false"} {
			name := fmt.Sprintf("shards%s_fused%s", shards, fused)
			t.Run(name, func(t *testing.T) {
				got := runOut(t, "table1", "-quick", "-workloads", "LU32",
					"-j", "8", "-shards", shards, "-fused="+fused,
					"-trace-file", "LU32="+packed)
				if got != want {
					t.Errorf("file-backed table1 diverges from in-memory at %s:\n--- want\n%s\n--- got\n%s", name, want, got)
				}
			})
		}
	}
}

// TestTracestoreDifferentialSegmentBoundaries re-runs the fig5 comparison
// against files packed with adversarial segment sizes: tiny power-of-two
// segments, a prime segment size (sync records straddle every boundary
// shape), and a single-segment file.
func TestTracestoreDifferentialSegmentBoundaries(t *testing.T) {
	if testing.Short() {
		t.Skip("differential grid is not short")
	}
	want := runOut(t, "fig5", "-workloads", "LU32")
	for _, segRefs := range []string{"512", "769", "4194304"} {
		t.Run("segrefs"+segRefs, func(t *testing.T) {
			packed := packLU32(t, "-segment-refs", segRefs)
			got := runOut(t, "fig5", "-workloads", "LU32",
				"-j", "4", "-shards", "4", "-trace-file", "LU32="+packed)
			if got != want {
				t.Errorf("segment-refs=%s replay diverges from in-memory", segRefs)
			}
		})
	}
}

// TestTraceCLIRoundtrip exercises pack → info → cat: the decoded v2 stream
// must match tracegen's direct encoding byte for byte.
func TestTraceCLIRoundtrip(t *testing.T) {
	dir := t.TempDir()
	packed := filepath.Join(dir, "j.umt")
	v2 := filepath.Join(dir, "j.v2")
	cat := filepath.Join(dir, "j.cat")
	runOut(t, "trace", "pack", "-workload", "LU32", "-o", packed)
	runOut(t, "tracegen", "-workload", "LU32", "-o", v2)
	runOut(t, "trace", "cat", "-o", cat, packed)
	a, err := os.ReadFile(v2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(cat)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("trace cat output differs from tracegen (%d vs %d bytes)", len(a), len(b))
	}
	info := runOut(t, "trace", "info", packed)
	for _, want := range []string{"format version", "processors", "segments", "toc sha256"} {
		if !strings.Contains(info, want) {
			t.Errorf("trace info missing %q:\n%s", want, info)
		}
	}
}

// TestTraceFileFlagErrors covers the -trace-file flag's failure modes.
func TestTraceFileFlagErrors(t *testing.T) {
	var sb strings.Builder
	packed := packLU32(t)
	cases := [][]string{
		{"fig5", "-trace-file", "LU32"},                                              // no '='
		{"fig5", "-trace-file", "LU32=" + packed + ",LU32=" + packed},                // duplicate binding
		{"fig5", "-trace-file", "NOPE=" + packed},                                    // unknown workload
		{"fig5", "-trace-file", "LU32=" + filepath.Join(t.TempDir(), "missing.umt")}, // no such file
	}
	for _, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("%v: error expected", args)
		}
	}
}
