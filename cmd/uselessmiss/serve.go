package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"

	"repro/internal/fault"
	"repro/internal/load"
	"repro/internal/serve"
)

// cmdServe runs the long-lived classification service. It blocks until
// the signal context cancels, then drains: a clean drain exits 0, a drain
// that had to force-cancel jobs exits 3 (partial results — the jobs that
// were killed got typed "canceled" errors).
func cmdServe(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var cfg serve.Config
	fs.StringVar(&cfg.Addr, "addr", "127.0.0.1:8095", "listen address")
	fs.IntVar(&cfg.Workers, "workers", 0, "job worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.QueueDepth, "queue", 64, "max admitted-but-unfinished jobs before 429")
	fs.IntVar(&cfg.TenantCap, "tenant-cap", 16, "max in-flight jobs per tenant")
	fs.DurationVar(&cfg.JobTimeout, "job-timeout", 2*time.Minute, "default per-job deadline")
	fs.DurationVar(&cfg.MaxJobTimeout, "max-job-timeout", 10*time.Minute, "cap on spec-requested deadlines")
	fs.DurationVar(&cfg.DrainTimeout, "drain-timeout", 15*time.Second, "graceful drain bound; jobs past it are force-canceled")
	fs.IntVar(&cfg.RetryMax, "retries", 2, "retries after a transient trace fault")
	fs.DurationVar(&cfg.RetryBase, "retry-base", 50*time.Millisecond, "retry backoff unit (doubled per attempt, jittered)")
	fs.IntVar(&cfg.BreakerThreshold, "breaker-threshold", 5, "consecutive failures that quarantine a tenant/workload")
	fs.DurationVar(&cfg.BreakerCooldown, "breaker-cooldown", 10*time.Second, "quarantine length before a half-open probe")
	fs.Int64Var(&cfg.MaxBodyBytes, "max-body", 256<<20, "max uploaded trace body bytes")
	fs.IntVar(&cfg.MaxParallelism, "max-par", 0, "clamp on spec parallelism/shards (0 = 4x GOMAXPROCS)")
	fs.Int64Var(&cfg.Seed, "seed", 1, "seed for retry jitter and the chaos plan")
	chaosSpec := fs.String("chaos", "", "fault plan armed on job attempts, e.g. 'error:5000@0.2,stall:1000:5ms@0.5' (testing)")
	logLevel := fs.String("log", "warn", "slog level: debug, info, warn or error")
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := parseLevel(*logLevel)
	if err != nil {
		return err
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))
	if *chaosSpec != "" {
		plan, err := fault.ParsePlan(*chaosSpec)
		if err != nil {
			return err
		}
		cfg.Chaos = plan
	}

	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "uselessmiss serve: listening on http://%s (POST /v1/jobs, GET /v1/stats, /metrics, /readyz)\n", s.Addr())
	if cfg.Chaos != nil {
		fmt.Fprintf(out, "uselessmiss serve: chaos armed: %s (seed %d)\n", cfg.Chaos, cfg.Seed)
	}
	err = s.Run(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "uselessmiss serve: drained clean")
	return nil
}

// cmdLoad drives a running server with seeded open-loop load and reports
// sustained jobs/s, refs/s and latency quantiles.
func cmdLoad(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	var cfg load.Config
	fs.StringVar(&cfg.BaseURL, "url", "http://127.0.0.1:8095", "server base URL")
	fs.StringVar(&cfg.Mode, "mode", "constant", "offered-rate shape: constant, step or burst")
	fs.Float64Var(&cfg.RPS, "rps", 10, "offered arrival rate, jobs/s")
	fs.Float64Var(&cfg.StepRPS, "step-rps", 0, "step mode: RPS added per period (0 = rps)")
	fs.DurationVar(&cfg.Period, "period", 0, "step/burst period (0 = duration/4)")
	fs.Float64Var(&cfg.Duty, "duty", 0.5, "burst mode: on fraction of each period")
	fs.DurationVar(&cfg.Duration, "duration", 10*time.Second, "how long to offer load")
	fs.StringVar(&cfg.Dist, "dist", "exponential", "inter-arrival distribution: exponential, uniform or equidistant")
	fs.Int64Var(&cfg.Seed, "seed", 1, "arrival-process seed")
	fs.IntVar(&cfg.MaxInflight, "inflight", 512, "client-side cap on concurrent requests")
	spec := fs.String("spec", "", "JSON job spec to submit (default: a classify job for -workload)")
	workloadName := fs.String("workload", "JACOBI", "workload for the default classify spec")
	experimentName := fs.String("experiment", "classify", "experiment for the default spec")
	block := fs.Int("block", 64, "block size for the default spec")
	scheme := fs.String("scheme", "all", "scheme for the default classify spec")
	quick := fs.Bool("quick", true, "quick mode for the default spec")
	tenants := fs.Int("tenants", 1, "spread load across this many synthetic tenants")
	csv := fs.Bool("csv", false, "emit CSV instead of tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	bodies, err := loadBodies(*spec, *experimentName, *workloadName, *block, *scheme, *quick, *tenants)
	if err != nil {
		return err
	}
	cfg.Bodies = bodies

	rep, err := load.Run(ctx, cfg)
	if err != nil {
		return err
	}
	return rep.Fprint(out, *csv)
}

// loadBodies builds the round-robin job bodies: the explicit -spec JSON,
// or a spec assembled from the flags, fanned out over the synthetic
// tenants.
func loadBodies(spec, experiment, workload string, block int, scheme string, quick bool, tenants int) ([][]byte, error) {
	if tenants < 1 {
		tenants = 1
	}
	var base map[string]any
	if spec != "" {
		if err := json.Unmarshal([]byte(spec), &base); err != nil {
			return nil, fmt.Errorf("bad -spec: %w", err)
		}
	} else {
		base = map[string]any{"experiment": experiment, "block": block}
		if experiment == "classify" {
			base["workload"] = workload
			base["scheme"] = scheme
		} else {
			base["quick"] = quick
			base["workloads"] = []string{workload}
		}
	}
	bodies := make([][]byte, 0, tenants)
	for i := 0; i < tenants; i++ {
		if tenants > 1 {
			base["tenant"] = fmt.Sprintf("tenant-%d", i)
		}
		b, err := json.Marshal(base)
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, b)
	}
	return bodies, nil
}
