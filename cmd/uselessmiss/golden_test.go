package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current output")

// goldenCases fixes each subcommand's arguments (minus -j). The workload and
// block subsets keep a full run under a few seconds; the traces themselves
// are deterministic generators, so the bytes are stable across platforms.
var goldenCases = []struct {
	name string
	args []string
}{
	{"table1", []string{"table1", "-quick"}},
	{"table2", []string{"table2", "-quick"}},
	{"fig5", []string{"fig5", "-workloads", "LU32,JACOBI", "-blocks", "8,64,512"}},
	{"fig6a", []string{"fig6", "-workloads", "LU32,JACOBI", "-block", "64"}},
	{"compare", []string{"compare", "-workloads", "LU32,JACOBI", "-block", "64"}},
	{"penalty", []string{"penalty", "-workloads", "LU32,JACOBI", "-block", "64"}},
}

// runGolden executes one subcommand with the given extra flags appended.
func runGolden(t *testing.T, args []string, extra ...string) string {
	t.Helper()
	var sb strings.Builder
	full := append(append([]string{}, args...), extra...)
	if err := run(full, &sb); err != nil {
		t.Fatalf("%v: %v", full, err)
	}
	return sb.String()
}

// TestGoldenOutputs pins each experiment's exact stdout and proves the
// parallel pipeline is deterministic end to end: the serial run (-j 1), the
// parallel sweep (-j 8), and the block-sharded pipeline (-shards 1 and
// -shards 8) must all match the committed golden byte for byte. Refresh
// with:
//
//	go test ./cmd/uselessmiss -run TestGoldenOutputs -update
func TestGoldenOutputs(t *testing.T) {
	variants := []struct {
		name  string
		extra []string
	}{
		{"-j 8", []string{"-j", "8"}},
		{"-shards 1", []string{"-j", "1", "-shards", "1"}},
		{"-shards 8", []string{"-j", "1", "-shards", "8"}},
	}
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", tc.name+".txt")
			serial := runGolden(t, tc.args, "-j", "1")

			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(serial), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if serial != string(want) {
				t.Errorf("-j 1 output differs from golden %s:\n got:\n%s\nwant:\n%s",
					path, serial, want)
			}
			for _, v := range variants {
				if got := runGolden(t, tc.args, v.extra...); got != string(want) {
					t.Errorf("%s output differs from golden %s:\n got:\n%s\nwant:\n%s",
						v.name, path, got, want)
				}
			}
		})
	}
}
