package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
)

// ProvenanceSchema identifies the run-provenance manifest layout.
const ProvenanceSchema = "uselessmiss/provenance/v1"

// provenanceManifest records where a run's numbers came from: the exact
// invocation, the toolchain and host shape, the packed trace inputs (with
// their content digests), the outcome and the metrics delta. One file per
// run, written by -provenance after the run finishes.
type provenanceManifest struct {
	Schema      string   `json:"schema"`
	Argv        []string `json:"argv"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	StartTime   string   `json:"start_time"`
	WallSeconds float64  `json:"wall_seconds"`
	RefsPerSec  float64  `json:"refs_per_sec"`
	// ExitStatus is the exit code the run error maps to (0 ok, 1 error,
	// 3 partial, 130 interrupted); Error holds the message when non-zero.
	ExitStatus int    `json:"exit_status"`
	Error      string `json:"error,omitempty"`
	// TraceFiles lists the packed trace inputs with their TOC digests;
	// empty when the workloads were regenerated in-process.
	TraceFiles []experiment.TraceFileInfo `json:"trace_files,omitempty"`
	// Metrics is the run's metrics delta (what -metrics reports).
	Metrics obs.RunReport `json:"metrics"`
}

// writeProvenance renders the provenance manifest for a finished run.
func (in *instruments) writeProvenance(start time.Time, elapsed time.Duration, delta obs.RunReport, runErr error) error {
	m := provenanceManifest{
		Schema:      ProvenanceSchema,
		Argv:        in.argv,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		StartTime:   start.UTC().Format(time.RFC3339Nano),
		WallSeconds: elapsed.Seconds(),
		RefsPerSec:  delta.Timings.Gauges[obs.NameRunRefsPerSec],
		ExitStatus:  exitCodeFor(runErr),
		Metrics:     delta,
	}
	if runErr != nil {
		m.Error = runErr.Error()
	}
	if in.traceManifest != nil {
		m.TraceFiles = in.traceManifest()
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(in.provenancePath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing provenance manifest: %w", err)
	}
	slog.Debug("provenance manifest written", "path", in.provenancePath)
	return nil
}
