package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/perfbench"
)

// benchArgs keeps CLI bench test runs fast; the structure assertions do
// not depend on measurement quality.
func benchArgs(extra ...string) []string {
	args := []string{"bench", "-benchtime", "5ms", "-profiletime", "10ms", "-allocpasses", "1"}
	return append(args, extra...)
}

// TestBenchWritesReport: the bench subcommand writes a schema-versioned
// BENCH JSON with a per-phase breakdown for at least six workloads, and
// the summary table reaches stdout.
func TestBenchWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	var sb strings.Builder
	if err := run(benchArgs("-o", path), &sb); err != nil {
		t.Fatalf("bench: %v", err)
	}
	rep, err := perfbench.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workloads) < 6 {
		t.Fatalf("report has %d workloads, want >= 6", len(rep.Workloads))
	}
	for _, w := range rep.Workloads {
		if len(w.Phases) != len(perfbench.Phases) {
			t.Errorf("%s: phase breakdown has %d phases, want %d", w.Name, len(w.Phases), len(perfbench.Phases))
		}
	}
	out := sb.String()
	for _, want := range []string{"classify/appendixA", "refs/s", "wrote "} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
}

// TestBenchGatePassesAgainstFreshBaseline: a run gated against a baseline
// saved moments earlier passes (same host, same binary).
func TestBenchGatePassesAgainstFreshBaseline(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH_base.json")
	var sb strings.Builder
	// Single stable pinned workload: short-run throughput of the heavier
	// workloads is too noisy to gate at ±10% in a unit test; appendixA is
	// measured over identical in-memory passes.
	wl := "-workloads=classify/appendixA"
	if err := run(benchArgs("-o", base, wl), &sb); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	err := run(benchArgs("-o", filepath.Join(dir, "BENCH_new.json"),
		"-baseline", base, "-tolerance", "0.8", wl), &sb)
	if err != nil {
		t.Fatalf("gate against fresh baseline failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "perf gate passed") {
		t.Errorf("output missing pass note:\n%s", sb.String())
	}
}

// TestBenchGateFailsAgainstDoctoredBaseline: inflating the baseline
// throughput 100x must fail the gate with a regression table and a
// non-nil error (exit code 1 at the CLI).
func TestBenchGateFailsAgainstDoctoredBaseline(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH_base.json")
	var sb strings.Builder
	wl := "-workloads=classify/appendixA"
	if err := run(benchArgs("-o", base, wl), &sb); err != nil {
		t.Fatal(err)
	}

	doctorBaseline(t, base, 100)

	sb.Reset()
	err := run(benchArgs("-o", filepath.Join(dir, "BENCH_new.json"), "-baseline", base, wl), &sb)
	if err == nil {
		t.Fatalf("gate passed against doctored baseline:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "perf gate failed") {
		t.Errorf("error = %v, want a perf-gate failure", err)
	}
	out := sb.String()
	for _, want := range []string{"PERF GATE FAILED", "slow", "classify/appendixA"} {
		if !strings.Contains(out, want) {
			t.Errorf("regression table missing %q:\n%s", want, out)
		}
	}
}

// doctorBaseline multiplies every refs/s figure in a BENCH json by factor.
func doctorBaseline(t *testing.T, path string, factor float64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep perfbench.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	for i := range rep.Workloads {
		rep.Workloads[i].RefsPerSec *= factor
	}
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestBenchUnknownWorkload: a bad -workloads value is an error that names
// the offender.
func TestBenchUnknownWorkload(t *testing.T) {
	var sb strings.Builder
	err := run(benchArgs("-o", filepath.Join(t.TempDir(), "b.json"), "-workloads", "no/such"), &sb)
	if err == nil || !strings.Contains(err.Error(), "no/such") {
		t.Fatalf("err = %v, want unknown-workload error", err)
	}
}

// TestBenchMissingBaselineFile: gating against a nonexistent baseline is a
// load error, not a silent pass.
func TestBenchMissingBaselineFile(t *testing.T) {
	var sb strings.Builder
	err := run(benchArgs("-o", filepath.Join(t.TempDir(), "b.json"),
		"-baseline", "/nonexistent/BENCH.json", "-workloads", "classify/appendixA"), &sb)
	if err == nil || !strings.Contains(err.Error(), "baseline") {
		t.Fatalf("err = %v, want baseline load error", err)
	}
}

// TestBenchList: -list renders the registry without running anything.
func TestBenchList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"bench", "-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"classify/appendixA", "schedules/all7", "pinned"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("bench -list missing %q:\n%s", want, sb.String())
		}
	}
}

// TestBenchGateExitCode: through the exitCode mapping, a gate failure is a
// plain error (1), not a partial report or interrupt.
func TestBenchGateExitCode(t *testing.T) {
	if got := exitCode(&perfGateError{failures: 2}); got != exitErr {
		t.Fatalf("exitCode(perfGateError) = %d, want %d", got, exitErr)
	}
}
