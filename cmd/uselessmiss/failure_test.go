package main

// End-to-end tests for the failure model: exit-code mapping, -timeout
// expiry, and the interrupt → checkpoint → -resume cycle with
// byte-identical goldens.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
)

// TestExitCode pins the process exit-code contract: 0 ok, 1 error,
// 3 partial, 130 interrupted — and cancellation outranks partial.
func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, exitOK},
		{"plain", errors.New("boom"), exitErr},
		{"canceled", context.Canceled, exitInterrupted},
		{"deadline", context.DeadlineExceeded, exitInterrupted},
		{"wrapped canceled", fmt.Errorf("regen: %w", context.Canceled), exitInterrupted},
		{"partial", experiment.ErrPartial, exitPartial},
		{"wrapped partial", fmt.Errorf("regen: %w", experiment.ErrPartial), exitPartial},
		{"canceled outranks partial",
			fmt.Errorf("%w: %w", context.Canceled, experiment.ErrPartial), exitInterrupted},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("%s: exitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestTimeoutExpires: -timeout behaves like an interrupt — the run aborts
// with context.DeadlineExceeded, which maps to the interrupted exit code.
func TestTimeoutExpires(t *testing.T) {
	for _, args := range [][]string{
		{"table1", "-quick", "-workloads", "LU32", "-timeout", "1ns"},
		{"regen", "-quick", "-o", t.TempDir(), "-timeout", "1ns"},
	} {
		var sb strings.Builder
		err := run(args, &sb)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%v: err = %v, want DeadlineExceeded", args, err)
		}
		if code := exitCode(err); code != exitInterrupted {
			t.Errorf("%v: exit code = %d, want %d", args, code, exitInterrupted)
		}
	}
}

// cancelOnWrote cancels a context the first time a "wrote " progress line
// passes through it — a deterministic stand-in for SIGINT arriving between
// regen artifacts.
type cancelOnWrote struct {
	w      io.Writer
	cancel context.CancelFunc
}

func (c *cancelOnWrote) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if bytes.Contains(p, []byte("wrote ")) {
		c.cancel()
	}
	return n, err
}

// TestRegenInterruptResume is the end-to-end resumability golden check: a
// regen interrupted after its first artifact leaves a checkpoint manifest
// behind, and -resume completes the run — skipping the finished artifact —
// to output byte-identical with an uninterrupted regen.
func TestRegenInterruptResume(t *testing.T) {
	if raceEnabled {
		t.Skip("two full regen passes are prohibitively slow under -race; " +
			"manifest semantics are race-tested on the synthetic artifact list")
	}
	straight, resumed := t.TempDir(), t.TempDir()

	var sb strings.Builder
	if err := run([]string{"regen", "-quick", "-o", straight}, &sb); err != nil {
		t.Fatalf("straight regen: %v\n%s", err, sb.String())
	}

	// Interrupt the second run after its first artifact is checkpointed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var interrupted strings.Builder
	err := runContext(ctx, []string{"regen", "-quick", "-o", resumed},
		&cancelOnWrote{w: &interrupted, cancel: cancel})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted regen: err = %v, want context.Canceled\n%s",
			err, interrupted.String())
	}
	if _, err := os.Stat(filepath.Join(resumed, manifestName)); err != nil {
		t.Fatalf("no checkpoint manifest after interrupt: %v", err)
	}
	if n := strings.Count(interrupted.String(), "wrote "); n != 1 {
		t.Fatalf("interrupted regen wrote %d artifacts, want exactly 1:\n%s",
			n, interrupted.String())
	}

	sb.Reset()
	if err := run([]string{"regen", "-quick", "-o", resumed, "-resume"}, &sb); err != nil {
		t.Fatalf("resumed regen: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "skipped") ||
		!strings.Contains(sb.String(), "(up to date)") {
		t.Errorf("resume did not skip the checkpointed artifact:\n%s", sb.String())
	}

	// Every artifact must be byte-identical to the uninterrupted run.
	entries, err := os.ReadDir(straight)
	if err != nil {
		t.Fatal(err)
	}
	compared := 0
	for _, e := range entries {
		if e.Name() == manifestName {
			continue
		}
		want, err := os.ReadFile(filepath.Join(straight, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(resumed, e.Name()))
		if err != nil {
			t.Errorf("resumed run missing %s: %v", e.Name(), err)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs between straight and interrupted+resumed runs", e.Name())
		}
		compared++
	}
	if compared == 0 {
		t.Fatal("no artifacts compared")
	}
}

// withSyntheticArtifacts substitutes a cheap two-artifact list for the real
// regeneration, so manifest semantics can be tested without replaying the
// paper (which is prohibitively slow under the race detector).
func withSyntheticArtifacts(t *testing.T) {
	t.Helper()
	saved := regenArtifacts
	regenArtifacts = []regenArtifact{
		{"a.txt", func(o experiment.Options) error {
			_, err := io.WriteString(o.Out, "artifact a\n")
			return err
		}},
		{"b.txt", func(o experiment.Options) error {
			_, err := io.WriteString(o.Out, "artifact b\n")
			return err
		}},
	}
	t.Cleanup(func() { regenArtifacts = saved })
}

// TestRegenResumeWithoutManifest: -resume against a fresh directory just
// regenerates everything — no manifest is not an error.
func TestRegenResumeWithoutManifest(t *testing.T) {
	withSyntheticArtifacts(t)
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"regen", "-o", dir, "-resume"}, &sb); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if strings.Contains(sb.String(), "skipped") {
		t.Errorf("fresh -resume skipped artifacts:\n%s", sb.String())
	}
	if n := strings.Count(sb.String(), "wrote "); n != len(regenArtifacts) {
		t.Errorf("wrote %d artifacts, want %d:\n%s", n, len(regenArtifacts), sb.String())
	}
}

// TestManifestRejectsStaleArtifact: a checkpointed artifact whose bytes
// changed on disk is regenerated, not skipped — upToDate re-hashes content
// rather than trusting the checkpoint — while untouched artifacts are
// skipped.
func TestManifestRejectsStaleArtifact(t *testing.T) {
	withSyntheticArtifacts(t)
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"regen", "-o", dir}, &sb); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	tampered := filepath.Join(dir, "a.txt")
	if err := os.WriteFile(tampered, []byte("tampered\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run([]string{"regen", "-o", dir, "-resume"}, &sb); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "wrote "+tampered) {
		t.Errorf("tampered artifact was not regenerated:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "skipped "+filepath.Join(dir, "b.txt")) {
		t.Errorf("untouched artifact was not skipped:\n%s", sb.String())
	}
	data, err := os.ReadFile(tampered)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte("artifact a\n")) {
		t.Errorf("tampered artifact not restored: %q", data)
	}
}

// TestManifestIgnoredAcrossQuickModes: a checkpoint written in one -quick
// mode must not satisfy a -resume in the other — the artifact bytes differ
// between modes even when a file happens to exist.
func TestManifestIgnoredAcrossQuickModes(t *testing.T) {
	withSyntheticArtifacts(t)
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"regen", "-quick", "-o", dir}, &sb); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	sb.Reset()
	if err := run([]string{"regen", "-o", dir, "-resume"}, &sb); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if strings.Contains(sb.String(), "skipped") {
		t.Errorf("-resume trusted a checkpoint from the other -quick mode:\n%s", sb.String())
	}
}
