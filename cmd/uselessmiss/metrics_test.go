package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

// runWithMetrics invokes run() with a -metrics file appended, returning
// the rendered report bytes and the parsed metrics JSON.
func runWithMetrics(t *testing.T, args ...string) (string, obs.RunReport) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "metrics.json")
	var sb strings.Builder
	if err := run(append(args, "-metrics", path), &sb); err != nil {
		t.Fatalf("run(%v) = %v", args, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading metrics file: %v", err)
	}
	var rep obs.RunReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("parsing metrics JSON: %v", err)
	}
	if rep.Schema != obs.ReportSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, obs.ReportSchema)
	}
	return sb.String(), rep
}

// TestMetricsDeterministicAcrossParallelism: the full deterministic
// section of the run report — every counter and histogram — is identical
// at -j 1 and -j 8 for the same inputs, and so is the rendered output.
// Worker scheduling must only move timings.
func TestMetricsDeterministicAcrossParallelism(t *testing.T) {
	base := []string{"fig5", "-quick", "-workloads", "JACOBI"}
	out1, rep1 := runWithMetrics(t, append(base, "-j", "1")...)
	out8, rep8 := runWithMetrics(t, append(base, "-j", "8")...)
	if out1 != out8 {
		t.Error("rendered output differs between -j 1 and -j 8")
	}
	if !reflect.DeepEqual(rep1.Deterministic, rep8.Deterministic) {
		t.Errorf("deterministic metrics differ between -j 1 and -j 8:\n-j 1: %+v\n-j 8: %+v",
			rep1.Deterministic, rep8.Deterministic)
	}
	if rep1.Deterministic.Counters[obs.NameOursRefs] == 0 {
		t.Error("fig5 run recorded no classified references")
	}
	if rep1.Deterministic.Counters[obs.NameCellsFinished] == 0 {
		t.Error("fig5 run recorded no finished sweep cells")
	}
}

// shardInvariantNames is the subset of deterministic counters whose totals
// must not move when a cell's replay is block-sharded: work totals
// (classified references, protocol references and misses, sweep cells,
// cache effectiveness). Demux-level counters are excluded on purpose —
// sync and phase references are broadcast to every shard, so per-shard
// replay legitimately re-delivers them.
var shardInvariantNames = []string{
	obs.NameOursRefs,
	obs.NameEggersRefs,
	obs.NameTorrellasRefs,
	obs.NameCoherenceRefs,
	obs.NameCoherenceMiss,
	obs.NameFiniteRefs,
	obs.NameCellsPlanned,
	obs.NameCellsStarted,
	obs.NameCellsFinished,
	obs.NameCacheHits,
	obs.NameCacheMisses,
	obs.NameCacheStreamed,
}

// TestMetricsInvariantAcrossShards: the work-total counters are identical
// whether each cell replays serially or block-sharded 8 ways, for both a
// classifier experiment (fig5) and a protocol experiment (fig6).
func TestMetricsInvariantAcrossShards(t *testing.T) {
	for _, tc := range [][]string{
		{"fig5", "-quick", "-workloads", "JACOBI"},
		{"fig6", "-quick", "-workloads", "JACOBI"},
	} {
		t.Run(tc[0], func(t *testing.T) {
			out1, rep1 := runWithMetrics(t, append(tc, "-shards", "1")...)
			out8, rep8 := runWithMetrics(t, append(tc, "-shards", "8")...)
			if out1 != out8 {
				t.Error("rendered output differs between -shards 1 and -shards 8")
			}
			for _, name := range shardInvariantNames {
				v1 := rep1.Deterministic.Counters[name]
				v8 := rep8.Deterministic.Counters[name]
				if v1 != v8 {
					t.Errorf("%s: %d at -shards 1, %d at -shards 8", name, v1, v8)
				}
			}
			refs := rep1.Deterministic.Counters[obs.NameOursRefs] +
				rep1.Deterministic.Counters[obs.NameCoherenceRefs]
			if refs == 0 {
				t.Error("run recorded no classified or simulated references")
			}
		})
	}
}

// TestMetricsFileIsDeterministic: two identical runs write byte-identical
// metrics files (the timings section is excluded by comparing only the
// deterministic section's serialized form).
func TestMetricsFileIsDeterministic(t *testing.T) {
	serialize := func(rep obs.RunReport) string {
		data, err := json.MarshalIndent(rep.Deterministic, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	_, repA := runWithMetrics(t, "fig5", "-quick", "-workloads", "JACOBI")
	_, repB := runWithMetrics(t, "fig5", "-quick", "-workloads", "JACOBI")
	if a, b := serialize(repA), serialize(repB); a != b {
		t.Errorf("deterministic sections of identical runs differ:\n%s\n---\n%s", a, b)
	}
}

// TestMetricsReportDelta: sequential runs in one process report only their
// own work — the second run's counters must not include the first's.
func TestMetricsReportDelta(t *testing.T) {
	_, rep1 := runWithMetrics(t, "fig5", "-quick", "-workloads", "JACOBI")
	_, rep2 := runWithMetrics(t, "fig5", "-quick", "-workloads", "JACOBI")
	r1 := rep1.Deterministic.Counters[obs.NameOursRefs]
	r2 := rep2.Deterministic.Counters[obs.NameOursRefs]
	if r1 == 0 || r1 != r2 {
		t.Errorf("per-run deltas wrong: run1 %d refs, run2 %d refs (must be equal and nonzero)", r1, r2)
	}
}

// TestLogLevelFlagRejectsGarbage: a bad -log value is a flag error, not a
// silent default.
func TestLogLevelFlagRejectsGarbage(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"fig5", "-quick", "-workloads", "JACOBI", "-log", "shouty"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "unknown log level") {
		t.Fatalf("run with -log shouty = %v, want an unknown-log-level error", err)
	}
}

// TestTimingMetricsPresent: the timings section carries the run gauges.
func TestTimingMetricsPresent(t *testing.T) {
	_, rep := runWithMetrics(t, "fig5", "-quick", "-workloads", "JACOBI")
	for _, name := range []string{obs.NameRunWallSeconds, obs.NameRunRefsPerSec} {
		if _, ok := rep.Timings.Gauges[name]; !ok {
			t.Errorf("timings section missing gauge %s (have %v)", name, gaugeNames(rep))
		}
	}
	if rep.Timings.Gauges[obs.NameRunWallSeconds] <= 0 {
		t.Error("run.wall_seconds gauge not positive")
	}
}

func gaugeNames(rep obs.RunReport) []string {
	names := make([]string, 0, len(rep.Timings.Gauges))
	for name := range rep.Timings.Gauges {
		names = append(names, name)
	}
	return names
}
