package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/obs"
)

// runWithMetrics invokes run() with a -metrics file appended, returning
// the rendered report bytes and the parsed metrics JSON.
func runWithMetrics(t *testing.T, args ...string) (string, obs.RunReport) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "metrics.json")
	var sb strings.Builder
	if err := run(append(args, "-metrics", path), &sb); err != nil {
		t.Fatalf("run(%v) = %v", args, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading metrics file: %v", err)
	}
	var rep obs.RunReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("parsing metrics JSON: %v", err)
	}
	if rep.Schema != obs.ReportSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, obs.ReportSchema)
	}
	return sb.String(), rep
}

// TestMetricsDeterministicAcrossParallelism: the full deterministic
// section of the run report — every counter and histogram — is identical
// at -j 1 and -j 8 for the same inputs, and so is the rendered output.
// Worker scheduling must only move timings.
func TestMetricsDeterministicAcrossParallelism(t *testing.T) {
	base := []string{"fig5", "-quick", "-workloads", "JACOBI"}
	out1, rep1 := runWithMetrics(t, append(base, "-j", "1")...)
	out8, rep8 := runWithMetrics(t, append(base, "-j", "8")...)
	if out1 != out8 {
		t.Error("rendered output differs between -j 1 and -j 8")
	}
	if !reflect.DeepEqual(rep1.Deterministic, rep8.Deterministic) {
		t.Errorf("deterministic metrics differ between -j 1 and -j 8:\n-j 1: %+v\n-j 8: %+v",
			rep1.Deterministic, rep8.Deterministic)
	}
	if rep1.Deterministic.Counters[obs.NameOursRefs] == 0 {
		t.Error("fig5 run recorded no classified references")
	}
	if rep1.Deterministic.Counters[obs.NameCellsFinished] == 0 {
		t.Error("fig5 run recorded no finished sweep cells")
	}
}

// shardInvariantNames is the subset of deterministic counters whose totals
// must not move when a cell's replay is block-sharded: work totals
// (classified references, protocol references and misses, sweep cells,
// cache effectiveness). Demux-level counters are excluded on purpose —
// sync and phase references are broadcast to every shard, so per-shard
// replay legitimately re-delivers them.
var shardInvariantNames = []string{
	obs.NameOursRefs,
	obs.NameEggersRefs,
	obs.NameTorrellasRefs,
	obs.NameCoherenceRefs,
	obs.NameCoherenceMiss,
	obs.NameFiniteRefs,
	obs.NameCellsPlanned,
	obs.NameCellsStarted,
	obs.NameCellsFinished,
	obs.NameCacheHits,
	obs.NameCacheMisses,
	obs.NameCacheStreamed,
}

// TestMetricsInvariantAcrossShards: the work-total counters are identical
// whether each cell replays serially or block-sharded 8 ways, for both a
// classifier experiment (fig5) and a protocol experiment (fig6).
func TestMetricsInvariantAcrossShards(t *testing.T) {
	for _, tc := range [][]string{
		{"fig5", "-quick", "-workloads", "JACOBI"},
		{"fig6", "-quick", "-workloads", "JACOBI"},
	} {
		t.Run(tc[0], func(t *testing.T) {
			out1, rep1 := runWithMetrics(t, append(tc, "-shards", "1")...)
			out8, rep8 := runWithMetrics(t, append(tc, "-shards", "8")...)
			if out1 != out8 {
				t.Error("rendered output differs between -shards 1 and -shards 8")
			}
			for _, name := range shardInvariantNames {
				v1 := rep1.Deterministic.Counters[name]
				v8 := rep8.Deterministic.Counters[name]
				if v1 != v8 {
					t.Errorf("%s: %d at -shards 1, %d at -shards 8", name, v1, v8)
				}
			}
			refs := rep1.Deterministic.Counters[obs.NameOursRefs] +
				rep1.Deterministic.Counters[obs.NameCoherenceRefs]
			if refs == 0 {
				t.Error("run recorded no classified or simulated references")
			}
		})
	}
}

// TestMetricsShapeMatrix runs the full -j {1,8} × -shards {1,8} matrix and
// pins the run-report contract end to end:
//
//   - the rendered report is byte-identical across all four combinations;
//   - the report *shape* — the set of metric names in every section — is
//     identical across all four (no counter appears or vanishes because of
//     scheduling or sharding);
//   - the shard-invariant work counters are identical across all four;
//   - at -shards 1 the deterministic section is byte-identical across -j.
//     At -shards 8 it is not required to be: shardsPerCell divides the
//     goroutine budget by the worker count, so -j changes the *effective*
//     per-cell shard count and with it the demux routing counters, which is
//     exactly why the invariance contract is stated over the work totals.
func TestMetricsShapeMatrix(t *testing.T) {
	base := []string{"fig5", "-quick", "-workloads", "JACOBI"}
	type combo struct{ j, shards string }
	combos := []combo{{"1", "1"}, {"8", "1"}, {"1", "8"}, {"8", "8"}}

	outputs := make(map[combo]string)
	detBytes := make(map[combo]string)
	shapes := make(map[combo]string)
	counters := make(map[combo]map[string]uint64)
	for _, c := range combos {
		out, rep := runWithMetrics(t, append(base, "-j", c.j, "-shards", c.shards)...)
		outputs[c] = out
		data, err := json.MarshalIndent(rep.Deterministic, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		detBytes[c] = string(data)
		shapes[c] = reportShape(rep)
		counters[c] = rep.Deterministic.Counters
	}

	ref := combos[0]
	for _, c := range combos[1:] {
		if outputs[c] != outputs[ref] {
			t.Errorf("rendered output differs between -j %s -shards %s and -j %s -shards %s",
				ref.j, ref.shards, c.j, c.shards)
		}
		if shapes[c] != shapes[ref] {
			t.Errorf("report shape differs between -j %s -shards %s and -j %s -shards %s:\n%s\n---\n%s",
				ref.j, ref.shards, c.j, c.shards, shapes[ref], shapes[c])
		}
		for _, name := range shardInvariantNames {
			if counters[c][name] != counters[ref][name] {
				t.Errorf("%s: %d at -j %s -shards %s, %d at -j %s -shards %s", name,
					counters[ref][name], ref.j, ref.shards, counters[c][name], c.j, c.shards)
			}
		}
	}
	if detBytes[combo{"1", "1"}] != detBytes[combo{"8", "1"}] {
		t.Error("-shards 1: deterministic section differs between -j 1 and -j 8")
	}
}

// reportShape serializes just the metric names of every report section, one
// per line, sorted — the report's key structure with the values erased.
func reportShape(rep obs.RunReport) string {
	var names []string
	add := func(section, name string) { names = append(names, section+"/"+name) }
	for name := range rep.Deterministic.Counters {
		add("det.counters", name)
	}
	for name := range rep.Deterministic.Histograms {
		add("det.histograms", name)
	}
	for name := range rep.Timings.Counters {
		add("tim.counters", name)
	}
	for name := range rep.Timings.Gauges {
		add("tim.gauges", name)
	}
	for name := range rep.Timings.Histograms {
		add("tim.histograms", name)
	}
	sort.Strings(names)
	return strings.Join(names, "\n")
}

// TestMetricsFileIsDeterministic: two identical runs write byte-identical
// metrics files (the timings section is excluded by comparing only the
// deterministic section's serialized form).
func TestMetricsFileIsDeterministic(t *testing.T) {
	serialize := func(rep obs.RunReport) string {
		data, err := json.MarshalIndent(rep.Deterministic, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	_, repA := runWithMetrics(t, "fig5", "-quick", "-workloads", "JACOBI")
	_, repB := runWithMetrics(t, "fig5", "-quick", "-workloads", "JACOBI")
	if a, b := serialize(repA), serialize(repB); a != b {
		t.Errorf("deterministic sections of identical runs differ:\n%s\n---\n%s", a, b)
	}
}

// TestMetricsReportDelta: sequential runs in one process report only their
// own work — the second run's counters must not include the first's.
func TestMetricsReportDelta(t *testing.T) {
	_, rep1 := runWithMetrics(t, "fig5", "-quick", "-workloads", "JACOBI")
	_, rep2 := runWithMetrics(t, "fig5", "-quick", "-workloads", "JACOBI")
	r1 := rep1.Deterministic.Counters[obs.NameOursRefs]
	r2 := rep2.Deterministic.Counters[obs.NameOursRefs]
	if r1 == 0 || r1 != r2 {
		t.Errorf("per-run deltas wrong: run1 %d refs, run2 %d refs (must be equal and nonzero)", r1, r2)
	}
}

// TestLogLevelFlagRejectsGarbage: a bad -log value is a flag error, not a
// silent default.
func TestLogLevelFlagRejectsGarbage(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"fig5", "-quick", "-workloads", "JACOBI", "-log", "shouty"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "unknown log level") {
		t.Fatalf("run with -log shouty = %v, want an unknown-log-level error", err)
	}
}

// TestTimingMetricsPresent: the timings section carries the run gauges.
func TestTimingMetricsPresent(t *testing.T) {
	_, rep := runWithMetrics(t, "fig5", "-quick", "-workloads", "JACOBI")
	for _, name := range []string{obs.NameRunWallSeconds, obs.NameRunRefsPerSec} {
		if _, ok := rep.Timings.Gauges[name]; !ok {
			t.Errorf("timings section missing gauge %s (have %v)", name, gaugeNames(rep))
		}
	}
	if rep.Timings.Gauges[obs.NameRunWallSeconds] <= 0 {
		t.Error("run.wall_seconds gauge not positive")
	}
}

func gaugeNames(rep obs.RunReport) []string {
	names := make([]string, 0, len(rep.Timings.Gauges))
	for name := range rep.Timings.Gauges {
		names = append(names, name)
	}
	return names
}
