package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDispatch(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run([]string{"nope"}, &sb); err == nil {
		t.Error("unknown subcommand accepted")
	}
}

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"JACOBI", "LU32", "MP3D10000", "WATER288"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestClassifyWorkload(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"classify", "-workload", "LU32", "-block", "64"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"ours", "eggers", "torrellas", "PTS", "essential", "TSM"} {
		if !strings.Contains(out, want) {
			t.Errorf("classify missing %q:\n%s", want, out)
		}
	}
}

func TestClassifySingleScheme(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"classify", "-workload", "LU32", "-scheme", "eggers"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "torrellas") {
		t.Error("scheme filter ignored")
	}
}

func TestClassifyErrors(t *testing.T) {
	var sb strings.Builder
	cases := [][]string{
		{"classify"},                   // no source
		{"classify", "-workload", "X"}, // unknown workload
		{"classify", "-workload", "LU32", "-block", "3"},  // bad block
		{"classify", "-workload", "LU32", "-scheme", "x"}, // bad scheme
		{"classify", "-workload", "LU32", "-trace", "f"},  // both sources
		{"classify", "-trace", "/no/such/file"},
	}
	for _, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("%v: expected error", args)
		}
	}
}

func TestProtocolsWorkload(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"protocols", "-workload", "LU32", "-block", "64", "-protocols", "MIN,OTF"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "MIN") || !strings.Contains(out, "OTF") {
		t.Errorf("protocols output:\n%s", out)
	}
	if strings.Contains(out, "MAX") {
		t.Error("protocol filter ignored")
	}
}

func TestProtocolsUnknownProtocol(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"protocols", "-workload", "LU32", "-protocols", "BOGUS"}, &sb)
	if err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestTracegenAndTraceinfoAndFileClassify(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lu32.trace")
	var sb strings.Builder
	if err := run([]string{"tracegen", "-workload", "LU32", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote") {
		t.Errorf("tracegen output: %s", sb.String())
	}

	sb.Reset()
	if err := run([]string{"traceinfo", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"processors", "16", "loads", "stores", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("traceinfo missing %q:\n%s", want, out)
		}
	}

	// Classifying the file must agree with classifying the workload.
	sb.Reset()
	if err := run([]string{"classify", "-trace", path, "-block", "64", "-scheme", "ours"}, &sb); err != nil {
		t.Fatal(err)
	}
	fromFile := sb.String()
	sb.Reset()
	if err := run([]string{"classify", "-workload", "LU32", "-block", "64", "-scheme", "ours"}, &sb); err != nil {
		t.Fatal(err)
	}
	if fromFile != sb.String() {
		t.Errorf("file and workload classification differ:\n%s\nvs\n%s", fromFile, sb.String())
	}

	// And protocol simulation over the file works too.
	sb.Reset()
	if err := run([]string{"protocols", "-trace", path, "-protocols", "MIN"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "MIN") {
		t.Error("protocols over trace file failed")
	}
}

func TestTracegenTextFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.txt")
	var sb strings.Builder
	if err := run([]string{"tracegen", "-workload", "LU32", "-o", path, "-format", "text"}, &sb); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"tracegen", "-workload", "LU32", "-o", path, "-format", "bogus"}, &sb); err == nil {
		t.Error("bad format accepted")
	}
	if err := run([]string{"tracegen", "-workload", "LU32"}, &sb); err == nil {
		t.Error("missing -o accepted")
	}
}

func TestTraceinfoErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"traceinfo"}, &sb); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"traceinfo", "/no/such/file"}, &sb); err == nil {
		t.Error("missing file accepted")
	}
}

func TestExperimentSubcommands(t *testing.T) {
	for _, args := range [][]string{
		{"table1", "-quick", "-workloads", "LU32"},
		{"table2", "-quick", "-workloads", "LU32"},
		{"fig5", "-workloads", "LU32", "-blocks", "8,64"},
		{"fig6", "-workloads", "LU32", "-block", "64", "-protocols", "MIN,OTF"},
		{"large", "-quick", "-workloads", "LU32", "-protocols", "MIN,OTF"},
		{"traffic", "-workloads", "LU32", "-protocols", "MIN,WU,CU"},
		{"finite", "-workloads", "LU32", "-block", "64", "-assoc", "2"},
		{"ablate", "-what", "cu", "-workloads", "LU32"},
		{"ablate", "-what", "wbwi", "-workloads", "LU32", "-block", "1024"},
		{"compare", "-workloads", "LU32", "-block", "64"},
		{"ablate", "-what", "sector", "-workloads", "LU32", "-block", "1024"},
		{"penalty", "-workloads", "LU32", "-protocols", "MIN,OTF", "-miss-penalty", "50"},
		{"hotspots", "-workloads", "LU32", "-block", "8"},
		{"phases", "-workloads", "LU32", "-buckets", "4"},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err != nil {
			t.Errorf("%v: %v", args, err)
		}
		if sb.Len() == 0 {
			t.Errorf("%v: no output", args)
		}
	}
}

func TestSelfcheck(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"selfcheck", "-workload", "LU32", "-block", "64"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "all identities hold") || strings.Contains(out, "FAIL") {
		t.Errorf("selfcheck output:\n%s", out)
	}
	// And against a trace file.
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	if err := run([]string{"tracegen", "-workload", "LU32", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run([]string{"selfcheck", "-trace", path, "-block", "8"}, &sb); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if err := run([]string{"selfcheck"}, &sb); err == nil {
		t.Error("missing source accepted")
	}
	if err := run([]string{"selfcheck", "-workload", "LU32", "-block", "7"}, &sb); err == nil {
		t.Error("bad block accepted")
	}
}

func TestRegenQuick(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"regen", "-quick", "-o", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1.txt", "fig6a.txt", "phases.txt", "ablate_sector.txt"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing artifact %s: %v", want, err)
		}
	}
	if !strings.Contains(sb.String(), "wrote") {
		t.Error("no progress output")
	}
}

func TestAblateUnknownWhat(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"ablate", "-what", "bogus"}, &sb); err == nil {
		t.Error("unknown ablation accepted")
	}
}

func TestProtocolsExtensionNames(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"protocols", "-workload", "LU32", "-protocols", "WU,CU"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "WU") || !strings.Contains(sb.String(), "CU") {
		t.Errorf("extension protocols missing:\n%s", sb.String())
	}
}

func TestFig5BadBlocksFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"fig5", "-workloads", "LU32", "-blocks", "8,x"}, &sb); err == nil {
		t.Error("bad -blocks accepted")
	}
}

func TestSplitHelpers(t *testing.T) {
	if got := splitList(""); got != nil {
		t.Errorf("splitList(\"\") = %v", got)
	}
	got := splitList(" a, b ,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("splitList = %v", got)
	}
	ints, err := splitInts("4, 8")
	if err != nil || len(ints) != 2 || ints[0] != 4 || ints[1] != 8 {
		t.Errorf("splitInts = %v, %v", ints, err)
	}
}
