package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestIATSeededDeterminism(t *testing.T) {
	for _, dist := range []string{"exponential", "uniform", "equidistant"} {
		a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
		for i := 0; i < 100; i++ {
			if x, y := iat(a, dist, 50), iat(b, dist, 50); x != y {
				t.Fatalf("%s: draw %d differs across equal seeds: %v vs %v", dist, i, x, y)
			}
		}
	}
}

func TestIATDistributionShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const rate, n = 100.0, 20000
	mean := time.Duration(float64(time.Second) / rate)

	for i := 0; i < 10; i++ {
		if got := iat(rng, "equidistant", rate); got != mean {
			t.Fatalf("equidistant gap %v, want %v", got, mean)
		}
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		gap := iat(rng, "exponential", rate)
		sum += gap.Seconds()
	}
	if got := sum / n; math.Abs(got-1/rate) > 0.1/rate {
		t.Errorf("exponential mean %.5fs, want ~%.5fs", got, 1/rate)
	}
	for i := 0; i < n; i++ {
		gap := iat(rng, "uniform", rate)
		if gap < 0 || gap.Seconds() >= 2/rate {
			t.Fatalf("uniform gap %v outside [0, 2/rate)", gap)
		}
	}
}

func TestRateAtShapes(t *testing.T) {
	c := Config{Mode: "constant", RPS: 10, Period: time.Second, StepRPS: 5, Duty: 0.5}
	if got := c.rateAt(42 * time.Second); got != 10 {
		t.Errorf("constant: %v", got)
	}
	c.Mode = "step"
	if got := c.rateAt(500 * time.Millisecond); got != 10 {
		t.Errorf("step period 0: %v", got)
	}
	if got := c.rateAt(2500 * time.Millisecond); got != 20 {
		t.Errorf("step period 2: %v, want 20", got)
	}
	c.Mode = "burst"
	if got := c.rateAt(100 * time.Millisecond); got != 10 {
		t.Errorf("burst on phase: %v", got)
	}
	if got := c.rateAt(700 * time.Millisecond); got != 0 {
		t.Errorf("burst off phase: %v, want 0", got)
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{BaseURL: "http://x", RPS: 1, Duration: time.Second, Bodies: [][]byte{[]byte("{}")}}
	if _, err := base.withDefaults(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{RPS: 1, Duration: time.Second, Bodies: base.Bodies},                                    // no URL
		{BaseURL: "http://x", RPS: 1, Duration: time.Second},                                    // no bodies
		{BaseURL: "http://x", Duration: time.Second, Bodies: base.Bodies},                       // no rps
		{BaseURL: "http://x", RPS: 1, Bodies: base.Bodies},                                      // no duration
		{BaseURL: "http://x", RPS: 1, Duration: time.Second, Bodies: base.Bodies, Mode: "saw"},  // bad mode
		{BaseURL: "http://x", RPS: 1, Duration: time.Second, Bodies: base.Bodies, Dist: "zipf"}, // bad dist
	}
	for i, cfg := range bad {
		if _, err := cfg.withDefaults(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestQuantile(t *testing.T) {
	var sorted []time.Duration
	for i := 1; i <= 100; i++ {
		sorted = append(sorted, time.Duration(i)*time.Millisecond)
	}
	if got := quantile(sorted, 0.50); got < 49*time.Millisecond || got > 52*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := quantile(sorted, 0.99); got < 98*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}

// TestRunAgainstStub drives a stub server: ok/shed responses are counted
// by status and typed code, and refs/s comes from the /v1/stats delta.
func TestRunAgainstStub(t *testing.T) {
	var calls, refs atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/jobs":
			n := calls.Add(1)
			refs.Add(1000)
			if n%4 == 0 {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusTooManyRequests)
				fmt.Fprint(w, `{"error":{"code":"overloaded","retryable":true}}`)
				return
			}
			fmt.Fprint(w, "scheme  class  misses\n")
		case "/v1/stats":
			fmt.Fprintf(w, `{"jobs":{"retries":0},"refs":{"driven":%d}}`, refs.Load())
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		RPS:      300,
		Duration: 300 * time.Millisecond,
		Dist:     "equidistant",
		Seed:     7,
		Bodies:   [][]byte{[]byte(`{"experiment":"classify","workload":"LU32"}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 {
		t.Fatal("no requests sent")
	}
	if rep.OK == 0 || rep.Statuses[http.StatusOK] != rep.OK {
		t.Errorf("ok=%d statuses=%v", rep.OK, rep.Statuses)
	}
	if rep.Codes["overloaded"] == 0 {
		t.Errorf("shed responses not coded: %v", rep.Codes)
	}
	if rep.Sent != rep.OK+rep.Statuses[http.StatusTooManyRequests] {
		t.Errorf("sent %d != ok %d + shed %d", rep.Sent, rep.OK, rep.Statuses[http.StatusTooManyRequests])
	}
	if rep.RefsPerSec <= 0 {
		t.Errorf("refs/s = %v, want > 0", rep.RefsPerSec)
	}
	if rep.JobsPerSec <= 0 || rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Errorf("throughput/latency summary broken: %v %v %v", rep.JobsPerSec, rep.P50, rep.P99)
	}
}

// TestRunSameSeedSameSchedule: the arrival schedule is a pure function of
// the seed — two runs against a counting stub offer the same load.
func TestRunSameSeedSameSchedule(t *testing.T) {
	run := func() *Report {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/stats" {
				fmt.Fprint(w, `{"jobs":{},"refs":{"driven":0}}`)
				return
			}
			fmt.Fprint(w, "ok\n")
		}))
		defer srv.Close()
		rep, err := Run(context.Background(), Config{
			BaseURL: srv.URL, RPS: 200, Duration: 250 * time.Millisecond,
			Dist: "equidistant", Seed: 7,
			Bodies: [][]byte{[]byte(`{}`)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	// Equidistant arrivals at a fixed rate: the schedules are identical,
	// so the counts may differ only by scheduler jitter at the edge.
	if diff := a.Sent - b.Sent; diff < -2 || diff > 2 {
		t.Errorf("same seed sent %d vs %d", a.Sent, b.Sent)
	}
}

func TestReportFprint(t *testing.T) {
	rep := &Report{
		Mode: "constant", Dist: "exponential", OfferedRPS: 10,
		Elapsed: 2 * time.Second, Sent: 20, OK: 18,
		Statuses:  map[int]int{200: 18, 429: 2},
		Codes:     map[string]int{"overloaded": 2},
		latencies: []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond},
	}
	rep.finish()
	var buf bytes.Buffer
	if err := rep.Fprint(&buf, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"jobs_per_sec", "p99_ms", "overloaded", "429"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := rep.Fprint(&csv, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "jobs_per_sec,9.00") {
		t.Errorf("CSV report missing jobs_per_sec row:\n%s", csv.String())
	}
}

// TestReportJSONRoundTrip guards the stats shape the generator reads.
func TestReportJSONRoundTrip(t *testing.T) {
	var s serverStats
	blob := `{"queue":{"depth":1},"jobs":{"retries":3},"refs":{"driven":42,"collected":9}}`
	if err := json.Unmarshal([]byte(blob), &s); err != nil {
		t.Fatal(err)
	}
	if s.Jobs.Retries != 3 || s.Refs.Driven != 42 {
		t.Errorf("decoded %+v", s)
	}
}
