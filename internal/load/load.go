// Package load is the serving mode's invitro-style load generator: an
// open-loop driver that submits jobs to a running uselessmiss server on a
// seeded arrival process — constant, stepped or bursty RPS with
// exponential, uniform or equidistant inter-arrival times — and reports
// sustained throughput (jobs/s and replayed refs/s, read as a /v1/stats
// delta) and latency quantiles. It is the chaos suite's traffic half:
// point it at a server armed with a fault plan and the typed error codes
// come back in the report's breakdown.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Config tunes one load run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8095".
	BaseURL string
	// Mode shapes the offered rate over time: "constant" holds RPS;
	// "step" adds StepRPS every Period; "burst" alternates RPS and idle
	// on a Period with Duty as the on fraction.
	Mode string
	// RPS is the offered arrival rate (mode-shaped), jobs per second.
	RPS float64
	// StepRPS is the step mode's per-period increment (default RPS).
	StepRPS float64
	// Period is the step/burst period (default Duration/4).
	Period time.Duration
	// Duty is the burst mode's on fraction in (0,1] (default 0.5).
	Duty float64
	// Duration is how long to offer load.
	Duration time.Duration
	// Dist picks the inter-arrival distribution: "exponential" (Poisson
	// arrivals, the default), "uniform" (U(0, 2/rate)), or
	// "equidistant" (a metronome).
	Dist string
	// Seed drives the arrival process and body round-robin; a fixed
	// seed replays the same offered-load schedule.
	Seed int64
	// Bodies are the JSON job specs to submit, round-robin. At least
	// one is required.
	Bodies [][]byte
	// MaxInflight caps concurrent in-flight requests; beyond it
	// arrivals are dropped and counted (open-loop overload, default
	// 512).
	MaxInflight int
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
}

func (c Config) withDefaults() (Config, error) {
	if c.BaseURL == "" {
		return c, fmt.Errorf("load: missing base URL")
	}
	if len(c.Bodies) == 0 {
		return c, fmt.Errorf("load: no job bodies to submit")
	}
	if c.RPS <= 0 {
		return c, fmt.Errorf("load: rps must be positive")
	}
	if c.Duration <= 0 {
		return c, fmt.Errorf("load: duration must be positive")
	}
	switch c.Mode {
	case "":
		c.Mode = "constant"
	case "constant", "step", "burst":
	default:
		return c, fmt.Errorf("load: unknown mode %q (want constant, step or burst)", c.Mode)
	}
	switch c.Dist {
	case "":
		c.Dist = "exponential"
	case "exponential", "uniform", "equidistant":
	default:
		return c, fmt.Errorf("load: unknown distribution %q (want exponential, uniform or equidistant)", c.Dist)
	}
	if c.StepRPS <= 0 {
		c.StepRPS = c.RPS
	}
	if c.Period <= 0 {
		c.Period = c.Duration / 4
		if c.Period <= 0 {
			c.Period = c.Duration
		}
	}
	if c.Duty <= 0 || c.Duty > 1 {
		c.Duty = 0.5
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 512
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c, nil
}

// rateAt is the offered rate t into the run, per the mode shape. Burst's
// off phase returns 0 (the generator skips to the next on edge).
func (c *Config) rateAt(t time.Duration) float64 {
	switch c.Mode {
	case "step":
		return c.RPS + float64(int(t/c.Period))*c.StepRPS
	case "burst":
		phase := t % c.Period
		if float64(phase) >= c.Duty*float64(c.Period) {
			return 0
		}
	}
	return c.RPS
}

// Run offers load against the server until the duration elapses or ctx is
// canceled, then waits for in-flight requests and returns the report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	before, statsErr := fetchStats(ctx, cfg.Client, cfg.BaseURL)

	rep := &Report{
		Mode: cfg.Mode, Dist: cfg.Dist, OfferedRPS: cfg.RPS,
		Statuses: make(map[int]int), Codes: make(map[string]int),
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	inflight := make(chan struct{}, cfg.MaxInflight)

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	timer := time.NewTimer(0)
	defer timer.Stop()
	<-timer.C

	bodyIdx := 0
loop:
	for {
		elapsed := time.Since(start)
		if elapsed >= cfg.Duration {
			break
		}
		rate := cfg.rateAt(elapsed)
		var wait time.Duration
		if rate <= 0 {
			// Burst off phase: jump to the next period edge.
			wait = cfg.Period - elapsed%cfg.Period
		} else {
			wait = iat(rng, cfg.Dist, rate)
		}
		if next := time.Now().Add(wait); next.After(deadline) {
			wait = time.Until(deadline)
		}
		timer.Reset(wait)
		select {
		case <-ctx.Done():
			break loop
		case <-timer.C:
		}
		if time.Since(start) >= cfg.Duration {
			break
		}
		if rate <= 0 {
			continue
		}

		body := cfg.Bodies[bodyIdx%len(cfg.Bodies)]
		bodyIdx++
		select {
		case inflight <- struct{}{}:
		default:
			mu.Lock()
			rep.Dropped++
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			defer func() { <-inflight }()
			status, code, lat := submit(ctx, cfg.Client, cfg.BaseURL, body)
			mu.Lock()
			rep.Sent++
			rep.Statuses[status]++
			if code != "" {
				rep.Codes[code]++
			}
			if status == http.StatusOK {
				rep.OK++
				rep.latencies = append(rep.latencies, lat)
			}
			mu.Unlock()
		}(body)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)

	if statsErr == nil {
		if after, err := fetchStats(ctx, cfg.Client, cfg.BaseURL); err == nil {
			rep.RefsPerSec = float64(after.Refs.Driven-before.Refs.Driven) / rep.Elapsed.Seconds()
			rep.ServerRetries = after.Jobs.Retries - before.Jobs.Retries
		}
	}
	rep.finish()
	return rep, nil
}

// iat draws one inter-arrival gap for the distribution at the given rate.
func iat(rng *rand.Rand, dist string, rate float64) time.Duration {
	mean := 1 / rate
	var secs float64
	switch dist {
	case "uniform":
		secs = rng.Float64() * 2 * mean
	case "equidistant":
		secs = mean
	default: // exponential
		secs = rng.ExpFloat64() * mean
	}
	return time.Duration(secs * float64(time.Second))
}

// submit posts one job body and classifies the outcome: HTTP status, the
// envelope's error code for non-200s, and the request latency.
func submit(ctx context.Context, client *http.Client, base string, body []byte) (status int, code string, lat time.Duration) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return 0, "transport", 0
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := client.Do(req)
	lat = time.Since(t0)
	if err != nil {
		return 0, "transport", lat
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive
		return resp.StatusCode, "", lat
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	code = "unknown"
	if err := json.NewDecoder(resp.Body).Decode(&env); err == nil && env.Error.Code != "" {
		code = env.Error.Code
	}
	return resp.StatusCode, code, lat
}

// serverStats mirrors the slice of /v1/stats the generator reads.
type serverStats struct {
	Jobs struct {
		Retries uint64 `json:"retries"`
	} `json:"jobs"`
	Refs struct {
		Driven uint64 `json:"driven"`
	} `json:"refs"`
}

func fetchStats(ctx context.Context, client *http.Client, base string) (*serverStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: stats: HTTP %d", resp.StatusCode)
	}
	var s serverStats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Report is one load run's outcome.
type Report struct {
	Mode       string
	Dist       string
	OfferedRPS float64
	Elapsed    time.Duration

	Sent    int
	OK      int
	Dropped int // arrivals shed client-side at the in-flight cap

	Statuses map[int]int    // HTTP status → count
	Codes    map[string]int // typed error code → count (non-200s)

	ServerRetries uint64  // server-side retry delta over the run
	RefsPerSec    float64 // replayed refs/s from the /v1/stats delta

	JobsPerSec float64 // completed (200) jobs per second
	P50, P99   time.Duration

	latencies []time.Duration
}

func (r *Report) finish() {
	if r.Elapsed > 0 {
		r.JobsPerSec = float64(r.OK) / r.Elapsed.Seconds()
	}
	if len(r.latencies) == 0 {
		return
	}
	sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
	r.P50 = quantile(r.latencies, 0.50)
	r.P99 = quantile(r.latencies, 0.99)
}

// quantile reads q from the sorted sample by nearest-rank.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
