package load

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/report"
)

// Fprint renders the run as the load subcommand's report: a summary table
// plus a per-status/per-code breakdown, in the repo's table idiom.
func (r *Report) Fprint(out io.Writer, csv bool) error {
	tb := report.NewTable("metric", "value")
	tb.Rowf("mode", r.Mode)
	tb.Rowf("distribution", r.Dist)
	tb.Rowf("offered_rps", fmt.Sprintf("%.1f", r.OfferedRPS))
	tb.Rowf("elapsed_s", fmt.Sprintf("%.2f", r.Elapsed.Seconds()))
	tb.Rowf("sent", r.Sent)
	tb.Rowf("ok", r.OK)
	tb.Rowf("dropped_client", r.Dropped)
	tb.Rowf("jobs_per_sec", fmt.Sprintf("%.2f", r.JobsPerSec))
	tb.Rowf("refs_per_sec", fmt.Sprintf("%.0f", r.RefsPerSec))
	tb.Rowf("server_retries", r.ServerRetries)
	tb.Rowf("p50_ms", fmt.Sprintf("%.1f", float64(r.P50.Microseconds())/1000))
	tb.Rowf("p99_ms", fmt.Sprintf("%.1f", float64(r.P99.Microseconds())/1000))
	if csv {
		if err := tb.CSV(out); err != nil {
			return err
		}
	} else {
		tb.Fprint(out)
	}

	if len(r.Statuses) == 0 && len(r.Codes) == 0 {
		return nil
	}
	bd := report.NewTable("kind", "key", "count")
	for _, s := range sortedIntKeys(r.Statuses) {
		bd.Rowf("status", strconv.Itoa(s), r.Statuses[s])
	}
	for _, c := range sortedStrKeys(r.Codes) {
		bd.Rowf("code", c, r.Codes[c])
	}
	if csv {
		return bd.CSV(out)
	}
	fmt.Fprintln(out)
	bd.Fprint(out)
	return nil
}

func sortedIntKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func sortedStrKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
