package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/workload"
)

// testServer is one running server under test: its base URL, the cancel
// that starts its drain, and the channel Run's verdict arrives on.
type testServer struct {
	s      *Server
	base   string
	cancel context.CancelFunc
	runErr chan error
}

// startTestServer boots a server on a free port and waits for /readyz.
func startTestServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ts := &testServer{s: s, base: "http://" + s.Addr(), cancel: cancel, runErr: make(chan error, 1)}
	go func() { ts.runErr <- s.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-ts.runErr:
		case <-time.After(30 * time.Second):
			t.Error("server did not stop in cleanup")
			s.Close()
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return ts
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// drain cancels the run context and returns Run's verdict.
func (ts *testServer) drain(t *testing.T) error {
	t.Helper()
	ts.cancel()
	select {
	case err := <-ts.runErr:
		ts.runErr <- err // keep cleanup's read satisfied
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("drain hung")
		return nil
	}
}

// submitResult is one submission's outcome.
type submitResult struct {
	status   int
	body     []byte
	code     string // envelope error code for non-200s
	attempts string // X-Job-Attempts header
	retry    string // Retry-After header
}

// submit posts a JSON job spec and decodes the outcome.
func submit(t *testing.T, base, spec string) submitResult {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("submit read: %v", err)
	}
	res := submitResult{
		status:   resp.StatusCode,
		body:     body,
		attempts: resp.Header.Get("X-Job-Attempts"),
		retry:    resp.Header.Get("Retry-After"),
	}
	if resp.StatusCode != http.StatusOK {
		var env errorEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("status %d with unparsable envelope %q: %v", resp.StatusCode, body, err)
		}
		res.code = string(env.Error.Code)
	}
	return res
}

// offlineClassify renders the offline table for one workload — the bytes
// every clean server job must match exactly.
func offlineClassify(t *testing.T, name string, block int, scheme string) []byte {
	t.Helper()
	w, err := workload.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := experiment.ClassifyReader(experiment.Options{Out: &buf}, w.Reader(), block, scheme); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSubmitClassifyMatchesOffline(t *testing.T) {
	ts := startTestServer(t, Config{})
	want := offlineClassify(t, "LU32", 64, "all")
	res := submit(t, ts.base, `{"experiment":"classify","workload":"LU32","block":64}`)
	if res.status != http.StatusOK {
		t.Fatalf("status %d: %s", res.status, res.body)
	}
	if !bytes.Equal(res.body, want) {
		t.Fatalf("server table differs from offline:\n--- want ---\n%s--- got ---\n%s", want, res.body)
	}
	if res.attempts != "1" {
		t.Errorf("X-Job-Attempts = %q, want 1", res.attempts)
	}
	if err := ts.drain(t); err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
}

func TestSubmitExperimentMatchesDriver(t *testing.T) {
	ts := startTestServer(t, Config{})
	var want strings.Builder
	o := experiment.Options{Out: &want, Quick: true, Workloads: []string{"JACOBI"}, Blocks: []int{32, 64}}
	if err := experiment.RunNamed("fig5", o, 0); err != nil {
		t.Fatal(err)
	}
	res := submit(t, ts.base, `{"experiment":"fig5","quick":true,"workloads":["JACOBI"],"blocks":[32,64]}`)
	if res.status != http.StatusOK {
		t.Fatalf("status %d: %s", res.status, res.body)
	}
	if string(res.body) != want.String() {
		t.Fatalf("server fig5 differs from driver:\n--- want ---\n%s--- got ---\n%s", want.String(), res.body)
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	ts := startTestServer(t, Config{})
	cases := []struct {
		name, spec string
		status     int
		code       Code
	}{
		{"bad json", `{"experiment":`, http.StatusBadRequest, CodeBadRequest},
		{"unknown field", `{"experiment":"classify","workload":"LU32","bogus":1}`, http.StatusBadRequest, CodeBadRequest},
		{"missing experiment", `{}`, http.StatusBadRequest, CodeBadRequest},
		{"classify without workload", `{"experiment":"classify"}`, http.StatusBadRequest, CodeBadRequest},
		{"bad scheme", `{"experiment":"classify","workload":"LU32","scheme":"theirs"}`, http.StatusBadRequest, CodeBadRequest},
		{"negative block", `{"experiment":"classify","workload":"LU32","block":-1}`, http.StatusBadRequest, CodeBadRequest},
		{"unknown experiment", `{"experiment":"penalty"}`, http.StatusNotFound, CodeUnknown},
		{"unknown workload", `{"experiment":"classify","workload":"NOPE"}`, http.StatusNotFound, CodeUnknown},
		{"unknown sweep workload", `{"experiment":"fig5","workloads":["NOPE"]}`, http.StatusNotFound, CodeUnknown},
	}
	for _, tc := range cases {
		res := submit(t, ts.base, tc.spec)
		if res.status != tc.status || res.code != string(tc.code) {
			t.Errorf("%s: got %d/%s, want %d/%s", tc.name, res.status, res.code, tc.status, tc.code)
		}
	}
}

// TestOverloadSheds429 pins the admission contract: a full queue and a
// tenant over its cap both shed immediately with 429 + Retry-After while
// other tenants still get in.
func TestOverloadSheds429(t *testing.T) {
	ts := startTestServer(t, Config{
		Workers:    1,
		QueueDepth: 2,
		TenantCap:  1,
		Chaos:      fault.MustParsePlan("stall:0:400ms@1"),
		Seed:       7,
	})
	spec := func(tenant string) string {
		return fmt.Sprintf(`{"experiment":"classify","workload":"LU32","tenant":%q}`, tenant)
	}
	var wg sync.WaitGroup
	results := make([]submitResult, 2)
	for i, tenant := range []string{"a", "b"} {
		wg.Add(1)
		go func(i int, tenant string) {
			defer wg.Done()
			results[i] = submit(t, ts.base, spec(tenant))
		}(i, tenant)
	}
	// Wait until both jobs hold admission slots (1 running + 1 queued).
	deadline := time.Now().Add(3 * time.Second)
	for {
		depth, _, _ := ts.s.adm.snapshot()
		if depth == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("jobs never occupied the queue")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Queue full: tenant c sheds with 429.
	res := submit(t, ts.base, spec("c"))
	if res.status != http.StatusTooManyRequests || res.code != string(CodeOverload) {
		t.Fatalf("full queue: got %d/%s, want 429/overloaded", res.status, res.code)
	}
	if res.retry == "" {
		t.Error("429 without Retry-After")
	}
	// Tenant a at its cap sheds too, even after the queue frees up.
	wg.Wait()
	for _, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("slow job failed: %d %s", r.status, r.body)
		}
	}
	done := make(chan submitResult, 1)
	go func() { done <- submit(t, ts.base, spec("a")) }()
	waitDepth := func(n int) {
		deadline := time.Now().Add(3 * time.Second)
		for {
			depth, _, _ := ts.s.adm.snapshot()
			if depth == n {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("queue depth never reached %d", n)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitDepth(1)
	res = submit(t, ts.base, spec("a"))
	if res.status != http.StatusTooManyRequests || res.code != string(CodeOverload) {
		t.Fatalf("tenant cap: got %d/%s, want 429/overloaded", res.status, res.code)
	}
	// Another tenant still fits (queue has a free slot).
	res = submit(t, ts.base, spec("b"))
	if res.status != http.StatusOK {
		t.Fatalf("tenant b blocked by tenant a's cap: %d/%s", res.status, res.code)
	}
	if r := <-done; r.status != http.StatusOK {
		t.Fatalf("tenant a's in-cap job failed: %d/%s", r.status, r.code)
	}
}

// TestDrainReadyzRegression pins satellite 2's contract: during a graceful
// drain /readyz flips unready BEFORE the listener stops accepting — probes
// see 503 while submissions still get typed "draining" responses and
// in-flight jobs run to completion.
func TestDrainReadyzRegression(t *testing.T) {
	ts := startTestServer(t, Config{
		Chaos:        fault.MustParsePlan("stall:0:1500ms@1"),
		Seed:         7,
		DrainTimeout: 20 * time.Second,
	})
	slow := make(chan submitResult, 1)
	go func() { slow <- submit(t, ts.base, `{"experiment":"classify","workload":"LU32"}`) }()
	deadline := time.Now().Add(3 * time.Second)
	for {
		depth, _, _ := ts.s.adm.snapshot()
		if depth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow job never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ts.cancel() // the SIGTERM path: the signal context cancels

	// /readyz must flip to 503 while the listener still accepts.
	deadline = time.Now().Add(3 * time.Second)
	for {
		resp, err := http.Get(ts.base + "/readyz")
		if err != nil {
			t.Fatalf("/readyz unreachable during drain: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped unready during drain")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Submissions during the drain get a typed rejection over live HTTP —
	// not a connection error. (A submission racing the readyz flip may
	// still be admitted; poll until the draining rejection is observed.)
	deadline = time.Now().Add(3 * time.Second)
	for {
		res := submit(t, ts.base, `{"experiment":"classify","workload":"LU32"}`)
		if res.status == http.StatusServiceUnavailable {
			if res.code != string(CodeDraining) {
				t.Fatalf("drain rejection code %q, want draining", res.code)
			}
			if res.retry == "" {
				t.Error("draining 503 without Retry-After")
			}
			break
		}
		if res.status != http.StatusOK {
			t.Fatalf("submission during drain: %d/%s", res.status, res.code)
		}
		if time.Now().After(deadline) {
			t.Fatal("draining rejection never observed")
		}
	}

	// The in-flight job finishes cleanly within the drain deadline...
	if r := <-slow; r.status != http.StatusOK {
		t.Fatalf("in-flight job during drain: %d %s", r.status, r.body)
	}
	// ...and the drain reports clean.
	select {
	case err := <-ts.runErr:
		ts.runErr <- err
		if err != nil {
			t.Fatalf("graceful drain returned %v", err)
		}
	case <-time.After(25 * time.Second):
		t.Fatal("drain hung")
	}
	// After the drain the listener is down.
	if _, err := http.Get(ts.base + "/readyz"); err == nil {
		t.Error("listener still accepting after drain completed")
	}
}

// TestForcedDrainCancelsJobs: a job still running at the drain deadline is
// force-canceled with a typed error, and Run reports the forced drain as a
// partial result (exit 3 via experiment.ErrPartial).
func TestForcedDrainCancelsJobs(t *testing.T) {
	ts := startTestServer(t, Config{
		Chaos:        fault.MustParsePlan("stall:0:1500ms@1"),
		Seed:         7,
		DrainTimeout: 150 * time.Millisecond,
	})
	slow := make(chan submitResult, 1)
	go func() { slow <- submit(t, ts.base, `{"experiment":"classify","workload":"LU32"}`) }()
	deadline := time.Now().Add(3 * time.Second)
	for {
		depth, _, _ := ts.s.adm.snapshot()
		if depth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	err := ts.drain(t)
	if !errors.Is(err, ErrDrainForced) || !errors.Is(err, experiment.ErrPartial) {
		t.Fatalf("forced drain returned %v, want ErrDrainForced wrapping ErrPartial", err)
	}
	r := <-slow
	if r.status != http.StatusServiceUnavailable || r.code != string(CodeCanceled) {
		t.Fatalf("force-canceled job got %d/%s, want 503/canceled", r.status, r.code)
	}
	if got := ts.s.forced.Load(); got != 1 {
		t.Errorf("forced count = %d, want 1", got)
	}
}

// TestRetryExhaustionIsTypedFault: a plan that always faults burns the
// full retry budget and surfaces as a 502 with the attempt count.
func TestRetryExhaustionIsTypedFault(t *testing.T) {
	ts := startTestServer(t, Config{
		Chaos:     fault.MustParsePlan("error:50@1"),
		RetryMax:  2,
		RetryBase: time.Millisecond,
		Seed:      7,
	})
	res := submit(t, ts.base, `{"experiment":"classify","workload":"LU32"}`)
	if res.status != http.StatusBadGateway || res.code != string(CodeFault) {
		t.Fatalf("got %d/%s, want 502/fault", res.status, res.code)
	}
	var env errorEnvelope
	if err := json.Unmarshal(res.body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + RetryMax)", env.Error.Attempts)
	}
	if !env.Error.Retryable {
		t.Error("fault not marked retryable")
	}
	if got := ts.s.retries.Load(); got != 2 {
		t.Errorf("retry counter = %d, want 2", got)
	}
}

// TestBreakerQuarantinesOverHTTP: repeated faults open the tenant and
// workload circuits; subsequent submissions shed with 503 "quarantined"
// without touching the queue, and an unrelated workload still runs.
func TestBreakerQuarantinesOverHTTP(t *testing.T) {
	ts := startTestServer(t, Config{
		Chaos:            fault.MustParsePlan("error:50@1"),
		RetryMax:         0,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
		Seed:             7,
	})
	spec := `{"experiment":"classify","workload":"LU32","tenant":"victim"}`
	for i := 0; i < 2; i++ {
		if res := submit(t, ts.base, spec); res.status != http.StatusBadGateway {
			t.Fatalf("fault job %d: %d/%s", i, res.status, res.code)
		}
	}
	res := submit(t, ts.base, spec)
	if res.status != http.StatusServiceUnavailable || res.code != string(CodeQuarantined) {
		t.Fatalf("got %d/%s, want 503/quarantined", res.status, res.code)
	}
	if res.retry == "" {
		t.Error("quarantine without Retry-After")
	}
	// The workload circuit is open too: another tenant on the same
	// workload is also quarantined.
	res = submit(t, ts.base, `{"experiment":"classify","workload":"LU32","tenant":"other"}`)
	if res.status != http.StatusServiceUnavailable || res.code != string(CodeQuarantined) {
		t.Fatalf("workload circuit: got %d/%s, want 503/quarantined", res.status, res.code)
	}
	open := ts.s.brk.openKeys()
	if open["tenant/victim"] != "open" || open["workload/LU32"] != "open" {
		t.Errorf("open circuits = %v, want tenant/victim and workload/LU32", open)
	}
}

// TestDeadlineIsTyped504: a spec deadline shorter than the job surfaces as
// 504 deadline_exceeded.
func TestDeadlineIsTyped504(t *testing.T) {
	ts := startTestServer(t, Config{
		Chaos: fault.MustParsePlan("stall:0:700ms@1"),
		Seed:  7,
	})
	res := submit(t, ts.base, `{"experiment":"classify","workload":"LU32","timeout_ms":100}`)
	if res.status != http.StatusGatewayTimeout || res.code != string(CodeTimeout) {
		t.Fatalf("got %d/%s, want 504/deadline_exceeded", res.status, res.code)
	}
}

// TestChaosLifecycleLeakFree is the acceptance run: ≥100 concurrent jobs
// across tenants against a chaos-armed server, then a drain — every
// response typed, every clean table bit-identical to the offline bytes,
// counters consistent, and no goroutine or slot leaks. Run under -race by
// make serve-check.
func TestChaosLifecycleLeakFree(t *testing.T) {
	if testing.Short() {
		t.Skip("hundred-job lifecycle")
	}
	base := runtime.NumGoroutine()

	ts := startTestServer(t, Config{
		QueueDepth: 256,
		TenantCap:  64,
		Chaos:      fault.MustParsePlan("error:200@0.3,slow:20000:1ms@0.2"),
		RetryMax:   3,
		RetryBase:  time.Millisecond,
		Seed:       42,
	})
	want := offlineClassify(t, "LU32", 64, "all")

	const jobs = 120
	var wg sync.WaitGroup
	results := make([]submitResult, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := fmt.Sprintf(`{"experiment":"classify","workload":"LU32","tenant":"t%d"}`, i%4)
			results[i] = submit(t, ts.base, spec)
		}(i)
	}
	wg.Wait()

	okCount, faultCount := 0, 0
	for i, r := range results {
		switch r.status {
		case http.StatusOK:
			okCount++
			if !bytes.Equal(r.body, want) {
				t.Fatalf("job %d: clean table differs from offline bytes", i)
			}
		case http.StatusBadGateway:
			faultCount++
			if r.code != string(CodeFault) {
				t.Errorf("job %d: 502 with code %q", i, r.code)
			}
		case http.StatusTooManyRequests:
			if r.code != string(CodeOverload) {
				t.Errorf("job %d: 429 with code %q", i, r.code)
			}
		case http.StatusServiceUnavailable:
			if r.code != string(CodeQuarantined) && r.code != string(CodeCanceled) {
				t.Errorf("job %d: 503 with code %q", i, r.code)
			}
		default:
			t.Errorf("job %d: unexpected status %d code %q", i, r.status, r.code)
		}
	}
	if okCount == 0 {
		t.Error("no job succeeded under chaos")
	}
	if faultCount == 0 && ts.s.retries.Load() == 0 {
		t.Error("chaos plan never fired (no faults, no retries)")
	}

	// Counter consistency: everything admitted was processed.
	admitted, completed, failed := ts.s.admitted.Load(), ts.s.completed.Load(), ts.s.failed.Load()
	if admitted != completed+failed {
		t.Errorf("admitted %d != completed %d + failed %d", admitted, completed, failed)
	}
	if depth, tenants, _ := ts.s.adm.snapshot(); depth != 0 || len(tenants) != 0 {
		t.Errorf("admission slots leaked: depth %d tenants %v", depth, tenants)
	}

	if err := ts.drain(t); err != nil {
		t.Fatalf("drain after chaos returned %v", err)
	}
	waitForGoroutines(t, base)
}

// waitForGoroutines polls until the goroutine count drops back to at most
// base, tolerating scheduler lag.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
