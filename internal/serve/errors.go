package serve

import (
	"fmt"
	"net/http"
)

// Code classifies a job failure for clients. Every error response carries
// exactly one code, and the code alone determines the HTTP status and
// whether a retry can help — the server's failure contract, pinned by the
// chaos suite and documented in the README status table.
type Code string

const (
	// CodeBadRequest marks a malformed or invalid job spec (400).
	CodeBadRequest Code = "bad_request"
	// CodeUnknown marks a spec naming an unknown workload or experiment
	// (404).
	CodeUnknown Code = "unknown_target"
	// CodeOverload marks an admission rejection — the job queue is full
	// or the tenant is at its in-flight cap (429 + Retry-After).
	CodeOverload Code = "overloaded"
	// CodeDraining marks a submission that arrived after the server began
	// its graceful drain (503 + Retry-After).
	CodeDraining Code = "draining"
	// CodeQuarantined marks a tenant or workload whose circuit breaker is
	// open after repeated faults (503 + Retry-After = cooldown left).
	CodeQuarantined Code = "quarantined"
	// CodeTimeout marks a job that exceeded its deadline (504).
	CodeTimeout Code = "deadline_exceeded"
	// CodeCanceled marks a job canceled before completing — the client
	// went away or the drain deadline forced cancellation (503).
	CodeCanceled Code = "canceled"
	// CodePanic marks a job whose replay panicked; the panic was
	// recovered into this typed error and the worker survived (500).
	CodePanic Code = "panic"
	// CodeFault marks a job whose trace stream failed transiently (an
	// injected or I/O fault) and exhausted its retries (502).
	CodeFault Code = "fault"
	// CodeInternal marks any other server-side failure (500).
	CodeInternal Code = "internal"
)

// JobError is the typed error a failed job surfaces: the classification
// code, the job's identity, how many attempts ran, and the underlying
// cause. It is the serving layer's CellError analogue — chaos tests match
// the wrapped cause with errors.Is/As through it.
type JobError struct {
	// Code classifies the failure and drives HTTPStatus and Retryable.
	Code Code
	// Job is the server-assigned job id (0 for admission rejections,
	// which never became jobs).
	Job uint64
	// Tenant is the submitting tenant.
	Tenant string
	// Attempts is how many attempts ran before the job was declared
	// failed (0 for rejections).
	Attempts int
	// Err is the underlying cause; may be nil for pure admission
	// rejections.
	Err error
}

func (e *JobError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("serve: job %d (%s): %s", e.Job, e.Tenant, e.Code)
	}
	return fmt.Sprintf("serve: job %d (%s): %s after %d attempts: %v", e.Job, e.Tenant, e.Code, e.Attempts, e.Err)
}

func (e *JobError) Unwrap() error { return e.Err }

// HTTPStatus maps the code onto the response status.
func (e *JobError) HTTPStatus() int {
	switch e.Code {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeUnknown:
		return http.StatusNotFound
	case CodeOverload:
		return http.StatusTooManyRequests
	case CodeDraining, CodeQuarantined, CodeCanceled:
		return http.StatusServiceUnavailable
	case CodeTimeout:
		return http.StatusGatewayTimeout
	case CodeFault:
		return http.StatusBadGateway
	}
	return http.StatusInternalServerError
}

// Retryable reports whether resubmitting the same job can succeed: true
// for load-shedding, drain, quarantine, transient faults and timeouts;
// false for client errors and deterministic failures (panics).
func (e *JobError) Retryable() bool {
	switch e.Code {
	case CodeOverload, CodeDraining, CodeQuarantined, CodeFault, CodeTimeout, CodeCanceled:
		return true
	}
	return false
}
