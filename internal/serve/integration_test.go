package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/load"
)

// TestLoadAgainstChaosServer composes the two halves of the chaos suite:
// the invitro-style generator offers seeded load to a fault-armed server,
// and the report must show real throughput (jobs/s, refs/s from the
// /v1/stats delta) alongside typed failures — nothing untyped, nothing
// hung.
func TestLoadAgainstChaosServer(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load run")
	}
	ts := startTestServer(t, Config{
		QueueDepth: 128,
		TenantCap:  64,
		Chaos:      fault.MustParsePlan("error:500@0.25"),
		RetryMax:   2,
		RetryBase:  time.Millisecond,
		Seed:       11,
	})
	rep, err := load.Run(context.Background(), load.Config{
		BaseURL:  ts.base,
		Mode:     "step",
		RPS:      20,
		StepRPS:  20,
		Duration: 2 * time.Second,
		Dist:     "exponential",
		Seed:     3,
		Bodies: [][]byte{
			[]byte(`{"experiment":"classify","workload":"LU32","tenant":"alpha"}`),
			[]byte(`{"experiment":"classify","workload":"LU32","tenant":"beta"}`),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 || rep.OK == 0 {
		t.Fatalf("load run made no progress: sent %d ok %d", rep.Sent, rep.OK)
	}
	if rep.RefsPerSec <= 0 {
		t.Errorf("refs/s = %v, want > 0", rep.RefsPerSec)
	}
	// Every non-200 must carry a typed code from the server's contract.
	valid := map[string]bool{
		string(CodeFault): true, string(CodeOverload): true,
		string(CodeQuarantined): true, string(CodeDraining): true,
		string(CodeCanceled): true, string(CodeTimeout): true,
	}
	nonOK := 0
	for code, n := range rep.Codes {
		nonOK += n
		if !valid[code] {
			t.Errorf("untyped failure code %q (%d times)", code, n)
		}
	}
	if rep.Sent != rep.OK+nonOK {
		t.Errorf("sent %d != ok %d + failed %d", rep.Sent, rep.OK, nonOK)
	}
	// Chaos at 25% with 2 retries: some attempts must have retried or
	// faulted over a few dozen jobs.
	if rep.ServerRetries == 0 && rep.Codes[string(CodeFault)] == 0 {
		t.Error("chaos plan never fired during the load run")
	}
	if err := ts.drain(t); err != nil {
		t.Fatalf("drain after load returned %v", err)
	}
}
