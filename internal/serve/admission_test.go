package serve

import "testing"

func TestAdmitQueueCap(t *testing.T) {
	a := newAdmitter(2, 2)
	if je := a.admit("a"); je != nil {
		t.Fatal(je)
	}
	if je := a.admit("b"); je != nil {
		t.Fatal(je)
	}
	je := a.admit("c")
	if je == nil || je.Code != CodeOverload {
		t.Fatalf("full queue admitted (err %v)", je)
	}
	a.release("a")
	if je := a.admit("c"); je != nil {
		t.Fatalf("release did not free a slot: %v", je)
	}
}

func TestAdmitTenantCap(t *testing.T) {
	a := newAdmitter(10, 1)
	if je := a.admit("a"); je != nil {
		t.Fatal(je)
	}
	if je := a.admit("a"); je == nil || je.Code != CodeOverload {
		t.Fatalf("tenant over cap admitted (err %v)", je)
	}
	// Another tenant is unaffected.
	if je := a.admit("b"); je != nil {
		t.Fatalf("tenant b throttled by tenant a's cap: %v", je)
	}
	a.release("a")
	if je := a.admit("a"); je != nil {
		t.Fatalf("release did not free the tenant slot: %v", je)
	}
}

func TestAdmitDraining(t *testing.T) {
	a := newAdmitter(10, 10)
	if je := a.admit("a"); je != nil {
		t.Fatal(je)
	}
	drained := a.beginDrain()
	if je := a.admit("b"); je == nil || je.Code != CodeDraining {
		t.Fatalf("admission open during drain (err %v)", je)
	}
	select {
	case <-drained:
		t.Fatal("drain gate opened with a job outstanding")
	default:
	}
	a.release("a")
	select {
	case <-drained:
	default:
		t.Fatal("last release did not open the drain gate")
	}
}

func TestBeginDrainEmptyAndIdempotent(t *testing.T) {
	a := newAdmitter(10, 10)
	d1 := a.beginDrain()
	select {
	case <-d1:
	default:
		t.Fatal("empty admitter's drain gate not already open")
	}
	d2 := a.beginDrain()
	select {
	case <-d2:
	default:
		t.Fatal("second beginDrain returned an unopened gate")
	}
}

func TestAdmitterSnapshot(t *testing.T) {
	a := newAdmitter(10, 10)
	a.admit("a")
	a.admit("a")
	a.admit("b")
	queued, tenants, draining := a.snapshot()
	if queued != 3 || tenants["a"] != 2 || tenants["b"] != 1 || draining {
		t.Fatalf("snapshot = %d %v %v", queued, tenants, draining)
	}
	a.release("b")
	_, tenants, _ = a.snapshot()
	if _, ok := tenants["b"]; ok {
		t.Fatal("fully released tenant still in snapshot")
	}
}
