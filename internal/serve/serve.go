// Package serve is the long-running classification service: clients
// submit jobs — JSON specs naming a workload/experiment, or uploaded
// trace bodies — over HTTP and get back the exact tables the offline CLI
// renders. The server is built for multi-tenant robustness: a bounded
// admission-controlled queue (429 + Retry-After under overload, per-tenant
// in-flight caps), per-job deadlines on the repo's context plumbing, panic
// recovery into typed job errors, retry with seeded jittered backoff
// around transient trace faults, a circuit breaker that quarantines
// tenants and workloads after repeated failures, and a graceful drain on
// SIGINT/SIGTERM that flips /readyz before the listener stops accepting.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// Config tunes the server. The zero value is not usable; withDefaults
// fills every unset knob with production defaults, so tests and the CLI
// only set what they care about.
type Config struct {
	// Addr is the listen address; ":0" picks a free port (tests).
	Addr string
	// Workers is the job worker pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds admitted-but-unfinished jobs (queued + running);
	// beyond it submissions shed with 429.
	QueueDepth int
	// TenantCap bounds one tenant's share of QueueDepth.
	TenantCap int
	// JobTimeout is the default per-job deadline; MaxJobTimeout caps
	// what a spec may request.
	JobTimeout    time.Duration
	MaxJobTimeout time.Duration
	// DrainTimeout bounds the graceful drain; in-flight jobs still
	// running at the deadline are force-canceled.
	DrainTimeout time.Duration
	// RetryMax is the number of retries after a transient fault (so
	// RetryMax+1 attempts in total); RetryBase is the backoff unit,
	// doubled per attempt with seeded jitter.
	RetryMax  int
	RetryBase time.Duration
	// BreakerThreshold consecutive breaker-relevant failures open a
	// tenant/workload circuit for BreakerCooldown.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// RetryAfter is the hint returned with 429/503 responses.
	RetryAfter time.Duration
	// MaxBodyBytes bounds an uploaded trace body.
	MaxBodyBytes int64
	// MaxParallelism clamps a spec's parallelism and shards.
	MaxParallelism int
	// Seed feeds the retry jitter and the chaos plan; a fixed seed makes
	// every (job, attempt) reproducible.
	Seed int64
	// Chaos, when non-nil, arms fault injection: each job attempt whose
	// derived seed fires the plan runs with its trace streams wrapped by
	// the plan's injectors. Nil serves clean.
	Chaos *fault.Plan
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8095"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.TenantCap <= 0 {
		c.TenantCap = 16
	}
	if c.TenantCap > c.QueueDepth {
		c.TenantCap = c.QueueDepth
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.MaxJobTimeout <= 0 {
		c.MaxJobTimeout = 10 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.RetryMax < 0 {
		c.RetryMax = 0
	} else if c.RetryMax == 0 {
		c.RetryMax = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = 4 * runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ErrDrainForced marks a drain that hit its deadline and force-canceled
// in-flight jobs. It wraps experiment.ErrPartial so the CLI's established
// exit-code table maps it to 3 (partial results) without a new code.
var ErrDrainForced = fmt.Errorf("serve: drain deadline exceeded: %w", experiment.ErrPartial)

// Server is one serving process: listener, admission controller, breaker,
// shared trace cache and worker pool.
type Server struct {
	cfg Config

	ln  net.Listener
	srv *http.Server

	adm   *admitter
	brk   *breaker
	cache *sweep.TraceCache

	// jobs is the bounded queue. Admission reserves a slot before a job
	// is enqueued and the channel's capacity equals the admission bound,
	// so sends never block; sendMu/closed make close-vs-send safe on the
	// forced-drain path (a closed queue turns an enqueue into a typed
	// rejection instead of a panic).
	jobs     chan *job
	sendMu   sync.RWMutex
	qclosed  bool
	inflight atomic.Int64

	// jobsCtx parents every job context. It is NOT derived from Run's
	// ctx: Run's cancellation starts the graceful drain, during which
	// in-flight jobs keep running; only the drain deadline cancels
	// jobsCtx (the forced path).
	jobsCtx     context.Context
	forceCancel context.CancelFunc

	nextID atomic.Uint64
	wg     sync.WaitGroup

	// sleep is the retry backoff pause; tests swap in a recording fake.
	sleep func(context.Context, time.Duration) error

	// Server-local mirrors of the obs counters, for /v1/stats (the obs
	// registry is process-global; these are this server's own).
	admitted  atomic.Uint64
	rejected  atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	retries   atomic.Uint64
	forced    atomic.Uint64
}

// New binds the listener and assembles the server; Run starts serving.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	jobsCtx, forceCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		ln:          ln,
		adm:         newAdmitter(cfg.QueueDepth, cfg.TenantCap),
		brk:         newBreaker(breakerPolicy{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown}, nil),
		cache:       experiment.NewTraceCache(),
		jobs:        make(chan *job, cfg.QueueDepth),
		jobsCtx:     jobsCtx,
		forceCancel: forceCancel,
		sleep:       sleepCtx,
	}
	s.srv = &http.Server{Handler: s.handler()}
	return s, nil
}

// Addr is the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close tears the server down without draining (tests' cleanup path).
func (s *Server) Close() error {
	s.forceCancel()
	return s.srv.Close()
}

// Run serves until ctx is canceled, then drains gracefully:
//
//  1. /readyz flips unready FIRST — load balancers stop sending work
//     while the listener is still accepting (satellite 2's contract);
//  2. admission closes — new submissions get a typed 503 "draining";
//  3. in-flight jobs run to completion, up to DrainTimeout;
//  4. at the deadline, remaining jobs are force-canceled (typed
//     "canceled" errors to their clients) and counted;
//  5. the listener shuts down last, after the last response is written.
//
// A clean drain returns nil (exit 0); a forced drain returns
// ErrDrainForced, which wraps experiment.ErrPartial (exit 3).
func (s *Server) Run(ctx context.Context) error {
	obs.SetReady(true)
	defer obs.SetReady(false)

	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.srv.Serve(s.ln) }()

	select {
	case err := <-serveErr:
		// Listener died out from under us: cancel everything.
		s.forceCancel()
		s.closeQueue()
		s.wg.Wait()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
	}

	// Graceful drain. Order matters; see the doc comment.
	obs.SetReady(false)
	drained := s.adm.beginDrain()

	forced := false
	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-drained:
	case <-timer.C:
		forced = true
		s.forceCancel()
		// The canceled jobs unwind through their contexts and release
		// their slots; give them a bounded moment to do so.
		cleanup := time.NewTimer(5 * time.Second)
		select {
		case <-drained:
			cleanup.Stop()
		case <-cleanup.C:
		}
	}

	s.closeQueue()
	s.wg.Wait()
	s.forceCancel()

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.srv.Shutdown(shutCtx); err != nil {
		s.srv.Close()
	}

	if forced {
		n := s.forced.Load()
		mForced.Add(n)
		return fmt.Errorf("%w (%d jobs force-canceled)", ErrDrainForced, n)
	}
	return nil
}

// enqueue hands an admitted job to the worker pool. The admission slot
// guarantees channel capacity, so the send never blocks; a closed queue
// (forced drain already past) rejects instead.
func (s *Server) enqueue(j *job) bool {
	s.sendMu.RLock()
	defer s.sendMu.RUnlock()
	if s.qclosed {
		return false
	}
	s.jobs <- j
	return true
}

// closeQueue closes the job channel exactly once, excluding concurrent
// enqueues. Workers range until close, draining every buffered job, so
// every successfully enqueued job is processed and its submitter
// unblocked.
func (s *Server) closeQueue() {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if !s.qclosed {
		s.qclosed = true
		close(s.jobs)
	}
}

// worker drains the job queue until it closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		mInflight.Set(float64(s.inflight.Add(1)))
		s.runJob(j)
		mInflight.Set(float64(s.inflight.Add(-1)))
		if j.err == nil {
			mCompleted.Inc()
			s.completed.Add(1)
		} else {
			mFailed.Inc()
			s.failed.Add(1)
			if j.err.Code == CodeCanceled && s.jobsCtx.Err() != nil {
				// Canceled by the drain deadline, not by its own
				// client going away.
				s.forced.Add(1)
			}
		}
		mLatency.Observe(uint64(time.Since(j.start)))
		s.adm.release(j.spec.tenant())
		j.cancel()
		close(j.done)
	}
}
