package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// handler builds the server's mux on top of the repo's debug/metrics
// surface, so /metrics, /metrics.json, /healthz, /readyz, /debug/vars and
// /debug/pprof ride along with the job API.
func (s *Server) handler() http.Handler {
	mux := obs.NewDebugMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// errorEnvelope is the JSON body of every non-200 response.
type errorEnvelope struct {
	Error struct {
		Code      Code   `json:"code"`
		Message   string `json:"message"`
		Job       uint64 `json:"job,omitempty"`
		Attempts  int    `json:"attempts,omitempty"`
		Retryable bool   `json:"retryable"`
	} `json:"error"`
}

// writeError renders a JobError as its HTTP status plus the JSON envelope,
// attaching Retry-After to the shedding statuses.
func (s *Server) writeError(w http.ResponseWriter, je *JobError, retryAfter time.Duration) {
	status := je.HTTPStatus()
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		if retryAfter <= 0 {
			retryAfter = s.cfg.RetryAfter
		}
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	var env errorEnvelope
	env.Error.Code = je.Code
	env.Error.Message = je.Error()
	env.Error.Job = je.Job
	env.Error.Attempts = je.Attempts
	env.Error.Retryable = je.Retryable()
	json.NewEncoder(w).Encode(&env) //nolint:errcheck // best-effort error body
}

// handleSubmit is the job API: a JSON JobSpec body, or an uploaded trace
// body (packed store or binary codec) with the classify parameters in the
// query string. The call is synchronous — the response is the rendered
// table, byte-identical to the offline CLI's.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, traceBytes, je := s.parseSubmission(r)
	if je == nil {
		je = spec.validate(s.cfg.MaxParallelism, traceBytes != nil)
	}
	if je != nil {
		mRejected.Inc()
		s.rejected.Add(1)
		s.writeError(w, je, 0)
		return
	}

	tenant := spec.tenant()
	if je := s.adm.admit(tenant); je != nil {
		mRejected.Inc()
		s.rejected.Add(1)
		s.writeError(w, je, 0)
		return
	}

	j := &job{
		id:         s.nextID.Add(1),
		spec:       *spec,
		traceBytes: traceBytes,
		done:       make(chan struct{}),
	}
	// The breaker gate sits inside the admission slot so a rejected
	// probe can be rolled back without racing another submission.
	if wait, ok := s.brk.allowAll(j.breakerKeys()...); !ok {
		s.adm.release(tenant)
		mRejected.Inc()
		s.rejected.Add(1)
		s.writeError(w, &JobError{Code: CodeQuarantined, Tenant: tenant}, wait)
		return
	}

	// The job's context descends from jobsCtx — NOT the request context —
	// so a graceful drain lets it finish; the client going away cancels
	// it through AfterFunc.
	j.ctx, j.cancel = context.WithCancel(s.jobsCtx)
	stopWatch := context.AfterFunc(r.Context(), j.cancel)
	defer stopWatch()
	j.start = time.Now()

	if !s.enqueue(j) {
		j.cancel()
		s.brk.forgiveAll(j.breakerKeys()...)
		s.adm.release(tenant)
		mRejected.Inc()
		s.rejected.Add(1)
		s.writeError(w, &JobError{Code: CodeDraining, Tenant: tenant, Job: j.id}, 0)
		return
	}
	mAdmitted.Inc()
	s.admitted.Add(1)

	<-j.done
	if j.err != nil {
		s.writeError(w, j.err, 0)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Job-Id", strconv.FormatUint(j.id, 10))
	w.Header().Set("X-Job-Attempts", strconv.Itoa(j.attempts))
	w.Header().Set("X-Job-Elapsed-Ms", strconv.FormatInt(time.Since(j.start).Milliseconds(), 10))
	w.Write(j.out.Bytes()) //nolint:errcheck // client disconnect is not actionable
}

// parseSubmission extracts the job spec and optional trace body from the
// request. JSON bodies are specs; octet-stream bodies are trace uploads
// whose parameters arrive in the query string and X-Tenant header.
func (s *Server) parseSubmission(r *http.Request) (*JobSpec, []byte, *JobError) {
	badReq := func(format string, args ...any) *JobError {
		return &JobError{Code: CodeBadRequest, Err: fmt.Errorf(format, args...)}
	}
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	ct = strings.TrimSpace(ct)

	switch ct {
	case "", "application/json":
		var spec JobSpec
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				return nil, nil, badReq("body exceeds %d bytes", s.cfg.MaxBodyBytes)
			}
			return nil, nil, badReq("bad job spec: %v", err)
		}
		return &spec, nil, nil
	case "application/octet-stream":
		raw, err := io.ReadAll(body)
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				return nil, nil, badReq("trace body exceeds %d bytes", s.cfg.MaxBodyBytes)
			}
			return nil, nil, badReq("reading trace body: %v", err)
		}
		if len(raw) == 0 {
			return nil, nil, badReq("empty trace body")
		}
		q := r.URL.Query()
		spec := &JobSpec{
			Experiment: "classify",
			Scheme:     q.Get("scheme"),
			Tenant:     q.Get("tenant"),
		}
		if spec.Tenant == "" {
			spec.Tenant = r.Header.Get("X-Tenant")
		}
		if v := q.Get("block"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, nil, badReq("bad block %q", v)
			}
			spec.Block = n
		}
		if v := q.Get("timeout_ms"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, nil, badReq("bad timeout_ms %q", v)
			}
			spec.TimeoutMs = n
		}
		return spec, raw, nil
	}
	return nil, nil, badReq("unsupported Content-Type %q", ct)
}

// statsReply is the /v1/stats JSON shape — the load harness reads refs to
// compute sustained refs/s without scraping Prometheus text.
type statsReply struct {
	Queue struct {
		Depth    int            `json:"depth"`
		Cap      int            `json:"cap"`
		Tenants  map[string]int `json:"tenants"`
		Draining bool           `json:"draining"`
	} `json:"queue"`
	Jobs struct {
		Admitted  uint64 `json:"admitted"`
		Rejected  uint64 `json:"rejected"`
		Completed uint64 `json:"completed"`
		Failed    uint64 `json:"failed"`
		Retries   uint64 `json:"retries"`
		Forced    uint64 `json:"forced_cancels"`
	} `json:"jobs"`
	Breakers map[string]string `json:"breakers"`
	Refs     struct {
		Driven    uint64 `json:"driven"`
		Collected uint64 `json:"collected"`
	} `json:"refs"`
}

var (
	cDriveRefs   = obs.Default.Counter(obs.NameDriveRefs)
	cCollectRefs = obs.Default.Counter(obs.NameCollectRefs)
)

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var reply statsReply
	depth, tenants, draining := s.adm.snapshot()
	reply.Queue.Depth = depth
	reply.Queue.Cap = s.cfg.QueueDepth
	reply.Queue.Tenants = tenants
	reply.Queue.Draining = draining
	reply.Jobs.Admitted = s.admitted.Load()
	reply.Jobs.Rejected = s.rejected.Load()
	reply.Jobs.Completed = s.completed.Load()
	reply.Jobs.Failed = s.failed.Load()
	reply.Jobs.Retries = s.retries.Load()
	reply.Jobs.Forced = s.forced.Load()
	reply.Breakers = s.brk.openKeys()
	reply.Refs.Driven = cDriveRefs.Value()
	reply.Refs.Collected = cCollectRefs.Value()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&reply) //nolint:errcheck // best-effort stats
}
