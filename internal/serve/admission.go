package serve

import "sync"

// admitter is the admission controller: it bounds the number of admitted
// but unfinished jobs (queued + running) and the per-tenant share of that
// bound, and it is the drain gate. Admission reserves a slot before the job
// is enqueued, so the job channel's capacity is never the thing clients
// block on — a full queue is an immediate typed 429, not a stalled request.
type admitter struct {
	mu        sync.Mutex
	queueCap  int // max admitted-but-unfinished jobs in total
	tenantCap int // max admitted-but-unfinished jobs per tenant
	queued    int
	perTenant map[string]int
	draining  bool
	drained   chan struct{} // closed when draining && outstanding == 0
}

func newAdmitter(queueCap, tenantCap int) *admitter {
	return &admitter{
		queueCap:  queueCap,
		tenantCap: tenantCap,
		perTenant: make(map[string]int),
		drained:   make(chan struct{}),
	}
}

// admit reserves an admission slot for tenant, or explains the rejection
// with a typed error (draining, tenant cap, queue full). The caller must
// pair a successful admit with exactly one release.
func (a *admitter) admit(tenant string) *JobError {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.draining {
		return &JobError{Code: CodeDraining, Tenant: tenant}
	}
	if a.perTenant[tenant] >= a.tenantCap {
		return &JobError{Code: CodeOverload, Tenant: tenant}
	}
	if a.queued >= a.queueCap {
		return &JobError{Code: CodeOverload, Tenant: tenant}
	}
	a.queued++
	a.perTenant[tenant]++
	mQueue.Set(float64(a.queued))
	return nil
}

// release returns tenant's admission slot. When the server is draining and
// this was the last outstanding job, the drain gate opens.
func (a *admitter) release(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.queued--
	if a.perTenant[tenant] <= 1 {
		delete(a.perTenant, tenant)
	} else {
		a.perTenant[tenant]--
	}
	mQueue.Set(float64(a.queued))
	if a.draining && a.queued == 0 {
		select {
		case <-a.drained:
		default:
			close(a.drained)
		}
	}
}

// beginDrain stops admission and returns a channel that closes once every
// already-admitted job has released its slot. Idempotent.
func (a *admitter) beginDrain() <-chan struct{} {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.draining = true
	if a.queued == 0 {
		select {
		case <-a.drained:
		default:
			close(a.drained)
		}
	}
	return a.drained
}

// snapshot reports the current depth and per-tenant occupancy for
// /v1/stats.
func (a *admitter) snapshot() (queued int, perTenant map[string]int, draining bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	perTenant = make(map[string]int, len(a.perTenant))
	for k, v := range a.perTenant {
		perTenant[k] = v
	}
	return a.queued, perTenant, a.draining
}
