package serve

import "repro/internal/obs"

// Serving-layer metric handles, resolved once at init like the trace
// pump's. Everything here is timing-class: job latency and queue depth are
// wall-clock observations, and even the counters fire from concurrent
// handler goroutines whose interleaving is scheduler-dependent — none of it
// may ever join the deterministic section.
var (
	mAdmitted  = obs.Default.TimingCounter(obs.NameServeAdmitted)
	mRejected  = obs.Default.TimingCounter(obs.NameServeRejected)
	mCompleted = obs.Default.TimingCounter(obs.NameServeCompleted)
	mFailed    = obs.Default.TimingCounter(obs.NameServeFailed)
	mRetries   = obs.Default.TimingCounter(obs.NameServeRetries)
	mPanics    = obs.Default.TimingCounter(obs.NameServePanics)
	mQueue     = obs.Default.Gauge(obs.NameServeQueueDepth)
	mInflight  = obs.Default.Gauge(obs.NameServeInflight)
	mBreaker   = obs.Default.TimingCounter(obs.NameServeBreakerOpen)
	mBreakerUp = obs.Default.Gauge(obs.NameServeBreakerState)
	mForced    = obs.Default.TimingCounter(obs.NameServeDrainForced)

	// mLatency buckets job wall time in nanoseconds from 1ms to 1min;
	// quick table jobs land at the bottom, full sweeps at the top.
	mLatency = obs.Default.TimingHistogram(obs.NameServeJobLatencyNs, latencyBounds)
)

var latencyBounds = []uint64{
	1e6, 4e6, 16e6, 64e6, 250e6, 1e9, 4e9, 16e9, 60e9,
}
