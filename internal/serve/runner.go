package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// runJob executes one admitted job on a worker: a deadline from the spec
// (capped by the server), a retry loop with seeded jittered backoff around
// transient trace faults, and typed classification of whatever comes out.
// The job's breaker verdict is recorded here; admission already held the
// circuits open.
func (s *Server) runJob(j *job) {
	timeout := s.cfg.JobTimeout
	if j.spec.TimeoutMs > 0 {
		timeout = time.Duration(j.spec.TimeoutMs) * time.Millisecond
	}
	if timeout > s.cfg.MaxJobTimeout {
		timeout = s.cfg.MaxJobTimeout
	}
	ctx, cancel := context.WithTimeout(j.ctx, timeout)
	defer cancel()

	var err error
	for attempt := 1; ; attempt++ {
		j.attempts = attempt
		j.out.Reset()
		err = s.attempt(ctx, j, attempt)
		if err == nil || attempt > s.cfg.RetryMax || !transient(err) {
			break
		}
		// Transient fault with retry budget left: back off with a
		// seeded jitter so synchronized failures don't retry in
		// lockstep, then go again.
		mRetries.Inc()
		s.retries.Add(1)
		backoff := s.cfg.RetryBase << (attempt - 1)
		backoff += time.Duration(mix(s.cfg.Seed, j.id, uint64(attempt)) % uint64(s.cfg.RetryBase))
		if err := s.sleep(ctx, backoff); err != nil {
			break
		}
	}
	if err != nil {
		j.err = s.classify(j, err)
	}

	keys := j.breakerKeys()
	switch {
	case j.err == nil:
		s.brk.successAll(keys...)
	case breakerRelevant(j.err.Code):
		if opened := s.brk.failureAll(keys...); len(opened) > 0 {
			mBreaker.Add(uint64(len(opened)))
		}
	default:
		// No verdict (client went away, bad input surfaced late):
		// release any half-open probe slot without moving the circuit.
		s.brk.forgiveAll(keys...)
	}
}

// attempt runs the job body once, converting a panic anywhere under the
// replay into an error so the worker survives. The fault plan, when armed
// for this attempt's seed, wraps every trace the attempt reads.
func (s *Server) attempt(ctx context.Context, j *job, attempt int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			mPanics.Inc()
			err = fmt.Errorf("%w: recovered panic: %v", errPanic, r)
		}
	}()

	seed := int64(mix(s.cfg.Seed, j.id, uint64(attempt)))
	chaos := s.cfg.Chaos != nil && s.cfg.Chaos.Fires(seed)
	wrap := func(r trace.Reader) trace.Reader { return r }
	if chaos {
		wrap = func(r trace.Reader) trace.Reader { return s.cfg.Chaos.Wrap(r, seed) }
	}

	o := experiment.Options{
		Out:         &j.out,
		CSV:         j.spec.CSV,
		Quick:       j.spec.Quick,
		Workloads:   j.spec.Workloads,
		Protocols:   j.spec.Protocols,
		Blocks:      j.spec.Blocks,
		Parallelism: j.spec.Parallelism,
		Shards:      j.spec.Shards,
		NoFuse:      j.spec.NoFuse,
		Ctx:         ctx,
	}
	if chaos {
		// A faulted attempt gets a private cache so a materialized
		// faulted stream can never poison clean runs (or later
		// attempts of this job).
		o.Cache = experiment.NewWrappedTraceCache(wrap)
	} else {
		o.Cache = s.cache
	}

	switch {
	case j.traceBytes != nil:
		r, openErr := openTraceBytes(j.traceBytes)
		if openErr != nil {
			return fmt.Errorf("%w: %w", errBadTrace, openErr)
		}
		return experiment.ClassifyReader(o, wrap(r), j.spec.Block, j.spec.Scheme)
	case j.spec.Experiment == "classify":
		w, getErr := workload.Get(j.spec.Workload)
		if getErr != nil {
			return fmt.Errorf("%w: %w", errBadTrace, getErr)
		}
		return experiment.ClassifyReader(o, wrap(w.Reader()), j.spec.Block, j.spec.Scheme)
	default:
		return experiment.RunNamed(j.spec.Experiment, o, j.spec.Block)
	}
}

// Internal sentinels attempt uses to smuggle a classification through the
// error return; classify maps them onto codes.
var (
	errPanic    = errors.New("serve: job panicked")
	errBadTrace = errors.New("serve: invalid job input")
)

// transient reports whether a retry of the same attempt can succeed:
// injected/stream faults are transient; everything else (panics, client
// errors, deadlines) is not.
func transient(err error) bool {
	return errors.Is(err, fault.ErrInjected)
}

// classify maps a failed job's final error onto its typed JobError.
func (s *Server) classify(j *job, err error) *JobError {
	je := &JobError{Job: j.id, Tenant: j.spec.tenant(), Attempts: j.attempts, Err: err}
	switch {
	case errors.Is(err, errBadTrace):
		je.Code = CodeBadRequest
	case errors.Is(err, experiment.ErrUnknownJob):
		je.Code = CodeUnknown
	case errors.Is(err, context.DeadlineExceeded):
		je.Code = CodeTimeout
	case errors.Is(err, context.Canceled):
		je.Code = CodeCanceled
	case errors.Is(err, fault.ErrInjected):
		je.Code = CodeFault
	case errors.Is(err, errPanic):
		je.Code = CodePanic
	default:
		je.Code = CodeInternal
	}
	return je
}

// breakerRelevant reports whether a failure code counts against the job's
// circuits. Client errors and load-shedding don't: only server-side
// misbehavior (faults, panics, timeouts, internal errors) quarantines.
func breakerRelevant(code Code) bool {
	switch code {
	case CodeFault, CodePanic, CodeTimeout, CodeInternal:
		return true
	}
	return false
}

// sleep is a ctx-aware pause; tests inject a recording fake through
// Server.sleep.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// mix folds the server seed, job id and attempt into one well-spread
// 64-bit value (splitmix64 over the xor-folded inputs) — the same per-run
// seed feeds the retry jitter and the chaos plan, so a given (job,
// attempt) is fully reproducible for a fixed server seed.
func mix(seed int64, id, attempt uint64) uint64 {
	z := uint64(seed) ^ id*0x9e3779b97f4a7c15 ^ attempt*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// openTraceBytes opens an uploaded trace body: the packed store format
// (sniffed by magic; spooled to a temp file because the store reader needs
// random access) or the v2 binary codec (decoded in place).
func openTraceBytes(b []byte) (trace.Reader, error) {
	if len(b) >= len(tracestore.Magic) && string(b[:len(tracestore.Magic)]) == tracestore.Magic {
		f, err := os.CreateTemp("", "uselessmiss-job-*.umtrace")
		if err != nil {
			return nil, err
		}
		path := f.Name()
		if _, err := f.Write(b); err != nil {
			f.Close()
			os.Remove(path)
			return nil, err
		}
		if err := f.Close(); err != nil {
			os.Remove(path)
			return nil, err
		}
		r, err := tracestore.OpenReader(path)
		if err != nil {
			os.Remove(path)
			return nil, err
		}
		return &unlinkingReader{Reader: r, path: path}, nil
	}
	dec, err := trace.NewDecoder(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	return dec, nil
}

// unlinkingReader removes the spooled temp file when the stream closes.
type unlinkingReader struct {
	*tracestore.Reader
	path string
}

func (r *unlinkingReader) Close() error {
	err := r.Reader.Close()
	if rmErr := os.Remove(r.path); err == nil {
		err = rmErr
	}
	return err
}
