package serve

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"repro/internal/experiment"
	"repro/internal/workload"
)

// JobSpec is the JSON body of a submitted job. Zero values mean "the
// experiment's default", matching the CLI flags field for field so a spec
// and the equivalent command line render byte-identical tables.
type JobSpec struct {
	// Tenant identifies the submitting client for admission caps and
	// circuit breaking; empty means the shared "default" tenant.
	Tenant string `json:"tenant,omitempty"`
	// Experiment names the driver to run: one of experiment.JobKinds, or
	// "classify" for a single-workload classification table.
	Experiment string `json:"experiment"`
	// Workload names the trace-generator workload for classify jobs (and
	// overrides the experiment's workload list when set on driver jobs).
	Workload string `json:"workload,omitempty"`
	// Workloads overrides a driver job's workload list.
	Workloads []string `json:"workloads,omitempty"`
	// Block is the single block size for the experiments that take one
	// (classify, fig6, compare, hotspots, phases, finite); 0 keeps each
	// experiment's paper default.
	Block int `json:"block,omitempty"`
	// Blocks overrides fig5's block-size sweep.
	Blocks []int `json:"blocks,omitempty"`
	// Scheme picks the classify table's scheme: ours, eggers, torrellas
	// or all (the default).
	Scheme string `json:"scheme,omitempty"`
	// Protocols overrides the protocol list for fig6/large/traffic.
	Protocols []string `json:"protocols,omitempty"`
	// Quick substitutes the small data sets in the heavy experiments.
	Quick bool `json:"quick,omitempty"`
	// CSV renders machine-readable CSV instead of aligned tables.
	CSV bool `json:"csv,omitempty"`
	// Parallelism bounds the sweep worker pool (the CLI's -j); clamped
	// to the server's MaxParallelism.
	Parallelism int `json:"parallelism,omitempty"`
	// Shards block-shards each cell (the CLI's -shards); clamped to the
	// server's MaxParallelism.
	Shards int `json:"shards,omitempty"`
	// NoFuse disables the fused multi-configuration replay.
	NoFuse bool `json:"no_fuse,omitempty"`
	// TimeoutMs caps the job's run time in milliseconds; 0 takes the
	// server default, and the server's MaxJobTimeout caps it either way.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

func (s *JobSpec) tenant() string {
	if s.Tenant == "" {
		return "default"
	}
	return s.Tenant
}

// validate normalizes the spec and rejects what can be rejected before
// admission: unknown experiments and workloads (404), nonsensical
// parameters (400). maxPar is the server's parallelism clamp; hasTrace
// marks an uploaded-trace job, whose classify needs no workload.
func (s *JobSpec) validate(maxPar int, hasTrace bool) *JobError {
	reject := func(code Code, format string, args ...any) *JobError {
		return &JobError{Code: code, Tenant: s.tenant(), Err: fmt.Errorf(format, args...)}
	}
	if s.Experiment == "" {
		return reject(CodeBadRequest, "spec missing experiment")
	}
	if s.Block < 0 || s.Parallelism < 0 || s.Shards < 0 || s.TimeoutMs < 0 {
		return reject(CodeBadRequest, "negative block/parallelism/shards/timeout")
	}
	if s.Parallelism > maxPar {
		s.Parallelism = maxPar
	}
	if s.Shards > maxPar {
		s.Shards = maxPar
	}
	if s.Experiment == "classify" {
		if s.Workload == "" && !hasTrace {
			return reject(CodeBadRequest, "classify spec missing workload")
		}
		if s.Scheme == "" {
			s.Scheme = "all"
		}
		switch s.Scheme {
		case "ours", "eggers", "torrellas", "all":
		default:
			return reject(CodeBadRequest, "unknown scheme %q", s.Scheme)
		}
		if s.Block == 0 {
			s.Block = 64
		}
	} else {
		known := false
		for _, k := range experiment.JobKinds {
			if k == s.Experiment {
				known = true
				break
			}
		}
		if !known {
			return reject(CodeUnknown, "unknown experiment %q", s.Experiment)
		}
		if s.Workload != "" && len(s.Workloads) == 0 {
			s.Workloads = []string{s.Workload}
		}
	}
	// Resolve workload names now so a typo is a 404 at submission, not a
	// failed job after queueing.
	for _, name := range append(append([]string{}, s.Workloads...), s.Workload) {
		if name == "" {
			continue
		}
		if _, err := workload.Get(name); err != nil {
			return reject(CodeUnknown, "unknown workload %q", name)
		}
	}
	return nil
}

// job is one admitted unit of work flowing from the handler through the
// queue to a worker and back.
type job struct {
	id   uint64
	spec JobSpec
	// traceBytes, when non-nil, holds an uploaded trace body (packed
	// store or binary codec); the job classifies it instead of a
	// generated workload.
	traceBytes []byte

	ctx    context.Context
	cancel context.CancelFunc

	out      bytes.Buffer
	err      *JobError
	attempts int
	start    time.Time
	done     chan struct{}
}

// breakerKeys lists the circuits this job must pass: its tenant, plus the
// workload for single-workload jobs (a poisoned workload quarantines
// across tenants).
func (j *job) breakerKeys() []string {
	keys := []string{"tenant/" + j.spec.tenant()}
	if j.spec.Workload != "" {
		keys = append(keys, "workload/"+j.spec.Workload)
	}
	return keys
}
