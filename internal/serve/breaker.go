package serve

import (
	"sync"
	"time"
)

// breakerPolicy tunes the circuit breaker shared by every keyed circuit.
type breakerPolicy struct {
	// threshold is the consecutive-failure count that opens a circuit.
	threshold int
	// cooldown is how long an open circuit rejects before allowing one
	// half-open probe.
	cooldown time.Duration
}

// breakerState is one circuit's position in the closed → open → half-open
// cycle.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

type breakerEntry struct {
	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // half-open: the single probe slot is taken
}

// breaker quarantines failing tenants and workloads. Each key ("tenant/X",
// "workload/Y") has an independent circuit; a job must pass every key it
// touches, atomically, so a half-open circuit's single probe slot cannot be
// claimed by a job that another circuit then rejects.
type breaker struct {
	mu      sync.Mutex
	now     func() time.Time
	policy  breakerPolicy
	entries map[string]*breakerEntry
}

func newBreaker(p breakerPolicy, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{now: now, policy: p, entries: make(map[string]*breakerEntry)}
}

func (b *breaker) entry(key string) *breakerEntry {
	e := b.entries[key]
	if e == nil {
		e = &breakerEntry{}
		b.entries[key] = e
	}
	return e
}

// allowAll admits a job through every keyed circuit or through none. On
// rejection it returns the longest remaining cooldown (for Retry-After)
// and rolls back any probe slot it claimed on earlier keys.
func (b *breaker) allowAll(keys ...string) (retryAfter time.Duration, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	var claimed []*breakerEntry
	for _, key := range keys {
		e := b.entry(key)
		switch e.state {
		case breakerClosed:
			continue
		case breakerOpen:
			if wait := e.openedAt.Add(b.policy.cooldown).Sub(now); wait > 0 {
				for _, c := range claimed {
					c.probing = false
				}
				if wait > retryAfter {
					retryAfter = wait
				}
				return retryAfter, false
			}
			// Cooldown elapsed: move to half-open and claim its probe.
			e.state = breakerHalfOpen
			e.probing = true
			claimed = append(claimed, e)
		case breakerHalfOpen:
			if e.probing {
				for _, c := range claimed {
					c.probing = false
				}
				return b.policy.cooldown, false
			}
			e.probing = true
			claimed = append(claimed, e)
		}
	}
	return 0, true
}

// successAll records a successful job against every keyed circuit: closed
// circuits reset their failure run, half-open circuits close.
func (b *breaker) successAll(keys ...string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, key := range keys {
		e := b.entry(key)
		e.failures = 0
		e.probing = false
		e.state = breakerClosed
	}
	b.updateGaugeLocked()
}

// failureAll records a breaker-relevant job failure against every keyed
// circuit. A closed circuit opens at the policy threshold; a half-open
// circuit's failed probe re-opens it and restarts the cooldown. Returns
// the keys that transitioned to open.
func (b *breaker) failureAll(keys ...string) (opened []string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	for _, key := range keys {
		e := b.entry(key)
		switch e.state {
		case breakerClosed:
			e.failures++
			if e.failures >= b.policy.threshold {
				e.state = breakerOpen
				e.openedAt = now
				opened = append(opened, key)
			}
		case breakerHalfOpen:
			e.state = breakerOpen
			e.openedAt = now
			e.probing = false
			opened = append(opened, key)
		case breakerOpen:
			// Late failure from a job admitted before the trip; the
			// cooldown clock is not restarted for it.
		}
	}
	b.updateGaugeLocked()
	return opened
}

// forgiveAll releases any half-open probe slots the keyed job claimed
// without recording a verdict — for outcomes that say nothing about the
// circuit's health (client cancellation, admission rollback), so the probe
// slot cannot leak.
func (b *breaker) forgiveAll(keys ...string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, key := range keys {
		if e := b.entries[key]; e != nil {
			e.probing = false
		}
	}
}

// openKeys snapshots the currently open or half-open circuits for /v1/stats.
func (b *breaker) openKeys() map[string]string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]string)
	for key, e := range b.entries {
		if e.state != breakerClosed {
			out[key] = e.state.String()
		}
	}
	return out
}

func (b *breaker) updateGaugeLocked() {
	open := 0
	for _, e := range b.entries {
		if e.state != breakerClosed {
			open++
		}
	}
	mBreakerUp.Set(float64(open))
}
