package serve

import "fmt"

// SubmitPath packages the admission hot path — admit, breaker gate,
// breaker verdict, release — for the perf harness, which pins it at zero
// allocations per cycle: load shedding must not generate garbage exactly
// when the server is busiest.
type SubmitPath struct {
	adm *admitter
	brk *breaker
}

// NewSubmitPathBench builds a warmed admission path: the tenant and
// workload circuits exist and the tenant map has reached steady state, so
// cycles measure the per-job cost, not first-touch map growth.
func NewSubmitPathBench() *SubmitPath {
	p := &SubmitPath{
		adm: newAdmitter(64, 16),
		brk: newBreaker(breakerPolicy{threshold: 5, cooldown: 0}, nil),
	}
	if err := p.Cycle(); err != nil {
		panic(err) // fresh admitter and closed breaker cannot reject
	}
	return p
}

// Cycle runs one admitted job's worth of control-plane work.
func (p *SubmitPath) Cycle() error {
	if je := p.adm.admit("bench"); je != nil {
		return je
	}
	if _, ok := p.brk.allowAll("tenant/bench", "workload/LU32"); !ok {
		p.adm.release("bench")
		return fmt.Errorf("serve: bench circuit unexpectedly open")
	}
	p.brk.successAll("tenant/bench", "workload/LU32")
	p.adm.release("bench")
	return nil
}
