package serve

import (
	"testing"
	"time"
)

// fakeClock is a settable now() for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func testBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock) {
	clk := newFakeClock()
	return newBreaker(breakerPolicy{threshold: threshold, cooldown: cooldown}, clk.now), clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := testBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		if opened := b.failureAll("tenant/a"); len(opened) != 0 {
			t.Fatalf("opened after %d failures", i+1)
		}
		if _, ok := b.allowAll("tenant/a"); !ok {
			t.Fatalf("closed circuit rejected after %d failures", i+1)
		}
	}
	if opened := b.failureAll("tenant/a"); len(opened) != 1 || opened[0] != "tenant/a" {
		t.Fatalf("third failure opened %v, want [tenant/a]", opened)
	}
	wait, ok := b.allowAll("tenant/a")
	if ok {
		t.Fatal("open circuit admitted")
	}
	if wait <= 0 || wait > time.Minute {
		t.Fatalf("Retry-After %v out of (0, cooldown]", wait)
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b, _ := testBreaker(2, time.Minute)
	b.failureAll("tenant/a")
	b.successAll("tenant/a")
	if opened := b.failureAll("tenant/a"); len(opened) != 0 {
		t.Fatal("failure run survived an intervening success")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := testBreaker(1, time.Minute)
	b.failureAll("tenant/a")
	clk.advance(61 * time.Second)
	if _, ok := b.allowAll("tenant/a"); !ok {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	// The probe slot is taken: a second job must wait.
	if _, ok := b.allowAll("tenant/a"); ok {
		t.Fatal("two concurrent half-open probes admitted")
	}
	// Probe succeeds: circuit closes, traffic flows.
	b.successAll("tenant/a")
	if _, ok := b.allowAll("tenant/a"); !ok {
		t.Fatal("closed circuit rejected after successful probe")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := testBreaker(1, time.Minute)
	b.failureAll("tenant/a")
	clk.advance(61 * time.Second)
	if _, ok := b.allowAll("tenant/a"); !ok {
		t.Fatal("probe rejected")
	}
	if opened := b.failureAll("tenant/a"); len(opened) != 1 {
		t.Fatal("failed probe did not reopen the circuit")
	}
	if _, ok := b.allowAll("tenant/a"); ok {
		t.Fatal("reopened circuit admitted before a fresh cooldown")
	}
	// The cooldown restarted at the failed probe.
	clk.advance(61 * time.Second)
	if _, ok := b.allowAll("tenant/a"); !ok {
		t.Fatal("second cooldown elapsed but probe rejected")
	}
}

func TestBreakerForgiveReleasesProbe(t *testing.T) {
	b, clk := testBreaker(1, time.Minute)
	b.failureAll("tenant/a")
	clk.advance(61 * time.Second)
	if _, ok := b.allowAll("tenant/a"); !ok {
		t.Fatal("probe rejected")
	}
	// The probing job's outcome said nothing (client went away): the
	// slot must come back so the circuit is not wedged half-open.
	b.forgiveAll("tenant/a")
	if _, ok := b.allowAll("tenant/a"); !ok {
		t.Fatal("forgiven probe slot not reusable")
	}
}

func TestBreakerAllowAllAtomicRollback(t *testing.T) {
	b, clk := testBreaker(1, time.Minute)
	// workload/w past its cooldown (probe available); tenant/b freshly
	// open (still cooling).
	b.failureAll("workload/w")
	clk.advance(61 * time.Second)
	b.failureAll("tenant/b")
	if _, ok := b.allowAll("workload/w", "tenant/b"); ok {
		t.Fatal("job admitted through an open circuit")
	}
	// The rejected job must have rolled back workload/w's probe claim.
	if _, ok := b.allowAll("workload/w"); !ok {
		t.Fatal("rollback leaked the half-open probe slot")
	}
}

func TestBreakerOpenKeysSnapshot(t *testing.T) {
	b, _ := testBreaker(1, time.Minute)
	b.failureAll("tenant/a", "workload/w")
	b.failureAll("tenant/ok")
	b.successAll("tenant/ok")
	keys := b.openKeys()
	if len(keys) != 2 || keys["tenant/a"] != "open" || keys["workload/w"] != "open" {
		t.Fatalf("openKeys = %v, want tenant/a and workload/w open", keys)
	}
}

func TestBreakerIndependentKeys(t *testing.T) {
	b, _ := testBreaker(1, time.Minute)
	b.failureAll("tenant/a")
	if _, ok := b.allowAll("tenant/b"); !ok {
		t.Fatal("tenant/b quarantined by tenant/a's failures")
	}
}
