package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("short", "1")
	tb.Row("a-much-longer-name", "12345")
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header line %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule line %q", lines[1])
	}
	// Value column right-aligned: "1" ends at same column as "12345".
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("misaligned rows:\n%q\n%q", lines[2], lines[3])
	}
}

func TestTableRowf(t *testing.T) {
	tb := NewTable("a", "b")
	tb.Rowf("x", 3.5)
	var sb strings.Builder
	tb.Fprint(&sb)
	if !strings.Contains(sb.String(), "3.5") {
		t.Errorf("Rowf did not format: %s", sb.String())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a")
	tb.Row("1", "extra")
	tb.Row()
	var sb strings.Builder
	tb.Fprint(&sb) // must not panic
	if !strings.Contains(sb.String(), "extra") {
		t.Error("extra cell dropped")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.Row("x", "1")
	tb.Row("y, z", "2") // needs quoting
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nx,1\n\"y, z\",2\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestBarChart(t *testing.T) {
	c := &BarChart{Title: "test", Unit: "%", Width: 20}
	c.Bar("full", Segment{"cold", 1}, Segment{"true", 1})
	c.Bar("half", Segment{"cold", 1})
	var sb strings.Builder
	c.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "test") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "legend: # cold   = true") {
		t.Errorf("legend wrong:\n%s", out)
	}
	// "full" is the max: 10 chars of '#' and 10 of '='.
	if !strings.Contains(out, strings.Repeat("#", 10)+strings.Repeat("=", 10)) {
		t.Errorf("full bar wrong:\n%s", out)
	}
	if !strings.Contains(out, "2.00%") || !strings.Contains(out, "1.00%") {
		t.Errorf("totals wrong:\n%s", out)
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	c := &BarChart{}
	var sb strings.Builder
	c.Fprint(&sb) // no bars: must not panic
	c.Bar("zero", Segment{"cold", 0})
	c.Fprint(&sb)
	if !strings.Contains(sb.String(), "0.00") {
		t.Error("zero bar missing")
	}
}
