// Package report renders the library's experiment results as aligned text
// tables, CSV, and stacked ASCII bar charts, so that the paper's tables and
// figures can be regenerated in a terminal.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable returns a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// Row appends a row; missing cells render empty, extra cells are kept.
func (t *Table) Row(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Note appends a footer line, rendered verbatim after the rows (run
// metadata, metrics summaries). Notes do not participate in column
// alignment and are omitted from CSV output.
func (t *Table) Note(line string) {
	t.notes = append(t.notes, line)
}

// Notef appends a formatted footer line.
func (t *Table) Notef(format string, args ...any) {
	t.Note(fmt.Sprintf(format, args...))
}

// Rowf appends a row of formatted cells: each argument is rendered with %v.
func (t *Table) Rowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.rows = append(t.rows, row)
}

func (t *Table) widths() []int {
	w := make([]int, len(t.headers))
	for i, h := range t.headers {
		w[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			for i >= len(w) {
				w = append(w, 0)
			}
			if len(cell) > w[i] {
				w[i] = len(cell)
			}
		}
	}
	return w
}

// Fprint writes the table, first column left-aligned and the rest
// right-aligned (the usual shape for a label column plus numbers).
func (t *Table) Fprint(out io.Writer) {
	w := t.widths()
	line := func(cells []string) {
		parts := make([]string, len(w))
		for i := range w {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i == 0 {
				parts[i] = fmt.Sprintf("%-*s", w[i], cell)
			} else {
				parts[i] = fmt.Sprintf("%*s", w[i], cell)
			}
		}
		fmt.Fprintln(out, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	rule := make([]string, len(w))
	for i := range w {
		rule[i] = strings.Repeat("-", w[i])
	}
	line(rule)
	for _, row := range t.rows {
		line(row)
	}
	for _, note := range t.notes {
		fmt.Fprintln(out, note)
	}
}

// CSV writes the table as CSV.
func (t *Table) CSV(out io.Writer) error {
	cw := csv.NewWriter(out)
	if err := cw.Write(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Segment is one stacked component of a bar.
type Segment struct {
	Label string
	Value float64
}

// BarChart renders horizontal stacked bars, one per entry, in the style of
// the paper's Fig. 6: each bar decomposes a miss rate into components.
type BarChart struct {
	Title string
	Unit  string
	Width int // bar width in characters; default 50
	bars  []barEntry
}

type barEntry struct {
	label    string
	segments []Segment
}

// Bar appends a stacked bar.
func (c *BarChart) Bar(label string, segments ...Segment) {
	c.bars = append(c.bars, barEntry{label: label, segments: segments})
}

// segmentRunes distinguish stacked components: cold '#', true '=', false '.'
// by convention of the callers; unknown labels cycle through the set.
var segmentRunes = []rune{'#', '=', '.', '%', '+', '~'}

// Fprint renders the chart. Bars are scaled to the largest total.
func (c *BarChart) Fprint(out io.Writer) {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	var max float64
	labelW := 0
	for _, b := range c.bars {
		var total float64
		for _, s := range b.segments {
			total += s.Value
		}
		if total > max {
			max = total
		}
		if len(b.label) > labelW {
			labelW = len(b.label)
		}
	}
	if c.Title != "" {
		fmt.Fprintln(out, c.Title)
	}
	if max == 0 {
		max = 1
	}
	legend := map[string]rune{}
	for _, b := range c.bars {
		var sb strings.Builder
		var total float64
		for _, s := range b.segments {
			total += s.Value
			r, ok := legend[s.Label]
			if !ok {
				r = segmentRunes[len(legend)%len(segmentRunes)]
				legend[s.Label] = r
			}
			n := int(s.Value/max*float64(width) + 0.5)
			for i := 0; i < n; i++ {
				sb.WriteRune(r)
			}
		}
		fmt.Fprintf(out, "  %-*s |%-*s| %6.2f%s\n", labelW, b.label, width, sb.String(), total, c.Unit)
	}
	// Legend in first-use order.
	var parts []string
	seen := map[string]bool{}
	for _, b := range c.bars {
		for _, s := range b.segments {
			if !seen[s.Label] {
				seen[s.Label] = true
				parts = append(parts, fmt.Sprintf("%c %s", legend[s.Label], s.Label))
			}
		}
	}
	if len(parts) > 0 {
		fmt.Fprintf(out, "  legend: %s\n", strings.Join(parts, "   "))
	}
}
