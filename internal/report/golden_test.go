package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file from the current output")

// TestClassTableGolden renders a classification table covering every miss
// class the suite reports — the paper's five (PC, CTS, CFS, PTS, PFS) plus
// the finite-cache Repl extension — with a metrics footer note, and
// compares it byte-for-byte against the golden file. The values are
// arbitrary but fixed; what the golden locks down is the rendering:
// column alignment, the rule line, and notes printed verbatim after the
// rows without disturbing the columns.
func TestClassTableGolden(t *testing.T) {
	tb := NewTable("class", "misses", "rate%")
	tb.Rowf("PC", 123456, "1.235")
	tb.Rowf("CTS", 7890, "0.079")
	tb.Rowf("CFS", 42, "0.000")
	tb.Rowf("PTS", 99999, "1.000")
	tb.Rowf("PFS", 3, "0.000")
	tb.Rowf("Repl", 1048576, "10.486")
	tb.Notef("refs %d  cells %d/%d  cache hits %d misses %d",
		10000000, 10, 10, 9, 1)
	tb.Note("metrics: see -metrics for the full run report")

	var sb strings.Builder
	tb.Fprint(&sb)
	got := sb.String()

	path := filepath.Join("testdata", "class_table.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("render diverges from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Column alignment: every row fills all three columns with the last
	// column right-aligned, so all row lines end at the same column, and
	// the rule line's dash groups sit exactly under the widest cells.
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	const headerLines, ruleLine = 1, 1
	rows := lines[headerLines+ruleLine : len(lines)-2] // strip the two notes
	if len(rows) != 6 {
		t.Fatalf("expected 6 class rows, got %d:\n%s", len(rows), got)
	}
	ruleLen := len(lines[1])
	for _, row := range rows {
		if len(row) != ruleLen {
			t.Errorf("row %q is %d columns wide, rule is %d (misaligned)", row, len(row), ruleLen)
		}
	}
	for _, group := range strings.Split(lines[1], "  ") {
		if strings.Trim(group, "-") != "" {
			t.Errorf("rule line %q contains non-dash group %q", lines[1], group)
		}
	}
}
