package experiment

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// TraceFileSet binds workload names to opened packed trace files (the
// CLI's -trace-file NAME=PATH bindings). A bound workload replays from its
// file instead of regenerating: serial and demux-sharded paths stream it
// through the trace cache's out-of-core bypass, and the fused shard-native
// paths open segment-skipping readers directly (see Options.shardSource).
// Close the set when the run is done.
type TraceFileSet struct {
	files map[string]*tracestore.File
	paths map[string]string
}

// OpenTraceFiles opens every binding, validating that each name is a
// registered workload and that the packed trace's processor count matches
// the workload's — replaying MP3D's file as WATER would silently produce
// garbage figures otherwise. On error, files opened so far are closed.
func OpenTraceFiles(specs map[string]string) (*TraceFileSet, error) {
	s := &TraceFileSet{
		files: make(map[string]*tracestore.File, len(specs)),
		paths: make(map[string]string, len(specs)),
	}
	for name, path := range specs {
		w, err := workload.Get(name)
		if err != nil {
			s.Close() //nolint:errcheck // error-path cleanup
			return nil, err
		}
		f, err := tracestore.Open(path)
		if err != nil {
			s.Close() //nolint:errcheck // error-path cleanup
			return nil, err
		}
		if f.Procs() != w.Procs {
			f.Close() //nolint:errcheck // error-path cleanup
			s.Close() //nolint:errcheck // error-path cleanup
			return nil, fmt.Errorf("experiment: trace file %s has %d processors, workload %s has %d",
				path, f.Procs(), name, w.Procs)
		}
		s.files[name] = f
		s.paths[name] = path
	}
	return s, nil
}

// TraceFileInfo identifies one opened trace-file binding for provenance
// manifests: the workload, the file's path and size, and the TOC digest —
// the content hash 'trace pack' reports and -resume checkpoints verify.
type TraceFileInfo struct {
	Workload  string `json:"workload"`
	Path      string `json:"path"`
	Refs      uint64 `json:"refs"`
	Bytes     int64  `json:"bytes"`
	TOCSHA256 string `json:"toc_sha256"`
}

// Manifest describes every binding, in sorted workload order. Safe on a
// nil set (returns nil).
func (s *TraceFileSet) Manifest() []TraceFileInfo {
	if s == nil {
		return nil
	}
	infos := make([]TraceFileInfo, 0, len(s.files))
	for _, name := range s.Names() {
		f := s.files[name]
		infos = append(infos, TraceFileInfo{
			Workload:  name,
			Path:      s.paths[name],
			Refs:      f.NumRefs(),
			Bytes:     f.Size(),
			TOCSHA256: f.TOCDigest(),
		})
	}
	return infos
}

// File returns the opened trace file bound to name, or nil (also on a nil
// set).
func (s *TraceFileSet) File(name string) *tracestore.File {
	if s == nil {
		return nil
	}
	return s.files[name]
}

// Names lists the bound workload names in sorted order.
func (s *TraceFileSet) Names() []string {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.files))
	for name := range s.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Close closes every file, returning the first error.
func (s *TraceFileSet) Close() error {
	if s == nil {
		return nil
	}
	var first error
	for _, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.files = nil
	return first
}

// register wires every bound file into the cache as a stream-only source,
// so all the cache-fed replay paths (serial cells, demux sharding, the
// non-fused grids) read from the file with O(segment) resident memory
// instead of materializing or regenerating. Safe on a nil set.
func (s *TraceFileSet) register(c *sweep.TraceCache) {
	if s == nil {
		return
	}
	for name, f := range s.files {
		f := f
		c.Stream(name, func() (trace.Reader, error) { return f.Reader(), nil })
	}
}

// shardSource resolves the per-shard opener the fused shard-native runners
// need for one workload's trace. A file-backed workload opens
// segment-skipping tracestore readers: each shard reads only the segments
// whose per-segment index intersects its residue class of g's block
// partition (plus segments carrying synchronization, which every shard
// observes). Anything else adapts the cache's source factory — independent
// equivalent readers, one per shard. g and shards must match the partition
// key the runner uses (trace.BlockShard(g, shards)).
func (o Options) shardSource(ctx context.Context, cache *sweep.TraceCache, name string, g mem.Geometry, shards int) (func(int) (trace.Reader, error), error) {
	if f := o.TraceFiles.File(name); f != nil {
		return func(shard int) (trace.Reader, error) {
			return f.ShardReaderContext(ctx, shard, shards, g), nil
		}, nil
	}
	src, err := cache.SourceContext(ctx, name)
	if err != nil {
		return nil, err
	}
	return func(int) (trace.Reader, error) { return src() }, nil
}
