package experiment

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Compare deepens the paper's §3/Table 1 comparison: it classifies every
// miss jointly under the three schemes and prints the pairwise confusion
// matrices, quantifying the disagreements the paper argues qualitatively —
// in particular the "prefetching effects" of Torrellas' scheme that the
// paper notes were never quantified: the misses Torrellas calls FSM or CM
// that actually communicate values the processor needs (ours: TRUE). One
// sweep cell per workload computes the joint verdict matrix.
func Compare(o Options, blockBytes int) error {
	defer driverSpan("compare").End()
	g, err := mem.NewGeometry(blockBytes)
	if err != nil {
		return err
	}
	names := o.workloads(workload.SmallSet())
	labels := [3]string{"COLD", "TRUE", "FALSE"}

	ws, err := getWorkloads(names)
	if err != nil {
		return err
	}
	cache := o.traceCache()
	cells, fails, err := mapCells(o, len(ws), func(ctx context.Context, i int) (core.CrossCounts, error) {
		w := ws[i]
		defer replaySpan(ctx, w.Name, "cross", blockBytes).End()
		r, err := cache.ReaderContext(ctx, w.Name)
		if err != nil {
			return core.CrossCounts{}, err
		}
		c := core.NewCrossClassifier(w.Procs, g)
		if err := trace.DriveContext(ctx, r, c); err != nil {
			return core.CrossCounts{}, err
		}
		matrix, _, _, _ := c.Finish()
		return matrix, nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(o.Out, "Joint classification of every miss (B=%d bytes): ours vs. the earlier schemes\n", blockBytes)
	for wi, w := range ws {
		if ce := fails.Failed(wi); ce != nil {
			fmt.Fprintf(o.Out, "\n%s FAILED: %s\n", w.Name, firstErrLine(ce.Err))
			continue
		}
		matrix := cells[wi]
		fmt.Fprintf(o.Out, "\n%s (%d misses)\n", w.Name, matrix.Total())
		for _, pair := range []struct {
			scheme string
			m      [3][3]uint64
		}{
			{"eggers", matrix.OursVsEggers()},
			{"torrellas", matrix.OursVsTorrellas()},
		} {
			tb := report.NewTable("ours \\ "+pair.scheme, labels[0], labels[1], labels[2])
			for oi, row := range pair.m {
				tb.Rowf(labels[oi], row[0], row[1], row[2])
			}
			if o.CSV {
				if err := tb.CSV(o.Out); err != nil {
					return err
				}
				continue
			}
			tb.Fprint(o.Out)
			fmt.Fprintf(o.Out, "agreement with ours: %.1f%%\n\n", 100*core.Agreement(pair.m))
		}
		if !o.CSV {
			vt := matrix.OursVsTorrellas()
			hidden := vt[core.SharingTrue][core.SharingFalse] + vt[core.SharingTrue][core.SharingCold]
			fmt.Fprintf(o.Out, "misses carrying needed values that Torrellas calls FSM or CM: %d\n", hidden)
		}
	}
	return partialErr(fails)
}
