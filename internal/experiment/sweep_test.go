package experiment

import (
	"bytes"
	"io"
	"sync/atomic"
	"testing"

	"repro/internal/timing"
)

// drivers enumerates every experiment entry point with a bounded
// configuration, so the whole suite runs in seconds.
var drivers = []struct {
	name string
	run  func(Options) error
}{
	{"Table1", Table1},
	{"Table2", Table2},
	{"Fig5", func(o Options) error { o.Blocks = []int{8, 64}; return Fig5(o) }},
	{"Fig6", func(o Options) error { return Fig6(o, 64) }},
	{"Large", Large},
	{"Traffic", Traffic},
	{"Finite", func(o Options) error { return FiniteSweep(o, 64, 4) }},
	{"Compare", func(o Options) error { return Compare(o, 64) }},
	{"Penalty", func(o Options) error { return Penalty(o, 64, timing.DefaultModel()) }},
	{"Hotspots", func(o Options) error { return Hotspots(o, 64) }},
	{"Phases", func(o Options) error { return Phases(o, 64, 4) }},
	{"AblationCU", func(o Options) error { return AblationCU(o, 64) }},
	{"AblationWBWI", func(o Options) error { return AblationWBWI(o, 1024) }},
	{"AblationSector", func(o Options) error { return AblationSector(o, 1024) }},
}

func boundedOpts(out io.Writer, parallelism int) Options {
	return Options{
		Out: out, Quick: true,
		Workloads:   []string{"LU32", "JACOBI"},
		Protocols:   []string{"MIN", "OTF", "MAX"},
		Parallelism: parallelism,
	}
}

// TestDriversDeterministicAcrossParallelism is the tentpole's contract: every
// driver's output is byte-identical whether the grid runs serially or on
// eight workers.
func TestDriversDeterministicAcrossParallelism(t *testing.T) {
	for _, d := range drivers {
		t.Run(d.name, func(t *testing.T) {
			var serial bytes.Buffer
			if err := d.run(boundedOpts(&serial, 1)); err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{0, 8} {
				var parallel bytes.Buffer
				if err := d.run(boundedOpts(&parallel, p)); err != nil {
					t.Fatalf("parallelism %d: %v", p, err)
				}
				if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
					t.Errorf("parallelism %d output differs from serial:\n%s\nvs\n%s",
						p, parallel.String(), serial.String())
				}
			}
		})
	}
}

// exclusiveWriter fails the test if two goroutines ever write concurrently —
// the regression guard for the drivers' old habit of writing to the shared
// Options.Out from inside the sweep loop.
type exclusiveWriter struct {
	t      *testing.T
	inside atomic.Int32
}

func (w *exclusiveWriter) Write(p []byte) (int, error) {
	if !w.inside.CompareAndSwap(0, 1) {
		w.t.Error("concurrent Write on Options.Out")
		return len(p), nil
	}
	defer w.inside.Store(0)
	return len(p), nil
}

func TestDriversNeverWriteOutConcurrently(t *testing.T) {
	for _, d := range drivers {
		t.Run(d.name, func(t *testing.T) {
			if err := d.run(boundedOpts(&exclusiveWriter{t: t}, 8)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSharedCacheAcrossDrivers runs several drivers over one cache, the way
// regen does, and checks both that results are unchanged and that later
// drivers actually hit the cache.
func TestSharedCacheAcrossDrivers(t *testing.T) {
	cache := NewTraceCache()
	var withCache bytes.Buffer
	for _, d := range drivers[:4] {
		o := boundedOpts(&withCache, 0)
		o.Cache = cache
		if err := d.run(o); err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
	}
	var fresh bytes.Buffer
	for _, d := range drivers[:4] {
		if err := d.run(boundedOpts(&fresh, 1)); err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
	}
	if !bytes.Equal(withCache.Bytes(), fresh.Bytes()) {
		t.Error("shared cache changed driver output")
	}
	s := cache.Stats()
	if s.Hits == 0 {
		t.Errorf("no cache hits across drivers: %+v", s)
	}
	if s.Misses == 0 || s.CachedRefs == 0 {
		t.Errorf("cache never materialized anything: %+v", s)
	}
}
