package experiment

import (
	"errors"
	"strings"
	"testing"
)

// TestRunNamedMatchesDriver: the dispatcher must render exactly what the
// driver it maps to renders — the byte-identity the serving layer's
// differential suite builds on.
func TestRunNamedMatchesDriver(t *testing.T) {
	opts := func(out *strings.Builder) Options {
		return Options{Out: out, Quick: true, Workloads: []string{"JACOBI"}, Blocks: []int{64}}
	}
	var direct, named strings.Builder
	if err := Fig5(opts(&direct)); err != nil {
		t.Fatal(err)
	}
	if err := RunNamed("fig5", opts(&named), 0); err != nil {
		t.Fatal(err)
	}
	if direct.String() != named.String() {
		t.Errorf("RunNamed(fig5) output differs from Fig5:\n--- direct ---\n%s\n--- named ---\n%s",
			direct.String(), named.String())
	}
}

// TestRunNamedBlockDefaults: block 0 takes the experiment's paper default;
// an explicit block overrides it and changes the output.
func TestRunNamedBlockDefaults(t *testing.T) {
	run := func(block int) string {
		var sb strings.Builder
		o := Options{Out: &sb, Quick: true, Workloads: []string{"JACOBI"}}
		if err := RunNamed("compare", o, block); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	def, explicit := run(0), run(64)
	if def != explicit {
		t.Error("block 0 did not take the default block 64")
	}
	if other := run(16); other == def {
		t.Error("block 16 rendered the block-64 output")
	}
}

// TestRunNamedUnknown: an unmapped name is a typed client error.
func TestRunNamedUnknown(t *testing.T) {
	var sb strings.Builder
	err := RunNamed("penalty", Options{Out: &sb}, 0)
	if !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
	if sb.Len() != 0 {
		t.Errorf("unknown job wrote output: %q", sb.String())
	}
}

// TestRunNamedCoversJobKinds: every advertised kind dispatches (no drift
// between the list and the switch). Heavy kinds run with quick + a single
// small workload so the whole sweep stays in test-seconds.
func TestRunNamedCoversJobKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment driver once")
	}
	for _, kind := range JobKinds {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			var sb strings.Builder
			o := Options{Out: &sb, Quick: true, Workloads: []string{"JACOBI"}, Blocks: []int{64}}
			if kind == "fig6" || kind == "large" || kind == "traffic" {
				o.Protocols = []string{"MIN"}
			}
			if err := RunNamed(kind, o, 0); err != nil {
				t.Fatalf("RunNamed(%s): %v", kind, err)
			}
			if sb.Len() == 0 {
				t.Fatalf("RunNamed(%s) rendered nothing", kind)
			}
		})
	}
}
