package experiment

import (
	"context"
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig6 regenerates one panel of the paper's Fig. 6: the effect of the
// invalidation schedule on the miss rate at the given block size (64 bytes
// for cache-based systems in Fig. 6a, 1024 bytes for virtual shared memory
// in Fig. 6b). The (workload, protocol) grid runs on the sweep engine, every
// protocol replaying the same cached trace; OTF, RD, SD and SRD are
// decomposed into TRUE/COLD/FALSE like the paper's stacked bars, while MIN
// (no false sharing by construction), WBWI and MAX are shown as totals.
func Fig6(o Options, blockBytes int) error {
	defer driverSpan("fig6").End()
	g, err := mem.NewGeometry(blockBytes)
	if err != nil {
		return err
	}
	names := o.workloads(workload.SmallSet())
	protos := o.Protocols
	if len(protos) == 0 {
		protos = coherence.Protocols
	}

	ws, err := getWorkloads(names)
	if err != nil {
		return err
	}
	// Validate the protocol names before any cell runs.
	for _, name := range protos {
		if _, err := coherence.New(name, workload.DefaultProcs, g); err != nil {
			return err
		}
	}

	// The fused path needs every schedule in the row to be a passive
	// block-keyed consumer; one that is not sends the whole grid back to
	// per-cell replays (the counts are identical either way).
	fuse := o.fused()
	for _, name := range protos {
		if !coherence.Fusible(name) {
			fuse = false
		}
	}

	cache := o.traceCache()
	var cells []coherence.Result
	var fails *sweep.Failures
	if fuse {
		// One fused sweep cell per workload: a single pass (per shard) over
		// the trace drives every protocol's simulator at once.
		groups, gFails, err := mapCells(o, len(ws), func(ctx context.Context, wi int) ([]coherence.Result, error) {
			w := ws[wi]
			defer replaySpan(ctx, w.Name, "fused-protocols", blockBytes).End()
			eff := o.shardsPerCell()
			open, err := o.shardSource(ctx, cache, w.Name, g, eff)
			if err != nil {
				return nil, err
			}
			return coherence.RunProtocolsShardedOpen(ctx, open, w.Procs, g, protos, eff)
		})
		if err != nil {
			return err
		}
		cells = flattenGroups(groups, len(protos))
		fails = expandGroupFailures(gFails, len(protos))
	} else {
		var err error
		cells, fails, err = mapCells(o, len(ws)*len(protos), func(ctx context.Context, i int) (coherence.Result, error) {
			w, proto := ws[i/len(protos)], protos[i%len(protos)]
			defer replaySpan(ctx, w.Name, proto, blockBytes).End()
			r, err := cache.ReaderContext(ctx, w.Name)
			if err != nil {
				return coherence.Result{}, err
			}
			return coherence.RunShardedContext(ctx, proto, r, g, o.shardsPerCell())
		})
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(o.Out, "Figure 6 (B=%d bytes): effect of invalidation scheduling on the miss rate\n", blockBytes)
	for wi, w := range ws {
		results := cells[wi*len(protos) : (wi+1)*len(protos)]
		fmt.Fprintf(o.Out, "\n%s\n", w.Name)
		tb := report.NewTable("protocol", "miss%", "TRUE%", "COLD%", "FALSE%", "invalidations", "upgrades")
		chart := &report.BarChart{Unit: "%"}
		wFails := &sweep.Failures{}
		for pi, res := range results {
			if ce := fails.Failed(wi*len(protos) + pi); ce != nil {
				tb.Rowf(protos[pi], "FAILED")
				wFails.Cells = append(wFails.Cells, ce)
				continue
			}
			c := res.Counts
			tb.Rowf(res.Protocol,
				pct(res.MissRate()),
				pct(core.Rate(c.PTS, res.DataRefs)),
				pct(core.Rate(c.Cold(), res.DataRefs)),
				pct(core.Rate(c.PFS, res.DataRefs)),
				res.Invalidations, res.Upgrades)
			switch res.Protocol {
			case "MIN", "WBWI", "MAX": // totals only, like the paper
				chart.Bar(res.Protocol,
					report.Segment{Label: "TOTAL", Value: res.MissRate()})
			default:
				chart.Bar(res.Protocol,
					report.Segment{Label: "TRUE", Value: core.Rate(c.PTS, res.DataRefs)},
					report.Segment{Label: "COLD", Value: core.Rate(c.Cold(), res.DataRefs)},
					report.Segment{Label: "FALSE", Value: core.Rate(c.PFS, res.DataRefs)})
			}
		}
		failNote(tb, wFails, func(i int) string {
			return fmt.Sprintf("%s %s", ws[i/len(protos)].Name, protos[i%len(protos)])
		})
		if o.CSV {
			if err := tb.CSV(o.Out); err != nil {
				return err
			}
			continue
		}
		tb.Fprint(o.Out)
		fmt.Fprintln(o.Out)
		chart.Fprint(o.Out)
	}
	return partialErr(fails)
}

// runProtocols replays one generation of the workload trace through all the
// named protocols simultaneously: the serial single-pass reference the
// sweep engine's per-protocol cells are tested against.
func runProtocols(w *workload.Workload, g mem.Geometry, protos []string) ([]coherence.Result, error) {
	sims := make([]coherence.Simulator, len(protos))
	consumers := make([]trace.Consumer, len(protos))
	for i, name := range protos {
		sim, err := coherence.New(name, w.Procs, g)
		if err != nil {
			return nil, err
		}
		sims[i] = sim
		consumers[i] = sim
	}
	if err := trace.Drive(w.Reader(), consumers...); err != nil {
		return nil, err
	}
	results := make([]coherence.Result, len(sims))
	for i, sim := range sims {
		results[i] = sim.Finish()
	}
	return results, nil
}
