package experiment

import (
	"strings"
	"testing"

	"repro/internal/timing"
)

func TestTrafficQuick(t *testing.T) {
	var sb strings.Builder
	o := Options{Out: &sb, Workloads: []string{"LU32"}}
	if err := Traffic(o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"traffic", "WU", "CU", "MIN", "B/ref"} {
		if !strings.Contains(out, want) {
			t.Errorf("traffic output missing %q:\n%s", want, out)
		}
	}
}

func TestTrafficProtocolFilter(t *testing.T) {
	var sb strings.Builder
	o := Options{Out: &sb, Workloads: []string{"LU32"}, Protocols: []string{"MIN", "WU"}}
	if err := Traffic(o); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "MAX") {
		t.Error("protocol filter ignored")
	}
}

func TestAblationCU(t *testing.T) {
	var sb strings.Builder
	o := Options{Out: &sb, Workloads: []string{"LU32"}}
	if err := AblationCU(o, 64); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Competitive-update", "CU-1", "CU-32", "WU", "MIN", "updates/ref"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q:\n%s", want, out)
		}
	}
	if err := AblationCU(Options{Out: &sb}, 7); err == nil {
		t.Error("bad block accepted")
	}
}

func TestAblationWBWI(t *testing.T) {
	var sb strings.Builder
	o := Options{Out: &sb, Workloads: []string{"LU32"}}
	if err := AblationWBWI(o, 1024); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"invalidation-buffer", "1 words", "unlimited", "vs unlimited", "+0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationSector(t *testing.T) {
	var sb strings.Builder
	o := Options{Out: &sb, Workloads: []string{"LU32"}}
	if err := AblationSector(o, 256); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Coherence-grain", "SEC-4", "SEC-256"} {
		if !strings.Contains(out, want) {
			t.Errorf("sector ablation missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "SEC-1024") {
		t.Error("sector larger than the block was not skipped")
	}
}

func TestFiniteSweep(t *testing.T) {
	var sb strings.Builder
	o := Options{Out: &sb, Workloads: []string{"LU32"}}
	if err := FiniteSweep(o, 64, 4); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Finite caches", "infinite", "2KB", "repl%", "essential frac"} {
		if !strings.Contains(out, want) {
			t.Errorf("finite output missing %q:\n%s", want, out)
		}
	}
	if err := FiniteSweep(Options{Out: &sb}, 64, 0); err == nil {
		t.Error("bad associativity accepted")
	}
}

func TestCompare(t *testing.T) {
	var sb strings.Builder
	o := Options{Out: &sb, Workloads: []string{"LU32"}}
	if err := Compare(o, 64); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Joint classification", "ours \\ eggers", "ours \\ torrellas", "agreement", "Torrellas calls FSM or CM"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
	if err := Compare(Options{Out: &sb}, 3); err == nil {
		t.Error("bad block accepted")
	}
}

func TestHotspots(t *testing.T) {
	var sb strings.Builder
	o := Options{Out: &sb, Workloads: []string{"LU32"}}
	if err := Hotspots(o, 8); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Miss attribution", "matrix", "barrier", "share of PFS"} {
		if !strings.Contains(out, want) {
			t.Errorf("hotspots output missing %q:\n%s", want, out)
		}
	}
	// The paper's claim: LU's small-block false sharing is entirely the
	// barrier's counter/flag adjacency.
	if !strings.Contains(out, "100%") {
		t.Errorf("LU 8-byte false sharing should be all barrier:\n%s", out)
	}
	if err := Hotspots(Options{Out: &sb}, 3); err == nil {
		t.Error("bad block accepted")
	}
}

func TestPenalty(t *testing.T) {
	var sb strings.Builder
	o := Options{Out: &sb, Workloads: []string{"LU32"}, Protocols: []string{"MIN", "OTF"}}
	if err := Penalty(o, 64, timing.DefaultModel()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Execution-time model", "cycles/ref", "vs MIN", "stall share", "+0.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("penalty output missing %q:\n%s", want, out)
		}
	}
	if err := Penalty(Options{Out: &sb}, 5, timing.DefaultModel()); err == nil {
		t.Error("bad block accepted")
	}
}

func TestPhases(t *testing.T) {
	var sb strings.Builder
	o := Options{Out: &sb, Workloads: []string{"LU32"}}
	if err := Phases(o, 64, 5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"computation phases", "LU32", "(end)", "miss%"} {
		if !strings.Contains(out, want) {
			t.Errorf("phases output missing %q:\n%s", want, out)
		}
	}
	if err := Phases(Options{Out: &sb}, 64, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	if err := Phases(Options{Out: &sb}, 5, 3); err == nil {
		t.Error("bad block accepted")
	}
}

func TestExtensionsCSVMode(t *testing.T) {
	for name, fn := range map[string]func(Options) error{
		"traffic": Traffic,
		"cu":      func(o Options) error { return AblationCU(o, 64) },
		"wbwi":    func(o Options) error { return AblationWBWI(o, 64) },
		"finite":  func(o Options) error { return FiniteSweep(o, 64, 2) },
		"compare": func(o Options) error { return Compare(o, 64) },
		"sector":  func(o Options) error { return AblationSector(o, 64) },
		"penalty": func(o Options) error { return Penalty(o, 64, timing.DefaultModel()) },
		"hotspot": func(o Options) error { return Hotspots(o, 64) },
		"phases":  func(o Options) error { return Phases(o, 64, 4) },
	} {
		var sb strings.Builder
		o := Options{Out: &sb, CSV: true, Workloads: []string{"LU32"}}
		if err := fn(o); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if !strings.Contains(sb.String(), ",") {
			t.Errorf("%s: no CSV emitted", name)
		}
	}
}
