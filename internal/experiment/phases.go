package experiment

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// phasesCell is one workload's phase series.
type phasesCell struct {
	points []core.PhasePoint
	tail   core.PhasePoint
}

// Phases renders the miss classification as a time series over the
// computation's phases, bucketed into at most `buckets` rows: the cold ramp
// draining into steady-state sharing, and — in LU — the rate climbing as
// the active columns shrink toward the block size. One sweep cell per
// workload computes the series.
func Phases(o Options, blockBytes, buckets int) error {
	defer driverSpan("phases").End()
	g, err := mem.NewGeometry(blockBytes)
	if err != nil {
		return err
	}
	if buckets < 1 {
		return fmt.Errorf("experiment: need at least one bucket")
	}
	names := o.workloads(workload.SmallSet())

	ws, err := getWorkloads(names)
	if err != nil {
		return err
	}
	cache := o.traceCache()
	cells, fails, err := mapCells(o, len(ws), func(ctx context.Context, i int) (phasesCell, error) {
		w := ws[i]
		defer replaySpan(ctx, w.Name, "phases", blockBytes).End()
		r, err := cache.ReaderContext(ctx, w.Name)
		if err != nil {
			return phasesCell{}, err
		}
		series := core.NewPhaseSeries(w.Procs, g)
		if err := trace.DriveContext(ctx, r, series); err != nil {
			return phasesCell{}, err
		}
		points, tail := series.Finish()
		return phasesCell{points: points, tail: tail}, nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(o.Out, "Miss classification over computation phases (B=%d bytes)\n", blockBytes)
	for wi, w := range ws {
		if ce := fails.Failed(wi); ce != nil {
			fmt.Fprintf(o.Out, "\n%s FAILED: %s\n", w.Name, firstErrLine(ce.Err))
			continue
		}
		points, tail := cells[wi].points, cells[wi].tail
		fmt.Fprintf(o.Out, "\n%s (%d phases)\n", w.Name, len(points))
		tb := report.NewTable("phases", "refs", "cold", "PTS", "PFS", "miss%")
		for _, bucket := range bucketize(points, buckets) {
			var agg core.Counts
			var refs uint64
			for _, p := range bucket.points {
				agg = agg.Add(p.Counts)
				refs += p.DataRefs
			}
			tb.Rowf(bucket.label, refs, agg.Cold(), agg.PTS, agg.PFS,
				pct(core.Rate(agg.Total(), refs)))
		}
		if tail.Counts.Total() > 0 || tail.DataRefs > 0 {
			// Lifetimes still open at the end classify here; their
			// misses happened earlier, so no rate is meaningful.
			tb.Rowf("(end)", tail.DataRefs, tail.Counts.Cold(),
				tail.Counts.PTS, tail.Counts.PFS, "-")
		}
		if o.CSV {
			if err := tb.CSV(o.Out); err != nil {
				return err
			}
			continue
		}
		tb.Fprint(o.Out)
	}
	return partialErr(fails)
}

type phaseBucket struct {
	label  string
	points []core.PhasePoint
}

// bucketize splits the series into at most n contiguous buckets.
func bucketize(points []core.PhasePoint, n int) []phaseBucket {
	if len(points) == 0 {
		return nil
	}
	if n > len(points) {
		n = len(points)
	}
	var out []phaseBucket
	for b := 0; b < n; b++ {
		lo := b * len(points) / n
		hi := (b + 1) * len(points) / n
		label := fmt.Sprintf("%d-%d", lo, hi-1)
		if lo == hi-1 {
			label = fmt.Sprint(lo)
		}
		out = append(out, phaseBucket{label: label, points: points[lo:hi]})
	}
	return out
}
