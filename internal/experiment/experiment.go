// Package experiment regenerates the paper's tables and figures: Table 1
// (classification comparison), Table 2 (benchmark characteristics), Fig. 5
// (miss decomposition vs. block size), Fig. 6 (invalidation schedules at
// cache and page block sizes), and the §7 large-data-set study. Each driver
// replays the synthetic benchmark traces of package workload through the
// classifiers of package core and the protocol simulators of package
// coherence, and renders the same rows and series the paper reports.
package experiment

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options configures the experiment drivers. The zero value is not usable:
// use Default.
type Options struct {
	// Out receives the rendered report.
	Out io.Writer
	// CSV emits machine-readable CSV instead of aligned tables (charts
	// are suppressed).
	CSV bool
	// Quick substitutes the small data sets in the heavy experiments
	// (Table 1 and the §7 study), trading fidelity for seconds-scale
	// runtime.
	Quick bool
	// Workloads overrides each experiment's default workload list.
	Workloads []string
	// Protocols overrides the protocol list for Fig. 6 and the §7 study.
	Protocols []string
	// Blocks overrides the block-size sweep for Fig. 5.
	Blocks []int
}

// Default returns Options writing to out.
func Default(out io.Writer) Options { return Options{Out: out} }

// Fig5Blocks is the paper's block-size sweep.
var Fig5Blocks = []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}

func (o Options) workloads(def []string) []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return def
}

func (o Options) blocks(def []int) []int {
	if len(o.Blocks) > 0 {
		return o.Blocks
	}
	return def
}

// classifyAll drives the three classifiers over one generation of the
// workload trace in a single pass.
func classifyAll(w *workload.Workload, g mem.Geometry) (ours core.Counts, eggers, torrellas core.SharingCounts, refs uint64, err error) {
	oc := core.NewClassifier(w.Procs, g)
	ec := core.NewEggers(w.Procs, g)
	tc := core.NewTorrellas(w.Procs, g)
	if err = trace.Drive(w.Reader(), oc, ec, tc); err != nil {
		return
	}
	return oc.Finish(), ec.Finish(), tc.Finish(), oc.DataRefs(), nil
}

func pct(v float64) string { return fmt.Sprintf("%.2f", v) }
