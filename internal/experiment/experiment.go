// Package experiment regenerates the paper's tables and figures: Table 1
// (classification comparison), Table 2 (benchmark characteristics), Fig. 5
// (miss decomposition vs. block size), Fig. 6 (invalidation schedules at
// cache and page block sizes), and the §7 large-data-set study. Each driver
// replays the synthetic benchmark traces of package workload through the
// classifiers of package core and the protocol simulators of package
// coherence, and renders the same rows and series the paper reports.
//
// Every driver runs on the sweep engine (package sweep): the experiment is
// expanded into a grid of independent cells, the cells execute on a bounded
// worker pool (Options.Parallelism) replaying traces materialized once in a
// shared cache, and the report is rendered only after the grid completes,
// in grid order — so the output is byte-identical at any parallelism.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs/span"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// driverSpan opens a root span covering a whole driver (fig5, table1, ...)
// on the main track; drivers defer its End. No-op when tracing is off.
func driverSpan(name string) span.Span {
	return span.Root(span.OpExperiment, span.Fields{Note: name})
}

// replaySpan opens a cell.replay span for one cell's full replay on the
// sweep worker's track carried by ctx, annotated with the cell's grid
// coordinates. No-op when tracing is off or the context has no track.
func replaySpan(ctx context.Context, workloadName, scheme string, block int) span.Span {
	return span.Start(ctx, span.OpReplay, span.Fields{
		Workload: workloadName,
		Scheme:   scheme,
		Block:    int32(block),
	})
}

// Options configures the experiment drivers. The zero value is not usable:
// use Default.
type Options struct {
	// Out receives the rendered report. Drivers never write to it from
	// sweep cells: all output happens after the parallel phase, on the
	// calling goroutine, in deterministic grid order.
	Out io.Writer
	// CSV emits machine-readable CSV instead of aligned tables (charts
	// are suppressed).
	CSV bool
	// Quick substitutes the small data sets in the heavy experiments
	// (Table 1 and the §7 study), trading fidelity for seconds-scale
	// runtime.
	Quick bool
	// Workloads overrides each experiment's default workload list.
	Workloads []string
	// Protocols overrides the protocol list for Fig. 6 and the §7 study.
	Protocols []string
	// Blocks overrides the block-size sweep for Fig. 5.
	Blocks []int
	// Parallelism bounds the sweep worker pool (the CLI's -j flag).
	// Zero means GOMAXPROCS; 1 recovers the serial path. The rendered
	// output is byte-identical at any setting.
	Parallelism int
	// Shards block-shards each cell's classification (the CLI's -shards
	// flag): the cell's trace is demuxed by cache block across that many
	// parallel consumers and the per-shard counts are merged. 0 or 1
	// recovers the serial per-cell path. Shard invariance guarantees the
	// rendered output is byte-identical at any setting; the effective
	// per-cell shard count is capped so cells x shards goroutines stay
	// within the shared budget (see shardsPerCell).
	Shards int
	// TraceFiles binds workloads to packed trace files (the CLI's
	// -trace-file flag): bound workloads replay out-of-core from their
	// files — streamed through the cache for serial and demux paths,
	// segment-skipping shard readers for the fused shard-native paths —
	// instead of regenerating. Nil means every workload generates.
	TraceFiles *TraceFileSet
	// Cache shares materialized workload traces across driver calls
	// (regen runs every artifact off one cache). Nil gives each driver
	// its own cache for the duration of the call.
	Cache *sweep.TraceCache
	// Ctx is the run's cancellation context (the CLI's signal/timeout
	// context); nil means context.Background(). Cancellation is observed
	// at batch granularity inside every cell replay, so an interrupted
	// driver returns ctx.Err() within one batch of references.
	Ctx context.Context
	// KeepGoing renders partial reports with failed cells marked FAILED
	// (and a footer note naming the failures) instead of aborting the
	// driver at the first cell error (the CLI's -keep-going flag).
	KeepGoing bool
	// NoFuse disables the fused replay paths (the CLI's -fused=false):
	// Fig. 5, Fig. 6 and Table 1 fall back to one replay per (workload,
	// block) or (workload, protocol) cell instead of one fused pass per
	// workload. The rendered output is byte-identical either way — the
	// fused differential suite proves the counts equal bit for bit — so
	// the flag exists for cross-checking and for grids a future consumer
	// cannot fuse (see coherence.Fusible).
	NoFuse bool
}

// Default returns Options writing to out.
func Default(out io.Writer) Options { return Options{Out: out} }

// Fig5Blocks is the paper's block-size sweep.
var Fig5Blocks = []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}

func (o Options) workloads(def []string) []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return def
}

func (o Options) blocks(def []int) []int {
	if len(o.Blocks) > 0 {
		return o.Blocks
	}
	return def
}

func (o Options) sweepOpts() sweep.Options {
	return sweep.Options{Parallelism: o.Parallelism, KeepGoing: o.KeepGoing}
}

// ctx returns the run context, never nil.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// shardsPerCell bounds the per-cell shard count so the sweep pool and the
// shard pools compose under one goroutine budget: with P concurrent cells
// and S shards per cell the pipeline runs about P*S consumer goroutines, so
// the effective S is budget/P where the budget is the largest of
// GOMAXPROCS, the requested parallelism and the requested shard count.
// Semaphore-gating the shard consumers instead would risk deadlock (a demux
// pump blocks on a shard whose consumer never gets a slot), and a static
// cap costs nothing because shard invariance keeps the output identical at
// any effective value.
func (o Options) shardsPerCell() int {
	if o.Shards <= 1 {
		return 1
	}
	par := o.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	budget := runtime.GOMAXPROCS(0)
	if par > budget {
		budget = par
	}
	if o.Shards > budget {
		budget = o.Shards
	}
	eff := budget / par
	if eff < 1 {
		eff = 1
	}
	if eff > o.Shards {
		eff = o.Shards
	}
	return eff
}

// traceCache returns the shared cache, or a fresh one scoped to the
// current driver call.
func (o Options) traceCache() *sweep.TraceCache {
	c := o.Cache
	if c == nil {
		c = NewTraceCache()
	}
	// Re-registering the same stream openers on a shared cache is
	// idempotent, so every driver call may wire its trace files in.
	o.TraceFiles.register(c)
	return c
}

// NewTraceCache returns a trace cache over the workload registry, suitable
// for Options.Cache when several drivers should share one set of
// materialized traces (e.g. the regen subcommand).
func NewTraceCache() *sweep.TraceCache {
	return sweep.NewTraceCache(sweep.DefaultCacheRefs, openWorkloadTrace)
}

// openWorkloadTrace is the sweep.Opener over the workload registry.
func openWorkloadTrace(name string) (trace.Reader, error) {
	w, err := workload.Get(name)
	if err != nil {
		return nil, err
	}
	return w.Reader(), nil
}

// mapCells runs fn over every cell index in [0, n) on the sweep engine,
// under the run's cancellation context, and returns the results in
// deterministic cell order. Cell functions receive the sweep's per-cell
// context and must thread it into their replays; they must not touch
// Options.Out — rendering happens after mapCells returns.
//
// In keep-going mode cell failures come back as the *sweep.Failures second
// result (with the result slice intact at every non-failed index) so the
// driver can render a partial report; any other error — including
// cancellation — aborts the driver.
func mapCells[T any](o Options, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, *sweep.Failures, error) {
	res, err := sweep.Run(o.ctx(), n, o.sweepOpts(), fn)
	if fails := sweep.AsFailures(err); fails != nil {
		return res, fails, nil
	}
	if err != nil {
		return nil, nil, err
	}
	return res, nil, nil
}

// ErrPartial marks a keep-going run that finished with failed cells: the
// report was rendered (with the failed cells marked FAILED), but it is not
// the complete grid. The CLI maps it to a distinct exit code so scripts can
// tell a partial report from a clean one; the underlying cell errors stay
// reachable through sweep.AsFailures.
var ErrPartial = errors.New("partial results: some sweep cells failed")

// partialErr converts a keep-going failure set into the driver's return
// value: nil for a complete grid, an error wrapping both ErrPartial and the
// failures otherwise. Drivers return it after rendering, so the report is
// on Out even when the error is non-nil.
func partialErr(fails *sweep.Failures) error {
	if fails.Len() == 0 {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrPartial, fails)
}

// failNote appends the standard partial-report footer for a keep-going run
// with failures: one line naming the count, then one line per failed cell
// with its grid coordinates and first error line. No-op when fails is nil.
func failNote(t interface{ Notef(string, ...any) }, fails *sweep.Failures, cellName func(i int) string) {
	if fails.Len() == 0 {
		return
	}
	t.Notef("PARTIAL: %d of the sweep cells failed; failed cells are marked FAILED", fails.Len())
	for _, ce := range fails.Cells {
		t.Notef("  failed %s: %v", cellName(ce.Cell), firstErrLine(ce.Err))
	}
}

// firstErrLine renders err's first line (panic CellErrors carry multi-line
// stacks that belong in logs, not table footers).
func firstErrLine(err error) string {
	s := err.Error()
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

// getWorkloads resolves every name up front so validation errors surface
// before any cell runs or any output is written.
func getWorkloads(names []string) ([]*workload.Workload, error) {
	ws := make([]*workload.Workload, len(names))
	for i, name := range names {
		w, err := workload.Get(name)
		if err != nil {
			return nil, err
		}
		ws[i] = w
	}
	return ws, nil
}

// triClassifier fans one shard's references to all three classification
// schemes, so a sharded run still replays each workload trace exactly once.
type triClassifier struct {
	oc *core.Classifier
	ec *core.Eggers
	tc *core.Torrellas
}

func newTriClassifier(procs int, g mem.Geometry) *triClassifier {
	return &triClassifier{
		oc: core.NewClassifier(procs, g),
		ec: core.NewEggers(procs, g),
		tc: core.NewTorrellas(procs, g),
	}
}

func (c *triClassifier) Ref(r trace.Ref) {
	c.oc.Ref(r)
	c.ec.Ref(r)
	c.tc.Ref(r)
}

// triCounts is the merged result of a triClassifier pass.
type triCounts struct {
	ours         core.Counts
	eggers, torr core.SharingCounts
	refs         uint64
}

func mergeTriCounts(a, b triCounts) triCounts {
	return triCounts{
		ours:   a.ours.Add(b.ours),
		eggers: a.eggers.Add(b.eggers),
		torr:   a.torr.Add(b.torr),
		refs:   a.refs + b.refs,
	}
}

// classifyAll drives the three classifiers over one replay of the workload
// trace, block-sharded across shards consumers (shards <= 1 is the serial
// single-pass path).
func classifyAll(ctx context.Context, r trace.Reader, procs int, g mem.Geometry, shards int) (triCounts, error) {
	return core.RunShardedContext(ctx, r, shards, trace.BlockShard(g, shards),
		func(int) *triClassifier { return newTriClassifier(procs, g) },
		func(c *triClassifier) triCounts {
			return triCounts{ours: c.oc.Finish(), eggers: c.ec.Finish(), torr: c.tc.Finish(), refs: c.oc.DataRefs()}
		},
		mergeTriCounts)
}

// fused reports whether the drivers should take the fused replay paths.
func (o Options) fused() bool { return !o.NoFuse }

// fusedTri fans one shard's references to the three fused classifiers, so a
// whole (workload x blocks) grid row replays its trace exactly once.
type fusedTri struct {
	oc *core.FusedClassifier
	ec *core.FusedEggers
	tc *core.FusedTorrellas
}

func newFusedTri(procs int, geos []mem.Geometry) *fusedTri {
	return &fusedTri{
		oc: core.NewFusedClassifier(procs, geos),
		ec: core.NewFusedEggers(procs, geos),
		tc: core.NewFusedTorrellas(procs, geos),
	}
}

func (c *fusedTri) Ref(r trace.Ref) {
	c.oc.Ref(r)
	c.ec.Ref(r)
	c.tc.Ref(r)
}

// RefBatch implements trace.BatchConsumer.
func (c *fusedTri) RefBatch(refs []trace.Ref) {
	c.oc.RefBatch(refs)
	c.ec.RefBatch(refs)
	c.tc.RefBatch(refs)
}

// SetSpanTrack implements span.TrackSetter by forwarding the driving
// goroutine's track to the three fused classifiers.
func (c *fusedTri) SetSpanTrack(t *span.Track) {
	c.oc.SetSpanTrack(t)
	c.ec.SetSpanTrack(t)
	c.tc.SetSpanTrack(t)
}

// fusedTriCounts is the merged result of a fusedTri pass: the three
// schemes' counts at every geometry, plus the shared denominator.
type fusedTriCounts struct {
	ours         []core.Counts
	eggers, torr []core.SharingCounts
	refs         uint64
}

func mergeFusedTriCounts(a, b fusedTriCounts) fusedTriCounts {
	for i := range a.ours {
		a.ours[i] = a.ours[i].Add(b.ours[i])
		a.eggers[i] = a.eggers[i].Add(b.eggers[i])
		a.torr[i] = a.torr[i].Add(b.torr[i])
	}
	a.refs += b.refs
	return a
}

// classifyAllFused drives the three fused classifiers over shard-native
// replays of one workload trace: every geometry, every scheme, one pass per
// shard (shards <= 1 is one serial pass). The block space is partitioned by
// the coarsest geometry, which is a valid partition at every nested level.
func classifyAllFused(ctx context.Context, open func(shard int) (trace.Reader, error), procs int, geos []mem.Geometry, shards int) (fusedTriCounts, error) {
	coarse := core.CoarsestGeometry(geos)
	return core.RunShardedOpen(ctx, open, shards, trace.BlockShard(coarse, shards),
		func(int) *fusedTri { return newFusedTri(procs, geos) },
		func(c *fusedTri) fusedTriCounts {
			return fusedTriCounts{ours: c.oc.Finish(), eggers: c.ec.Finish(), torr: c.tc.Finish(), refs: c.oc.DataRefs()}
		},
		mergeFusedTriCounts)
}

// flattenGroups lays per-group cell slices out on the flat per-cell grid:
// group gi's cells land at [gi*per, (gi+1)*per). Failed groups (nil slices)
// leave zero values, which the renderers skip via the expanded failures.
func flattenGroups[T any](groups [][]T, per int) []T {
	out := make([]T, len(groups)*per)
	for gi, g := range groups {
		copy(out[gi*per:(gi+1)*per], g)
	}
	return out
}

// expandGroupFailures maps the failures of a group-per-workload sweep onto
// the flat per-cell grid: a failed group marks every one of its cells
// failed with the group's error, so the keep-going rendering path is the
// same one the per-cell sweep uses.
func expandGroupFailures(gFails *sweep.Failures, per int) *sweep.Failures {
	if gFails == nil {
		return nil
	}
	out := &sweep.Failures{}
	for _, ce := range gFails.Cells {
		for j := 0; j < per; j++ {
			out.Cells = append(out.Cells, &sweep.CellError{Cell: ce.Cell*per + j, Err: ce.Err, Stack: ce.Stack})
		}
	}
	return out
}

func pct(v float64) string { return fmt.Sprintf("%.2f", v) }
