package experiment

// Driver-level fused differential: the fused drivers (Fig. 5, Fig. 6,
// Table 1) must render byte-identical reports with fusion on and off,
// across the full parallelism x shards matrix — the end-to-end consequence
// of the fused classifiers' bit-for-bit equivalence.

import (
	"bytes"
	"testing"
)

// fusedDrivers enumerates the drivers with a fused path.
var fusedDrivers = []struct {
	name string
	run  func(Options) error
}{
	{"Fig5", func(o Options) error { o.Blocks = []int{8, 64, 1024}; return Fig5(o) }},
	{"Fig6", func(o Options) error { return Fig6(o, 64) }},
	{"Table1", Table1},
}

// TestFusedDriversMatchPerCell: for every fused driver, every (-j, -shards)
// combination of the fused path renders exactly the serial per-cell
// report.
func TestFusedDriversMatchPerCell(t *testing.T) {
	for _, d := range fusedDrivers {
		t.Run(d.name, func(t *testing.T) {
			var want bytes.Buffer
			o := boundedOpts(&want, 1)
			o.NoFuse = true
			if err := d.run(o); err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{1, 8} {
				for _, shards := range []int{1, 8} {
					for _, noFuse := range []bool{false, true} {
						var got bytes.Buffer
						o := boundedOpts(&got, par)
						o.Shards = shards
						o.NoFuse = noFuse
						if err := d.run(o); err != nil {
							t.Fatalf("j=%d shards=%d fused=%v: %v", par, shards, !noFuse, err)
						}
						if !bytes.Equal(want.Bytes(), got.Bytes()) {
							t.Errorf("j=%d shards=%d fused=%v output differs from serial per-cell:\n%s\nvs\n%s",
								par, shards, !noFuse, got.String(), want.String())
						}
					}
				}
			}
		})
	}
}
