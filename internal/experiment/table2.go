package experiment

import (
	"context"
	"fmt"

	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// table2Paper holds the paper's Table 2 rows: speedup, writes (thousands),
// reads (thousands), acquire/release references (thousands), data set (KB).
var table2Paper = map[string][5]float64{
	"MP3D1000":  {10.9, 357, 948, 90, 36},
	"MP3D10000": {14.9, 1510, 2561, 411, 360},
	"WATER16":   {12.3, 83, 973, 9, 10},
	"WATER288":  {14.9, 5114, 71134, 531, 195},
	"LU32":      {5.7, 37, 136, 4, 8},
	"LU200":     {14.9, 5663, 11764, 10, 320},
	"JACOBI":    {15.0, 280, 2407, 4, 65},
}

// Table2 regenerates the paper's Table 2: the characteristics of every
// benchmark trace (modeled speedup, reference volumes, synchronization
// operations, data-set size), next to the values the paper reports. With
// Quick, only the small data sets are characterized (the large ones stream
// tens of millions of references). One sweep cell per workload collects the
// statistics.
func Table2(o Options) error {
	defer driverSpan("table2").End()
	defaults := workload.Names()
	if o.Quick {
		defaults = workload.SmallSet()
	}
	names := o.workloads(defaults)

	ws, err := getWorkloads(names)
	if err != nil {
		return err
	}
	cache := o.traceCache()
	cells, fails, err := mapCells(o, len(ws), func(ctx context.Context, i int) (*trace.Stats, error) {
		w := ws[i]
		defer replaySpan(ctx, w.Name, "stats", 0).End()
		r, err := cache.ReaderContext(ctx, w.Name)
		if err != nil {
			return nil, err
		}
		s := trace.NewStats(w.Procs, true)
		if err := trace.DriveContext(ctx, r, s); err != nil {
			return nil, err
		}
		return s, nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintln(o.Out, "Table 2: characteristics of the benchmarks (measured | paper)")
	fmt.Fprintln(o.Out)
	tb := report.NewTable("benchmark", "speedup", "writes(k)", "reads(k)", "acq/rel(k)", "data(KB)")
	for wi, w := range ws {
		name := w.Name
		if fails.Failed(wi) != nil {
			tb.Row(name, "FAILED")
			continue
		}
		s := cells[wi]
		paper, ok := table2Paper[name]
		cell := func(measured float64, idx int, format string) string {
			if !ok {
				return fmt.Sprintf(format, measured)
			}
			return fmt.Sprintf(format+" | "+format, measured, paper[idx])
		}
		tb.Row(name,
			cell(s.Speedup(), 0, "%.1f"),
			cell(float64(s.Stores)/1000, 1, "%.0f"),
			cell(float64(s.Loads)/1000, 2, "%.0f"),
			cell(float64(s.SyncRefs())/1000, 3, "%.1f"),
			cell(float64(s.DataSetBytes())/1024, 4, "%.0f"),
		)
	}
	failNote(tb, fails, func(i int) string { return ws[i].Name })
	if o.CSV {
		if err := tb.CSV(o.Out); err != nil {
			return err
		}
		return partialErr(fails)
	}
	tb.Fprint(o.Out)
	return partialErr(fails)
}
