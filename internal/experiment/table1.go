package experiment

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/sweep"
)

// table1Paper holds the counts the paper's Table 1 reports, for side-by-side
// comparison: misses by classification scheme for the large data sets at
// 32- and 1024-byte blocks.
var table1Paper = map[string]map[int][3][3]uint64{
	// [scheme: ours, eggers, torrellas] x [true, cold, false]
	"LU200": {
		32:   {{5769, 110955, 11839}, {2845, 110955, 14763}, {597, 113812, 14154}},
		1024: {{7941, 5545, 79882}, {2558, 5545, 85265}, {183, 9827, 83358}},
	},
	"MP3D10000": {
		32:   {{188120, 46242, 31206}, {178206, 46242, 41120}, {177272, 52264, 36032}},
		1024: {{82125, 4058, 266245}, {67447, 4058, 280923}, {112562, 26011, 213855}},
	},
}

// table1Cell is one (workload, block) point: the three schemes' counts.
type table1Cell struct {
	ours         core.Counts
	eggers, torr core.SharingCounts
}

// Table1 regenerates the paper's Table 1: the number of true-sharing, cold
// and false-sharing misses under the three classifications, for the large
// data sets at block sizes of 32 and 1024 bytes. With Quick, the small data
// sets are used instead (and no paper reference column is available). Each
// (workload, block) cell drives the three classifiers over one trace replay
// on the sweep engine.
func Table1(o Options) error {
	defer driverSpan("table1").End()
	defaults := []string{"LU200", "MP3D10000"}
	if o.Quick {
		defaults = []string{"LU32", "MP3D1000"}
	}
	names := o.workloads(defaults)
	blocks := o.blocks([]int{32, 1024})

	ws, err := getWorkloads(names)
	if err != nil {
		return err
	}
	geos := make([]mem.Geometry, len(blocks))
	for i, b := range blocks {
		g, err := mem.NewGeometry(b)
		if err != nil {
			return err
		}
		geos[i] = g
	}

	cache := o.traceCache()
	var cells []table1Cell
	var fails *sweep.Failures
	if o.fused() {
		// One fused sweep cell per workload: both block sizes and all three
		// schemes off one pass (per shard) over the trace.
		groups, gFails, err := mapCells(o, len(ws), func(ctx context.Context, wi int) ([]table1Cell, error) {
			w := ws[wi]
			defer replaySpan(ctx, w.Name, "fused-tri", 0).End()
			eff := o.shardsPerCell()
			open, err := o.shardSource(ctx, cache, w.Name, core.CoarsestGeometry(geos), eff)
			if err != nil {
				return nil, err
			}
			tri, err := classifyAllFused(ctx, open, w.Procs, geos, eff)
			if err != nil {
				return nil, err
			}
			out := make([]table1Cell, len(geos))
			for bi := range geos {
				out[bi] = table1Cell{ours: tri.ours[bi], eggers: tri.eggers[bi], torr: tri.torr[bi]}
			}
			return out, nil
		})
		if err != nil {
			return err
		}
		cells = flattenGroups(groups, len(blocks))
		fails = expandGroupFailures(gFails, len(blocks))
	} else {
		var err error
		cells, fails, err = mapCells(o, len(ws)*len(blocks), func(ctx context.Context, i int) (table1Cell, error) {
			w, g := ws[i/len(blocks)], geos[i%len(blocks)]
			defer replaySpan(ctx, w.Name, "tri", blocks[i%len(blocks)]).End()
			r, err := cache.ReaderContext(ctx, w.Name)
			if err != nil {
				return table1Cell{}, err
			}
			tri, err := classifyAll(ctx, r, w.Procs, g, o.shardsPerCell())
			if err != nil {
				return table1Cell{}, err
			}
			return table1Cell{ours: tri.ours, eggers: tri.eggers, torr: tri.torr}, nil
		})
		if err != nil {
			return err
		}
	}

	fmt.Fprintln(o.Out, "Table 1: miss counts under the three classifications")
	fmt.Fprintln(o.Out)
	tb := report.NewTable("workload", "B", "class", "scheme", "misses", "paper")
	for wi, w := range ws {
		for bi, b := range blocks {
			if fails.Failed(wi*len(blocks)+bi) != nil {
				tb.Rowf(w.Name, b, "FAILED")
				continue
			}
			cell := cells[wi*len(blocks)+bi]
			ours, eggers, torr := cell.ours, cell.eggers, cell.torr
			schemes := [3]struct {
				name string
				c    [3]uint64 // true, cold, false
			}{
				{"ours", [3]uint64{ours.PTS, ours.Cold(), ours.PFS}},
				{"eggers", [3]uint64{eggers.True, eggers.Cold, eggers.False}},
				{"torrellas", [3]uint64{torr.True, torr.Cold, torr.False}},
			}
			classes := [3]string{"TS", "COLD", "FS"}
			for ci, class := range classes {
				for si, s := range schemes {
					paper := ""
					if ref, ok := table1Paper[w.Name][b]; ok {
						paper = fmt.Sprint(ref[si][ci])
					}
					tb.Rowf(w.Name, b, class, s.name, s.c[ci], paper)
				}
			}
		}
	}
	failNote(tb, fails, func(i int) string {
		return fmt.Sprintf("%s B=%d", ws[i/len(blocks)].Name, blocks[i%len(blocks)])
	})
	if o.CSV {
		if err := tb.CSV(o.Out); err != nil {
			return err
		}
		return partialErr(fails)
	}
	tb.Fprint(o.Out)
	fmt.Fprintln(o.Out)
	fmt.Fprintln(o.Out, "Eggers' scheme can only under-count true sharing relative to ours;")
	fmt.Fprintln(o.Out, "Torrellas' counts many sharing misses as cold (word-grain first touch).")
	return partialErr(fails)
}
