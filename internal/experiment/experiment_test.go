package experiment

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/workload"
)

func quickOpts(sb *strings.Builder) Options {
	return Options{Out: sb, Quick: true, Workloads: []string{"LU32"}}
}

func TestTable1Quick(t *testing.T) {
	var sb strings.Builder
	if err := Table1(quickOpts(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 1", "LU32", "ours", "eggers", "torrellas", "TS", "COLD", "FS"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1CSV(t *testing.T) {
	var sb strings.Builder
	o := quickOpts(&sb)
	o.CSV = true
	if err := Table1(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "workload,B,class,scheme,misses,paper") {
		t.Errorf("CSV header missing:\n%s", sb.String())
	}
}

func TestTable1PaperColumnPresent(t *testing.T) {
	// Without Quick and with the real Table 1 workloads the paper
	// reference is attached; use the small trace but the LU200 name is
	// too slow for a unit test, so just verify the reference data shape.
	for name, byBlock := range table1Paper {
		for b, ref := range byBlock {
			if b != 32 && b != 1024 {
				t.Errorf("%s: unexpected block %d", name, b)
			}
			for _, scheme := range ref {
				for _, v := range scheme {
					if v == 0 {
						t.Errorf("%s/B=%d: zero reference entry", name, b)
					}
				}
			}
		}
	}
}

func TestTable2Quick(t *testing.T) {
	var sb strings.Builder
	o := Options{Out: &sb, Quick: true}
	if err := Table2(o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range append(workload.SmallSet(), "speedup", "|") {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "WATER288") {
		t.Error("quick Table 2 should not stream the large sets")
	}
}

func TestFig5Quick(t *testing.T) {
	var sb strings.Builder
	o := quickOpts(&sb)
	o.Blocks = []int{8, 64}
	if err := Fig5(o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 5", "PC", "CTS", "CFS", "PTS", "PFS", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig6Quick(t *testing.T) {
	var sb strings.Builder
	o := quickOpts(&sb)
	if err := Fig6(o, 64); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 6", "MIN", "OTF", "RD", "SD", "SRD", "WBWI", "MAX", "TRUE", "FALSE"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig6RejectsBadBlock(t *testing.T) {
	var sb strings.Builder
	if err := Fig6(quickOpts(&sb), 100); err == nil {
		t.Error("non-power-of-two block accepted")
	}
}

func TestLargeQuick(t *testing.T) {
	var sb strings.Builder
	o := quickOpts(&sb)
	o.Protocols = []string{"MIN", "OTF"}
	if err := Large(o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Section 7", "MIN", "OTF", "vs MIN", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownWorkloadPropagates(t *testing.T) {
	var sb strings.Builder
	o := Options{Out: &sb, Workloads: []string{"NOPE"}}
	if err := Table2(o); err == nil {
		t.Error("Table2 accepted unknown workload")
	}
	if err := Fig5(o); err == nil {
		t.Error("Fig5 accepted unknown workload")
	}
	if err := Fig6(o, 64); err == nil {
		t.Error("Fig6 accepted unknown workload")
	}
	if err := Large(o); err == nil {
		t.Error("Large accepted unknown workload")
	}
	if err := Table1(o); err == nil {
		t.Error("Table1 accepted unknown workload")
	}
}

// Fig. 6's single-pass multi-protocol run must agree with independent runs.
func TestRunProtocolsMatchesIndividualRuns(t *testing.T) {
	w, err := workload.Get("LU32")
	if err != nil {
		t.Fatal(err)
	}
	g := mem.MustGeometry(64)
	results, err := runProtocols(w, g, []string{"MIN", "OTF", "MAX"})
	if err != nil {
		t.Fatal(err)
	}
	again, err := runProtocols(w, g, []string{"MIN", "OTF", "MAX"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i] != again[i] {
			t.Errorf("run %d differs: %+v vs %+v", i, results[i], again[i])
		}
	}
	if results[0].Misses > results[1].Misses || results[1].Misses > results[2].Misses {
		t.Errorf("MIN <= OTF <= MAX violated: %d %d %d",
			results[0].Misses, results[1].Misses, results[2].Misses)
	}
}
