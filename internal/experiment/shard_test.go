package experiment

// Driver-level shard invariance: every plumbed experiment must render
// byte-identical output with the per-cell classification serial, sharded,
// and sharded on top of the parallel sweep — the end-to-end form of the
// property the differential suites check per consumer.

import (
	"runtime"
	"strings"
	"testing"
)

// renderAt runs one driver with the given parallelism and shard count.
func renderAt(t *testing.T, run func(Options) error, par, shards int) string {
	t.Helper()
	var sb strings.Builder
	o := Options{Out: &sb, Quick: true, Workloads: []string{"LU32", "JACOBI"}, Parallelism: par, Shards: shards}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestDriversShardInvariant(t *testing.T) {
	drivers := []struct {
		name string
		run  func(Options) error
	}{
		{"fig5", func(o Options) error { o.Blocks = []int{16, 64}; return Fig5(o) }},
		{"fig6", func(o Options) error { return Fig6(o, 64) }},
		{"table1", Table1},
		{"large", Large},
		{"finite", func(o Options) error { return FiniteSweep(o, 64, 4) }},
	}
	for _, d := range drivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			want := renderAt(t, d.run, 1, 0)
			for _, cfg := range []struct{ par, shards int }{
				{1, 1}, {1, 8}, {4, 8}, {1, 64},
			} {
				if got := renderAt(t, d.run, cfg.par, cfg.shards); got != want {
					t.Errorf("par=%d shards=%d output differs:\n got:\n%s\nwant:\n%s",
						cfg.par, cfg.shards, got, want)
				}
			}
		})
	}
}

// TestShardsPerCell pins the goroutine-budget composition rule: the
// effective per-cell shard count shrinks as the sweep parallelism grows, so
// cells x shards stays within max(GOMAXPROCS, Parallelism, Shards).
func TestShardsPerCell(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	cases := []struct {
		par, shards, want int
	}{
		{0, 0, 1},                             // default: serial cells
		{1, 1, 1},                             // explicit serial
		{8, 0, 1},                             // parallel sweep, no sharding
		{1, 8, 8},                             // all budget to one cell
		{8, 8, min(8, max(1, max(8, gmp)/8))}, // split between sweep and shards
		{16, 4, 1},                            // sweep saturates the budget
	}
	for _, tc := range cases {
		o := Options{Parallelism: tc.par, Shards: tc.shards}
		if got := o.shardsPerCell(); got != tc.want {
			t.Errorf("par=%d shards=%d: shardsPerCell() = %d, want %d",
				tc.par, tc.shards, got, tc.want)
		}
		// The budget bound itself: concurrent cells x per-cell shards never
		// exceeds the largest of GOMAXPROCS, Parallelism and Shards.
		par := tc.par
		if par <= 0 {
			par = gmp
		}
		budget := max(gmp, max(tc.par, tc.shards))
		if got := o.shardsPerCell(); par*got > budget && got > 1 {
			t.Errorf("par=%d shards=%d: %d cells x %d shards exceeds budget %d",
				tc.par, tc.shards, par, got, budget)
		}
	}
}
