package experiment

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Hotspots attributes every classified miss to the data structure it lands
// in, mechanically validating the narrative of §6: which structure causes
// each benchmark's true and false sharing at a given block size (particles
// vs. space cells in MP3D, the grids vs. the barrier counter/flag in
// JACOBI, the matrix vs. the column flags in LU, and so on). Blocks that
// span two structures are attributed to the structure containing their
// first word.
func Hotspots(o Options, blockBytes int) error {
	g, err := mem.NewGeometry(blockBytes)
	if err != nil {
		return err
	}
	names := o.workloads(workload.SmallSet())

	fmt.Fprintf(o.Out, "Miss attribution by data structure (B=%d bytes)\n", blockBytes)
	for _, name := range names {
		w, err := workload.Get(name)
		if err != nil {
			return err
		}
		perRegion := make(map[string]*core.Counts)
		classifier := core.NewClassifier(w.Procs, g)
		classifier.Hook(func(_ int, b mem.Block, class core.Class) {
			region := w.RegionOf(g.BaseOf(b))
			counts := perRegion[region]
			if counts == nil {
				counts = &core.Counts{}
				perRegion[region] = counts
			}
			switch class {
			case core.ClassPC:
				counts.PC++
			case core.ClassCTS:
				counts.CTS++
			case core.ClassCFS:
				counts.CFS++
			case core.ClassPTS:
				counts.PTS++
			case core.ClassPFS:
				counts.PFS++
			case core.ClassRepl:
				counts.Repl++
			}
		})
		if err := trace.Drive(w.Reader(), classifier); err != nil {
			return err
		}
		totals := classifier.Finish()

		regions := make([]string, 0, len(perRegion))
		for region := range perRegion {
			regions = append(regions, region)
		}
		sort.Slice(regions, func(i, j int) bool {
			return perRegion[regions[i]].Total() > perRegion[regions[j]].Total()
		})

		fmt.Fprintf(o.Out, "\n%s (%d misses total, %d useless)\n", name, totals.Total(), totals.PFS)
		tb := report.NewTable("region", "misses", "cold", "PTS", "PFS", "share of PFS")
		for _, region := range regions {
			c := perRegion[region]
			share := "0%"
			if totals.PFS > 0 {
				share = fmt.Sprintf("%.0f%%", 100*float64(c.PFS)/float64(totals.PFS))
			}
			tb.Rowf(region, c.Total(), c.Cold(), c.PTS, c.PFS, share)
		}
		if o.CSV {
			if err := tb.CSV(o.Out); err != nil {
				return err
			}
			continue
		}
		tb.Fprint(o.Out)
	}
	return nil
}
