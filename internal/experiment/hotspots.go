package experiment

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// hotspotCell is one workload's per-region attribution.
type hotspotCell struct {
	perRegion map[string]*core.Counts
	totals    core.Counts
}

// Hotspots attributes every classified miss to the data structure it lands
// in, mechanically validating the narrative of §6: which structure causes
// each benchmark's true and false sharing at a given block size (particles
// vs. space cells in MP3D, the grids vs. the barrier counter/flag in
// JACOBI, the matrix vs. the column flags in LU, and so on). Blocks that
// span two structures are attributed to the structure containing their
// first word. One sweep cell per workload runs the hooked classifier.
func Hotspots(o Options, blockBytes int) error {
	defer driverSpan("hotspots").End()
	g, err := mem.NewGeometry(blockBytes)
	if err != nil {
		return err
	}
	names := o.workloads(workload.SmallSet())

	ws, err := getWorkloads(names)
	if err != nil {
		return err
	}
	cache := o.traceCache()
	cells, fails, err := mapCells(o, len(ws), func(ctx context.Context, i int) (hotspotCell, error) {
		w := ws[i]
		defer replaySpan(ctx, w.Name, "hotspots", blockBytes).End()
		r, err := cache.ReaderContext(ctx, w.Name)
		if err != nil {
			return hotspotCell{}, err
		}
		perRegion := make(map[string]*core.Counts)
		classifier := core.NewClassifier(w.Procs, g)
		classifier.Hook(func(_ int, b mem.Block, class core.Class) {
			region := w.RegionOf(g.BaseOf(b))
			counts := perRegion[region]
			if counts == nil {
				counts = &core.Counts{}
				perRegion[region] = counts
			}
			switch class {
			case core.ClassPC:
				counts.PC++
			case core.ClassCTS:
				counts.CTS++
			case core.ClassCFS:
				counts.CFS++
			case core.ClassPTS:
				counts.PTS++
			case core.ClassPFS:
				counts.PFS++
			case core.ClassRepl:
				counts.Repl++
			}
		})
		if err := trace.DriveContext(ctx, r, classifier); err != nil {
			return hotspotCell{}, err
		}
		return hotspotCell{perRegion: perRegion, totals: classifier.Finish()}, nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(o.Out, "Miss attribution by data structure (B=%d bytes)\n", blockBytes)
	for wi, w := range ws {
		if ce := fails.Failed(wi); ce != nil {
			fmt.Fprintf(o.Out, "\n%s FAILED: %s\n", w.Name, firstErrLine(ce.Err))
			continue
		}
		perRegion, totals := cells[wi].perRegion, cells[wi].totals

		regions := make([]string, 0, len(perRegion))
		for region := range perRegion {
			regions = append(regions, region)
		}
		// Sort by miss count, breaking ties by name so the report is
		// deterministic regardless of map iteration order.
		sort.Slice(regions, func(i, j int) bool {
			ti, tj := perRegion[regions[i]].Total(), perRegion[regions[j]].Total()
			if ti != tj {
				return ti > tj
			}
			return regions[i] < regions[j]
		})

		fmt.Fprintf(o.Out, "\n%s (%d misses total, %d useless)\n", w.Name, totals.Total(), totals.PFS)
		tb := report.NewTable("region", "misses", "cold", "PTS", "PFS", "share of PFS")
		for _, region := range regions {
			c := perRegion[region]
			share := "0%"
			if totals.PFS > 0 {
				share = fmt.Sprintf("%.0f%%", 100*float64(c.PFS)/float64(totals.PFS))
			}
			tb.Rowf(region, c.Total(), c.Cold(), c.PTS, c.PFS, share)
		}
		if o.CSV {
			if err := tb.CSV(o.Out); err != nil {
				return err
			}
			continue
		}
		tb.Fprint(o.Out)
	}
	return partialErr(fails)
}
