package experiment

import (
	"context"
	"fmt"

	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Message-size model for the traffic study, in bytes. Addresses are 32-bit
// like the paper's machines; a data word is 4 bytes; a block fetch moves
// the block plus its address.
const (
	invalidationMsgBytes = 8  // address + header
	wordMsgBytes         = 12 // address + one word + header (write-through, update)
)

// fetchBytes is the traffic of one block fetch.
func fetchBytes(g mem.Geometry) uint64 { return uint64(g.BlockBytes()) + 8 }

// TrafficOf converts a protocol result into total traffic in bytes under
// the message-size model: block fetches for every miss, invalidation
// messages, write-throughs and updates.
func TrafficOf(res coherence.Result, g mem.Geometry) uint64 {
	return res.Misses*fetchBytes(g) +
		res.Invalidations*invalidationMsgBytes +
		(res.WriteThroughs+res.Updates)*wordMsgBytes
}

// Traffic regenerates the §8 traffic remark with numbers: per workload,
// block size and schedule (including the WU/CU extensions), the miss rate
// and the memory traffic per data reference. The paper's observations to
// check: protocols with reduced miss rates also reduce miss traffic, the
// traffic is very high for large blocks, and update-based protocols trade
// fetch traffic for update traffic. The (workload, block, protocol) grid
// runs on the sweep engine.
func Traffic(o Options) error {
	defer driverSpan("traffic").End()
	names := o.workloads(workload.SmallSet())
	protos := o.Protocols
	if len(protos) == 0 {
		protos = append(append([]string{}, coherence.Protocols...), coherence.ExtensionProtocols...)
	}

	ws, err := getWorkloads(names)
	if err != nil {
		return err
	}
	geos := make([]mem.Geometry, len(largeBlocks))
	for i, b := range largeBlocks {
		geos[i] = mem.MustGeometry(b)
	}
	for _, name := range protos {
		if _, err := coherence.New(name, workload.DefaultProcs, geos[0]); err != nil {
			return err
		}
	}

	cache := o.traceCache()
	perBlock := len(protos)
	perWorkload := len(largeBlocks) * perBlock
	cells, fails, err := mapCells(o, len(ws)*perWorkload, func(ctx context.Context, i int) (coherence.Result, error) {
		w := ws[i/perWorkload]
		g := geos[i%perWorkload/perBlock]
		proto := protos[i%perBlock]
		defer replaySpan(ctx, w.Name, proto, largeBlocks[i%perWorkload/perBlock]).End()
		sim, err := coherence.New(proto, w.Procs, g)
		if err != nil {
			return coherence.Result{}, err
		}
		r, err := cache.ReaderContext(ctx, w.Name)
		if err != nil {
			return coherence.Result{}, err
		}
		if err := trace.DriveContext(ctx, r, sim); err != nil {
			return coherence.Result{}, err
		}
		return sim.Finish(), nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintln(o.Out, "Memory traffic by invalidation schedule (bytes per data reference)")
	fmt.Fprintln(o.Out)
	tb := report.NewTable("workload", "B", "protocol", "miss%", "fetch B/ref", "msg B/ref", "total B/ref")
	for wi, w := range ws {
		for bi, b := range largeBlocks {
			g := geos[bi]
			base := wi*perWorkload + bi*perBlock
			results := cells[base : base+perBlock]
			for pi, res := range results {
				if fails.Failed(base+pi) != nil {
					tb.Rowf(w.Name, b, protos[pi], "FAILED")
					continue
				}
				refs := float64(res.DataRefs)
				fetch := float64(res.Misses*fetchBytes(g)) / refs
				msgs := float64(TrafficOf(res, g)-res.Misses*fetchBytes(g)) / refs
				tb.Rowf(w.Name, b, res.Protocol,
					pct(res.MissRate()),
					fmt.Sprintf("%.2f", fetch),
					fmt.Sprintf("%.2f", msgs),
					fmt.Sprintf("%.2f", fetch+msgs))
			}
		}
	}
	failNote(tb, fails, func(i int) string {
		return fmt.Sprintf("%s B=%d %s", ws[i/perWorkload].Name, largeBlocks[i%perWorkload/perBlock], protos[i%perBlock])
	})
	if o.CSV {
		if err := tb.CSV(o.Out); err != nil {
			return err
		}
		return partialErr(fails)
	}
	tb.Fprint(o.Out)
	fmt.Fprintln(o.Out)
	fmt.Fprintln(o.Out, "Paper §8: reduced miss rates reduce miss traffic, but page-sized blocks")
	fmt.Fprintln(o.Out, "move so much data per miss that update-based protocols become attractive.")
	return partialErr(fails)
}
