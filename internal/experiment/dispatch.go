package experiment

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/sweep"
	"repro/internal/trace"
)

// JobKinds lists the experiment names RunNamed accepts — the job-spec
// surface the serving layer exposes. Rendering-parameter experiments that
// need more than a block size (penalty's timing model, the ablations'
// -what) stay CLI-only.
var JobKinds = []string{
	"table1", "table2", "fig5", "fig6", "large", "traffic",
	"compare", "hotspots", "phases", "finite",
}

// ErrUnknownJob marks a job-spec experiment name RunNamed does not map.
// The serving layer turns it into a client error (HTTP 400) rather than a
// server failure.
var ErrUnknownJob = errors.New("experiment: unknown experiment")

// RunNamed maps a job-spec experiment name onto its driver and runs it
// under o. block carries the single-block parameter of the experiments
// that take one (fig6, compare, hotspots, phases, finite); 0 means each
// experiment's paper default. The rendered bytes on o.Out are exactly what
// the equivalent CLI subcommand prints — the serving layer's differential
// suite depends on that.
func RunNamed(kind string, o Options, block int) error {
	blk := func(def int) int {
		if block > 0 {
			return block
		}
		return def
	}
	switch kind {
	case "table1":
		return Table1(o)
	case "table2":
		return Table2(o)
	case "fig5":
		return Fig5(o)
	case "fig6":
		return Fig6(o, blk(64))
	case "large":
		return Large(o)
	case "traffic":
		return Traffic(o)
	case "compare":
		return Compare(o, blk(64))
	case "hotspots":
		return Hotspots(o, blk(64))
	case "phases":
		return Phases(o, blk(64), 10)
	case "finite":
		return FiniteSweep(o, blk(64), 4)
	}
	return fmt.Errorf("%w %q (want one of %s)", ErrUnknownJob, kind, strings.Join(JobKinds, ", "))
}

// NewWrappedTraceCache is NewTraceCache with every generated workload
// reader passed through wrap before anything downstream sees it — the
// chaos hook: a job attempt that should run under injected faults gets a
// private cache whose openers wrap the generation stream with the fault
// plan's injectors, while clean attempts keep sharing the server's
// pristine cache. The wrapped cache must never be shared across attempts:
// a materialized faulted stream would otherwise poison later runs.
func NewWrappedTraceCache(wrap func(trace.Reader) trace.Reader) *sweep.TraceCache {
	return sweep.NewTraceCache(sweep.DefaultCacheRefs, func(name string) (trace.Reader, error) {
		r, err := openWorkloadTrace(name)
		if err != nil {
			return nil, err
		}
		return wrap(r), nil
	})
}
