package experiment

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/finite"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// CacheSizes is the default per-processor cache-capacity sweep for
// FiniteSweep, in bytes; 0 stands for an infinite cache.
var CacheSizes = []int{512, 1 << 10, 2 << 10, 8 << 10, 32 << 10, 0}

// finiteCell is one (workload, capacity) point.
type finiteCell struct {
	counts core.Counts
	refs   uint64
}

// FiniteSweep runs the §8 finite-cache extension: the miss classification
// as a function of the per-processor cache size, with replacement misses as
// a third essential component. The paper's expectation to check: "the
// fraction of essential misses will increase in systems with finite
// caches". The (workload, capacity) grid runs on the sweep engine.
func FiniteSweep(o Options, blockBytes, assoc int) error {
	defer driverSpan("finite").End()
	g, err := mem.NewGeometry(blockBytes)
	if err != nil {
		return err
	}
	names := o.workloads(workload.SmallSet())

	ws, err := getWorkloads(names)
	if err != nil {
		return err
	}
	cache := o.traceCache()
	cells, fails, err := mapCells(o, len(ws)*len(CacheSizes), func(ctx context.Context, i int) (finiteCell, error) {
		w := ws[i/len(CacheSizes)]
		capacity := CacheSizes[i%len(CacheSizes)]
		defer replaySpan(ctx, w.Name, capacityLabel(capacity), blockBytes).End()
		r, err := cache.ReaderContext(ctx, w.Name)
		if err != nil {
			return finiteCell{}, err
		}
		counts, refs, err := classifyAtCapacity(ctx, r, g, capacity, assoc, o.shardsPerCell())
		if err != nil {
			return finiteCell{}, err
		}
		return finiteCell{counts: counts, refs: refs}, nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(o.Out, "Finite caches (B=%d bytes, %d-way LRU): classification vs. capacity\n\n",
		blockBytes, assoc)
	tb := report.NewTable("workload", "cache", "cold%", "PTS%", "repl%", "PFS%", "total%", "essential frac")
	for wi, w := range ws {
		for ci, capacity := range CacheSizes {
			if fails.Failed(wi*len(CacheSizes)+ci) != nil {
				tb.Rowf(w.Name, capacityLabel(capacity), "FAILED")
				continue
			}
			cell := cells[wi*len(CacheSizes)+ci]
			counts, refs := cell.counts, cell.refs
			frac := 0.0
			if counts.Total() > 0 {
				frac = float64(counts.Essential()) / float64(counts.Total())
			}
			tb.Rowf(w.Name, capacityLabel(capacity),
				pct(core.Rate(counts.Cold(), refs)),
				pct(core.Rate(counts.PTS, refs)),
				pct(core.Rate(counts.Repl, refs)),
				pct(core.Rate(counts.PFS, refs)),
				pct(core.Rate(counts.Total(), refs)),
				fmt.Sprintf("%.3f", frac))
		}
	}
	failNote(tb, fails, func(i int) string {
		return fmt.Sprintf("%s cache=%s", ws[i/len(CacheSizes)].Name, capacityLabel(CacheSizes[i%len(CacheSizes)]))
	})
	if o.CSV {
		if err := tb.CSV(o.Out); err != nil {
			return err
		}
		return partialErr(fails)
	}
	tb.Fprint(o.Out)
	fmt.Fprintln(o.Out)
	fmt.Fprintln(o.Out, "Paper §8: replacement misses are essential, so the essential fraction")
	fmt.Fprintln(o.Out, "rises as the cache shrinks; cold/PTS/PFS follow the infinite-cache split.")
	return partialErr(fails)
}

// classifyAtCapacity classifies one trace replay with the given
// per-processor cache capacity, block-sharded across shards consumers;
// capacity 0 means infinite.
func classifyAtCapacity(ctx context.Context, r trace.Reader, g mem.Geometry, capacity, assoc, shards int) (core.Counts, uint64, error) {
	if capacity == 0 {
		return core.ShardedClassifyContext(ctx, r, g, shards)
	}
	cfg := finite.Config{CapacityBytes: capacity, Assoc: assoc}
	return finite.ShardedClassifyContext(ctx, r, g, cfg, shards)
}

func capacityLabel(capacity int) string {
	switch {
	case capacity == 0:
		return "infinite"
	case capacity < 1<<10:
		return fmt.Sprintf("%dB", capacity)
	default:
		return fmt.Sprintf("%dKB", capacity>>10)
	}
}
