package experiment

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Ablations for the design choices DESIGN.md calls out: the competitive
// -update threshold (how many remote updates a copy tolerates before
// self-invalidating) and the finite invalidation buffer of the word
// -invalidate protocols.

// CompetitiveThresholds is the default sweep for AblationCU.
var CompetitiveThresholds = []int{1, 2, 4, 8, 16, 32}

// AblationCU sweeps the competitive-update threshold and reports the
// miss/update-traffic trade-off against the WU (threshold = infinity) and
// MIN (pure invalidate, word grain) endpoints. Larger thresholds approach
// WU's cold-only miss rate at the price of more update messages.
func AblationCU(o Options, blockBytes int) error {
	g, err := mem.NewGeometry(blockBytes)
	if err != nil {
		return err
	}
	names := o.workloads(workload.SmallSet())

	fmt.Fprintf(o.Out, "Competitive-update threshold ablation (B=%d bytes)\n\n", blockBytes)
	tb := report.NewTable("workload", "protocol", "miss%", "updates/ref", "traffic B/ref")
	for _, name := range names {
		w, err := workload.Get(name)
		if err != nil {
			return err
		}
		// Build the sims: MIN and WU endpoints plus the CU sweep, and
		// run them all over a single trace generation.
		sims := []coherence.Simulator{
			coherence.NewMIN(w.Procs, g),
			coherence.NewWU(w.Procs, g),
		}
		labels := []string{"MIN", "WU"}
		for _, threshold := range CompetitiveThresholds {
			cu, err := coherence.NewCU(w.Procs, g, threshold)
			if err != nil {
				return err
			}
			sims = append(sims, cu)
			labels = append(labels, fmt.Sprintf("CU-%d", threshold))
		}
		consumers := make([]trace.Consumer, len(sims))
		for i, s := range sims {
			consumers[i] = s
		}
		if err := trace.Drive(w.Reader(), consumers...); err != nil {
			return err
		}
		for i, sim := range sims {
			res := sim.Finish()
			refs := float64(res.DataRefs)
			tb.Rowf(name, labels[i],
				pct(res.MissRate()),
				fmt.Sprintf("%.3f", float64(res.Updates)/refs),
				fmt.Sprintf("%.2f", float64(TrafficOf(res, g))/refs))
		}
	}
	if o.CSV {
		return tb.CSV(o.Out)
	}
	tb.Fprint(o.Out)
	return nil
}

// SectorSizes is the default coherence-grain sweep for AblationSector, in
// bytes; sizes above the block size are skipped.
var SectorSizes = []int{4, 16, 64, 256, 1024}

// AblationSector sweeps the coherence grain of a sectored protocol at a
// fixed (large) fetch block size: the §7 outlook — multiple block sizes, or
// word-grain coherence — as numbers. Word-sized sectors are exactly WBWI;
// block-sized sectors degenerate to full-block invalidation. The question
// it answers: how fine must the coherence grain be before the page-sized
// fetch block stops paying for false sharing?
func AblationSector(o Options, blockBytes int) error {
	g, err := mem.NewGeometry(blockBytes)
	if err != nil {
		return err
	}
	names := o.workloads(workload.SmallSet())

	fmt.Fprintf(o.Out, "Coherence-grain ablation (fetch block B=%d bytes)\n\n", blockBytes)
	tb := report.NewTable("workload", "sector", "miss%", "TRUE%", "FALSE%")
	for _, name := range names {
		w, err := workload.Get(name)
		if err != nil {
			return err
		}
		var sims []coherence.Simulator
		for _, sector := range SectorSizes {
			if sector > blockBytes {
				continue
			}
			sim, err := coherence.NewSectored(w.Procs, g, sector)
			if err != nil {
				return err
			}
			sims = append(sims, sim)
		}
		consumers := make([]trace.Consumer, len(sims))
		for i, s := range sims {
			consumers[i] = s
		}
		if err := trace.Drive(w.Reader(), consumers...); err != nil {
			return err
		}
		for _, sim := range sims {
			res := sim.Finish()
			tb.Rowf(name, sim.Name(),
				pct(res.MissRate()),
				pct(core.Rate(res.Counts.PTS, res.DataRefs)),
				pct(core.Rate(res.Counts.PFS, res.DataRefs)))
		}
	}
	if o.CSV {
		return tb.CSV(o.Out)
	}
	tb.Fprint(o.Out)
	return nil
}

// BufferSizes is the default sweep for AblationWBWI, in buffered words per
// copy; 0 stands for unlimited (a dirty bit per word, the paper's WBWI).
var BufferSizes = []int{1, 2, 4, 8, 16, 0}

// AblationWBWI sweeps the size of WBWI's per-copy invalidation buffer,
// interpolating between on-the-fly invalidation (tiny buffers overflow on
// nearly every remote store) and the paper's WBWI (a dirty bit per word).
// It quantifies the §7 hardware-cost remark: how many dirty bits per block
// are actually needed before WBWI reaches its unlimited-buffer miss rate.
func AblationWBWI(o Options, blockBytes int) error {
	g, err := mem.NewGeometry(blockBytes)
	if err != nil {
		return err
	}
	names := o.workloads(workload.SmallSet())

	fmt.Fprintf(o.Out, "WBWI invalidation-buffer ablation (B=%d bytes, %d words per block)\n\n",
		blockBytes, g.WordsPerBlock())
	tb := report.NewTable("workload", "buffer", "miss%", "vs unlimited")
	for _, name := range names {
		w, err := workload.Get(name)
		if err != nil {
			return err
		}
		var sims []coherence.Simulator
		var labels []string
		for _, entries := range BufferSizes {
			if entries == 0 {
				sims = append(sims, coherence.NewWBWI(w.Procs, g))
				labels = append(labels, "unlimited")
				continue
			}
			sim, err := coherence.NewWBWILimited(w.Procs, g, entries)
			if err != nil {
				return err
			}
			sims = append(sims, sim)
			labels = append(labels, fmt.Sprintf("%d words", entries))
		}
		consumers := make([]trace.Consumer, len(sims))
		for i, s := range sims {
			consumers[i] = s
		}
		if err := trace.Drive(w.Reader(), consumers...); err != nil {
			return err
		}
		results := make([]coherence.Result, len(sims))
		for i, sim := range sims {
			results[i] = sim.Finish()
		}
		unlimited := results[len(results)-1].MissRate()
		for i, res := range results {
			rel := "n/a"
			if unlimited > 0 {
				rel = fmt.Sprintf("%+.0f%%", 100*(res.MissRate()-unlimited)/unlimited)
			}
			tb.Rowf(name, labels[i], pct(res.MissRate()), rel)
		}
	}
	if o.CSV {
		return tb.CSV(o.Out)
	}
	tb.Fprint(o.Out)
	return nil
}
