package experiment

import (
	"context"
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Ablations for the design choices DESIGN.md calls out: the competitive
// -update threshold (how many remote updates a copy tolerates before
// self-invalidating) and the finite invalidation buffer of the word
// -invalidate protocols. Each (workload, variant) pair is one sweep cell
// replaying the workload's cached trace.

// runVariants executes one cell per (workload, variant) on the sweep
// engine, where newSim builds variant j's simulator, and returns the
// results in (workload-major, variant) order.
func runVariants(o Options, ws []*workload.Workload, variants int,
	newSim func(w *workload.Workload, j int) (coherence.Simulator, error)) ([]coherence.Result, *sweep.Failures, error) {
	cache := o.traceCache()
	return mapCells(o, len(ws)*variants, func(ctx context.Context, i int) (coherence.Result, error) {
		w, j := ws[i/variants], i%variants
		defer replaySpan(ctx, w.Name, fmt.Sprintf("variant-%d", j), 0).End()
		sim, err := newSim(w, j)
		if err != nil {
			return coherence.Result{}, err
		}
		r, err := cache.ReaderContext(ctx, w.Name)
		if err != nil {
			return coherence.Result{}, err
		}
		if err := trace.DriveContext(ctx, r, sim); err != nil {
			return coherence.Result{}, err
		}
		return sim.Finish(), nil
	})
}

// CompetitiveThresholds is the default sweep for AblationCU.
var CompetitiveThresholds = []int{1, 2, 4, 8, 16, 32}

// AblationCU sweeps the competitive-update threshold and reports the
// miss/update-traffic trade-off against the WU (threshold = infinity) and
// MIN (pure invalidate, word grain) endpoints. Larger thresholds approach
// WU's cold-only miss rate at the price of more update messages.
func AblationCU(o Options, blockBytes int) error {
	defer driverSpan("ablate-cu").End()
	g, err := mem.NewGeometry(blockBytes)
	if err != nil {
		return err
	}
	names := o.workloads(workload.SmallSet())
	ws, err := getWorkloads(names)
	if err != nil {
		return err
	}

	// Variants: the MIN and WU endpoints plus the CU sweep.
	labels := []string{"MIN", "WU"}
	for _, threshold := range CompetitiveThresholds {
		labels = append(labels, fmt.Sprintf("CU-%d", threshold))
	}
	cells, fails, err := runVariants(o, ws, len(labels),
		func(w *workload.Workload, j int) (coherence.Simulator, error) {
			switch j {
			case 0:
				return coherence.NewMIN(w.Procs, g), nil
			case 1:
				return coherence.NewWU(w.Procs, g), nil
			default:
				return coherence.NewCU(w.Procs, g, CompetitiveThresholds[j-2])
			}
		})
	if err != nil {
		return err
	}

	fmt.Fprintf(o.Out, "Competitive-update threshold ablation (B=%d bytes)\n\n", blockBytes)
	tb := report.NewTable("workload", "protocol", "miss%", "updates/ref", "traffic B/ref")
	for wi, w := range ws {
		for j, label := range labels {
			if fails.Failed(wi*len(labels)+j) != nil {
				tb.Rowf(w.Name, label, "FAILED")
				continue
			}
			res := cells[wi*len(labels)+j]
			refs := float64(res.DataRefs)
			tb.Rowf(w.Name, label,
				pct(res.MissRate()),
				fmt.Sprintf("%.3f", float64(res.Updates)/refs),
				fmt.Sprintf("%.2f", float64(TrafficOf(res, g))/refs))
		}
	}
	failNote(tb, fails, func(i int) string {
		return fmt.Sprintf("%s %s", ws[i/len(labels)].Name, labels[i%len(labels)])
	})
	if o.CSV {
		if err := tb.CSV(o.Out); err != nil {
			return err
		}
		return partialErr(fails)
	}
	tb.Fprint(o.Out)
	return partialErr(fails)
}

// SectorSizes is the default coherence-grain sweep for AblationSector, in
// bytes; sizes above the block size are skipped.
var SectorSizes = []int{4, 16, 64, 256, 1024}

// AblationSector sweeps the coherence grain of a sectored protocol at a
// fixed (large) fetch block size: the §7 outlook — multiple block sizes, or
// word-grain coherence — as numbers. Word-sized sectors are exactly WBWI;
// block-sized sectors degenerate to full-block invalidation. The question
// it answers: how fine must the coherence grain be before the page-sized
// fetch block stops paying for false sharing?
func AblationSector(o Options, blockBytes int) error {
	defer driverSpan("ablate-sector").End()
	g, err := mem.NewGeometry(blockBytes)
	if err != nil {
		return err
	}
	names := o.workloads(workload.SmallSet())
	ws, err := getWorkloads(names)
	if err != nil {
		return err
	}

	var sectors []int
	for _, sector := range SectorSizes {
		if sector <= blockBytes {
			sectors = append(sectors, sector)
		}
	}
	cells, fails, err := runVariants(o, ws, len(sectors),
		func(w *workload.Workload, j int) (coherence.Simulator, error) {
			return coherence.NewSectored(w.Procs, g, sectors[j])
		})
	if err != nil {
		return err
	}

	fmt.Fprintf(o.Out, "Coherence-grain ablation (fetch block B=%d bytes)\n\n", blockBytes)
	tb := report.NewTable("workload", "sector", "miss%", "TRUE%", "FALSE%")
	for wi, w := range ws {
		for j := range sectors {
			if fails.Failed(wi*len(sectors)+j) != nil {
				tb.Rowf(w.Name, fmt.Sprintf("SEC-%d", sectors[j]), "FAILED")
				continue
			}
			res := cells[wi*len(sectors)+j]
			tb.Rowf(w.Name, res.Protocol,
				pct(res.MissRate()),
				pct(core.Rate(res.Counts.PTS, res.DataRefs)),
				pct(core.Rate(res.Counts.PFS, res.DataRefs)))
		}
	}
	failNote(tb, fails, func(i int) string {
		return fmt.Sprintf("%s SEC-%d", ws[i/len(sectors)].Name, sectors[i%len(sectors)])
	})
	if o.CSV {
		if err := tb.CSV(o.Out); err != nil {
			return err
		}
		return partialErr(fails)
	}
	tb.Fprint(o.Out)
	return partialErr(fails)
}

// BufferSizes is the default sweep for AblationWBWI, in buffered words per
// copy; 0 stands for unlimited (a dirty bit per word, the paper's WBWI).
var BufferSizes = []int{1, 2, 4, 8, 16, 0}

// AblationWBWI sweeps the size of WBWI's per-copy invalidation buffer,
// interpolating between on-the-fly invalidation (tiny buffers overflow on
// nearly every remote store) and the paper's WBWI (a dirty bit per word).
// It quantifies the §7 hardware-cost remark: how many dirty bits per block
// are actually needed before WBWI reaches its unlimited-buffer miss rate.
func AblationWBWI(o Options, blockBytes int) error {
	defer driverSpan("ablate-wbwi").End()
	g, err := mem.NewGeometry(blockBytes)
	if err != nil {
		return err
	}
	names := o.workloads(workload.SmallSet())
	ws, err := getWorkloads(names)
	if err != nil {
		return err
	}

	labels := make([]string, len(BufferSizes))
	for j, entries := range BufferSizes {
		if entries == 0 {
			labels[j] = "unlimited"
		} else {
			labels[j] = fmt.Sprintf("%d words", entries)
		}
	}
	cells, fails, err := runVariants(o, ws, len(BufferSizes),
		func(w *workload.Workload, j int) (coherence.Simulator, error) {
			if BufferSizes[j] == 0 {
				return coherence.NewWBWI(w.Procs, g), nil
			}
			return coherence.NewWBWILimited(w.Procs, g, BufferSizes[j])
		})
	if err != nil {
		return err
	}

	fmt.Fprintf(o.Out, "WBWI invalidation-buffer ablation (B=%d bytes, %d words per block)\n\n",
		blockBytes, g.WordsPerBlock())
	tb := report.NewTable("workload", "buffer", "miss%", "vs unlimited")
	for wi, w := range ws {
		base := wi * len(BufferSizes)
		results := cells[base : base+len(BufferSizes)]
		// The unlimited baseline is the last variant; if that cell failed,
		// the relative column has no denominator for this workload.
		unlimited := 0.0
		if fails.Failed(base+len(BufferSizes)-1) == nil {
			unlimited = results[len(results)-1].MissRate()
		}
		for j, res := range results {
			if fails.Failed(base+j) != nil {
				tb.Rowf(w.Name, labels[j], "FAILED")
				continue
			}
			rel := "n/a"
			if unlimited > 0 {
				rel = fmt.Sprintf("%+.0f%%", 100*(res.MissRate()-unlimited)/unlimited)
			}
			tb.Rowf(w.Name, labels[j], pct(res.MissRate()), rel)
		}
	}
	failNote(tb, fails, func(i int) string {
		return fmt.Sprintf("%s %s", ws[i/len(BufferSizes)].Name, labels[i%len(BufferSizes)])
	})
	if o.CSV {
		if err := tb.CSV(o.Out); err != nil {
			return err
		}
		return partialErr(fails)
	}
	tb.Fprint(o.Out)
	return partialErr(fails)
}
