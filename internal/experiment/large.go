package experiment

import (
	"context"
	"fmt"

	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/workload"
)

// largeBlocks is the §7 study's fixed block-size pair.
var largeBlocks = []int{64, 1024}

// Large regenerates the §7 large-data-set study: for LU200, MP3D10000 and
// WATER288 it compares the invalidation schedules at B=64 and B=1024 and
// reports the gap between the on-the-fly and the essential miss rate. The
// paper's findings: at B=64 the OTF rate is within 20% of the essential
// rate, so invalidation scheduling matters little; at B=1024 the false
// sharing components are very large and the protocols stay far from the
// essential rate; MAX is disastrous for LU.
//
// The full run streams on the order of a hundred million references per
// protocol set; with Quick the small data sets are substituted. The
// (workload, block, protocol) grid runs on the sweep engine.
func Large(o Options) error {
	defer driverSpan("large").End()
	defaults := workload.LargeSet()
	if o.Quick {
		defaults = []string{"LU32", "MP3D1000", "WATER16"}
	}
	names := o.workloads(defaults)
	protos := o.Protocols
	if len(protos) == 0 {
		protos = coherence.Protocols
	}

	ws, err := getWorkloads(names)
	if err != nil {
		return err
	}
	geos := make([]mem.Geometry, len(largeBlocks))
	for i, b := range largeBlocks {
		geos[i] = mem.MustGeometry(b)
	}
	for _, name := range protos {
		if _, err := coherence.New(name, workload.DefaultProcs, geos[0]); err != nil {
			return err
		}
	}

	cache := o.traceCache()
	perBlock := len(protos)
	perWorkload := len(largeBlocks) * perBlock
	cells, fails, err := mapCells(o, len(ws)*perWorkload, func(ctx context.Context, i int) (coherence.Result, error) {
		w := ws[i/perWorkload]
		g := geos[i%perWorkload/perBlock]
		proto := protos[i%perBlock]
		defer replaySpan(ctx, w.Name, proto, largeBlocks[i%perWorkload/perBlock]).End()
		r, err := cache.ReaderContext(ctx, w.Name)
		if err != nil {
			return coherence.Result{}, err
		}
		return coherence.RunShardedContext(ctx, proto, r, g, o.shardsPerCell())
	})
	if err != nil {
		return err
	}

	fmt.Fprintln(o.Out, "Section 7: large data sets — schedules at B=64 and B=1024")
	fmt.Fprintln(o.Out)
	tb := report.NewTable("workload", "B", "protocol", "miss%", "essential%", "vs MIN")
	for wi, w := range ws {
		for bi, b := range largeBlocks {
			base := wi*perWorkload + bi*perBlock
			results := cells[base : base+perBlock]
			var minRate float64
			for pi, res := range results {
				if res.Protocol == "MIN" && fails.Failed(base+pi) == nil {
					minRate = res.MissRate()
				}
			}
			for pi, res := range results {
				if fails.Failed(base+pi) != nil {
					tb.Rowf(w.Name, b, protos[pi], "FAILED")
					continue
				}
				gap := "n/a"
				if minRate > 0 {
					gap = fmt.Sprintf("%+.0f%%", 100*(res.MissRate()-minRate)/minRate)
				}
				tb.Rowf(w.Name, b, res.Protocol, pct(res.MissRate()), pct(minRate), gap)
			}
		}
	}
	failNote(tb, fails, func(i int) string {
		return fmt.Sprintf("%s B=%d %s", ws[i/perWorkload].Name, largeBlocks[i%perWorkload/perBlock], protos[i%perBlock])
	})
	if o.CSV {
		if err := tb.CSV(o.Out); err != nil {
			return err
		}
		return partialErr(fails)
	}
	tb.Fprint(o.Out)
	fmt.Fprintln(o.Out)
	fmt.Fprintln(o.Out, "Paper §7: at B=64 every schedule lands within ~20% of the essential rate;")
	fmt.Fprintln(o.Out, "at B=1024 false sharing dominates and MAX is far worse, especially for LU.")
	return partialErr(fails)
}
