package experiment

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/workload"
)

// Large regenerates the §7 large-data-set study: for LU200, MP3D10000 and
// WATER288 it compares the invalidation schedules at B=64 and B=1024 and
// reports the gap between the on-the-fly and the essential miss rate. The
// paper's findings: at B=64 the OTF rate is within 20% of the essential
// rate, so invalidation scheduling matters little; at B=1024 the false
// sharing components are very large and the protocols stay far from the
// essential rate; MAX is disastrous for LU.
//
// The full run streams on the order of a hundred million references per
// protocol set; with Quick the small data sets are substituted.
func Large(o Options) error {
	defaults := workload.LargeSet()
	if o.Quick {
		defaults = []string{"LU32", "MP3D1000", "WATER16"}
	}
	names := o.workloads(defaults)
	protos := o.Protocols
	if len(protos) == 0 {
		protos = coherence.Protocols
	}

	fmt.Fprintln(o.Out, "Section 7: large data sets — schedules at B=64 and B=1024")
	fmt.Fprintln(o.Out)
	tb := report.NewTable("workload", "B", "protocol", "miss%", "essential%", "vs MIN")
	for _, name := range names {
		w, err := workload.Get(name)
		if err != nil {
			return err
		}
		for _, b := range []int{64, 1024} {
			g, err := mem.NewGeometry(b)
			if err != nil {
				return err
			}
			results, err := runProtocols(w, g, protos)
			if err != nil {
				return err
			}
			var minRate float64
			for _, res := range results {
				if res.Protocol == "MIN" {
					minRate = res.MissRate()
				}
			}
			for _, res := range results {
				gap := "n/a"
				if minRate > 0 {
					gap = fmt.Sprintf("%+.0f%%", 100*(res.MissRate()-minRate)/minRate)
				}
				tb.Rowf(name, b, res.Protocol, pct(res.MissRate()), pct(minRate), gap)
			}
		}
	}
	if o.CSV {
		return tb.CSV(o.Out)
	}
	tb.Fprint(o.Out)
	fmt.Fprintln(o.Out)
	fmt.Fprintln(o.Out, "Paper §7: at B=64 every schedule lands within ~20% of the essential rate;")
	fmt.Fprintln(o.Out, "at B=1024 false sharing dominates and MAX is far worse, especially for LU.")
	return nil
}
