package experiment

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/trace"
)

// ClassifyReader classifies one already-open trace stream at one block
// size and renders the per-scheme miss table — the engine behind the CLI's
// classify subcommand and the serving layer's uploaded-trace jobs, so both
// produce byte-identical tables. scheme is ours, eggers, torrellas or all.
// ClassifyReader takes ownership of r: the replay pump closes it, and the
// error paths before the replay close it too.
func ClassifyReader(o Options, r trace.Reader, block int, scheme string) error {
	g, err := mem.NewGeometry(block)
	if err != nil {
		trace.CloseReader(r) //nolint:errcheck // error path cleanup
		return err
	}
	procs := r.NumProcs()
	oc := core.NewClassifier(procs, g)
	ec := core.NewEggers(procs, g)
	tc := core.NewTorrellas(procs, g)
	var consumers []trace.Consumer
	switch scheme {
	case "ours":
		consumers = []trace.Consumer{oc}
	case "eggers":
		consumers = []trace.Consumer{ec}
	case "torrellas":
		consumers = []trace.Consumer{tc}
	case "all":
		consumers = []trace.Consumer{oc, ec, tc}
	default:
		trace.CloseReader(r) //nolint:errcheck // error path cleanup
		return fmt.Errorf("unknown scheme %q", scheme)
	}
	if err := trace.DriveContext(o.ctx(), r, consumers...); err != nil {
		return err
	}

	tb := report.NewTable("scheme", "class", "misses", "rate%")
	row := func(scheme, class string, n, refs uint64) {
		tb.Rowf(scheme, class, n, pct3(core.Rate(n, refs)))
	}
	for _, c := range consumers {
		switch c := c.(type) {
		case *core.Classifier:
			counts, refs := c.Finish(), c.DataRefs()
			row("ours", "PC", counts.PC, refs)
			row("ours", "CTS", counts.CTS, refs)
			row("ours", "CFS", counts.CFS, refs)
			row("ours", "PTS", counts.PTS, refs)
			row("ours", "PFS", counts.PFS, refs)
			row("ours", "essential", counts.Essential(), refs)
			row("ours", "total", counts.Total(), refs)
		case *core.Eggers:
			s, refs := c.Finish(), c.DataRefs()
			row("eggers", "COLD", s.Cold, refs)
			row("eggers", "TSM", s.True, refs)
			row("eggers", "FSM", s.False, refs)
		case *core.Torrellas:
			s, refs := c.Finish(), c.DataRefs()
			row("torrellas", "COLD", s.Cold, refs)
			row("torrellas", "TSM", s.True, refs)
			row("torrellas", "FSM", s.False, refs)
		}
	}
	if o.CSV {
		return tb.CSV(o.Out)
	}
	tb.Fprint(o.Out)
	return nil
}

// pct3 renders a rate with the classify table's three decimals (the
// drivers' pct keeps two).
func pct3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
