package experiment

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/timing"
	"repro/internal/workload"
)

// Penalty models each invalidation schedule's execution time under a blocking
// memory system, turning the miss-rate differences of Fig. 6 into the
// bottom-line metric the paper's introduction motivates: processor blocking
// ("the penalty of the request"). The report shows parallel cycles per
// reference, the slowdown versus the essential schedule (MIN), and the
// fraction of processor time lost to miss stalls.
func Penalty(o Options, blockBytes int, m timing.Model) error {
	g, err := mem.NewGeometry(blockBytes)
	if err != nil {
		return err
	}
	names := o.workloads(workload.SmallSet())
	protos := o.Protocols
	if len(protos) == 0 {
		protos = coherence.Protocols
	}

	fmt.Fprintf(o.Out, "Execution-time model (B=%d bytes, %d-cycle miss penalty)\n\n",
		blockBytes, m.MissPenalty)
	tb := report.NewTable("workload", "protocol", "cycles/ref", "vs MIN", "miss%", "stall share")
	for _, name := range names {
		w, err := workload.Get(name)
		if err != nil {
			return err
		}
		var minCycles uint64
		results := make([]timing.Times, 0, len(protos))
		for _, proto := range protos {
			times, err := timing.Run(proto, w.Reader(), g, m)
			if err != nil {
				return err
			}
			if proto == "MIN" {
				minCycles = times.Cycles
			}
			results = append(results, times)
		}
		for _, times := range results {
			vs := "n/a"
			if minCycles > 0 {
				vs = fmt.Sprintf("%+.1f%%", 100*(float64(times.Cycles)/float64(minCycles)-1))
			}
			stallShare := 0.0
			if times.BusyCycles > 0 {
				stallShare = float64(times.StallCycles) / float64(times.BusyCycles)
			}
			tb.Rowf(name, times.Protocol,
				fmt.Sprintf("%.2f", times.CyclesPerRef()),
				vs,
				pct(times.Result.MissRate()),
				fmt.Sprintf("%.0f%%", 100*stallShare))
		}
	}
	if o.CSV {
		return tb.CSV(o.Out)
	}
	tb.Fprint(o.Out)
	fmt.Fprintln(o.Out)
	fmt.Fprintln(o.Out, "Useless misses translate directly into stall time: the gap between a")
	fmt.Fprintln(o.Out, "schedule and MIN is the execution time the eliminated misses would cost.")
	return nil
}
