package experiment

import (
	"context"
	"fmt"

	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/timing"
	"repro/internal/workload"
)

// Penalty models each invalidation schedule's execution time under a blocking
// memory system, turning the miss-rate differences of Fig. 6 into the
// bottom-line metric the paper's introduction motivates: processor blocking
// ("the penalty of the request"). The report shows parallel cycles per
// reference, the slowdown versus the essential schedule (MIN), and the
// fraction of processor time lost to miss stalls. The (workload, protocol)
// grid runs on the sweep engine.
func Penalty(o Options, blockBytes int, m timing.Model) error {
	defer driverSpan("penalty").End()
	g, err := mem.NewGeometry(blockBytes)
	if err != nil {
		return err
	}
	names := o.workloads(workload.SmallSet())
	protos := o.Protocols
	if len(protos) == 0 {
		protos = coherence.Protocols
	}

	ws, err := getWorkloads(names)
	if err != nil {
		return err
	}
	for _, name := range protos {
		if _, err := coherence.New(name, workload.DefaultProcs, g); err != nil {
			return err
		}
	}

	cache := o.traceCache()
	cells, fails, err := mapCells(o, len(ws)*len(protos), func(ctx context.Context, i int) (timing.Times, error) {
		w, proto := ws[i/len(protos)], protos[i%len(protos)]
		defer replaySpan(ctx, w.Name, proto, blockBytes).End()
		r, err := cache.ReaderContext(ctx, w.Name)
		if err != nil {
			return timing.Times{}, err
		}
		return timing.RunContext(ctx, proto, r, g, m)
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(o.Out, "Execution-time model (B=%d bytes, %d-cycle miss penalty)\n\n",
		blockBytes, m.MissPenalty)
	tb := report.NewTable("workload", "protocol", "cycles/ref", "vs MIN", "miss%", "stall share")
	for wi, w := range ws {
		results := cells[wi*len(protos) : (wi+1)*len(protos)]
		var minCycles uint64
		for pi, proto := range protos {
			if proto == "MIN" && fails.Failed(wi*len(protos)+pi) == nil {
				minCycles = results[pi].Cycles
			}
		}
		for pi, times := range results {
			if fails.Failed(wi*len(protos)+pi) != nil {
				tb.Rowf(w.Name, protos[pi], "FAILED")
				continue
			}
			vs := "n/a"
			if minCycles > 0 {
				vs = fmt.Sprintf("%+.1f%%", 100*(float64(times.Cycles)/float64(minCycles)-1))
			}
			stallShare := 0.0
			if times.BusyCycles > 0 {
				stallShare = float64(times.StallCycles) / float64(times.BusyCycles)
			}
			tb.Rowf(w.Name, times.Protocol,
				fmt.Sprintf("%.2f", times.CyclesPerRef()),
				vs,
				pct(times.Result.MissRate()),
				fmt.Sprintf("%.0f%%", 100*stallShare))
		}
	}
	failNote(tb, fails, func(i int) string {
		return fmt.Sprintf("%s %s", ws[i/len(protos)].Name, protos[i%len(protos)])
	})
	if o.CSV {
		if err := tb.CSV(o.Out); err != nil {
			return err
		}
		return partialErr(fails)
	}
	tb.Fprint(o.Out)
	fmt.Fprintln(o.Out)
	fmt.Fprintln(o.Out, "Useless misses translate directly into stall time: the gap between a")
	fmt.Fprintln(o.Out, "schedule and MIN is the execution time the eliminated misses would cost.")
	return partialErr(fails)
}
