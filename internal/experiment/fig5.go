package experiment

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// fig5Cell is one (workload, block) point of the Fig. 5 grid.
type fig5Cell struct {
	counts core.Counts
	refs   uint64
}

// Fig5 regenerates the paper's Fig. 5: the decomposition of the miss rate
// into pure cold (PC), cold-and-true-sharing (CTS), cold-and-false-sharing
// (CFS), pure true sharing (PTS) and pure false sharing (PFS) misses as a
// function of the block size, for each small-data-set benchmark. The
// (workload, block) grid runs on the sweep engine; each cell replays the
// workload's cached trace through a fresh classifier.
func Fig5(o Options) error {
	defer driverSpan("fig5").End()
	names := o.workloads(workload.SmallSet())
	blocks := o.blocks(Fig5Blocks)

	ws, err := getWorkloads(names)
	if err != nil {
		return err
	}
	geos := make([]mem.Geometry, len(blocks))
	for i, b := range blocks {
		g, err := mem.NewGeometry(b)
		if err != nil {
			return err
		}
		geos[i] = g
	}

	cache := o.traceCache()
	var cells []fig5Cell
	var fails *sweep.Failures
	if o.fused() {
		// One fused sweep cell per workload: a single pass (per shard) over
		// the trace feeds every block size at once.
		groups, gFails, err := mapCells(o, len(ws), func(ctx context.Context, wi int) ([]fig5Cell, error) {
			w := ws[wi]
			defer replaySpan(ctx, w.Name, "fused", 0).End()
			eff := o.shardsPerCell()
			open, err := o.shardSource(ctx, cache, w.Name, core.CoarsestGeometry(geos), eff)
			if err != nil {
				return nil, err
			}
			counts, refs, err := core.FusedShardedClassify(ctx, open, w.Procs, geos, eff)
			if err != nil {
				return nil, err
			}
			out := make([]fig5Cell, len(geos))
			for bi := range geos {
				out[bi] = fig5Cell{counts: counts[bi], refs: refs}
			}
			return out, nil
		})
		if err != nil {
			return err
		}
		cells = flattenGroups(groups, len(blocks))
		fails = expandGroupFailures(gFails, len(blocks))
	} else {
		var err error
		cells, fails, err = mapCells(o, len(ws)*len(blocks), func(ctx context.Context, i int) (fig5Cell, error) {
			w, g := ws[i/len(blocks)], geos[i%len(blocks)]
			defer replaySpan(ctx, w.Name, "ours", blocks[i%len(blocks)]).End()
			r, err := cache.ReaderContext(ctx, w.Name)
			if err != nil {
				return fig5Cell{}, err
			}
			counts, refs, err := core.ShardedClassifyContext(ctx, r, g, o.shardsPerCell())
			if err != nil {
				return fig5Cell{}, err
			}
			return fig5Cell{counts: counts, refs: refs}, nil
		})
		if err != nil {
			return err
		}
	}

	fmt.Fprintln(o.Out, "Figure 5: miss classification vs. block size (% of data references)")
	for wi, w := range ws {
		fmt.Fprintf(o.Out, "\n%s — %s\n", w.Name, w.Description)
		tb := report.NewTable("B(bytes)", "PC", "CTS", "CFS", "PTS", "PFS", "essential", "total")
		chart := &report.BarChart{Unit: "%"}
		wFails := &sweep.Failures{}
		for bi, b := range blocks {
			if ce := fails.Failed(wi*len(blocks) + bi); ce != nil {
				tb.Rowf(b, "FAILED")
				wFails.Cells = append(wFails.Cells, ce)
				continue
			}
			cell := cells[wi*len(blocks)+bi]
			counts, refs := cell.counts, cell.refs
			tb.Rowf(b,
				pct(core.Rate(counts.PC, refs)),
				pct(core.Rate(counts.CTS, refs)),
				pct(core.Rate(counts.CFS, refs)),
				pct(core.Rate(counts.PTS, refs)),
				pct(core.Rate(counts.PFS, refs)),
				pct(core.Rate(counts.Essential(), refs)),
				pct(core.Rate(counts.Total(), refs)),
			)
			chart.Bar(fmt.Sprintf("B=%d", b),
				report.Segment{Label: "COLD", Value: core.Rate(counts.Cold(), refs)},
				report.Segment{Label: "TRUE", Value: core.Rate(counts.PTS, refs)},
				report.Segment{Label: "FALSE", Value: core.Rate(counts.PFS, refs)},
			)
		}
		failNote(tb, wFails, func(i int) string {
			return fmt.Sprintf("%s B=%d", ws[i/len(blocks)].Name, blocks[i%len(blocks)])
		})
		if o.CSV {
			if err := tb.CSV(o.Out); err != nil {
				return err
			}
			continue
		}
		tb.Fprint(o.Out)
		fmt.Fprintln(o.Out)
		chart.Fprint(o.Out)
	}
	return partialErr(fails)
}
