package tracestore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/trace"
)

// randomTrace builds a trace mixing data, sync and phase references with
// clustered addresses (realistic for the delta encoder) plus occasional
// far jumps (worst case for it).
func randomTrace(rng *rand.Rand, procs, n int) *trace.Trace {
	tr := trace.New(procs)
	base := make([]uint64, procs)
	for i := 0; i < n; i++ {
		p := rng.Intn(procs)
		switch rng.Intn(12) {
		case 0:
			tr.Append(trace.A(p, mem.Addr(1000+rng.Intn(4))))
		case 1:
			tr.Append(trace.R(p, mem.Addr(1000+rng.Intn(4))))
		case 2:
			tr.Append(trace.P())
		case 3:
			base[p] = rng.Uint64() >> uint(rng.Intn(40)) // far jump
			fallthrough
		default:
			addr := base[p] + uint64(rng.Intn(256))
			if rng.Intn(2) == 0 {
				tr.Append(trace.S(p, mem.Addr(addr)))
			} else {
				tr.Append(trace.L(p, mem.Addr(addr)))
			}
		}
	}
	return tr
}

// packBytes packs tr into memory and returns the encoded file.
func packBytes(t *testing.T, tr *trace.Trace, opt WriterOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := Pack(&buf, tr.Reader(), opt); err != nil {
		t.Fatalf("Pack: %v", err)
	}
	return buf.Bytes()
}

// reopen parses a packed byte image.
func reopen(t *testing.T, enc []byte) *File {
	t.Helper()
	f, err := NewFile(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	return f
}

// drain collects a Reader's stream, failing the test on any error.
func drain(t *testing.T, r trace.Reader) []trace.Ref {
	t.Helper()
	tr, err := trace.Collect(r)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return tr.Refs
}

func TestRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		procs, n, seg int
	}{
		{1, 1, DefaultSegmentRefs},
		{4, 3000, 64},   // many segments
		{4, 3000, 1},    // 1-ref segments
		{8, 100, 7},     // odd boundary
		{16, 5000, 500}, // multi-proc
		{3, 65, 65},     // exactly one full segment
		{3, 66, 65},     // one full + 1-ref tail
	} {
		t.Run(fmt.Sprintf("p%d_n%d_seg%d", tc.procs, tc.n, tc.seg), func(t *testing.T) {
			tr := randomTrace(rng, tc.procs, tc.n)
			enc := packBytes(t, tr, WriterOptions{SegmentRefs: tc.seg})
			f := reopen(t, enc)
			if f.Procs() != tc.procs {
				t.Errorf("Procs = %d, want %d", f.Procs(), tc.procs)
			}
			if f.NumRefs() != uint64(tc.n) {
				t.Errorf("NumRefs = %d, want %d", f.NumRefs(), tc.n)
			}
			if f.DataRefs() != tr.DataRefs() {
				t.Errorf("DataRefs = %d, want %d", f.DataRefs(), tr.DataRefs())
			}
			got := drain(t, f.Reader())
			if len(got) != len(tr.Refs) {
				t.Fatalf("decoded %d refs, want %d", len(got), len(tr.Refs))
			}
			for i := range got {
				if got[i] != tr.Refs[i] {
					t.Fatalf("ref %d: got %v, want %v", i, got[i], tr.Refs[i])
				}
			}
		})
	}
}

// TestRoundtripSyncAtBoundaries pins the segment-boundary edge cases the
// position-gap side encoding must survive: sync/phase refs as the first
// ref, the last ref, and on both sides of every segment boundary.
func TestRoundtripSyncAtBoundaries(t *testing.T) {
	tr := trace.New(2)
	// Segment size 4: positions 0..3 | 4..7 | 8..11 | 12.
	tr.Append(
		trace.A(0, 1000), trace.L(0, 8), trace.L(1, 16), trace.R(0, 1000), // sync first + last in segment
		trace.P(), trace.A(1, 1004), trace.S(1, 24), trace.L(0, 8), // sync pair straddles boundary
		trace.L(0, 16), trace.L(0, 24), trace.L(1, 8), trace.P(), // phase last in segment
		trace.R(1, 1004), // 1-ref tail segment, side-only
	)
	enc := packBytes(t, tr, WriterOptions{SegmentRefs: 4})
	f := reopen(t, enc)
	if len(f.Segments()) != 4 {
		t.Fatalf("segments = %d, want 4", len(f.Segments()))
	}
	if s := f.Segments()[3]; s.DataRefs != 0 || s.SideRefs != 1 {
		t.Errorf("tail segment counts = %d data %d side, want 0/1", s.DataRefs, s.SideRefs)
	}
	got := drain(t, f.Reader())
	for i := range got {
		if got[i] != tr.Refs[i] {
			t.Fatalf("ref %d: got %v, want %v", i, got[i], tr.Refs[i])
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	enc := packBytes(t, trace.New(4), WriterOptions{})
	f := reopen(t, enc)
	if n := len(f.Segments()); n != 0 {
		t.Fatalf("segments = %d, want 0", n)
	}
	if got := drain(t, f.Reader()); len(got) != 0 {
		t.Fatalf("decoded %d refs from empty trace", len(got))
	}
	if _, err := f.Reader().Next(); err != io.EOF {
		t.Fatalf("Next on empty = %v, want io.EOF", err)
	}
}

// TestDeltaRestartAcrossSegments pins the format property DESIGN.md argues
// for: each segment decodes with no state from its predecessors, so a
// RangeReader starting mid-file sees exactly the segment's refs.
func TestDeltaRestartAcrossSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := randomTrace(rng, 4, 1000)
	f := reopen(t, packBytes(t, tr, WriterOptions{SegmentRefs: 100}))
	// Decode only segment 5 via a cursor; compare to the slice of the
	// original at the TOC-claimed position.
	var skip uint64
	for _, s := range f.Segments()[:5] {
		skip += s.Refs
	}
	refs, err := f.Cursor().Read(5, nil)
	if err != nil {
		t.Fatalf("Read(5): %v", err)
	}
	for i, r := range refs {
		if want := tr.Refs[int(skip)+i]; r != want {
			t.Fatalf("segment 5 ref %d: got %v, want %v", i, r, want)
		}
	}
	// And a RangeReader over segments [5,7) must match the same window.
	var win uint64
	for _, s := range f.Segments()[5:7] {
		win += s.Refs
	}
	got := drain(t, f.RangeReader(5, 7))
	if uint64(len(got)) != win {
		t.Fatalf("range decoded %d refs, want %d", len(got), win)
	}
	for i, r := range got {
		if want := tr.Refs[int(skip)+i]; r != want {
			t.Fatalf("range ref %d: got %v, want %v", i, r, want)
		}
	}
}

func TestSegmentIndexStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := randomTrace(rng, 4, 2000)
	f := reopen(t, packBytes(t, tr, WriterOptions{SegmentRefs: 128}))
	pos := 0
	for si, s := range f.Segments() {
		window := tr.Refs[pos : pos+int(s.Refs)]
		pos += int(s.Refs)
		var data, side uint64
		perProc := make([]uint64, 4)
		var minA, maxA mem.Addr
		for _, r := range window {
			if r.Kind.IsData() {
				if data == 0 || r.Addr < minA {
					minA = r.Addr
				}
				if data == 0 || r.Addr > maxA {
					maxA = r.Addr
				}
				data++
			} else {
				side++
			}
			if r.Kind != trace.Phase {
				perProc[r.Proc]++
			}
		}
		if s.DataRefs != data || s.SideRefs != side {
			t.Fatalf("segment %d: counts %d/%d, want %d/%d", si, s.DataRefs, s.SideRefs, data, side)
		}
		if s.MinAddr != minA || s.MaxAddr != maxA {
			t.Fatalf("segment %d: addr bounds [%d,%d], want [%d,%d]", si, s.MinAddr, s.MaxAddr, minA, maxA)
		}
		for p, n := range perProc {
			if s.PerProc[p] != n {
				t.Fatalf("segment %d: perProc[%d] = %d, want %d", si, p, s.PerProc[p], n)
			}
		}
	}
}

// TestHasBlockShardExact cross-checks the residue-class intersection test
// against brute force over the segment's block range.
func TestHasBlockShardExact(t *testing.T) {
	g := mem.MustGeometry(16)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 2000; trial++ {
		lo := mem.Addr(rng.Intn(4096))
		hi := lo + mem.Addr(rng.Intn(512))
		s := SegmentInfo{DataRefs: 1, MinAddr: lo, MaxAddr: hi}
		shards := 1 + rng.Intn(8)
		shard := rng.Intn(shards)
		want := false
		for b := uint64(g.BlockOf(lo)); b <= uint64(g.BlockOf(hi)); b++ {
			if b%uint64(shards) == uint64(shard) {
				want = true
				break
			}
		}
		if got := s.HasBlockShard(g, shard, shards); got != want {
			t.Fatalf("HasBlockShard([%d,%d], %d/%d) = %v, want %v", lo, hi, shard, shards, got, want)
		}
	}
	empty := SegmentInfo{}
	if empty.HasBlockShard(g, 0, 4) {
		t.Error("segment with no data refs must never match a shard")
	}
}

// TestShardReaderSkipEquivalence proves segment skipping is transparent:
// for every shard, the skipping reader wrapped in the exact filter yields
// the same stream as the exact filter over a full reader.
func TestShardReaderSkipEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := randomTrace(rng, 4, 3000)
	g := mem.MustGeometry(64)
	f := reopen(t, packBytes(t, tr, WriterOptions{SegmentRefs: 32}))
	const shards = 8
	for shard := 0; shard < shards; shard++ {
		key := trace.BlockShard(g, shards)
		want := drain(t, trace.NewShardReader(f.Reader(), shard, key))
		r := f.ShardReaderContext(context.Background(), shard, shards, g)
		got := drain(t, trace.NewShardReader(r, shard, key))
		if len(got) != len(want) {
			t.Fatalf("shard %d: %d refs with skipping, %d without", shard, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shard %d ref %d: got %v, want %v", shard, i, got[i], want[i])
			}
		}
	}
}

// failAfterWriter fails every Write once n bytes have passed.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	if w.n == 0 {
		return len(p), w.err
	}
	return len(p), nil
}

func TestWriterStickyError(t *testing.T) {
	werr := errors.New("disk full")
	w, err := NewWriter(&failAfterWriter{n: 200, err: werr}, 2, WriterOptions{SegmentRefs: 4})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := 0; i < 1000; i++ {
		w.Ref(trace.L(0, mem.Addr(i)))
	}
	if err := w.Close(); !errors.Is(err, werr) {
		t.Fatalf("Close = %v, want %v", err, werr)
	}
	if err := w.Close(); !errors.Is(err, werr) {
		t.Fatalf("second Close = %v, want sticky %v", err, werr)
	}
}

func TestWriterRejectsBadRefs(t *testing.T) {
	for _, bad := range []trace.Ref{
		{Kind: trace.Load, Proc: 7},
		{Kind: trace.Acquire, Proc: 7},
		{Kind: trace.Kind(9)},
	} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 2, WriterOptions{})
		if err != nil {
			t.Fatalf("NewWriter: %v", err)
		}
		w.Ref(bad)
		if err := w.Close(); err == nil {
			t.Errorf("Close accepted invalid ref %+v", bad)
		}
	}
}

func TestPackFile(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := randomTrace(rng, 4, 500)
	path := filepath.Join(t.TempDir(), "t.umts")
	stats, err := PackFile(path, tr.Reader(), WriterOptions{SegmentRefs: 64})
	if err != nil {
		t.Fatalf("PackFile: %v", err)
	}
	if stats.Refs != 500 {
		t.Errorf("stats.Refs = %d, want 500", stats.Refs)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if st.Size() != stats.Bytes {
		t.Errorf("file is %d bytes, stats say %d", st.Size(), stats.Bytes)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if f.TOCDigest() != stats.TOCDigest {
		t.Errorf("TOCDigest mismatch: open %s, pack %s", f.TOCDigest(), stats.TOCDigest)
	}
	got := drain(t, f.Reader())
	if len(got) != 500 {
		t.Fatalf("decoded %d refs", len(got))
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// No stray temp files from the temp+rename dance.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("dir has %d entries, want only the packed file", len(entries))
	}
}

func TestOpenReaderOwnsFile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	path := filepath.Join(t.TempDir(), "t.umts")
	if _, err := PackFile(path, randomTrace(rng, 2, 300).Reader(), WriterOptions{SegmentRefs: 32}); err != nil {
		t.Fatalf("PackFile: %v", err)
	}
	r, err := OpenReader(path)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	f := r.f
	if got := drain(t, r); len(got) != 300 { // Collect closes r
		t.Fatalf("decoded %d refs", len(got))
	}
	// The reader's Close (via Collect) must have closed the OS file.
	if _, err := f.Cursor().Read(0, nil); err == nil {
		t.Error("cursor read succeeded after OpenReader close; file not closed")
	}
	if err := r.Close(); err != nil {
		t.Errorf("repeated Close = %v, want nil", err)
	}
}

// TestTruncation checks every truncated prefix of a valid file fails with
// ErrCorrupt (or an os-level short read wrapped in it) and never panics or
// silently yields a short stream.
func TestTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := randomTrace(rng, 4, 400)
	enc := packBytes(t, tr, WriterOptions{SegmentRefs: 64})
	for n := 0; n < len(enc); n++ {
		f, err := NewFile(bytes.NewReader(enc[:n]), int64(n))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncate %d: error %v does not wrap ErrCorrupt", n, err)
			}
			continue
		}
		// The TOC happened to parse (truncation inside payload bytes the
		// TOC doesn't cover is impossible — offsets are validated — so
		// this means n landed exactly at a valid TOC+trailer image, which
		// cannot happen for a strict prefix).
		_ = f
		t.Fatalf("truncate %d: open succeeded on a strict prefix", n)
	}
}

// TestBitFlips flips bytes across the file and requires one of exactly two
// outcomes: a decode error wrapping ErrCorrupt, or — for bytes outside any
// checksummed region, i.e. the redundant per-segment footers — a replay
// byte-identical to the original. Silent corruption is the failure mode.
func TestBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := randomTrace(rng, 4, 300)
	enc := packBytes(t, tr, WriterOptions{SegmentRefs: 32})
	for trial := 0; trial < 400; trial++ {
		mut := append([]byte(nil), enc...)
		pos := rng.Intn(len(mut))
		mut[pos] ^= 1 << rng.Intn(8)
		f, err := NewFile(bytes.NewReader(mut), int64(len(mut)))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip at %d: open error %v does not wrap ErrCorrupt", pos, err)
			}
			continue
		}
		got, err := trace.Collect(f.Reader())
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip at %d: decode error %v does not wrap ErrCorrupt", pos, err)
			}
			continue
		}
		if len(got.Refs) != len(tr.Refs) {
			t.Fatalf("flip at %d: silent short read (%d refs, want %d)", pos, len(got.Refs), len(tr.Refs))
		}
		for i := range got.Refs {
			if got.Refs[i] != tr.Refs[i] {
				t.Fatalf("flip at %d: silent corruption at ref %d", pos, i)
			}
		}
	}
}

func TestCursorZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tr := randomTrace(rng, 4, 4000)
	f := reopen(t, packBytes(t, tr, WriterOptions{SegmentRefs: 512}))
	cur := f.Cursor()
	buf := make([]trace.Ref, 0, f.MaxSegmentRefs())
	// Warm: size the encoded-payload scratch.
	for i := range f.Segments() {
		var err error
		if buf, err = cur.Read(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i := range f.Segments() {
			var err error
			if buf, err = cur.Read(i, buf); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state cursor pass allocates %.1f times", allocs)
	}
}

// TestReaderEarlyCloseNoLeak is the regression test for the readahead
// teardown: closing a Reader mid-replay must terminate the decode worker
// promptly, not leak it blocked on a channel.
func TestReaderEarlyCloseNoLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomTrace(rng, 4, 5000)
	enc := packBytes(t, tr, WriterOptions{SegmentRefs: 16}) // many segments in flight
	base := runtime.NumGoroutine()
	for trial := 0; trial < 50; trial++ {
		f := reopen(t, enc)
		r := f.Reader()
		buf := make([]trace.Ref, 100)
		if _, err := r.NextBatch(buf); err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
	waitForGoroutines(t, base)
}

// TestReaderImmediateCloseNoLeak closes before any read.
func TestReaderImmediateCloseNoLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	enc := packBytes(t, randomTrace(rng, 2, 1000), WriterOptions{SegmentRefs: 16})
	base := runtime.NumGoroutine()
	for trial := 0; trial < 50; trial++ {
		if err := reopen(t, enc).Reader().Close(); err != nil {
			t.Fatal(err)
		}
	}
	waitForGoroutines(t, base)
}

// TestReaderContextCancel: a canceled context surfaces ctx.Err() from
// NextBatch within one segment and terminates the worker.
func TestReaderContextCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	enc := packBytes(t, randomTrace(rng, 4, 5000), WriterOptions{SegmentRefs: 16})
	base := runtime.NumGoroutine()
	f := reopen(t, enc)
	ctx, cancel := context.WithCancel(context.Background())
	r := f.ReaderContext(ctx)
	buf := make([]trace.Ref, 64)
	if _, err := r.NextBatch(buf); err != nil {
		t.Fatal(err)
	}
	cancel()
	var err error
	for err == nil {
		_, err = r.NextBatch(buf)
	}
	if !errors.Is(err, context.Canceled) && err != io.EOF {
		t.Fatalf("NextBatch after cancel = %v, want context.Canceled (or EOF for a drained schedule)", err)
	}
	// The sticky error must persist.
	if _, err2 := r.NextBatch(buf); err2 != err {
		t.Fatalf("error not sticky: %v then %v", err, err2)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	waitForGoroutines(t, base)
}

// waitForGoroutines polls until the goroutine count drops back to at most
// base, tolerating scheduler lag.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// FuzzTracestoreRoundtrip drives both directions: the fuzz input is
// decoded as (a) a reference program that must survive a pack/open/replay
// roundtrip bit-for-bit, and (b) a raw file image that must either open
// and replay cleanly or fail with ErrCorrupt — never panic.
func FuzzTracestoreRoundtrip(f *testing.F) {
	f.Add([]byte{}, uint8(4))
	f.Add([]byte{0x00, 0x10, 0x41, 0xff, 0x02, 0x03}, uint8(1))
	rng := rand.New(rand.NewSource(14))
	tr := randomTrace(rng, 3, 200)
	var seed bytes.Buffer
	if _, err := Pack(&seed, tr.Reader(), WriterOptions{SegmentRefs: 16}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes(), uint8(8))
	f.Fuzz(func(t *testing.T, data []byte, segHint uint8) {
		// (a) interpret data as a reference program: 3 bytes per ref.
		const procs = 4
		tr := trace.New(procs)
		for i := 0; i+2 < len(data); i += 3 {
			k, p, a := data[i]%6, int(data[i+1])%procs, mem.Addr(data[i+2])<<(data[i]%24)
			switch k {
			case 0:
				tr.Append(trace.L(p, a))
			case 1:
				tr.Append(trace.S(p, a))
			case 2:
				tr.Append(trace.A(p, a))
			case 3:
				tr.Append(trace.R(p, a))
			default:
				tr.Append(trace.P())
			}
		}
		seg := int(segHint)%64 + 1
		var buf bytes.Buffer
		if _, err := Pack(&buf, tr.Reader(), WriterOptions{SegmentRefs: seg}); err != nil {
			t.Fatalf("pack valid trace: %v", err)
		}
		fl, err := NewFile(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatalf("open own pack: %v", err)
		}
		got, err := trace.Collect(fl.Reader())
		if err != nil {
			t.Fatalf("replay own pack: %v", err)
		}
		if len(got.Refs) != len(tr.Refs) {
			t.Fatalf("roundtrip lost refs: %d != %d", len(got.Refs), len(tr.Refs))
		}
		for i := range got.Refs {
			if got.Refs[i] != tr.Refs[i] {
				t.Fatalf("roundtrip ref %d: %v != %v", i, got.Refs[i], tr.Refs[i])
			}
		}

		// (b) interpret data as a hostile file image.
		fl2, err := NewFile(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("hostile open error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		if _, err := trace.Collect(fl2.Reader()); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("hostile replay error %v does not wrap ErrCorrupt", err)
		}
	})
}
