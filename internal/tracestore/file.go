package tracestore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/trace"
)

// File is an opened trace store: the parsed header and TOC plus a handle
// for positioned reads. Segment payloads are fetched on demand through
// Cursors; a File itself holds O(TOC) memory. All reads go through
// io.ReaderAt, so any number of Cursors and Readers can share one File
// concurrently.
type File struct {
	r    io.ReaderAt
	size int64

	procs   int
	segRefs int // writer's target refs per segment
	toc     []SegmentInfo

	refs, dataRefs uint64
	maxSegRefs     uint64
	maxSegPayload  int64
	tocDigest      string

	owned *os.File // set by Open; closed by Close
}

// Open opens the trace store at path. The returned File owns the OS file:
// Close releases it.
func Open(path string) (*File, error) {
	osf, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := osf.Stat()
	if err != nil {
		osf.Close()
		return nil, err
	}
	f, err := NewFile(osf, st.Size())
	if err != nil {
		osf.Close()
		return nil, fmt.Errorf("tracestore: open %s: %w", path, err)
	}
	f.owned = osf
	return f, nil
}

// NewFile parses a trace store from any positioned reader (an os.File, a
// bytes.Reader over an in-memory pack, ...). It reads only the header, the
// trailer and the TOC; Close is a no-op for files opened this way.
func NewFile(r io.ReaderAt, size int64) (*File, error) {
	f := &File{r: r, size: size}
	if err := f.readHeader(); err != nil {
		return nil, err
	}
	if err := f.readTOC(); err != nil {
		return nil, err
	}
	return f, nil
}

// Close releases the underlying OS file when the File came from Open, and
// is a no-op otherwise.
func (f *File) Close() error {
	if f.owned == nil {
		return nil
	}
	err := f.owned.Close()
	f.owned = nil
	return err
}

// Procs returns the trace's processor count.
func (f *File) Procs() int { return f.procs }

// SegmentTargetRefs returns the writer's per-segment reference target.
func (f *File) SegmentTargetRefs() int { return f.segRefs }

// Segments returns the TOC. The slice is shared; callers must not mutate.
func (f *File) Segments() []SegmentInfo { return f.toc }

// NumRefs returns the total reference count.
func (f *File) NumRefs() uint64 { return f.refs }

// DataRefs returns the total load/store reference count.
func (f *File) DataRefs() uint64 { return f.dataRefs }

// Size returns the file length in bytes.
func (f *File) Size() int64 { return f.size }

// TOCDigest returns the hex SHA-256 of the raw TOC bytes — the same digest
// PackStats reports, covering every segment's CRC and index, so a manifest
// comparing digests verifies the whole file's identity without reading the
// payloads.
func (f *File) TOCDigest() string { return f.tocDigest }

func (f *File) readHeader() error {
	// Longest possible header: magic + version + two max uvarints.
	var buf [4 + 1 + 2*binary.MaxVarintLen64]byte
	n, err := f.r.ReadAt(buf[:], 0)
	if err != nil && err != io.EOF {
		return err
	}
	b := buf[:n]
	if len(b) < 6 || [4]byte(b[:4]) != headerMagic {
		return corruptf("bad header magic")
	}
	if b[4] != FormatVersion {
		return corruptf("unsupported format version %d (want %d)", b[4], FormatVersion)
	}
	off := 5
	procs, n2, err := uvarint(b, off)
	if err != nil {
		return err
	}
	off += n2
	segRefs, _, err := uvarint(b, off)
	if err != nil {
		return err
	}
	if procs == 0 || procs > 1<<16 {
		return corruptf("implausible processor count %d", procs)
	}
	if segRefs == 0 || segRefs > maxSegmentRefs {
		return corruptf("implausible segment target %d", segRefs)
	}
	f.procs = int(procs)
	f.segRefs = int(segRefs)
	return nil
}

func (f *File) readTOC() error {
	if f.size < trailerLen {
		return corruptf("file shorter than trailer (%d bytes)", f.size)
	}
	var tr [trailerLen]byte
	if _, err := f.r.ReadAt(tr[:], f.size-trailerLen); err != nil {
		return corruptf("short trailer read: %v", err)
	}
	if [4]byte(tr[12:16]) != trailerMagic {
		return corruptf("bad trailer magic (truncated file?)")
	}
	tocOff := int64(binary.LittleEndian.Uint64(tr[0:8]))
	tocLen := int64(binary.LittleEndian.Uint32(tr[8:12]))
	if tocLen > maxTOCBytes || tocOff < 0 || tocOff+tocLen != f.size-trailerLen {
		return corruptf("trailer TOC bounds [%d,+%d) disagree with file size %d", tocOff, tocLen, f.size)
	}
	if tocLen < 5 { // at least a segment count byte and the CRC
		return corruptf("TOC too short (%d bytes)", tocLen)
	}
	raw := make([]byte, tocLen)
	if _, err := f.r.ReadAt(raw, tocOff); err != nil {
		return corruptf("short TOC read: %v", err)
	}
	body, sum := raw[:tocLen-4], binary.LittleEndian.Uint32(raw[tocLen-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return corruptf("TOC checksum mismatch")
	}
	digest := sha256.Sum256(raw)
	f.tocDigest = hex.EncodeToString(digest[:])

	off := 0
	count, n, err := uvarint(body, off)
	if err != nil {
		return err
	}
	off += n
	if count > uint64(tocLen) { // each entry takes well over one byte
		return corruptf("implausible segment count %d", count)
	}
	toc := make([]SegmentInfo, 0, count)
	prevEnd := int64(0)
	for i := uint64(0); i < count; i++ {
		s, n, err := parseTOCEntry(body, off, f.procs)
		if err != nil {
			return fmt.Errorf("segment %d: %w", i, err)
		}
		off += n
		if err := f.validateSegment(s, prevEnd); err != nil {
			return fmt.Errorf("segment %d: %w", i, err)
		}
		prevEnd = s.Offset + s.PayloadLen
		toc = append(toc, s)
		f.refs += s.Refs
		f.dataRefs += s.DataRefs
		if s.Refs > f.maxSegRefs {
			f.maxSegRefs = s.Refs
		}
		if s.PayloadLen > f.maxSegPayload {
			f.maxSegPayload = s.PayloadLen
		}
	}
	if off != len(body) {
		return corruptf("%d trailing TOC bytes", len(body)-off)
	}
	f.toc = toc
	return nil
}

// parseTOCEntry decodes one TOC entry at off and returns it with the
// number of bytes consumed.
func parseTOCEntry(b []byte, off, procs int) (SegmentInfo, int, error) {
	start := off
	var s SegmentInfo
	fields := []*uint64{new(uint64), new(uint64), &s.Refs, &s.DataRefs, &s.SideRefs}
	for _, dst := range fields {
		v, n, err := uvarint(b, off)
		if err != nil {
			return s, 0, err
		}
		*dst = v
		off += n
	}
	s.Offset = int64(*fields[0])
	s.PayloadLen = int64(*fields[1])
	minA, n, err := uvarint(b, off)
	if err != nil {
		return s, 0, err
	}
	off += n
	maxA, n, err := uvarint(b, off)
	if err != nil {
		return s, 0, err
	}
	off += n
	s.MinAddr, s.MaxAddr = addrOf(minA), addrOf(maxA)
	s.PerProc = make([]uint64, procs)
	for p := 0; p < procs; p++ {
		v, n, err := uvarint(b, off)
		if err != nil {
			return s, 0, err
		}
		s.PerProc[p] = v
		off += n
	}
	if off+4 > len(b) {
		return s, 0, corruptf("truncated TOC entry CRC")
	}
	s.CRC = binary.LittleEndian.Uint32(b[off:])
	off += 4
	return s, off - start, nil
}

// validateSegment sanity-checks one TOC entry against the file geometry
// before any payload bytes are trusted.
func (f *File) validateSegment(s SegmentInfo, prevEnd int64) error {
	if s.Refs == 0 {
		return corruptf("empty segment")
	}
	if s.Refs > maxSegmentRefs {
		return corruptf("segment claims %d refs (max %d)", s.Refs, maxSegmentRefs)
	}
	if s.DataRefs+s.SideRefs != s.Refs {
		return corruptf("ref counts disagree (%d data + %d side != %d)", s.DataRefs, s.SideRefs, s.Refs)
	}
	if s.Offset < prevEnd {
		return corruptf("segment offset %d overlaps previous end %d", s.Offset, prevEnd)
	}
	if s.PayloadLen <= 0 || s.Offset+s.PayloadLen > f.size-trailerLen {
		return corruptf("payload [%d,+%d) outside file", s.Offset, s.PayloadLen)
	}
	if s.PayloadLen > (int64(s.Refs)+8)*maxRecordBytes {
		return corruptf("payload length %d implausible for %d refs", s.PayloadLen, s.Refs)
	}
	if s.MinAddr > s.MaxAddr {
		return corruptf("address bounds inverted [%d,%d]", s.MinAddr, s.MaxAddr)
	}
	return nil
}

// Cursor decodes segments from a File with reusable buffers: after the
// first Read, decoding a segment of the same or smaller size performs zero
// heap allocations. A Cursor is not safe for concurrent use; create one
// per goroutine (they share the File's io.ReaderAt, which is).
type Cursor struct {
	f        *File
	enc      []byte   // raw payload scratch
	lastAddr []uint64 // per-proc delta state, reset every segment
}

// Cursor returns a new decode cursor.
func (f *File) Cursor() *Cursor {
	return &Cursor{f: f, lastAddr: make([]uint64, f.procs)}
}

// Read decodes segment i, appending its references to dst[:0] and
// returning the extended slice. dst is grown only when its capacity is
// insufficient; passing a slice with capacity ≥ MaxSegmentRefs of the file
// makes Read allocation-free. The payload CRC is verified before any
// record is decoded.
func (c *Cursor) Read(i int, dst []trace.Ref) ([]trace.Ref, error) {
	f := c.f
	if i < 0 || i >= len(f.toc) {
		return dst[:0], fmt.Errorf("tracestore: segment index %d out of range [0,%d)", i, len(f.toc))
	}
	s := f.toc[i]
	if int64(cap(c.enc)) < s.PayloadLen {
		c.enc = make([]byte, s.PayloadLen)
	}
	enc := c.enc[:s.PayloadLen]
	if _, err := f.r.ReadAt(enc, s.Offset); err != nil {
		return dst[:0], corruptf("segment %d: short payload read: %v", i, err)
	}
	if got := crc32.ChecksumIEEE(enc); got != s.CRC {
		return dst[:0], corruptf("segment %d: payload checksum mismatch (got %08x want %08x)", i, got, s.CRC)
	}
	out, err := decodeSegment(enc, s, f.procs, c.lastAddr, dst)
	if err != nil {
		return dst[:0], fmt.Errorf("segment %d: %w", i, err)
	}
	return out, nil
}

// decodeSegment decodes one CRC-verified payload into dst[:0]. lastAddr is
// the caller's per-proc scratch (len procs); it is reset here, preserving
// the writer's per-segment delta restart.
func decodeSegment(enc []byte, s SegmentInfo, procs int, lastAddr []uint64, dst []trace.Ref) ([]trace.Ref, error) {
	off := 0
	var hdr [7]uint64 // nRefs nData nSide opsLen procsLen addrLen sideLen
	for j := range hdr {
		v, n, err := uvarint(enc, off)
		if err != nil {
			return nil, err
		}
		hdr[j] = v
		off += n
	}
	nRefs, nData, nSide := hdr[0], hdr[1], hdr[2]
	if nRefs != s.Refs || nData != s.DataRefs || nSide != s.SideRefs {
		return nil, corruptf("payload counts disagree with index")
	}
	colEnd := int64(off) + int64(hdr[3]) + int64(hdr[4]) + int64(hdr[5]) + int64(hdr[6])
	if colEnd != int64(len(enc)) {
		return nil, corruptf("column lengths sum to %d, payload is %d", colEnd, len(enc))
	}
	if wantOps := (nData + 7) / 8; hdr[3] != wantOps {
		return nil, corruptf("ops column is %d bytes, want %d", hdr[3], wantOps)
	}
	ops := enc[off : off+int(hdr[3])]
	procCol := enc[off+int(hdr[3]) : off+int(hdr[3])+int(hdr[4])]
	addrCol := enc[off+int(hdr[3])+int(hdr[4]) : off+int(hdr[3])+int(hdr[4])+int(hdr[5])]
	sideCol := enc[colEnd-int64(hdr[6]):]

	if want := int(nRefs); cap(dst) < want {
		dst = make([]trace.Ref, 0, want)
	}
	dst = dst[:nRefs]
	clear(lastAddr)

	// Walk the side column once to learn the next side position, then
	// interleave: data references fill every position not claimed by a
	// side record.
	var (
		pOff, aOff, sOff int
		dataIdx          uint64
		sidePrev         = -1
		nextSide         = -1
		sideLeft         = nSide
		runProc          uint64 // processor of the current proc-column run
		runLeft          uint64 // data refs left in it
	)
	advanceSide := func() error {
		if sideLeft == 0 {
			nextSide = -1
			return nil
		}
		gap, n, err := uvarint(sideCol, sOff)
		if err != nil {
			return err
		}
		sOff += n
		next := int64(sidePrev) + 1 + int64(gap)
		if next >= int64(nRefs) {
			return corruptf("side record position %d past segment end %d", next, nRefs)
		}
		nextSide = int(next)
		return nil
	}
	if err := advanceSide(); err != nil {
		return nil, err
	}
	for pos := 0; pos < int(nRefs); pos++ {
		if pos == nextSide {
			if sOff >= len(sideCol) {
				return nil, corruptf("truncated side record at position %d", pos)
			}
			kind := trace.Kind(sideCol[sOff])
			sOff++
			r := trace.Ref{Kind: kind}
			switch kind {
			case trace.Acquire, trace.Release:
				p, n, err := uvarint(sideCol, sOff)
				if err != nil {
					return nil, err
				}
				sOff += n
				if p >= uint64(procs) {
					return nil, corruptf("side proc %d out of range [0,%d)", p, procs)
				}
				a, n, err := uvarint(sideCol, sOff)
				if err != nil {
					return nil, err
				}
				sOff += n
				r.Proc = uint16(p)
				r.Addr = addrOf(a)
			case trace.Phase:
				// no operands
			default:
				return nil, corruptf("invalid side record kind %d", kind)
			}
			dst[pos] = r
			sidePrev = pos
			sideLeft--
			if err := advanceSide(); err != nil {
				return nil, err
			}
			continue
		}
		if dataIdx >= nData {
			return nil, corruptf("more data positions than data records")
		}
		if runLeft == 0 {
			p, n, err := uvarint(procCol, pOff)
			if err != nil {
				return nil, err
			}
			pOff += n
			if p >= uint64(procs) {
				return nil, corruptf("data proc %d out of range [0,%d)", p, procs)
			}
			l, n, err := uvarint(procCol, pOff)
			if err != nil {
				return nil, err
			}
			pOff += n
			if l == 0 || l > nData-dataIdx {
				return nil, corruptf("proc run of %d at data record %d, segment has %d", l, dataIdx, nData)
			}
			runProc, runLeft = p, l
		}
		p := runProc
		runLeft--
		d, n, err := uvarint(addrCol, aOff)
		if err != nil {
			return nil, err
		}
		aOff += n
		addr := lastAddr[p] + uint64(unzigzag(d))
		lastAddr[p] = addr
		kind := trace.Load
		if ops[dataIdx>>3]&(1<<(dataIdx&7)) != 0 {
			kind = trace.Store
		}
		dst[pos] = trace.Ref{Addr: addrOf(addr), Proc: uint16(p), Kind: kind}
		dataIdx++
	}
	if sideLeft != 0 {
		return nil, corruptf("%d side records unplaced", sideLeft)
	}
	if dataIdx != nData {
		return nil, corruptf("decoded %d data records, index claims %d", dataIdx, nData)
	}
	if runLeft != 0 {
		return nil, corruptf("proc run overruns the segment by %d", runLeft)
	}
	if pOff != len(procCol) || aOff != len(addrCol) || sOff != len(sideCol) {
		return nil, corruptf("trailing column bytes after decode")
	}
	return dst, nil
}

// MaxSegmentRefs returns the largest per-segment reference count in the
// file — the capacity a reusable decode buffer needs for alloc-free reads.
func (f *File) MaxSegmentRefs() int { return int(f.maxSegRefs) }
