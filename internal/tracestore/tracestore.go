// Package tracestore implements the out-of-core trace artifact: a
// segmented, columnar, delta-compressed on-disk format for reference
// traces, plus a replay path that never materializes the whole trace.
//
// The format breaks the everything-in-RAM assumption of the slice readers
// and the sweep engine's TraceCache: a packed trace of billions of
// references replays with resident memory bounded by O(segment size +
// readahead), because segments decompress independently and decode straight
// into the replay engine's batch representation with zero per-reference
// allocations.
//
// # File layout (format version 1)
//
//	header:   magic "UMTS" | version byte | uvarint numProcs |
//	          uvarint segmentTargetRefs
//	segments: payload | footer, repeated
//	TOC:      uvarint segCount | one entry per segment | crc32(TOC) LE
//	trailer:  uint64 tocOffset LE | uint32 tocLen LE | magic "SMTU"
//
// Each segment payload is columnar: a count header (refs, data refs, side
// refs and the four column byte lengths), then the ops column (one
// load/store bit per data reference), the proc column (run-length encoded
// as uvarint (processor, runLength) pairs — the generators interleave at
// unit granularity, so runs are long and the column shrinks to a fraction
// of a byte per reference), the addr column (zigzag varint delta from the
// issuing processor's previous address in this segment) and the sparse side
// column (synchronization and phase references as position-gap records).
// Delta state resets at every segment boundary, so any segment decodes with
// no context but its own bytes.
//
// The footer after each payload repeats the segment's index — reference
// counts, min/max data address, per-processor counts and the payload CRC —
// making segments self-describing for recovery tools; the file-level TOC
// carries the same entries plus offsets so Open reads only the header and
// the TOC. Every payload is CRC-framed and the TOC is CRC'd as a whole:
// corrupt or truncated files surface errors wrapping ErrCorrupt, never
// misdecoded references.
package tracestore

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/mem"
)

// FormatVersion is the on-disk format version this package writes; Open
// accepts exactly this version.
const FormatVersion = 1

// Magic is the four-byte prefix of every packed trace file; callers can
// sniff it to distinguish packed traces from the v2 stream codec.
const Magic = "UMTS"

var (
	headerMagic  = [4]byte{Magic[0], Magic[1], Magic[2], Magic[3]}
	trailerMagic = [4]byte{'S', 'M', 'T', 'U'}
)

const (
	// trailerLen is the fixed byte length of the file trailer.
	trailerLen = 16

	// DefaultSegmentRefs is the default number of references per segment:
	// large enough that per-segment overheads (footer, TOC entry, delta
	// restart) vanish, small enough that a decoded segment buffer stays
	// around 1 MB.
	DefaultSegmentRefs = 1 << 16

	// maxSegmentRefs bounds a segment's reference count so a corrupt TOC
	// cannot force huge decode buffers.
	maxSegmentRefs = 1 << 22

	// maxRecordBytes is a loose per-reference ceiling on encoded bytes,
	// used to reject implausible payload lengths before allocating.
	maxRecordBytes = 32

	// maxTOCBytes bounds the TOC read at Open.
	maxTOCBytes = 1 << 28
)

// ErrCorrupt reports a trace store whose framing failed validation: a bad
// header or trailer, a checksum mismatch, a truncated segment, or a
// malformed record inside a verified payload. All decode errors wrap it, so
// callers test with errors.Is(err, ErrCorrupt).
var ErrCorrupt = errors.New("tracestore: corrupt trace store")

// corruptf builds an error wrapping ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("tracestore: %s: %w", fmt.Sprintf(format, args...), ErrCorrupt)
}

// SegmentInfo is one segment's index entry: everything the replay scheduler
// needs to decide whether (and where) to read the segment, without touching
// its bytes.
type SegmentInfo struct {
	// Offset is the payload's byte offset from the start of the file.
	Offset int64
	// PayloadLen is the encoded payload length in bytes (footer excluded).
	PayloadLen int64
	// Refs is the total number of references in the segment.
	Refs uint64
	// DataRefs counts the load/store references.
	DataRefs uint64
	// SideRefs counts the synchronization and phase references.
	SideRefs uint64
	// MinAddr and MaxAddr bound the data addresses in the segment
	// (both zero when DataRefs is zero).
	MinAddr, MaxAddr mem.Addr
	// PerProc counts the references issued by each processor (phase
	// markers, which carry no processor, are excluded).
	PerProc []uint64
	// CRC is the IEEE CRC-32 of the payload bytes.
	CRC uint32
}

// HasBlockShard reports whether the segment can contain a data reference
// routed to the given shard by the canonical block partitioner
// (trace.BlockShard: block % shards). The test is exact, not heuristic: a
// residue class s intersects the segment's block range [BlockOf(MinAddr),
// BlockOf(MaxAddr)] iff the range spans at least shards blocks or one of
// its (at most shards) blocks has that residue. Segments with no data
// references never match.
func (s SegmentInfo) HasBlockShard(g mem.Geometry, shard, shards int) bool {
	if s.DataRefs == 0 {
		return false
	}
	if shards <= 1 {
		return true
	}
	lo, hi := uint64(g.BlockOf(s.MinAddr)), uint64(g.BlockOf(s.MaxAddr))
	if hi-lo+1 >= uint64(shards) {
		return true
	}
	for b := lo; b <= hi; b++ {
		if b%uint64(shards) == uint64(shard) {
			return true
		}
	}
	return false
}

// addrOf narrows a decoded uvarint to the memory package's address type.
func addrOf(u uint64) mem.Addr { return mem.Addr(u) }

// zigzag maps a signed delta onto the unsigned varint space so small
// magnitudes of either sign encode in one or two bytes.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarint reads one uvarint from b at off with explicit bounds reporting.
func uvarint(b []byte, off int) (v uint64, n int, err error) {
	v, n = binary.Uvarint(b[off:])
	if n <= 0 {
		return 0, 0, corruptf("malformed varint at byte %d", off)
	}
	return v, n, nil
}
