package tracestore

import (
	"context"
	"io"
	"sync"
	"time"

	"repro/internal/mem"
	"repro/internal/obs/span"
	"repro/internal/trace"
)

// defaultReadahead is how many decoded segments the reader keeps in flight
// beyond the one being replayed: 1 gives the classic double buffer —
// segment N+1 decodes on the worker while segment N replays.
const defaultReadahead = 1

// segResult is one decoded segment (or the error that ended decoding)
// handed from the worker to NextBatch.
type segResult struct {
	refs []trace.Ref
	err  error
}

// Reader replays a packed trace as a trace.BatchReader with resident
// memory bounded by O(segment × (readahead+2)): a decode worker reads and
// decodes segments in order into a fixed pool of recycled buffers while
// NextBatch drains the current one. It implements io.Closer; Close stops
// the worker, waits for it to exit (no leaked decoders on early shard
// close), and propagates the file close error when the Reader owns the
// file.
type Reader struct {
	f        *File
	segs     []int // segment indices to decode, in order
	ownsFile bool

	stop    chan struct{}
	free    chan []trace.Ref
	results chan segResult
	wg      sync.WaitGroup

	cur    []trace.Ref // unread tail of the current decoded segment
	curBuf []trace.Ref // its backing buffer, returned to free when drained
	err    error       // sticky NextBatch error (includes io.EOF)

	closeOnce sync.Once
	closeErr  error
}

// Reader returns a BatchReader over the whole file with default readahead.
func (f *File) Reader() *Reader {
	return f.ReaderContext(context.Background())
}

// ReaderContext is Reader with a cancellation context: a canceled context
// stops the decode worker and surfaces ctx.Err() from NextBatch within one
// segment.
func (f *File) ReaderContext(ctx context.Context) *Reader {
	return f.newReader(ctx, allSegments(len(f.toc)), false)
}

// RangeReader replays only segments [lo, hi) — the primitive for handing
// distinct segment ranges to distinct workers. Bounds are clamped.
func (f *File) RangeReader(lo, hi int) *Reader {
	if lo < 0 {
		lo = 0
	}
	if hi > len(f.toc) {
		hi = len(f.toc)
	}
	segs := make([]int, 0, max(0, hi-lo))
	for i := lo; i < hi; i++ {
		segs = append(segs, i)
	}
	return f.newReader(context.Background(), segs, false)
}

// ShardReaderContext replays only the segments that can matter to one
// shard of the canonical block partition: segments whose address range
// intersects the shard's residue class (SegmentInfo.HasBlockShard) or that
// carry synchronization/phase records, which every shard must observe.
// The stream still contains other shards' data references from kept
// segments; callers wrap it in trace.NewShardReader for exact filtering —
// the skip is transparent because a skipped segment has no references the
// filter would keep.
func (f *File) ShardReaderContext(ctx context.Context, shard, shards int, g mem.Geometry) *Reader {
	segs := make([]int, 0, len(f.toc))
	for i, s := range f.toc {
		if s.SideRefs > 0 || s.HasBlockShard(g, shard, shards) {
			segs = append(segs, i)
		}
	}
	return f.newReader(ctx, segs, false)
}

// OpenReader opens path and returns a Reader over the whole file that owns
// the OS file: its Close closes the file and reports that error.
func OpenReader(path string) (*Reader, error) {
	return OpenReaderContext(context.Background(), path)
}

// OpenReaderContext is OpenReader under a cancellation context.
func OpenReaderContext(ctx context.Context, path string) (*Reader, error) {
	f, err := Open(path)
	if err != nil {
		return nil, err
	}
	r := f.ReaderContext(ctx)
	r.ownsFile = true
	return r, nil
}

func allSegments(n int) []int {
	segs := make([]int, n)
	for i := range segs {
		segs[i] = i
	}
	return segs
}

func (f *File) newReader(ctx context.Context, segs []int, ownsFile bool) *Reader {
	bufs := defaultReadahead + 1
	r := &Reader{
		f:        f,
		segs:     segs,
		ownsFile: ownsFile,
		stop:     make(chan struct{}),
		free:     make(chan []trace.Ref, bufs),
		// One slot per buffer plus one for a buffer-less error result, so
		// worker sends can never block and Close never deadlocks.
		results: make(chan segResult, bufs+1),
	}
	for i := 0; i < bufs; i++ {
		r.free <- nil
	}
	r.wg.Add(1)
	go r.run(ctx)
	return r
}

// run is the decode worker: it recycles buffers from free, decodes the
// next scheduled segment into one, and ships it to NextBatch. Every
// blocking point also watches stop and ctx so an early Close or a
// canceled context terminates the goroutine promptly.
func (r *Reader) run(ctx context.Context) {
	defer r.wg.Done()
	defer close(r.results)
	// The worker is its own goroutine, so it owns its own span track
	// (tracks are single-writer; sharing the replayer's would race). Each
	// segment's pread+decode+CRC becomes one tracestore.segment_io span
	// whose depth attribute samples the results-queue occupancy at ship
	// time — the live readahead margin.
	tr := span.Acquire("tracestore-readahead")
	defer span.Release(tr)
	cur := r.f.Cursor()
	for _, i := range r.segs {
		var buf []trace.Ref
		select {
		case buf = <-r.free:
		case <-r.stop:
			return
		case <-ctx.Done():
			r.results <- segResult{err: ctx.Err()}
			return
		}
		if err := ctx.Err(); err != nil {
			r.results <- segResult{err: err}
			return
		}
		var sp span.Span
		if tr != nil {
			sp = tr.Begin(span.OpSegmentIO, span.Fields{Segment: int32(i), Depth: int32(len(r.results))})
		}
		t0 := time.Now()
		refs, err := cur.Read(i, buf)
		mStoreSegmentNs.Add(uint64(time.Since(t0)))
		mStoreSegments.Inc()
		mStoreOccupancy.Observe(uint64(len(r.results)))
		sp.End()
		if err != nil {
			r.results <- segResult{err: err}
			return
		}
		select {
		case r.results <- segResult{refs: refs}:
		case <-r.stop:
			return
		}
	}
}

// NumProcs implements trace.Reader.
func (r *Reader) NumProcs() int { return r.f.procs }

// Next implements trace.Reader one reference at a time; replay loops use
// NextBatch.
func (r *Reader) Next() (trace.Ref, error) {
	var one [1]trace.Ref
	n, err := r.NextBatch(one[:])
	if n == 1 {
		return one[0], err
	}
	return trace.Ref{}, err
}

// NextBatch implements trace.BatchReader: it copies from the current
// decoded segment, fetching the next one from the worker when the current
// drains. Errors (including io.EOF at end of schedule) are sticky.
func (r *Reader) NextBatch(buf []trace.Ref) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	for {
		if len(r.cur) > 0 {
			n := copy(buf, r.cur)
			r.cur = r.cur[n:]
			if len(r.cur) == 0 {
				// Hand the drained buffer back for the worker to refill.
				// Capacity math guarantees room: there are exactly as many
				// buffers as free slots.
				r.free <- r.curBuf[:0]
				r.cur, r.curBuf = nil, nil
			}
			return n, nil
		}
		res, ok := <-r.results
		if !ok {
			r.err = io.EOF
			return 0, io.EOF
		}
		if res.err != nil {
			r.err = res.err
			return 0, r.err
		}
		r.cur, r.curBuf = res.refs, res.refs
	}
}

// Close stops the decode worker, waits for it to exit, and — when the
// Reader owns the file (OpenReader) — closes the file and returns its
// error. Safe to call at any point of the replay, any number of times.
func (r *Reader) Close() error {
	r.closeOnce.Do(func() {
		close(r.stop)
		r.wg.Wait()
		if r.ownsFile {
			r.closeErr = r.f.Close()
		}
	})
	return r.closeErr
}
