package tracestore

import (
	"repro/internal/obs"
)

// Metric handles for the readahead decode worker, resolved once at package
// init. Segment I/O is per-segment (tens of thousands of references), so
// the three observations per segment are far off the replay hot path. All
// three are timing-class: how many segment reads actually happen depends
// on the sweep cache's singleflight coalescing (scheduling-dependent), and
// wall time and queue occupancy obviously do too.
var (
	mStoreSegments  = obs.Default.TimingCounter(obs.NameStoreSegments)
	mStoreSegmentNs = obs.Default.TimingCounter(obs.NameStoreSegmentNs)
	mStoreOccupancy = obs.Default.TimingHistogram(obs.NameStoreOccupancy, occupancyBounds)
)

// occupancyBounds covers the results queue's occupancy sampled as each
// decoded segment ships: 0..readahead+1 slots exist; persistent zeros mean
// the replayer outruns the decoder (I/O bound), persistent highs the
// reverse.
var occupancyBounds = []uint64{0, 1, 2, 4}
