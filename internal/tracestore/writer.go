package tracestore

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/mem"
	"repro/internal/trace"
)

// WriterOptions tunes a pack. The zero value selects the defaults.
type WriterOptions struct {
	// SegmentRefs is the number of references per segment (the last
	// segment may be shorter). 0 selects DefaultSegmentRefs; values are
	// clamped to [1, maxSegmentRefs].
	SegmentRefs int
}

func (o WriterOptions) segmentRefs() int {
	n := o.SegmentRefs
	if n <= 0 {
		n = DefaultSegmentRefs
	}
	if n > maxSegmentRefs {
		n = maxSegmentRefs
	}
	return n
}

// PackStats summarizes a finished pack.
type PackStats struct {
	// Refs, DataRefs and SideRefs count the packed references.
	Refs, DataRefs, SideRefs uint64
	// Segments is the number of segments written.
	Segments int
	// Bytes is the total file length.
	Bytes int64
	// TOCDigest is the hex SHA-256 of the TOC bytes: a content hash over
	// every segment's CRC and index, cheap to recompute at Open, used by
	// the regen manifest for resumable packing.
	TOCDigest string
}

// Writer encodes a reference stream into the on-disk format. It implements
// trace.Consumer and trace.BatchConsumer with a sticky error (checked via
// Err and returned by Close), so a Writer can sit directly at the end of a
// replay pump: trace.Drive(r, w) then w.Close().
//
// Close finalizes the stream (last segment, TOC, trailer) but does not
// close the underlying writer.
type Writer struct {
	w     *bufio.Writer
	off   int64
	procs int
	seg   int // target refs per segment

	// Current-segment accumulators. The column slices are reused across
	// segments; lastAddr is the per-processor delta predecessor, reset at
	// every segment boundary so segments decode independently.
	ops              []byte
	procCol, addrCol []byte
	sideCol          []byte
	nRefs, nData     int
	nSide            int
	lastAddr         []uint64
	lastSidePos      int
	minAddr, maxAddr uint64
	perProc          []uint64
	runProc          uint64 // processor of the open proc-column run
	runLen           uint64 // its length so far (0 = no open run)

	toc    []SegmentInfo
	stats  PackStats
	err    error
	closed bool
}

// NewWriter writes the file header for a trace of procs processors and
// returns a Writer.
func NewWriter(w io.Writer, procs int, opt WriterOptions) (*Writer, error) {
	if procs <= 0 || procs > 1<<16 {
		return nil, fmt.Errorf("tracestore: implausible processor count %d", procs)
	}
	tw := &Writer{
		w:           bufio.NewWriterSize(w, 1<<16),
		procs:       procs,
		seg:         opt.segmentRefs(),
		lastAddr:    make([]uint64, procs),
		perProc:     make([]uint64, procs),
		lastSidePos: -1,
	}
	var hdr []byte
	hdr = append(hdr, headerMagic[:]...)
	hdr = append(hdr, FormatVersion)
	hdr = binary.AppendUvarint(hdr, uint64(procs))
	hdr = binary.AppendUvarint(hdr, uint64(tw.seg))
	if _, err := tw.w.Write(hdr); err != nil {
		return nil, err
	}
	tw.off = int64(len(hdr))
	return tw, nil
}

// Err returns the sticky error, if any. Once set, further references are
// dropped and Close reports it.
func (w *Writer) Err() error { return w.err }

// fail records the first error.
func (w *Writer) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Ref implements trace.Consumer: it appends one reference to the current
// segment, flushing the segment when it reaches the target size.
func (w *Writer) Ref(r trace.Ref) {
	if w.err != nil {
		return
	}
	if w.closed {
		w.fail(fmt.Errorf("tracestore: write after Close"))
		return
	}
	switch {
	case r.Kind == trace.Load || r.Kind == trace.Store:
		if int(r.Proc) >= w.procs {
			w.fail(fmt.Errorf("tracestore: proc %d out of range [0,%d)", r.Proc, w.procs))
			return
		}
		if w.nData%8 == 0 {
			w.ops = append(w.ops, 0)
		}
		if r.Kind == trace.Store {
			w.ops[w.nData>>3] |= 1 << (w.nData & 7)
		}
		if w.runLen > 0 && uint64(r.Proc) == w.runProc {
			w.runLen++
		} else {
			w.flushProcRun()
			w.runProc, w.runLen = uint64(r.Proc), 1
		}
		addr := uint64(r.Addr)
		w.addrCol = binary.AppendUvarint(w.addrCol, zigzag(int64(addr-w.lastAddr[r.Proc])))
		w.lastAddr[r.Proc] = addr
		if w.nData == 0 || addr < w.minAddr {
			w.minAddr = addr
		}
		if w.nData == 0 || addr > w.maxAddr {
			w.maxAddr = addr
		}
		w.perProc[r.Proc]++
		w.nData++
	case r.Kind == trace.Acquire || r.Kind == trace.Release || r.Kind == trace.Phase:
		if r.Kind != trace.Phase {
			if int(r.Proc) >= w.procs {
				w.fail(fmt.Errorf("tracestore: proc %d out of range [0,%d)", r.Proc, w.procs))
				return
			}
			w.perProc[r.Proc]++
		}
		// Side records carry the gap to the previous side reference's
		// position, so dense sync runs cost one byte of position each.
		w.sideCol = binary.AppendUvarint(w.sideCol, uint64(w.nRefs-w.lastSidePos-1))
		w.lastSidePos = w.nRefs
		w.sideCol = append(w.sideCol, byte(r.Kind))
		if r.Kind != trace.Phase {
			w.sideCol = binary.AppendUvarint(w.sideCol, uint64(r.Proc))
			w.sideCol = binary.AppendUvarint(w.sideCol, uint64(r.Addr))
		}
		w.nSide++
	default:
		w.fail(fmt.Errorf("tracestore: invalid reference kind %d", r.Kind))
		return
	}
	w.nRefs++
	if w.nRefs >= w.seg {
		w.flushSegment()
	}
}

// RefBatch implements trace.BatchConsumer.
func (w *Writer) RefBatch(refs []trace.Ref) {
	for _, r := range refs {
		w.Ref(r)
	}
}

// flushProcRun appends the open proc-column run as a (proc, length) pair.
func (w *Writer) flushProcRun() {
	if w.runLen == 0 {
		return
	}
	w.procCol = binary.AppendUvarint(w.procCol, w.runProc)
	w.procCol = binary.AppendUvarint(w.procCol, w.runLen)
	w.runLen = 0
}

// flushSegment encodes and writes the pending segment (payload then
// footer), records its TOC entry, and resets the accumulators.
func (w *Writer) flushSegment() {
	if w.err != nil || w.nRefs == 0 {
		return
	}
	w.flushProcRun()
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(w.nRefs))
	hdr = binary.AppendUvarint(hdr, uint64(w.nData))
	hdr = binary.AppendUvarint(hdr, uint64(w.nSide))
	hdr = binary.AppendUvarint(hdr, uint64(len(w.ops)))
	hdr = binary.AppendUvarint(hdr, uint64(len(w.procCol)))
	hdr = binary.AppendUvarint(hdr, uint64(len(w.addrCol)))
	hdr = binary.AppendUvarint(hdr, uint64(len(w.sideCol)))

	crc := crc32.ChecksumIEEE(hdr)
	crc = crc32.Update(crc, crc32.IEEETable, w.ops)
	crc = crc32.Update(crc, crc32.IEEETable, w.procCol)
	crc = crc32.Update(crc, crc32.IEEETable, w.addrCol)
	crc = crc32.Update(crc, crc32.IEEETable, w.sideCol)

	payloadLen := int64(len(hdr) + len(w.ops) + len(w.procCol) + len(w.addrCol) + len(w.sideCol))
	info := SegmentInfo{
		Offset:     w.off,
		PayloadLen: payloadLen,
		Refs:       uint64(w.nRefs),
		DataRefs:   uint64(w.nData),
		SideRefs:   uint64(w.nSide),
		MinAddr:    mem.Addr(w.minAddr),
		MaxAddr:    mem.Addr(w.maxAddr),
		PerProc:    append([]uint64(nil), w.perProc...),
		CRC:        crc,
	}

	for _, col := range [][]byte{hdr, w.ops, w.procCol, w.addrCol, w.sideCol} {
		if _, err := w.w.Write(col); err != nil {
			w.fail(err)
			return
		}
	}
	w.off += payloadLen

	footer := appendSegmentIndex(nil, info)
	if _, err := w.w.Write(footer); err != nil {
		w.fail(err)
		return
	}
	w.off += int64(len(footer))

	w.toc = append(w.toc, info)
	w.stats.Refs += info.Refs
	w.stats.DataRefs += info.DataRefs
	w.stats.SideRefs += info.SideRefs

	w.ops = w.ops[:0]
	w.procCol = w.procCol[:0]
	w.addrCol = w.addrCol[:0]
	w.sideCol = w.sideCol[:0]
	w.nRefs, w.nData, w.nSide = 0, 0, 0
	w.lastSidePos = -1
	w.minAddr, w.maxAddr = 0, 0
	clear(w.lastAddr)
	clear(w.perProc)
}

// appendSegmentIndex encodes a segment's index fields (the per-segment
// footer; the TOC entry is the same encoding prefixed with the offset and
// payload length).
func appendSegmentIndex(b []byte, s SegmentInfo) []byte {
	b = binary.AppendUvarint(b, s.Refs)
	b = binary.AppendUvarint(b, s.DataRefs)
	b = binary.AppendUvarint(b, s.SideRefs)
	b = binary.AppendUvarint(b, uint64(s.MinAddr))
	b = binary.AppendUvarint(b, uint64(s.MaxAddr))
	for _, n := range s.PerProc {
		b = binary.AppendUvarint(b, n)
	}
	return binary.LittleEndian.AppendUint32(b, s.CRC)
}

// Close flushes the last segment, writes the TOC and the trailer, and
// reports the sticky error if the stream failed earlier. It is idempotent
// and does not close the underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.flushSegment()
	if w.err != nil {
		w.closed = true
		return w.err
	}
	w.closed = true

	tocOff := w.off
	var toc []byte
	toc = binary.AppendUvarint(toc, uint64(len(w.toc)))
	for _, s := range w.toc {
		toc = binary.AppendUvarint(toc, uint64(s.Offset))
		toc = binary.AppendUvarint(toc, uint64(s.PayloadLen))
		toc = appendSegmentIndex(toc, s)
	}
	toc = binary.LittleEndian.AppendUint32(toc, crc32.ChecksumIEEE(toc))
	if _, err := w.w.Write(toc); err != nil {
		w.fail(err)
		return w.err
	}
	w.off += int64(len(toc))

	var trailer []byte
	trailer = binary.LittleEndian.AppendUint64(trailer, uint64(tocOff))
	trailer = binary.LittleEndian.AppendUint32(trailer, uint32(len(toc)))
	trailer = append(trailer, trailerMagic[:]...)
	if _, err := w.w.Write(trailer); err != nil {
		w.fail(err)
		return w.err
	}
	w.off += int64(len(trailer))
	if err := w.w.Flush(); err != nil {
		w.fail(err)
		return w.err
	}

	sum := sha256.Sum256(toc)
	w.stats.Segments = len(w.toc)
	w.stats.Bytes = w.off
	w.stats.TOCDigest = hex.EncodeToString(sum[:])
	return nil
}

// Stats returns the pack summary; complete only after a successful Close.
func (w *Writer) Stats() PackStats { return w.stats }

// Pack drains r into dst in the on-disk format and closes r, reporting the
// reader's close error if the drain itself succeeded (the same contract as
// trace.Drive).
func Pack(dst io.Writer, r trace.Reader, opt WriterOptions) (PackStats, error) {
	w, err := NewWriter(dst, r.NumProcs(), opt)
	if err != nil {
		trace.CloseReader(r) //nolint:errcheck // error-path cleanup
		return PackStats{}, err
	}
	if err := trace.Drive(r, w); err != nil {
		return PackStats{}, err
	}
	if err := w.Close(); err != nil {
		return PackStats{}, err
	}
	return w.Stats(), nil
}

// PackFile packs r into path via a temp file and rename, so an interrupted
// pack never leaves a truncated file that looks complete.
func PackFile(path string, r trace.Reader, opt WriterOptions) (PackStats, error) {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-")
	if err != nil {
		trace.CloseReader(r) //nolint:errcheck // error-path cleanup
		return PackStats{}, err
	}
	stats, err := Pack(tmp, r, opt)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return PackStats{}, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return PackStats{}, err
	}
	return stats, nil
}
