package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// defaultProgressPeriod throttles the live progress line.
const defaultProgressPeriod = 250 * time.Millisecond

// Progress renders a throttled single-line live status (cells done/total,
// refs replayed, refs/s, ETA) to its writer from a background ticker. It
// reads only atomic counters, so it never perturbs the replay, and it owns
// its writer exclusively — the caller points it at stderr precisely so the
// experiment's Options.Out stream is never touched.
type Progress struct {
	w      io.Writer
	reg    *Registry
	period time.Duration
	start  time.Time

	baseRefs, baseDone, basePlanned uint64

	stop chan struct{}
	wg   sync.WaitGroup
	mu   sync.Mutex // serializes Stop
	done bool

	lastLen int
}

// StartProgress begins rendering to w every period (0 selects the default
// throttle) from reg's counters (nil means Default). Call Stop to render
// the final state and release the goroutine.
func StartProgress(w io.Writer, reg *Registry, period time.Duration) *Progress {
	if reg == nil {
		reg = Default
	}
	if period <= 0 {
		period = defaultProgressPeriod
	}
	p := &Progress{
		w:           w,
		reg:         reg,
		period:      period,
		start:       time.Now(),
		baseRefs:    reg.Counter(NameDriveRefs).Value(),
		baseDone:    reg.Counter(NameCellsFinished).Value(),
		basePlanned: reg.Counter(NameCellsPlanned).Value(),
		stop:        make(chan struct{}),
	}
	p.wg.Add(1)
	go p.loop()
	return p
}

// loop is the render goroutine; all writes to p.w happen here, so the
// writer needs no locking of its own.
func (p *Progress) loop() {
	defer p.wg.Done()
	tick := time.NewTicker(p.period)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			p.render(false)
		case <-p.stop:
			p.render(true)
			return
		}
	}
}

// Stop renders the final line, terminates it with a newline, and waits for
// the render goroutine to exit. It is idempotent.
func (p *Progress) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return
	}
	p.done = true
	close(p.stop)
	p.wg.Wait()
}

// render writes one status line. Carriage-return rewriting keeps it on a
// single terminal row; the final render appends a newline instead.
func (p *Progress) render(final bool) {
	elapsed := time.Since(p.start)
	refs := p.reg.Counter(NameDriveRefs).Value() - p.baseRefs
	done := p.reg.Counter(NameCellsFinished).Value() - p.baseDone
	planned := p.reg.Counter(NameCellsPlanned).Value() - p.basePlanned

	var rate float64
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(refs) / s
	}
	line := fmt.Sprintf("cells %d/%d  refs %s  %s refs/s  elapsed %s",
		done, planned, human(refs), human(uint64(rate)), elapsed.Truncate(time.Millisecond))
	if !final && done > 0 && planned > done {
		eta := time.Duration(float64(elapsed) / float64(done) * float64(planned-done))
		line += fmt.Sprintf("  ETA %s", eta.Truncate(time.Second))
	}

	// Pad to overwrite any longer previous line.
	pad := p.lastLen - len(line)
	p.lastLen = len(line)
	if pad > 0 {
		line += strings.Repeat(" ", pad)
	}
	if final {
		fmt.Fprintf(p.w, "\r%s\n", line)
	} else {
		fmt.Fprintf(p.w, "\r%s", line)
	}
}

// human formats a count with a metric suffix (1.2k, 3.4M, 5.6G).
func human(n uint64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
