// Package obs is the engine's observability layer: a process-wide metrics
// registry of atomic counters, gauges and fixed-bucket histograms, a
// deterministic JSON run report, a throttled live progress renderer, and an
// opt-in HTTP introspection endpoint (expvar + pprof).
//
// The design target is the replay hot path: instrumentation must cost at
// most a few atomic adds per *batch* of references (never per reference)
// and zero allocations in steady state, so the 0-allocs/pass guarantees of
// the dense replay engine survive. Metric handles are resolved once, at
// package init of the instrumented package; the hot path touches only the
// pre-resolved handle.
//
// Metrics are split into two classes at registration time:
//
//   - deterministic: pure work counts (references replayed, batches, cells,
//     cache hits/misses). Their totals depend only on the inputs and flags,
//     never on scheduling, so the deterministic section of a run report is
//     byte-identical across -j settings and can be diffed in CI.
//   - timing: wall-clock durations, rates and concurrency-dependent counts
//     (blocked-send time, singleflight coalescing). They live in the
//     report's "timings" section, which golden comparisons exclude.
package obs

import (
	"math"
	"sync/atomic"
)

// enabled gates every metric mutation. Disabling reduces the hot-path cost
// to one atomic load + branch per operation; the registry keeps its current
// values. It exists so the overhead benchmark can compare the instrumented
// engine against a registry-disabled run in one process.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns metric collection on or off process-wide.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric collection is active.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter discards all operations.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 gauge for rates and instantaneous values
// (refs/s, utilization). Gauges are always reported in the timings section:
// a measured rate is never deterministic. A nil Gauge discards operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram of uint64 observations. Bucket i
// counts observations v <= Bounds[i]; one implicit overflow bucket counts
// the rest. Observe is lock-free: a short linear scan over the bounds plus
// three atomic adds, and never allocates. A nil Histogram discards
// operations.
type Histogram struct {
	bounds  []uint64
	buckets []atomic.Uint64 // len(bounds)+1; last is overflow
	count   atomic.Uint64
	sum     atomic.Uint64
}

// newHistogram returns a histogram over the given ascending upper bounds.
func newHistogram(bounds []uint64) *Histogram {
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v uint64) {
	if h == nil || !enabled.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// snapshot copies the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is the serialized form of a Histogram. Counts has one
// more entry than Bounds: the final overflow bucket.
type HistogramSnapshot struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
}

// Quantile estimates the q-quantile of the recorded observations by linear
// interpolation within the containing bucket (the Prometheus convention).
// q is clamped to [0, 1]; an empty snapshot returns 0. A quantile landing
// in the overflow bucket returns the highest finite bound — the histogram
// has no upper edge to interpolate toward — and a histogram with no bounds
// at all can only report 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		prev := float64(cum)
		cum += c
		if c == 0 || float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) { // overflow bucket
			if len(s.Bounds) == 0 {
				return 0
			}
			return float64(s.Bounds[len(s.Bounds)-1])
		}
		lo := 0.0
		if i > 0 {
			lo = float64(s.Bounds[i-1])
		}
		hi := float64(s.Bounds[i])
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	// Bucket counts summed short of Count (a torn concurrent snapshot):
	// report the highest finite bound rather than inventing a value.
	if len(s.Bounds) == 0 {
		return 0
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}

// Sub returns the bucket-wise difference s - prev, for delta reports.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count - prev.Count,
		Sum:    s.Sum - prev.Sum,
	}
	for i := range s.Counts {
		c := s.Counts[i]
		if i < len(prev.Counts) {
			c -= prev.Counts[i]
		}
		out.Counts[i] = c
	}
	return out
}

// Canonical metric names shared between the instrumented packages, the
// progress renderer and the run timer. Keeping them here (rather than as
// string literals at each site) makes the cross-package wiring greppable.
const (
	// trace.Drive / trace.Collect (package trace).
	NameDriveRefs      = "trace.drive.refs"
	NameDriveBatches   = "trace.drive.batches"
	NameDriveBatchSize = "trace.drive.batch_size"
	NameDriveCloseErrs = "trace.drive.close_errors"
	NameCollectRefs    = "trace.collect.refs"

	// trace.Demux (package trace). The queue-depth histogram samples each
	// shard channel's occupancy after every batch send: a timing metric,
	// since occupancy depends on scheduling.
	NameDemuxRefsIn     = "trace.demux.refs_in"
	NameDemuxDataRouted = "trace.demux.data_routed"
	NameDemuxBroadcasts = "trace.demux.sync_broadcasts"
	NameDemuxShardRefs  = "trace.demux.shard_refs"
	NameDemuxBlockedNs  = "trace.demux.blocked_send_ns"
	NameDemuxQueueDepth = "trace.demux.queue_depth"

	// tracestore readahead Reader (package tracestore): segments decoded,
	// per-segment read+decode wall time, and the results-queue occupancy
	// sampled as each segment ships (0 = the replayer is waiting on the
	// decoder; full = the decoder is ahead). All timing-class: the segment
	// count depends on the sweep cache's singleflight coalescing.
	NameStoreSegments  = "tracestore.segments_read"
	NameStoreSegmentNs = "tracestore.segment_read_ns"
	NameStoreOccupancy = "tracestore.readahead.occupancy"

	// sweep.Run and sweep.TraceCache (package sweep).
	NameCellsPlanned   = "sweep.cells.planned"
	NameCellsStarted   = "sweep.cells.started"
	NameCellsFinished  = "sweep.cells.finished"
	NameCellNs         = "sweep.cell_ns"
	NameSweepBusyNs    = "sweep.busy_ns"
	NameCacheHits      = "sweep.cache.hits"
	NameCacheMisses    = "sweep.cache.misses"
	NameCacheStreamed  = "sweep.cache.streamed"
	NameCacheEvictions = "sweep.cache.evictions"
	NameCacheCoalesced = "sweep.cache.coalesced"

	// Classifier and schedule runs (packages core, coherence, finite,
	// timing).
	NameOursRefs      = "core.ours.refs"
	NameEggersRefs    = "core.eggers.refs"
	NameTorrellasRefs = "core.torrellas.refs"
	NameCoherenceRefs = "coherence.refs"
	NameCoherenceMiss = "coherence.misses"
	NameFiniteRefs    = "finite.refs"
	NameTimingRefs    = "timing.refs"

	// Run-level gauges set by RunTimer.
	NameRunWallSeconds = "run.wall_seconds"
	NameRunRefsPerSec  = "run.refs_per_sec"
	NameRunUtilization = "run.utilization"

	// The serving layer (package serve). Admission counters are
	// deterministic in the request stream only, never across concurrent
	// clients, so everything here is timing-class. The queue-depth and
	// in-flight gauges sample the admitted-but-unfinished population;
	// the latency histogram buckets job wall time in nanoseconds;
	// breaker_open counts closed→open transitions and breaker_state
	// gauges the number of currently-open breakers.
	NameServeAdmitted     = "serve.jobs.admitted"
	NameServeRejected     = "serve.jobs.rejected"
	NameServeCompleted    = "serve.jobs.completed"
	NameServeFailed       = "serve.jobs.failed"
	NameServeRetries      = "serve.jobs.retries"
	NameServePanics       = "serve.jobs.panics"
	NameServeQueueDepth   = "serve.queue.depth"
	NameServeInflight     = "serve.jobs.inflight"
	NameServeJobLatencyNs = "serve.job_latency_ns"
	NameServeBreakerOpen  = "serve.breaker.opened"
	NameServeBreakerState = "serve.breaker.open_now"
	NameServeDrainForced  = "serve.drain.forced_cancels"
)
