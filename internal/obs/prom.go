package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders a registry in the Prometheus text exposition format
// (version 0.0.4), the payload behind the debug server's /metrics
// endpoint. Mapping rules:
//
//   - Names are prefixed "uselessmiss_" and sanitized: every character
//     outside [a-zA-Z0-9_] becomes '_' ("trace.drive.refs" →
//     "uselessmiss_trace_drive_refs").
//   - Counters gain the conventional "_total" suffix.
//   - Histograms render cumulatively: one "_bucket" series per bound plus
//     the mandatory le="+Inf" bucket equal to "_count", then "_sum".
//   - Families are emitted in sorted name order with one # HELP and one
//     # TYPE line each, so the output is deterministic and parses under
//     any exposition-format consumer.

// promPrefix namespaces every exported metric family.
const promPrefix = "uselessmiss_"

// promName sanitizes a registry metric name into a Prometheus family name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(promPrefix) + len(name))
	b.WriteString(promPrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders the registry's current values in the text
// exposition format. It snapshots through Report(), so the class split
// (deterministic vs timing) is invisible here — Prometheus consumers see
// one flat, sorted namespace.
func (r *Registry) WritePrometheus(w io.Writer) error {
	rep := r.Report()
	bw := bufio.NewWriter(w)

	counters := make(map[string]uint64, len(rep.Deterministic.Counters)+len(rep.Timings.Counters))
	for name, v := range rep.Deterministic.Counters {
		counters[name] = v
	}
	for name, v := range rep.Timings.Counters {
		counters[name] = v
	}
	for _, name := range sortedKeys(counters) {
		fam := promName(name) + "_total"
		writeFamilyHeader(bw, fam, "counter", name)
		bw.WriteString(fam)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(counters[name], 10))
		bw.WriteByte('\n')
	}

	for _, name := range sortedKeys(rep.Timings.Gauges) {
		fam := promName(name)
		writeFamilyHeader(bw, fam, "gauge", name)
		bw.WriteString(fam)
		bw.WriteByte(' ')
		bw.WriteString(promFloat(rep.Timings.Gauges[name]))
		bw.WriteByte('\n')
	}

	hists := make(map[string]HistogramSnapshot, len(rep.Deterministic.Histograms)+len(rep.Timings.Histograms))
	for name, h := range rep.Deterministic.Histograms {
		hists[name] = h
	}
	for name, h := range rep.Timings.Histograms {
		hists[name] = h
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		fam := promName(name)
		writeFamilyHeader(bw, fam, "histogram", name)
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			bw.WriteString(fam)
			bw.WriteString(`_bucket{le="`)
			bw.WriteString(promFloat(float64(bound)))
			bw.WriteString(`"} `)
			bw.WriteString(strconv.FormatUint(cum, 10))
			bw.WriteByte('\n')
		}
		// The overflow bucket closes the cumulative series at +Inf. Using
		// the bucket sum (not h.Count) keeps the series internally
		// consistent even on a torn concurrent snapshot.
		if len(h.Counts) > len(h.Bounds) {
			cum += h.Counts[len(h.Bounds)]
		}
		bw.WriteString(fam)
		bw.WriteString(`_bucket{le="+Inf"} `)
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
		bw.WriteString(fam)
		bw.WriteString("_sum ")
		bw.WriteString(strconv.FormatUint(h.Sum, 10))
		bw.WriteByte('\n')
		bw.WriteString(fam)
		bw.WriteString("_count ")
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}

	return bw.Flush()
}

func writeFamilyHeader(bw *bufio.Writer, fam, typ, source string) {
	bw.WriteString("# HELP ")
	bw.WriteString(fam)
	bw.WriteString(" Registry metric ")
	bw.WriteString(source)
	bw.WriteString(".\n# TYPE ")
	bw.WriteString(fam)
	bw.WriteByte(' ')
	bw.WriteString(typ)
	bw.WriteByte('\n')
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
