package obs

import (
	"time"
)

// RunTimer brackets one run (one experiment driver call, one regen) and
// derives the run-level rate gauges from counter deltas when stopped:
// wall seconds, replayed refs/s, and sweep-pool utilization (cell-busy
// seconds per wall second; values above 1 mean the parallel pool paid off).
type RunTimer struct {
	reg      *Registry
	start    time.Time
	baseRefs uint64
	baseBusy uint64
}

// StartRunTimer begins timing a run against reg (nil means Default).
func StartRunTimer(reg *Registry) *RunTimer {
	if reg == nil {
		reg = Default
	}
	return &RunTimer{
		reg:      reg,
		start:    time.Now(),
		baseRefs: reg.Counter(NameDriveRefs).Value(),
		baseBusy: reg.TimingCounter(NameSweepBusyNs).Value(),
	}
}

// Stop computes the run's wall time and rates and publishes them as gauges.
// It returns the wall-clock duration.
func (t *RunTimer) Stop() time.Duration {
	elapsed := time.Since(t.start)
	wall := elapsed.Seconds()
	t.reg.Gauge(NameRunWallSeconds).Set(wall)
	if wall > 0 {
		refs := t.reg.Counter(NameDriveRefs).Value() - t.baseRefs
		t.reg.Gauge(NameRunRefsPerSec).Set(float64(refs) / wall)
		busy := t.reg.TimingCounter(NameSweepBusyNs).Value() - t.baseBusy
		t.reg.Gauge(NameRunUtilization).Set(float64(busy) / 1e9 / wall)
	}
	return elapsed
}
