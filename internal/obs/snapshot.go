package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SnapshotSchema identifies the streaming metrics-snapshot JSONL layout.
// Each line is a delta report: the registry's change since the previous
// line (the first line is relative to the run's base snapshot), so the
// deltas telescope — summing every line reconstructs final − base exactly.
const SnapshotSchema = "uselessmiss/metrics/v1+delta"

// MetricsSnapshot is one line of the -metrics-interval JSONL stream.
type MetricsSnapshot struct {
	Schema      string    `json:"schema"`
	Seq         int       `json:"seq"`
	WallSeconds float64   `json:"wall_seconds"`
	Final       bool      `json:"final,omitempty"`
	Delta       RunReport `json:"delta"`
}

// Snapshotter periodically emits registry deltas as JSONL while a run is
// in flight, so an operator tailing the snapshot file (or a supervisor
// scraping it) sees per-interval throughput rather than only the final
// report. Stop flushes one last delta flagged "final".
type Snapshotter struct {
	w        io.Writer
	reg      *Registry
	interval time.Duration
	start    time.Time

	mu   sync.Mutex // serializes emit vs Stop
	last RunReport
	seq  int
	err  error

	done chan struct{}
	wg   sync.WaitGroup
}

// StartSnapshots begins emitting deltas of reg to w every interval. base is
// the snapshot taken at run start: the first emitted line is relative to
// it, so pre-run totals from earlier runs in the same process never leak
// into the stream.
func StartSnapshots(w io.Writer, reg *Registry, interval time.Duration, base RunReport) *Snapshotter {
	s := &Snapshotter{
		w:        w,
		reg:      reg,
		interval: interval,
		start:    time.Now(),
		last:     base,
		done:     make(chan struct{}),
	}
	s.wg.Add(1)
	go s.loop()
	return s
}

func (s *Snapshotter) loop() {
	defer s.wg.Done()
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.emit(false)
		case <-s.done:
			return
		}
	}
}

// emit writes one delta line. Holding mu across the Report() call keeps
// "last" consistent: each registry mutation lands in exactly one line.
func (s *Snapshotter) emit(final bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.reg.Report()
	line := MetricsSnapshot{
		Schema:      SnapshotSchema,
		Seq:         s.seq,
		WallSeconds: time.Since(s.start).Seconds(),
		Final:       final,
		Delta:       Delta(s.last, cur),
	}
	s.last = cur
	s.seq++
	data, err := json.Marshal(line)
	if err == nil {
		data = append(data, '\n')
		_, err = s.w.Write(data)
	}
	if err != nil && s.err == nil {
		s.err = err
	}
}

// Stop halts the ticker, emits a final delta line covering everything since
// the previous one, and returns the first write error encountered.
func (s *Snapshotter) Stop() error {
	close(s.done)
	s.wg.Wait()
	s.emit(true)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
