package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// The snapshotter goroutine writes while the test reads; syncBuffer (from
// progress_test.go) makes that safe.

// TestSnapshotDeltasTelescope drives the registry from concurrent workers
// while the snapshotter streams deltas, then checks the invariant the
// format promises: every line parses, sequence numbers are dense, exactly
// one final line ends the stream, and the summed deltas equal the
// registry's total change — no observation is double-counted or dropped
// between lines.
func TestSnapshotDeltasTelescope(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("snap.test.refs")
	tc := reg.TimingCounter("snap.test.blocked_ns")
	h := reg.Histogram("snap.test.batch", []uint64{10, 100})
	base := reg.Report()

	var out syncBuffer
	s := StartSnapshots(&out, reg, 2*time.Millisecond, base)

	const workers = 4
	const iters = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Add(3)
				tc.Inc()
				h.Observe(uint64(i % 150))
			}
		}(w)
	}
	wg.Wait()
	final := reg.Report()
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	var (
		lines      []MetricsSnapshot
		sumRefs    uint64
		sumBlocked uint64
		sumHistCnt uint64
		sumHistSum uint64
		finals     int
	)
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line MetricsSnapshot
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad snapshot line %q: %v", sc.Text(), err)
		}
		if line.Schema != SnapshotSchema {
			t.Fatalf("schema = %q, want %q", line.Schema, SnapshotSchema)
		}
		if line.Seq != len(lines) {
			t.Fatalf("seq = %d at line %d (not dense)", line.Seq, len(lines))
		}
		if line.WallSeconds < 0 {
			t.Fatalf("negative wall_seconds %v", line.WallSeconds)
		}
		if line.Final {
			finals++
		}
		sumRefs += line.Delta.Deterministic.Counters["snap.test.refs"]
		sumBlocked += line.Delta.Timings.Counters["snap.test.blocked_ns"]
		hd := line.Delta.Deterministic.Histograms["snap.test.batch"]
		sumHistCnt += hd.Count
		sumHistSum += hd.Sum
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		t.Fatal("no snapshot lines emitted")
	}
	if finals != 1 || !lines[len(lines)-1].Final {
		t.Fatalf("final flags = %d, last line final = %v; want exactly one, last", finals, lines[len(lines)-1].Final)
	}

	if want := uint64(workers * iters * 3); sumRefs != want {
		t.Errorf("telescoped refs = %d, want %d", sumRefs, want)
	}
	if want := uint64(workers * iters); sumBlocked != want {
		t.Errorf("telescoped blocked = %d, want %d", sumBlocked, want)
	}
	fh := final.Deterministic.Histograms["snap.test.batch"]
	if sumHistCnt != fh.Count || sumHistSum != fh.Sum {
		t.Errorf("telescoped histogram count/sum = %d/%d, want %d/%d",
			sumHistCnt, sumHistSum, fh.Count, fh.Sum)
	}
}

// TestSnapshotterStopIsFinalOnly checks a stream with no ticker firings
// still emits the mandatory final line.
func TestSnapshotterStopIsFinalOnly(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("snap.test2.n").Add(7)
	base := reg.Report()
	reg.Counter("snap.test2.n").Add(5)

	var out syncBuffer
	s := StartSnapshots(&out, reg, time.Hour, base)
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	var line MetricsSnapshot
	if err := json.Unmarshal([]byte(strings.TrimSpace(out.String())), &line); err != nil {
		t.Fatalf("stream is not exactly one JSON line: %v\n%s", err, out.String())
	}
	if !line.Final || line.Seq != 0 {
		t.Fatalf("line = seq %d final %v, want seq 0 final", line.Seq, line.Final)
	}
	if got := line.Delta.Deterministic.Counters["snap.test2.n"]; got != 5 {
		t.Fatalf("delta counter = %d, want 5 (base excluded)", got)
	}
}
