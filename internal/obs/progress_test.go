package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read what the render goroutine wrote without a
// data race (Progress itself writes from exactly one goroutine).
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func TestProgressRendersAndStops(t *testing.T) {
	reg := NewRegistry()
	var buf syncBuffer
	p := StartProgress(&buf, reg, 5*time.Millisecond)
	reg.Counter(NameCellsPlanned).Add(10)
	reg.Counter(NameCellsFinished).Add(4)
	reg.Counter(NameDriveRefs).Add(2_500_000)
	time.Sleep(30 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent

	out := buf.String()
	if !strings.Contains(out, "cells 4/10") {
		t.Errorf("progress line missing cell progress:\n%q", out)
	}
	if !strings.Contains(out, "refs 2.5M") {
		t.Errorf("progress line missing refs:\n%q", out)
	}
	if !strings.Contains(out, "refs/s") {
		t.Errorf("progress line missing rate:\n%q", out)
	}
	if !strings.HasPrefix(out, "\r") {
		t.Errorf("progress does not rewrite in place:\n%q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("final render not newline-terminated:\n%q", out)
	}
}

// TestProgressCountsOnlyItsRun: a progress bar started mid-process must
// show deltas from its own start, not process-lifetime totals.
func TestProgressCountsOnlyItsRun(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(NameCellsPlanned).Add(100)
	reg.Counter(NameCellsFinished).Add(100)
	var buf syncBuffer
	p := StartProgress(&buf, reg, time.Hour) // only the final render fires
	reg.Counter(NameCellsPlanned).Add(3)
	reg.Counter(NameCellsFinished).Add(2)
	p.Stop()
	if out := buf.String(); !strings.Contains(out, "cells 2/3") {
		t.Errorf("progress shows stale totals:\n%q", out)
	}
}

func TestHuman(t *testing.T) {
	cases := []struct {
		in   uint64
		want string
	}{
		{5, "5"}, {1500, "1.5k"}, {2_500_000, "2.5M"}, {7_200_000_000, "7.2G"},
	}
	for _, c := range cases {
		if got := human(c.in); got != c.want {
			t.Errorf("human(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
