package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry is a named collection of metrics. Lookups are get-or-create and
// safe for concurrent use; handles are stable for the life of the registry,
// so instrumented packages resolve them once at init and the hot path never
// touches the registry lock.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*counterEntry
	gauges     map[string]*Gauge
	histograms map[string]*histogramEntry
}

type counterEntry struct {
	c      *Counter
	timing bool
}

type histogramEntry struct {
	h      *Histogram
	timing bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*counterEntry),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*histogramEntry),
	}
}

// Default is the process-wide registry every instrumented package reports
// into (the expvar model: instrumentation points are package-level, so
// threading a registry through every replay-loop signature is not needed).
// Run reports are snapshot deltas, so several sequential runs in one
// process each see only their own work.
var Default = NewRegistry()

// Counter returns the named deterministic counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter { return r.counter(name, false) }

// TimingCounter returns the named counter reported in the timings section:
// its value depends on scheduling or wall time, not only on the inputs.
func (r *Registry) TimingCounter(name string) *Counter { return r.counter(name, true) }

func (r *Registry) counter(name string, timing bool) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.counters[name]; ok {
		return e.c
	}
	e := &counterEntry{c: new(Counter), timing: timing}
	r.counters[name] = e
	return e.c
}

// Gauge returns the named gauge, creating it if needed. Gauges always
// report in the timings section.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := new(Gauge)
	r.gauges[name] = g
	return g
}

// Histogram returns the named deterministic histogram over the given
// ascending bucket upper bounds, creating it if needed (the bounds of an
// existing histogram win).
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	return r.histogram(name, bounds, false)
}

// TimingHistogram is Histogram for scheduling- or time-dependent values;
// it reports in the timings section.
func (r *Registry) TimingHistogram(name string, bounds []uint64) *Histogram {
	return r.histogram(name, bounds, true)
}

func (r *Registry) histogram(name string, bounds []uint64, timing bool) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.histograms[name]; ok {
		return e.h
	}
	e := &histogramEntry{h: newHistogram(bounds), timing: timing}
	r.histograms[name] = e
	return e.h
}

// Section is one class of a report's metrics, keyed by metric name.
type Section struct {
	Counters   map[string]uint64            `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// TimingSection extends Section with gauges; everything in it is excluded
// from golden comparison.
type TimingSection struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// ReportSchema identifies the run-report JSON layout.
const ReportSchema = "uselessmiss/metrics/v1"

// RunReport is a point-in-time snapshot of a registry, split into the
// deterministic section (identical for identical inputs and flags, and
// invariant across -j) and the timings section (wall-clock and
// scheduling-dependent values). encoding/json sorts map keys, so the
// serialized form is deterministic given deterministic values.
type RunReport struct {
	Schema        string        `json:"schema"`
	Deterministic Section       `json:"deterministic"`
	Timings       TimingSection `json:"timings"`
}

// Report snapshots the registry.
func (r *Registry) Report() RunReport {
	rep := RunReport{
		Schema: ReportSchema,
		Deterministic: Section{
			Counters:   map[string]uint64{},
			Histograms: map[string]HistogramSnapshot{},
		},
		Timings: TimingSection{
			Counters:   map[string]uint64{},
			Gauges:     map[string]float64{},
			Histograms: map[string]HistogramSnapshot{},
		},
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, e := range r.counters {
		if e.timing {
			rep.Timings.Counters[name] = e.c.Value()
		} else {
			rep.Deterministic.Counters[name] = e.c.Value()
		}
	}
	for name, g := range r.gauges {
		rep.Timings.Gauges[name] = g.Value()
	}
	for name, e := range r.histograms {
		if e.timing {
			rep.Timings.Histograms[name] = e.h.snapshot()
		} else {
			rep.Deterministic.Histograms[name] = e.h.snapshot()
		}
	}
	return rep
}

// Delta returns the per-run report after - before: counters and histograms
// subtract, gauges keep their latest value. Metrics that appeared after the
// "before" snapshot subtract from zero.
func Delta(before, after RunReport) RunReport {
	out := after
	out.Deterministic = Section{
		Counters:   subCounters(after.Deterministic.Counters, before.Deterministic.Counters),
		Histograms: subHistograms(after.Deterministic.Histograms, before.Deterministic.Histograms),
	}
	out.Timings = TimingSection{
		Counters:   subCounters(after.Timings.Counters, before.Timings.Counters),
		Gauges:     after.Timings.Gauges,
		Histograms: subHistograms(after.Timings.Histograms, before.Timings.Histograms),
	}
	return out
}

func subCounters(after, before map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(after))
	for name, v := range after {
		out[name] = v - before[name]
	}
	return out
}

func subHistograms(after, before map[string]HistogramSnapshot) map[string]HistogramSnapshot {
	out := make(map[string]HistogramSnapshot, len(after))
	for name, s := range after {
		if prev, ok := before[name]; ok {
			s = s.Sub(prev)
		}
		out[name] = s
	}
	return out
}

// WriteJSON writes the report as indented JSON with a trailing newline.
// Map keys serialize sorted, so the bytes are deterministic.
func (rep RunReport) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// DeterministicNames returns the sorted deterministic counter names, for
// tests and debugging dumps.
func (rep RunReport) DeterministicNames() []string {
	names := make([]string, 0, len(rep.Deterministic.Counters))
	for name := range rep.Deterministic.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// String renders a compact one-line summary (counter totals only), for
// slog payloads.
func (rep RunReport) String() string {
	return fmt.Sprintf("RunReport{%d deterministic counters, %d timing counters, %d gauges}",
		len(rep.Deterministic.Counters), len(rep.Timings.Counters), len(rep.Timings.Gauges))
}
