package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// publishOnce guards the expvar registration: expvar.Publish panics on a
// duplicate name, and tests start several debug servers per process.
var publishOnce sync.Once

// publishExpvar exposes the default registry's run report as one expvar
// variable, so it appears in /debug/vars next to the runtime's memstats.
func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("uselessmiss", expvar.Func(func() any {
			return Default.Report()
		}))
	})
}

// ready gates /readyz. It starts true (a process that can serve HTTP can
// also answer queries); long drivers may clear it during teardown so a
// supervisor stops routing scrapes at a clean boundary.
var ready atomic.Bool

func init() { ready.Store(true) }

// SetReady sets the /readyz state.
func SetReady(ok bool) { ready.Store(ok) }

// DebugServer is the opt-in HTTP introspection endpoint behind the CLI's
// -debug-addr flag. It serves:
//
//	/metrics          the default registry in Prometheus text format
//	/metrics.json     the default registry's run report as JSON
//	/healthz          liveness: always 200 while the server is up
//	/readyz           readiness: 200, or 503 after SetReady(false)
//	/debug/vars       expvar (includes the registry under "uselessmiss")
//	/debug/pprof/...  the full net/http/pprof suite
//
// so a long sweep that looks stuck can be inspected in flight: goroutine
// dumps show where the pool is blocked, and successive /metrics scrapes
// show whether cells are still finishing.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// NewDebugMux returns a fresh mux with the full introspection surface
// (the routes DebugServer documents) registered. The serving layer mounts
// it next to its own API routes so one listener exposes both; ServeDebug
// serves it alone. Every handler reads the process-wide Default registry
// and readiness state, so all mounts agree.
func NewDebugMux() *http.ServeMux {
	publishExpvar()
	mux := http.NewServeMux()
	registerDebugRoutes(mux)
	return mux
}

// ServeDebug starts the introspection endpoint on addr (e.g. ":6060" or
// "127.0.0.1:0") and serves until Close.
func ServeDebug(addr string) (*DebugServer, error) {
	mux := NewDebugMux()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &DebugServer{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// registerDebugRoutes installs the introspection handlers on mux.
func registerDebugRoutes(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		Default.WritePrometheus(w) //nolint:errcheck // best-effort response
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		Default.Report().WriteJSON(w) //nolint:errcheck // best-effort response
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n")) //nolint:errcheck // best-effort response
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n")) //nolint:errcheck // best-effort response
			return
		}
		w.Write([]byte("ok\n")) //nolint:errcheck // best-effort response
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Addr returns the bound listen address (useful with port 0).
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *DebugServer) Close() error { return s.srv.Close() }
