package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if c2 := r.Counter("c"); c2 != c {
		t.Error("Counter is not get-or-create")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}

	h := r.Histogram("h", []uint64{10, 100})
	for _, v := range []uint64{1, 10, 11, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if want := []uint64{2, 1, 1}; len(s.Counts) != 3 || s.Counts[0] != want[0] || s.Counts[1] != want[1] || s.Counts[2] != want[2] {
		t.Errorf("histogram counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 4 || s.Sum != 1022 {
		t.Errorf("histogram count/sum = %d/%d, want 4/1022", s.Count, s.Sum)
	}
}

// TestNilHandlesAreNoOps: a nil metric handle must discard operations, so
// optional instrumentation can hold nil without branching at every site.
func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter not zero")
	}
	var g *Gauge
	g.Set(1)
	if g.Value() != 0 {
		t.Error("nil gauge not zero")
	}
	var h *Histogram
	h.Observe(1)
}

// TestSetEnabled: disabling collection freezes every metric; re-enabling
// resumes from the frozen values.
func TestSetEnabled(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []uint64{10})
	g := r.Gauge("g")
	c.Add(1)
	SetEnabled(false)
	c.Add(10)
	h.Observe(5)
	g.Set(9)
	SetEnabled(true)
	if c.Value() != 1 {
		t.Errorf("disabled counter moved: %d", c.Value())
	}
	if h.snapshot().Count != 0 {
		t.Error("disabled histogram moved")
	}
	if g.Value() != 0 {
		t.Error("disabled gauge moved")
	}
	c.Inc()
	if c.Value() != 2 {
		t.Errorf("re-enabled counter = %d, want 2", c.Value())
	}
}

// TestHotPathAllocs pins the instrumentation primitives to zero
// allocations: the replay loop's per-batch adds must not touch the heap.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []uint64{1, 8, 64, 512, 1024})
	got := testing.AllocsPerRun(100, func() {
		c.Add(1024)
		g.Set(1.0)
		h.Observe(512)
	})
	if got != 0 {
		t.Fatalf("hot-path metric ops allocate %.1f per pass, want 0", got)
	}
}

// TestConcurrentAdds exercises the atomics under the race detector.
func TestConcurrentAdds(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.TimingHistogram("h", []uint64{10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(uint64(i % 20))
				_ = r.Counter("c") // registry lookups race with snapshots
				_ = r.Report()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if got := h.snapshot().Count; got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestReportSectionsAndDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("det.c").Add(5)
	r.TimingCounter("tim.c").Add(7)
	r.Gauge("g").Set(1.5)
	r.Histogram("det.h", []uint64{10}).Observe(3)
	r.TimingHistogram("tim.h", []uint64{10}).Observe(3)

	before := r.Report()
	if before.Deterministic.Counters["det.c"] != 5 {
		t.Error("deterministic counter missing")
	}
	if _, ok := before.Deterministic.Counters["tim.c"]; ok {
		t.Error("timing counter leaked into deterministic section")
	}
	if before.Timings.Counters["tim.c"] != 7 {
		t.Error("timing counter missing")
	}
	if _, ok := before.Timings.Histograms["tim.h"]; !ok {
		t.Error("timing histogram missing")
	}

	r.Counter("det.c").Add(2)
	r.Counter("new.c").Add(4)
	r.Histogram("det.h", nil).Observe(100)
	r.Gauge("g").Set(9)
	d := Delta(before, r.Report())
	if d.Deterministic.Counters["det.c"] != 2 {
		t.Errorf("delta det.c = %d, want 2", d.Deterministic.Counters["det.c"])
	}
	if d.Deterministic.Counters["new.c"] != 4 {
		t.Errorf("delta new.c = %d, want 4", d.Deterministic.Counters["new.c"])
	}
	if d.Timings.Gauges["g"] != 9 {
		t.Errorf("delta gauge = %v, want latest value 9", d.Timings.Gauges["g"])
	}
	hs := d.Deterministic.Histograms["det.h"]
	if hs.Count != 1 || hs.Sum != 100 {
		t.Errorf("delta histogram = %+v, want count 1 sum 100", hs)
	}
}

// TestHistogramQuantile pins the interpolation convention on a known
// distribution and every edge: empty snapshot, q clamped past [0, 1],
// exact bucket boundaries, and a mass that lands in the overflow bucket.
func TestHistogramQuantile(t *testing.T) {
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty snapshot quantile = %v, want 0", got)
	}

	// 10 observations spread 4/4/2 over buckets (0,10], (10,100], overflow.
	h := newHistogram([]uint64{10, 100})
	for _, v := range []uint64{1, 2, 3, 4, 20, 40, 60, 80, 500, 900} {
		h.Observe(v)
	}
	s := h.snapshot()
	cases := []struct {
		q    float64
		want float64
	}{
		{-1, 0},    // clamped to 0: lower edge of the first occupied bucket
		{0, 0},     // lower edge of the first occupied bucket
		{0.2, 5},   // rank 2 of 4 inside (0,10]
		{0.4, 10},  // rank 4 == the full first bucket: its upper bound
		{0.6, 55},  // rank 6: halfway through (10,100]
		{0.8, 100}, // rank 8 == through the second bucket: its upper bound
		{0.9, 100}, // overflow bucket: highest finite bound
		{1, 100},   // ditto
		{2, 100},   // clamped to 1
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}

	// A histogram with no finite bounds has only the overflow bucket and
	// can never report a value.
	h2 := newHistogram(nil)
	h2.Observe(7)
	if got := h2.snapshot().Quantile(0.5); got != 0 {
		t.Errorf("boundless histogram quantile = %v, want 0", got)
	}

	// Empty buckets between occupied ones are skipped, not interpolated
	// into.
	h3 := newHistogram([]uint64{1, 2, 3})
	h3.Observe(1)
	h3.Observe(3)
	if got := h3.snapshot().Quantile(1); got != 3 {
		t.Errorf("sparse histogram Quantile(1) = %v, want 3", got)
	}
}

// TestHistogramSnapshotDeltaConcurrent drives writers and a delta-taking
// reader concurrently (meaningful under -race) and checks the telescoping
// invariant: the per-interval deltas must sum to the final snapshot exactly,
// no observation dropped or double-counted across snapshot boundaries.
func TestHistogramSnapshotDeltaConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []uint64{8, 64, 512})
	const writers, perWriter = 8, 5000

	prev := h.snapshot() // before any writer starts, so the deltas telescope to the final state

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe((seed + uint64(i)) % 1000)
			}
		}(uint64(w * 131))
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	// Accumulate interval deltas while the writers run; each delta also
	// has to be internally sane (no negative-wrapped uint64 counts).
	total := HistogramSnapshot{}
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
		}
		cur := h.snapshot()
		d := cur.Sub(prev)
		prev = cur
		const wrapped = 1 << 63
		if d.Count > wrapped || d.Sum > wrapped {
			t.Fatalf("delta wrapped negative: %+v", d)
		}
		total.Count += d.Count
		total.Sum += d.Sum
		if total.Counts == nil {
			total.Counts = make([]uint64, len(d.Counts))
		}
		for i, c := range d.Counts {
			if c > wrapped {
				t.Fatalf("bucket %d delta wrapped negative", i)
			}
			total.Counts[i] += c
		}
		_ = d.Quantile(0.5) // reads torn snapshots without panicking
	}

	final := h.snapshot()
	if total.Count != final.Count || total.Sum != final.Sum {
		t.Fatalf("deltas do not telescope: summed count/sum %d/%d, final %d/%d",
			total.Count, total.Sum, final.Count, final.Sum)
	}
	for i := range final.Counts {
		if total.Counts[i] != final.Counts[i] {
			t.Fatalf("bucket %d: summed %d, final %d", i, total.Counts[i], final.Counts[i])
		}
	}
	if final.Count != writers*perWriter {
		t.Fatalf("final count = %d, want %d", final.Count, writers*perWriter)
	}
	var bucketSum uint64
	for _, c := range final.Counts {
		bucketSum += c
	}
	if bucketSum != final.Count {
		t.Fatalf("quiescent buckets sum to %d, count says %d", bucketSum, final.Count)
	}
}

// TestReportJSONDeterministic: identical registry state must serialize to
// identical bytes (sorted keys), and the schema tag must be present.
func TestReportJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Histogram("h", []uint64{1, 2}).Observe(1)
	var buf1, buf2 bytes.Buffer
	if err := r.Report().WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.Report().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Error("report serialization is not deterministic")
	}
	if !strings.Contains(buf1.String(), ReportSchema) {
		t.Error("schema tag missing")
	}
	var parsed RunReport
	if err := json.Unmarshal(buf1.Bytes(), &parsed); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if parsed.Deterministic.Counters["a"] != 1 || parsed.Deterministic.Counters["b"] != 2 {
		t.Errorf("round-trip lost counters: %+v", parsed.Deterministic.Counters)
	}
	if got := parsed.DeterministicNames(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("DeterministicNames = %v", got)
	}
}
