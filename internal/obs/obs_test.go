package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if c2 := r.Counter("c"); c2 != c {
		t.Error("Counter is not get-or-create")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}

	h := r.Histogram("h", []uint64{10, 100})
	for _, v := range []uint64{1, 10, 11, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if want := []uint64{2, 1, 1}; len(s.Counts) != 3 || s.Counts[0] != want[0] || s.Counts[1] != want[1] || s.Counts[2] != want[2] {
		t.Errorf("histogram counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 4 || s.Sum != 1022 {
		t.Errorf("histogram count/sum = %d/%d, want 4/1022", s.Count, s.Sum)
	}
}

// TestNilHandlesAreNoOps: a nil metric handle must discard operations, so
// optional instrumentation can hold nil without branching at every site.
func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter not zero")
	}
	var g *Gauge
	g.Set(1)
	if g.Value() != 0 {
		t.Error("nil gauge not zero")
	}
	var h *Histogram
	h.Observe(1)
}

// TestSetEnabled: disabling collection freezes every metric; re-enabling
// resumes from the frozen values.
func TestSetEnabled(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []uint64{10})
	g := r.Gauge("g")
	c.Add(1)
	SetEnabled(false)
	c.Add(10)
	h.Observe(5)
	g.Set(9)
	SetEnabled(true)
	if c.Value() != 1 {
		t.Errorf("disabled counter moved: %d", c.Value())
	}
	if h.snapshot().Count != 0 {
		t.Error("disabled histogram moved")
	}
	if g.Value() != 0 {
		t.Error("disabled gauge moved")
	}
	c.Inc()
	if c.Value() != 2 {
		t.Errorf("re-enabled counter = %d, want 2", c.Value())
	}
}

// TestHotPathAllocs pins the instrumentation primitives to zero
// allocations: the replay loop's per-batch adds must not touch the heap.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []uint64{1, 8, 64, 512, 1024})
	got := testing.AllocsPerRun(100, func() {
		c.Add(1024)
		g.Set(1.0)
		h.Observe(512)
	})
	if got != 0 {
		t.Fatalf("hot-path metric ops allocate %.1f per pass, want 0", got)
	}
}

// TestConcurrentAdds exercises the atomics under the race detector.
func TestConcurrentAdds(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.TimingHistogram("h", []uint64{10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(uint64(i % 20))
				_ = r.Counter("c") // registry lookups race with snapshots
				_ = r.Report()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if got := h.snapshot().Count; got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestReportSectionsAndDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("det.c").Add(5)
	r.TimingCounter("tim.c").Add(7)
	r.Gauge("g").Set(1.5)
	r.Histogram("det.h", []uint64{10}).Observe(3)
	r.TimingHistogram("tim.h", []uint64{10}).Observe(3)

	before := r.Report()
	if before.Deterministic.Counters["det.c"] != 5 {
		t.Error("deterministic counter missing")
	}
	if _, ok := before.Deterministic.Counters["tim.c"]; ok {
		t.Error("timing counter leaked into deterministic section")
	}
	if before.Timings.Counters["tim.c"] != 7 {
		t.Error("timing counter missing")
	}
	if _, ok := before.Timings.Histograms["tim.h"]; !ok {
		t.Error("timing histogram missing")
	}

	r.Counter("det.c").Add(2)
	r.Counter("new.c").Add(4)
	r.Histogram("det.h", nil).Observe(100)
	r.Gauge("g").Set(9)
	d := Delta(before, r.Report())
	if d.Deterministic.Counters["det.c"] != 2 {
		t.Errorf("delta det.c = %d, want 2", d.Deterministic.Counters["det.c"])
	}
	if d.Deterministic.Counters["new.c"] != 4 {
		t.Errorf("delta new.c = %d, want 4", d.Deterministic.Counters["new.c"])
	}
	if d.Timings.Gauges["g"] != 9 {
		t.Errorf("delta gauge = %v, want latest value 9", d.Timings.Gauges["g"])
	}
	hs := d.Deterministic.Histograms["det.h"]
	if hs.Count != 1 || hs.Sum != 100 {
		t.Errorf("delta histogram = %+v, want count 1 sum 100", hs)
	}
}

// TestReportJSONDeterministic: identical registry state must serialize to
// identical bytes (sorted keys), and the schema tag must be present.
func TestReportJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Histogram("h", []uint64{1, 2}).Observe(1)
	var buf1, buf2 bytes.Buffer
	if err := r.Report().WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.Report().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Error("report serialization is not deterministic")
	}
	if !strings.Contains(buf1.String(), ReportSchema) {
		t.Error("schema tag missing")
	}
	var parsed RunReport
	if err := json.Unmarshal(buf1.Bytes(), &parsed); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if parsed.Deterministic.Counters["a"] != 1 || parsed.Deterministic.Counters["b"] != 2 {
		t.Errorf("round-trip lost counters: %+v", parsed.Deterministic.Counters)
	}
	if got := parsed.DeterministicNames(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("DeterministicNames = %v", got)
	}
}
