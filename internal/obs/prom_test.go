package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promLine matches one exposition sample: a metric name, an optional
// {le="..."} label set (the only labels we emit), and a value.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="[^"]+"\})? (\S+)$`)

// TestWritePrometheusConformance checks the text output against the
// exposition-format rules a scraper relies on: legal names, HELP/TYPE
// before samples, counters suffixed _total, histograms with cumulative
// buckets ending at +Inf where _bucket{+Inf} == _count.
func TestWritePrometheusConformance(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("trace.drive.refs").Add(123)
	reg.TimingCounter("trace.demux.blocked_send_ns").Add(456)
	reg.Gauge("run.refs_per_sec").Set(1.5e6)
	h := reg.TimingHistogram("trace.demux.queue_depth", []uint64{0, 1, 2, 3})
	for _, v := range []uint64{0, 0, 1, 3, 4, 9} { // 9 and 4 overflow
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	typed := map[string]string{}   // family -> type
	values := map[string]float64{} // full sample key -> value
	var families []string
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := typed[parts[2]]; dup {
				t.Fatalf("duplicate TYPE for %s", parts[2])
			}
			typed[parts[2]] = parts[3]
			families = append(families, parts[2])
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		values[m[1]+m[2]] = v
		// Every sample must belong to a family that already declared TYPE.
		fam := m[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(fam, suffix); base != fam && typed[base] == "histogram" {
				fam = base
				break
			}
		}
		if _, ok := typed[fam]; !ok {
			t.Fatalf("sample %q precedes its TYPE line", line)
		}
	}

	// Families emit sorted within each class (counters, then gauges, then
	// histograms), and a second render is byte-identical — the output is
	// deterministic for diffing.
	if typ := func() []string {
		var counters []string
		for _, f := range families {
			if typed[f] == "counter" {
				counters = append(counters, f)
			}
		}
		return counters
	}(); !sort.StringsAreSorted(typ) {
		t.Errorf("counter families not sorted: %v", typ)
	}
	var buf2 bytes.Buffer
	if err := reg.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("two renders of an unchanged registry differ")
	}
	if typ := typed["uselessmiss_trace_drive_refs_total"]; typ != "counter" {
		t.Errorf("deterministic counter type = %q", typ)
	}
	if typ := typed["uselessmiss_trace_demux_blocked_send_ns_total"]; typ != "counter" {
		t.Errorf("timing counter type = %q", typ)
	}
	if typ := typed["uselessmiss_run_refs_per_sec"]; typ != "gauge" {
		t.Errorf("gauge type = %q", typ)
	}
	if typ := typed["uselessmiss_trace_demux_queue_depth"]; typ != "histogram" {
		t.Errorf("histogram type = %q", typ)
	}

	if v := values["uselessmiss_trace_drive_refs_total"]; v != 123 {
		t.Errorf("counter value = %v, want 123", v)
	}
	if v := values["uselessmiss_run_refs_per_sec"]; v != 1.5e6 {
		t.Errorf("gauge value = %v, want 1.5e6", v)
	}

	// Histogram: cumulative buckets, monotone, +Inf == _count, sum exact.
	hist := "uselessmiss_trace_demux_queue_depth"
	var prev float64
	for _, le := range []string{"0", "1", "2", "3", "+Inf"} {
		key := fmt.Sprintf(`%s_bucket{le="%s"}`, hist, le)
		v, ok := values[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if v < prev {
			t.Fatalf("bucket le=%s count %v < previous %v (not cumulative)", le, v, prev)
		}
		prev = v
	}
	if inf := values[hist+`_bucket{le="+Inf"}`]; inf != values[hist+"_count"] {
		t.Errorf("+Inf bucket %v != _count %v", inf, values[hist+"_count"])
	}
	if values[hist+"_count"] != 6 {
		t.Errorf("_count = %v, want 6", values[hist+"_count"])
	}
	if values[hist+"_sum"] != 17 {
		t.Errorf("_sum = %v, want 17", values[hist+"_sum"])
	}
	if values[hist+`_bucket{le="0"}`] != 2 {
		t.Errorf("le=0 bucket = %v, want 2", values[hist+`_bucket{le="0"}`])
	}
	if values[hist+`_bucket{le="3"}`] != 4 {
		t.Errorf("le=3 bucket = %v, want 4", values[hist+`_bucket{le="3"}`])
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"trace.drive.refs":       "uselessmiss_trace_drive_refs",
		"sweep.cache.hits":       "uselessmiss_sweep_cache_hits",
		"weird-name with spaces": "uselessmiss_weird_name_with_spaces",
		"already_legal_1":        "uselessmiss_already_legal_1",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
