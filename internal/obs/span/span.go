// Package span is the execution flight recorder behind the CLI's
// -trace-out and -span-log flags: a low-overhead span recorder whose
// timeline can be exported as Chrome trace_event JSON (loadable in
// Perfetto or chrome://tracing) or as a compact JSONL event log.
//
// The design mirrors the obs metrics layer's hot-path contract, but for
// timelines instead of totals:
//
//   - Recording is gated by one atomic pointer load. With no recorder
//     active every entry point returns a nil *Track or zero Span, and the
//     nil receivers make every method a no-op — zero allocations, a couple
//     of nanoseconds per call site (pinned by the obs/span-disabled
//     perfbench workload and TestDisabledZeroAlloc).
//   - A Track is a single-writer timeline: exactly one goroutine writes to
//     a track at a time, so recording a completed span is a plain (not
//     atomic) ring-buffer store — no locks, no CAS, no contention. Worker
//     goroutines Acquire a track at start and Release it on exit; released
//     tracks are recycled by label, so a sweep pool's N workers reuse N
//     tracks across any number of runs.
//   - Spans are recorded at batch/cell/segment granularity, never per
//     reference, matching the engine's instrumentation budget.
//   - Each track's ring buffer holds a fixed number of completed span
//     records and overwrites the oldest on overflow (newest-wins: the tail
//     of a long run is the part worth looking at). Open spans live on a
//     small bounded stack per track — only completed records enter the
//     ring — so parent/child linkage survives any overflow. Lost records
//     (ring overwrites plus open-stack overflow drops) are counted and
//     reported in the snapshot.
//
// Typed attributes (workload, scheme, block size, cell, shard, segment,
// level, queue depth) ride in a fixed-size Fields struct, so recording
// never formats strings on the hot path.
package span

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Op identifies what a span measures. The set is closed on purpose: a
// fixed enum keeps span records fixed-size and exporters exhaustive.
type Op uint8

const (
	opNone Op = iota
	// OpExperiment is one experiment driver call (fig5, table1, ...).
	OpExperiment
	// OpArtifact is one regen artifact render.
	OpArtifact
	// OpPack is one workload's trace packing (regen -trace-out).
	OpPack
	// OpCellWait is a sweep cell's queue wait: submit to start.
	OpCellWait
	// OpCell is a sweep cell's execution on a pool worker.
	OpCell
	// OpReplay is one cell's trace replay with its grid coordinates.
	OpReplay
	// OpDrive is one trace.Drive pass (a full stream replay).
	OpDrive
	// OpShardConsume is one shard consumer's drive in a sharded run.
	OpShardConsume
	// OpDemuxPump is the demux pump goroutine's full routing pass.
	OpDemuxPump
	// OpResolve is a fused classifier's batch resolve phase.
	OpResolve
	// OpLevelSweep is a fused classifier's per-level batch sweep.
	OpLevelSweep
	// OpSegmentIO is one tracestore segment read+decode+CRC on the
	// readahead worker.
	OpSegmentIO
	// opFlowOut / opFlowIn are instantaneous flow endpoints linking a
	// producer track to a consumer track (demux pump → shard consumer).
	opFlowOut
	opFlowIn
	numOps
)

// opNames are the exported event names, stable across exporters.
var opNames = [numOps]string{
	opNone:         "none",
	OpExperiment:   "experiment",
	OpArtifact:     "regen.artifact",
	OpPack:         "trace.pack",
	OpCellWait:     "sweep.cell_wait",
	OpCell:         "sweep.cell",
	OpReplay:       "cell.replay",
	OpDrive:        "trace.drive",
	OpShardConsume: "shard.consume",
	OpDemuxPump:    "demux.pump",
	OpResolve:      "fused.resolve",
	OpLevelSweep:   "fused.level_sweep",
	OpSegmentIO:    "tracestore.segment_io",
	opFlowOut:      "flow.out",
	opFlowIn:       "flow.in",
}

// String returns the op's exported event name.
func (o Op) String() string {
	if o >= numOps {
		return "invalid"
	}
	return opNames[o]
}

// Fields are a span's typed attributes. Unused fields stay at their zero
// value and are omitted by the exporters; the numeric fields use -1-free
// zero-as-absent semantics except where an op's mask (see fieldMask) says
// the zero is meaningful (cell 0, shard 0, ...).
type Fields struct {
	// Workload names the benchmark trace being replayed.
	Workload string
	// Scheme names the classification scheme or protocol.
	Scheme string
	// Note is a free-form label (experiment name, artifact file).
	Note string
	// Block is the cache-block size in bytes.
	Block int32
	// Cell is the sweep-grid cell index.
	Cell int32
	// Shard is the shard index of a sharded pipeline stage.
	Shard int32
	// Segment is the tracestore segment index.
	Segment int32
	// Level is the fused classifier's internal level index.
	Level int32
	// Depth is a queue occupancy sampled at span start (readahead
	// results queue, demux channel).
	Depth int32
}

// Integer-field presence masks per op: ops declare which int32 fields are
// meaningful so exporters can emit cell=0 or shard=0 without emitting six
// zero attributes on every span.
const (
	fBlock = 1 << iota
	fCell
	fShard
	fSegment
	fLevel
	fDepth
)

var opFieldMask = [numOps]uint8{
	OpCellWait:     fCell,
	OpCell:         fCell,
	OpReplay:       fBlock | fCell,
	OpShardConsume: fShard,
	OpLevelSweep:   fBlock | fLevel,
	OpSegmentIO:    fSegment | fDepth,
}

// record is one completed span in a track's ring: fixed size, written by
// the track's single owner goroutine.
type record struct {
	start  int64 // ns since the recorder's epoch
	end    int64
	id     uint64 // span id, or flow id for flow records
	parent uint64 // enclosing span's id, 0 at top level
	fields Fields
	op     Op
}

// DefaultRingSize is the per-track completed-record capacity used when
// StartRecording is given a non-positive size (16384 records ≈ 1.8 MB per
// track; newest-wins on overflow).
const DefaultRingSize = 1 << 14

// maxOpenDepth bounds each track's open-span stack. Nesting in the engine
// is shallow (experiment → cell → replay → drive → resolve/level is 5-6);
// deeper Begins are dropped and counted rather than growing the stack.
const maxOpenDepth = 64

type openSpan struct {
	rec record // start/id/parent/fields/op filled; end set when popped
}

// Track is a single-writer span timeline. Exactly one goroutine may call
// its methods at a time (the Acquire/Release discipline, or the context
// plumbing which hands a track to the one goroutine driving a replay).
// All methods are safe on a nil receiver, which is the disabled path.
type Track struct {
	rec   *Recorder
	label string
	id    int

	ring []record
	n    uint64 // records ever written; ring index is n % len(ring)

	open    []openSpan // bounded stack of open spans
	dropped uint64     // Begins dropped to open-stack overflow
}

// Span is a handle on an open span; End closes it. The zero Span is a
// no-op, which is what every Begin returns when recording is off.
type Span struct {
	t     *Track
	depth int32 // 1-based position on the open stack; 0 = inert
}

// Recorder owns the epoch, the track set and the id sequences for one
// recording session.
type Recorder struct {
	epoch   time.Time
	ringLen int

	spanSeq atomic.Uint64
	flowSeq atomic.Uint64

	mu     sync.Mutex
	tracks []*Track            // every track ever created, in creation order
	free   map[string][]*Track // released tracks by label, for reuse
	main   *Track
}

// active is the process-wide recording gate: nil means disabled, and
// every entry point loads it exactly once.
var active atomic.Pointer[Recorder]

// StartRecording installs a fresh recorder as the process-wide active one
// and returns it. ringSize is the per-track completed-record capacity;
// non-positive means DefaultRingSize. Recording sessions do not nest: a
// second StartRecording orphans the first recorder (tracks already handed
// out keep writing into the orphan, harmlessly).
func StartRecording(ringSize int) *Recorder {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	r := &Recorder{
		epoch:   time.Now(),
		ringLen: ringSize,
		free:    make(map[string][]*Track),
	}
	r.main = r.newTrack("main")
	active.Store(r)
	return r
}

// StopRecording deactivates the recorder and returns its snapshot:
// every track's retained records (still-open spans are closed at the
// stop instant), sorted by start time. Returns nil if recording was off.
//
// Callers must stop or join the goroutines writing spans before calling
// StopRecording — the CLI does: every pipeline goroutine is joined before
// the export runs, and Release's lock hand-off makes a released track's
// writes visible here.
func StopRecording() *Snapshot {
	r := active.Swap(nil)
	if r == nil {
		return nil
	}
	return r.snapshot()
}

// Enabled reports whether a recorder is active.
func Enabled() bool { return active.Load() != nil }

// Now returns the current timestamp in ns since the active recorder's
// epoch, or 0 when recording is off. Capture it before a wait you want to
// attribute later with Track.Emit.
func Now() int64 {
	r := active.Load()
	if r == nil {
		return 0
	}
	return r.now()
}

// NewFlowID allocates a process-unique flow id for a FlowOut/FlowIn pair;
// 0 when recording is off.
func NewFlowID() uint64 {
	r := active.Load()
	if r == nil {
		return 0
	}
	return r.flowSeq.Add(1)
}

func (r *Recorder) now() int64 { return int64(time.Since(r.epoch)) }

// newTrack creates a track (caller holds mu or has exclusive access).
func (r *Recorder) newTrack(label string) *Track {
	t := &Track{
		rec:   r,
		label: label,
		id:    len(r.tracks),
		ring:  make([]record, r.ringLen),
		open:  make([]openSpan, 0, maxOpenDepth),
	}
	r.tracks = append(r.tracks, t)
	return t
}

// Acquire returns a track for the calling goroutine, reusing a released
// track with the same label when one is free. Returns nil (a valid no-op
// track) when recording is off. The caller must Release it when done.
func Acquire(label string) *Track {
	r := active.Load()
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if list := r.free[label]; len(list) > 0 {
		t := list[len(list)-1]
		r.free[label] = list[:len(list)-1]
		return t
	}
	return r.newTrack(label)
}

// Acquiref is Acquire with a "prefix i" label, checking the gate before
// formatting so the disabled path never touches strconv.
func Acquiref(prefix string, i int) *Track {
	if active.Load() == nil {
		return nil
	}
	return Acquire(prefix + " " + strconv.Itoa(i))
}

// Release returns an Acquired track to its recorder's freelist. The lock
// hand-off also publishes the releasing goroutine's ring writes to the
// goroutine that later calls StopRecording. Safe on nil.
func Release(t *Track) {
	if t == nil {
		return
	}
	r := t.rec
	r.mu.Lock()
	defer r.mu.Unlock()
	r.free[t.label] = append(r.free[t.label], t)
}

// Main returns the recorder's main track (the CLI goroutine's timeline),
// or nil when recording is off.
func Main() *Track {
	r := active.Load()
	if r == nil {
		return nil
	}
	return r.main
}

// Root begins a span on the main track: the entry point for experiment
// drivers running on the calling goroutine.
func Root(op Op, f Fields) Span { return Main().Begin(op, f) }

// Begin opens a span on the track and returns its handle. Nil-safe.
func (t *Track) Begin(op Op, f Fields) Span {
	if t == nil {
		return Span{}
	}
	if len(t.open) >= maxOpenDepth {
		t.dropped++
		return Span{}
	}
	var parent uint64
	if n := len(t.open); n > 0 {
		parent = t.open[n-1].rec.id
	}
	t.open = append(t.open, openSpan{rec: record{
		start:  t.rec.now(),
		id:     t.rec.spanSeq.Add(1),
		parent: parent,
		fields: f,
		op:     op,
	}})
	return Span{t: t, depth: int32(len(t.open))}
}

// End closes the span (and any children left open below it, so an early
// return inside a nested phase cannot corrupt the stack). Safe on the
// zero Span and on double End.
func (s Span) End() {
	t := s.t
	if t == nil || s.depth == 0 {
		return
	}
	now := t.rec.now()
	for int32(len(t.open)) >= s.depth {
		o := t.open[len(t.open)-1]
		t.open = t.open[:len(t.open)-1]
		o.rec.end = now
		t.push(o.rec)
	}
}

// Emit records an already-elapsed span in one call: start was captured
// earlier (span.Now at submit time), the end is now. It is how queue
// waits are recorded — the waiting goroutine did not exist yet at start.
func (t *Track) Emit(op Op, f Fields, startNs int64) {
	if t == nil {
		return
	}
	var parent uint64
	if n := len(t.open); n > 0 {
		parent = t.open[n-1].rec.id
	}
	now := t.rec.now()
	if startNs <= 0 || startNs > now {
		startNs = now
	}
	t.push(record{
		start:  startNs,
		end:    now,
		id:     t.rec.spanSeq.Add(1),
		parent: parent,
		fields: f,
		op:     op,
	})
}

// FlowOut records the producer endpoint of flow id on this track.
func (t *Track) FlowOut(id uint64) { t.flow(opFlowOut, id) }

// FlowIn records the consumer endpoint of flow id on this track.
func (t *Track) FlowIn(id uint64) { t.flow(opFlowIn, id) }

func (t *Track) flow(op Op, id uint64) {
	if t == nil || id == 0 {
		return
	}
	var parent uint64
	if n := len(t.open); n > 0 {
		parent = t.open[n-1].rec.id
	}
	now := t.rec.now()
	t.push(record{start: now, end: now, id: id, parent: parent, op: op})
}

// push stores a completed record, overwriting the oldest on overflow.
func (t *Track) push(rec record) {
	t.ring[t.n%uint64(len(t.ring))] = rec
	t.n++
}

// trackKey is the context key for the goroutine's current track.
type trackKey struct{}

// NewContext returns ctx carrying t, so replay layers below a worker can
// record onto the worker's track without new plumbing. A nil t returns
// ctx unchanged.
func NewContext(ctx context.Context, t *Track) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, trackKey{}, t)
}

// FromContext returns the track carried by ctx, or nil. The single-writer
// rule transfers with the context: only the goroutine currently driving
// the work the context scopes may record on the track.
func FromContext(ctx context.Context) *Track {
	if !Enabled() {
		return nil
	}
	t, _ := ctx.Value(trackKey{}).(*Track)
	return t
}

// Start begins a span on the context's track (no-op without one).
func Start(ctx context.Context, op Op, f Fields) Span {
	return FromContext(ctx).Begin(op, f)
}

// TrackSetter is implemented by consumers that can record spans onto the
// driving goroutine's track (the fused classifiers); trace.DriveContext
// injects its track into every consumer that implements it.
type TrackSetter interface {
	SetSpanTrack(*Track)
}
