package span

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strconv"
	"testing"
)

// buildSnapshot records a small two-track session with nesting and a
// flow pair, and returns its snapshot.
func buildSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	startForTest(t, 0)
	root := Root(OpExperiment, Fields{Note: "fig5"})
	id := NewFlowID()
	pump := Acquire("demux-pump")
	psp := pump.Begin(OpDemuxPump, Fields{})
	pump.FlowOut(id)
	work := Acquire("shard-consumer 0")
	wsp := work.Begin(OpShardConsume, Fields{Shard: 0})
	work.Begin(OpSegmentIO, Fields{Segment: 3, Depth: 1}).End()
	work.FlowIn(id)
	wsp.End()
	psp.End()
	Release(pump)
	Release(work)
	root.End()
	return StopRecording()
}

func TestWriteTraceEventPerfettoShape(t *testing.T) {
	snap := buildSnapshot(t)
	var buf bytes.Buffer
	if err := snap.WriteTraceEvent(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace_event output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	names := map[string]bool{}
	flows := map[string][]float64{} // flow id -> [s count, f count]
	lastTs := -1.0
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "M":
			continue
		case "X":
			ts := ev["ts"].(float64)
			if ts < lastTs {
				t.Fatalf("timestamps not monotonic: %f after %f", ts, lastTs)
			}
			lastTs = ts
			if dur, ok := ev["dur"].(float64); !ok || dur < 0 {
				t.Fatalf("X event without non-negative dur: %v", ev)
			}
			names[ev["name"].(string)] = true
		case "s", "f":
			id, ok := ev["id"].(float64)
			if !ok {
				t.Fatalf("flow event without id: %v", ev)
			}
			k := strconv.FormatFloat(id, 'g', -1, 64)
			c := flows[k]
			if len(c) == 0 {
				c = []float64{0, 0}
			}
			if ph == "s" {
				c[0]++
			} else {
				c[1]++
			}
			flows[k] = c
		default:
			t.Fatalf("unexpected ph %q", ph)
		}
	}
	for _, want := range []string{"experiment", "demux.pump", "shard.consume", "tracestore.segment_io"} {
		if !names[want] {
			t.Fatalf("missing X event %q; have %v", want, names)
		}
	}
	for id, c := range flows {
		if c[0] != c[1] {
			t.Fatalf("flow %q unbalanced: %v s vs %v f", id, c[0], c[1])
		}
	}
	if len(flows) != 1 {
		t.Fatalf("got %d flows, want 1", len(flows))
	}
	// Thread metadata names every track.
	labels := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" && ev["name"] == "thread_name" {
			args := ev["args"].(map[string]any)
			labels[args["name"].(string)] = true
		}
	}
	for _, want := range []string{"main", "demux-pump", "shard-consumer 0"} {
		if !labels[want] {
			t.Fatalf("missing thread_name %q; have %v", want, labels)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	snap := buildSnapshot(t)
	var buf bytes.Buffer
	if err := snap.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("empty JSONL output")
	}
	var hdr jsonlHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("bad header line: %v", err)
	}
	if hdr.Schema != JSONLSchema {
		t.Fatalf("schema = %q, want %q", hdr.Schema, JSONLSchema)
	}
	lines := 0
	sawSegment := false
	for sc.Scan() {
		var line jsonlSpan
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		if line.Op == "" || line.Track == "" {
			t.Fatalf("span line missing op/track: %q", sc.Text())
		}
		if line.Op == "tracestore.segment_io" {
			sawSegment = true
			if line.Attrs["segment"] != float64(3) || line.Attrs["depth"] != float64(1) {
				t.Fatalf("segment span attrs = %v", line.Attrs)
			}
		}
		lines++
	}
	if lines != hdr.Spans {
		t.Fatalf("header says %d spans, file has %d lines", hdr.Spans, lines)
	}
	if !sawSegment {
		t.Fatal("no tracestore.segment_io span in JSONL log")
	}
}
