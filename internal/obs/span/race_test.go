package span

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestConcurrentTracksRace hammers the recorder from many goroutines —
// each with its own Acquired track, plus shared flow-id allocation and
// track recycling — and checks the snapshot is sane. Run under -race this
// is the recorder's data-race suite: single-writer tracks, the locked
// freelist and the atomic id sequences are the only sharing.
func TestConcurrentTracksRace(t *testing.T) {
	startForTest(t, 256)
	const workers = 8
	const rounds = 4
	const spansPerWorker = 300

	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				tr := Acquiref("worker", w)
				defer Release(tr)
				for i := 0; i < spansPerWorker; i++ {
					sp := tr.Begin(OpCell, Fields{Cell: int32(i)})
					inner := tr.Begin(OpDrive, Fields{})
					tr.FlowOut(NewFlowID())
					inner.End()
					sp.End()
				}
			}(w)
		}
		wg.Wait()
	}

	snap := StopRecording()
	if snap == nil {
		t.Fatal("no snapshot")
	}
	// Tracks are recycled by label: exactly main + workers tracks exist.
	if got, want := len(snap.Tracks), workers+1; got != want {
		t.Fatalf("got %d tracks, want %d (recycling failed)", got, want)
	}
	var total uint64
	for _, ts := range snap.Tracks {
		total += uint64(len(ts.Spans)) + ts.Lost
	}
	// 3 records per iteration (2 spans + 1 flow endpoint).
	if want := uint64(workers * rounds * spansPerWorker * 3); total != want {
		t.Fatalf("retained+lost = %d records, want %d", total, want)
	}
}

// TestNoGoroutineLeak checks the recorder itself spawns nothing: start,
// record, stop, and the goroutine count returns to baseline.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	startForTest(t, 0)
	tr := Acquire("w")
	tr.Begin(OpCell, Fields{}).End()
	Release(tr)
	StopRecording()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after stop", before, runtime.NumGoroutine())
}
