package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SpanRecord is one exported span.
type SpanRecord struct {
	// Op names what the span measured (see Op.String).
	Op string `json:"op"`
	// ID is the process-unique span id (for flow records, the flow id).
	ID uint64 `json:"id"`
	// Parent is the enclosing span's id on the same track, 0 at top level.
	Parent uint64 `json:"parent,omitempty"`
	// StartNs/DurNs are relative to the recording epoch.
	StartNs int64 `json:"start_ns"`
	DurNs   int64 `json:"dur_ns"`
	// Flow marks flow endpoint records: "out" or "in".
	Flow string `json:"flow,omitempty"`

	Fields Fields `json:"-"`
}

// TrackSnapshot is one track's retained timeline.
type TrackSnapshot struct {
	// ID is the track's stable index (the exported tid).
	ID int `json:"tid"`
	// Label is the track's name ("main", "sweep-worker 3", ...).
	Label string `json:"track"`
	// Spans are the retained records sorted by start time (parents before
	// children on start-time ties).
	Spans []SpanRecord `json:"spans"`
	// Lost counts records this track lost: ring overwrites plus open-stack
	// overflow drops.
	Lost uint64 `json:"lost,omitempty"`
}

// Snapshot is a stopped recording: the input of both exporters.
type Snapshot struct {
	Tracks []TrackSnapshot
	// Lost is the sum of every track's Lost.
	Lost uint64
}

// snapshot drains the recorder: still-open spans are closed at the stop
// instant, each ring's retained records are copied out oldest-first and
// sorted by start.
func (r *Recorder) snapshot() *Snapshot {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{Tracks: make([]TrackSnapshot, 0, len(r.tracks))}
	for _, t := range r.tracks {
		for len(t.open) > 0 {
			o := t.open[len(t.open)-1]
			t.open = t.open[:len(t.open)-1]
			o.rec.end = now
			t.push(o.rec)
		}
		kept := t.n
		if kept > uint64(len(t.ring)) {
			kept = uint64(len(t.ring))
		}
		lost := t.dropped + (t.n - kept)
		ts := TrackSnapshot{ID: t.id, Label: t.label, Lost: lost,
			Spans: make([]SpanRecord, 0, kept)}
		for i := uint64(0); i < kept; i++ {
			rec := t.ring[(t.n-kept+i)%uint64(len(t.ring))]
			sr := SpanRecord{
				Op:      rec.op.String(),
				ID:      rec.id,
				Parent:  rec.parent,
				StartNs: rec.start,
				DurNs:   rec.end - rec.start,
				Fields:  rec.fields,
			}
			switch rec.op {
			case opFlowOut:
				sr.Flow = "out"
			case opFlowIn:
				sr.Flow = "in"
			}
			ts.Spans = append(ts.Spans, sr)
		}
		sort.SliceStable(ts.Spans, func(a, b int) bool {
			x, y := ts.Spans[a], ts.Spans[b]
			if x.StartNs != y.StartNs {
				return x.StartNs < y.StartNs
			}
			if x.DurNs != y.DurNs {
				return x.DurNs > y.DurNs // parents before children
			}
			return x.ID < y.ID
		})
		s.Tracks = append(s.Tracks, ts)
		s.Lost += lost
	}
	return s
}

// args builds the trace_event args / JSONL attribute map for a record;
// nil when the record has no set attributes.
func (sr SpanRecord) args(mask uint8) map[string]any {
	var m map[string]any
	set := func(k string, v any) {
		if m == nil {
			m = make(map[string]any, 4)
		}
		m[k] = v
	}
	f := sr.Fields
	if f.Workload != "" {
		set("workload", f.Workload)
	}
	if f.Scheme != "" {
		set("scheme", f.Scheme)
	}
	if f.Note != "" {
		set("note", f.Note)
	}
	if mask&fBlock != 0 {
		set("block", f.Block)
	}
	if mask&fCell != 0 {
		set("cell", f.Cell)
	}
	if mask&fShard != 0 {
		set("shard", f.Shard)
	}
	if mask&fSegment != 0 {
		set("segment", f.Segment)
	}
	if mask&fLevel != 0 {
		set("level", f.Level)
	}
	if mask&fDepth != 0 {
		set("depth", f.Depth)
	}
	return m
}

// maskOf maps an exported op name back to its field mask.
var maskOf = func() map[string]uint8 {
	m := make(map[string]uint8, int(numOps))
	for op := Op(0); op < numOps; op++ {
		m[op.String()] = opFieldMask[op]
	}
	return m
}()

// traceEvent is one Chrome trace_event JSON object. The format is the
// Trace Event Format's JSON flavor: "X" complete events carry ts+dur,
// "M" metadata events name the threads, and "s"/"f" pairs with a shared
// id draw flow arrows between tracks. Perfetto and chrome://tracing load
// the {"traceEvents": [...]} container directly.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   *uint64        `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteTraceEvent exports the snapshot as Chrome trace_event JSON: one
// named thread per track, one "X" complete event per span, and "s"/"f"
// flow pairs for the recorded flow endpoints. Events are globally sorted
// by timestamp (metadata first), so viewers and the schema test see a
// monotonic stream.
func (s *Snapshot) WriteTraceEvent(w io.Writer) error {
	var meta, events []traceEvent
	for _, ts := range s.Tracks {
		tid := ts.ID
		meta = append(meta,
			traceEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": ts.Label}},
			traceEvent{Name: "thread_sort_index", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"sort_index": tid}},
		)
		for _, sr := range ts.Spans {
			us := float64(sr.StartNs) / 1e3
			if sr.Flow != "" {
				ph, bp := "s", ""
				if sr.Flow == "in" {
					ph, bp = "f", "e"
				}
				id := sr.ID
				events = append(events, traceEvent{
					Name: "demux.batch", Cat: "flow", Ph: ph, Ts: us,
					Pid: 1, Tid: tid, ID: &id, BP: bp,
				})
				continue
			}
			dur := float64(sr.DurNs) / 1e3
			events = append(events, traceEvent{
				Name: sr.Op, Cat: "uselessmiss", Ph: "X", Ts: us, Dur: &dur,
				Pid: 1, Tid: tid, Args: sr.args(maskOf[sr.Op]),
			})
		}
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].Ts < events[b].Ts })

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev traceEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(data)
		return err
	}
	for _, ev := range meta {
		if err := emit(ev); err != nil {
			return err
		}
	}
	for _, ev := range events {
		if err := emit(ev); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// JSONLSchema identifies the JSONL span-log layout.
const JSONLSchema = "uselessmiss/spans/v1"

// jsonlHeader is the first line of a span log.
type jsonlHeader struct {
	Schema string `json:"schema"`
	Tracks int    `json:"tracks"`
	Spans  int    `json:"spans"`
	Lost   uint64 `json:"lost"`
}

// jsonlSpan is one span line: the record plus its track identity and
// flattened attributes.
type jsonlSpan struct {
	Track   string         `json:"track"`
	Tid     int            `json:"tid"`
	Op      string         `json:"op"`
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Flow    string         `json:"flow,omitempty"`
	StartNs int64          `json:"start_ns"`
	DurNs   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// WriteJSONL exports the snapshot as a compact JSONL log: a schema header
// line, then one object per span in track order (each track's spans are
// start-sorted). encoding/json sorts map keys, so the bytes are
// deterministic given deterministic timings.
func (s *Snapshot) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	total := 0
	for _, ts := range s.Tracks {
		total += len(ts.Spans)
	}
	if err := enc.Encode(jsonlHeader{Schema: JSONLSchema, Tracks: len(s.Tracks), Spans: total, Lost: s.Lost}); err != nil {
		return err
	}
	for _, ts := range s.Tracks {
		for _, sr := range ts.Spans {
			line := jsonlSpan{
				Track: ts.Label, Tid: ts.ID, Op: sr.Op, ID: sr.ID,
				Parent: sr.Parent, Flow: sr.Flow,
				StartNs: sr.StartNs, DurNs: sr.DurNs,
				Attrs: sr.args(maskOf[sr.Op]),
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Summary renders a one-line digest for logs.
func (s *Snapshot) Summary() string {
	total := 0
	for _, ts := range s.Tracks {
		total += len(ts.Spans)
	}
	return fmt.Sprintf("%d spans on %d tracks (%d lost)", total, len(s.Tracks), s.Lost)
}
