package span

import (
	"context"
	"testing"
)

// stopRecording tears recording down even when the test already stopped
// it, keeping tests independent (the gate is process-global).
func startForTest(t *testing.T, ringSize int) *Recorder {
	t.Helper()
	r := StartRecording(ringSize)
	t.Cleanup(func() { StopRecording() })
	return r
}

func TestDisabledPathIsInert(t *testing.T) {
	if Enabled() {
		t.Fatal("recording unexpectedly enabled at test start")
	}
	if tr := Acquire("w"); tr != nil {
		t.Fatalf("Acquire = %v, want nil when disabled", tr)
	}
	if tr := Acquiref("w", 3); tr != nil {
		t.Fatalf("Acquiref = %v, want nil when disabled", tr)
	}
	if tr := Main(); tr != nil {
		t.Fatalf("Main = %v, want nil when disabled", tr)
	}
	if now := Now(); now != 0 {
		t.Fatalf("Now = %d, want 0 when disabled", now)
	}
	if id := NewFlowID(); id != 0 {
		t.Fatalf("NewFlowID = %d, want 0 when disabled", id)
	}
	// All of these must be no-ops on nil receivers / zero values.
	sp := Root(OpDrive, Fields{Workload: "LU32"})
	sp.End()
	var tr *Track
	tr.Emit(OpCellWait, Fields{}, 0)
	tr.FlowOut(7)
	tr.FlowIn(7)
	ctx := NewContext(context.Background(), nil)
	if got := FromContext(ctx); got != nil {
		t.Fatalf("FromContext = %v, want nil", got)
	}
	Start(ctx, OpCell, Fields{}).End()
}

func TestDisabledZeroAlloc(t *testing.T) {
	if Enabled() {
		t.Fatal("recording unexpectedly enabled")
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := Root(OpDrive, Fields{Workload: "LU32"})
		sp.End()
		tr := Acquiref("worker", 5)
		Release(tr)
		Start(ctx, OpCell, Fields{Cell: 1}).End()
		_ = Now()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f per op, want 0", allocs)
	}
}

func TestNestingParentsAndDurations(t *testing.T) {
	startForTest(t, 0)
	tr := Acquire("worker")
	outer := tr.Begin(OpCell, Fields{Cell: 2})
	inner := tr.Begin(OpDrive, Fields{})
	inner.End()
	outer.End()
	Release(tr)

	snap := StopRecording()
	if snap == nil {
		t.Fatal("StopRecording = nil")
	}
	var spans []SpanRecord
	for _, ts := range snap.Tracks {
		if ts.Label == "worker" {
			spans = ts.Spans
		}
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Start-sorted: the outer cell span first.
	if spans[0].Op != "sweep.cell" || spans[1].Op != "trace.drive" {
		t.Fatalf("span order = %s, %s", spans[0].Op, spans[1].Op)
	}
	if spans[1].Parent != spans[0].ID {
		t.Fatalf("inner parent = %d, want outer id %d", spans[1].Parent, spans[0].ID)
	}
	if spans[0].Parent != 0 {
		t.Fatalf("outer parent = %d, want 0", spans[0].Parent)
	}
	for _, s := range spans {
		if s.DurNs < 0 {
			t.Fatalf("span %s has negative duration %d", s.Op, s.DurNs)
		}
	}
	if spans[0].Fields.Cell != 2 {
		t.Fatalf("cell attribute = %d, want 2", spans[0].Fields.Cell)
	}
}

func TestEndClosesAbandonedChildren(t *testing.T) {
	startForTest(t, 0)
	tr := Acquire("w")
	outer := tr.Begin(OpCell, Fields{})
	tr.Begin(OpDrive, Fields{}) // never explicitly ended
	outer.End()
	if got := len(tr.open); got != 0 {
		t.Fatalf("open stack depth after outer End = %d, want 0", got)
	}
	snap := StopRecording()
	if n := len(snap.Tracks[1].Spans); n != 2 {
		t.Fatalf("got %d spans, want 2 (child closed by parent End)", n)
	}
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	startForTest(t, 0)
	tr := Acquire("w")
	sp := tr.Begin(OpCell, Fields{})
	sp.End()
	sp.End() // must not pop anything else
	sp2 := tr.Begin(OpDrive, Fields{})
	sp.End() // stale handle at depth 1 would wrongly pop sp2...
	sp2.End()
	snap := StopRecording()
	var n int
	for _, ts := range snap.Tracks {
		n += len(ts.Spans)
	}
	// The stale End does pop sp2 early (same depth) — that is the
	// documented cost of depth-based handles; what matters is that no
	// record is lost and the stack never underflows.
	if n != 2 {
		t.Fatalf("got %d spans, want 2", n)
	}
}

func TestRingOverflowKeepsNewest(t *testing.T) {
	startForTest(t, 8)
	tr := Acquire("w")
	for i := 0; i < 20; i++ {
		tr.Begin(OpCell, Fields{Cell: int32(i)}).End()
	}
	snap := StopRecording()
	var ts TrackSnapshot
	for _, cand := range snap.Tracks {
		if cand.Label == "w" {
			ts = cand
		}
	}
	if len(ts.Spans) != 8 {
		t.Fatalf("retained %d spans, want ring size 8", len(ts.Spans))
	}
	if ts.Lost != 12 {
		t.Fatalf("Lost = %d, want 12", ts.Lost)
	}
	// Newest-wins: cells 12..19 retained.
	for i, s := range ts.Spans {
		if want := int32(12 + i); s.Fields.Cell != want {
			t.Fatalf("span %d cell = %d, want %d", i, s.Fields.Cell, want)
		}
	}
}

func TestOpenStackOverflowDrops(t *testing.T) {
	startForTest(t, 0)
	tr := Acquire("w")
	spans := make([]Span, 0, maxOpenDepth+5)
	for i := 0; i < maxOpenDepth+5; i++ {
		spans = append(spans, tr.Begin(OpCell, Fields{}))
	}
	for i := len(spans) - 1; i >= 0; i-- {
		spans[i].End()
	}
	snap := StopRecording()
	var ts TrackSnapshot
	for _, cand := range snap.Tracks {
		if cand.Label == "w" {
			ts = cand
		}
	}
	if len(ts.Spans) != maxOpenDepth {
		t.Fatalf("retained %d spans, want %d", len(ts.Spans), maxOpenDepth)
	}
	if ts.Lost != 5 {
		t.Fatalf("Lost = %d, want 5 dropped Begins", ts.Lost)
	}
}

func TestEmitRecordsQueueWait(t *testing.T) {
	startForTest(t, 0)
	submit := Now()
	tr := Acquire("w")
	tr.Emit(OpCellWait, Fields{Cell: 7}, submit)
	snap := StopRecording()
	var ts TrackSnapshot
	for _, cand := range snap.Tracks {
		if cand.Label == "w" {
			ts = cand
		}
	}
	if len(ts.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(ts.Spans))
	}
	s := ts.Spans[0]
	if s.Op != "sweep.cell_wait" || s.StartNs != submit || s.DurNs < 0 {
		t.Fatalf("unexpected wait span %+v", s)
	}
}

func TestStopClosesOpenSpans(t *testing.T) {
	startForTest(t, 0)
	Root(OpExperiment, Fields{Note: "fig5"})
	snap := StopRecording()
	main := snap.Tracks[0]
	if main.Label != "main" || len(main.Spans) != 1 {
		t.Fatalf("main track = %q with %d spans, want 1 open span closed at stop", main.Label, len(main.Spans))
	}
	if snap2 := StopRecording(); snap2 != nil {
		t.Fatalf("second StopRecording = %v, want nil", snap2)
	}
}

func TestAcquireReleaseReusesTracks(t *testing.T) {
	startForTest(t, 0)
	a := Acquire("sweep-worker 0")
	Release(a)
	b := Acquire("sweep-worker 0")
	if a != b {
		t.Fatalf("released track was not reused for the same label")
	}
	c := Acquire("sweep-worker 1")
	if c == b {
		t.Fatal("distinct labels shared a track")
	}
	Release(b)
	Release(c)
	snap := StopRecording()
	if got := len(snap.Tracks); got != 3 { // main + two workers
		t.Fatalf("got %d tracks, want 3", got)
	}
}

func TestFlowEndpoints(t *testing.T) {
	startForTest(t, 0)
	id := NewFlowID()
	prod := Acquire("pump")
	cons := Acquire("consumer")
	prod.FlowOut(id)
	cons.FlowIn(id)
	Release(prod)
	Release(cons)
	snap := StopRecording()
	var out, in int
	for _, ts := range snap.Tracks {
		for _, s := range ts.Spans {
			switch s.Flow {
			case "out":
				out++
				if s.ID != id {
					t.Fatalf("flow-out id = %d, want %d", s.ID, id)
				}
			case "in":
				in++
				if s.ID != id {
					t.Fatalf("flow-in id = %d, want %d", s.ID, id)
				}
			}
		}
	}
	if out != 1 || in != 1 {
		t.Fatalf("flow endpoints out=%d in=%d, want 1/1", out, in)
	}
}

func TestContextPlumbing(t *testing.T) {
	startForTest(t, 0)
	tr := Acquire("worker")
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %v, want the installed track", got)
	}
	Start(ctx, OpReplay, Fields{Workload: "LU32", Block: 64}).End()
	Release(tr)
	snap := StopRecording()
	var found bool
	for _, ts := range snap.Tracks {
		for _, s := range ts.Spans {
			if s.Op == "cell.replay" && s.Fields.Workload == "LU32" && s.Fields.Block == 64 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("replay span with workload/block attributes not recorded")
	}
}
