package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServer(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// A known counter must show up in /metrics, /metrics.json and
	// /debug/vars.
	Default.Counter("obs.debug_test.pings").Inc()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "uselessmiss_obs_debug_test_pings_total") {
		t.Errorf("/metrics missing Prometheus counter:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE uselessmiss_obs_debug_test_pings_total counter") {
		t.Error("/metrics missing TYPE line for the counter")
	}

	code, body = get(t, base+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", code)
	}
	var rep RunReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/metrics.json is not a run report: %v\n%s", err, body)
	}
	if rep.Deterministic.Counters["obs.debug_test.pings"] == 0 {
		t.Error("/metrics.json missing registry counter")
	}

	if code, body := get(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz = %d, want 200", code)
	}
	SetReady(false)
	if code, _ := get(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after SetReady(false) = %d, want 503", code)
	}
	SetReady(true)
	if code, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after SetReady(true) = %d, want 200", code)
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	if !strings.Contains(body, `"uselessmiss"`) || !strings.Contains(body, "obs.debug_test.pings") {
		t.Error("/debug/vars missing the published registry")
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		if code, _ := get(t, base+path); code != http.StatusOK {
			t.Errorf("%s status %d", path, code)
		}
	}

	// A second server must not re-publish the expvar (Publish panics on
	// duplicates) and binds its own port.
	srv2, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if srv2.Addr() == srv.Addr() {
		t.Error("second debug server reused the address")
	}
}

func TestRunTimerGauges(t *testing.T) {
	reg := NewRegistry()
	timer := StartRunTimer(reg)
	reg.Counter(NameDriveRefs).Add(1000)
	reg.TimingCounter(NameSweepBusyNs).Add(uint64(2 * time.Millisecond))
	time.Sleep(5 * time.Millisecond)
	if d := timer.Stop(); d <= 0 {
		t.Fatalf("Stop returned %v", d)
	}
	wall := reg.Gauge(NameRunWallSeconds).Value()
	if wall <= 0 {
		t.Fatalf("wall seconds gauge = %v", wall)
	}
	rate := reg.Gauge(NameRunRefsPerSec).Value()
	if rate <= 0 || rate > 1000/wall*1.01 {
		t.Errorf("refs/s gauge = %v (wall %v)", rate, wall)
	}
	if util := reg.Gauge(NameRunUtilization).Value(); util <= 0 || util > 1 {
		t.Errorf("utilization gauge = %v", util)
	}
	_ = fmt.Sprintf("%s", reg.Report()) // String smoke
}
