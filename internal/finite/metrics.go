package finite

import (
	"repro/internal/obs"
)

// Data references classified under the finite-cache model, added once per
// classifier Finish. Invariant across -j and -shards for the same reason
// the core counters are: each data reference is classified on exactly one
// shard.
var mFiniteRefs = obs.Default.Counter(obs.NameFiniteRefs)
