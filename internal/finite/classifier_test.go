package finite

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

func classifyFinite(t *testing.T, tr *trace.Trace, g mem.Geometry, cfg Config) core.Counts {
	t.Helper()
	counts, _, err := Classify(tr.Reader(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return counts
}

func TestReplacementMissDetected(t *testing.T) {
	g := mem.MustGeometry(32)
	// One processor, a cache of exactly one 32-byte block: touching a
	// second block evicts the first, and returning to it is a
	// replacement miss.
	tr := trace.New(1,
		trace.L(0, 0), // cold (block 0)
		trace.L(0, 8), // cold (block 1), evicts block 0
		trace.L(0, 0), // replacement miss, evicts block 1
		trace.L(0, 8), // replacement miss
	)
	counts := classifyFinite(t, tr, g, Config{CapacityBytes: 32, Assoc: 1})
	want := core.Counts{PC: 2, Repl: 2}
	if counts != want {
		t.Errorf("got %+v, want %+v", counts, want)
	}
	if counts.Essential() != 4 || counts.Total() != 4 {
		t.Errorf("replacement misses must be essential: %+v", counts)
	}
}

func TestInvalidationAfterEvictionIsCoherenceMiss(t *testing.T) {
	g := mem.MustGeometry(8)
	// P0's copy of block 0 is evicted, then P1 modifies word 0. P0's
	// re-miss reads the new value: a PTS miss, not a replacement miss
	// (an infinite cache would miss here too).
	tr := trace.New(2,
		trace.L(0, 0),  // P0 cold (block 0)
		trace.L(0, 16), // P0 cold (block 8, same set), evicts block 0
		trace.S(1, 0),  // P1 cold store; P0 holds nothing to invalidate
		trace.L(0, 0),  // P0 misses; new value -> PTS
	)
	counts := classifyFinite(t, tr, g, Config{CapacityBytes: 8, Assoc: 1})
	if counts.Repl != 0 {
		t.Errorf("eviction+invalidation misclassified as replacement: %+v", counts)
	}
	if counts.PTS != 1 {
		t.Errorf("expected one PTS miss: %+v", counts)
	}
}

func TestEvictionWithoutModificationIsReplacement(t *testing.T) {
	g := mem.MustGeometry(8)
	tr := trace.New(2,
		trace.L(0, 0),
		trace.L(1, 0),  // P1 shares the block
		trace.L(0, 16), // evicts P0's copy (same set, one-way cache)
		trace.L(0, 0),  // P0 replacement miss (value unchanged)
	)
	counts := classifyFinite(t, tr, g, Config{CapacityBytes: 8, Assoc: 1})
	if counts.Repl != 1 {
		t.Errorf("expected one replacement miss: %+v", counts)
	}
}

// With a cache large enough to hold the whole footprint, the finite
// classification must degenerate to the infinite-cache classification.
func TestLargeCacheMatchesInfinite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := trace.New(4)
		for i := 0; i < 500; i++ {
			p := rng.Intn(4)
			a := mem.Addr(rng.Intn(64))
			if rng.Intn(3) == 0 {
				tr.Append(trace.S(p, a))
			} else {
				tr.Append(trace.L(p, a))
			}
		}
		for _, b := range []int{8, 32} {
			g := mem.MustGeometry(b)
			finite, _, err := Classify(tr.Reader(), g, Config{CapacityBytes: 1 << 16, Assoc: 4})
			if err != nil {
				return false
			}
			infinite, _, err := core.Classify(tr.Reader(), g)
			if err != nil {
				return false
			}
			if finite != infinite {
				t.Logf("B=%d: finite %+v != infinite %+v", b, finite, infinite)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Shrinking the cache can only move misses toward more essential misses:
// total misses grow, and the §8 expectation holds — the essential fraction
// increases as the cache shrinks.
func TestSmallerCachesRaiseEssentialFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := trace.New(4)
	for i := 0; i < 20000; i++ {
		p := rng.Intn(4)
		a := mem.Addr(rng.Intn(2048))
		if rng.Intn(4) == 0 {
			tr.Append(trace.S(p, a))
		} else {
			tr.Append(trace.L(p, a))
		}
	}
	g := mem.MustGeometry(32)
	var prevTotal uint64
	var prevFraction float64
	for i, capacity := range []int{1 << 14, 1 << 12, 1 << 10, 1 << 8} {
		counts, _, err := Classify(tr.Reader(), g, Config{CapacityBytes: capacity, Assoc: 2})
		if err != nil {
			t.Fatal(err)
		}
		fraction := float64(counts.Essential()) / float64(counts.Total())
		if i > 0 {
			if counts.Total() < prevTotal {
				t.Errorf("capacity %d: total misses fell from %d to %d",
					capacity, prevTotal, counts.Total())
			}
			if fraction+1e-9 < prevFraction {
				t.Errorf("capacity %d: essential fraction fell from %.3f to %.3f",
					capacity, prevFraction, fraction)
			}
		}
		prevTotal, prevFraction = counts.Total(), fraction
	}
}

func TestClassifierRejectsBadConfig(t *testing.T) {
	g := mem.MustGeometry(32)
	if _, err := NewClassifier(2, g, Config{CapacityBytes: 48, Assoc: 1}); err == nil {
		t.Error("bad capacity accepted")
	}
	if _, _, err := Classify(trace.New(1).Reader(), g, Config{CapacityBytes: 0, Assoc: 1}); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestPoliciesAllWork(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := trace.New(2)
	for i := 0; i < 5000; i++ {
		tr.Append(trace.L(rng.Intn(2), mem.Addr(rng.Intn(512))))
	}
	g := mem.MustGeometry(32)
	for _, policy := range []Policy{LRU, FIFO, Random} {
		counts, refs, err := Classify(tr.Reader(), g, Config{CapacityBytes: 512, Assoc: 2, Policy: policy})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if refs != 5000 {
			t.Errorf("%v: refs = %d", policy, refs)
		}
		if counts.Repl == 0 {
			t.Errorf("%v: tiny cache produced no replacement misses: %+v", policy, counts)
		}
		if counts.PFS != 0 || counts.PTS != 0 {
			t.Errorf("%v: read-only trace produced sharing misses: %+v", policy, counts)
		}
	}
}
