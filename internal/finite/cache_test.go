package finite

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

var g32 = mem.MustGeometry(32)

func TestNewCacheValidation(t *testing.T) {
	cases := []struct {
		capacity, assoc int
		ok              bool
	}{
		{1024, 4, true},
		{32, 1, true},
		{128, 4, true},
		{0, 1, false},     // too small
		{1024, 0, false},  // bad assoc
		{1000, 4, false},  // not a multiple
		{96 * 4, 4, true}, // 3 sets? 384/128 = 3 sets -> not power of two
	}
	for _, c := range cases {
		cache, err := NewCache(c.capacity, c.assoc, g32, LRU)
		got := err == nil
		want := c.ok
		// The 3-set case must fail the power-of-two check.
		if c.capacity == 96*4 {
			want = false
		}
		if got != want {
			t.Errorf("NewCache(%d,%d): err=%v, want ok=%v", c.capacity, c.assoc, err, want)
		}
		if err == nil && cache.CapacityBytes() != c.capacity {
			t.Errorf("capacity = %d, want %d", cache.CapacityBytes(), c.capacity)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || Random.String() != "Random" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy name wrong")
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 sets x 2 ways of 32-byte blocks = 128 bytes. Even blocks map to
	// set 0, odd to set 1.
	c, err := NewCache(128, 2, g32, LRU)
	if err != nil {
		t.Fatal(err)
	}
	if c.setsLog2() != 1 {
		t.Fatalf("sets = %d, want 2", 1<<c.setsLog2())
	}
	mustInsert := func(b mem.Block) (mem.Block, bool) {
		t.Helper()
		if c.Lookup(b) {
			t.Fatalf("block %d unexpectedly cached", b)
		}
		return c.Insert(b)
	}
	mustInsert(0)     // set 0
	mustInsert(2)     // set 0
	if !c.Lookup(0) { // touch 0: now 0 is MRU, 2 is LRU
		t.Fatal("0 missing")
	}
	evicted, ok := mustInsert(4) // set 0 full: evicts 2 (LRU)
	if !ok || evicted != 2 {
		t.Errorf("evicted %v/%v, want block 2", evicted, ok)
	}
	if !c.Contains(0) || !c.Contains(4) || c.Contains(2) {
		t.Error("post-eviction contents wrong")
	}
	if c.Blocks() != 2 {
		t.Errorf("Blocks = %d", c.Blocks())
	}
}

func TestFIFOEvictionIgnoresHits(t *testing.T) {
	c, err := NewCache(64, 2, g32, FIFO) // 1 set, 2 ways
	if err != nil {
		t.Fatal(err)
	}
	c.Insert(10)
	c.Insert(20)
	c.Lookup(10) // a hit must not refresh FIFO order
	evicted, ok := c.Insert(30)
	if !ok || evicted != 10 {
		t.Errorf("FIFO evicted %v/%v, want the oldest block 10", evicted, ok)
	}
}

func TestRandomEvictionDeterministic(t *testing.T) {
	run := func() []mem.Block {
		c, err := NewCache(128, 4, g32, Random) // 1 set? 128/(4*32)=1 set
		if err != nil {
			t.Fatal(err)
		}
		var evictions []mem.Block
		for b := mem.Block(0); b < 64; b++ {
			if c.Lookup(b) {
				continue
			}
			if e, ok := c.Insert(b); ok {
				evictions = append(evictions, e)
			}
		}
		return evictions
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no evictions")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Random policy is not deterministic")
		}
	}
}

func TestInvalidate(t *testing.T) {
	c, err := NewCache(128, 2, g32, LRU)
	if err != nil {
		t.Fatal(err)
	}
	c.Insert(0)
	c.Insert(2)
	if !c.Invalidate(0) {
		t.Error("Invalidate missed a cached block")
	}
	if c.Invalidate(0) {
		t.Error("Invalidate hit an uncached block")
	}
	if c.Contains(0) || !c.Contains(2) {
		t.Error("contents after invalidate wrong")
	}
	// The freed way is reused without eviction.
	if _, ok := c.Insert(4); ok {
		t.Error("insert into freed way evicted")
	}
}

func TestInsertCachedPanics(t *testing.T) {
	c, err := NewCache(128, 2, g32, LRU)
	if err != nil {
		t.Fatal(err)
	}
	c.Insert(0)
	defer func() {
		if recover() == nil {
			t.Error("double insert did not panic")
		}
	}()
	c.Insert(0)
}

// A cache never holds more blocks than its capacity, and lookups after
// insert always hit until eviction or invalidation.
func TestCacheInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		c, err := NewCache(256, 2, g32, LRU)
		if err != nil {
			return false
		}
		maxBlocks := 256 / 32
		for _, op := range ops {
			b := mem.Block(op % 64)
			switch op % 3 {
			case 0, 1:
				if !c.Lookup(b) {
					c.Insert(b)
				}
				if !c.Contains(b) {
					return false
				}
			case 2:
				c.Invalidate(b)
				if c.Contains(b) {
					return false
				}
			}
			if c.Blocks() > maxBlocks {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
