package finite

import (
	"context"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Classifier extends the paper's Appendix A classification to finite
// caches (§8): each processor runs a set-associative cache; an access whose
// block was evicted since the last fetch is a replacement miss (essential
// by definition), while coherence misses keep their PTS/PFS split and the
// first miss per (processor, block) stays a cold miss. Invalidations follow
// the on-the-fly schedule, like the infinite-cache Classifier.
type Classifier struct {
	life     *core.Lifetimes
	geom     mem.Geometry
	caches   []*Cache
	present  *dense.Map[uint64] // procs whose cached copy is coherent
	dataRefs uint64
}

// Config describes the per-processor cache.
type Config struct {
	// CapacityBytes is each processor's cache size.
	CapacityBytes int
	// Assoc is the set associativity (1 = direct mapped).
	Assoc int
	// Policy selects the replacement policy (default LRU).
	Policy Policy
}

// NewClassifier returns a finite-cache classifier for procs processors.
func NewClassifier(procs int, g mem.Geometry, cfg Config) (*Classifier, error) {
	c := &Classifier{
		life:    core.NewLifetimes(procs, g),
		geom:    g,
		caches:  make([]*Cache, procs),
		present: dense.NewMap[uint64](0),
	}
	for p := range c.caches {
		cache, err := NewCache(cfg.CapacityBytes, cfg.Assoc, g, cfg.Policy)
		if err != nil {
			return nil, err
		}
		c.caches[p] = cache
	}
	return c, nil
}

// Ref implements trace.Consumer.
func (c *Classifier) Ref(r trace.Ref) {
	switch r.Kind {
	case trace.Load:
		c.access(int(r.Proc), r.Addr, false)
	case trace.Store:
		c.access(int(r.Proc), r.Addr, true)
	}
}

func (c *Classifier) access(p int, a mem.Addr, store bool) {
	c.dataRefs++
	b := c.geom.BlockOf(a)
	bit := uint64(1) << uint(p)
	cache := c.caches[p]

	if !cache.Lookup(b) {
		// Miss: close the stale lifetime as a replacement if the
		// copy was evicted (an invalidation already closed it).
		c.life.OpenMiss(p, a)
		if evicted, ok := cache.Insert(b); ok {
			c.evict(p, evicted)
		}
		// Re-resolve after evict: its insert may have grown the table.
		pb, _ := c.present.GetOrPut(uint64(b))
		*pb |= bit
	}
	c.life.Access(p, a)

	if !store {
		return
	}
	// Invalidate every other processor: cached copies are removed and
	// their lifetimes classified; already-evicted copies lose a pending
	// replacement mark (the next miss would happen regardless of cache
	// size, so it is a coherence miss).
	pb, _ := c.present.GetOrPut(uint64(b))
	for q := 0; q < len(c.caches); q++ {
		if q == p {
			continue
		}
		c.life.CloseInvalidate(q, b)
		if *pb&(1<<uint(q)) != 0 {
			c.caches[q].Invalidate(b)
		}
	}
	*pb = bit
	c.life.RecordStore(p, a)
}

// RefBatch implements trace.BatchConsumer.
func (c *Classifier) RefBatch(refs []trace.Ref) {
	for _, r := range refs {
		c.Ref(r)
	}
}

// evict closes the lifetime of a replaced block so the processor's next
// miss on it counts as a replacement miss.
func (c *Classifier) evict(p int, b mem.Block) {
	if pb := c.present.Get(uint64(b)); pb != nil {
		*pb &^= uint64(1) << uint(p)
	}
	c.life.CloseReplace(p, b)
}

// DataRefs returns the number of data references classified so far.
func (c *Classifier) DataRefs() uint64 { return c.dataRefs }

// Finish classifies the remaining open lifetimes and returns the totals,
// including the Repl component.
func (c *Classifier) Finish() core.Counts {
	mFiniteRefs.Add(c.dataRefs)
	return c.life.Finish()
}

// Classify runs the finite-cache classification over a trace stream.
func Classify(r trace.Reader, g mem.Geometry, cfg Config) (core.Counts, uint64, error) {
	return ClassifyContext(context.Background(), r, g, cfg)
}

// ClassifyContext is Classify with a cancellation context, observed at batch
// granularity by the replay pump.
func ClassifyContext(ctx context.Context, r trace.Reader, g mem.Geometry, cfg Config) (core.Counts, uint64, error) {
	c, err := NewClassifier(r.NumProcs(), g, cfg)
	if err != nil {
		trace.CloseReader(r) //nolint:errcheck // error path cleanup
		return core.Counts{}, 0, err
	}
	if err := trace.DriveContext(ctx, r, c); err != nil {
		return core.Counts{}, 0, err
	}
	return c.Finish(), c.DataRefs(), nil
}
