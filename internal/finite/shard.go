package finite

import (
	"context"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

// ShardedClassify runs the finite-cache classification with the block
// space partitioned across shards parallel classifiers and merges the
// per-shard counts (including Repl) and data-reference counts.
//
// Unlike the infinite-cache classifiers, a finite cache couples blocks
// through replacement: LRU and FIFO evictions are decided within a cache
// set, so the partition must keep every block of a set on one shard. The
// shard key is therefore setIndex(block) % shards rather than
// block % shards — sets are independent under LRU and FIFO, so the merged
// counts equal Classify's for every shard count. The Random policy keeps a
// single xorshift stream across all sets, which no block partition can
// reproduce; it (and shards <= 1) falls back to the serial Classify.
func ShardedClassify(r trace.Reader, g mem.Geometry, cfg Config, shards int) (core.Counts, uint64, error) {
	return ShardedClassifyContext(context.Background(), r, g, cfg, shards)
}

// ShardedClassifyContext is ShardedClassify with a cancellation context; see
// core.RunShardedContext.
func ShardedClassifyContext(ctx context.Context, r trace.Reader, g mem.Geometry, cfg Config, shards int) (core.Counts, uint64, error) {
	if shards <= 1 || cfg.Policy == Random {
		return ClassifyContext(ctx, r, g, cfg)
	}
	procs := r.NumProcs()
	classifiers := make([]*Classifier, shards)
	for i := range classifiers {
		c, err := NewClassifier(procs, g, cfg)
		if err != nil {
			trace.CloseReader(r) //nolint:errcheck // error path cleanup
			return core.Counts{}, 0, err
		}
		classifiers[i] = c
	}
	// The constructors validated the geometry, so the set count is a
	// positive power of two.
	nsets := uint64(cfg.CapacityBytes / (cfg.Assoc * g.BlockBytes()))
	mask := nsets - 1
	key := func(ref trace.Ref) int {
		return int((uint64(g.BlockOf(ref.Addr)) & mask) % uint64(shards))
	}

	type res struct {
		counts core.Counts
		refs   uint64
	}
	out, err := core.RunShardedContext(ctx, r, shards, key,
		func(i int) *Classifier { return classifiers[i] },
		func(c *Classifier) res { return res{counts: c.Finish(), refs: c.DataRefs()} },
		func(a, b res) res { return res{counts: a.counts.Add(b.counts), refs: a.refs + b.refs} })
	if err != nil {
		return core.Counts{}, 0, err
	}
	return out.counts, out.refs, nil
}
