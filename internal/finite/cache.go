// Package finite implements the paper's §8 extension of the classification
// to finite caches: per-processor set-associative caches whose evictions
// introduce replacement misses. "A replacement miss is an essential miss
// since the value is needed to execute the program. Coherence misses can
// then be classified into PFS and PTS misses according to the algorithm in
// this paper."
package finite

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// Policy selects a victim within a cache set.
type Policy uint8

const (
	// LRU evicts the least recently used way.
	LRU Policy = iota
	// FIFO evicts the oldest-filled way, ignoring hits.
	FIFO
	// Random evicts a deterministically pseudo-random way.
	Random
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Cache is one processor's set-associative cache holding block identities
// (contents are irrelevant for miss classification).
type Cache struct {
	geom   mem.Geometry
	policy Policy
	assoc  int
	sets   []cacheSet
	mask   uint64 // set index mask
	rng    uint64 // Random policy state
}

type cacheSet struct {
	// ways holds block+1 per way (0 = empty), ordered most- to
	// least-recently used for LRU, newest to oldest for FIFO.
	ways []uint64
}

// NewCache returns a cache of the given total capacity and associativity.
// The capacity must be a power-of-two multiple of assoc*blockBytes.
func NewCache(capacityBytes, assoc int, g mem.Geometry, policy Policy) (*Cache, error) {
	if assoc < 1 {
		return nil, fmt.Errorf("finite: associativity %d < 1", assoc)
	}
	setBytes := assoc * g.BlockBytes()
	if capacityBytes < setBytes || capacityBytes%setBytes != 0 {
		return nil, fmt.Errorf("finite: capacity %d not a multiple of %d (assoc %d x block %d)",
			capacityBytes, setBytes, assoc, g.BlockBytes())
	}
	nsets := capacityBytes / setBytes
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("finite: %d sets is not a power of two", nsets)
	}
	sets := make([]cacheSet, nsets)
	backing := make([]uint64, nsets*assoc)
	for i := range sets {
		sets[i].ways = backing[i*assoc : (i+1)*assoc : (i+1)*assoc]
	}
	return &Cache{
		geom:   g,
		policy: policy,
		assoc:  assoc,
		sets:   sets,
		mask:   uint64(nsets - 1),
		rng:    0x2545f4914f6cdd1d,
	}, nil
}

// CapacityBytes returns the cache capacity.
func (c *Cache) CapacityBytes() int { return len(c.sets) * c.assoc * c.geom.BlockBytes() }

func (c *Cache) set(b mem.Block) *cacheSet { return &c.sets[uint64(b)&c.mask] }

// Lookup reports whether b is cached, updating recency on a hit.
func (c *Cache) Lookup(b mem.Block) bool {
	s := c.set(b)
	tag := uint64(b) + 1
	for i, w := range s.ways {
		if w != tag {
			continue
		}
		if c.policy == LRU && i > 0 {
			copy(s.ways[1:i+1], s.ways[:i])
			s.ways[0] = tag
		}
		return true
	}
	return false
}

// Contains reports whether b is cached without touching recency.
func (c *Cache) Contains(b mem.Block) bool {
	s := c.set(b)
	tag := uint64(b) + 1
	for _, w := range s.ways {
		if w == tag {
			return true
		}
	}
	return false
}

// Insert fills b into its set, evicting the policy's victim if the set is
// full. It returns the evicted block, if any. Inserting a block that is
// already present panics: callers must Lookup first.
func (c *Cache) Insert(b mem.Block) (evicted mem.Block, wasEvicted bool) {
	s := c.set(b)
	tag := uint64(b) + 1
	victim := -1
	for i, w := range s.ways {
		if w == tag {
			panic("finite: Insert of a cached block")
		}
		if w == 0 && victim < 0 {
			victim = i
		}
	}
	if victim < 0 {
		switch c.policy {
		case Random:
			c.rng ^= c.rng << 13
			c.rng ^= c.rng >> 7
			c.rng ^= c.rng << 17
			victim = int(c.rng % uint64(c.assoc))
		default: // LRU and FIFO both evict the last slot
			victim = c.assoc - 1
		}
		evicted = mem.Block(s.ways[victim] - 1)
		wasEvicted = true
	}
	// Move the victim slot to the front (newest) position.
	copy(s.ways[1:victim+1], s.ways[:victim])
	s.ways[0] = tag
	return evicted, wasEvicted
}

// Invalidate removes b if present and reports whether it was cached.
func (c *Cache) Invalidate(b mem.Block) bool {
	s := c.set(b)
	tag := uint64(b) + 1
	for i, w := range s.ways {
		if w != tag {
			continue
		}
		copy(s.ways[i:], s.ways[i+1:])
		s.ways[len(s.ways)-1] = 0
		return true
	}
	return false
}

// Blocks returns the number of blocks currently cached.
func (c *Cache) Blocks() int {
	n := 0
	for _, s := range c.sets {
		for _, w := range s.ways {
			if w != 0 {
				n++
			}
		}
	}
	return n
}

// setsLog2 is used in tests to validate indexing.
func (c *Cache) setsLog2() int { return bits.TrailingZeros64(c.mask + 1) }
