package finite

// Shard-invariance differential suite for the finite-cache classifier: the
// set-respecting partition must reproduce the serial counts — including
// the Repl component — for LRU and FIFO; the Random policy's global
// xorshift stream is not block-decomposable and must fall back to serial.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/trace"
)

func randomFiniteTrace(rng *rand.Rand, procs, n, addrRange int) *trace.Trace {
	tr := trace.New(procs)
	for i := 0; i < n; i++ {
		p := rng.Intn(procs)
		switch rng.Intn(8) {
		case 0, 1:
			tr.Append(trace.S(p, mem.Addr(rng.Intn(addrRange))))
		default:
			tr.Append(trace.L(p, mem.Addr(rng.Intn(addrRange))))
		}
	}
	return tr
}

// TestShardedFiniteMatchesSerial sweeps policies, capacities and shard
// counts; the address range is sized well past the capacities so
// replacements actually happen.
func TestShardedFiniteMatchesSerial(t *testing.T) {
	g := mem.MustGeometry(16) // 4 words per block
	configs := []Config{
		{CapacityBytes: 128, Assoc: 2, Policy: LRU},  // 4 sets
		{CapacityBytes: 256, Assoc: 4, Policy: LRU},  // 4 sets
		{CapacityBytes: 128, Assoc: 1, Policy: FIFO}, // 8 sets
		{CapacityBytes: 64, Assoc: 4, Policy: LRU},   // 1 set: everything on shard 0
		{CapacityBytes: 256, Assoc: 2, Policy: Random},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomFiniteTrace(rng, 4, 900, 512)
		for _, cfg := range configs {
			want, wantRefs, err := Classify(tr.Reader(), g, cfg)
			if err != nil {
				t.Log(err)
				return false
			}
			if cfg.Policy != Random && want.Repl == 0 {
				t.Logf("%+v: no replacement misses; trace too small to exercise eviction", cfg)
				return false
			}
			for _, n := range []int{1, 2, 3, 8, 64} {
				got, refs, err := ShardedClassify(tr.Reader(), g, cfg, n)
				if err != nil {
					t.Log(err)
					return false
				}
				if got != want || refs != wantRefs {
					t.Logf("%+v shards=%d: got %+v, want %+v", cfg, n, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedFiniteEssentialInvariant: replacement misses are essential, so
// essential = cold + PTS + Repl <= total on merged counts at any shards.
func TestShardedFiniteEssentialInvariant(t *testing.T) {
	g := mem.MustGeometry(16)
	cfg := Config{CapacityBytes: 128, Assoc: 2, Policy: LRU}
	rng := rand.New(rand.NewSource(7))
	tr := randomFiniteTrace(rng, 4, 1200, 512)
	for _, n := range []int{1, 4, 16} {
		counts, refs, err := ShardedClassify(tr.Reader(), g, cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		if counts.Essential() != counts.Cold()+counts.PTS+counts.Repl {
			t.Fatalf("shards=%d: essential %d != cold+PTS+Repl", n, counts.Essential())
		}
		if counts.Essential() > counts.Total() {
			t.Fatalf("shards=%d: essential %d > total %d", n, counts.Essential(), counts.Total())
		}
		if refs != tr.DataRefs() {
			t.Fatalf("shards=%d: data refs not conserved: %d of %d", n, refs, tr.DataRefs())
		}
	}
}

// TestShardedFiniteRandomFallsBackToSerial pins the Random-policy contract
// directly: the global xorshift stream is not block-decomposable, so every
// shard count must take the serial fallback and reproduce Classify's counts
// bit for bit, on a trace small enough to overflow the cache (Repl > 0) so
// the eviction stream is actually exercised.
func TestShardedFiniteRandomFallsBackToSerial(t *testing.T) {
	g := mem.MustGeometry(16)
	cfg := Config{CapacityBytes: 128, Assoc: 2, Policy: Random}
	rng := rand.New(rand.NewSource(42))
	tr := randomFiniteTrace(rng, 4, 1500, 1024)

	want, wantRefs, err := Classify(tr.Reader(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Repl == 0 {
		t.Fatal("trace never evicted; Random stream untested")
	}
	for _, shards := range []int{1, 2, 4, 8, 64} {
		for rep := 0; rep < 2; rep++ { // twice: the seeded stream must replay identically
			got, refs, err := ShardedClassify(tr.Reader(), g, cfg, shards)
			if err != nil {
				t.Fatal(err)
			}
			if got != want || refs != wantRefs {
				t.Fatalf("shards=%d rep=%d: got %+v (%d refs), want %+v (%d refs)",
					shards, rep, got, refs, want, wantRefs)
			}
		}
	}
}

// TestShardedFiniteBadConfig pins the error path: an invalid cache shape
// must surface before any goroutine starts.
func TestShardedFiniteBadConfig(t *testing.T) {
	tr := trace.New(2, trace.L(0, 0))
	g := mem.MustGeometry(16)
	if _, _, err := ShardedClassify(tr.Reader(), g, Config{CapacityBytes: 100, Assoc: 3}, 4); err == nil {
		t.Fatal("expected an error for a non-power-of-two cache shape")
	}
}
