package mem

import (
	"testing"
	"testing/quick"
)

func TestNewGeometry(t *testing.T) {
	for _, size := range []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048} {
		g, err := NewGeometry(size)
		if err != nil {
			t.Fatalf("NewGeometry(%d): %v", size, err)
		}
		if g.BlockBytes() != size {
			t.Errorf("BlockBytes = %d, want %d", g.BlockBytes(), size)
		}
		if got := g.WordsPerBlock(); got != size/WordBytes {
			t.Errorf("WordsPerBlock(%d) = %d, want %d", size, got, size/WordBytes)
		}
	}
}

func TestNewGeometryRejectsInvalid(t *testing.T) {
	for _, size := range []int{0, 1, 2, 3, 6, 12, 24, 100, -8} {
		if _, err := NewGeometry(size); err == nil {
			t.Errorf("NewGeometry(%d): expected error", size)
		}
	}
}

func TestMustGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGeometry(3) did not panic")
		}
	}()
	MustGeometry(3)
}

func TestBlockMapping(t *testing.T) {
	g := MustGeometry(32) // 8 words per block
	cases := []struct {
		addr   Addr
		block  Block
		offset int
	}{
		{0, 0, 0},
		{1, 0, 1},
		{7, 0, 7},
		{8, 1, 0},
		{15, 1, 7},
		{16, 2, 0},
		{1<<40 + 3, 1 << 37, 3},
	}
	for _, c := range cases {
		if got := g.BlockOf(c.addr); got != c.block {
			t.Errorf("BlockOf(%d) = %d, want %d", c.addr, got, c.block)
		}
		if got := g.OffsetOf(c.addr); got != c.offset {
			t.Errorf("OffsetOf(%d) = %d, want %d", c.addr, got, c.offset)
		}
	}
}

func TestBaseOfRoundTrip(t *testing.T) {
	f := func(a Addr, sizeExp uint8) bool {
		size := WordBytes << (sizeExp % 10)
		g := MustGeometry(size)
		b := g.BlockOf(a)
		base := g.BaseOf(b)
		return g.BlockOf(base) == b && g.OffsetOf(base) == 0 &&
			base <= a && a < base+Addr(g.WordsPerBlock())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSameBlock(t *testing.T) {
	g := MustGeometry(16) // 4 words
	if !g.SameBlock(0, 3) {
		t.Error("0 and 3 should share a 16-byte block")
	}
	if g.SameBlock(3, 4) {
		t.Error("3 and 4 should not share a 16-byte block")
	}
}

func TestWordGrainGeometry(t *testing.T) {
	g := MustGeometry(WordBytes)
	f := func(a Addr) bool {
		return Addr(g.BlockOf(a)) == a && g.OffsetOf(a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayoutAlloc(t *testing.T) {
	l := NewLayout(0)
	a := l.Alloc(36) // 9 words
	b := l.Alloc(36)
	if a != 0 {
		t.Errorf("first alloc at %d, want 0", a)
	}
	if b != 9 {
		t.Errorf("second alloc at %d, want 9 (36 bytes back to back)", b)
	}
	if l.Bytes() != 72 {
		t.Errorf("Bytes = %d, want 72", l.Bytes())
	}
}

func TestLayoutAlign(t *testing.T) {
	l := NewLayout(0)
	l.Alloc(4)
	l.Align(64)
	a := l.Alloc(8)
	if a != 16 { // 64 bytes / 4 = word 16
		t.Errorf("aligned alloc at word %d, want 16", a)
	}
	l.Align(64) // already aligned? next is word 18 -> align to 32
	if got := l.Alloc(4); got != 32 {
		t.Errorf("second aligned alloc at word %d, want 32", got)
	}
}

func TestLayoutAllocWords(t *testing.T) {
	l := NewLayout(1024)
	a := l.AllocWords(3)
	if a != 256 {
		t.Errorf("AllocWords at %d, want 256 (base 1024 bytes)", a)
	}
	if l.AllocWords(1) != 259 {
		t.Error("AllocWords did not advance by 3 words")
	}
}

func TestLayoutRoundsUpToWords(t *testing.T) {
	l := NewLayout(0)
	l.Alloc(1) // rounds to 1 word
	if got := l.Alloc(4); got != 1 {
		t.Errorf("alloc after 1-byte alloc at %d, want 1", got)
	}
}

func TestLayoutPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative alloc": func() { NewLayout(0).Alloc(-1) },
		"bad base":       func() { NewLayout(2) },
		"bad align":      func() { NewLayout(0).Align(6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
