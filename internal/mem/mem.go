// Package mem provides the word/block addressing model shared by the trace,
// classification and coherence packages.
//
// Following the paper, the machine word is 4 bytes and cache blocks are
// powers of two of at least one word. All addresses handled by the library
// are word addresses: byte address / 4. A Geometry fixes a block size and
// maps word addresses to block numbers and intra-block word offsets.
package mem

import (
	"fmt"
	"math/bits"
)

// WordBytes is the machine word size in bytes. The paper's block-size sweeps
// start at 4-byte blocks and describe 8-byte doubles as "double words", so a
// word is 4 bytes.
const WordBytes = 4

// Addr is a word address: the byte address divided by WordBytes.
type Addr uint64

// Block identifies a cache block under some Geometry: Addr >> log2(words per block).
type Block uint64

// Geometry fixes the cache block size and provides address arithmetic.
// The zero Geometry is invalid; use NewGeometry.
type Geometry struct {
	blockBytes int
	shift      uint // log2(words per block)
}

// NewGeometry returns a Geometry for the given block size in bytes.
// The size must be a power of two and at least WordBytes.
func NewGeometry(blockBytes int) (Geometry, error) {
	if blockBytes < WordBytes {
		return Geometry{}, fmt.Errorf("mem: block size %d smaller than word (%d bytes)", blockBytes, WordBytes)
	}
	if blockBytes&(blockBytes-1) != 0 {
		return Geometry{}, fmt.Errorf("mem: block size %d is not a power of two", blockBytes)
	}
	words := blockBytes / WordBytes
	return Geometry{
		blockBytes: blockBytes,
		shift:      uint(bits.TrailingZeros(uint(words))),
	}, nil
}

// MustGeometry is NewGeometry that panics on an invalid block size.
// It is intended for tests and for constants known to be valid.
func MustGeometry(blockBytes int) Geometry {
	g, err := NewGeometry(blockBytes)
	if err != nil {
		panic(err)
	}
	return g
}

// BlockBytes returns the block size in bytes.
func (g Geometry) BlockBytes() int { return g.blockBytes }

// WordsPerBlock returns the number of words in a block.
func (g Geometry) WordsPerBlock() int { return 1 << g.shift }

// BlockOf returns the block containing word address a.
func (g Geometry) BlockOf(a Addr) Block { return Block(a >> g.shift) }

// BaseOf returns the word address of the first word of block b.
func (g Geometry) BaseOf(b Block) Addr { return Addr(b) << g.shift }

// OffsetOf returns the word offset of a within its block.
func (g Geometry) OffsetOf(a Addr) int { return int(a & (1<<g.shift - 1)) }

// SameBlock reports whether two word addresses fall in the same block.
func (g Geometry) SameBlock(a, b Addr) bool { return g.BlockOf(a) == g.BlockOf(b) }

// String implements fmt.Stringer.
func (g Geometry) String() string { return fmt.Sprintf("B=%d", g.blockBytes) }

// Layout is a bump allocator for laying out a workload's data structures in
// the simulated address space. Allocations are word-granular; Align starts
// structures on chosen boundaries so that block-size effects match the
// memory layouts described in the paper (e.g. 36-byte particle records
// allocated back to back).
type Layout struct {
	next Addr
}

// NewLayout returns a Layout that starts allocating at byte address base.
// base must be word aligned.
func NewLayout(base uint64) *Layout {
	if base%WordBytes != 0 {
		panic(fmt.Sprintf("mem: layout base %d not word aligned", base))
	}
	return &Layout{next: Addr(base / WordBytes)}
}

// Alloc reserves nbytes (rounded up to whole words) and returns the word
// address of the first word.
func (l *Layout) Alloc(nbytes int) Addr {
	if nbytes < 0 {
		panic("mem: negative allocation")
	}
	words := (nbytes + WordBytes - 1) / WordBytes
	a := l.next
	l.next += Addr(words)
	return a
}

// AllocWords reserves n words and returns the first word address.
func (l *Layout) AllocWords(n int) Addr { return l.Alloc(n * WordBytes) }

// Align advances the allocation point to the next multiple of nbytes
// (a power of two, itself a multiple of the word size).
func (l *Layout) Align(nbytes int) {
	if nbytes < WordBytes || nbytes%WordBytes != 0 || nbytes&(nbytes-1) != 0 {
		panic(fmt.Sprintf("mem: bad alignment %d", nbytes))
	}
	words := Addr(nbytes / WordBytes)
	l.next = (l.next + words - 1) &^ (words - 1)
}

// Bytes returns the total number of bytes laid out so far, measured from
// address zero (i.e. the data-set footprint when base is 0).
func (l *Layout) Bytes() uint64 { return uint64(l.next) * WordBytes }
