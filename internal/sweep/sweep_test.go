package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunReturnsResultsInOrder(t *testing.T) {
	for _, p := range []int{0, 1, 2, 7, 64} {
		got, err := Run(context.Background(), 100, Options{Parallelism: p},
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("p=%d: cell %d = %d, want %d", p, i, v, i*i)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	got, err := Run(context.Background(), 0, Options{},
		func(_ context.Context, i int) (int, error) {
			t.Error("fn called for empty grid")
			return 0, nil
		})
	if err != nil || got != nil {
		t.Fatalf("Run(0) = %v, %v", got, err)
	}
}

func TestRunReportsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, p := range []int{1, 4} {
		_, err := Run(context.Background(), 16, Options{Parallelism: p},
			func(_ context.Context, i int) (int, error) {
				switch i {
				case 3:
					return 0, errLow
				case 11:
					return 0, errHigh
				default:
					return i, nil
				}
			})
		// With p=1 cell 11 is never reached; with p=4 either may fire first,
		// but the reported error must be the lowest-index one among those
		// that did.
		if err == nil {
			t.Fatalf("p=%d: no error", p)
		}
		if p == 1 && err != errLow {
			t.Fatalf("p=1: err = %v, want %v", err, errLow)
		}
		if err != errLow && err != errHigh {
			t.Fatalf("p=%d: unexpected error %v", p, err)
		}
	}
}

func TestRunCancelsRemainingCellsOnError(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	_, err := Run(context.Background(), 1000, Options{Parallelism: 2},
		func(ctx context.Context, i int) (int, error) {
			started.Add(1)
			if i == 0 {
				return 0, boom
			}
			<-ctx.Done() // the surviving worker must be released promptly
			return 0, ctx.Err()
		})
	if !errors.Is(err, boom) && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if n := started.Load(); n > 3 {
		t.Errorf("%d cells started after the failure; want the pool drained", n)
	}
}

func TestRunHonorsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range []int{1, 4} {
		_, err := Run(ctx, 8, Options{Parallelism: p},
			func(ctx context.Context, i int) (int, error) { return i, ctx.Err() })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("p=%d: err = %v, want context.Canceled", p, err)
		}
	}
}

func TestWorkersClamp(t *testing.T) {
	if got := (Options{Parallelism: 8}).workers(3); got != 3 {
		t.Errorf("workers clamped to %d, want 3", got)
	}
	if got := (Options{Parallelism: -1}).workers(1); got != 1 {
		t.Errorf("workers = %d, want 1", got)
	}
	if got := (Options{}).workers(1 << 20); got < 1 {
		t.Errorf("workers = %d, want >= 1", got)
	}
}

func TestGrid(t *testing.T) {
	cells := Grid([]string{"A", "B"}, []int{8, 64}, []string{"MIN"})
	want := []Cell{
		{"A", 8, "MIN"}, {"A", 64, "MIN"},
		{"B", 8, "MIN"}, {"B", 64, "MIN"},
	}
	if !reflect.DeepEqual(cells, want) {
		t.Errorf("Grid = %v, want %v", cells, want)
	}
	// Empty dimensions collapse to a single zero value.
	cells = Grid([]string{"A", "B"}, nil, nil)
	want = []Cell{{Workload: "A"}, {Workload: "B"}}
	if !reflect.DeepEqual(cells, want) {
		t.Errorf("Grid with empty dims = %v, want %v", cells, want)
	}
	if got := Grid(nil, []int{8}, nil); len(got) != 0 {
		t.Errorf("Grid with no workloads = %v, want empty", got)
	}
}

// TestRunMatchesSerialProperty is the engine's core contract as a property:
// for any cell function, grid size and parallelism, Run returns exactly what
// the plain serial loop returns.
func TestRunMatchesSerialProperty(t *testing.T) {
	property := func(nRaw uint8, parRaw int8, seed int64) bool {
		n := int(nRaw%64) + 1
		fn := func(_ context.Context, i int) (string, error) {
			return fmt.Sprintf("%d:%d", seed, int64(i)*seed), nil
		}
		serial := make([]string, n)
		for i := range serial {
			serial[i], _ = fn(nil, i)
		}
		got, err := Run(context.Background(), n, Options{Parallelism: int(parRaw)}, fn)
		return err == nil && reflect.DeepEqual(got, serial)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
