package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestKeepGoingSerial: keep-going on the serial path (Parallelism 1)
// quarantines failing cells into *Failures while the other results land.
func TestKeepGoingSerial(t *testing.T) {
	boom := errors.New("boom")
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("j%d", par), func(t *testing.T) {
			res, err := Run(context.Background(), 5, Options{Parallelism: par, KeepGoing: true},
				func(_ context.Context, i int) (int, error) {
					if i == 1 || i == 3 {
						return 0, fmt.Errorf("cell: %w", boom)
					}
					return i * 10, nil
				})
			fails := AsFailures(err)
			if fails == nil {
				t.Fatalf("want *Failures, got %v", err)
			}
			if fails.Len() != 2 {
				t.Fatalf("Len() = %d, want 2", fails.Len())
			}
			if !errors.Is(err, boom) {
				t.Errorf("underlying error lost: %v", err)
			}
			for i, want := range []int{0, 0, 20, 0, 40} {
				if res[i] != want {
					t.Errorf("res[%d] = %d, want %d", i, res[i], want)
				}
				failed := fails.Failed(i) != nil
				if failed != (i == 1 || i == 3) {
					t.Errorf("Failed(%d) = %v", i, failed)
				}
			}
		})
	}
}

// TestKeepGoingAllGreen: with keep-going and no failures, err is nil (not a
// typed-nil *Failures), and the nil-safe accessors behave.
func TestKeepGoingAllGreen(t *testing.T) {
	res, err := Run(context.Background(), 3, Options{Parallelism: 2, KeepGoing: true},
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if len(res) != 3 {
		t.Fatalf("res = %v", res)
	}
	var f *Failures
	if f.Len() != 0 || f.Failed(0) != nil {
		t.Error("nil *Failures accessors are not nil-safe")
	}
	if AsFailures(err) != nil {
		t.Error("AsFailures(nil) != nil")
	}
	if AsFailures(errors.New("plain")) != nil {
		t.Error("AsFailures(plain error) != nil")
	}
}

// TestPanicRecoveredIntoCellError: a panicking cell comes back as a typed
// CellError wrapping ErrCellPanic with the stack attached, in both
// fail-fast and keep-going modes.
func TestPanicRecoveredIntoCellError(t *testing.T) {
	for _, keepGoing := range []bool{false, true} {
		t.Run(fmt.Sprintf("keepGoing=%v", keepGoing), func(t *testing.T) {
			_, err := Run(context.Background(), 3, Options{Parallelism: 2, KeepGoing: keepGoing},
				func(_ context.Context, i int) (int, error) {
					if i == 1 {
						panic("kaboom")
					}
					return i, nil
				})
			if !errors.Is(err, ErrCellPanic) {
				t.Fatalf("errors.Is(err, ErrCellPanic) = false for %v", err)
			}
			var ce *CellError
			if !errors.As(err, &ce) {
				t.Fatalf("errors.As(*CellError) = false for %v", err)
			}
			if ce.Cell != 1 {
				t.Errorf("Cell = %d, want 1", ce.Cell)
			}
			if len(ce.Stack) == 0 {
				t.Error("panic CellError has no stack")
			}
			if !strings.Contains(ce.Error(), "kaboom") {
				t.Errorf("Error() = %q, want the panic value", ce.Error())
			}
		})
	}
}

// TestFailuresErrorSummary: one failed cell renders its CellError directly;
// several render the counted multi-line summary with first lines only.
func TestFailuresErrorSummary(t *testing.T) {
	one := &Failures{Cells: []*CellError{{Cell: 2, Err: errors.New("single")}}}
	if got := one.Error(); !strings.Contains(got, "cell 2") || !strings.Contains(got, "single") {
		t.Errorf("single-cell Error() = %q", got)
	}
	many := &Failures{Cells: []*CellError{
		{Cell: 0, Err: errors.New("first line\nsecond line")},
		{Cell: 4, Err: errors.New("other")},
	}}
	got := many.Error()
	if !strings.Contains(got, "2 cells failed") {
		t.Errorf("Error() = %q, want cell count", got)
	}
	if !strings.Contains(got, "first line") || strings.Contains(got, "second line") {
		t.Errorf("Error() = %q, want first lines only", got)
	}
	if errs := many.Unwrap(); len(errs) != 2 {
		t.Errorf("Unwrap() returned %d errors, want 2", len(errs))
	}
}

// TestKeepGoingParentCancellationWins: parent-context cancellation is not a
// cell failure — it aborts the keep-going sweep with the context error.
func TestKeepGoingParentCancellationWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, 4, Options{Parallelism: 2, KeepGoing: true},
		func(ctx context.Context, i int) (int, error) { return 0, ctx.Err() })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if AsFailures(err) != nil {
		t.Errorf("cancellation reported as cell failures: %v", err)
	}
}
