// Package sweep is the parallel execution engine behind the experiment
// drivers. An experiment is expanded into a grid of independent cells —
// {workload, geometry, protocol/classifier} — and the cells run on a
// bounded worker pool while the results are reassembled in deterministic
// grid order, so the rendered tables and charts are byte-identical to a
// serial run at any parallelism. A keyed, size-bounded trace cache
// (TraceCache) lets every cell replay a workload trace that was
// materialized once instead of regenerating it per cell.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
)

// Metric handles, resolved once. Cell counts are deterministic (they depend
// only on the grid, never on scheduling); the per-cell wall-time histogram
// and the pool-busy time are timing metrics. The busy counter feeds the
// run-level utilization gauge: busy seconds per wall second, where values
// near the worker count mean the pool is saturated.
var (
	mCellsPlanned  = obs.Default.Counter(obs.NameCellsPlanned)
	mCellsStarted  = obs.Default.Counter(obs.NameCellsStarted)
	mCellsFinished = obs.Default.Counter(obs.NameCellsFinished)
	mCellNs        = obs.Default.TimingHistogram(obs.NameCellNs, cellNsBounds)
	mBusyNs        = obs.Default.TimingCounter(obs.NameSweepBusyNs)
)

// cellNsBounds spans 1ms to 100s of per-cell wall time.
var cellNsBounds = []uint64{1e6, 1e7, 1e8, 1e9, 1e10, 1e11}

// runCell evaluates one cell with its timing instrumentation (one time.Now
// pair per cell, amortized over an entire experiment replay) and panic
// containment: a panicking cell is recovered into a *CellError carrying the
// worker stack, so one crashed cell can never take down the whole sweep
// process.
// tr is the worker's span track (nil when tracing is off) and submitNs the
// instant the sweep was submitted: the gap between submission and this
// call is the cell's queue wait, recorded as a zero-depth sweep.cell_wait
// span so pool contention is visible in the trace viewer next to the
// cell's run span.
func runCell[T any](ctx context.Context, tr *span.Track, submitNs int64, i int, fn func(ctx context.Context, i int) (T, error)) (r T, err error) {
	mCellsStarted.Inc()
	if tr != nil {
		tr.Emit(span.OpCellWait, span.Fields{Cell: int32(i)}, submitNs)
		defer tr.Begin(span.OpCell, span.Fields{Cell: int32(i)}).End()
	}
	t0 := time.Now()
	defer func() {
		if p := recover(); p != nil {
			var zero T
			r = zero
			err = &CellError{
				Cell:  i,
				Err:   fmt.Errorf("%w: %v", ErrCellPanic, p),
				Stack: debug.Stack(),
			}
		}
		ns := uint64(time.Since(t0))
		mBusyNs.Add(ns)
		mCellNs.Observe(ns)
		if err == nil {
			mCellsFinished.Inc()
		}
	}()
	return fn(ctx, i)
}

// Options configures Run.
type Options struct {
	// Parallelism bounds the worker pool. Zero or negative means
	// GOMAXPROCS; 1 runs the cells inline on the calling goroutine,
	// recovering the serial path exactly.
	Parallelism int
	// KeepGoing makes cell failures non-fatal: instead of cancelling the
	// sweep at the first error, every cell runs, the failed ones are
	// aggregated into a *Failures error, and the result slice stays valid
	// at every index that succeeded. Context cancellation still aborts the
	// sweep.
	KeepGoing bool
}

// workers returns the effective pool size for n cells.
func (o Options) workers(n int) int {
	p := o.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	return p
}

// Run evaluates fn(ctx, i) for every cell index in [0, n) on a bounded
// worker pool and returns the results in index order, independent of the
// parallelism and of scheduling. A panicking cell is recovered into a
// *CellError instead of crashing the process.
//
// By default the first error (lowest cell index among the cells that
// failed) cancels the context so outstanding cells can stop early and
// unstarted cells are skipped; Run then reports that error. With
// Options.KeepGoing every cell runs regardless, and Run returns the intact
// results alongside a *Failures aggregating the failed cells (nil error if
// all succeeded). Cancellation of the caller's context always aborts the
// sweep with ctx.Err(), keep-going or not.
func Run[T any](ctx context.Context, n int, o Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	mCellsPlanned.Add(uint64(n))
	submitNs := span.Now()
	results := make([]T, n)
	p := o.workers(n)
	if p == 1 {
		// Serial path: record on the caller's track if it has one, else on
		// a dedicated sweep track; cells inherit it through the context.
		tr := span.FromContext(ctx)
		if tr == nil {
			tr = span.Acquire("sweep")
			defer span.Release(tr)
			ctx = span.NewContext(ctx, tr)
		}
		var fails Failures
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := runCell(ctx, tr, submitNs, i, fn)
			if err != nil {
				if !o.KeepGoing {
					return nil, err
				}
				fails.Cells = append(fails.Cells, asCellError(i, err))
				continue
			}
			results[i] = r
		}
		if len(fails.Cells) > 0 {
			return results, &fails
		}
		return results, nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each pool worker owns one span track (single-writer); cells
			// inherit it through the worker's context so the drives and
			// fused sweeps inside land on the worker's timeline.
			tr := span.Acquiref("sweep-worker", w)
			defer span.Release(tr)
			wctx := span.NewContext(ctx, tr)
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				r, err := runCell(wctx, tr, submitNs, i, fn)
				if err != nil {
					errs[i] = err
					if o.KeepGoing {
						continue
					}
					cancel()
					return
				}
				results[i] = r
			}
		}(w)
	}
	wg.Wait()
	if err := parent.Err(); err != nil {
		// The caller's cancellation outranks any per-cell failure: partial
		// results of an interrupted sweep are not presented as complete.
		return nil, err
	}
	if o.KeepGoing {
		var fails Failures
		for i, err := range errs {
			if err != nil {
				fails.Cells = append(fails.Cells, asCellError(i, err))
			}
		}
		if len(fails.Cells) > 0 {
			return results, &fails
		}
		return results, nil
	}
	// Fail-fast: report the lowest-index genuine failure; the cancellation
	// errors its siblings observed after the teardown rank below it.
	var canceled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) {
			if canceled == nil {
				canceled = err
			}
			continue
		}
		return nil, err
	}
	if canceled != nil {
		return nil, canceled
	}
	return results, nil
}

// Cell is one point of an experiment grid. Unused dimensions are left at
// their zero value.
type Cell struct {
	// Workload names the benchmark trace.
	Workload string
	// Block is the cache-block size in bytes (0 when the experiment fixes
	// the geometry outside the grid).
	Block int
	// Proto names the protocol, classifier variant or sweep label of the
	// cell ("" when the experiment has no such dimension).
	Proto string
}

// Grid expands the cross product workloads x blocks x protos in
// workload-major order — the order the drivers render in. Empty dimensions
// contribute a single zero value, so Grid(ws, nil, nil) is one cell per
// workload.
func Grid(workloads []string, blocks []int, protos []string) []Cell {
	if len(blocks) == 0 {
		blocks = []int{0}
	}
	if len(protos) == 0 {
		protos = []string{""}
	}
	cells := make([]Cell, 0, len(workloads)*len(blocks)*len(protos))
	for _, w := range workloads {
		for _, b := range blocks {
			for _, p := range protos {
				cells = append(cells, Cell{Workload: w, Block: b, Proto: p})
			}
		}
	}
	return cells
}
