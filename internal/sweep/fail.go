package sweep

import (
	"errors"
	"fmt"
	"strings"
)

// ErrCellPanic is the sentinel wrapped by CellErrors built from a recovered
// worker panic: errors.Is(err, ErrCellPanic) distinguishes a crashed cell
// from one that returned an ordinary error.
var ErrCellPanic = errors.New("sweep: cell panicked")

// CellError reports the failure of one sweep cell, keeping the cell index
// so callers can mark the exact table entry that failed. A cell that
// panicked carries the goroutine stack captured at the recovery site and an
// Err wrapping ErrCellPanic; a cell that returned an error carries it
// verbatim. CellError implements Unwrap, so errors.Is/As reach the
// underlying failure.
type CellError struct {
	// Cell is the cell's index in the sweep grid.
	Cell int
	// Err is the underlying failure.
	Err error
	// Stack is the worker goroutine's stack at the recovery site; nil
	// unless the cell panicked.
	Stack []byte
}

// Error implements error.
func (e *CellError) Error() string {
	if len(e.Stack) > 0 {
		return fmt.Sprintf("sweep: cell %d: %v\n%s", e.Cell, e.Err, e.Stack)
	}
	return fmt.Sprintf("sweep: cell %d: %v", e.Cell, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is and errors.As.
func (e *CellError) Unwrap() error { return e.Err }

// Failures aggregates the failed cells of a keep-going sweep. It is the
// error returned by Run when Options.KeepGoing is set and at least one cell
// failed: the result slice is still valid at every non-failed index, and
// Failed reports cell-level status so renderers can mark the holes.
type Failures struct {
	// Cells holds one CellError per failed cell, in ascending cell order.
	Cells []*CellError
}

// Error implements error with a one-line summary; the per-cell detail is in
// Cells.
func (f *Failures) Error() string {
	if len(f.Cells) == 1 {
		return f.Cells[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d cells failed:", len(f.Cells))
	for _, c := range f.Cells {
		fmt.Fprintf(&b, "\n  cell %d: %v", c.Cell, firstLine(c.Err.Error()))
	}
	return b.String()
}

// Unwrap exposes every cell error to errors.Is and errors.As.
func (f *Failures) Unwrap() []error {
	errs := make([]error, len(f.Cells))
	for i, c := range f.Cells {
		errs[i] = c
	}
	return errs
}

// Failed returns cell i's error, or nil if cell i succeeded. It is nil-safe
// so renderers can call it on the Failures of an all-green run.
func (f *Failures) Failed(i int) *CellError {
	if f == nil {
		return nil
	}
	for _, c := range f.Cells {
		if c.Cell == i {
			return c
		}
	}
	return nil
}

// Len returns the number of failed cells, nil-safe.
func (f *Failures) Len() int {
	if f == nil {
		return 0
	}
	return len(f.Cells)
}

// AsFailures extracts a *Failures from err (which may be the *Failures
// itself or wrap one), or nil.
func AsFailures(err error) *Failures {
	var f *Failures
	if errors.As(err, &f) {
		return f
	}
	return nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// asCellError normalizes a cell failure into a *CellError for aggregation.
func asCellError(i int, err error) *CellError {
	var ce *CellError
	if errors.As(err, &ce) {
		return ce
	}
	return &CellError{Cell: i, Err: err}
}
