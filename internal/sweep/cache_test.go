package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

// testTrace builds a small deterministic trace: every processor stores to
// its own word and loads a shared one, with the given seed skewing the
// addresses so distinct seeds give distinct sharing patterns.
func testTrace(procs int, seed uint64) *trace.Trace {
	tr := trace.New(procs)
	for round := uint64(0); round < 8; round++ {
		for p := 0; p < procs; p++ {
			own := mem.Addr(uint64(p)*16 + (seed+round)%16)
			tr.Refs = append(tr.Refs,
				trace.S(p, own),
				trace.L(p, mem.Addr(seed%32)),
				trace.L(p, own+1))
		}
	}
	return tr
}

// openerFor wraps traces in an Opener that counts its calls.
func openerFor(traces map[string]*trace.Trace, calls *atomic.Int64) Opener {
	return func(name string) (trace.Reader, error) {
		if calls != nil {
			calls.Add(1)
		}
		tr, ok := traces[name]
		if !ok {
			return nil, fmt.Errorf("no trace %q", name)
		}
		return tr.Reader(), nil
	}
}

func TestTraceCacheMaterializesOnce(t *testing.T) {
	var calls atomic.Int64
	traces := map[string]*trace.Trace{"T": testTrace(4, 1)}
	c := NewTraceCache(0, openerFor(traces, &calls))

	for i := 0; i < 5; i++ {
		r, err := c.Reader("T")
		if err != nil {
			t.Fatal(err)
		}
		got, err := trace.Collect(r)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Refs, traces["T"].Refs) {
			t.Fatalf("reader %d replayed different refs", i)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("opener called %d times, want 1", n)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 4 || s.Streamed != 0 {
		t.Errorf("stats = %+v, want 1 miss, 4 hits, 0 streamed", s)
	}
	if s.CachedRefs != int64(traces["T"].Len()) {
		t.Errorf("CachedRefs = %d, want %d", s.CachedRefs, traces["T"].Len())
	}
}

func TestTraceCacheSingleflight(t *testing.T) {
	var calls atomic.Int64
	traces := map[string]*trace.Trace{"T": testTrace(8, 2)}
	c := NewTraceCache(0, openerFor(traces, &calls))

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := c.Reader("T")
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := trace.Collect(r); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("opener called %d times under concurrency, want 1", n)
	}
}

func TestTraceCacheOverBudgetStreams(t *testing.T) {
	var calls atomic.Int64
	tr := testTrace(4, 3)
	c := NewTraceCache(int64(tr.Len())-1, openerFor(map[string]*trace.Trace{"T": tr}, &calls))

	for i := 0; i < 3; i++ {
		r, err := c.Reader("T")
		if err != nil {
			t.Fatal(err)
		}
		got, err := trace.Collect(r)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != tr.Len() {
			t.Fatalf("streamed reader %d saw %d refs, want %d", i, got.Len(), tr.Len())
		}
	}
	s := c.Stats()
	if s.Streamed != 3 || s.CachedRefs != 0 {
		t.Errorf("stats = %+v, want 3 streamed and nothing cached", s)
	}
	// Materialization attempt + one fresh stream per caller.
	if n := calls.Load(); n != 4 {
		t.Errorf("opener called %d times, want 4", n)
	}
}

func TestTraceCacheBudgetSharedAcrossNames(t *testing.T) {
	a, b := testTrace(4, 4), testTrace(4, 5)
	c := NewTraceCache(int64(a.Len()), openerFor(map[string]*trace.Trace{"A": a, "B": b}, nil))
	if _, err := c.Reader("A"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reader("B"); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.CachedRefs != int64(a.Len()) {
		t.Errorf("CachedRefs = %d, want only A's %d", s.CachedRefs, a.Len())
	}
	if s.Streamed != 1 {
		t.Errorf("Streamed = %d, want 1 (B over budget)", s.Streamed)
	}
}

func TestTraceCacheOpenerError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	c := NewTraceCache(0, func(name string) (trace.Reader, error) {
		calls.Add(1)
		return nil, boom
	})
	for i := 0; i < 3; i++ {
		if _, err := c.Reader("X"); !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v, want %v", i, err, boom)
		}
	}
	// The failure is memoized like a result: no retry storm.
	if n := calls.Load(); n != 1 {
		t.Errorf("opener called %d times, want 1", n)
	}
}

// TestTraceCacheSourceCountsOnce: a Source call resolves the trace and
// counts exactly one cache event, however many readers its factory opens —
// the contract that keeps cache metrics shard-invariant on the shard-native
// fused path.
func TestTraceCacheSourceCountsOnce(t *testing.T) {
	var calls atomic.Int64
	tr := testTrace(4, 6)
	c := NewTraceCache(0, openerFor(map[string]*trace.Trace{"T": tr}, &calls))

	// Miss + 8 factory readers: one opener call, one miss, no hits.
	src, err := c.Source("T")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		r, err := src()
		if err != nil {
			t.Fatal(err)
		}
		got, err := trace.Collect(r)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Refs, tr.Refs) {
			t.Fatalf("factory reader %d replayed different refs", i)
		}
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 0 || s.Streamed != 0 {
		t.Errorf("after miss-source: stats = %+v, want 1 miss only", c.Stats())
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("opener called %d times, want 1", n)
	}

	// Hit + 8 factory readers: one hit, still one opener call.
	src, err = c.Source("T")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := src(); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Errorf("after hit-source: stats = %+v, want 1 miss, 1 hit", s)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("opener called %d times after hit source, want 1", n)
	}
}

// TestTraceCacheSourceOverBudget: an over-budget Source counts one streamed
// fallback and its factory opens fresh generations without further events.
func TestTraceCacheSourceOverBudget(t *testing.T) {
	var calls atomic.Int64
	tr := testTrace(4, 7)
	c := NewTraceCache(int64(tr.Len())-1, openerFor(map[string]*trace.Trace{"T": tr}, &calls))

	src, err := c.Source("T")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		r, err := src()
		if err != nil {
			t.Fatal(err)
		}
		got, err := trace.Collect(r)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != tr.Len() {
			t.Fatalf("factory stream %d saw %d refs, want %d", i, got.Len(), tr.Len())
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Streamed != 1 || s.CachedRefs != 0 {
		t.Errorf("stats = %+v, want 1 miss, 1 streamed, nothing cached", s)
	}
	// One abandoned materialization + four factory streams.
	if n := calls.Load(); n != 5 {
		t.Errorf("opener called %d times, want 5", n)
	}

	// A second Source over the settled entry counts one more streamed event.
	if _, err := c.Source("T"); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Streamed != 2 {
		t.Errorf("Streamed = %d after second source, want 2", s.Streamed)
	}
}

// TestCacheInvarianceProperty is the cache's core contract as a property:
// classifying a trace through the cache — whatever the budget, and whether
// the reader is the materializing call, a cache hit, or a stream fallback —
// yields exactly the counts of classifying the raw trace.
func TestCacheInvarianceProperty(t *testing.T) {
	g := mem.MustGeometry(16)
	property := func(procsRaw, seedRaw uint8, budgetRaw int16) bool {
		procs := int(procsRaw%7) + 2
		tr := testTrace(procs, uint64(seedRaw))
		wantCounts, wantRefs, err := core.Classify(tr.Reader(), g)
		if err != nil {
			return false
		}
		budget := int64(budgetRaw) // negative → default, small → stream path
		c := NewTraceCache(budget, openerFor(map[string]*trace.Trace{"T": tr}, nil))
		for i := 0; i < 3; i++ {
			r, err := c.Reader("T")
			if err != nil {
				return false
			}
			counts, refs, err := core.Classify(r, g)
			if err != nil || counts != wantCounts || refs != wantRefs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
