package sweep

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Cache metric handles. Hits, misses and streamed fallbacks are
// deterministic: misses count one materialization attempt per distinct
// name, and every other reader is either a hit (fits the budget) or a
// streamed fallback, regardless of scheduling. Coalesced is a timing
// metric — how many of the hits arrived while the materialization was
// still in flight depends on worker interleaving. Evictions exists for
// forward compatibility and is always 0 today: the cache admits whole
// traces within a fixed budget and never evicts (over-budget traces are
// streamed instead).
var (
	mCacheHits      = obs.Default.Counter(obs.NameCacheHits)
	mCacheMisses    = obs.Default.Counter(obs.NameCacheMisses)
	mCacheStreamed  = obs.Default.Counter(obs.NameCacheStreamed)
	mCacheEvictions = obs.Default.Counter(obs.NameCacheEvictions)
	mCacheCoalesced = obs.Default.TimingCounter(obs.NameCacheCoalesced)
)

// The evictions counter is registered (and reported as 0) even though the
// current cache never evicts; assert it stays referenced.
var _ = mCacheEvictions

// DefaultCacheRefs is the default TraceCache budget: the total number of
// references the cache may hold in memory across all workloads. At 16
// bytes per reference the default is ~128 MB — enough for every small
// data-set trace at once, while the tens-of-millions-of-references large
// traces (LU200, WATER288, ...) keep streaming exactly like the serial
// path always did.
const DefaultCacheRefs = 8 << 20

// Opener produces a fresh streaming reader for a named trace. It must
// return an equivalent stream every time it is called with the same name
// (the workload generators are deterministic, so the registry satisfies
// this).
type Opener func(name string) (trace.Reader, error)

// TraceCache memoizes materialized traces by name so a workload is
// generated once per run instead of once per sweep cell. It is safe for
// concurrent use: the first Reader call for a name materializes the trace
// (concurrent callers for the same name wait rather than generating
// duplicates), and every later call replays the in-memory copy. Traces
// that would exceed the remaining budget are not cached; callers for those
// names fall back to a fresh stream from the Opener each time.
type TraceCache struct {
	open   Opener
	budget int64

	mu      sync.Mutex
	used    int64
	entries map[string]*cacheEntry

	hits, misses, streamed atomic.Int64
}

type cacheEntry struct {
	ready  chan struct{}                // closed once materialization settled
	tr     *trace.Trace                 // nil: stream-only (over budget or failed)
	stream func() (trace.Reader, error) // non-nil: dedicated stream opener (Stream)
	err    error                        // opener error, reported to every waiter
}

// NewTraceCache returns a cache over open holding at most budgetRefs
// references in memory; budgetRefs <= 0 selects DefaultCacheRefs.
func NewTraceCache(budgetRefs int64, open Opener) *TraceCache {
	if budgetRefs <= 0 {
		budgetRefs = DefaultCacheRefs
	}
	return &TraceCache{
		open:    open,
		budget:  budgetRefs,
		entries: make(map[string]*cacheEntry),
	}
}

// Stream registers a dedicated opener for the named trace that bypasses
// materialization entirely: every later Reader/Source call for name gets a
// fresh stream from open, never an in-memory copy, and counts as a
// streamed access. This is the out-of-core hookup — a file-backed trace
// must replay with O(segment) resident memory no matter how small it is,
// so admitting it to the in-memory cache would defeat the point.
// Registering replaces any existing entry (including an already
// materialized one, whose budget is released).
func (c *TraceCache) Stream(name string, open func() (trace.Reader, error)) {
	e := &cacheEntry{ready: make(chan struct{}), stream: open}
	close(e.ready)
	c.mu.Lock()
	if old, ok := c.entries[name]; ok {
		select {
		case <-old.ready:
			if old.tr != nil {
				c.used -= int64(old.tr.Len())
			}
		default:
			// A materialization is in flight; its entry is simply
			// superseded — the budget accounting under c.mu happens against
			// the map, so the displaced entry never charges it.
		}
	}
	c.entries[name] = e
	c.mu.Unlock()
}

// Reader returns a reader over the named trace: a replay of the cached
// in-memory copy when the trace fits the budget, otherwise a fresh stream
// from the Opener. Readers are independent and safe to drain concurrently.
func (c *TraceCache) Reader(name string) (trace.Reader, error) {
	return c.ReaderContext(context.Background(), name)
}

// ReaderContext is Reader with a cancellation context: a canceled caller
// stops waiting on an in-flight materialization, and a materialization
// aborted by cancellation does not poison the entry — the next caller
// (e.g. a resumed run over the same cache) retries it.
func (c *TraceCache) ReaderContext(ctx context.Context, name string) (trace.Reader, error) {
	src, err := c.SourceContext(ctx, name)
	if err != nil {
		return nil, err
	}
	return src()
}

// Source returns a factory of independent, equivalent readers over the
// named trace; see SourceContext.
func (c *TraceCache) Source(name string) (func() (trace.Reader, error), error) {
	return c.SourceContext(context.Background(), name)
}

// SourceContext resolves the named trace once — materializing it on first
// use exactly like ReaderContext — and returns a factory that opens
// independent readers over the resolved source: replays of the in-memory
// copy when the trace fits the budget, fresh streams from the Opener
// otherwise. The cache counts one event (hit, miss, or streamed) per
// SourceContext call no matter how many readers the factory opens, so the
// shard-native pipelines that open one reader per shard observe the same
// deterministic cache metrics as a single serial replay.
func (c *TraceCache) SourceContext(ctx context.Context, name string) (func() (trace.Reader, error), error) {
	c.mu.Lock()
	e, ok := c.entries[name]
	if ok {
		c.mu.Unlock()
		select {
		case <-e.ready:
		default:
			// The materialization is still in flight: this reader's load
			// is being coalesced onto it (the singleflight path).
			mCacheCoalesced.Inc()
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if e.err != nil {
			return nil, e.err
		}
		if e.stream != nil {
			c.streamed.Add(1)
			mCacheStreamed.Inc()
			return e.stream, nil
		}
		if e.tr == nil {
			c.streamed.Add(1)
			mCacheStreamed.Inc()
			return func() (trace.Reader, error) { return c.open(name) }, nil
		}
		c.hits.Add(1)
		mCacheHits.Inc()
		tr := e.tr
		return func() (trace.Reader, error) { return tr.Reader(), nil }, nil
	}

	e = &cacheEntry{ready: make(chan struct{})}
	c.entries[name] = e
	remaining := c.budget - c.used
	c.mu.Unlock()

	c.misses.Add(1)
	mCacheMisses.Inc()
	tr, complete, err := c.materialize(ctx, name, remaining)
	switch {
	case err != nil:
		e.err = err
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The cancellation is this run's, not the trace's: drop the
			// entry so a later run retries instead of inheriting the error.
			c.mu.Lock()
			delete(c.entries, name)
			c.mu.Unlock()
		}
	case complete:
		e.tr = tr
		c.mu.Lock()
		// A Stream registration may have displaced this entry mid-flight;
		// only the entry still in the map charges the budget.
		if c.entries[name] == e {
			c.used += int64(tr.Len())
		}
		c.mu.Unlock()
	}
	close(e.ready)
	if err != nil {
		return nil, err
	}
	if e.tr == nil {
		// Over budget: the partial materialization was abandoned, so this
		// caller streams fresh generations like every later one. The
		// fallback counts once here; the factory's streams do not count
		// again.
		c.streamed.Add(1)
		mCacheStreamed.Inc()
		return func() (trace.Reader, error) { return c.open(name) }, nil
	}
	cached := e.tr
	return func() (trace.Reader, error) { return cached.Reader(), nil }, nil
}

// materialize drains up to maxRefs references of a fresh stream into
// memory.
func (c *TraceCache) materialize(ctx context.Context, name string, maxRefs int64) (*trace.Trace, bool, error) {
	if maxRefs <= 0 {
		return nil, false, nil
	}
	r, err := c.open(name)
	if err != nil {
		return nil, false, err
	}
	return trace.CollectNContext(ctx, r, maxRefs)
}

// CacheStats reports cache effectiveness for logs and tests.
type CacheStats struct {
	// Hits counts readers served from a cached trace.
	Hits int64
	// Misses counts materialization attempts (one per distinct name).
	Misses int64
	// Streamed counts readers that fell back to a fresh generation
	// because the trace did not fit the budget.
	Streamed int64
	// CachedRefs is the number of references currently held in memory.
	CachedRefs int64
}

// Stats returns a snapshot of the cache counters.
func (c *TraceCache) Stats() CacheStats {
	c.mu.Lock()
	used := c.used
	c.mu.Unlock()
	return CacheStats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Streamed:   c.streamed.Load(),
		CachedRefs: used,
	}
}
