package perfbench

import (
	"fmt"
	"io"

	"repro/internal/report"
)

// Tolerance configures the gate's pass/fail thresholds.
type Tolerance struct {
	// Throughput is the allowed fractional refs/s drop against baseline
	// (0.10 = a workload may be up to 10% slower before the gate fails).
	Throughput float64
	// PinnedAllocCeiling is the allocs/pass value at or above which a
	// pinned workload hard-fails regardless of baseline. The default 1.0
	// means "any real per-pass allocation": a genuine leak measures >= 1,
	// while stray background allocations caught mid-measurement show up
	// as fractions.
	PinnedAllocCeiling float64
}

// DefaultTolerance is the gate's default: ±10% throughput, no allocations
// on pinned paths.
func DefaultTolerance() Tolerance {
	return Tolerance{Throughput: 0.10, PinnedAllocCeiling: 1.0}
}

// Verdict is one workload's gate outcome.
type Verdict string

const (
	VerdictOK      Verdict = "ok"      // within tolerance
	VerdictFast    Verdict = "fast"    // faster than baseline beyond tolerance (passes; refresh the baseline)
	VerdictSlow    Verdict = "slow"    // slower than baseline beyond tolerance (fails)
	VerdictAllocs  Verdict = "allocs"  // pinned path allocates per pass (fails)
	VerdictMissing Verdict = "missing" // in the baseline but not measured (fails)
	VerdictNew     Verdict = "new"     // measured but not in the baseline (passes)
)

// failed reports whether the verdict fails the gate.
func (v Verdict) failed() bool {
	return v == VerdictSlow || v == VerdictAllocs || v == VerdictMissing
}

// Row is one workload's comparison against baseline.
type Row struct {
	Name           string
	Verdict        Verdict
	BaseRefsPerSec float64
	NewRefsPerSec  float64
	DeltaPct       float64 // (new-base)/base * 100; 0 for missing/new
	AllocsPerPass  float64
	Pinned         bool
}

// GateResult is the full gate outcome: per-workload rows plus the overall
// pass/fail.
type GateResult struct {
	Rows      []Row
	Tolerance Tolerance
}

// OK reports whether every row passed.
func (g *GateResult) OK() bool {
	for _, r := range g.Rows {
		if r.Verdict.failed() {
			return false
		}
	}
	return true
}

// Failures returns the failing rows.
func (g *GateResult) Failures() []Row {
	var out []Row
	for _, r := range g.Rows {
		if r.Verdict.failed() {
			out = append(out, r)
		}
	}
	return out
}

// Compare gates current against baseline. Every baseline workload must be
// present and within the throughput tolerance; pinned workloads must not
// allocate per pass (a hard failure even when throughput holds, because
// allocs/pass is host-independent and survives CI-runner speed variance).
// Workloads new in current pass with a note.
func Compare(baseline, current *Report, tol Tolerance) (*GateResult, error) {
	if baseline.Schema != Schema {
		return nil, fmt.Errorf("perfbench: baseline schema %q, want %q", baseline.Schema, Schema)
	}
	if current.Schema != Schema {
		return nil, fmt.Errorf("perfbench: current schema %q, want %q", current.Schema, Schema)
	}
	if tol.Throughput <= 0 {
		tol.Throughput = DefaultTolerance().Throughput
	}
	if tol.PinnedAllocCeiling <= 0 {
		tol.PinnedAllocCeiling = DefaultTolerance().PinnedAllocCeiling
	}
	g := &GateResult{Tolerance: tol}
	seen := make(map[string]bool)
	for _, base := range baseline.Workloads {
		seen[base.Name] = true
		cur, ok := current.Result(base.Name)
		if !ok {
			g.Rows = append(g.Rows, Row{Name: base.Name, Verdict: VerdictMissing, BaseRefsPerSec: base.RefsPerSec})
			continue
		}
		row := Row{
			Name:           base.Name,
			BaseRefsPerSec: base.RefsPerSec,
			NewRefsPerSec:  cur.RefsPerSec,
			AllocsPerPass:  cur.AllocsPerPass,
			Pinned:         cur.Pinned,
		}
		if base.RefsPerSec > 0 {
			row.DeltaPct = 100 * (cur.RefsPerSec - base.RefsPerSec) / base.RefsPerSec
		}
		switch {
		case cur.Pinned && cur.AllocsPerPass >= tol.PinnedAllocCeiling:
			row.Verdict = VerdictAllocs
		case base.RefsPerSec > 0 && cur.RefsPerSec < base.RefsPerSec*(1-tol.Throughput):
			row.Verdict = VerdictSlow
		case base.RefsPerSec > 0 && cur.RefsPerSec > base.RefsPerSec*(1+tol.Throughput):
			row.Verdict = VerdictFast
		default:
			row.Verdict = VerdictOK
		}
		g.Rows = append(g.Rows, row)
	}
	for _, cur := range current.Workloads {
		if seen[cur.Name] {
			continue
		}
		row := Row{Name: cur.Name, Verdict: VerdictNew, NewRefsPerSec: cur.RefsPerSec,
			AllocsPerPass: cur.AllocsPerPass, Pinned: cur.Pinned}
		if cur.Pinned && cur.AllocsPerPass >= tol.PinnedAllocCeiling {
			row.Verdict = VerdictAllocs
		}
		g.Rows = append(g.Rows, row)
	}
	return g, nil
}

// Fprint renders the gate result as a readable regression table.
func (g *GateResult) Fprint(out io.Writer) {
	tb := report.NewTable("workload", "base refs/s", "new refs/s", "delta%", "allocs/pass", "verdict")
	for _, r := range g.Rows {
		tb.Rowf(r.Name,
			fmt.Sprintf("%.0f", r.BaseRefsPerSec),
			fmt.Sprintf("%.0f", r.NewRefsPerSec),
			fmt.Sprintf("%+.1f", r.DeltaPct),
			fmt.Sprintf("%.1f", r.AllocsPerPass),
			string(r.Verdict))
	}
	tb.Notef("throughput tolerance ±%.0f%%; pinned paths fail at >= %.1f allocs/pass",
		100*g.Tolerance.Throughput, g.Tolerance.PinnedAllocCeiling)
	if fails := g.Failures(); len(fails) > 0 {
		tb.Notef("PERF GATE FAILED: %d workload(s) regressed", len(fails))
	} else {
		tb.Note("perf gate passed")
	}
	tb.Fprint(out)
}
