package perfbench

import (
	"bytes"
	"compress/gzip"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// --- hand-rolled protobuf encoder for exactness tests ---

type pb struct{ bytes.Buffer }

func (b *pb) varint(v uint64) {
	for v >= 0x80 {
		b.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	b.WriteByte(byte(v))
}

func (b *pb) tag(field, wire int) { b.varint(uint64(field<<3 | wire)) }

func (b *pb) msg(field int, body []byte) {
	b.tag(field, wireBytes)
	b.varint(uint64(len(body)))
	b.Write(body)
}

func (b *pb) str(field int, s string) { b.msg(field, []byte(s)) }

func (b *pb) uint(field int, v uint64) {
	b.tag(field, wireVarint)
	b.varint(v)
}

func (b *pb) packed(field int, vals ...uint64) {
	var body pb
	for _, v := range vals {
		body.varint(v)
	}
	b.msg(field, body.Bytes())
}

// testProfileBytes encodes a two-sample profile:
//
//	sample 0: stack leafA <- rootB, cpu 100ns
//	sample 1: stack rootB,          cpu 50ns
//
// with sample types {samples,count} and {cpu,nanoseconds}. The string
// table intentionally FOLLOWS the messages that reference it, to exercise
// deferred resolution.
func testProfileBytes(t *testing.T, leafA, rootB string) []byte {
	t.Helper()
	var p pb

	var vt1 pb
	vt1.uint(1, 1) // "samples"
	vt1.uint(2, 2) // "count"
	p.msg(1, vt1.Bytes())
	var vt2 pb
	vt2.uint(1, 3) // "cpu"
	vt2.uint(2, 4) // "nanoseconds"
	p.msg(1, vt2.Bytes())

	var s1 pb
	s1.packed(1, 1, 2) // locations: leaf loc 1, then loc 2
	s1.packed(2, 1, 100)
	p.msg(2, s1.Bytes())
	var s2 pb
	s2.uint(1, 2) // unpacked single location
	s2.packed(2, 1, 50)
	p.msg(2, s2.Bytes())

	for loc, fn := range map[uint64]uint64{1: 10, 2: 11} {
		var line pb
		line.uint(1, fn)
		var l pb
		l.uint(1, loc)
		l.msg(4, line.Bytes())
		p.msg(4, l.Bytes())
	}

	var f1 pb
	f1.uint(1, 10)
	f1.uint(2, 5) // leafA
	p.msg(5, f1.Bytes())
	var f2 pb
	f2.uint(1, 11)
	f2.uint(2, 6) // rootB
	p.msg(5, f2.Bytes())

	for _, s := range []string{"", "samples", "count", "cpu", "nanoseconds", leafA, rootB} {
		p.str(6, s)
	}
	p.uint(10, uint64(2*time.Millisecond.Nanoseconds())) // duration_nanos
	p.uint(12, 10000000)                                 // period
	return p.Bytes()
}

func TestParseProfileHandEncoded(t *testing.T) {
	data := testProfileBytes(t, "repro/internal/core.(*Classifier).RefBatch", "testing.(*B).runN")
	prof, err := ParseProfile(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(prof.SampleTypes); got != 2 {
		t.Fatalf("sample types = %d, want 2", got)
	}
	if prof.SampleTypes[1] != (ValueType{Type: "cpu", Unit: "nanoseconds"}) {
		t.Fatalf("sample type 1 = %+v", prof.SampleTypes[1])
	}
	if got := prof.CPUValueIndex(); got != 1 {
		t.Fatalf("CPUValueIndex = %d, want 1", got)
	}
	if len(prof.Samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(prof.Samples))
	}
	stack := prof.FuncStack(prof.Samples[0])
	want := []string{"repro/internal/core.(*Classifier).RefBatch", "testing.(*B).runN"}
	if len(stack) != 2 || stack[0] != want[0] || stack[1] != want[1] {
		t.Fatalf("stack = %v, want %v", stack, want)
	}
	if prof.Period != 10000000 {
		t.Fatalf("period = %d", prof.Period)
	}

	byPhase, total := Breakdown(prof)
	if total != 150 {
		t.Fatalf("total = %d, want 150", total)
	}
	if byPhase["classify"] != 100 {
		t.Fatalf("classify = %d, want 100", byPhase["classify"])
	}
	if byPhase["other"] != 50 {
		t.Fatalf("other = %d, want 50", byPhase["other"])
	}
	pct := Percentages(byPhase, total)
	if pct["classify"] < 66 || pct["classify"] > 67 {
		t.Fatalf("classify%% = %f", pct["classify"])
	}
	for _, ph := range Phases {
		if _, ok := pct[ph]; !ok {
			t.Fatalf("percentages missing canonical phase %q", ph)
		}
	}
}

func TestParseProfileGzipped(t *testing.T) {
	data := testProfileBytes(t, "a", "b")
	var gz bytes.Buffer
	w := gzip.NewWriter(&gz)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	prof, err := ParseProfile(bytes.NewReader(gz.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(prof.Samples))
	}
}

func TestParseProfileErrors(t *testing.T) {
	cases := map[string][]byte{
		"truncated varint": {0x80, 0x80},
		"overrun length":   {0x0a, 0x7f, 0x01}, // field 1, claims 127 bytes, has 1
		"bad gzip":         {0x1f, 0x8b, 0x00}, // gzip magic, garbage header
		"string idx overrun": func() []byte {
			var p pb
			var f pb
			f.uint(1, 1)
			f.uint(2, 99)
			p.msg(5, f.Bytes())
			return p.Bytes()
		}(),
	}
	for name, data := range cases {
		if _, err := ParseProfile(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ParseProfile succeeded, want error", name)
		}
	}
}

// TestParseProfileEmpty: a zero-byte profile parses to an empty profile
// rather than erroring (Breakdown then reports all-zero phases).
func TestParseProfileEmpty(t *testing.T) {
	prof, err := ParseProfile(bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	byPhase, total := Breakdown(prof)
	if total != 0 {
		t.Fatalf("total = %d", total)
	}
	for _, ph := range Phases {
		if byPhase[ph] != 0 {
			t.Fatalf("phase %s = %d, want 0", ph, byPhase[ph])
		}
	}
}

// spin burns CPU in a named function so a real profile has something to
// attribute.
//
//go:noinline
func spin(d time.Duration) uint64 {
	var acc uint64
	for start := time.Now(); time.Since(start) < d; {
		for i := 0; i < 1.0e5; i++ {
			acc = acc*1664525 + 1013904223
		}
	}
	return acc
}

// TestParseProfileReal parses an actual runtime/pprof CPU profile written
// by this process and checks the decoder agrees with the runtime's writer:
// cpu/nanoseconds sample type present, samples resolvable to function
// names, and the spin function visible in some stack.
func TestParseProfileReal(t *testing.T) {
	var prof *Profile
	// The sampler is statistical; retry a few times before declaring the
	// decoder (rather than the scheduler) broken.
	for attempt := 0; attempt < 5; attempt++ {
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			t.Fatal(err)
		}
		spin(150 * time.Millisecond)
		pprof.StopCPUProfile()
		p, err := ParseProfile(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Samples) > 0 {
			prof = p
			break
		}
	}
	if prof == nil {
		t.Skip("no CPU samples after 5 attempts; host too noisy to assert on")
	}
	hasCPU := false
	for _, st := range prof.SampleTypes {
		if st.Type == "cpu" && st.Unit == "nanoseconds" {
			hasCPU = true
		}
	}
	if !hasCPU {
		t.Fatalf("no cpu/nanoseconds sample type in %+v", prof.SampleTypes)
	}
	found := false
	for _, s := range prof.Samples {
		for _, fn := range prof.FuncStack(s) {
			if fn == "" {
				t.Fatal("sample resolved to an empty function name")
			}
			if strings.Contains(fn, "perfbench.spin") {
				found = true
			}
		}
	}
	if !found {
		t.Error("spin not found in any sample stack")
	}
}
