package perfbench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Schema identifies the BENCH_*.json layout. Bump on breaking changes;
// Compare refuses to gate across schemas.
const Schema = "uselessmiss/perfbench/v1"

// Report is one harness run: host metadata plus one result per workload.
// It serializes deterministically (workloads sorted by name, map keys
// sorted by encoding/json).
type Report struct {
	Schema    string           `json:"schema"`
	Host      string           `json:"host"`
	GoVersion string           `json:"go_version"`
	GOOS      string           `json:"goos"`
	GOARCH    string           `json:"goarch"`
	NumCPU    int              `json:"num_cpu"`
	Date      string           `json:"date"` // YYYY-MM-DD
	Workloads []WorkloadResult `json:"workloads"`
}

// WorkloadResult is one workload's measurement.
type WorkloadResult struct {
	Name   string `json:"name"`
	Pinned bool   `json:"pinned"`
	// RefsPerPass is the references one pass replays.
	RefsPerPass uint64 `json:"refs_per_pass"`
	// Passes is the total timed passes across all timing windows.
	Passes int `json:"passes"`
	// RefsPerSec and NsPerRef are the throughput figures of the fastest
	// unprofiled timing window (best-of-N defends against CPU steal on
	// shared hosts; profiling adds sampling overhead, so timing and
	// attribution run separately).
	RefsPerSec float64 `json:"refs_per_sec"`
	NsPerRef   float64 `json:"ns_per_ref"`
	// AllocsPerPass is heap allocations per pass, measured at
	// GOMAXPROCS(1) like testing.AllocsPerRun.
	AllocsPerPass float64 `json:"allocs_per_pass"`
	// CPUSampleNanos is the total CPU time the profile attributed; Phases
	// is its per-phase percentage split, with every canonical phase
	// present.
	CPUSampleNanos int64              `json:"cpu_sample_nanos"`
	Phases         map[string]float64 `json:"phases"`
}

// Result returns the named workload's result, if present.
func (r *Report) Result(name string) (WorkloadResult, bool) {
	for _, w := range r.Workloads {
		if w.Name == name {
			return w, true
		}
	}
	return WorkloadResult{}, false
}

// sortWorkloads pins the serialization order.
func (r *Report) sortWorkloads() {
	sort.Slice(r.Workloads, func(i, j int) bool { return r.Workloads[i].Name < r.Workloads[j].Name })
}

// WriteJSON writes the report as indented JSON with a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	r.sortWorkloads()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = r.WriteJSON(f)
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	return err
}

// Load reads a BENCH_*.json report and validates its schema.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perfbench: parsing %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("perfbench: %s has schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// hostTag returns the hostname sanitized for use in a BENCH_<host>_<date>
// filename.
func hostTag() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "unknown"
	}
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			return r
		default:
			return '-'
		}
	}, host)
	return clean
}

// DefaultFilename returns the conventional report filename,
// BENCH_<host>_<YYYY-MM-DD>.json.
func DefaultFilename(now time.Time) string {
	return fmt.Sprintf("BENCH_%s_%s.json", hostTag(), now.Format("2006-01-02"))
}

// newReport returns a report shell with the host metadata filled in.
func newReport(now time.Time) *Report {
	return &Report{
		Schema:    Schema,
		Host:      hostTag(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Date:      now.Format("2006-01-02"),
	}
}
