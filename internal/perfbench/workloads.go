package perfbench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/finite"
	"repro/internal/mem"
	"repro/internal/obs/span"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// Workload is one benchmarkable unit of the replay engine. Setup builds
// per-run state (collected traces, warmed classifiers) and returns the
// pass function; each pass replays the whole unit once and returns the
// number of references it processed.
type Workload struct {
	// Name identifies the workload in reports and baselines.
	Name string
	// Pinned marks a zero-alloc steady-state path: the gate hard-fails
	// when a pinned workload allocates per pass, regardless of baseline.
	Pinned bool
	// Setup builds run state and returns the pass function.
	Setup func() (pass func() (refs uint64, err error), err error)
}

// benchWorkload is the generated trace all microbenchmark workloads
// replay: LU32 is small enough that a pass stays in milliseconds but
// sharing-rich enough to exercise every miss class.
const benchWorkload = "LU32"

// collected caches the collected trace per generated workload.
var collected sync.Map // string → *trace.Trace

func collect(name string) (*trace.Trace, error) {
	if tr, ok := collected.Load(name); ok {
		return tr.(*trace.Trace), nil
	}
	w, err := workload.Get(name)
	if err != nil {
		return nil, err
	}
	tr, err := trace.Collect(w.Reader())
	if err != nil {
		return nil, err
	}
	collected.Store(name, tr)
	return tr, nil
}

// chunk slices refs into batches of the replay engine's batch size, so a
// pinned pass can re-feed a warmed consumer with zero allocations.
func chunk(refs []trace.Ref) [][]trace.Ref {
	const batch = 1024
	out := make([][]trace.Ref, 0, len(refs)/batch+1)
	for len(refs) > batch {
		out = append(out, refs[:batch])
		refs = refs[batch:]
	}
	if len(refs) > 0 {
		out = append(out, refs)
	}
	return out
}

// pinnedClassifierPass builds a pass that re-feeds a warmed batch consumer.
// The consumer is built and warmed once at setup; each pass only touches
// existing dense-table state, which is the steady state the 0 allocs/pass
// guarantee covers.
func pinnedClassifierPass(c trace.BatchConsumer, batches [][]trace.Ref, refs uint64) func() (uint64, error) {
	for _, b := range batches { // warm: populate the dense tables
		c.RefBatch(b)
	}
	return func() (uint64, error) {
		for _, b := range batches {
			c.RefBatch(b)
		}
		return refs, nil
	}
}

// All returns the registered workloads in report order: the three
// classifiers (pinned zero-alloc paths), the seven invalidation schedules,
// the finite cache, the block-sharded pipeline, raw generation, an
// end-to-end quick figure sweep (generation + classify + render), the
// trace-store paths (pinned segment decode, file-backed figure sweep), and
// the pinned disabled-span path (instrumentation off must stay free).
func All() []Workload {
	g := mem.MustGeometry(64)
	return []Workload{
		{
			Name:   "classify/appendixA",
			Pinned: true,
			Setup: func() (func() (uint64, error), error) {
				tr, err := collect(benchWorkload)
				if err != nil {
					return nil, err
				}
				c := core.NewClassifier(tr.Procs, g)
				return pinnedClassifierPass(c, chunk(tr.Refs), uint64(tr.Len())), nil
			},
		},
		{
			Name:   "classify/eggers",
			Pinned: true,
			Setup: func() (func() (uint64, error), error) {
				tr, err := collect(benchWorkload)
				if err != nil {
					return nil, err
				}
				c := core.NewEggers(tr.Procs, g)
				return pinnedClassifierPass(c, chunk(tr.Refs), uint64(tr.Len())), nil
			},
		},
		{
			Name:   "classify/torrellas",
			Pinned: true,
			Setup: func() (func() (uint64, error), error) {
				tr, err := collect(benchWorkload)
				if err != nil {
					return nil, err
				}
				c := core.NewTorrellas(tr.Procs, g)
				return pinnedClassifierPass(c, chunk(tr.Refs), uint64(tr.Len())), nil
			},
		},
		{
			Name: "schedules/all7",
			Setup: func() (func() (uint64, error), error) {
				tr, err := collect(benchWorkload)
				if err != nil {
					return nil, err
				}
				return func() (uint64, error) {
					consumers := make([]trace.Consumer, 0, len(coherence.Protocols))
					for _, name := range coherence.Protocols {
						sim, err := coherence.New(name, tr.Procs, g)
						if err != nil {
							return 0, err
						}
						consumers = append(consumers, sim)
					}
					if err := trace.Drive(tr.Reader(), consumers...); err != nil {
						return 0, err
					}
					return uint64(tr.Len()) * uint64(len(consumers)), nil
				}, nil
			},
		},
		{
			Name: "finite/lru",
			Setup: func() (func() (uint64, error), error) {
				tr, err := collect(benchWorkload)
				if err != nil {
					return nil, err
				}
				cfg := finite.Config{CapacityBytes: 16 << 10, Assoc: 4, Policy: finite.LRU}
				return func() (uint64, error) {
					if _, _, err := finite.Classify(tr.Reader(), g, cfg); err != nil {
						return 0, err
					}
					return uint64(tr.Len()), nil
				}, nil
			},
		},
		{
			Name: "sharded/demux4",
			Setup: func() (func() (uint64, error), error) {
				tr, err := collect(benchWorkload)
				if err != nil {
					return nil, err
				}
				return func() (uint64, error) {
					if _, _, err := core.ShardedClassify(tr.Reader(), g, 4); err != nil {
						return 0, err
					}
					return uint64(tr.Len()), nil
				}, nil
			},
		},
		{
			Name:   "classify/fused-fig5",
			Pinned: true,
			Setup: func() (func() (uint64, error), error) {
				tr, err := collect(benchWorkload)
				if err != nil {
					return nil, err
				}
				geos := make([]mem.Geometry, len(experiment.Fig5Blocks))
				for i, b := range experiment.Fig5Blocks {
					geos[i] = mem.MustGeometry(b)
				}
				c := core.NewFusedClassifier(tr.Procs, geos)
				// One fused pass does the classification work of one replay
				// per block size; refs/s stays comparable with the per-cell
				// classify workloads.
				return pinnedClassifierPass(c, chunk(tr.Refs), uint64(tr.Len())*uint64(len(geos))), nil
			},
		},
		{
			Name: "sharded/native4",
			Setup: func() (func() (uint64, error), error) {
				tr, err := collect(benchWorkload)
				if err != nil {
					return nil, err
				}
				geos := []mem.Geometry{g}
				return func() (uint64, error) {
					open := func(int) (trace.Reader, error) { return tr.Reader(), nil }
					if _, _, err := core.FusedShardedClassify(context.Background(), open, tr.Procs, geos, 4); err != nil {
						return 0, err
					}
					return uint64(tr.Len()), nil
				}, nil
			},
		},
		{
			Name: "generate/" + benchWorkload,
			Setup: func() (func() (uint64, error), error) {
				w, err := workload.Get(benchWorkload)
				if err != nil {
					return nil, err
				}
				buf := make([]trace.Ref, 1024)
				return func() (uint64, error) {
					r := w.Reader().(trace.BatchReader)
					var refs uint64
					for {
						n, err := r.NextBatch(buf)
						refs += uint64(n)
						if err == io.EOF {
							return refs, nil
						}
						if err != nil {
							return refs, err
						}
					}
				}, nil
			},
		},
		{
			Name: "endtoend/fig5-quick",
			Setup: func() (func() (uint64, error), error) {
				tr, err := collect("JACOBI")
				if err != nil {
					return nil, err
				}
				return func() (uint64, error) {
					o := experiment.Options{Out: io.Discard, Quick: true, Workloads: []string{"JACOBI"}}
					if err := experiment.Fig5(o); err != nil {
						return 0, err
					}
					// The refs/s figure normalizes by the per-cell work (the
					// cached trace length times the paper's block grid) so
					// the fused driver's one-pass-per-workload win shows up
					// as throughput rather than vanishing into the divisor.
					return uint64(tr.Len()) * uint64(len(experiment.Fig5Blocks)), nil
				}, nil
			},
		},
		{
			Name:   "tracestore/decode",
			Pinned: true,
			Setup: func() (func() (uint64, error), error) {
				w, err := workload.Get(benchWorkload)
				if err != nil {
					return nil, err
				}
				var buf bytes.Buffer
				if _, err := w.Pack(&buf, tracestore.WriterOptions{}); err != nil {
					return nil, err
				}
				f, err := tracestore.NewFile(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
				if err != nil {
					return nil, err
				}
				cur := f.Cursor()
				dst := make([]trace.Ref, 0, f.MaxSegmentRefs())
				pass := func() (uint64, error) {
					var refs uint64
					for i := range f.Segments() {
						out, err := cur.Read(i, dst)
						if err != nil {
							return refs, err
						}
						refs += uint64(len(out))
					}
					return refs, nil
				}
				// Warm once so the cursor's payload scratch reaches its
				// steady-state capacity before the 0 allocs/pass gate.
				if _, err := pass(); err != nil {
					return nil, err
				}
				return pass, nil
			},
		},
		{
			// The flight-recorder off switch: a warmed fused classifier
			// replayed with span calls on every batch while no recorder is
			// active. Pinned at 0 allocs/pass, this is the proof that the
			// disabled instrumentation path costs nothing on the hot path.
			Name:   "obs/span-disabled",
			Pinned: true,
			Setup: func() (func() (uint64, error), error) {
				tr, err := collect(benchWorkload)
				if err != nil {
					return nil, err
				}
				c := core.NewFusedClassifier(tr.Procs, []mem.Geometry{g})
				batches := chunk(tr.Refs)
				for _, b := range batches { // warm: populate the dense tables
					c.RefBatch(b)
				}
				return func() (uint64, error) {
					for _, b := range batches {
						sp := span.Root(span.OpDrive, span.Fields{Workload: benchWorkload})
						c.RefBatch(b)
						sp.End()
					}
					return uint64(tr.Len()), nil
				}, nil
			},
		},
		{
			// The serving layer's control plane: admission slot, circuit
			// breaker gate and verdict, release. Pinned at 0 allocs/pass —
			// load shedding must not generate garbage exactly when the
			// server is busiest.
			Name:   "serve/submit-path",
			Pinned: true,
			Setup: func() (func() (uint64, error), error) {
				p := serve.NewSubmitPathBench()
				const cycles = 8192
				return func() (uint64, error) {
					for i := 0; i < cycles; i++ {
						if err := p.Cycle(); err != nil {
							return 0, err
						}
					}
					return cycles, nil
				}, nil
			},
		},
		{
			Name: "tracestore/fig5-file",
			Setup: func() (func() (uint64, error), error) {
				set, refs, err := packedFig5Set()
				if err != nil {
					return nil, err
				}
				return func() (uint64, error) {
					o := experiment.Options{Out: io.Discard, Workloads: []string{benchWorkload}, TraceFiles: set}
					if err := experiment.Fig5(o); err != nil {
						return 0, err
					}
					return refs * uint64(len(experiment.Fig5Blocks)), nil
				}, nil
			},
		},
	}
}

// packedFig5Set packs the bench workload into a temp file once per process
// and opens it as a trace-file binding, so tracestore/fig5-file measures
// the real file-backed replay path against endtoend/fig5-quick's in-memory
// one. The file is unlinked immediately after opening: the descriptor keeps
// it readable and nothing is left on disk.
var packedOnce struct {
	sync.Once
	set  *experiment.TraceFileSet
	refs uint64
	err  error
}

func packedFig5Set() (*experiment.TraceFileSet, uint64, error) {
	packedOnce.Do(func() {
		w, err := workload.Get(benchWorkload)
		if err != nil {
			packedOnce.err = err
			return
		}
		dir, err := os.MkdirTemp("", "umbench-")
		if err != nil {
			packedOnce.err = err
			return
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, benchWorkload+".umt")
		stats, err := w.PackFile(path, tracestore.WriterOptions{})
		if err != nil {
			packedOnce.err = err
			return
		}
		set, err := experiment.OpenTraceFiles(map[string]string{benchWorkload: path})
		if err != nil {
			packedOnce.err = err
			return
		}
		packedOnce.set, packedOnce.refs = set, stats.Refs
	})
	return packedOnce.set, packedOnce.refs, packedOnce.err
}

// Find filters the registry by name; an empty list means all workloads.
func Find(names []string) ([]Workload, error) {
	all := All()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]Workload, len(all))
	for _, w := range all {
		byName[w.Name] = w
	}
	out := make([]Workload, 0, len(names))
	for _, n := range names {
		w, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("perfbench: unknown workload %q (run 'bench -list')", n)
		}
		out = append(out, w)
	}
	return out, nil
}
