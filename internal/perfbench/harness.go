package perfbench

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"time"
)

// Options tunes one harness run. The zero value gets sensible defaults
// (see normalize): the default full run takes a few seconds per workload
// set; tests drop the times to milliseconds.
type Options struct {
	// MinTime is the wall-clock floor for one unprofiled timing window.
	MinTime time.Duration
	// Repeats is how many timing windows to run; the report keeps the
	// fastest window's throughput. Best-of-N is the noise defense on
	// shared hardware: CPU steal only ever slows a window down, so the
	// fastest window tracks the machine's real capability and stays
	// comparable run to run.
	Repeats int
	// ProfileTime is the wall-clock floor for the profiled passes that
	// feed the per-phase breakdown.
	ProfileTime time.Duration
	// AllocPasses is how many passes the allocs/pass figure averages over.
	AllocPasses int
	// Workloads filters the registry by name; empty means all.
	Workloads []string
	// Logf, when set, receives one progress line per workload.
	Logf func(format string, args ...any)
}

func (o Options) normalize() Options {
	if o.MinTime <= 0 {
		o.MinTime = 300 * time.Millisecond
	}
	if o.ProfileTime <= 0 {
		o.ProfileTime = 500 * time.Millisecond
	}
	if o.Repeats <= 0 {
		o.Repeats = 5
	}
	if o.AllocPasses <= 0 {
		o.AllocPasses = 3
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Run measures every selected workload and returns the assembled report.
// It must not run concurrently with itself or any other CPU profiling in
// the process (runtime/pprof allows one active CPU profile).
func Run(o Options) (*Report, error) {
	o = o.normalize()
	workloads, err := Find(o.Workloads)
	if err != nil {
		return nil, err
	}
	rep := newReport(time.Now())
	for _, w := range workloads {
		res, err := Measure(w, o)
		if err != nil {
			return nil, fmt.Errorf("perfbench: %s: %w", w.Name, err)
		}
		o.Logf("%-22s %12.0f refs/s  %8.2f ns/ref  %6.1f allocs/pass",
			res.Name, res.RefsPerSec, res.NsPerRef, res.AllocsPerPass)
		rep.Workloads = append(rep.Workloads, res)
	}
	rep.sortWorkloads()
	return rep, nil
}

// Measure runs one workload through the three measurement stages:
//
//  1. allocs/pass at GOMAXPROCS(1) with no profiler attached (the CPU
//     profile writer allocates, which would pollute the pinned-path
//     zero-alloc check);
//  2. unprofiled timed windows for refs/s and ns/ref, keeping the fastest
//     of Options.Repeats windows;
//  3. profiled passes, decoded into the per-phase breakdown.
func Measure(w Workload, o Options) (WorkloadResult, error) {
	o = o.normalize()
	pass, err := w.Setup()
	if err != nil {
		return WorkloadResult{}, err
	}
	refs, err := pass() // warmup, and establishes refs/pass
	if err != nil {
		return WorkloadResult{}, err
	}
	res := WorkloadResult{Name: w.Name, Pinned: w.Pinned, RefsPerPass: refs}

	if res.AllocsPerPass, err = measureAllocs(pass, o.AllocPasses); err != nil {
		return res, err
	}

	for i := 0; i < o.Repeats; i++ {
		passes, elapsed, err := timedPasses(pass, o.MinTime)
		if err != nil {
			return res, err
		}
		res.Passes += passes
		totalRefs := float64(refs) * float64(passes)
		if sec := elapsed.Seconds(); sec > 0 && totalRefs > 0 {
			if rps := totalRefs / sec; rps > res.RefsPerSec {
				res.RefsPerSec = rps
				res.NsPerRef = float64(elapsed.Nanoseconds()) / totalRefs
			}
		}
	}

	prof, err := profiledPasses(pass, o.ProfileTime)
	if err != nil {
		return res, err
	}
	byPhase, total := Breakdown(prof)
	res.CPUSampleNanos = total
	res.Phases = Percentages(byPhase, total)
	return res, nil
}

// measureAllocs returns heap allocations per pass, serialized to one
// scheduler thread the way testing.AllocsPerRun does so concurrent
// background allocations do not leak into the figure. Allocations by
// runtime goroutines (timers, finalizers, a logger flush) still land in
// the process-wide malloc counter at random, so the figure is the minimum
// over several measurement windows after a warmup pass: a pass's own
// allocations appear in every window, background noise does not — and the
// pinned-path gate must not flake on noise.
func measureAllocs(pass func() (uint64, error), passes int) (float64, error) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	if _, err := pass(); err != nil { // warmup, as testing.AllocsPerRun does
		return 0, err
	}
	const trials = 3
	best := math.Inf(1)
	var before, after runtime.MemStats
	for t := 0; t < trials; t++ {
		runtime.ReadMemStats(&before)
		for i := 0; i < passes; i++ {
			if _, err := pass(); err != nil {
				return 0, err
			}
		}
		runtime.ReadMemStats(&after)
		if got := float64(after.Mallocs-before.Mallocs) / float64(passes); got < best {
			best = got
		}
	}
	return best, nil
}

// timedPasses repeats pass until minTime has elapsed and returns the pass
// count and total duration.
func timedPasses(pass func() (uint64, error), minTime time.Duration) (int, time.Duration, error) {
	start := time.Now()
	passes := 0
	for {
		if _, err := pass(); err != nil {
			return passes, time.Since(start), err
		}
		passes++
		if time.Since(start) >= minTime {
			return passes, time.Since(start), nil
		}
	}
}

// profiledPasses repeats pass under a CPU profile for at least profileTime
// and returns the decoded profile.
func profiledPasses(pass func() (uint64, error), profileTime time.Duration) (*Profile, error) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return nil, fmt.Errorf("starting CPU profile: %w", err)
	}
	start := time.Now()
	var runErr error
	for time.Since(start) < profileTime {
		if _, runErr = pass(); runErr != nil {
			break
		}
	}
	pprof.StopCPUProfile()
	if runErr != nil {
		return nil, runErr
	}
	return ParseProfile(&buf)
}
