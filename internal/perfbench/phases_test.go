package perfbench

import "testing"

func TestPhaseOfStack(t *testing.T) {
	cases := []struct {
		name  string
		stack []string // leaf first
		want  string
	}{
		{"classifier leaf", []string{"repro/internal/core.(*Classifier).RefBatch", "repro/internal/trace.Drive"}, "classify"},
		{"runtime leaf attributes to caller", []string{"runtime.mallocgc", "repro/internal/core.NewClassifier"}, "classify"},
		{"memmove under dense", []string{"runtime.memmove", "repro/internal/dense.(*Map[...]).grow"}, "classify"},
		{"generator", []string{"repro/internal/workload.(*Workload).Reader.func1"}, "generation"},
		{"demux pump", []string{"repro/internal/trace.(*Demux).pump"}, "demux"},
		{"demux shard read", []string{"repro/internal/trace.(*demuxShard).NextBatch"}, "demux"},
		{"shard key", []string{"repro/internal/trace.BlockShard.func1"}, "demux"},
		{"replay pump", []string{"repro/internal/trace.Drive"}, "replay"},
		{"codec", []string{"repro/internal/trace.(*Decoder).NextBatch"}, "replay"},
		{"sharded merge fold", []string{"repro/internal/core.RunShardedContext.func2"}, "merge"},
		{"coherence merge", []string{"repro/internal/coherence.MergeResults"}, "merge"},
		{"schedule", []string{"repro/internal/coherence.(*min).RefBatch"}, "classify"},
		{"finite cache", []string{"repro/internal/finite.(*Classifier).access"}, "classify"},
		{"timing model", []string{"repro/internal/timing.(*simulator).Ref"}, "classify"},
		{"renderer", []string{"repro/internal/report.(*Table).Fprint"}, "render"},
		{"gc worker", []string{"runtime.gcBgMarkWorker"}, "runtime"},
		{"pure harness", []string{"testing.(*B).runN", "testing.(*B).launch"}, "other"},
		{"empty stack", nil, "other"},
		{"experiment driver only", []string{"repro/internal/experiment.Fig5"}, "other"},
	}
	for _, tc := range cases {
		if got := PhaseOfStack(tc.stack); got != tc.want {
			t.Errorf("%s: PhaseOfStack(%v) = %q, want %q", tc.name, tc.stack, got, tc.want)
		}
	}
}

// TestPhasesCanonicalOrder: the canonical phase list is stable and
// duplicate-free — BENCH_*.json consumers key on it.
func TestPhasesCanonicalOrder(t *testing.T) {
	seen := map[string]bool{}
	for _, ph := range Phases {
		if seen[ph] {
			t.Fatalf("duplicate phase %q", ph)
		}
		seen[ph] = true
	}
	for _, must := range []string{"generation", "demux", "classify", "merge", "render"} {
		if !seen[must] {
			t.Fatalf("canonical phases missing %q", must)
		}
	}
}
