package perfbench

// The harness workloads double as standard Go benchmarks: `make bench`
// (go test -bench ./...) sees the exact units the BENCH_*.json baselines
// defend, so benchstat comparisons and the JSON perf gate stay in
// agreement about what is being measured.

import "testing"

func BenchmarkWorkloads(b *testing.B) {
	for _, w := range All() {
		b.Run(w.Name, func(b *testing.B) {
			pass, err := w.Setup()
			if err != nil {
				b.Fatal(err)
			}
			refs, err := pass() // warmup outside the timer
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pass(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(refs)*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
		})
	}
}
