package perfbench

import (
	"strings"
	"testing"
	"time"
)

func syntheticReport(rps map[string]float64) *Report {
	rep := newReport(time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC))
	for name, v := range rps {
		w := WorkloadResult{
			Name: name, RefsPerPass: 1000, Passes: 3,
			RefsPerSec: v, NsPerRef: 1e9 / v,
			Phases: Percentages(map[string]int64{}, 0),
		}
		if strings.HasPrefix(name, "classify/") {
			w.Pinned = true
		}
		rep.Workloads = append(rep.Workloads, w)
	}
	rep.sortWorkloads()
	return rep
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := syntheticReport(map[string]float64{"classify/appendixA": 50e6, "schedules/all7": 10e6})
	cur := syntheticReport(map[string]float64{"classify/appendixA": 48e6, "schedules/all7": 10.5e6})
	g, err := Compare(base, cur, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if !g.OK() {
		t.Fatalf("gate failed within tolerance: %+v", g.Rows)
	}
	for _, r := range g.Rows {
		if r.Verdict != VerdictOK {
			t.Errorf("%s: verdict %s, want ok", r.Name, r.Verdict)
		}
	}
}

// TestCompareDoctoredBaselineFails: against a baseline with inflated
// throughput (the acceptance-criteria scenario), the gate fails and the
// regression table names the slow workload.
func TestCompareDoctoredBaselineFails(t *testing.T) {
	base := syntheticReport(map[string]float64{"classify/appendixA": 500e6}) // doctored 10x
	cur := syntheticReport(map[string]float64{"classify/appendixA": 50e6})
	g, err := Compare(base, cur, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if g.OK() {
		t.Fatal("gate passed against a doctored baseline")
	}
	fails := g.Failures()
	if len(fails) != 1 || fails[0].Verdict != VerdictSlow {
		t.Fatalf("failures = %+v, want one slow verdict", fails)
	}
	var sb strings.Builder
	g.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"classify/appendixA", "slow", "PERF GATE FAILED"} {
		if !strings.Contains(out, want) {
			t.Errorf("regression table missing %q:\n%s", want, out)
		}
	}
}

func TestCompareMissingWorkloadFails(t *testing.T) {
	base := syntheticReport(map[string]float64{"classify/appendixA": 50e6, "finite/lru": 20e6})
	cur := syntheticReport(map[string]float64{"classify/appendixA": 50e6})
	g, err := Compare(base, cur, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if g.OK() {
		t.Fatal("gate passed with a baseline workload missing from the run")
	}
	fails := g.Failures()
	if len(fails) != 1 || fails[0].Name != "finite/lru" || fails[0].Verdict != VerdictMissing {
		t.Fatalf("failures = %+v", fails)
	}
}

func TestComparePinnedAllocsHardFail(t *testing.T) {
	base := syntheticReport(map[string]float64{"classify/appendixA": 50e6})
	cur := syntheticReport(map[string]float64{"classify/appendixA": 55e6}) // faster, but...
	cur.Workloads[0].AllocsPerPass = 3
	g, err := Compare(base, cur, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if g.OK() {
		t.Fatal("gate passed a pinned path that allocates")
	}
	if fails := g.Failures(); len(fails) != 1 || fails[0].Verdict != VerdictAllocs {
		t.Fatalf("failures = %+v, want one allocs verdict", g.Failures())
	}
}

// TestCompareFastAndNewPass: being faster than baseline or adding a new
// workload is not a failure.
func TestCompareFastAndNewPass(t *testing.T) {
	base := syntheticReport(map[string]float64{"classify/appendixA": 50e6})
	cur := syntheticReport(map[string]float64{"classify/appendixA": 80e6, "sharded/demux4": 9e6})
	g, err := Compare(base, cur, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if !g.OK() {
		t.Fatalf("gate failed on improvement: %+v", g.Rows)
	}
	verdicts := map[string]Verdict{}
	for _, r := range g.Rows {
		verdicts[r.Name] = r.Verdict
	}
	if verdicts["classify/appendixA"] != VerdictFast {
		t.Errorf("faster workload verdict = %s, want fast", verdicts["classify/appendixA"])
	}
	if verdicts["sharded/demux4"] != VerdictNew {
		t.Errorf("new workload verdict = %s, want new", verdicts["sharded/demux4"])
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	base := syntheticReport(map[string]float64{"classify/appendixA": 50e6})
	cur := syntheticReport(map[string]float64{"classify/appendixA": 50e6})
	base.Schema = "other/v2"
	if _, err := Compare(base, cur, DefaultTolerance()); err == nil {
		t.Fatal("Compare accepted mismatched schemas")
	}
}
