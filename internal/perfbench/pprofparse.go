// Package perfbench is the profile-guided benchmark harness behind the
// `uselessmiss bench` subcommand and the `make bench-gate` CI perf gate.
//
// It runs each representative workload of the replay engine (the three
// classifiers, the seven invalidation schedules, the finite cache, the
// sharded demux pipeline, workload generation and an end-to-end figure
// sweep) under a CPU profile, decodes the pprof protobuf with a
// hand-rolled decoder (no module dependencies), attributes the samples to
// named phases (generation, demux, replay, classify, merge, render), and
// emits a schema-versioned machine-readable report. A committed baseline
// report plus Compare turn every number in results/*.txt into a defended
// floor: CI fails with a readable regression table when a change slows a
// workload beyond tolerance or reintroduces allocations on a pinned path.
package perfbench

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// Profile is the subset of the pprof profile.proto message the harness
// needs: the sample types, the samples, and the location → function-name
// resolution chain. Values it does not use (mappings, labels, line
// numbers) are parsed past, not retained.
type Profile struct {
	// SampleTypes names the per-sample value columns, e.g. {samples,count},
	// {cpu,nanoseconds}.
	SampleTypes []ValueType
	// Samples are the raw samples; location IDs are leaf-first.
	Samples []Sample
	// DurationNanos is the profile's wall-clock coverage.
	DurationNanos int64
	// Period is the sampling period in PeriodType units.
	Period int64

	funcs  map[uint64]string   // function id → name
	locs   map[uint64][]uint64 // location id → function ids, leaf-first
	strtab []string

	// Deferred string-table resolution state: the string table may follow
	// the messages that reference it, so indices are recorded during the
	// field walk and resolved at the end of ParseProfile.
	funcNameIdx   map[uint64]int64
	sampleTypeIdx [][2]int64
}

// ValueType is one sample-value column: a type and unit, e.g. cpu/nanoseconds.
type ValueType struct {
	Type string
	Unit string
}

// Sample is one pprof sample: a call stack (leaf first) and one value per
// sample type.
type Sample struct {
	LocationIDs []uint64
	Values      []int64
}

// CPUValueIndex returns the index of the cpu/nanoseconds value column, or
// the last column when no cpu column exists (the pprof convention: the
// last sample type is the default).
func (p *Profile) CPUValueIndex() int {
	for i, st := range p.SampleTypes {
		if st.Type == "cpu" {
			return i
		}
	}
	return len(p.SampleTypes) - 1
}

// FuncStack resolves a sample's call stack to function names, leaf first.
// Locations with several lines (inlined frames) expand in order, innermost
// first, matching the proto's layout.
func (p *Profile) FuncStack(s Sample) []string {
	stack := make([]string, 0, len(s.LocationIDs))
	for _, loc := range s.LocationIDs {
		for _, fid := range p.locs[loc] {
			stack = append(stack, p.funcs[fid])
		}
	}
	return stack
}

// ParseProfile decodes a pprof CPU (or heap) profile as written by
// runtime/pprof: an optionally gzip-compressed profile.proto message. Only
// the fields the phase attribution needs are retained.
func ParseProfile(r io.Reader) (*Profile, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("perfbench: reading profile: %w", err)
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		gz, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("perfbench: gunzip profile: %w", err)
		}
		if data, err = io.ReadAll(gz); err != nil {
			return nil, fmt.Errorf("perfbench: gunzip profile: %w", err)
		}
		if err := gz.Close(); err != nil {
			return nil, fmt.Errorf("perfbench: gunzip profile: %w", err)
		}
	}
	p := &Profile{
		funcs: make(map[uint64]string),
		locs:  make(map[uint64][]uint64),
	}
	if err := p.parseTop(data); err != nil {
		return nil, err
	}
	// String indices were recorded during the field walk; resolve them now
	// that the whole string table is known (the table may follow the
	// messages that reference it).
	for id, idx := range p.funcNameIdx {
		if idx < 0 || int(idx) >= len(p.strtab) {
			return nil, fmt.Errorf("perfbench: function %d: string index %d out of range", id, idx)
		}
		p.funcs[id] = p.strtab[idx]
	}
	for i := range p.sampleTypeIdx {
		ti, ui := p.sampleTypeIdx[i][0], p.sampleTypeIdx[i][1]
		if int(ti) >= len(p.strtab) || int(ui) >= len(p.strtab) || ti < 0 || ui < 0 {
			return nil, fmt.Errorf("perfbench: sample type %d: string index out of range", i)
		}
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: p.strtab[ti], Unit: p.strtab[ui]})
	}
	return p, nil
}

// idx lazily initializes the deferred-resolution maps.
func (p *Profile) idx() {
	if p.funcNameIdx == nil {
		p.funcNameIdx = make(map[uint64]int64)
	}
}

// protobuf wire types.
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

// buffer is a minimal protobuf wire-format reader.
type buffer struct {
	data []byte
	pos  int
}

func (b *buffer) empty() bool { return b.pos >= len(b.data) }

// varint decodes one base-128 varint.
func (b *buffer) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if b.pos >= len(b.data) {
			return 0, fmt.Errorf("perfbench: truncated varint")
		}
		c := b.data[b.pos]
		b.pos++
		v |= uint64(c&0x7f) << shift
		if c&0x80 == 0 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("perfbench: varint overflows 64 bits")
}

// field decodes one field key and returns the field number and wire type.
func (b *buffer) field() (num int, wire int, err error) {
	key, err := b.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(key >> 3), int(key & 7), nil
}

// bytesField decodes a length-delimited payload.
func (b *buffer) bytesField() ([]byte, error) {
	n, err := b.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b.data)-b.pos) {
		return nil, fmt.Errorf("perfbench: length-delimited field of %d bytes overruns buffer", n)
	}
	out := b.data[b.pos : b.pos+int(n)]
	b.pos += int(n)
	return out, nil
}

// skip discards one field payload of the given wire type.
func (b *buffer) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := b.varint()
		return err
	case wireFixed64:
		if len(b.data)-b.pos < 8 {
			return fmt.Errorf("perfbench: truncated fixed64")
		}
		b.pos += 8
		return nil
	case wireBytes:
		_, err := b.bytesField()
		return err
	case wireFixed32:
		if len(b.data)-b.pos < 4 {
			return fmt.Errorf("perfbench: truncated fixed32")
		}
		b.pos += 4
		return nil
	default:
		return fmt.Errorf("perfbench: unsupported wire type %d", wire)
	}
}

// packedUint64s decodes a repeated numeric field that may arrive packed
// (length-delimited run of varints) or as a single unpacked varint.
func packedUint64s(b *buffer, wire int, dst []uint64) ([]uint64, error) {
	switch wire {
	case wireBytes:
		payload, err := b.bytesField()
		if err != nil {
			return nil, err
		}
		pb := buffer{data: payload}
		for !pb.empty() {
			v, err := pb.varint()
			if err != nil {
				return nil, err
			}
			dst = append(dst, v)
		}
		return dst, nil
	case wireVarint:
		v, err := b.varint()
		if err != nil {
			return nil, err
		}
		return append(dst, v), nil
	default:
		return nil, fmt.Errorf("perfbench: repeated numeric field with wire type %d", wire)
	}
}

// parseTop walks the top-level Profile message.
func (p *Profile) parseTop(data []byte) error {
	p.idx()
	b := &buffer{data: data}
	for !b.empty() {
		num, wire, err := b.field()
		if err != nil {
			return err
		}
		switch num {
		case 1: // sample_type (ValueType)
			msg, err := b.bytesField()
			if err != nil {
				return err
			}
			ti, ui, err := parseValueType(msg)
			if err != nil {
				return err
			}
			p.sampleTypeIdx = append(p.sampleTypeIdx, [2]int64{ti, ui})
		case 2: // sample
			msg, err := b.bytesField()
			if err != nil {
				return err
			}
			s, err := parseSample(msg)
			if err != nil {
				return err
			}
			p.Samples = append(p.Samples, s)
		case 4: // location
			msg, err := b.bytesField()
			if err != nil {
				return err
			}
			if err := p.parseLocation(msg); err != nil {
				return err
			}
		case 5: // function
			msg, err := b.bytesField()
			if err != nil {
				return err
			}
			if err := p.parseFunction(msg); err != nil {
				return err
			}
		case 6: // string_table
			s, err := b.bytesField()
			if err != nil {
				return err
			}
			p.strtab = append(p.strtab, string(s))
		case 10: // duration_nanos
			v, err := b.varint()
			if err != nil {
				return err
			}
			p.DurationNanos = int64(v)
		case 12: // period
			v, err := b.varint()
			if err != nil {
				return err
			}
			p.Period = int64(v)
		default:
			if err := b.skip(wire); err != nil {
				return err
			}
		}
	}
	return nil
}

// parseValueType returns the type and unit string indices of a ValueType
// message.
func parseValueType(data []byte) (typ, unit int64, err error) {
	b := &buffer{data: data}
	for !b.empty() {
		num, wire, err := b.field()
		if err != nil {
			return 0, 0, err
		}
		switch num {
		case 1:
			v, err := b.varint()
			if err != nil {
				return 0, 0, err
			}
			typ = int64(v)
		case 2:
			v, err := b.varint()
			if err != nil {
				return 0, 0, err
			}
			unit = int64(v)
		default:
			if err := b.skip(wire); err != nil {
				return 0, 0, err
			}
		}
	}
	return typ, unit, nil
}

// parseSample decodes a Sample message: location_id and value arrays.
func parseSample(data []byte) (Sample, error) {
	var s Sample
	b := &buffer{data: data}
	for !b.empty() {
		num, wire, err := b.field()
		if err != nil {
			return s, err
		}
		switch num {
		case 1: // location_id, repeated
			if s.LocationIDs, err = packedUint64s(b, wire, s.LocationIDs); err != nil {
				return s, err
			}
		case 2: // value, repeated
			var vals []uint64
			if vals, err = packedUint64s(b, wire, nil); err != nil {
				return s, err
			}
			for _, v := range vals {
				s.Values = append(s.Values, int64(v))
			}
		default:
			if err := b.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

// parseLocation records a Location's function-id chain (its Line messages,
// innermost first).
func (p *Profile) parseLocation(data []byte) error {
	b := &buffer{data: data}
	var id uint64
	var fids []uint64
	for !b.empty() {
		num, wire, err := b.field()
		if err != nil {
			return err
		}
		switch num {
		case 1: // id
			if id, err = b.varint(); err != nil {
				return err
			}
		case 4: // line (message)
			msg, err := b.bytesField()
			if err != nil {
				return err
			}
			fid, err := parseLineFunctionID(msg)
			if err != nil {
				return err
			}
			fids = append(fids, fid)
		default:
			if err := b.skip(wire); err != nil {
				return err
			}
		}
	}
	p.locs[id] = fids
	return nil
}

// parseLineFunctionID extracts the function_id of a Line message.
func parseLineFunctionID(data []byte) (uint64, error) {
	b := &buffer{data: data}
	var fid uint64
	for !b.empty() {
		num, wire, err := b.field()
		if err != nil {
			return 0, err
		}
		if num == 1 {
			if fid, err = b.varint(); err != nil {
				return 0, err
			}
			continue
		}
		if err := b.skip(wire); err != nil {
			return 0, err
		}
	}
	return fid, nil
}

// parseFunction records a Function's name string index for deferred
// resolution.
func (p *Profile) parseFunction(data []byte) error {
	b := &buffer{data: data}
	var id uint64
	var nameIdx int64
	for !b.empty() {
		num, wire, err := b.field()
		if err != nil {
			return err
		}
		switch num {
		case 1: // id
			if id, err = b.varint(); err != nil {
				return err
			}
		case 2: // name (string table index)
			v, err := b.varint()
			if err != nil {
				return err
			}
			nameIdx = int64(v)
		default:
			if err := b.skip(wire); err != nil {
				return err
			}
		}
	}
	p.funcNameIdx[id] = nameIdx
	return nil
}
