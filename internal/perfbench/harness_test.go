package perfbench

import (
	"path/filepath"
	"testing"
	"time"
)

// fastOptions keeps a full-registry harness run in test time: throughput
// numbers are noisy at these durations, but the report structure and the
// allocs/pass figures are exact.
func fastOptions() Options {
	return Options{
		MinTime:     5 * time.Millisecond,
		Repeats:     2,
		ProfileTime: 20 * time.Millisecond,
		AllocPasses: 2,
	}
}

// TestRunAllWorkloads runs the full registry and checks the acceptance
// shape: at least six workloads, every one with throughput figures and a
// complete per-phase breakdown, and the pinned classifier paths at zero
// steady-state allocations.
func TestRunAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in -short mode")
	}
	rep, err := Run(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workloads) < 6 {
		t.Fatalf("registry has %d workloads, acceptance floor is 6", len(rep.Workloads))
	}
	if rep.Schema != Schema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Host == "" || rep.GoVersion == "" || rep.NumCPU <= 0 || rep.Date == "" {
		t.Fatalf("host metadata incomplete: %+v", rep)
	}
	pinned := 0
	for _, w := range rep.Workloads {
		if w.RefsPerPass == 0 {
			t.Errorf("%s: zero refs per pass", w.Name)
		}
		if w.RefsPerSec <= 0 || w.NsPerRef <= 0 {
			t.Errorf("%s: missing throughput figures: %+v", w.Name, w)
		}
		if w.Passes <= 0 {
			t.Errorf("%s: no timed passes", w.Name)
		}
		if len(w.Phases) != len(Phases) {
			t.Errorf("%s: phase breakdown has %d entries, want %d", w.Name, len(w.Phases), len(Phases))
		}
		for _, ph := range Phases {
			if _, ok := w.Phases[ph]; !ok {
				t.Errorf("%s: breakdown missing phase %q", w.Name, ph)
			}
		}
		if w.Pinned {
			pinned++
			if w.AllocsPerPass >= 1 {
				t.Errorf("%s: pinned path allocates %.1f allocs/pass", w.Name, w.AllocsPerPass)
			}
		}
	}
	if pinned < 3 {
		t.Errorf("only %d pinned workloads, want the three classifiers", pinned)
	}
}

// TestReportRoundTrip: WriteFile then Load preserves the report.
func TestReportRoundTrip(t *testing.T) {
	rep, err := Run(Options{
		MinTime:     time.Millisecond,
		Repeats:     1,
		ProfileTime: 2 * time.Millisecond,
		AllocPasses: 1,
		Workloads:   []string{"classify/appendixA"},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Workloads) != 1 || got.Workloads[0].Name != "classify/appendixA" {
		t.Fatalf("round trip mangled report: %+v", got)
	}
	if got.Workloads[0].RefsPerSec != rep.Workloads[0].RefsPerSec {
		t.Fatalf("refs/s changed across round trip: %f != %f",
			got.Workloads[0].RefsPerSec, rep.Workloads[0].RefsPerSec)
	}
}

// TestLoadRejectsWrongSchema: a report with a foreign schema string does
// not load (the gate must never diff across schema versions).
func TestLoadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	rep := newReport(time.Now())
	rep.Schema = "somebody/else/v9"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a wrong-schema report")
	}
}

// TestFindUnknownWorkload: asking for an unregistered workload is an
// error, not a silent empty run.
func TestFindUnknownWorkload(t *testing.T) {
	if _, err := Find([]string{"no/such"}); err == nil {
		t.Fatal("Find accepted an unknown workload name")
	}
	all, err := Find(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 6 {
		t.Fatalf("Find(nil) returned %d workloads", len(all))
	}
}

// TestDefaultFilename: the conventional name embeds host and date.
func TestDefaultFilename(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	name := DefaultFilename(now)
	if filepath.Ext(name) != ".json" {
		t.Fatalf("name %q not .json", name)
	}
	if want := "_2026-08-07.json"; len(name) < len(want) || name[len(name)-len(want):] != want {
		t.Fatalf("name %q does not end with %q", name, want)
	}
	if name[:6] != "BENCH_" {
		t.Fatalf("name %q does not start with BENCH_", name)
	}
}
