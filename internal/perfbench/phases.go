package perfbench

import "strings"

// The canonical phases every per-phase breakdown reports, in rendering
// order. Every BENCH_*.json carries all of them (zero when unsampled) so
// the report shape is stable across hosts and runs.
//
//   - generation: the synthetic workload generators (internal/workload).
//   - demux:      the block-sharded demux pump and shard routing.
//   - replay:     reference delivery — batch pumps, slice readers, codecs
//     (internal/trace outside the demux).
//   - classify:   the classifiers, schedules, finite caches and their
//     dense tables (internal/core, coherence, finite, dense, timing).
//   - merge:      sharded-result merge and the consumer pool plumbing.
//   - render:     table and chart rendering (internal/report).
//   - runtime:    Go runtime work with no repro frame on the stack
//     (GC workers, scheduler).
//   - other:      everything else (harness overhead, experiment drivers,
//     sweep orchestration).
var Phases = []string{
	"generation", "demux", "replay", "classify", "merge", "render", "runtime", "other",
}

// phaseRule maps a function-name fragment to a phase. Rules are checked in
// order per frame; the first match of the leaf-most matching frame wins.
type phaseRule struct {
	substr string
	phase  string
}

// phaseRules: name-based rules run before package-prefix rules so the
// sharded merge fold (which lives in package core/coherence) and the demux
// machinery (which lives in package trace) attribute to their own phases
// rather than to classify/replay.
var phaseRules = []phaseRule{
	// Sharded plumbing.
	{"repro/internal/trace.(*Demux)", "demux"},
	{"repro/internal/trace.(*demuxShard)", "demux"},
	{"repro/internal/trace.BlockShard", "demux"},
	{"repro/internal/core.RunSharded", "merge"},
	{"repro/internal/coherence.MergeResults", "merge"},
	{"Merge", "merge"}, // any repro merge helper (checked against repro frames only)

	// Package prefixes.
	{"repro/internal/workload.", "generation"},
	{"repro/internal/trace.", "replay"},
	{"repro/internal/core.", "classify"},
	{"repro/internal/coherence.", "classify"},
	{"repro/internal/finite.", "classify"},
	{"repro/internal/dense.", "classify"},
	{"repro/internal/timing.", "classify"},
	{"repro/internal/report.", "render"},
}

// phaseOfFrame returns the phase of one stack frame, or "" when the frame
// belongs to no phase.
func phaseOfFrame(fn string) string {
	if !strings.Contains(fn, "repro/") {
		return ""
	}
	for _, r := range phaseRules {
		if strings.Contains(fn, r.substr) {
			return r.phase
		}
	}
	return ""
}

// PhaseOfStack attributes one sample stack (leaf first) to a phase: the
// leaf-most frame with a phase wins, so runtime internals (memmove,
// mallocgc) attribute to the repro caller that incurred them. Stacks with
// no repro frame split into "runtime" (leaf in the Go runtime: GC workers,
// scheduler) and "other" (harness and test overhead).
func PhaseOfStack(stack []string) string {
	for _, fn := range stack {
		if ph := phaseOfFrame(fn); ph != "" {
			return ph
		}
	}
	for _, fn := range stack {
		if strings.HasPrefix(fn, "runtime.") {
			return "runtime"
		}
	}
	return "other"
}

// Breakdown sums a profile's CPU sample values by phase. The returned map
// holds nanoseconds (or the profile's default unit) per phase, with every
// canonical phase present; total is the sum over all samples.
func Breakdown(p *Profile) (byPhase map[string]int64, total int64) {
	byPhase = make(map[string]int64, len(Phases))
	for _, ph := range Phases {
		byPhase[ph] = 0
	}
	vi := p.CPUValueIndex()
	if vi < 0 {
		return byPhase, 0
	}
	for _, s := range p.Samples {
		if vi >= len(s.Values) {
			continue
		}
		v := s.Values[vi]
		byPhase[PhaseOfStack(p.FuncStack(s))] += v
		total += v
	}
	return byPhase, total
}

// Percentages converts a Breakdown into per-phase percentages of total,
// with every canonical phase present. A zero total yields all zeros.
func Percentages(byPhase map[string]int64, total int64) map[string]float64 {
	out := make(map[string]float64, len(Phases))
	for _, ph := range Phases {
		if total > 0 {
			out[ph] = 100 * float64(byPhase[ph]) / float64(total)
		} else {
			out[ph] = 0
		}
	}
	return out
}
