// Package timing turns protocol miss behavior into execution time. The
// paper's introduction frames the whole problem in terms of processor
// blocking ("the processor blocking time during a memory request is called
// the penalty of the request") and motivates invalidation scheduling by the
// difficulty of hiding load miss latencies; this model quantifies that:
// each data reference costs one cycle, each miss blocks the processor for a
// penalty, synchronization has a base cost, and barriers (phase markers)
// align the processors to the slowest one. Store/upgrade latencies are
// hidden by default, as under the relaxed consistency models the paper
// assumes ("invalidation penalties can be easily eliminated through more
// aggressive consistency models").
package timing

import (
	"context"
	"fmt"
	"io"

	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Model holds the cost parameters in processor cycles.
type Model struct {
	// RefCycles is the cost of any data reference that hits (the
	// paper's perfect-memory baseline charges 1).
	RefCycles uint64
	// MissPenalty is the additional blocking time of a miss.
	MissPenalty uint64
	// SyncCycles is the base cost of an acquire or release.
	SyncCycles uint64
	// UpgradePenalty is the blocking time of an ownership upgrade;
	// 0 under relaxed consistency (stores are buffered and hidden).
	UpgradePenalty uint64
}

// DefaultModel returns a memory system with a 30-cycle miss penalty —
// the ballpark of the paper's era — over a 1-cycle processor.
func DefaultModel() Model {
	return Model{RefCycles: 1, MissPenalty: 30, SyncCycles: 3}
}

// Times reports the modeled execution of one protocol run.
type Times struct {
	Protocol string
	// Cycles is the parallel execution time: the slowest processor,
	// with barrier alignment at every phase boundary.
	Cycles uint64
	// BusyCycles is the total work (all processors' cycles summed),
	// excluding barrier waiting.
	BusyCycles uint64
	// StallCycles is the total time processors spent blocked on misses.
	StallCycles uint64
	// PerProc is each processor's busy time.
	PerProc []uint64
	// Result is the underlying protocol result.
	Result coherence.Result
}

// Utilization returns busy time over total processor-time.
func (t Times) Utilization() float64 {
	total := t.Cycles * uint64(len(t.PerProc))
	if total == 0 {
		return 0
	}
	return float64(t.BusyCycles) / float64(total)
}

// CyclesPerRef returns parallel cycles per data reference.
func (t Times) CyclesPerRef() float64 {
	if t.Result.DataRefs == 0 {
		return 0
	}
	return float64(t.Cycles) / float64(t.Result.DataRefs)
}

// timingCheckEvery is the cancellation-check period of the replay loop, in
// references: the same batch granularity as the trace.Drive pump.
const timingCheckEvery = 1024

// missCounter is satisfied by every coherence simulator.
type missCounter interface {
	MissCount() uint64
	UpgradeCount() uint64
}

// Run replays a trace through the named protocol and models each
// processor's blocking time under m. Phase markers act as barriers: every
// processor advances to the slowest one's clock.
func Run(protocol string, r trace.Reader, g mem.Geometry, m Model) (Times, error) {
	return RunContext(context.Background(), protocol, r, g, m)
}

// RunContext is Run with a cancellation context, observed once every
// timingCheckEvery references so the per-reference accounting loop stays
// cheap. A reader error other than io.EOF aborts the run and propagates
// (Run used to present such truncated replays as complete).
func RunContext(ctx context.Context, protocol string, r trace.Reader, g mem.Geometry, m Model) (Times, error) {
	sim, err := coherence.New(protocol, r.NumProcs(), g)
	if err != nil {
		trace.CloseReader(r) //nolint:errcheck // error path cleanup
		return Times{}, err
	}
	counter, ok := sim.(missCounter)
	if !ok {
		trace.CloseReader(r) //nolint:errcheck // error path cleanup
		return Times{}, fmt.Errorf("timing: protocol %s does not expose miss counts", protocol)
	}

	procs := r.NumProcs()
	cycles := make([]uint64, procs)
	var stall uint64
	var prevMisses, prevUpgrades uint64

	// charge adds the blocking of any misses and upgrades recorded since
	// the previous reference to processor p's clock.
	charge := func(p int) {
		if now := counter.MissCount(); now != prevMisses {
			delta := (now - prevMisses) * m.MissPenalty
			cycles[p] += delta
			stall += delta
			prevMisses = now
		}
		if now := counter.UpgradeCount(); now != prevUpgrades {
			delta := (now - prevUpgrades) * m.UpgradePenalty
			cycles[p] += delta
			stall += delta
			prevUpgrades = now
		}
	}

	defer trace.CloseReader(r) //nolint:errcheck // best-effort close after drain
	var refsReplayed uint64
	for {
		if refsReplayed%timingCheckEvery == 0 {
			if e := ctx.Err(); e != nil {
				mTimingRefs.Add(refsReplayed)
				return Times{}, e
			}
		}
		ref, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			mTimingRefs.Add(refsReplayed)
			return Times{}, err
		}
		refsReplayed++
		if ref.Kind == trace.Phase {
			// Barrier: everyone waits for the slowest.
			var max uint64
			for _, c := range cycles {
				if c > max {
					max = c
				}
			}
			for p := range cycles {
				cycles[p] = max
			}
			sim.Ref(ref)
			continue
		}
		sim.Ref(ref)
		p := int(ref.Proc)
		switch {
		case ref.Kind.IsData():
			cycles[p] += m.RefCycles
			// Protocols record at most one miss per data
			// reference; release-time flush misses are charged at
			// the release below.
			charge(p)
		case ref.Kind.IsSync():
			cycles[p] += m.SyncCycles
			charge(p)
		}
	}

	mTimingRefs.Add(refsReplayed)
	res := sim.Finish()
	t := Times{
		Protocol: protocol,
		PerProc:  cycles,
		Result:   res,
	}
	for _, c := range cycles {
		t.BusyCycles += c
		if c > t.Cycles {
			t.Cycles = c
		}
	}
	t.StallCycles = stall
	return t, nil
}
