package timing

import (
	"repro/internal/obs"
)

// References replayed through the timing model, added once per Run (the
// loop counts into a local; the single atomic add happens at the end).
var mTimingRefs = obs.Default.Counter(obs.NameTimingRefs)
