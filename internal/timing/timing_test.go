package timing

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

var g8 = mem.MustGeometry(8)

func TestRunChargesMisses(t *testing.T) {
	// One processor, three references to one block: one miss + two hits.
	tr := trace.New(1, trace.L(0, 0), trace.L(0, 0), trace.L(0, 1))
	m := Model{RefCycles: 1, MissPenalty: 10}
	times, err := Run("OTF", tr.Reader(), g8, m)
	if err != nil {
		t.Fatal(err)
	}
	if times.Cycles != 3+10 {
		t.Errorf("cycles = %d, want 13", times.Cycles)
	}
	if times.StallCycles != 10 {
		t.Errorf("stall = %d, want 10", times.StallCycles)
	}
	if times.CyclesPerRef() != 13.0/3 {
		t.Errorf("cycles/ref = %v", times.CyclesPerRef())
	}
}

func TestRunBarrierAligns(t *testing.T) {
	// Proc 0 does 3 refs, proc 1 does 1 ref, then a barrier, then both do
	// 1 more ref: parallel time = 3 (barrier) + 1 = 4 plus penalties.
	tr := trace.New(2,
		trace.L(0, 0), trace.L(0, 0), trace.L(0, 0),
		trace.L(1, 8),
		trace.P(),
		trace.L(0, 0), trace.L(1, 8),
	)
	m := Model{RefCycles: 1} // no penalties: pure reference counting
	times, err := Run("OTF", tr.Reader(), g8, m)
	if err != nil {
		t.Fatal(err)
	}
	if times.Cycles != 4 {
		t.Errorf("cycles = %d, want 4 (barrier alignment)", times.Cycles)
	}
	// Utilization: busy after alignment = 4+4 over 2*4.
	if u := times.Utilization(); u != 1.0 {
		t.Errorf("utilization = %v, want 1.0 (aligned clocks count as busy)", u)
	}
}

func TestRunSyncCost(t *testing.T) {
	tr := trace.New(1, trace.A(0, 5), trace.R(0, 5))
	m := Model{RefCycles: 1, SyncCycles: 7}
	times, err := Run("RD", tr.Reader(), g8, m)
	if err != nil {
		t.Fatal(err)
	}
	if times.Cycles != 14 {
		t.Errorf("cycles = %d, want 14", times.Cycles)
	}
}

func TestRunUpgradePenalty(t *testing.T) {
	// P0 cold store (miss), P1 load (miss), P0 store to shared copy:
	// an upgrade.
	tr := trace.New(2, trace.S(0, 0), trace.L(1, 0), trace.S(0, 0))
	base := Model{RefCycles: 1}
	noUp, err := Run("OTF", tr.Reader(), g8, base)
	if err != nil {
		t.Fatal(err)
	}
	base.UpgradePenalty = 5
	withUp, err := Run("OTF", tr.Reader(), g8, base)
	if err != nil {
		t.Fatal(err)
	}
	if withUp.BusyCycles != noUp.BusyCycles+5 {
		t.Errorf("upgrade penalty not charged: %d vs %d", withUp.BusyCycles, noUp.BusyCycles)
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	if _, err := Run("XYZ", trace.New(1).Reader(), g8, DefaultModel()); err == nil {
		t.Error("unknown protocol accepted")
	}
}

// Fewer misses must never model as more execution time under equal loads:
// MIN's time is at most OTF's on every workload-like trace.
func TestFewerMissesFasterExecution(t *testing.T) {
	tr := trace.New(2)
	// A false-sharing ping-pong where MIN removes all the useless misses.
	for i := 0; i < 200; i++ {
		tr.Append(trace.S(0, 0), trace.S(1, 1))
	}
	m := DefaultModel()
	min, err := Run("MIN", tr.Reader(), g8, m)
	if err != nil {
		t.Fatal(err)
	}
	otf, err := Run("OTF", tr.Reader(), g8, m)
	if err != nil {
		t.Fatal(err)
	}
	if min.Cycles >= otf.Cycles {
		t.Errorf("MIN %d cycles should beat OTF %d", min.Cycles, otf.Cycles)
	}
	if min.Result.Misses >= otf.Result.Misses {
		t.Errorf("miss counts inverted: %d vs %d", min.Result.Misses, otf.Result.Misses)
	}
}

func TestTimesZeroValues(t *testing.T) {
	var zero Times
	if zero.Utilization() != 0 || zero.CyclesPerRef() != 0 {
		t.Error("zero Times should report zeros")
	}
}
