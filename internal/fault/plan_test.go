package fault_test

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/trace"
)

// drain replays r to completion per-reference and returns the refs seen
// and the terminal error (io.EOF folded to nil).
func drain(r trace.Reader) (int, error) {
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}

// TestStallAtFiresOnce: the one-shot stall must delay exactly once, at the
// requested reference, and leave the stream contents untouched.
func TestStallAtFiresOnce(t *testing.T) {
	tr := testTrace()
	want, err := drain(tr.Reader())
	if err != nil {
		t.Fatal(err)
	}

	const at, d = 100, 30 * time.Millisecond
	r := fault.StallAt(tr.Reader(), at, d)
	// The refs before the stall point must deliver with no sleep: a full
	// pre-stall drain far faster than d proves the spike has not fired.
	start := time.Now()
	for i := 0; i < at; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatalf("ref %d: %v", i, err)
		}
	}
	if e := time.Since(start); e >= d {
		t.Fatalf("pre-stall refs took %v, want < %v", e, d)
	}
	// The next ref carries the spike.
	start = time.Now()
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e < d {
		t.Fatalf("stalled ref took %v, want >= %v", e, d)
	}
	// The remainder streams clean and complete, again with no sleep.
	start = time.Now()
	rest, err := drain(r)
	if err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e >= d {
		t.Fatalf("post-stall refs took %v, want < %v", e, d)
	}
	if got := at + 1 + rest; got != want {
		t.Fatalf("stalled stream delivered %d refs, want %d", got, want)
	}
}

// TestParsePlanErrors pins the spec grammar's error cases.
func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus:1",          // unknown injector
		"error",            // missing count
		"error:x",          // bad count
		"error:1:2",        // too many args
		"stall:1",          // missing duration
		"stall:1:xs",       // bad duration
		"stall:1:-5ms",     // negative duration
		"error:1@2",        // probability out of range
		"error:1@x",        // bad probability
		"slow:1:1ms:2",     // too many args
		"scramble:1,error", // second clause bad
	} {
		if _, err := fault.ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) = nil error, want failure", spec)
		}
	}
	for _, spec := range []string{"", " , ", "error:0", "stall:5:1ms@0.5", "slow:64:1ms,corrupt:10@0.1,scramble:3"} {
		if _, err := fault.ParsePlan(spec); err != nil {
			t.Errorf("ParsePlan(%q) = %v, want nil", spec, err)
		}
	}
}

// TestPlanWrapDeterministic: the same (plan, seed) always wraps the same
// faults — replaying a seed reproduces the exact failure — and Fires/Errors
// agree with what Wrap actually does.
func TestPlanWrapDeterministic(t *testing.T) {
	tr := testTrace()
	plan := fault.MustParsePlan("error:50@0.5")
	var fired, clean int
	for seed := int64(0); seed < 200; seed++ {
		_, err1 := drain(plan.Wrap(tr.Reader(), seed))
		_, err2 := drain(plan.Wrap(tr.Reader(), seed))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("seed %d: Wrap not deterministic: %v vs %v", seed, err1, err2)
		}
		if got, want := err1 != nil, plan.Fires(seed); got != want {
			t.Fatalf("seed %d: stream errored=%v but Fires=%v", seed, got, want)
		}
		if got, want := err1 != nil, plan.Errors(seed); got != want {
			t.Fatalf("seed %d: stream errored=%v but Errors=%v", seed, got, want)
		}
		if err1 != nil {
			if !errors.Is(err1, fault.ErrInjected) {
				t.Fatalf("seed %d: error %v does not wrap ErrInjected", seed, err1)
			}
			fired++
		} else {
			clean++
		}
	}
	// The coin is p=0.5: both outcomes must occur across 200 seeds.
	if fired == 0 || clean == 0 {
		t.Fatalf("coin at p=0.5 gave fired=%d clean=%d over 200 seeds", fired, clean)
	}
}

// TestPlanProbabilityEdges: @0 never fires, @1 (and no suffix) always does.
func TestPlanProbabilityEdges(t *testing.T) {
	always := fault.MustParsePlan("error:10")
	never := fault.MustParsePlan("error:10@0")
	for seed := int64(0); seed < 50; seed++ {
		if !always.Fires(seed) {
			t.Fatalf("seed %d: p=1 clause did not fire", seed)
		}
		if never.Fires(seed) {
			t.Fatalf("seed %d: p=0 clause fired", seed)
		}
	}
}

// TestPlanLatencyOnlyIsNotAnError: a stall-only plan fires but does not
// count as an erroring plan, and the wrapped stream completes with its
// full contents.
func TestPlanLatencyOnlyIsNotAnError(t *testing.T) {
	tr := testTrace()
	want, err := drain(tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.MustParsePlan("stall:10:1ms")
	if !plan.Fires(7) || plan.Errors(7) {
		t.Fatalf("stall plan: Fires=%v Errors=%v, want true false", plan.Fires(7), plan.Errors(7))
	}
	got, err := drain(plan.Wrap(tr.Reader(), 7))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("stalled stream delivered %d refs, want %d", got, want)
	}
}

// TestPlanNilAndEmpty: nil and empty plans are inert identities.
func TestPlanNilAndEmpty(t *testing.T) {
	tr := testTrace()
	var nilPlan *fault.Plan
	if !nilPlan.Empty() || nilPlan.Fires(1) || nilPlan.Errors(1) || nilPlan.String() != "" {
		t.Fatal("nil plan is not inert")
	}
	r := tr.Reader()
	if got := nilPlan.Wrap(r, 1); got != r {
		t.Fatal("nil plan Wrap is not the identity")
	}
	empty := fault.MustParsePlan("")
	if !empty.Empty() {
		t.Fatal("empty spec parsed to a non-empty plan")
	}
	if got := empty.Wrap(r, 1); got != r {
		t.Fatal("empty plan Wrap is not the identity")
	}
}
