package fault_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// The differential robustness suite: every injector runs under every
// parallelism/shard combination the CLI exposes, and the assertions are
// always the same three — typed errors survive the trip up through demux,
// sweep and driver layers (errors.Is/As), nothing deadlocks or leaks
// goroutines, and partial output is never presented as complete.

// parShardGrid is the -j × -shards combinations every fault must survive.
var parShardGrid = []struct{ par, shards int }{
	{1, 1}, {1, 8}, {8, 1}, {8, 8},
}

// testTrace builds the deterministic shared-access trace the suite replays:
// 4 processors alternating loads and stores over a shared region, with
// enough references that every injector has room to fire mid-stream.
func testTrace() *trace.Trace {
	const procs, rounds = 4, 512
	tr := trace.New(procs)
	for i := 0; i < rounds; i++ {
		for p := 0; p < procs; p++ {
			addr := mem.Addr(4 * ((i + p) % 64))
			tr.Append(trace.L(p, addr), trace.S(p, addr+256))
		}
	}
	return tr
}

var geometry = func() mem.Geometry {
	g, err := mem.NewGeometry(64)
	if err != nil {
		panic(err)
	}
	return g
}()

// waitForGoroutines polls until the goroutine count drops back to at most
// base, tolerating scheduler lag.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// classifySweep runs cells sweep cells at the given parallelism, where each
// cell block-shard-classifies a reader produced by open.
func classifySweep(ctx context.Context, cells, par, shards int, keepGoing bool,
	open func(cell int) trace.Reader) ([]core.Counts, error) {
	return sweep.Run(ctx, cells, sweep.Options{Parallelism: par, KeepGoing: keepGoing},
		func(ctx context.Context, i int) (core.Counts, error) {
			counts, _, err := core.ShardedClassifyContext(ctx, open(i), geometry, shards)
			return counts, err
		})
}

// TestErrorAfterPropagates: a read error injected mid-stream must surface
// from every layer stack as the typed *fault.Error, matchable with both
// errors.Is and errors.As, with no goroutine left behind.
func TestErrorAfterPropagates(t *testing.T) {
	tr := testTrace()
	for _, tc := range parShardGrid {
		t.Run(fmt.Sprintf("j%d_shards%d", tc.par, tc.shards), func(t *testing.T) {
			base := runtime.NumGoroutine()
			cause := errors.New("disk on fire")
			_, err := classifySweep(context.Background(), 4, tc.par, tc.shards, false,
				func(int) trace.Reader { return fault.ErrorAfter(tr.Reader(), 100, cause) })
			if !errors.Is(err, fault.ErrInjected) {
				t.Errorf("errors.Is(err, ErrInjected) = false for %v", err)
			}
			if !errors.Is(err, cause) {
				t.Errorf("errors.Is(err, cause) = false for %v", err)
			}
			var fe *fault.Error
			if !errors.As(err, &fe) {
				t.Fatalf("errors.As(err, *fault.Error) = false for %v", err)
			}
			if fe.Op != "read" || fe.After != 100 {
				t.Errorf("fault.Error = {Op:%q After:%d}, want {read 100}", fe.Op, fe.After)
			}
			waitForGoroutines(t, base)
		})
	}
}

// TestKeepGoingIsolatesFailedCells: with keep-going, a failing cell is
// quarantined into *sweep.Failures while its siblings' results come back
// intact and bit-identical to a clean run; the failed cell's slot stays
// zero — a partial grid is never passed off as complete.
func TestKeepGoingIsolatesFailedCells(t *testing.T) {
	tr := testTrace()
	clean, _, err := core.ShardedClassifyContext(context.Background(), tr.Reader(), geometry, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range parShardGrid {
		t.Run(fmt.Sprintf("j%d_shards%d", tc.par, tc.shards), func(t *testing.T) {
			base := runtime.NumGoroutine()
			const cells = 6
			res, err := classifySweep(context.Background(), cells, tc.par, tc.shards, true,
				func(i int) trace.Reader {
					if i%2 == 0 {
						return fault.ErrorAfter(tr.Reader(), 50, nil)
					}
					return tr.Reader()
				})
			fails := sweep.AsFailures(err)
			if fails == nil {
				t.Fatalf("want *sweep.Failures, got %v", err)
			}
			if fails.Len() != cells/2 {
				t.Errorf("Len() = %d, want %d", fails.Len(), cells/2)
			}
			if !errors.Is(err, fault.ErrInjected) {
				t.Errorf("injected sentinel lost through Failures: %v", err)
			}
			for i := 0; i < cells; i++ {
				failed := fails.Failed(i) != nil
				if failed != (i%2 == 0) {
					t.Errorf("cell %d: Failed = %v, want %v", i, failed, i%2 == 0)
				}
				if failed && res[i] != (core.Counts{}) {
					t.Errorf("cell %d failed but has non-zero counts %+v", i, res[i])
				}
				if !failed && res[i] != clean {
					t.Errorf("cell %d: counts %+v differ from clean run %+v", i, res[i], clean)
				}
			}
			waitForGoroutines(t, base)
		})
	}
}

// TestScrambledProcsPanicIsRecovered: a corrupted processor id panics the
// classifier; the sweep engine must turn that panic into a typed CellError
// carrying the stack instead of crashing the process. Shards stay at 1 so
// the panic fires on the cell goroutine the sweep guards — panic isolation
// is a sweep-cell contract, not a demux one.
func TestScrambledProcsPanicIsRecovered(t *testing.T) {
	tr := testTrace()
	for _, par := range []int{1, 8} {
		t.Run(fmt.Sprintf("j%d", par), func(t *testing.T) {
			base := runtime.NumGoroutine()
			_, err := classifySweep(context.Background(), 4, par, 1, true,
				func(int) trace.Reader { return fault.ScrambleProcs(tr.Reader(), 200) })
			fails := sweep.AsFailures(err)
			if fails == nil {
				t.Fatalf("want *sweep.Failures, got %v", err)
			}
			if !errors.Is(err, sweep.ErrCellPanic) {
				t.Errorf("errors.Is(err, ErrCellPanic) = false for %v", err)
			}
			for _, ce := range fails.Cells {
				if len(ce.Stack) == 0 {
					t.Errorf("cell %d: panic CellError has no stack", ce.Cell)
				}
			}
			waitForGoroutines(t, base)
		})
	}
}

// TestStallDrainsOnCancel: cancelling mid-replay of a stalling source must
// drain the whole pipeline promptly — no deadlock, no leak — at every
// parallelism/shard combination.
func TestStallDrainsOnCancel(t *testing.T) {
	tr := testTrace()
	for _, tc := range parShardGrid {
		t.Run(fmt.Sprintf("j%d_shards%d", tc.par, tc.shards), func(t *testing.T) {
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(5 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err := classifySweep(ctx, 4, tc.par, tc.shards, false,
				func(int) trace.Reader { return fault.Stall(tr.Reader(), 64, time.Millisecond) })
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Errorf("cancellation took %v, want < 2s", elapsed)
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("err = %v, want context.Canceled", err)
			}
			cancel()
			waitForGoroutines(t, base)
		})
	}
}

// TestFlakyClosePropagates: the replay pumps promise to surface the
// reader's close error when the stream itself drained cleanly; a flaky
// Close must therefore fail the run with the typed error, at any shard
// count.
func TestFlakyClosePropagates(t *testing.T) {
	tr := testTrace()
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			base := runtime.NumGoroutine()
			_, _, err := core.ShardedClassifyContext(context.Background(),
				fault.FlakyClose(tr.Reader(), nil), geometry, shards)
			if !errors.Is(err, fault.ErrInjected) {
				t.Errorf("errors.Is(err, ErrInjected) = false for %v", err)
			}
			var fe *fault.Error
			if !errors.As(err, &fe) || fe.Op != "close" {
				t.Errorf("want *fault.Error{Op: close}, got %v", err)
			}
			waitForGoroutines(t, base)
		})
	}
}

// TestCorruptAddrsIsDeterministicAndVisible: silent in-memory corruption
// must change the classification (it would be a useless injector if it
// didn't) and must change it identically at every shard count — the
// corruption happens before the demux, so shard invariance still holds.
func TestCorruptAddrsIsDeterministicAndVisible(t *testing.T) {
	tr := testTrace()
	clean, _, err := core.ShardedClassifyContext(context.Background(), tr.Reader(), geometry, 1)
	if err != nil {
		t.Fatal(err)
	}
	var corrupted []core.Counts
	for _, shards := range []int{1, 8} {
		counts, _, err := core.ShardedClassifyContext(context.Background(),
			fault.CorruptAddrs(tr.Reader(), 100), geometry, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		corrupted = append(corrupted, counts)
	}
	if corrupted[0] == clean {
		t.Error("corrupted replay produced the clean counts — corruption invisible")
	}
	if corrupted[0] != corrupted[1] {
		t.Errorf("corrupted counts differ across shard counts: %+v vs %+v",
			corrupted[0], corrupted[1])
	}
}

// TestFailFastNeverReturnsPartialResults: without keep-going, a failing
// cell aborts the sweep and the result slice is withheld entirely — the
// caller can never mistake a partial grid for a complete one.
func TestFailFastNeverReturnsPartialResults(t *testing.T) {
	tr := testTrace()
	for _, tc := range parShardGrid {
		t.Run(fmt.Sprintf("j%d_shards%d", tc.par, tc.shards), func(t *testing.T) {
			res, err := classifySweep(context.Background(), 6, tc.par, tc.shards, false,
				func(i int) trace.Reader {
					if i == 3 {
						return fault.ErrorAfter(tr.Reader(), 10, nil)
					}
					return tr.Reader()
				})
			if err == nil {
				t.Fatal("want an error from the failing cell")
			}
			if res != nil {
				t.Errorf("fail-fast returned results %v alongside error %v", res, err)
			}
		})
	}
}
