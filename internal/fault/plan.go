package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/trace"
)

// Plan is a parsed chaos specification: a list of injectors, each firing
// with an independent probability per seed. A Plan is how the serving
// layer composes the injectors of this package — the server parses one
// -chaos flag at boot and then asks the plan, per job attempt, which
// faults to wrap around that attempt's trace readers. Everything is
// deterministic in the seed: the same (plan, seed) pair always yields the
// same faults, so a chaos run is replayable and a retried attempt (which
// carries a different seed) can deterministically escape a transient
// fault.
//
// The spec grammar is a comma-separated list of injector clauses, each
// with an optional @p probability suffix (default 1, i.e. always):
//
//	error:N[@p]        fail every read after N refs (ErrorAfter)
//	stall:N:DUR[@p]    sleep DUR once, at ref N (StallAt)
//	slow:EVERY:DUR[@p] sleep DUR before every EVERY-th ref (Stall)
//	corrupt:N[@p]      flip an address bit after N refs (CorruptAddrs)
//	scramble:N[@p]     out-of-range processor ids after N refs (ScrambleProcs)
//
// Example: "error:5000@0.25,stall:100:5ms@0.5" injects a read error into a
// quarter of the seeds and a 5ms latency spike into half of them.
type Plan struct {
	clauses []clause
	src     string
}

// clause is one parsed injector spec.
type clause struct {
	kind  string
	n     uint64
	d     time.Duration
	p     float64
	cause error
}

// ParsePlan parses a chaos spec. An empty string parses to an empty plan
// (Wrap is the identity).
func ParsePlan(s string) (*Plan, error) {
	p := &Plan{src: s}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c, err := parseClause(part)
		if err != nil {
			return nil, err
		}
		p.clauses = append(p.clauses, c)
	}
	return p, nil
}

// MustParsePlan is ParsePlan for static specs in tests; it panics on error.
func MustParsePlan(s string) *Plan {
	p, err := ParsePlan(s)
	if err != nil {
		panic(err)
	}
	return p
}

func parseClause(s string) (clause, error) {
	spec, prob, hasProb := strings.Cut(s, "@")
	c := clause{p: 1}
	if hasProb {
		v, err := strconv.ParseFloat(prob, 64)
		if err != nil || v < 0 || v > 1 {
			return c, fmt.Errorf("fault: bad probability %q in clause %q (want 0..1)", prob, s)
		}
		c.p = v
	}
	fields := strings.Split(spec, ":")
	c.kind = fields[0]
	args := fields[1:]
	argN := func(i int) (uint64, error) {
		v, err := strconv.ParseUint(args[i], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("fault: bad count %q in clause %q", args[i], s)
		}
		return v, nil
	}
	argD := func(i int) (time.Duration, error) {
		d, err := time.ParseDuration(args[i])
		if err != nil || d < 0 {
			return 0, fmt.Errorf("fault: bad duration %q in clause %q", args[i], s)
		}
		return d, nil
	}
	var err error
	switch c.kind {
	case "error", "corrupt", "scramble":
		if len(args) != 1 {
			return c, fmt.Errorf("fault: clause %q wants %s:N", s, c.kind)
		}
		c.n, err = argN(0)
	case "stall", "slow":
		if len(args) != 2 {
			return c, fmt.Errorf("fault: clause %q wants %s:N:DURATION", s, c.kind)
		}
		if c.n, err = argN(0); err == nil {
			c.d, err = argD(1)
		}
	default:
		return c, fmt.Errorf("fault: unknown injector %q in clause %q (want error, stall, slow, corrupt or scramble)", c.kind, s)
	}
	return c, err
}

// String returns the spec the plan was parsed from.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	return p.src
}

// Empty reports whether the plan has no clauses. Nil-safe.
func (p *Plan) Empty() bool { return p == nil || len(p.clauses) == 0 }

// Wrap applies every clause whose seeded coin fires to r, innermost first
// in spec order, and returns the wrapped reader. Deterministic in seed;
// the identity for an empty plan or a seed no clause fires on. Nil-safe.
func (p *Plan) Wrap(r trace.Reader, seed int64) trace.Reader {
	if p == nil {
		return r
	}
	for i, c := range p.clauses {
		if !fires(c.p, seed, i) {
			continue
		}
		switch c.kind {
		case "error":
			r = ErrorAfter(r, c.n, nil)
		case "stall":
			r = StallAt(r, c.n, c.d)
		case "slow":
			r = Stall(r, c.n, c.d)
		case "corrupt":
			r = CorruptAddrs(r, c.n)
		case "scramble":
			r = ScrambleProcs(r, c.n)
		}
	}
	return r
}

// Fires reports whether Wrap would apply at least one clause for seed —
// i.e. whether a job attempt run under this (plan, seed) is a faulted
// attempt. Nil-safe.
func (p *Plan) Fires(seed int64) bool {
	if p == nil {
		return false
	}
	for i, c := range p.clauses {
		if fires(c.p, seed, i) {
			return true
		}
	}
	return false
}

// Errors reports whether Wrap(seed) applies at least one clause that makes
// the stream fail (error) or compute wrong counts (corrupt, scramble) —
// as opposed to latency-only clauses, which slow a correct run down.
// Nil-safe.
func (p *Plan) Errors(seed int64) bool {
	if p == nil {
		return false
	}
	for i, c := range p.clauses {
		if !fires(c.p, seed, i) {
			continue
		}
		switch c.kind {
		case "error", "corrupt", "scramble":
			return true
		}
	}
	return false
}

// fires is the deterministic per-(seed, clause) coin: a splitmix64 hash of
// the pair mapped onto [0, 1) and compared against p. Probability 1 always
// fires and 0 never does, exactly.
func fires(p float64, seed int64, clause int) bool {
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(clause)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	u := float64(x>>11) / float64(1<<53)
	return u < p
}

// StallAt returns a reader that sleeps d exactly once, just before
// delivering reference n — a single mid-stream latency spike, as opposed
// to Stall's periodic slowdown. The stream is otherwise unmodified; the
// serving layer's drain and deadline tests use it to park a job at a known
// point and prove cancellation still wins.
func StallAt(r trace.Reader, n uint64, d time.Duration) trace.Reader {
	return &stallAt{base: base{r: r}, at: n, d: d}
}

type stallAt struct {
	base
	at    uint64
	d     time.Duration
	fired bool
}

func (s *stallAt) Next() (trace.Ref, error) {
	if !s.fired && s.n >= s.at {
		s.fired = true
		time.Sleep(s.d)
	}
	ref, err := s.r.Next()
	if err != nil {
		return ref, err
	}
	s.n++
	return ref, nil
}

var _ trace.Reader = (*stallAt)(nil)
