// Package fault injects controlled failures into trace streams. Each
// injector wraps a trace.Reader and misbehaves in one specific, fully
// deterministic way — erroring after a fixed number of references,
// corrupting reference fields, stalling mid-stream, or failing Close — so
// the robustness suite can assert how every layer above the reader (the
// replay pumps, the block-sharded demux, the sweep engine, the experiment
// drivers) reacts: typed errors propagate via errors.Is/As, no path
// deadlocks or leaks goroutines, and partial output is never presented as
// complete.
package fault

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/trace"
)

// ErrInjected is the sentinel every injected failure wraps. Tests match it
// with errors.Is after an error has crossed the demux, sweep and driver
// layers.
var ErrInjected = errors.New("fault: injected failure")

// Error is the typed error surfaced by the injectors. It wraps ErrInjected
// (and any caller-supplied cause), so both errors.Is(err, ErrInjected) and
// errors.As(err, **Error) survive fmt.Errorf("%w") wrapping on the way up.
type Error struct {
	// Op names the injector that fired: "read", "close" or "stall".
	Op string
	// After is how many references the stream delivered before the fault.
	After uint64
	// Err is the underlying cause; it wraps ErrInjected.
	Err error
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s failure after %d refs: %v", e.Op, e.After, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// newError builds the injector error for op, folding the optional cause in
// under ErrInjected.
func newError(op string, after uint64, cause error) *Error {
	err := ErrInjected
	if cause != nil {
		err = fmt.Errorf("%w: %w", ErrInjected, cause)
	}
	return &Error{Op: op, After: after, Err: err}
}

// base carries the shared wrapper state: the wrapped reader and the count
// of references delivered so far. The injectors implement only Next (not
// NextBatch) on purpose: the replay pumps must behave identically whether a
// reader batches or not, and per-reference delivery gives the injectors
// exact trigger points.
type base struct {
	r trace.Reader
	n uint64
}

func (b *base) NumProcs() int { return b.r.NumProcs() }

func (b *base) Close() error { return trace.CloseReader(b.r) }

// ErrorAfter returns a reader that delivers n references from r and then
// fails every subsequent Next with a typed *Error wrapping ErrInjected (and
// cause, if non-nil). The stream never reaches EOF.
func ErrorAfter(r trace.Reader, n uint64, cause error) trace.Reader {
	return &errorAfter{base: base{r: r}, after: n, cause: cause}
}

type errorAfter struct {
	base
	after uint64
	cause error
}

func (e *errorAfter) Next() (trace.Ref, error) {
	if e.n >= e.after {
		return trace.Ref{}, newError("read", e.n, e.cause)
	}
	ref, err := e.r.Next()
	if err != nil {
		return ref, err
	}
	e.n++
	return ref, nil
}

// CorruptAddrs returns a reader that flips an address bit in every
// reference after the first n, simulating in-memory corruption of decoded
// trace data. The corruption is silent — addresses stay valid, processors
// stay in range — so downstream consumers keep running and produce wrong
// counts; the differential suite uses it to prove corruption changes
// results rather than crashing, while the codec's CRC framing is what
// rejects corrupt bytes before they get this far.
func CorruptAddrs(r trace.Reader, n uint64) trace.Reader {
	return &corruptAddrs{base: base{r: r}, after: n}
}

type corruptAddrs struct {
	base
	after uint64
}

func (c *corruptAddrs) Next() (trace.Ref, error) {
	ref, err := c.r.Next()
	if err != nil {
		return ref, err
	}
	if c.n >= c.after && ref.Kind.IsData() {
		ref.Addr ^= 1 << 20
	}
	c.n++
	return ref, nil
}

// ScrambleProcs returns a reader that sets the processor id out of range on
// every data reference after the first n. Consumers index per-processor
// state by Proc, so a scrambled reference panics them — the injector that
// exercises the sweep engine's panic isolation (recover into CellError).
func ScrambleProcs(r trace.Reader, n uint64) trace.Reader {
	return &scrambleProcs{base: base{r: r}, after: n}
}

type scrambleProcs struct {
	base
	after uint64
}

func (s *scrambleProcs) Next() (trace.Ref, error) {
	ref, err := s.r.Next()
	if err != nil {
		return ref, err
	}
	if s.n >= s.after && ref.Kind.IsData() {
		ref.Proc = uint16(s.r.NumProcs())
	}
	s.n++
	return ref, nil
}

// Stall returns a reader that sleeps d before delivering every every-th
// reference, simulating a slow or wedged trace source. The stream is
// otherwise unmodified; the cancellation suite uses it to prove a stalled
// replay still drains promptly after ctx cancellation instead of hanging.
func Stall(r trace.Reader, every uint64, d time.Duration) trace.Reader {
	if every == 0 {
		every = 1
	}
	return &stall{base: base{r: r}, every: every, d: d}
}

type stall struct {
	base
	every uint64
	d     time.Duration
}

func (s *stall) Next() (trace.Ref, error) {
	if s.n%s.every == 0 {
		time.Sleep(s.d)
	}
	ref, err := s.r.Next()
	if err != nil {
		return ref, err
	}
	s.n++
	return ref, nil
}

// FlakyClose returns a reader that streams r faithfully but fails Close
// with a typed *Error (wrapping ErrInjected and cause, if non-nil). The
// replay pumps promise to surface close errors when the stream itself ended
// cleanly; this injector pins that promise.
func FlakyClose(r trace.Reader, cause error) trace.Reader {
	return &flakyClose{base: base{r: r}, cause: cause}
}

type flakyClose struct {
	base
	cause error
}

func (f *flakyClose) Next() (trace.Ref, error) {
	ref, err := f.r.Next()
	if err != nil {
		return ref, err
	}
	f.n++
	return ref, nil
}

func (f *flakyClose) Close() error {
	trace.CloseReader(f.r) //nolint:errcheck // the injected error wins
	return newError("close", f.n, f.cause)
}

// interfaces the injectors must keep satisfying.
var (
	_ trace.Reader = (*errorAfter)(nil)
	_ io.Closer    = (*errorAfter)(nil)
	_ trace.Reader = (*corruptAddrs)(nil)
	_ trace.Reader = (*scrambleProcs)(nil)
	_ trace.Reader = (*stall)(nil)
	_ trace.Reader = (*flakyClose)(nil)
	_ io.Closer    = (*flakyClose)(nil)
)
