package workload

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Water models the SPLASH WATER N-body molecular dynamics code (§5, §6):
// molecule records of 680 bytes (170 words) allocated back to back and
// assigned to processors in a fine interleave, so consecutive molecules
// belong to different processors. Each time step has an intra-molecular
// phase (heavy reading and a predictor/corrector rewrite of the owner's own
// record) and an inter-molecular phase in which every molecule interacts
// with the following half of the molecules: the pair computation reads both
// records' position sections several times and accumulates into 72 bytes
// (eighteen words) of the other molecule's force section under its lock
// (§6: "a part of the other molecule's data structure, corresponding to
// nine double words (72 bytes), is modified").
//
// The interleave grain is one read or write pass, not a whole interaction,
// so concurrent force accumulations by other processors land between a
// reader's passes, like in an instruction-interleaved trace. The 72-byte
// force region makes the true-sharing component fall quickly up to 128-byte
// blocks; once blocks approach the 680-byte molecule size they couple
// different owners' records and the false-sharing component grows — the
// WATER features of Fig. 5.
func Water(molecules, steps, procs int) *Workload {
	if molecules < procs || steps < 1 {
		panic(fmt.Sprintf("workload: WATER needs >= %d molecules and >= 1 step", procs))
	}
	const (
		molWords   = 170 // 680 bytes
		forceBase  = 120 // word offset of the 18-word force region
		forceWords = 18
	)
	layout := mem.NewLayout(0)
	molBase := layout.AllocWords(molecules * molWords)
	molLocks := newLockSet(layout, molecules)
	bar := newANLBarrier(layout)

	word := func(m, w int) mem.Addr { return molBase + mem.Addr(m*molWords+w) }
	loadRange := func(e *trace.Emitter, p, m, lo, n int) {
		for w := lo; w < lo+n; w++ {
			e.Load(p, word(m, w))
		}
	}
	storeRange := func(e *trace.Emitter, p, m, lo, n int) {
		for w := lo; w < lo+n; w++ {
			e.Store(p, word(m, w))
		}
	}

	// Intra-molecular work on one molecule: 17 read passes, then the
	// predictor/corrector rewrite. Each pass is one interleave unit.
	const intraUnits = 19
	intraUnit := func(e *trace.Emitter, p, m, u int) {
		switch {
		case u < 17:
			loadRange(e, p, m, 0, molWords)
		case u == 17:
			storeRange(e, p, m, 0, molWords)
		default:
			storeRange(e, p, m, 0, 119)
		}
	}

	// One pairwise interaction, split into read passes and two short
	// locked force updates. Locked sections stay within one unit so
	// critical sections remain atomic in the interleaved trace.
	const pairUnits = 6
	pairUnit := func(e *trace.Emitter, p, m, other, u int) {
		switch u {
		case 0:
			loadRange(e, p, m, 0, 100)
		case 1:
			loadRange(e, p, other, 0, 95)
		case 2:
			loadRange(e, p, m, 0, 95)
		case 3:
			loadRange(e, p, other, 0, 82)
		case 4:
			// Accumulate into the other molecule's force region.
			molLocks.acquire(e, p, other)
			for w := 0; w < forceWords; w++ {
				e.Load(p, word(other, forceBase+w))
				e.Store(p, word(other, forceBase+w))
			}
			molLocks.release(e, p, other)
		default:
			// Accumulate into our own.
			molLocks.acquire(e, p, m)
			storeRange(e, p, m, forceBase, 9)
			e.Store(p, word(m, 0))
			e.Store(p, word(m, 1))
			molLocks.release(e, p, m)
		}
	}

	half := molecules / 2
	gen := func(e *trace.Emitter) {
		for step := 0; step < steps; step++ {
			units := make([]unit, procs)
			for p := 0; p < procs; p++ {
				p := p
				mine := ownedCount(molecules, procs, p)
				units[p] = counter(mine*intraUnits, func(k int) {
					intraUnit(e, p, (k/intraUnits)*procs+p, k%intraUnits)
				})
			}
			roundRobin(units)
			bar.wait(e, procs)

			for p := 0; p < procs; p++ {
				p := p
				mine := ownedCount(molecules, procs, p)
				units[p] = counter(mine*half*pairUnits, func(k int) {
					pairIdx := k / pairUnits
					m := (pairIdx/half)*procs + p
					other := (m + 1 + pairIdx%half) % molecules
					pairUnit(e, p, m, other, k%pairUnits)
				})
			}
			roundRobin(units)
			bar.wait(e, procs)
		}
	}

	return &Workload{
		Name: fmt.Sprintf("WATER%d", molecules),
		Description: fmt.Sprintf("WATER: %d molecules (680 B, interleaved), %d steps, pairwise interactions under molecule locks",
			molecules, steps),
		Procs:     procs,
		DataBytes: layout.Bytes(),
		Regions: []Region{
			{Name: "molecules", Start: molBase, End: molBase + mem.Addr(molecules*molWords)},
			{Name: "locks", Start: molLocks.base, End: molLocks.base + mem.Addr(molLocks.n)},
			{Name: "barrier", Start: bar.count, End: bar.flag + 1},
		},
		gen: gen,
	}
}
