package workload

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Jacobi models the paper's own JACOBI benchmark (§5, §6): two grid arrays
// of double-precision numbers updated in turn; a component of one grid is
// computed from the four neighbors of the same component in the other grid,
// so the destination grid is write-only within an iteration and the source
// grid read-only (§5). A barrier (with the ANL counter/flag layout)
// follows each update; the convergence test reduces per-processor residuals
// through a shared array and a flag, and the grids switch roles. The
// processors form a sqrt(P) x sqrt(P) arrangement, each owning a square
// subgrid.
//
// With row-major storage a subgrid row occupies rowElems/sqrt(P) elements
// (128 bytes for the paper's 64x64 grid on 16 processors). When the block
// size reaches 256 bytes a block covers two processors' partitions: because
// the writers make progress concurrently (the interleave grain is a few
// elements, like a real instruction-interleaved trace), their stores
// ping-pong the shared destination blocks between them, and the resulting
// write-allocate lifetimes read nothing another processor wrote — false
// sharing jumps abruptly, the paper's signature JACOBI feature. Each
// element is an 8-byte double (two words), which halves the true-sharing
// component from 4- to 8-byte blocks, the other Fig. 5 feature.
func Jacobi(dim, iters, procs int) *Workload {
	side := intSqrt(procs)
	if side*side != procs || dim%side != 0 {
		panic(fmt.Sprintf("workload: JACOBI needs a square processor count dividing dim (got procs=%d dim=%d)", procs, dim))
	}
	sub := dim / side // subgrid edge length
	const chunk = 4   // elements per interleave unit
	layout := mem.NewLayout(0)
	grids := [2]mem.Addr{
		layout.AllocWords(dim * dim * 2),
		layout.AllocWords(dim * dim * 2),
	}
	residuals := layout.AllocWords(procs) // per-processor residual, reduced by proc 0
	convFlag := layout.AllocWords(1)
	bar := newANLBarrier(layout)

	elem := func(g, i, j int) mem.Addr { return grids[g] + mem.Addr((i*dim+j)*2) }
	loadD := func(e *trace.Emitter, p int, a mem.Addr) { e.Load(p, a); e.Load(p, a+1) }
	storeD := func(e *trace.Emitter, p int, a mem.Addr) { e.Store(p, a); e.Store(p, a+1) }

	neighbors := [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}
	update := func(e *trace.Emitter, p, src, dst, i, j int) {
		// Two stencil passes over the source (the second models the
		// residual computation re-reading the inputs), then the pure
		// write of the destination component.
		for pass := 0; pass < 2; pass++ {
			for _, d := range neighbors {
				ni, nj := i+d[0], j+d[1]
				if ni < 0 || ni >= dim || nj < 0 || nj >= dim {
					continue
				}
				loadD(e, p, elem(src, ni, nj))
			}
		}
		loadD(e, p, elem(src, i, j)) // old value, for the residual
		storeD(e, p, elem(dst, i, j))
	}

	gen := func(e *trace.Emitter) {
		for it := 0; it < iters; it++ {
			src, dst := it%2, 1-it%2

			// Update phase; one unit covers `chunk` elements so
			// that concurrent writers interleave finely.
			units := make([]unit, procs)
			perProc := sub * sub / chunk
			for p := 0; p < procs; p++ {
				p := p
				rowBase, colBase := (p/side)*sub, (p%side)*sub
				units[p] = counter(perProc, func(k int) {
					first := k * chunk
					for n := 0; n < chunk; n++ {
						i := rowBase + (first+n)/sub
						j := colBase + (first+n)%sub
						update(e, p, src, dst, i, j)
					}
				})
			}
			roundRobin(units)

			// Each processor posts its residual; processor 0
			// reduces them and publishes the convergence decision.
			for p := 0; p < procs; p++ {
				e.Store(p, residuals+mem.Addr(p))
			}
			bar.wait(e, procs)
			for p := 0; p < procs; p++ {
				e.Load(0, residuals+mem.Addr(p))
			}
			e.Store(0, convFlag)
			for p := 1; p < procs; p++ {
				// Reading the published decision is an acquire.
				e.Acquire(p, convFlag)
				e.Load(p, convFlag)
			}
			bar.wait(e, procs)
		}
	}

	return &Workload{
		Name: "JACOBI",
		Description: fmt.Sprintf("Jacobi iteration on two %dx%d double grids, %d iterations, %dx%d subgrid per processor",
			dim, dim, iters, sub, sub),
		Procs:     procs,
		DataBytes: layout.Bytes(),
		Regions: []Region{
			{Name: "grid0", Start: grids[0], End: grids[0] + mem.Addr(dim*dim*2)},
			{Name: "grid1", Start: grids[1], End: grids[1] + mem.Addr(dim*dim*2)},
			{Name: "residuals", Start: residuals, End: residuals + mem.Addr(procs)},
			{Name: "convflag", Start: convFlag, End: convFlag + 1},
			{Name: "barrier", Start: bar.count, End: bar.flag + 1},
		},
		gen: gen,
	}
}

func intSqrt(n int) int {
	for s := 1; ; s++ {
		if s*s >= n {
			return s
		}
	}
}
