package workload

// Shape tests: the paper's §6 explains every feature of Fig. 5 in terms of
// the benchmarks' data structures. These tests pin each of those features
// as an executable assertion over the generated traces, so a regression in
// a generator (layout, interleave grain, synchronization structure) is
// caught as a change in the classification shape, not just in raw counts.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

// sweep classifies one workload across block sizes and returns rates in
// percent per class, keyed by block size.
func sweep(t *testing.T, name string, blocks []int) map[int]struct{ cold, pts, pfs float64 } {
	t.Helper()
	out := make(map[int]struct{ cold, pts, pfs float64 })
	w, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		c := core.NewClassifier(w.Procs, mem.MustGeometry(b))
		if err := trace.Drive(w.Reader(), c); err != nil {
			t.Fatal(err)
		}
		counts := c.Finish()
		refs := c.DataRefs()
		out[b] = struct{ cold, pts, pfs float64 }{
			cold: core.Rate(counts.Cold(), refs),
			pts:  core.Rate(counts.PTS, refs),
			pfs:  core.Rate(counts.PFS, refs),
		}
	}
	return out
}

// §6 JACOBI: "each matrix element is a double word (8 bytes) and we would
// expect true sharing to go down abruptly to half as we move from a block
// size of 4 to 8 bytes"; "false sharing abruptly goes up for a block size
// of 256 bytes" (subgrid rows are 128 bytes); "false sharing starts to
// appear for a block size of 8 bytes because of the ... barriers".
func TestJacobiShape(t *testing.T) {
	s := sweep(t, "JACOBI", []int{4, 8, 128, 256})
	ratio := s[8].pts / s[4].pts
	if ratio < 0.4 || ratio > 0.65 {
		t.Errorf("true sharing 4->8 bytes fell by %.2fx, want about half", ratio)
	}
	if s[4].pfs != 0 {
		t.Errorf("false sharing at 4-byte blocks should be zero, got %.3f%%", s[4].pfs)
	}
	if s[8].pfs <= 0 {
		t.Error("barrier counter/flag false sharing missing at 8-byte blocks")
	}
	if s[256].pfs < 5*s[128].pfs {
		t.Errorf("false sharing must jump at 256 bytes: 128B %.3f%% -> 256B %.3f%%",
			s[128].pfs, s[256].pfs)
	}
}

// §6 MP3D: "False sharing starts to appear for a block size of eight bytes
// because the object size is 36 bytes and consecutive particle objects
// belong to different processors. Additional false sharing due to the
// space-cells appears for blocks larger than 16 bytes"; "the true sharing
// miss rate component decreases dramatically up to 32 bytes".
func TestMP3DShape(t *testing.T) {
	s := sweep(t, "MP3D1000", []int{4, 8, 16, 32, 64})
	if s[4].pfs != 0 {
		t.Errorf("false sharing at 4-byte blocks should be zero, got %.3f%%", s[4].pfs)
	}
	if s[8].pfs <= 0 {
		t.Error("particle-pitch false sharing missing at 8-byte blocks")
	}
	if s[32].pfs <= s[16].pfs {
		t.Errorf("space-cell false sharing must add beyond 16 bytes: %.3f%% -> %.3f%%",
			s[16].pfs, s[32].pfs)
	}
	if s[32].pts > s[4].pts/3 {
		t.Errorf("true sharing should fall dramatically up to 32 bytes: %.2f%% -> %.2f%%",
			s[4].pts, s[32].pts)
	}
}

// §6 WATER: the 72-byte inter-molecular write region makes "the true
// sharing miss component decrease rapidly up until a block size of 128
// bytes", and "the false sharing rate starts to grow significantly when the
// block size approaches the size of the molecule data structure (680
// bytes)".
func TestWaterShape(t *testing.T) {
	s := sweep(t, "WATER16", []int{4, 128, 256, 512, 1024})
	if s[128].pts > s[4].pts/5 {
		t.Errorf("true sharing should fall rapidly up to 128 bytes: %.2f%% -> %.2f%%",
			s[4].pts, s[128].pts)
	}
	drop128to1024 := s[1024].pts / s[128].pts
	if drop128to1024 < 0.2 {
		t.Errorf("true sharing beyond 128 bytes should flatten, fell %.2fx", drop128to1024)
	}
	if s[512].pfs <= 2*s[128].pfs {
		t.Errorf("false sharing must grow near the molecule size: 128B %.3f%% -> 512B %.3f%%",
			s[128].pfs, s[512].pfs)
	}
}

// §6 LU: "the column distribution causes CTS misses which show up for small
// block sizes. This component drops until the block size reaches [the
// column size]. As the block size increases the CTS misses turn into PTS
// misses"; "false sharing ... is significant even for small block sizes".
func TestLUShape(t *testing.T) {
	w, err := Get("LU32")
	if err != nil {
		t.Fatal(err)
	}
	rates := map[int]core.Counts{}
	refsAt := map[int]uint64{}
	for _, b := range []int{4, 8, 64, 256} {
		c := core.NewClassifier(w.Procs, mem.MustGeometry(b))
		if err := trace.Drive(w.Reader(), c); err != nil {
			t.Fatal(err)
		}
		rates[b] = c.Finish()
		refsAt[b] = c.DataRefs()
	}
	ctsRate := func(b int) float64 { return core.Rate(rates[b].CTS, refsAt[b]) }
	ptsRate := func(b int) float64 { return core.Rate(rates[b].PTS, refsAt[b]) }
	pfsRate := func(b int) float64 { return core.Rate(rates[b].PFS, refsAt[b]) }

	if ctsRate(4) < 5 {
		t.Errorf("CTS should dominate LU at small blocks, got %.2f%%", ctsRate(4))
	}
	if ctsRate(256) > ctsRate(4)/10 {
		t.Errorf("CTS must drop as blocks approach the 256-byte column: %.2f%% -> %.2f%%",
			ctsRate(4), ctsRate(256))
	}
	if ptsRate(256) <= ptsRate(4) {
		t.Errorf("CTS misses must turn into PTS as blocks grow: PTS %.2f%% -> %.2f%%",
			ptsRate(4), ptsRate(256))
	}
	if pfsRate(8) <= 0 {
		t.Error("LU false sharing should be present already at 8-byte blocks")
	}
}

// Fig. 6 headline at B=64: RD, SRD and WBWI land essentially at the
// essential miss rate; OTF and SD stay above it wherever useless misses
// exist.
func TestFig6HeadlineAtCacheBlocks(t *testing.T) {
	// Checked through the classification identity: OTF total =
	// essential + PFS. Protocol-level checks live in the coherence and
	// root packages; here we only pin that every small workload has a
	// non-trivial useless component at B=64 for the protocols to remove.
	for _, name := range SmallSet() {
		s := sweep(t, name, []int{64})
		if s[64].pfs <= 0 {
			t.Errorf("%s: no useless misses at B=64; Fig. 6a would be a no-op", name)
		}
	}
}
