package workload

import (
	"repro/internal/mem"
	"repro/internal/trace"
)

// anlBarrier models the ANL macro package's barrier (§5, §6): a counter and
// a flag in consecutive memory words, protected by a lock. Every arriving
// processor locks the barrier, increments the counter and unlocks; the last
// arrival resets the counter and toggles the flag; the others spin on the
// flag. The counter/flag adjacency is deliberately preserved — the paper
// attributes part of the false sharing at 8-byte blocks in every benchmark
// to exactly this layout.
type anlBarrier struct {
	lock  mem.Addr // synchronization variable (acquire/release only)
	count mem.Addr // data word, incremented by every arrival
	flag  mem.Addr // data word, adjacent to count, toggled by the last arrival
}

// newANLBarrier lays the barrier out at the current allocation point: the
// counter and flag occupy two consecutive words sharing one 8-byte block
// (the layout §6 blames for barrier-induced false sharing), with the lock
// word after them.
func newANLBarrier(l *mem.Layout) anlBarrier {
	l.Align(8)
	return anlBarrier{
		count: l.AllocWords(1),
		flag:  l.AllocWords(1),
		lock:  l.AllocWords(1),
	}
}

// wait emits one full barrier episode for procs processors and marks the
// end of the phase. Arrival order is processor index order; processors
// already inside the barrier spin on the flag between arrivals (so each
// arrival's counter store costs a spinner a useless miss when counter and
// flag share a block — the §6 barrier effect); the last arrival toggles the
// flag and everyone re-reads it.
func (b anlBarrier) wait(e *trace.Emitter, procs int) {
	for p := 0; p < procs; p++ {
		e.Acquire(p, b.lock)
		e.Load(p, b.count)
		e.Store(p, b.count)
		e.Release(p, b.lock)
		if p > 0 {
			e.Load(p-1, b.flag) // one spinner re-checks the stale flag
		}
	}
	last := procs - 1
	e.Load(last, b.count)
	e.Store(last, b.count) // reset
	e.Store(last, b.flag)  // toggle: releases the spinners
	for p := 0; p < procs; p++ {
		if p == last {
			continue
		}
		// Leaving the barrier is an acquire under release
		// consistency: delayed protocols drain their invalidation
		// buffers here, and the re-read observes the toggle.
		e.Acquire(p, b.flag)
		e.Load(p, b.flag)
	}
	e.Phase()
}

// lockSet is an array of spin locks, one word each, allocated back to back
// (as the ANL macros allocate them). The lock words are touched only by
// acquire/release references: the paper counts lock operations separately
// from data reads and writes, and its data miss rates exclude them.
type lockSet struct {
	base mem.Addr
	n    int
}

func newLockSet(l *mem.Layout, n int) lockSet {
	return lockSet{base: l.AllocWords(n), n: n}
}

// acquire emits the acquire on lock i by processor p.
func (s lockSet) acquire(e *trace.Emitter, p, i int) {
	e.Acquire(p, s.base+mem.Addr(i%s.n))
}

// release emits the matching release.
func (s lockSet) release(e *trace.Emitter, p, i int) {
	e.Release(p, s.base+mem.Addr(i%s.n))
}
