package workload

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/trace"
)

// MP3D models the SPLASH MP3D particle simulator (§5, §6): particle records
// of 36 bytes (nine single-precision words) finely interleaved among the
// processors, space-cell records of 48 bytes shared by all, per-cell locks
// (the paper's runs have the locking option on), and a barrier per time
// step. In every step each processor moves its particles — reading and
// rewriting the particle record and updating the old and new space cell
// under the cell lock — and every fifth move collides with the adjacent
// particle, which belongs to a different processor: five words of both
// particles' records are updated (§6: "during a collision five words (20
// bytes) of the data structures of the two particles are updated"). A
// per-step cell sweep adds the per-processor work that is independent of
// the particle count.
//
// The 36-byte particle pitch produces false sharing from 8-byte blocks on,
// the 48-byte cells from blocks larger than 16 bytes, and the collision
// region makes the true-sharing component fall steeply up to 32-byte
// blocks — the three features Fig. 5 shows for MP3D.
func MP3D(particles, steps, procs int) *Workload {
	if particles < 2*procs || steps < 1 {
		panic(fmt.Sprintf("workload: MP3D needs >= %d particles and >= 1 step", 2*procs))
	}
	const (
		particleWords = 9  // 36 bytes
		cellWords     = 12 // 48 bytes
		ncells        = 64
		sweeps        = 3
	)
	layout := mem.NewLayout(0)
	particleBase := layout.AllocWords(particles * particleWords)
	cellBase := layout.AllocWords(ncells * cellWords)
	cellLocks := newLockSet(layout, ncells)
	bar := newANLBarrier(layout)

	particle := func(i, w int) mem.Addr { return particleBase + mem.Addr(i*particleWords+w) }
	cell := func(c, w int) mem.Addr { return cellBase + mem.Addr(c*cellWords+w) }
	cellOf := func(i, step int) int { return int(mix(uint64(i)<<20|uint64(step)) % ncells) }

	gen := func(e *trace.Emitter) {
		for step := 0; step < steps; step++ {
			// Move phase: each processor moves its own particles.
			units := make([]unit, procs)
			for p := 0; p < procs; p++ {
				p := p
				mine := ownedCount(particles, procs, p)
				units[p] = counter(mine, func(k int) {
					i := k*procs + p // interleaved assignment
					movePhase(e, p, i, step, particles, particle, cell, cellOf, cellLocks)
				})
			}
			roundRobin(units)
			bar.wait(e, procs)

			// Cell sweep phase: per-processor work over the whole
			// cell array, with locked updates of the owned cells.
			for p := 0; p < procs; p++ {
				units[p] = counter(sweeps*ncells, func(k int) {
					c := k % ncells
					sweepCell(e, p, c, procs, cell, cellLocks)
				})
			}
			roundRobin(units)
			bar.wait(e, procs)
		}
	}

	return &Workload{
		Name: fmt.Sprintf("MP3D%d", particles),
		Description: fmt.Sprintf("MP3D: %d particles (36 B, interleaved), %d space cells (48 B), %d steps, cell locking on",
			particles, ncells, steps),
		Procs:     procs,
		DataBytes: layout.Bytes(),
		Regions: []Region{
			{Name: "particles", Start: particleBase, End: particleBase + mem.Addr(particles*particleWords)},
			{Name: "cells", Start: cellBase, End: cellBase + mem.Addr(ncells*cellWords)},
			{Name: "locks", Start: cellLocks.base, End: cellLocks.base + mem.Addr(cellLocks.n)},
			{Name: "barrier", Start: bar.count, End: bar.flag + 1},
		},
		gen: gen,
	}
}

// ownedCount returns how many of n interleaved objects processor p owns.
func ownedCount(n, procs, p int) int {
	c := n / procs
	if p < n%procs {
		c++
	}
	return c
}

func movePhase(e *trace.Emitter, p, i, step, particles int,
	particle func(int, int) mem.Addr, cell func(int, int) mem.Addr,
	cellOf func(int, int) int, locks lockSet) {

	// Read the whole particle record, recompute with the kinematic part,
	// rewrite position and velocity.
	for w := 0; w < 9; w++ {
		e.Load(p, particle(i, w))
	}
	for w := 0; w < 6; w++ {
		e.Load(p, particle(i, w))
	}
	for w := 0; w < 6; w++ {
		e.Store(p, particle(i, w))
	}

	// Leave the old space cell, enter the new one, both under the cell
	// lock.
	for _, c := range [2]int{cellOf(i, step), cellOf(i, step+1)} {
		locks.acquire(e, p, c)
		for w := 0; w < 4; w++ {
			e.Load(p, cell(c, w))
		}
		for w := 0; w < 3; w++ {
			e.Store(p, cell(c, w))
		}
		locks.release(e, p, c)
	}

	// Every fifth move collides with the neighboring particle, owned by
	// a different processor: five words of both records are updated.
	if (i+step)%5 == 0 {
		j := (i + 1) % particles
		c := cellOf(i, step+1)
		locks.acquire(e, p, c)
		for w := 0; w < 5; w++ {
			e.Load(p, particle(i, w))
			e.Load(p, particle(j, w))
		}
		for w := 0; w < 5; w++ {
			e.Store(p, particle(i, w))
			e.Store(p, particle(j, w))
		}
		locks.release(e, p, c)
	}
}

func sweepCell(e *trace.Emitter, p, c, procs int,
	cell func(int, int) mem.Addr, locks lockSet) {

	for w := 0; w < 8; w++ {
		e.Load(p, cell(c, w))
	}
	if c%procs != p {
		return
	}
	// Owned cell: locked rewrite of the full record, plus a second
	// rewrite of the occupancy head.
	locks.acquire(e, p, c)
	for w := 0; w < 12; w++ {
		e.Store(p, cell(c, w))
	}
	for w := 0; w < 4; w++ {
		e.Store(p, cell(c, w))
	}
	locks.release(e, p, c)
}
