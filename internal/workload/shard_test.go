package workload

// Shard-native generation tests: for every workload, the per-shard streams
// produced directly by the generator (Workload.ShardReader) must equal the
// streams a trace.Demux fans out of one central generation — same routing,
// same broadcast order for sync/phase references — and abandoning a
// shard-native stream early must not leak the generator goroutine.

import (
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/trace"
)

func drain(t *testing.T, r trace.Reader) []trace.Ref {
	t.Helper()
	var out []trace.Ref
	for {
		ref, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("reader error: %v", err)
		}
		out = append(out, ref)
	}
}

// TestShardReaderMatchesDemux: shard-native generation equals the demux
// pump's fan-out for every small workload.
func TestShardReaderMatchesDemux(t *testing.T) {
	g := mem.MustGeometry(64)
	const shards = 4
	key := trace.BlockShard(g, shards)
	for _, name := range SmallSet() {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		d := trace.NewDemux(w.Reader(), shards, key)
		want := make([][]trace.Ref, shards)
		var wg sync.WaitGroup
		for i := 0; i < shards; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				want[i] = drain(t, d.Shard(i))
			}(i)
		}
		wg.Wait()
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}

		for i := 0; i < shards; i++ {
			got := drain(t, w.ShardReader(i, key))
			if len(got) != len(want[i]) {
				t.Fatalf("%s shard %d: native %d refs, demux %d", name, i, len(got), len(want[i]))
			}
			for j := range want[i] {
				if got[j] != want[i][j] {
					t.Fatalf("%s shard %d ref %d: native %v, demux %v", name, i, j, got[j], want[i][j])
				}
			}
		}
	}
}

// TestShardReaderEarlyCloseNoLeak is the goroutine-leak regression check:
// closing a shard-native stream after a partial read must stop the backing
// generator goroutine.
func TestShardReaderEarlyCloseNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	g := mem.MustGeometry(64)
	key := trace.BlockShard(g, 4)
	w, err := Get("LU32")
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 20; iter++ {
		r := w.ShardReader(iter%4, key)
		for j := 0; j < 5; j++ {
			if _, err := r.Next(); err != nil {
				t.Fatal(err)
			}
		}
		if err := trace.CloseReader(r); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("generator goroutines leaked: %d > %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
