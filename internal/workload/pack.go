package workload

import (
	"io"

	"repro/internal/trace"
	"repro/internal/tracestore"
)

// Pack writes a fresh generation of the workload's trace to dst in the
// tracestore on-disk format, streaming: generation and encoding run in one
// pass with O(segment) memory.
func (w *Workload) Pack(dst io.Writer, opt tracestore.WriterOptions) (tracestore.PackStats, error) {
	return tracestore.Pack(dst, w.Reader(), opt)
}

// PackFile packs a fresh generation into path via temp file and rename
// (see tracestore.PackFile).
func (w *Workload) PackFile(path string, opt tracestore.WriterOptions) (tracestore.PackStats, error) {
	return tracestore.PackFile(path, w.Reader(), opt)
}

// RepeatReader streams times back-to-back fresh generations of the trace
// as one reader — the scale knob for building arbitrarily large packed
// traces out of the deterministic generators (the classification machinery
// has no notion of trace length, so a repeated trace is as valid a
// stress input as a longer computation). times <= 1 is equivalent to
// Reader.
func (w *Workload) RepeatReader(times int) trace.Reader {
	if times <= 1 {
		return w.Reader()
	}
	return &repeatReader{w: w, left: times}
}

// repeatReader chains sequential generations; it opens the next generation
// lazily when the current one drains, so at most one generator is live.
type repeatReader struct {
	w    *Workload
	cur  trace.BatchReader
	left int
}

func (r *repeatReader) NumProcs() int { return r.w.Procs }

func (r *repeatReader) NextBatch(buf []trace.Ref) (int, error) {
	for {
		if r.cur == nil {
			if r.left == 0 {
				return 0, io.EOF
			}
			r.left--
			// The generator reader is always a BatchReader.
			r.cur = r.w.Reader().(trace.BatchReader)
		}
		n, err := r.cur.NextBatch(buf)
		if err == io.EOF {
			cerr := trace.CloseReader(r.cur)
			r.cur = nil
			if cerr != nil {
				return n, cerr // a generation's close error fails the stream
			}
			if n > 0 {
				return n, nil
			}
			continue
		}
		return n, err
	}
}

func (r *repeatReader) Next() (trace.Ref, error) {
	var one [1]trace.Ref
	n, err := r.NextBatch(one[:])
	if n == 1 {
		return one[0], err
	}
	return trace.Ref{}, err
}

// Close releases the in-flight generation, if any.
func (r *repeatReader) Close() error {
	r.left = 0
	if r.cur == nil {
		return nil
	}
	err := trace.CloseReader(r.cur)
	r.cur = nil
	return err
}
