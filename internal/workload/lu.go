package workload

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/trace"
)

// LU models the Stanford LU decomposition benchmark (§5, §6): a dense
// column-major matrix of doubles whose columns are statically assigned to
// processors in a finely interleaved fashion (column j belongs to processor
// j mod P). At step k the owner normalizes column k and "produces" it by
// setting the column's ready flag; every processor then waits for the flag
// and uses column k to update each of its columns to the right.
//
// Columns go through the two-phase life the paper describes: written
// exclusively by one processor, then read by many (CTS misses at small
// blocks, §6). The triangular shrinkage of the active column combined with
// the interleaved assignment produces false sharing already at small block
// sizes, and the per-column ready flags, allocated back to back, add the
// fine-grain flag sharing of the pipeline.
func LU(n, procs int) *Workload {
	if n < procs {
		panic(fmt.Sprintf("workload: LU needs n >= %d", procs))
	}
	layout := mem.NewLayout(0)
	matBase := layout.AllocWords(n * n * 2) // column-major doubles
	flagBase := layout.AllocWords(n)        // per-column ready flags
	bar := newANLBarrier(layout)            // per-step barrier, SPLASH style

	// elem returns the first word of a(i,j); doubles are two words.
	elem := func(i, j int) mem.Addr { return matBase + mem.Addr((j*n+i)*2) }
	flag := func(j int) mem.Addr { return flagBase + mem.Addr(j) }

	loadD := func(e *trace.Emitter, p int, a mem.Addr) { e.Load(p, a); e.Load(p, a+1) }
	storeD := func(e *trace.Emitter, p int, a mem.Addr) { e.Store(p, a); e.Store(p, a+1) }

	gen := func(e *trace.Emitter) {
		for k := 0; k < n-1; k++ {
			owner := k % procs

			// The owner normalizes column k below the diagonal...
			loadD(e, owner, elem(k, k))
			for i := k + 1; i < n; i++ {
				loadD(e, owner, elem(i, k))
				storeD(e, owner, elem(i, k))
			}
			// ... and produces it.
			e.Store(owner, flag(k))
			e.Release(owner, flag(k))
			e.Phase()

			// Consumers wait for column k, then update their columns
			// to its right. One unit updates one column.
			units := make([]unit, procs)
			for p := 0; p < procs; p++ {
				p := p
				cols := ownedColumnsAfter(n, procs, p, k)
				acquired := p == owner // the producer needs no wait
				units[p] = counter(len(cols), func(c int) {
					if !acquired {
						acquired = true
						// Waiting for the producer: the spin
						// duration tracks the producer's
						// column length. These flag reads
						// dominate LU's reference count at
						// small n, which is why the paper's
						// LU32 speedup is only 5.7.
						for s := 0; s < n-k; s++ {
							e.Load(p, flag(k))
						}
						e.Acquire(p, flag(k))
						e.Load(p, flag(k)) // observe the flag after the acquire
					}
					j := cols[c]
					loadD(e, p, elem(k, j)) // the multiplier row element
					for i := k + 1; i < n; i++ {
						loadD(e, p, elem(i, k))
						loadD(e, p, elem(i, j))
						storeD(e, p, elem(i, j))
					}
				})
			}
			roundRobin(units)
			// SPLASH LU barriers after every pivot step; beyond the
			// synchronization itself, the barrier's counter/flag
			// adjacency injects the fine-grain false sharing the
			// paper observes in LU at small block sizes.
			bar.wait(e, procs)
		}
	}

	return &Workload{
		Name: fmt.Sprintf("LU%d", n),
		Description: fmt.Sprintf("LU decomposition of a dense %dx%d matrix, columns interleaved over %d processors",
			n, n, procs),
		Procs:     procs,
		DataBytes: layout.Bytes(),
		Regions: []Region{
			{Name: "matrix", Start: matBase, End: matBase + mem.Addr(n*n*2)},
			{Name: "flags", Start: flagBase, End: flagBase + mem.Addr(n)},
			{Name: "barrier", Start: bar.count, End: bar.flag + 1},
		},
		gen: gen,
	}
}

// ownedColumnsAfter lists processor p's columns with index > k.
func ownedColumnsAfter(n, procs, p, k int) []int {
	var cols []int
	start := p
	for j := start; j < n; j += procs {
		if j > k {
			cols = append(cols, j)
		}
	}
	return cols
}
