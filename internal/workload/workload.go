// Package workload generates synthetic reference traces that stand in for
// the paper's benchmark traces (§5): MP3D, WATER, LU and JACOBI, each in the
// paper's two data-set sizes, for 16 processors.
//
// The original traces were captured from SPLASH programs with the CacheMire
// test bench and are not available; these generators model instead the very
// properties the paper's analysis (§6) attributes every figure to — object
// sizes and memory layout (36-byte particles, 48-byte space cells, 680-byte
// molecules with a 72-byte inter-molecular write region, column-major
// matrices, row-major grids split into 16x16 subgrids), the assignment of
// objects to processors (fine interleaving in MP3D and LU, subgrids in
// JACOBI), the synchronization structure (locks around shared updates, an
// ANL-style barrier whose counter and flag live in consecutive words), and
// the per-benchmark reference volumes of Table 2. Absolute miss counts
// differ from the 1993 runs; the block-size shapes and protocol rankings
// carry over because they are driven by exactly this structure.
//
// All generators are deterministic: the same workload always produces the
// same trace.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/trace"
)

// DefaultProcs is the processor count used by all the paper's runs.
const DefaultProcs = 16

// Workload is a named deterministic trace generator.
type Workload struct {
	// Name is the paper's name for the run, e.g. "MP3D1000".
	Name string
	// Description summarizes the modeled computation.
	Description string
	// Procs is the number of processors.
	Procs int
	// DataBytes is the shared-data footprint laid out by the generator.
	DataBytes uint64
	// Regions names the data structures in the layout, in address order.
	// Miss-attribution analyses use them to answer "which structure
	// causes the false sharing" — the question §6 answers narratively.
	Regions []Region
	gen     func(*trace.Emitter)
}

// Region is a named address range [Start, End) in words.
type Region struct {
	Name       string
	Start, End mem.Addr
}

// Contains reports whether the word address lies in the region.
func (r Region) Contains(a mem.Addr) bool { return a >= r.Start && a < r.End }

// RegionOf returns the name of the region containing a, or "other".
func (w *Workload) RegionOf(a mem.Addr) string {
	for _, r := range w.Regions {
		if r.Contains(a) {
			return r.Name
		}
	}
	return "other"
}

// Reader returns a streaming reader over a fresh generation of the trace.
// Close it if it is not drained.
func (w *Workload) Reader() trace.Reader {
	return trace.Generate(w.Procs, w.gen)
}

// ShardReader returns a streaming reader over shard's subsequence of a
// fresh generation of the trace: data references the key routes to shard,
// plus every synchronization and phase reference, in stream order. Because
// generation is deterministic, N ShardReaders reproduce exactly the N
// streams a trace.Demux would fan out of one generation — this is the
// shard-native generation path of the fused replay engine, with no central
// demux pump. Close it if it is not drained.
func (w *Workload) ShardReader(shard int, key trace.ShardFunc) trace.Reader {
	return trace.NewShardReader(w.Reader(), shard, key)
}

// Collect generates the whole trace into memory. Use only for the small
// data-set workloads; the large ones run to tens of millions of references.
func (w *Workload) Collect() (*trace.Trace, error) {
	return trace.Collect(w.Reader())
}

// registry maps workload names to constructors. Construction is cheap; the
// expensive part is draining the reader.
var registry = map[string]func() *Workload{
	"MP3D1000":  func() *Workload { return MP3D(1000, 20, DefaultProcs) },
	"MP3D10000": func() *Workload { return MP3D(10000, 10, DefaultProcs) },
	"WATER16":   func() *Workload { return Water(16, 10, DefaultProcs) },
	"WATER288":  func() *Workload { return Water(288, 4, DefaultProcs) },
	"LU32":      func() *Workload { return LU(32, DefaultProcs) },
	"LU200":     func() *Workload { return LU(200, DefaultProcs) },
	"JACOBI":    func() *Workload { return Jacobi(64, 34, DefaultProcs) },
}

// Get returns the named workload (see Names).
func Get(name string) (*Workload, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	return ctor(), nil
}

// Names lists the registered workloads in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SmallSet lists the small-data-set runs used in Figs. 5 and 6.
func SmallSet() []string { return []string{"LU32", "MP3D1000", "WATER16", "JACOBI"} }

// LargeSet lists the large-data-set runs discussed in §7 and Table 1.
func LargeSet() []string { return []string{"LU200", "MP3D10000", "WATER288"} }

// unit is one small batch of work by one processor: the interleaving grain.
// It returns false when the processor has no more units in this phase.
type unit func() bool

// roundRobin interleaves the processors' units: one unit per processor per
// round, processors in index order, until all are exhausted. Within a phase
// this produces the fine deterministic interleaving the trace-driven
// methodology needs; each processor's program order is preserved.
func roundRobin(units []unit) {
	remaining := len(units)
	done := make([]bool, len(units))
	for remaining > 0 {
		for p, u := range units {
			if done[p] {
				continue
			}
			if !u() {
				done[p] = true
				remaining--
			}
		}
	}
}

// counter builds a unit that invokes fn with 0, 1, ..., n-1, one call per
// round.
func counter(n int, fn func(i int)) unit {
	i := 0
	return func() bool {
		if i >= n {
			return false
		}
		fn(i)
		i++
		return true
	}
}

// mix is a splitmix64-style integer hash used for deterministic
// pseudo-random assignment (e.g. which space cell a particle occupies).
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
