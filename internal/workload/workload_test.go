package workload

import (
	"hash/fnv"
	"io"
	"testing"

	"repro/internal/trace"
)

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("expected 7 workloads, got %v", names)
	}
	for _, name := range names {
		w, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		if w.Name != name {
			t.Errorf("workload %s reports name %s", name, w.Name)
		}
		if w.Procs != DefaultProcs {
			t.Errorf("%s: procs = %d", name, w.Procs)
		}
		if w.DataBytes == 0 || w.Description == "" {
			t.Errorf("%s: missing metadata", name)
		}
	}
	if _, err := Get("NOPE"); err == nil {
		t.Error("unknown workload accepted")
	}
	for _, name := range append(SmallSet(), LargeSet()...) {
		if _, err := Get(name); err != nil {
			t.Errorf("experiment set references unknown workload %s", name)
		}
	}
}

func TestConstructorsRejectBadParameters(t *testing.T) {
	for name, fn := range map[string]func(){
		"mp3d particles": func() { MP3D(8, 1, 16) },
		"mp3d steps":     func() { MP3D(100, 0, 16) },
		"water":          func() { Water(4, 1, 16) },
		"lu":             func() { LU(8, 16) },
		"jacobi procs":   func() { Jacobi(64, 1, 15) },
		"jacobi dim":     func() { Jacobi(63, 1, 16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestOwnedCount(t *testing.T) {
	total := 0
	for p := 0; p < 16; p++ {
		total += ownedCount(1000, 16, p)
	}
	if total != 1000 {
		t.Errorf("ownedCount does not partition: %d", total)
	}
	if ownedCount(5, 4, 0) != 2 || ownedCount(5, 4, 3) != 1 {
		t.Error("remainder distribution wrong")
	}
}

func TestRoundRobinInterleaves(t *testing.T) {
	var order []int
	units := []unit{
		counter(3, func(int) { order = append(order, 0) }),
		counter(1, func(int) { order = append(order, 1) }),
		counter(2, func(int) { order = append(order, 2) }),
	}
	roundRobin(units)
	want := []int{0, 1, 2, 0, 2, 0}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// characterize drains one generation through a Stats collector.
func characterize(t *testing.T, w *Workload, footprint bool) *trace.Stats {
	t.Helper()
	s := trace.NewStats(w.Procs, footprint)
	if err := trace.Drive(w.Reader(), s); err != nil {
		t.Fatal(err)
	}
	return s
}

// Table 2 anchors: reads/writes/sync in thousands as the paper reports, with
// a generous tolerance — the generators model the benchmarks, they do not
// replay them. A factor of 3 in either direction still preserves every
// qualitative conclusion the paper draws from these traces.
func TestSmallWorkloadsMatchTable2(t *testing.T) {
	anchors := map[string]struct{ writes, reads, sync, syncBand float64 }{
		"MP3D1000": {357, 948, 90, 3},
		"WATER16":  {83, 973, 9, 3},
		// LU32's lock traffic is dominated by ANL busy-retry locks
		// under heavy contention, which the pure acquire/release
		// model does not reproduce; the band is correspondingly wide.
		"LU32":   {37, 136, 4, 12},
		"JACOBI": {280, 2407, 4, 3},
	}
	for name, want := range anchors {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		s := characterize(t, w, true)
		checkBand(t, name+" writes", float64(s.Stores)/1000, want.writes, 3)
		checkBand(t, name+" reads", float64(s.Loads)/1000, want.reads, 3)
		checkBand(t, name+" sync", float64(s.SyncRefs())/1000, want.sync, want.syncBand)

		// Footprint: the touched words must essentially fill the layout.
		if got, laid := s.DataSetBytes(), w.DataBytes; got > laid || got < laid/2 {
			t.Errorf("%s: touched %d bytes of %d laid out", name, got, laid)
		}
		// Speedup must be parallel but not superlinear.
		if sp := s.Speedup(); sp < 1.5 || sp > float64(w.Procs) {
			t.Errorf("%s: modeled speedup %.1f out of range", name, sp)
		}
	}
}

func checkBand(t *testing.T, what string, got, want, factor float64) {
	t.Helper()
	if got < want/factor || got > want*factor {
		t.Errorf("%s = %.1fk, paper reports %.0fk (allowed factor %.0f)", what, got, want, factor)
	}
}

// LU's pipeline over a small matrix parallelizes poorly; JACOBI's balanced
// subgrids parallelize almost perfectly. Table 2: LU32 speedup 5.7 vs
// JACOBI 15.0. The model must reproduce the ordering.
func TestSpeedupOrdering(t *testing.T) {
	lu, _ := Get("LU32")
	jac, _ := Get("JACOBI")
	sLU := characterize(t, lu, false).Speedup()
	sJac := characterize(t, jac, false).Speedup()
	if sLU >= sJac {
		t.Errorf("LU32 speedup %.1f should be below JACOBI's %.1f", sLU, sJac)
	}
	if sJac < 10 {
		t.Errorf("JACOBI speedup %.1f, want near-perfect (paper: 15.0)", sJac)
	}
	if sLU > 12 {
		t.Errorf("LU32 speedup %.1f, want clearly degraded (paper: 5.7)", sLU)
	}
}

func TestTracesAreValid(t *testing.T) {
	for _, name := range SmallSet() {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := w.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if tr.Procs != DefaultProcs {
			t.Errorf("%s: procs = %d", name, tr.Procs)
		}
	}
}

func traceHash(t *testing.T, w *Workload) uint64 {
	t.Helper()
	h := fnv.New64a()
	r := w.Reader()
	var buf [8]byte
	for {
		ref, err := r.Next()
		if err == io.EOF {
			return h.Sum64()
		}
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(ref.Kind)
		buf[1] = byte(ref.Proc)
		for i := 0; i < 6; i++ {
			buf[2+i] = byte(ref.Addr >> (8 * i))
		}
		h.Write(buf[:])
	}
}

func TestGenerationDeterministic(t *testing.T) {
	for _, name := range []string{"LU32", "MP3D1000"} {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if traceHash(t, w) != traceHash(t, w) {
			t.Errorf("%s: two generations differ", name)
		}
	}
}

// Every processor must contribute work, and phases must be marked.
func TestAllProcessorsParticipate(t *testing.T) {
	for _, name := range SmallSet() {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		s := characterize(t, w, false)
		for p, refs := range s.PerProc {
			if refs == 0 {
				t.Errorf("%s: processor %d issues no references", name, p)
			}
		}
		if s.Speedup() == 0 {
			t.Errorf("%s: no phases recorded", name)
		}
	}
}

// The large data sets must stream without being collected: spot-check that
// the reader produces a plausible prefix and can be closed early.
func TestLargeWorkloadsStreamAndClose(t *testing.T) {
	for _, name := range LargeSet() {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		r := w.Reader()
		for i := 0; i < 10000; i++ {
			ref, err := r.Next()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if ref.Kind != trace.Phase && int(ref.Proc) >= w.Procs {
				t.Fatalf("%s: bad proc %d", name, ref.Proc)
			}
		}
		if err := trace.CloseReader(r); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
	}
}
