package trace

// Microbenchmarks for the trace plumbing itself — batch draining, the
// binary codec, and the demux fan-out — so `make bench` (which sweeps
// ./...) tracks the streaming substrate separately from the classifiers
// that consume it.

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/mem"
)

// benchTrace builds a deterministic mixed read/write trace.
func benchTrace(procs, n int) *Trace {
	tr := New(procs)
	for i := 0; i < n; i++ {
		p := i % procs
		addr := mem.Addr((i * 7) % 4096)
		if i%5 == 0 {
			tr.Append(S(p, addr))
		} else {
			tr.Append(L(p, addr))
		}
	}
	return tr
}

func BenchmarkSliceReaderNextBatch(b *testing.B) {
	tr := benchTrace(4, 1<<14)
	buf := make([]Ref, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := tr.Reader().(BatchReader)
		var total int
		for {
			n, err := r.NextBatch(buf)
			total += n
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		if total != tr.Len() {
			b.Fatalf("drained %d of %d refs", total, tr.Len())
		}
	}
	b.SetBytes(int64(tr.Len()) * int64(refWireSizeEstimate))
}

// refWireSizeEstimate keeps SetBytes meaningful without depending on the
// in-memory struct layout.
const refWireSizeEstimate = 8

func BenchmarkEncodeBinary(b *testing.B) {
	tr := benchTrace(4, 1<<14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr.Reader()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBinary(b *testing.B) {
	tr := benchTrace(4, 1<<14)
	var enc bytes.Buffer
	if err := WriteBinary(&enc, tr.Reader()); err != nil {
		b.Fatal(err)
	}
	data := enc.Bytes()
	buf := make([]Ref, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		var total int
		for {
			n, err := d.NextBatch(buf)
			total += n
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		if total != tr.Len() {
			b.Fatalf("decoded %d of %d refs", total, tr.Len())
		}
	}
	b.SetBytes(int64(len(data)))
}

func BenchmarkGenerateStream(b *testing.B) {
	const n = 1 << 14
	buf := make([]Ref, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := Generate(4, func(e *Emitter) {
			for j := 0; j < n; j++ {
				e.Load(j%4, mem.Addr(j%4096))
			}
		})
		var total int
		for {
			cnt, err := g.NextBatch(buf)
			total += cnt
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		if total != n {
			b.Fatalf("generated %d of %d refs", total, n)
		}
	}
}
