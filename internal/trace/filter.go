package trace

import (
	"io"

	"repro/internal/mem"
)

// Stream-manipulation utilities: composable Reader wrappers for slicing,
// filtering and rewriting traces. All wrappers close their source when
// closed and propagate NumProcs.

// filterReader applies pred to an underlying stream.
type filterReader struct {
	src  Reader
	pred func(Ref) bool
}

// Filter returns a Reader passing through only the references for which
// pred returns true.
func Filter(src Reader, pred func(Ref) bool) Reader {
	return &filterReader{src: src, pred: pred}
}

// ByProc keeps only references (and phase markers) of the given processor.
func ByProc(src Reader, proc int) Reader {
	return Filter(src, func(r Ref) bool {
		return r.Kind == Phase || int(r.Proc) == proc
	})
}

// ByKind keeps only references of the given kinds (phase markers are
// dropped unless listed).
func ByKind(src Reader, kinds ...Kind) Reader {
	var keep [numKinds]bool
	for _, k := range kinds {
		if k.Valid() {
			keep[k] = true
		}
	}
	return Filter(src, func(r Ref) bool { return r.Kind.Valid() && keep[r.Kind] })
}

// ByAddrRange keeps data references touching [start, end) plus all
// synchronization and phase references.
func ByAddrRange(src Reader, start, end mem.Addr) Reader {
	return Filter(src, func(r Ref) bool {
		if !r.Kind.IsData() {
			return true
		}
		return r.Addr >= start && r.Addr < end
	})
}

func (f *filterReader) NumProcs() int { return f.src.NumProcs() }

func (f *filterReader) Next() (Ref, error) {
	for {
		r, err := f.src.Next()
		if err != nil {
			return Ref{}, err
		}
		if f.pred(r) {
			return r, nil
		}
	}
}

func (f *filterReader) Close() error { return CloseReader(f.src) }

// sliceReaderRange yields references with index in [start, end).
type sliceRange struct {
	src        Reader
	pos        int
	start, end int
}

// Slice returns a Reader over the references with index in [start, end) of
// the source stream. A negative end means "to the end of the stream".
func Slice(src Reader, start, end int) Reader {
	return &sliceRange{src: src, start: start, end: end}
}

func (s *sliceRange) NumProcs() int { return s.src.NumProcs() }

func (s *sliceRange) Next() (Ref, error) {
	for {
		if s.end >= 0 && s.pos >= s.end {
			return Ref{}, io.EOF
		}
		r, err := s.src.Next()
		if err != nil {
			return Ref{}, err
		}
		s.pos++
		if s.pos > s.start {
			return r, nil
		}
	}
}

func (s *sliceRange) Close() error { return CloseReader(s.src) }

// remapReader rewrites data addresses.
type remapReader struct {
	src Reader
	fn  func(mem.Addr) mem.Addr
}

// Remap rewrites the address of every data reference with fn (sync
// variables and phase markers pass through unchanged). Useful for layout
// experiments: padding, structure splitting, false-sharing repair.
func Remap(src Reader, fn func(mem.Addr) mem.Addr) Reader {
	return &remapReader{src: src, fn: fn}
}

func (m *remapReader) NumProcs() int { return m.src.NumProcs() }

func (m *remapReader) Next() (Ref, error) {
	r, err := m.src.Next()
	if err != nil {
		return Ref{}, err
	}
	if r.Kind.IsData() {
		r.Addr = m.fn(r.Addr)
	}
	return r, nil
}

func (m *remapReader) Close() error { return CloseReader(m.src) }

// Concat returns a Reader yielding all of a's references followed by all of
// b's. Both must have the same processor count.
func Concat(a, b Reader) Reader {
	return &concatReader{a: a, b: b}
}

type concatReader struct {
	a, b  Reader
	onTwo bool
}

func (c *concatReader) NumProcs() int { return c.a.NumProcs() }

func (c *concatReader) Next() (Ref, error) {
	if !c.onTwo {
		r, err := c.a.Next()
		if err == nil {
			return r, nil
		}
		if err != io.EOF {
			return Ref{}, err
		}
		c.onTwo = true
	}
	return c.b.Next()
}

func (c *concatReader) Close() error {
	errA := CloseReader(c.a)
	errB := CloseReader(c.b)
	if errA != nil {
		return errA
	}
	return errB
}
