package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	tr := New(16,
		L(0, 0), S(15, 1<<40), A(7, 12345), R(7, 12345), P(), L(3, 77),
	)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr.Reader()); err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(dec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Procs != 16 {
		t.Errorf("procs = %d, want 16", got.Procs)
	}
	if !reflect.DeepEqual(got.Refs, tr.Refs) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got.Refs, tr.Refs)
	}
}

func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 8, 500)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr.Reader()); err != nil {
			return false
		}
		dec, err := NewDecoder(&buf)
		if err != nil {
			return false
		}
		got, err := Collect(dec)
		if err != nil {
			return false
		}
		return got.Procs == tr.Procs && reflect.DeepEqual(got.Refs, tr.Refs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, New(4).Reader()); err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumProcs() != 4 {
		t.Errorf("procs = %d", dec.NumProcs())
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Errorf("Next on empty trace = %v, want EOF", err)
	}
}

func TestDecoderRejectsBadInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE\x01\x04"),
		"bad version": []byte("UMTR\x09\x04"),
		"zero procs":  []byte("UMTR\x01\x00"),
	}
	for name, data := range cases {
		if _, err := NewDecoder(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decoder accepted bad input", name)
		}
	}
}

func TestDecoderRejectsBadRecords(t *testing.T) {
	// Valid header for 2 procs, then a record with kind=200.
	data := append([]byte("UMTR\x01\x02"), 200, 0, 0)
	dec, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err == nil {
		t.Error("invalid kind accepted")
	}

	// Out-of-range proc.
	data = append([]byte("UMTR\x01\x02"), byte(Load), 5, 0)
	dec, err = NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err == nil {
		t.Error("out-of-range proc accepted")
	}

	// Truncated record: kind byte then EOF.
	data = append([]byte("UMTR\x01\x02"), byte(Load))
	dec, err = NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated record error = %v, want ErrUnexpectedEOF", err)
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := New(16,
		L(0, 0), S(15, 99), A(7, 12345), R(7, 12345), P(), L(3, 77),
	)
	var buf bytes.Buffer
	if err := WriteText(&buf, tr.Reader()); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Procs != 16 || !reflect.DeepEqual(got.Refs, tr.Refs) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got.Refs, tr.Refs)
	}
}

func TestParseTextHandWritten(t *testing.T) {
	input := `
# A hand-written trace.
procs 2

P0 ST 0
P1 LD 0x10
PH
P1 ACQ 64
P1 REL 64
`
	got, err := ParseText(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := []Ref{S(0, 0), L(1, 16), P(), A(1, 64), R(1, 64)}
	if !reflect.DeepEqual(got.Refs, want) {
		t.Errorf("got %v, want %v", got.Refs, want)
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := map[string]string{
		"no header":      "P0 LD 0\n",
		"empty":          "",
		"bad proc count": "procs zero\n",
		"neg procs":      "procs -1\n",
		"bad proc":       "procs 2\nP9 LD 0\n",
		"no P prefix":    "procs 2\nQ0 LD 0\n",
		"bad kind":       "procs 2\nP0 XX 0\n",
		"bad addr":       "procs 2\nP0 LD zap\n",
		"short line":     "procs 2\nP0 LD\n",
		"phase operand":  "procs 2\nPH 3\n",
	}
	for name, input := range cases {
		if _, err := ParseText(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}

func TestTextBinaryAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := randomTrace(rng, 6, 300)

	var tbuf, bbuf bytes.Buffer
	if err := WriteText(&tbuf, tr.Reader()); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bbuf, tr.Reader()); err != nil {
		t.Fatal(err)
	}
	fromText, err := ParseText(&tbuf)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(&bbuf)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := Collect(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromText.Refs, fromBin.Refs) {
		t.Error("text and binary codecs disagree")
	}
}
