package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/mem"
)

// batchTestTrace builds a small mixed trace: data refs across two procs and
// a few blocks, with sync and phase refs sprinkled in.
func batchTestTrace() *Trace {
	t := New(2)
	for i := 0; i < 3000; i++ {
		p := i % 2
		a := mem.Addr(i % 97)
		switch i % 11 {
		case 3:
			t.Append(A(p, 1000))
		case 7:
			t.Append(R(p, 1000))
		case 9:
			t.Append(P())
		default:
			if i%3 == 0 {
				t.Append(S(p, a))
			} else {
				t.Append(L(p, a))
			}
		}
	}
	return t
}

// drainBatch drains a reader exclusively through NextBatch, with a batch
// size chosen to hit partial-batch boundaries.
func drainBatch(t *testing.T, r Reader, size int) []Ref {
	t.Helper()
	br, ok := r.(BatchReader)
	if !ok {
		t.Fatalf("%T does not implement BatchReader", r)
	}
	buf := make([]Ref, size)
	var out []Ref
	for {
		n, err := br.NextBatch(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("NextBatch: %v", err)
		}
	}
}

func refsEqual(a, b []Ref) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestNextBatchMatchesNext drains every BatchReader implementation both ways
// and asserts identical reference sequences.
func TestNextBatchMatchesNext(t *testing.T) {
	tr := batchTestTrace()
	want := tr.Refs

	makeGen := func() Reader {
		return Generate(2, func(e *Emitter) {
			for _, r := range want {
				e.Emit(r)
			}
		})
	}
	var bin bytes.Buffer
	if err := WriteBinary(&bin, tr.Reader()); err != nil {
		t.Fatal(err)
	}
	makeDec := func() Reader {
		d, err := NewDecoder(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	cases := []struct {
		name string
		mk   func() Reader
	}{
		{"slice", func() Reader { return tr.Reader() }},
		{"generator", makeGen},
		{"decoder", makeDec},
	}
	for _, tc := range cases {
		for _, size := range []int{1, 7, 512, 8192} {
			got := drainBatch(t, tc.mk(), size)
			if !refsEqual(got, want) {
				t.Fatalf("%s size %d: batch drain diverges (%d refs, want %d)",
					tc.name, size, len(got), len(want))
			}
		}
	}
}

// TestDemuxShardNextBatch asserts the demux shard's batch path yields the
// same per-shard sequence as its per-ref path.
func TestDemuxShardNextBatch(t *testing.T) {
	tr := batchTestTrace()
	g := mem.MustGeometry(16)
	const shards = 3

	perRef := make([][]Ref, shards)
	d := NewDemux(tr.Reader(), shards, BlockShard(g, shards))
	for i := 0; i < shards; i++ {
		for {
			ref, err := d.Shard(i).Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			perRef[i] = append(perRef[i], ref)
		}
	}

	d2 := NewDemux(tr.Reader(), shards, BlockShard(g, shards))
	for i := 0; i < shards; i++ {
		got := drainBatch(t, d2.Shard(i), 129)
		if !refsEqual(got, perRef[i]) {
			t.Fatalf("shard %d: batch drain diverges", i)
		}
	}
}

// errCloser wraps a Reader with a Close that fails.
type errCloser struct {
	Reader
	err    error
	closed bool
}

func (e *errCloser) Close() error {
	e.closed = true
	return e.err
}

// readErrReader fails after yielding a few references.
type readErrReader struct {
	left int
	err  error
}

func (r *readErrReader) NumProcs() int { return 1 }

func (r *readErrReader) Next() (Ref, error) {
	if r.left == 0 {
		return Ref{}, r.err
	}
	r.left--
	return L(0, 1), nil
}

// TestDrivepropagatesCloseError: a stream that ends cleanly but whose
// reader fails to close must surface the close error (the old Drive
// silently discarded it).
func TestDrivePropagatesCloseError(t *testing.T) {
	closeErr := errors.New("close failed")
	r := &errCloser{Reader: New(1, L(0, 1), S(0, 2)).Reader(), err: closeErr}
	var n int
	err := Drive(r, consumerFunc(func(Ref) { n++ }))
	if !errors.Is(err, closeErr) {
		t.Fatalf("Drive = %v, want the close error", err)
	}
	if !r.closed {
		t.Fatal("Drive did not close the reader")
	}
	if n != 2 {
		t.Fatalf("consumer saw %d refs, want 2", n)
	}
}

// TestDriveReadErrorWinsOverCloseError: when the stream itself fails, the
// read error is reported, not the (secondary) close error.
func TestDriveReadErrorWinsOverCloseError(t *testing.T) {
	readErr := errors.New("read failed")
	closeErr := errors.New("close failed")
	r := &errCloser{Reader: &readErrReader{left: 3, err: readErr}, err: closeErr}
	err := Drive(r, consumerFunc(func(Ref) {}))
	if !errors.Is(err, readErr) {
		t.Fatalf("Drive = %v, want the read error", err)
	}
	if !r.closed {
		t.Fatal("Drive did not close the reader after a read error")
	}
}

// TestCollectPropagatesCloseError: Collect and CollectN surface close
// errors on otherwise-clean drains.
func TestCollectPropagatesCloseError(t *testing.T) {
	closeErr := errors.New("close failed")
	if _, err := Collect(&errCloser{Reader: New(1, L(0, 1)).Reader(), err: closeErr}); !errors.Is(err, closeErr) {
		t.Fatalf("Collect = %v, want the close error", err)
	}
	if _, _, err := CollectN(&errCloser{Reader: New(1, L(0, 1)).Reader(), err: closeErr}, 10); !errors.Is(err, closeErr) {
		t.Fatalf("CollectN = %v, want the close error", err)
	}
}

// TestCollectNExactLengthIsFullDrain: a stream of exactly maxRefs
// references is a complete drain (regression for the batched rewrite).
func TestCollectNExactLengthIsFullDrain(t *testing.T) {
	tr := New(1, L(0, 1), L(0, 2), L(0, 3))
	got, full, err := CollectN(tr.Reader(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !full {
		t.Fatal("CollectN reported a partial drain for an exact-length stream")
	}
	if got.Len() != 3 {
		t.Fatalf("collected %d refs, want 3", got.Len())
	}
	got, full, err = CollectN(tr.Reader(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if full {
		t.Fatal("CollectN reported a full drain for a capped stream")
	}
	if got.Len() != 2 {
		t.Fatalf("collected %d refs, want 2", got.Len())
	}
}

// consumerFunc adapts a func to Consumer.
type consumerFunc func(Ref)

func (f consumerFunc) Ref(r Ref) { f(r) }

// batchCounting records both delivery paths so the test can assert Drive
// prefers RefBatch.
type batchCounting struct {
	refs    []Ref
	batches int
	perRef  int
}

func (b *batchCounting) Ref(r Ref) {
	b.perRef++
	b.refs = append(b.refs, r)
}

func (b *batchCounting) RefBatch(refs []Ref) {
	b.batches++
	b.refs = append(b.refs, refs...)
}

// TestDriveUsesBatchConsumer: batch-capable consumers get whole batches and
// never the per-ref fallback; legacy consumers still see every reference.
func TestDriveUsesBatchConsumer(t *testing.T) {
	tr := batchTestTrace()
	bc := &batchCounting{}
	var legacy []Ref
	if err := Drive(tr.Reader(), bc, consumerFunc(func(r Ref) { legacy = append(legacy, r) })); err != nil {
		t.Fatal(err)
	}
	if bc.perRef != 0 {
		t.Fatalf("batch consumer got %d per-ref deliveries", bc.perRef)
	}
	if bc.batches == 0 {
		t.Fatal("batch consumer never received a batch")
	}
	if !refsEqual(bc.refs, tr.Refs) || !refsEqual(legacy, tr.Refs) {
		t.Fatal("delivered sequences diverge from the trace")
	}
}
