package trace

// Demux-stage tests: routing and broadcast rules, per-shard order,
// data-reference conservation, and — the regression suite for the teardown
// fix — leak-free shutdown on early shard close, demux Close, and source
// errors.

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/mem"
)

// collectShard drains one shard into a slice.
func collectShard(t *testing.T, r Reader) []Ref {
	t.Helper()
	var out []Ref
	for {
		ref, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("shard error: %v", err)
		}
		out = append(out, ref)
	}
}

func randomDemuxTrace(rng *rand.Rand, procs, n int) *Trace {
	tr := New(procs)
	for i := 0; i < n; i++ {
		p := rng.Intn(procs)
		switch rng.Intn(10) {
		case 0:
			tr.Append(A(p, 1000))
		case 1:
			tr.Append(R(p, 1000))
		case 2:
			tr.Append(P())
		case 3, 4:
			tr.Append(S(p, mem.Addr(rng.Intn(96))))
		default:
			tr.Append(L(p, mem.Addr(rng.Intn(96))))
		}
	}
	return tr
}

// TestDemuxRoutingAndOrder checks the demux contract directly: each data
// reference lands exactly on its key's shard, every sync/phase reference
// reaches all shards, and every shard stream is an order-preserving
// subsequence of the source.
func TestDemuxRoutingAndOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := randomDemuxTrace(rng, 4, 3000)
	g := mem.MustGeometry(16)
	const n = 5
	d := NewDemux(tr.Reader(), n, BlockShard(g, n))

	shards := make([][]Ref, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shards[i] = collectShard(t, d.Shard(i))
		}(i)
	}
	wg.Wait()
	defer d.Close()

	// Expected per-shard subsequences, built serially.
	want := make([][]Ref, n)
	for _, ref := range tr.Refs {
		if ref.Kind.IsData() {
			i := int(uint64(g.BlockOf(ref.Addr)) % n)
			want[i] = append(want[i], ref)
			continue
		}
		for i := range want {
			want[i] = append(want[i], ref)
		}
	}
	var dataDelivered uint64
	for i := 0; i < n; i++ {
		if len(shards[i]) != len(want[i]) {
			t.Fatalf("shard %d: %d refs, want %d", i, len(shards[i]), len(want[i]))
		}
		for j := range want[i] {
			if shards[i][j] != want[i][j] {
				t.Fatalf("shard %d ref %d: got %v, want %v", i, j, shards[i][j], want[i][j])
			}
		}
		for _, ref := range shards[i] {
			if ref.Kind.IsData() {
				dataDelivered++
			}
		}
		if d.Shard(i).NumProcs() != tr.Procs {
			t.Fatalf("shard %d: NumProcs %d, want %d", i, d.Shard(i).NumProcs(), tr.Procs)
		}
	}
	if dataDelivered != tr.DataRefs() {
		t.Fatalf("data refs not conserved: delivered %d, trace has %d", dataDelivered, tr.DataRefs())
	}
}

// errAfterReader yields n loads, then a non-EOF error. It records whether
// it was closed.
type errAfterReader struct {
	n      int
	pos    int
	err    error
	closed bool
}

func (r *errAfterReader) NumProcs() int { return 2 }
func (r *errAfterReader) Next() (Ref, error) {
	if r.pos >= r.n {
		return Ref{}, r.err
	}
	r.pos++
	return L(0, mem.Addr(r.pos)), nil
}
func (r *errAfterReader) Close() error {
	r.closed = true
	return nil
}

// TestDemuxErrorPropagation: a source error must reach every shard (after
// its buffered prefix) and the source must be closed.
func TestDemuxErrorPropagation(t *testing.T) {
	srcErr := errors.New("backing store exploded")
	src := &errAfterReader{n: 2000, err: srcErr}
	const n = 3
	g := mem.MustGeometry(8)
	d := NewDemux(src, n, BlockShard(g, n))

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				_, err := d.Shard(i).Next()
				if err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	// Close waits for the pump goroutine, ordering its CloseReader call
	// before the src.closed check below.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	for i, err := range errs {
		if !errors.Is(err, srcErr) {
			t.Errorf("shard %d: got %v, want the source error", i, err)
		}
	}
	if !src.closed {
		t.Error("source reader not closed after error")
	}
}

// waitForGoroutines polls until the goroutine count drops back to at most
// base, tolerating scheduler lag.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDemuxEarlyShardCloseNoLeak is the regression test for the teardown
// fix: closing one shard mid-stream must neither stall the pump nor leak
// it, and the remaining shards must still drain to EOF with their full
// contents.
func TestDemuxEarlyShardCloseNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for iter := 0; iter < 20; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		tr := randomDemuxTrace(rng, 4, 4000)
		g := mem.MustGeometry(16)
		const n = 4
		d := NewDemux(tr.Reader(), n, BlockShard(g, n))

		// Read a few refs from shard 0, then abandon it via CloseReader —
		// the path trace.Drive takes when a consumer's shard errors.
		s0 := d.Shard(0)
		for j := 0; j < 3; j++ {
			if _, err := s0.Next(); err != nil {
				break
			}
		}
		if err := CloseReader(s0); err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		got := make([]int, n)
		for i := 1; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got[i] = len(collectShard(t, d.Shard(i)))
			}(i)
		}
		wg.Wait()
		for i := 1; i < n; i++ {
			wantLen := 0
			for _, ref := range tr.Refs {
				if !ref.Kind.IsData() || int(uint64(g.BlockOf(ref.Addr))%n) == i {
					wantLen++
				}
			}
			if got[i] != wantLen {
				t.Fatalf("iter %d shard %d: %d refs after peer close, want %d", iter, i, got[i], wantLen)
			}
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
	waitForGoroutines(t, base)
}

// TestDemuxCloseMidStreamNoLeak: Close while every shard is still being
// pumped must stop the pump, close the source, and fail pending reads with
// ErrStopped.
func TestDemuxCloseMidStreamNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for iter := 0; iter < 20; iter++ {
		src := &errAfterReader{n: 1 << 20, err: io.EOF}
		const n = 3
		g := mem.MustGeometry(8)
		d := NewDemux(src, n, BlockShard(g, n))

		// Consume a little so the pump is mid-flight, then tear down.
		if _, err := d.Shard(0).Next(); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			var err error
			for err == nil {
				_, err = d.Shard(i).Next()
			}
			if !errors.Is(err, ErrStopped) && err != io.EOF {
				t.Fatalf("iter %d shard %d: got %v, want ErrStopped or EOF", iter, i, err)
			}
		}
		if !src.closed {
			t.Fatalf("iter %d: source not closed after demux Close", iter)
		}
	}
	waitForGoroutines(t, base)
}

// TestDemuxAllShardsClosedStopsPump: abandoning every shard must let the
// pump finish (it keeps draining the source but delivers nowhere) without
// an explicit demux Close.
func TestDemuxAllShardsClosedStopsPump(t *testing.T) {
	base := runtime.NumGoroutine()
	for iter := 0; iter < 10; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		tr := randomDemuxTrace(rng, 4, 2000)
		g := mem.MustGeometry(16)
		const n = 4
		d := NewDemux(tr.Reader(), n, BlockShard(g, n))
		for i := 0; i < n; i++ {
			if err := CloseReader(d.Shard(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
	waitForGoroutines(t, base)
}

// TestDemuxSingleShardIdentity: a 1-shard demux must reproduce the source
// stream exactly (data and sync refs alike).
func TestDemuxSingleShardIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := randomDemuxTrace(rng, 3, 1500)
	d := NewDemux(tr.Reader(), 1, func(Ref) int { return 0 })
	defer d.Close()
	got := collectShard(t, d.Shard(0))
	if len(got) != tr.Len() {
		t.Fatalf("got %d refs, want %d", len(got), tr.Len())
	}
	for i := range got {
		if got[i] != tr.Refs[i] {
			t.Fatalf("ref %d: got %v, want %v", i, got[i], tr.Refs[i])
		}
	}
}

// TestDemuxBadKey: a ShardFunc result out of range must surface as an
// error on the shards, not a panic or a hang.
func TestDemuxBadKey(t *testing.T) {
	tr := New(2, L(0, 0), L(1, 1))
	d := NewDemux(tr.Reader(), 2, func(Ref) int { return 99 })
	defer d.Close()
	var err error
	for err == nil {
		_, err = d.Shard(0).Next()
	}
	if err == io.EOF {
		t.Fatal("out-of-range shard key silently ignored")
	}
	if want := fmt.Sprintf("%d shards", 2); !contains(err.Error(), want) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
