package trace

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/obs/span"
)

// Reader is a pull-based stream of trace references. Next returns io.EOF
// when the stream ends. Readers that hold resources also implement io.Closer;
// use CloseReader to release them.
type Reader interface {
	// NumProcs returns the number of processors in the trace. All Proc
	// fields are smaller than this.
	NumProcs() int
	// Next returns the next reference, or io.EOF at end of stream.
	Next() (Ref, error)
}

// CloseReader closes r if it implements io.Closer.
func CloseReader(r Reader) error {
	if c, ok := r.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// BatchReader is a Reader that can deliver references many at a time,
// amortizing the per-reference interface dispatch of Next over whole
// batches. The in-memory trace reader, the workload generators, the binary
// decoder and the demux shards all implement it; Drive uses it when
// available.
type BatchReader interface {
	Reader
	// NextBatch fills buf with the next references of the stream and
	// returns how many were written (at most len(buf), possibly fewer).
	// The filled prefix is valid even when err != nil: a reader may
	// return its last references together with io.EOF or a decode error.
	// End of stream is n == 0 with io.EOF.
	NextBatch(buf []Ref) (n int, err error)
}

// driveBatch is the reference-batch size used by Drive and the demux pump.
// Large enough to amortize dispatch, small enough that a batch of 16-byte
// refs stays well inside the L1 cache.
const driveBatch = 1024

// fill reads up to len(buf) references from r into buf using plain Next
// calls; it is the BatchReader fallback for legacy readers. Like NextBatch,
// the filled prefix is valid even when err != nil.
func fill(r Reader, buf []Ref) (int, error) {
	for n := 0; n < len(buf); n++ {
		ref, err := r.Next()
		if err != nil {
			return n, err
		}
		buf[n] = ref
	}
	return len(buf), nil
}

// Trace is an in-memory trace.
type Trace struct {
	Procs int
	Refs  []Ref
}

// New returns an empty in-memory trace for the given processor count.
func New(procs int, refs ...Ref) *Trace {
	return &Trace{Procs: procs, Refs: refs}
}

// Append adds references to the trace.
func (t *Trace) Append(refs ...Ref) { t.Refs = append(t.Refs, refs...) }

// Len returns the number of references.
func (t *Trace) Len() int { return len(t.Refs) }

// DataRefs returns the number of data (load/store) references: the
// denominator of every miss rate in the paper.
func (t *Trace) DataRefs() uint64 {
	var n uint64
	for _, r := range t.Refs {
		if r.Kind.IsData() {
			n++
		}
	}
	return n
}

// Reader returns a Reader over the trace. Multiple concurrent readers over
// the same trace are independent.
func (t *Trace) Reader() Reader {
	return &sliceReader{procs: t.Procs, refs: t.Refs}
}

// Validate checks that every reference has a valid kind and an in-range
// processor id.
func (t *Trace) Validate() error {
	if t.Procs <= 0 {
		return fmt.Errorf("trace: non-positive processor count %d", t.Procs)
	}
	for i, r := range t.Refs {
		if !r.Kind.Valid() {
			return fmt.Errorf("trace: ref %d: invalid kind %d", i, r.Kind)
		}
		if r.Kind != Phase && int(r.Proc) >= t.Procs {
			return fmt.Errorf("trace: ref %d: proc %d out of range [0,%d)", i, r.Proc, t.Procs)
		}
	}
	return nil
}

type sliceReader struct {
	procs int
	refs  []Ref
	pos   int
}

func (r *sliceReader) NumProcs() int { return r.procs }

func (r *sliceReader) Next() (Ref, error) {
	if r.pos >= len(r.refs) {
		return Ref{}, io.EOF
	}
	ref := r.refs[r.pos]
	r.pos++
	return ref, nil
}

// NextBatch implements BatchReader by copying straight out of the backing
// slice.
func (r *sliceReader) NextBatch(buf []Ref) (int, error) {
	n := copy(buf, r.refs[r.pos:])
	r.pos += n
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// Collect drains a Reader into an in-memory Trace and closes it, reporting
// the close error if the drain itself succeeded.
func Collect(r Reader) (t *Trace, err error) {
	t, _, err = collect(context.Background(), r, -1)
	return t, err
}

// CollectContext is Collect with a cancellation context, checked once per
// batch: a canceled drain closes the reader and returns ctx.Err().
func CollectContext(ctx context.Context, r Reader) (t *Trace, err error) {
	t, _, err = collect(ctx, r, -1)
	return t, err
}

// CollectN drains at most maxRefs references from r into an in-memory
// Trace and closes r. The second result reports whether the stream was
// fully drained: false means the stream had more references than maxRefs
// and the collected prefix should not stand in for the whole trace. It is
// the materialize-once primitive behind the sweep engine's trace cache:
// a materialized Trace serves any number of concurrent replay Readers.
func CollectN(r Reader, maxRefs int64) (*Trace, bool, error) {
	if maxRefs < 0 {
		maxRefs = 0
	}
	return collect(context.Background(), r, maxRefs)
}

// CollectNContext is CollectN with a cancellation context, checked once per
// batch.
func CollectNContext(ctx context.Context, r Reader, maxRefs int64) (*Trace, bool, error) {
	if maxRefs < 0 {
		maxRefs = 0
	}
	return collect(ctx, r, maxRefs)
}

// collect is the batched drain behind Collect and CollectN; maxRefs < 0
// means unbounded. Cancellation is observed at batch granularity so the
// steady-state drain stays allocation-free.
func collect(ctx context.Context, r Reader, maxRefs int64) (t *Trace, all bool, err error) {
	t = New(r.NumProcs())
	defer func() {
		if cerr := CloseReader(r); cerr != nil {
			mDriveCloseErrs.Inc()
			if err == nil {
				// Wrap with the consumer context so callers can both
				// errors.Is the underlying failure and see whose close it
				// was.
				err = fmt.Errorf("trace: collect: closing reader: %w", cerr)
			}
		}
		if err == nil {
			mCollectRefs.Add(uint64(len(t.Refs)))
		}
		if err != nil {
			t, all = nil, false
		}
	}()
	br, batched := r.(BatchReader)
	buf := make([]Ref, driveBatch)
	for {
		if e := ctx.Err(); e != nil {
			return nil, false, e
		}
		var n int
		var e error
		if batched {
			n, e = br.NextBatch(buf)
		} else {
			n, e = fill(r, buf)
		}
		if maxRefs >= 0 {
			if room := maxRefs - int64(len(t.Refs)); int64(n) > room {
				// The stream holds more than maxRefs references: keep
				// the capped prefix and report a partial drain.
				t.Refs = append(t.Refs, buf[:room]...)
				return t, false, nil
			}
		}
		t.Refs = append(t.Refs, buf[:n]...)
		if e == io.EOF {
			return t, true, nil
		}
		if e != nil {
			return nil, false, e
		}
	}
}

// Consumer receives each reference of a trace in order. Implemented by the
// classifiers, the protocol simulators and the statistics collector.
type Consumer interface {
	Ref(Ref)
}

// BatchConsumer is a Consumer that accepts references a batch at a time.
// RefBatch(refs) must be equivalent to calling Ref for each reference in
// order; it exists so the replay loop pays one interface dispatch per batch
// instead of one per reference. All the classifiers and protocol simulators
// implement it.
type BatchConsumer interface {
	Consumer
	RefBatch(refs []Ref)
}

// Drive feeds every reference from r to each consumer, in a single pass,
// then closes r, reporting the reader's close error when the stream itself
// ended cleanly. It allows one (possibly expensive to regenerate) stream to
// feed several simulators at once.
//
// Each consumer sees the full reference sequence in stream order. Delivery
// is batched: consumers implementing BatchConsumer receive whole batches,
// and a consumer receives batch k entirely before the next consumer does —
// consumers are independent state machines, so relative interleaving
// between consumers does not affect any result.
func Drive(r Reader, consumers ...Consumer) error {
	return DriveContext(context.Background(), r, consumers...)
}

// DriveContext is Drive with a cancellation context. Cancellation is
// observed once per batch — the per-reference hot loop stays untouched and
// the steady state stays allocation-free (pinned by TestDriveContextAllocs)
// — so a canceled replay stops within one batch of references, closes the
// reader, and returns ctx.Err().
func DriveContext(ctx context.Context, r Reader, consumers ...Consumer) (err error) {
	defer func() {
		if cerr := CloseReader(r); cerr != nil {
			mDriveCloseErrs.Inc()
			if err == nil {
				// Wrap with the consumer context (errors.Is still reaches
				// the underlying error through %w).
				err = fmt.Errorf("trace: drive: closing reader: %w", cerr)
			}
		}
	}()
	// When a span track rides on the context (installed by the sweep worker
	// or shard-consumer goroutine that owns this drive), record the whole
	// drive as one span and hand the track to consumers that want to emit
	// their own sub-spans (the fused classifiers). Disabled tracing takes
	// the nil-track path: one atomic load, no allocation.
	if tr := span.FromContext(ctx); tr != nil {
		defer tr.Begin(span.OpDrive, span.Fields{}).End()
		for _, c := range consumers {
			if ts, ok := c.(span.TrackSetter); ok {
				ts.SetSpanTrack(tr)
			}
		}
	}
	br, batched := r.(BatchReader)
	buf := make([]Ref, driveBatch)
	// Resolve each consumer's delivery mode once, outside the hot loop.
	batchers := make([]BatchConsumer, len(consumers))
	for i, c := range consumers {
		if bc, ok := c.(BatchConsumer); ok {
			batchers[i] = bc
		}
	}
	for {
		if e := ctx.Err(); e != nil {
			return e
		}
		var n int
		var e error
		if batched {
			n, e = br.NextBatch(buf)
		} else {
			n, e = fill(r, buf)
		}
		if n > 0 {
			// The whole per-batch instrumentation cost: three pre-resolved
			// atomic adds per 1024 references.
			mDriveRefs.Add(uint64(n))
			mDriveBatches.Inc()
			mDriveBatchSize.Observe(uint64(n))
			batch := buf[:n]
			for i, c := range consumers {
				if bc := batchers[i]; bc != nil {
					bc.RefBatch(batch)
					continue
				}
				for _, ref := range batch {
					c.Ref(ref)
				}
			}
		}
		if e == io.EOF {
			return nil
		}
		if e != nil {
			return e
		}
	}
}

// ErrStopped is returned by readers whose generator was closed early.
var ErrStopped = errors.New("trace: generator stopped")
