package trace

import (
	"errors"
	"fmt"
	"io"
)

// Reader is a pull-based stream of trace references. Next returns io.EOF
// when the stream ends. Readers that hold resources also implement io.Closer;
// use CloseReader to release them.
type Reader interface {
	// NumProcs returns the number of processors in the trace. All Proc
	// fields are smaller than this.
	NumProcs() int
	// Next returns the next reference, or io.EOF at end of stream.
	Next() (Ref, error)
}

// CloseReader closes r if it implements io.Closer.
func CloseReader(r Reader) error {
	if c, ok := r.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Trace is an in-memory trace.
type Trace struct {
	Procs int
	Refs  []Ref
}

// New returns an empty in-memory trace for the given processor count.
func New(procs int, refs ...Ref) *Trace {
	return &Trace{Procs: procs, Refs: refs}
}

// Append adds references to the trace.
func (t *Trace) Append(refs ...Ref) { t.Refs = append(t.Refs, refs...) }

// Len returns the number of references.
func (t *Trace) Len() int { return len(t.Refs) }

// DataRefs returns the number of data (load/store) references: the
// denominator of every miss rate in the paper.
func (t *Trace) DataRefs() uint64 {
	var n uint64
	for _, r := range t.Refs {
		if r.Kind.IsData() {
			n++
		}
	}
	return n
}

// Reader returns a Reader over the trace. Multiple concurrent readers over
// the same trace are independent.
func (t *Trace) Reader() Reader {
	return &sliceReader{procs: t.Procs, refs: t.Refs}
}

// Validate checks that every reference has a valid kind and an in-range
// processor id.
func (t *Trace) Validate() error {
	if t.Procs <= 0 {
		return fmt.Errorf("trace: non-positive processor count %d", t.Procs)
	}
	for i, r := range t.Refs {
		if !r.Kind.Valid() {
			return fmt.Errorf("trace: ref %d: invalid kind %d", i, r.Kind)
		}
		if r.Kind != Phase && int(r.Proc) >= t.Procs {
			return fmt.Errorf("trace: ref %d: proc %d out of range [0,%d)", i, r.Proc, t.Procs)
		}
	}
	return nil
}

type sliceReader struct {
	procs int
	refs  []Ref
	pos   int
}

func (r *sliceReader) NumProcs() int { return r.procs }

func (r *sliceReader) Next() (Ref, error) {
	if r.pos >= len(r.refs) {
		return Ref{}, io.EOF
	}
	ref := r.refs[r.pos]
	r.pos++
	return ref, nil
}

// Collect drains a Reader into an in-memory Trace and closes it.
func Collect(r Reader) (*Trace, error) {
	t := New(r.NumProcs())
	defer CloseReader(r) //nolint:errcheck // best-effort close after drain
	for {
		ref, err := r.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Refs = append(t.Refs, ref)
	}
}

// CollectN drains at most maxRefs references from r into an in-memory
// Trace and closes r. The second result reports whether the stream was
// fully drained: false means the stream had more references than maxRefs
// and the collected prefix should not stand in for the whole trace. It is
// the materialize-once primitive behind the sweep engine's trace cache:
// a materialized Trace serves any number of concurrent replay Readers.
func CollectN(r Reader, maxRefs int64) (*Trace, bool, error) {
	t := New(r.NumProcs())
	defer CloseReader(r) //nolint:errcheck // best-effort close after drain
	for {
		ref, err := r.Next()
		if err == io.EOF {
			return t, true, nil
		}
		if err != nil {
			return nil, false, err
		}
		if int64(len(t.Refs)) >= maxRefs {
			return t, false, nil
		}
		t.Refs = append(t.Refs, ref)
	}
}

// Consumer receives each reference of a trace in order. Implemented by the
// classifiers, the protocol simulators and the statistics collector.
type Consumer interface {
	Ref(Ref)
}

// Drive feeds every reference from r to each consumer, in order, in a single
// pass, then closes r. It allows one (possibly expensive to regenerate)
// stream to feed several simulators at once.
func Drive(r Reader, consumers ...Consumer) error {
	defer CloseReader(r) //nolint:errcheck // best-effort close after drain
	for {
		ref, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		for _, c := range consumers {
			c.Ref(ref)
		}
	}
}

// ErrStopped is returned by readers whose generator was closed early.
var ErrStopped = errors.New("trace: generator stopped")
