package trace

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestCloseErrorsCarryConsumerContext: close errors surfaced by Drive and
// Collect are wrapped with the consumer-side call site so a log line says
// *which* drain hit the failing reader, while errors.Is still matches the
// underlying cause through %w (regression for the wrap).
func TestCloseErrorsCarryConsumerContext(t *testing.T) {
	closeErr := errors.New("close failed")

	err := Drive(&errCloser{Reader: New(1, L(0, 1)).Reader(), err: closeErr}, consumerFunc(func(Ref) {}))
	if !errors.Is(err, closeErr) {
		t.Fatalf("Drive = %v, errors.Is lost the close error through the wrap", err)
	}
	if want := "trace: drive: closing reader"; !strings.Contains(err.Error(), want) {
		t.Fatalf("Drive error %q missing context %q", err, want)
	}

	_, err = Collect(&errCloser{Reader: New(1, L(0, 1)).Reader(), err: closeErr})
	if !errors.Is(err, closeErr) {
		t.Fatalf("Collect = %v, errors.Is lost the close error through the wrap", err)
	}
	if want := "trace: collect: closing reader"; !strings.Contains(err.Error(), want) {
		t.Fatalf("Collect error %q missing context %q", err, want)
	}
}

// TestCloseErrorCounterIncrements: every surfaced close error bumps the
// trace.drive.close_errors counter exactly once.
func TestCloseErrorCounterIncrements(t *testing.T) {
	closeErr := errors.New("close failed")
	c := obs.Default.Counter(obs.NameDriveCloseErrs)

	before := c.Value()
	_ = Drive(&errCloser{Reader: New(1, L(0, 1)).Reader(), err: closeErr}, consumerFunc(func(Ref) {}))
	_, _ = Collect(&errCloser{Reader: New(1, L(0, 1)).Reader(), err: closeErr})
	if got := c.Value() - before; got != 2 {
		t.Fatalf("close-error counter advanced by %d, want 2", got)
	}
}
