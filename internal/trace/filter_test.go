package trace

import (
	"io"
	"reflect"
	"testing"

	"repro/internal/mem"
)

func drain(t *testing.T, r Reader) []Ref {
	t.Helper()
	tr, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Refs
}

func filterFixture() *Trace {
	return New(3,
		L(0, 1), S(1, 2), A(2, 9), R(2, 9), P(),
		L(2, 3), S(0, 4), L(1, 5),
	)
}

func TestFilterPredicate(t *testing.T) {
	got := drain(t, Filter(filterFixture().Reader(), func(r Ref) bool {
		return r.Kind == Store
	}))
	want := []Ref{S(1, 2), S(0, 4)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestByProc(t *testing.T) {
	got := drain(t, ByProc(filterFixture().Reader(), 2))
	want := []Ref{A(2, 9), R(2, 9), P(), L(2, 3)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestByKind(t *testing.T) {
	got := drain(t, ByKind(filterFixture().Reader(), Load))
	want := []Ref{L(0, 1), L(2, 3), L(1, 5)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	// Invalid kinds in the filter list are ignored.
	if got := drain(t, ByKind(filterFixture().Reader(), Kind(99))); len(got) != 0 {
		t.Errorf("invalid kind matched: %v", got)
	}
}

func TestByAddrRange(t *testing.T) {
	got := drain(t, ByAddrRange(filterFixture().Reader(), 2, 5))
	// Data refs in [2,5) plus all sync/phase refs.
	want := []Ref{S(1, 2), A(2, 9), R(2, 9), P(), L(2, 3), S(0, 4)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSlice(t *testing.T) {
	got := drain(t, Slice(filterFixture().Reader(), 2, 5))
	want := []Ref{A(2, 9), R(2, 9), P()}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	// Negative end: to the end of the stream.
	got = drain(t, Slice(filterFixture().Reader(), 6, -1))
	want = []Ref{S(0, 4), L(1, 5)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("open slice: got %v, want %v", got, want)
	}
	// Empty slice.
	if got := drain(t, Slice(filterFixture().Reader(), 3, 3)); len(got) != 0 {
		t.Errorf("empty slice yielded %v", got)
	}
}

func TestRemap(t *testing.T) {
	got := drain(t, Remap(filterFixture().Reader(), func(a mem.Addr) mem.Addr {
		return a + 100
	}))
	// Data addresses shift; sync addresses stay.
	if got[0] != L(0, 101) || got[2] != A(2, 9) || got[4] != P() {
		t.Errorf("remap wrong: %v", got)
	}
}

// Remapping every other word apart (padding) removes false sharing: the
// classic false-sharing repair, done on the trace.
func TestRemapRepairsFalseSharing(t *testing.T) {
	tr := New(2)
	for i := 0; i < 50; i++ {
		tr.Append(S(0, 0), S(1, 1))
	}
	g := mem.MustGeometry(8)
	classify := func(r Reader) uint64 {
		c := 0
		_ = c
		present := map[mem.Block]uint64{}
		var misses uint64
		for {
			ref, err := r.Next()
			if err != nil {
				return misses
			}
			b := g.BlockOf(ref.Addr)
			bit := uint64(1) << ref.Proc
			if present[b]&bit == 0 {
				misses++
			}
			present[b] = bit
		}
	}
	before := classify(tr.Reader())
	after := classify(Remap(tr.Reader(), func(a mem.Addr) mem.Addr { return a * 2 }))
	if after >= before {
		t.Errorf("padding did not reduce misses: %d -> %d", before, after)
	}
}

func TestConcat(t *testing.T) {
	a := New(2, L(0, 1))
	b := New(2, S(1, 2), P())
	got := drain(t, Concat(a.Reader(), b.Reader()))
	want := []Ref{L(0, 1), S(1, 2), P()}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestWrappersPropagateCloseAndProcs(t *testing.T) {
	gen := func() Reader {
		return Generate(3, func(e *Emitter) {
			for i := 0; ; i++ {
				e.Load(i%3, mem.Addr(i))
			}
		})
	}
	for name, wrap := range map[string]func(Reader) Reader{
		"filter": func(r Reader) Reader { return Filter(r, func(Ref) bool { return true }) },
		"slice":  func(r Reader) Reader { return Slice(r, 0, -1) },
		"remap":  func(r Reader) Reader { return Remap(r, func(a mem.Addr) mem.Addr { return a }) },
		"concat": func(r Reader) Reader { return Concat(New(3).Reader(), r) },
	} {
		r := wrap(gen())
		if r.NumProcs() != 3 {
			t.Errorf("%s: NumProcs = %d", name, r.NumProcs())
		}
		if _, err := r.Next(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := CloseReader(r); err != nil {
			t.Errorf("%s: close: %v", name, err)
		}
	}
}

func TestFilterEOFPropagates(t *testing.T) {
	r := Filter(New(1).Reader(), func(Ref) bool { return true })
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}
