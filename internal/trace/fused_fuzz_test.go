package trace_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

// FuzzFusedEquivalence fuzzes the fused multi-configuration replay against
// the per-geometry classifiers: arbitrary byte strings become mixed
// data/sync/phase traces, geoRaw picks an arbitrary nested geometry set
// (possibly unsorted, possibly with a duplicate level) so the hierarchical
// block-nesting state is exercised at every shape, and the fused pass —
// serial and shard-native — must match a fresh per-geometry replay bit for
// bit for all three schemes. Lives in the external test package for the
// same reason as FuzzShardedEquivalence; the committed seed corpus under
// testdata/fuzz/FuzzFusedEquivalence is pinned by TestFuzzSeedCorpora.
func FuzzFusedEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8}, uint8(3), uint8(0b1011), uint8(2))
	f.Add([]byte{5, 0, 9, 0, 1, 9, 6, 0, 9}, uint8(1), uint8(0b100001), uint8(7))
	f.Add([]byte{}, uint8(0), uint8(0), uint8(0))

	f.Fuzz(func(t *testing.T, data []byte, procsRaw, geoRaw, shardsRaw uint8) {
		procs := int(procsRaw%6) + 2
		tr := trace.New(procs)
		for i := 0; i+2 < len(data); i += 3 {
			p := int(data[i+1]) % procs
			addr := mem.Addr(data[i+2])
			switch data[i] % 8 {
			case 0, 1, 2:
				tr.Append(trace.L(p, addr))
			case 3, 4:
				tr.Append(trace.S(p, addr))
			case 5:
				tr.Append(trace.A(p, addr))
			case 6:
				tr.Append(trace.R(p, addr))
			default:
				tr.Append(trace.P())
			}
		}

		// Bits 0..5 of geoRaw select block sizes 4..128; bit 6 duplicates
		// the first selected level. Reversing the selection order leaves
		// the set unsorted so the fused level sort is under fuzz too.
		var geos []mem.Geometry
		for i := 5; i >= 0; i-- {
			if geoRaw>>uint(i)&1 != 0 {
				geos = append(geos, mem.MustGeometry(4<<uint(i)))
			}
		}
		if len(geos) == 0 {
			geos = append(geos, mem.MustGeometry(4))
		}
		if geoRaw>>6&1 != 0 {
			geos = append(geos, geos[0])
		}

		fused, refs, err := core.FusedClassify(tr.Reader(), geos)
		if err != nil {
			t.Fatalf("fused ours: %v", err)
		}
		fusedE, refsE, err := core.FusedClassifyEggers(tr.Reader(), geos)
		if err != nil {
			t.Fatalf("fused eggers: %v", err)
		}
		fusedT, refsT, err := core.FusedClassifyTorrellas(tr.Reader(), geos)
		if err != nil {
			t.Fatalf("fused torrellas: %v", err)
		}
		if refsE != refs || refsT != refs {
			t.Fatalf("denominators diverge: ours %d eggers %d torrellas %d", refs, refsE, refsT)
		}
		for gi, g := range geos {
			want, wantRefs, err := core.Classify(tr.Reader(), g)
			if err != nil {
				t.Fatalf("ours %v: %v", g, err)
			}
			if fused[gi] != want || refs != wantRefs {
				t.Fatalf("ours %v: fused %+v (%d refs), per-cell %+v (%d refs)",
					g, fused[gi], refs, want, wantRefs)
			}
			wantE, _, err := core.ClassifyEggers(tr.Reader(), g)
			if err != nil {
				t.Fatalf("eggers %v: %v", g, err)
			}
			if fusedE[gi] != wantE {
				t.Fatalf("eggers %v: fused %+v, per-cell %+v", g, fusedE[gi], wantE)
			}
			wantT, _, err := core.ClassifyTorrellas(tr.Reader(), g)
			if err != nil {
				t.Fatalf("torrellas %v: %v", g, err)
			}
			if fusedT[gi] != wantT {
				t.Fatalf("torrellas %v: fused %+v, per-cell %+v", g, fusedT[gi], wantT)
			}
		}

		// Shard-native fused streams must merge to the serial fused counts.
		open := func(int) (trace.Reader, error) { return tr.Reader(), nil }
		for _, n := range []int{2, int(shardsRaw%9) + 1} {
			got, gotRefs, err := core.FusedShardedClassify(context.Background(), open, procs, geos, n)
			if err != nil {
				t.Fatalf("fused shards=%d: %v", n, err)
			}
			if gotRefs != refs {
				t.Fatalf("fused shards=%d: %d refs, want %d", n, gotRefs, refs)
			}
			for gi := range geos {
				if got[gi] != fused[gi] {
					t.Fatalf("fused shards=%d %v: got %+v, want %+v", n, geos[gi], got[gi], fused[gi])
				}
			}
		}
	})
}
