package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/mem"
)

// Binary trace format:
//
//	magic "UMTR" | version byte (1) | uvarint numProcs |
//	records: kind byte | uvarint proc | uvarint addr
//
// The stream ends at EOF; there is no length field so traces can be written
// incrementally by generators.

var binaryMagic = [4]byte{'U', 'M', 'T', 'R'}

const binaryVersion = 1

// Encoder writes references to an underlying writer in the binary format.
type Encoder struct {
	w   *bufio.Writer
	buf []byte
}

// NewEncoder writes the binary header for a trace of procs processors and
// returns an Encoder.
func NewEncoder(w io.Writer, procs int) (*Encoder, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return nil, err
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(procs))
	if _, err := bw.Write(hdr); err != nil {
		return nil, err
	}
	return &Encoder{w: bw, buf: make([]byte, 0, 2*binary.MaxVarintLen64+1)}, nil
}

// Encode writes one reference.
func (e *Encoder) Encode(r Ref) error {
	e.buf = e.buf[:0]
	e.buf = append(e.buf, byte(r.Kind))
	e.buf = binary.AppendUvarint(e.buf, uint64(r.Proc))
	e.buf = binary.AppendUvarint(e.buf, uint64(r.Addr))
	_, err := e.w.Write(e.buf)
	return err
}

// Flush flushes buffered output to the underlying writer.
func (e *Encoder) Flush() error { return e.w.Flush() }

// WriteBinary encodes all references from r to w and closes r.
func WriteBinary(w io.Writer, r Reader) error {
	enc, err := NewEncoder(w, r.NumProcs())
	if err != nil {
		return err
	}
	defer CloseReader(r) //nolint:errcheck // best-effort close after drain
	for {
		ref, err := r.Next()
		if err == io.EOF {
			return enc.Flush()
		}
		if err != nil {
			return err
		}
		if err := enc.Encode(ref); err != nil {
			return err
		}
	}
}

// Decoder reads references in the binary format. It implements Reader.
type Decoder struct {
	r     *bufio.Reader
	procs int
}

// NewDecoder validates the binary header and returns a streaming Decoder.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if [4]byte(magic[:4]) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:4])
	}
	if magic[4] != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", magic[4])
	}
	procs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading processor count: %w", err)
	}
	if procs == 0 || procs > 1<<16 {
		return nil, fmt.Errorf("trace: implausible processor count %d", procs)
	}
	return &Decoder{r: br, procs: int(procs)}, nil
}

// NumProcs implements Reader.
func (d *Decoder) NumProcs() int { return d.procs }

// Next implements Reader.
func (d *Decoder) Next() (Ref, error) {
	kind, err := d.r.ReadByte()
	if err != nil {
		return Ref{}, err // io.EOF at a record boundary is clean EOF
	}
	k := Kind(kind)
	if !k.Valid() {
		return Ref{}, fmt.Errorf("trace: invalid kind byte %d", kind)
	}
	proc, err := binary.ReadUvarint(d.r)
	if err != nil {
		return Ref{}, truncated(err)
	}
	if proc >= uint64(d.procs) {
		return Ref{}, fmt.Errorf("trace: proc %d out of range [0,%d)", proc, d.procs)
	}
	addr, err := binary.ReadUvarint(d.r)
	if err != nil {
		return Ref{}, truncated(err)
	}
	return Ref{Kind: k, Proc: uint16(proc), Addr: mem.Addr(addr)}, nil
}

// NextBatch implements BatchReader: it decodes up to len(buf) records,
// returning the decoded prefix together with any terminal error.
func (d *Decoder) NextBatch(buf []Ref) (int, error) {
	for n := range buf {
		ref, err := d.Next()
		if err != nil {
			return n, err
		}
		buf[n] = ref
	}
	return len(buf), nil
}

func truncated(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
