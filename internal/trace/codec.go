package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/mem"
)

// Binary trace format, version 2 (CRC-framed):
//
//	magic "UMTR" | version byte (2) | uvarint numProcs |
//	chunks: uvarint payloadBytes | payload | crc32(IEEE, payload) LE |
//	end marker: uvarint 0
//
// Each payload is a run of records (kind byte | uvarint proc | uvarint
// addr). The checksum lets the decoder reject corrupt or truncated chunks
// with ErrCorrupt instead of misdecoding them, and the explicit end marker
// distinguishes a cleanly finished stream from one cut off at a chunk
// boundary. Version 1 (the same records, unframed and unchecksummed,
// terminated by bare EOF) is still read for old trace files and corpora.

var binaryMagic = [4]byte{'U', 'M', 'T', 'R'}

const (
	binaryVersion1 = 1
	binaryVersion  = 2

	// chunkTarget is the encoder's flush threshold in payload bytes.
	chunkTarget = 32 << 10
	// maxChunkBytes bounds a decoded chunk so corrupt length prefixes
	// cannot force huge allocations.
	maxChunkBytes = 1 << 20
)

// ErrCorrupt reports a binary trace whose framing failed validation: a
// checksum mismatch, a truncated or oversized chunk, a malformed record
// inside a verified chunk, or a missing end-of-stream marker. Decoder
// errors wrap it, so callers test with errors.Is(err, ErrCorrupt).
var ErrCorrupt = errors.New("trace: corrupt binary trace")

// Encoder writes references to an underlying writer in the binary format.
// Encode buffers records into a chunk; Close (not just Flush) finalizes the
// stream with the end-of-stream marker the decoder requires.
type Encoder struct {
	w      *bufio.Writer
	chunk  []byte
	closed bool
}

// NewEncoder writes the binary header for a trace of procs processors and
// returns an Encoder.
func NewEncoder(w io.Writer, procs int) (*Encoder, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return nil, err
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(procs))
	if _, err := bw.Write(hdr); err != nil {
		return nil, err
	}
	return &Encoder{w: bw, chunk: make([]byte, 0, chunkTarget+2*binary.MaxVarintLen64+1)}, nil
}

// Encode writes one reference.
func (e *Encoder) Encode(r Ref) error {
	e.chunk = append(e.chunk, byte(r.Kind))
	e.chunk = binary.AppendUvarint(e.chunk, uint64(r.Proc))
	e.chunk = binary.AppendUvarint(e.chunk, uint64(r.Addr))
	if len(e.chunk) >= chunkTarget {
		return e.writeChunk()
	}
	return nil
}

// EncodeBatch writes a batch of references, flushing at chunk boundaries.
// It is equivalent to calling Encode for each reference in order, with one
// flush check per record amortized into the append loop.
func (e *Encoder) EncodeBatch(refs []Ref) error {
	for _, r := range refs {
		e.chunk = append(e.chunk, byte(r.Kind))
		e.chunk = binary.AppendUvarint(e.chunk, uint64(r.Proc))
		e.chunk = binary.AppendUvarint(e.chunk, uint64(r.Addr))
		if len(e.chunk) >= chunkTarget {
			if err := e.writeChunk(); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeChunk frames and emits the pending payload.
func (e *Encoder) writeChunk() error {
	if len(e.chunk) == 0 {
		return nil
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(e.chunk)))
	if _, err := e.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := e.w.Write(e.chunk); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(e.chunk))
	if _, err := e.w.Write(crc[:]); err != nil {
		return err
	}
	e.chunk = e.chunk[:0]
	return nil
}

// Flush emits any pending chunk and flushes buffered output to the
// underlying writer. The stream is not finished until Close writes the
// end-of-stream marker.
func (e *Encoder) Flush() error {
	if err := e.writeChunk(); err != nil {
		return err
	}
	return e.w.Flush()
}

// Close finalizes the stream: it emits the pending chunk, the end-of-stream
// marker, and flushes. Close is idempotent and does not close the
// underlying writer.
func (e *Encoder) Close() error {
	if e.closed {
		return nil
	}
	if err := e.writeChunk(); err != nil {
		return err
	}
	if err := e.w.WriteByte(0); err != nil { // uvarint(0) end marker
		return err
	}
	e.closed = true
	return e.w.Flush()
}

// WriteBinary encodes all references from r to w and closes r. Batched
// readers are drained a batch at a time through EncodeBatch, so encoding a
// generated or file-backed stream pays one interface dispatch per batch
// rather than per reference.
func WriteBinary(w io.Writer, r Reader) error {
	enc, err := NewEncoder(w, r.NumProcs())
	if err != nil {
		return err
	}
	defer CloseReader(r) //nolint:errcheck // best-effort close after drain
	br, batched := r.(BatchReader)
	buf := make([]Ref, driveBatch)
	for {
		var n int
		var e error
		if batched {
			n, e = br.NextBatch(buf)
		} else {
			n, e = fill(r, buf)
		}
		if n > 0 {
			if err := enc.EncodeBatch(buf[:n]); err != nil {
				return err
			}
		}
		if e == io.EOF {
			return enc.Close()
		}
		if e != nil {
			return e
		}
	}
}

// Decoder reads references in the binary format (versions 1 and 2). It
// implements Reader. For version-2 streams every chunk's checksum is
// verified before any of its records are delivered; framing violations are
// reported as errors wrapping ErrCorrupt.
type Decoder struct {
	r       *bufio.Reader
	procs   int
	version byte

	// Version-2 chunk state.
	chunk    []byte
	pos      int
	chunkIdx int
	finished bool
}

// NewDecoder validates the binary header and returns a streaming Decoder.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if [4]byte(magic[:4]) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:4])
	}
	if magic[4] != binaryVersion1 && magic[4] != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", magic[4])
	}
	procs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading processor count: %w", err)
	}
	if procs == 0 || procs > 1<<16 {
		return nil, fmt.Errorf("trace: implausible processor count %d", procs)
	}
	return &Decoder{r: br, procs: int(procs), version: magic[4]}, nil
}

// NumProcs implements Reader.
func (d *Decoder) NumProcs() int { return d.procs }

// Next implements Reader.
func (d *Decoder) Next() (Ref, error) {
	if d.version == binaryVersion1 {
		return d.nextV1()
	}
	for d.pos >= len(d.chunk) {
		if d.finished {
			return Ref{}, io.EOF
		}
		if err := d.readChunk(); err != nil {
			return Ref{}, err
		}
	}
	return d.decodeRecord()
}

// nextV1 decodes one unframed version-1 record.
func (d *Decoder) nextV1() (Ref, error) {
	kind, err := d.r.ReadByte()
	if err != nil {
		return Ref{}, err // io.EOF at a record boundary is clean EOF
	}
	k := Kind(kind)
	if !k.Valid() {
		return Ref{}, fmt.Errorf("trace: invalid kind byte %d", kind)
	}
	proc, err := binary.ReadUvarint(d.r)
	if err != nil {
		return Ref{}, truncated(err)
	}
	if proc >= uint64(d.procs) {
		return Ref{}, fmt.Errorf("trace: proc %d out of range [0,%d)", proc, d.procs)
	}
	addr, err := binary.ReadUvarint(d.r)
	if err != nil {
		return Ref{}, truncated(err)
	}
	return Ref{Kind: k, Proc: uint16(proc), Addr: mem.Addr(addr)}, nil
}

// readChunk reads and checksum-verifies the next version-2 chunk, or
// observes the end-of-stream marker.
func (d *Decoder) readChunk() error {
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		// A version-2 stream must end with the explicit marker; bare
		// EOF means the file was cut off at a chunk boundary.
		if err == io.EOF {
			return fmt.Errorf("trace: chunk %d: stream ends without end-of-stream marker: %w", d.chunkIdx, ErrCorrupt)
		}
		return fmt.Errorf("trace: chunk %d: reading length: %w (%v)", d.chunkIdx, ErrCorrupt, err)
	}
	if n == 0 {
		d.finished = true
		d.chunk, d.pos = nil, 0
		return io.EOF
	}
	if n > maxChunkBytes {
		return fmt.Errorf("trace: chunk %d: implausible length %d: %w", d.chunkIdx, n, ErrCorrupt)
	}
	if uint64(cap(d.chunk)) < n {
		d.chunk = make([]byte, n)
	}
	d.chunk = d.chunk[:n]
	if _, err := io.ReadFull(d.r, d.chunk); err != nil {
		return fmt.Errorf("trace: chunk %d: truncated payload: %w (%v)", d.chunkIdx, ErrCorrupt, err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(d.r, crc[:]); err != nil {
		return fmt.Errorf("trace: chunk %d: truncated checksum: %w (%v)", d.chunkIdx, ErrCorrupt, err)
	}
	want := binary.LittleEndian.Uint32(crc[:])
	if got := crc32.ChecksumIEEE(d.chunk); got != want {
		return fmt.Errorf("trace: chunk %d: checksum mismatch (got %08x, want %08x): %w", d.chunkIdx, got, want, ErrCorrupt)
	}
	d.pos = 0
	d.chunkIdx++
	return nil
}

// decodeRecord decodes one record from the verified chunk. A record that
// overruns or malforms inside a checksummed chunk is corruption that the
// CRC cannot see (or an encoder bug), so it is reported as ErrCorrupt.
func (d *Decoder) decodeRecord() (Ref, error) {
	k := Kind(d.chunk[d.pos])
	d.pos++
	if !k.Valid() {
		return Ref{}, fmt.Errorf("trace: chunk %d: invalid kind byte %d: %w", d.chunkIdx-1, byte(k), ErrCorrupt)
	}
	proc, n := binary.Uvarint(d.chunk[d.pos:])
	if n <= 0 {
		return Ref{}, fmt.Errorf("trace: chunk %d: malformed proc varint: %w", d.chunkIdx-1, ErrCorrupt)
	}
	d.pos += n
	if proc >= uint64(d.procs) {
		return Ref{}, fmt.Errorf("trace: chunk %d: proc %d out of range [0,%d): %w", d.chunkIdx-1, proc, d.procs, ErrCorrupt)
	}
	addr, n := binary.Uvarint(d.chunk[d.pos:])
	if n <= 0 {
		return Ref{}, fmt.Errorf("trace: chunk %d: malformed addr varint: %w", d.chunkIdx-1, ErrCorrupt)
	}
	d.pos += n
	return Ref{Kind: k, Proc: uint16(proc), Addr: mem.Addr(addr)}, nil
}

// NextBatch implements BatchReader: it decodes up to len(buf) records,
// returning the decoded prefix together with any terminal error.
func (d *Decoder) NextBatch(buf []Ref) (int, error) {
	for n := range buf {
		ref, err := d.Next()
		if err != nil {
			return n, err
		}
		buf[n] = ref
	}
	return len(buf), nil
}

func truncated(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
