package trace

// ShardReader filters one trace stream down to a single shard's
// subsequence, applying exactly the demux routing rules: data references
// are kept iff the ShardFunc routes them to this shard, synchronization and
// phase references are always kept, and the kept references preserve
// stream order. N ShardReaders over N equivalent streams therefore produce
// the same per-shard streams as one Demux over one stream — without the
// central pump goroutine or its channel hops.
//
// This is the generation path of the fused replay engine: the workload
// generators are deterministic, so each shard consumer can drive its own
// generation (or its own reader over a cached trace) through a ShardReader
// instead of competing for a demux. ShardReader implements BatchReader
// (filtering whole source batches per call) and io.Closer (closing the
// source, which stops a generator-backed stream promptly).
type ShardReader struct {
	src   Reader
	br    BatchReader // non-nil when src batches
	shard int
	key   ShardFunc
	buf   []Ref
}

// NewShardReader returns a ShardReader over src for the given shard. It
// panics if key is nil or shard is negative.
func NewShardReader(src Reader, shard int, key ShardFunc) *ShardReader {
	if key == nil {
		panic("trace: nil ShardFunc")
	}
	if shard < 0 {
		panic("trace: negative shard index")
	}
	br, _ := src.(BatchReader)
	return &ShardReader{src: src, br: br, shard: shard, key: key}
}

// NumProcs implements Reader.
func (s *ShardReader) NumProcs() int { return s.src.NumProcs() }

// keep reports whether the shard's stream includes r.
func (s *ShardReader) keep(r Ref) bool {
	return !r.Kind.IsData() || s.key(r) == s.shard
}

// Next implements Reader.
func (s *ShardReader) Next() (Ref, error) {
	for {
		r, err := s.src.Next()
		if err != nil {
			return Ref{}, err
		}
		if s.keep(r) {
			return r, nil
		}
	}
}

// NextBatch implements BatchReader: it reads source batches and compacts
// the shard's subsequence into buf, returning as soon as at least one
// reference is kept. Like every BatchReader, the prefix is valid even when
// err is non-nil.
func (s *ShardReader) NextBatch(buf []Ref) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	if s.buf == nil {
		s.buf = make([]Ref, driveBatch)
	}
	for {
		// Read at most len(buf) source refs so the kept subsequence always
		// fits the caller's buffer.
		in := s.buf
		if len(buf) < len(in) {
			in = in[:len(buf)]
		}
		var cnt int
		var err error
		if s.br != nil {
			cnt, err = s.br.NextBatch(in)
		} else {
			cnt, err = fill(s.src, in)
		}
		n := 0
		for _, r := range in[:cnt] {
			if s.keep(r) {
				buf[n] = r
				n++
			}
		}
		if err != nil || n > 0 {
			return n, err
		}
	}
}

// Close implements io.Closer by closing the source reader (stopping a
// generator-backed source promptly). Closing a source that does not
// implement io.Closer is a no-op.
func (s *ShardReader) Close() error { return CloseReader(s.src) }
