package trace

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/mem"
	"repro/internal/obs/span"
)

// This file implements the demux stage of the block-sharded classification
// pipeline: one trace stream is fanned out to N shard streams so that N
// block-partitioned consumers can classify one big trace concurrently.
//
// Routing rules:
//
//   - Every data reference (load/store) is delivered to exactly one shard,
//     chosen by the ShardFunc. Sharding by cache block (BlockShard) is the
//     canonical choice: the classifiers' and simulators' state is keyed by
//     block, so a block partition splits them into independent machines.
//   - Every synchronization and phase reference is broadcast to all shards,
//     in stream order relative to the data references, so that
//     schedule-sensitive consumers (RD/SD/SRD/MAX buffer stores or
//     invalidations until an acquire or release) observe the same
//     synchronization points as a serial run.
//
// Within each shard the delivered references are a subsequence of the
// original stream, in original order.

// ShardFunc maps a data reference to a shard index in [0, n). It is only
// consulted for loads and stores; synchronization and phase references are
// broadcast to every shard.
type ShardFunc func(Ref) int

// BlockShard returns the canonical ShardFunc for n shards: data references
// are routed by g.BlockOf(addr) % n, so all references to one cache block
// land on one shard.
func BlockShard(g mem.Geometry, n int) ShardFunc {
	return func(r Ref) int { return int(uint64(g.BlockOf(r.Addr)) % uint64(n)) }
}

// demuxBatch is the number of references pumped per channel send; batching
// amortizes channel synchronization over the hot demux loop.
const demuxBatch = 512

// demuxBuffer is the per-shard channel capacity, in batches.
const demuxBuffer = 4

// Demux fans one trace Reader out to n shard Readers, following the routing
// rules above. The pump goroutine owns the source reader and closes it when
// the stream ends, when every shard has been closed, or when the Demux
// itself is closed.
//
// Teardown is leak-free in both directions: closing one shard (CloseReader)
// detaches it without stalling the others, and Close tears the whole demux
// down — pending shard reads return ErrStopped — and waits for the pump
// goroutine to exit.
type Demux struct {
	shards []*demuxShard
	stop   chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
	ctx    context.Context

	// flows holds one span flow id per shard (nil when tracing is off).
	// The pump emits the flow's producer endpoint at the first successful
	// send into a shard; the shard's consumer goroutine emits the consumer
	// endpoint via FlowID, drawing a producer→consumer arrow in the trace
	// viewer.
	flows []uint64
}

// FlowID returns shard i's span flow id, or 0 when tracing was off when the
// demux started (0 makes FlowIn a no-op, so callers need not check).
func (d *Demux) FlowID(i int) uint64 {
	if d.flows == nil {
		return 0
	}
	return d.flows[i]
}

// NewDemux starts the demux of r into n shards routed by key. It panics if
// n < 1 or key is nil.
func NewDemux(r Reader, n int, key ShardFunc) *Demux {
	return NewDemuxContext(context.Background(), r, n, key)
}

// NewDemuxContext is NewDemux with a cancellation context. Cancellation is
// observed once per source batch and inside any blocked shard send, so a
// canceled demux winds down even when a shard consumer has stopped reading.
// Pending and later shard reads return ctx.Err() and the source reader is
// closed by the pump on the way out.
func NewDemuxContext(ctx context.Context, r Reader, n int, key ShardFunc) *Demux {
	if n < 1 {
		panic(fmt.Sprintf("trace: demux shard count %d < 1", n))
	}
	if key == nil {
		panic("trace: nil ShardFunc")
	}
	d := &Demux{
		shards: make([]*demuxShard, n),
		stop:   make(chan struct{}),
		ctx:    ctx,
	}
	for i := range d.shards {
		d.shards[i] = &demuxShard{
			procs: r.NumProcs(),
			ch:    make(chan []Ref, demuxBuffer),
			done:  make(chan struct{}),
		}
	}
	if span.Enabled() {
		d.flows = make([]uint64, n)
		for i := range d.flows {
			d.flows[i] = span.NewFlowID()
		}
	}
	d.wg.Add(1)
	go d.pump(r, key)
	return d
}

// Shards returns the number of shard streams.
func (d *Demux) Shards() int { return len(d.shards) }

// Shard returns shard i's Reader. Each shard must be consumed by at most
// one goroutine; distinct shards may be consumed concurrently. Closing a
// shard (it implements io.Closer) detaches it from the demux without
// disturbing the other shards.
func (d *Demux) Shard(i int) Reader { return d.shards[i] }

// Close tears the demux down: the pump goroutine stops, the source reader
// is closed, and any shard read still blocked (or issued later) returns
// ErrStopped unless that shard had already reached its end of stream.
// Close is idempotent and safe to call from shard-consuming goroutines.
func (d *Demux) Close() error {
	d.once.Do(func() { close(d.stop) })
	d.wg.Wait()
	return nil
}

// pump is the demux goroutine: it drains the source, batches per shard, and
// finally publishes each shard's terminal status before closing its channel.
func (d *Demux) pump(r Reader, key ShardFunc) {
	defer d.wg.Done()
	n := len(d.shards)
	batches := make([][]Ref, n)
	var err error

	// The pump runs in its own goroutine, so it owns its own span track
	// (tracks are single-writer). flowSent marks shards whose producer flow
	// endpoint has been emitted; both stay nil when tracing is off.
	tr := span.Acquire("demux-pump")
	defer span.Release(tr)
	defer tr.Begin(span.OpDemuxPump, span.Fields{}).End()
	var flowSent []bool
	if tr != nil {
		flowSent = make([]bool, n)
	}

	// Metric accumulators: plain locals inside the routing loop (which is
	// necessarily per-reference), flushed to the atomic counters once when
	// the pump exits.
	var refsIn, dataRouted, broadcasts, blockedNs uint64
	routed := make([]uint64, n)
	defer func() {
		mDemuxRefsIn.Add(refsIn)
		mDemuxDataRouted.Add(dataRouted)
		mDemuxBroadcasts.Add(broadcasts)
		mDemuxBlockedNs.Add(blockedNs)
		for _, perShard := range routed {
			mDemuxShardRefs.Observe(perShard)
		}
	}()

	// ctxDone is nil for a Background context; a nil channel never fires in
	// a select, so the uncancellable case costs nothing extra.
	ctxDone := d.ctx.Done()

	flush := func(i int) bool {
		if len(batches[i]) == 0 {
			return true
		}
		s := d.shards[i]
		if s.dead {
			batches[i] = nil
			return true
		}
		// sent finishes the bookkeeping for a successful send: the shard
		// channel's occupancy right after the send is the queue-depth
		// sample, and the first send into a shard emits the producer half
		// of its flow arrow.
		sent := func() {
			routed[i] += uint64(len(batches[i]))
			batches[i] = nil
			mDemuxQueueDepth.Observe(uint64(len(s.ch)))
			if tr != nil && !flowSent[i] {
				tr.FlowOut(d.flows[i])
				flowSent[i] = true
			}
		}
		// Fast path: the shard's channel has room. Only when the send
		// would block does the pump pay for timestamps, so blocked-send
		// time measures genuine backpressure from slow shard consumers.
		select {
		case s.ch <- batches[i]:
			sent()
			return true
		default:
		}
		t0 := time.Now()
		select {
		case s.ch <- batches[i]:
			blockedNs += uint64(time.Since(t0))
			sent()
			return true
		case <-s.done:
			// The consumer closed this shard: drop its refs and keep
			// pumping the others.
			blockedNs += uint64(time.Since(t0))
			s.dead = true
			batches[i] = nil
			return true
		case <-d.stop:
			blockedNs += uint64(time.Since(t0))
			return false
		case <-ctxDone:
			blockedNs += uint64(time.Since(t0))
			return false
		}
	}

	// stopErr resolves why a flush aborted: a canceled context wins over the
	// demux's own stop channel so consumers see context.Canceled (or
	// DeadlineExceeded) rather than the generic ErrStopped.
	stopErr := func() error {
		if e := d.ctx.Err(); e != nil {
			return e
		}
		return ErrStopped
	}

	br, batched := r.(BatchReader)
	buf := make([]Ref, driveBatch)

loop:
	for {
		if e := d.ctx.Err(); e != nil {
			err = e
			break
		}
		var cnt int
		var e error
		if batched {
			cnt, e = br.NextBatch(buf)
		} else {
			cnt, e = fill(r, buf)
		}
		refsIn += uint64(cnt)
		for _, ref := range buf[:cnt] {
			if ref.Kind.IsData() {
				i := key(ref)
				if uint(i) >= uint(n) {
					err = fmt.Errorf("trace: ShardFunc returned %d for %d shards", i, n)
					break loop
				}
				dataRouted++
				if d.shards[i].dead {
					continue
				}
				batches[i] = append(batches[i], ref)
				if len(batches[i]) >= demuxBatch && !flush(i) {
					err = stopErr()
					break loop
				}
				continue
			}
			// Synchronization and phase references are broadcast:
			// appended to every shard's batch so each shard sees them in
			// stream order.
			broadcasts++
			for i := range batches {
				if d.shards[i].dead {
					continue
				}
				batches[i] = append(batches[i], ref)
				if len(batches[i]) >= demuxBatch && !flush(i) {
					err = stopErr()
					break loop
				}
			}
		}
		if e == io.EOF {
			break
		}
		if e != nil {
			err = e
			break
		}
	}

	if err == nil {
		for i := range batches {
			if !flush(i) {
				err = stopErr()
				break
			}
		}
	}
	// Close the source before publishing: like Drive, a clean drain still
	// reports the reader's close error, so a shard consumer can never
	// mistake a stream whose teardown failed for a complete one.
	if cerr := CloseReader(r); cerr != nil {
		mDriveCloseErrs.Inc()
		if err == nil {
			err = fmt.Errorf("trace: demux: closing source reader: %w", cerr)
		}
	}
	// Publish the terminal status. Writing err before close(ch) orders it
	// before any consumer that observes the closed channel.
	for _, s := range d.shards {
		s.err = err
		close(s.ch)
	}
}

// demuxShard is one shard's Reader end.
type demuxShard struct {
	procs int
	ch    chan []Ref
	done  chan struct{}
	once  sync.Once

	cur []Ref
	pos int
	err error // terminal status, valid once ch is closed; nil means EOF

	// dead is owned by the pump goroutine: set once it observes the
	// shard's done channel closed, so later batches skip it.
	dead bool
}

// NumProcs implements Reader.
func (s *demuxShard) NumProcs() int { return s.procs }

// Next implements Reader.
func (s *demuxShard) Next() (Ref, error) {
	for {
		if s.pos < len(s.cur) {
			ref := s.cur[s.pos]
			s.pos++
			return ref, nil
		}
		batch, ok := <-s.ch
		if !ok {
			if s.err != nil {
				return Ref{}, s.err
			}
			return Ref{}, io.EOF
		}
		s.cur, s.pos = batch, 0
	}
}

// NextBatch implements BatchReader by copying out of the current demux
// batch; at most one channel receive per call.
func (s *demuxShard) NextBatch(buf []Ref) (int, error) {
	for s.pos >= len(s.cur) {
		batch, ok := <-s.ch
		if !ok {
			if s.err != nil {
				return 0, s.err
			}
			return 0, io.EOF
		}
		s.cur, s.pos = batch, 0
	}
	n := copy(buf, s.cur[s.pos:])
	s.pos += n
	return n, nil
}

// Close implements io.Closer: it detaches the shard from the demux. The
// pump stops delivering to it; other shards are unaffected.
func (s *demuxShard) Close() error {
	s.once.Do(func() { close(s.done) })
	return nil
}
