package trace

import (
	"repro/internal/dense"
	"repro/internal/mem"
)

// Stats accumulates the per-trace characteristics reported in the paper's
// Table 2: read/write/synchronization counts, the data-set footprint, and a
// speedup estimate from a critical-path execution model.
//
// The speedup model charges one cycle per reference (the paper's "perfect
// memory system, single-cycle latencies") and uses the Phase annotations
// emitted by the workload generators: within a phase processors run in
// parallel, so the phase costs the maximum per-processor reference count;
// phases are separated by synchronization, so phase times add up.
type Stats struct {
	procs     int
	Loads     uint64
	Stores    uint64
	Acquires  uint64
	Releases  uint64
	PerProc   []uint64 // all references per processor
	critical  uint64   // sum over phases of max per-proc work
	phaseWork []uint64 // work per proc in the current phase
	words     *dense.Map[struct{}]
}

// NewStats returns a Stats consumer. If trackFootprint is set, every
// distinct word address is recorded so DataSetBytes can be computed; this
// costs memory proportional to the footprint.
func NewStats(procs int, trackFootprint bool) *Stats {
	s := &Stats{
		procs:     procs,
		PerProc:   make([]uint64, procs),
		phaseWork: make([]uint64, procs),
	}
	if trackFootprint {
		s.words = dense.NewMap[struct{}](0)
	}
	return s
}

// Ref implements Consumer.
func (s *Stats) Ref(r Ref) {
	switch r.Kind {
	case Load:
		s.Loads++
	case Store:
		s.Stores++
	case Acquire:
		s.Acquires++
	case Release:
		s.Releases++
	case Phase:
		s.endPhase()
		return
	}
	s.PerProc[r.Proc]++
	s.phaseWork[r.Proc]++
	if s.words != nil && r.Kind.IsData() {
		s.words.GetOrPut(uint64(r.Addr))
	}
}

// RefBatch implements BatchConsumer.
func (s *Stats) RefBatch(refs []Ref) {
	for _, r := range refs {
		s.Ref(r)
	}
}

func (s *Stats) endPhase() {
	var max uint64
	for p := range s.phaseWork {
		if s.phaseWork[p] > max {
			max = s.phaseWork[p]
		}
		s.phaseWork[p] = 0
	}
	s.critical += max
}

// DataRefs returns the number of data references observed.
func (s *Stats) DataRefs() uint64 { return s.Loads + s.Stores }

// SyncRefs returns the number of acquire/release references observed.
func (s *Stats) SyncRefs() uint64 { return s.Acquires + s.Releases }

// TotalRefs returns all references (the serial execution time of the model).
func (s *Stats) TotalRefs() uint64 { return s.DataRefs() + s.SyncRefs() }

// DataSetBytes returns the footprint in bytes, or 0 when footprint tracking
// was disabled.
func (s *Stats) DataSetBytes() uint64 {
	if s.words == nil {
		return 0
	}
	return uint64(s.words.Len()) * mem.WordBytes
}

// Speedup returns the modeled speedup: serial reference count over the
// parallel critical path. Work emitted after the last Phase marker is
// accounted as a final phase.
func (s *Stats) Speedup() float64 {
	critical := s.critical
	var tail uint64
	for _, w := range s.phaseWork {
		if w > tail {
			tail = w
		}
	}
	critical += tail
	if critical == 0 {
		return 0
	}
	return float64(s.TotalRefs()) / float64(critical)
}
