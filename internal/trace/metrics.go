package trace

import (
	"repro/internal/obs"
)

// Metric handles for the replay hot path, resolved once at package init so
// Drive/Collect and the demux pump pay only pre-resolved atomic adds — a
// handful per 1024-reference batch, never per reference. The demux pump
// goes further: it accumulates plain-integer locals and flushes them to
// the counters once per demux, because it already iterates per reference
// for routing and must not add atomics inside that loop.
var (
	mDriveRefs      = obs.Default.Counter(obs.NameDriveRefs)
	mDriveBatches   = obs.Default.Counter(obs.NameDriveBatches)
	mDriveBatchSize = obs.Default.Histogram(obs.NameDriveBatchSize, batchSizeBounds)
	mDriveCloseErrs = obs.Default.Counter(obs.NameDriveCloseErrs)
	mCollectRefs    = obs.Default.Counter(obs.NameCollectRefs)

	mDemuxRefsIn     = obs.Default.Counter(obs.NameDemuxRefsIn)
	mDemuxDataRouted = obs.Default.Counter(obs.NameDemuxDataRouted)
	mDemuxBroadcasts = obs.Default.Counter(obs.NameDemuxBroadcasts)
	mDemuxShardRefs  = obs.Default.Histogram(obs.NameDemuxShardRefs, shardRefsBounds)
	mDemuxBlockedNs  = obs.Default.TimingCounter(obs.NameDemuxBlockedNs)
	mDemuxQueueDepth = obs.Default.TimingHistogram(obs.NameDemuxQueueDepth, queueDepthBounds)
)

// batchSizeBounds covers the delivered-batch spectrum up to driveBatch;
// anything larger lands in the overflow bucket.
var batchSizeBounds = []uint64{1, 8, 64, 256, 512, driveBatch}

// shardRefsBounds buckets the per-shard delivered-reference totals, one
// observation per shard per demux, so skew in the block partition shows up
// as spread across buckets.
var shardRefsBounds = []uint64{1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000}

// queueDepthBounds covers a shard channel's occupancy in batches after each
// send: 0..demuxBuffer-1 finite buckets, with a full channel (demuxBuffer)
// landing in the overflow bucket. A stream of zeros means the consumers
// outrun the pump; a stream of overflows means the pump outruns them.
var queueDepthBounds = []uint64{0, 1, 2, demuxBuffer - 1}
