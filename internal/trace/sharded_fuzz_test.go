package trace_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

// FuzzShardedEquivalence lives in the external test package so it can drive
// the classifiers in internal/core against the demux without an import
// cycle. Arbitrary byte strings are decoded into mixed data/sync/phase
// traces and the sharded pipeline is checked against the serial classifier
// for all three classification schemes. The committed seed corpus under
// testdata/fuzz/FuzzShardedEquivalence is pinned by TestFuzzSeedCorpora.
func FuzzShardedEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8}, uint8(3), uint8(2))
	f.Add([]byte{5, 0, 9, 0, 1, 9, 6, 0, 9}, uint8(1), uint8(7))
	f.Add([]byte{}, uint8(0), uint8(0))

	f.Fuzz(func(t *testing.T, data []byte, procsRaw, shardsRaw uint8) {
		procs := int(procsRaw%6) + 2
		g := mem.MustGeometry(4 << (procsRaw % 4)) // 4..32-byte blocks
		tr := trace.New(procs)
		for i := 0; i+2 < len(data); i += 3 {
			p := int(data[i+1]) % procs
			addr := mem.Addr(data[i+2])
			switch data[i] % 8 {
			case 0, 1, 2:
				tr.Append(trace.L(p, addr))
			case 3, 4:
				tr.Append(trace.S(p, addr))
			case 5:
				tr.Append(trace.A(p, addr))
			case 6:
				tr.Append(trace.R(p, addr))
			default:
				tr.Append(trace.P())
			}
		}

		shardGrid := []int{2, int(shardsRaw%9) + 1}

		want, wantRefs, err := core.Classify(tr.Reader(), g)
		if err != nil {
			t.Fatalf("ours serial: %v", err)
		}
		for _, n := range shardGrid {
			got, refs, err := core.ShardedClassify(tr.Reader(), g, n)
			if err != nil {
				t.Fatalf("ours shards=%d: %v", n, err)
			}
			if got != want || refs != wantRefs {
				t.Fatalf("ours shards=%d: got %+v (%d refs), want %+v (%d refs)",
					n, got, refs, want, wantRefs)
			}
		}

		type scheme struct {
			name    string
			serial  func(trace.Reader, mem.Geometry) (core.SharingCounts, uint64, error)
			sharded func(trace.Reader, mem.Geometry, int) (core.SharingCounts, uint64, error)
		}
		for _, sc := range []scheme{
			{"eggers", core.ClassifyEggers, core.ShardedClassifyEggers},
			{"torrellas", core.ClassifyTorrellas, core.ShardedClassifyTorrellas},
		} {
			want, wantRefs, err := sc.serial(tr.Reader(), g)
			if err != nil {
				t.Fatalf("%s serial: %v", sc.name, err)
			}
			for _, n := range shardGrid {
				got, refs, err := sc.sharded(tr.Reader(), g, n)
				if err != nil {
					t.Fatalf("%s shards=%d: %v", sc.name, n, err)
				}
				if got != want || refs != wantRefs {
					t.Fatalf("%s shards=%d: got %+v (%d refs), want %+v (%d refs)",
						sc.name, n, got, refs, want, wantRefs)
				}
			}
		}
	})
}
