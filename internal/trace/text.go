package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/mem"
)

// Text trace format, one reference per line:
//
//	procs 16        header (required first non-comment line)
//	P0 LD 1234      load of word 1234 by processor 0
//	P3 ST 17        store
//	P1 ACQ 4096     acquire on sync word 4096
//	P1 REL 4096     release
//	PH              phase marker
//	# comment       comments and blank lines are ignored
//
// The format exists for hand-written test inputs and for inspecting
// generated traces; the binary format is the storage format.

// WriteText writes r's references to w in the text format and closes r.
func WriteText(w io.Writer, r Reader) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "procs %d\n", r.NumProcs()); err != nil {
		return err
	}
	defer CloseReader(r) //nolint:errcheck // best-effort close after drain
	for {
		ref, err := r.Next()
		if err == io.EOF {
			return bw.Flush()
		}
		if err != nil {
			return err
		}
		if _, err := bw.WriteString(ref.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
}

// ParseText reads an entire text-format trace into memory.
func ParseText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	var t *Trace
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if t == nil {
			procs, err := parseHeader(line)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			t = New(procs)
			continue
		}
		ref, err := parseLine(line, t.Procs)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		t.Refs = append(t.Refs, ref)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t == nil {
		return nil, fmt.Errorf("trace: missing 'procs N' header")
	}
	return t, nil
}

func parseHeader(line string) (int, error) {
	fields := strings.Fields(line)
	if len(fields) != 2 || fields[0] != "procs" {
		return 0, fmt.Errorf("expected 'procs N' header, got %q", line)
	}
	procs, err := strconv.Atoi(fields[1])
	if err != nil || procs <= 0 || procs > 1<<16 {
		return 0, fmt.Errorf("bad processor count %q", fields[1])
	}
	return procs, nil
}

func parseLine(line string, procs int) (Ref, error) {
	fields := strings.Fields(line)
	if fields[0] == "PH" {
		if len(fields) != 1 {
			return Ref{}, fmt.Errorf("phase marker takes no operands: %q", line)
		}
		return P(), nil
	}
	if len(fields) != 3 {
		return Ref{}, fmt.Errorf("expected 'P<n> KIND addr', got %q", line)
	}
	if !strings.HasPrefix(fields[0], "P") {
		return Ref{}, fmt.Errorf("bad processor field %q", fields[0])
	}
	proc, err := strconv.Atoi(fields[0][1:])
	if err != nil || proc < 0 || proc >= procs {
		return Ref{}, fmt.Errorf("bad processor %q (procs=%d)", fields[0], procs)
	}
	var kind Kind
	switch fields[1] {
	case "LD":
		kind = Load
	case "ST":
		kind = Store
	case "ACQ":
		kind = Acquire
	case "REL":
		kind = Release
	default:
		return Ref{}, fmt.Errorf("unknown kind %q", fields[1])
	}
	addr, err := strconv.ParseUint(fields[2], 0, 64)
	if err != nil {
		return Ref{}, fmt.Errorf("bad address %q: %v", fields[2], err)
	}
	return Ref{Proc: uint16(proc), Kind: kind, Addr: mem.Addr(addr)}, nil
}
