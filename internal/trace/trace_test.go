package trace

import (
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Load: "LD", Store: "ST", Acquire: "ACQ", Release: "REL", Phase: "PH",
		Kind(99): "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	if !Load.IsData() || !Store.IsData() {
		t.Error("Load/Store must be data kinds")
	}
	if Acquire.IsData() || Release.IsData() || Phase.IsData() {
		t.Error("sync/phase kinds must not be data")
	}
	if !Acquire.IsSync() || !Release.IsSync() {
		t.Error("Acquire/Release must be sync kinds")
	}
	if Load.IsSync() || Phase.IsSync() {
		t.Error("Load/Phase must not be sync kinds")
	}
	for k := Kind(0); k < numKinds; k++ {
		if !k.Valid() {
			t.Errorf("kind %d should be valid", k)
		}
	}
	if Kind(numKinds).Valid() {
		t.Error("out-of-range kind should be invalid")
	}
}

func TestConstructors(t *testing.T) {
	if r := L(3, 17); r.Proc != 3 || r.Kind != Load || r.Addr != 17 {
		t.Errorf("L(3,17) = %+v", r)
	}
	if r := S(1, 2); r.Kind != Store {
		t.Errorf("S = %+v", r)
	}
	if r := A(0, 5); r.Kind != Acquire {
		t.Errorf("A = %+v", r)
	}
	if r := R(0, 5); r.Kind != Release {
		t.Errorf("R = %+v", r)
	}
	if r := P(); r.Kind != Phase {
		t.Errorf("P = %+v", r)
	}
}

func TestTraceValidate(t *testing.T) {
	good := New(2, L(0, 1), S(1, 2), A(1, 3), R(1, 3), P())
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	if err := New(0).Validate(); err == nil {
		t.Error("zero procs accepted")
	}
	if err := New(2, L(2, 1)).Validate(); err == nil {
		t.Error("out-of-range proc accepted")
	}
	if err := New(2, Ref{Kind: Kind(42)}).Validate(); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestTraceDataRefs(t *testing.T) {
	tr := New(2, L(0, 1), S(1, 2), A(1, 3), R(1, 3), P(), L(0, 4))
	if got := tr.DataRefs(); got != 3 {
		t.Errorf("DataRefs = %d, want 3", got)
	}
}

func TestSliceReader(t *testing.T) {
	tr := New(4, L(0, 1), S(3, 2))
	r := tr.Reader()
	if r.NumProcs() != 4 {
		t.Fatalf("NumProcs = %d", r.NumProcs())
	}
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Refs, tr.Refs) {
		t.Errorf("Collect = %v, want %v", got.Refs, tr.Refs)
	}
	// A second reader starts from the beginning.
	r2 := tr.Reader()
	first, err := r2.Next()
	if err != nil || first != tr.Refs[0] {
		t.Errorf("second reader first ref = %v, %v", first, err)
	}
}

func TestDriveFansOut(t *testing.T) {
	tr := New(2, L(0, 1), S(1, 2), P())
	a := &countingConsumer{}
	b := &countingConsumer{}
	if err := Drive(tr.Reader(), a, b); err != nil {
		t.Fatal(err)
	}
	if a.n != 3 || b.n != 3 {
		t.Errorf("consumers saw %d and %d refs, want 3 each", a.n, b.n)
	}
}

type countingConsumer struct{ n int }

func (c *countingConsumer) Ref(Ref) { c.n++ }

func TestGenerateStreams(t *testing.T) {
	g := Generate(2, func(e *Emitter) {
		for i := 0; i < 10000; i++ {
			e.Load(i%2, mem.Addr(i))
		}
		e.Phase()
	})
	got, err := Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 10001 {
		t.Fatalf("collected %d refs, want 10001", got.Len())
	}
	for i := 0; i < 10000; i++ {
		want := L(i%2, mem.Addr(i))
		if got.Refs[i] != want {
			t.Fatalf("ref %d = %v, want %v", i, got.Refs[i], want)
		}
	}
	if got.Refs[10000].Kind != Phase {
		t.Error("missing trailing phase marker")
	}
}

func TestGenerateEmitterHelpers(t *testing.T) {
	g := Generate(2, func(e *Emitter) {
		e.Load(0, 1)
		e.Store(1, 2)
		e.Acquire(0, 3)
		e.Release(0, 3)
		e.Phase()
	})
	got, err := Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []Ref{L(0, 1), S(1, 2), A(0, 3), R(0, 3), P()}
	if !reflect.DeepEqual(got.Refs, want) {
		t.Errorf("got %v, want %v", got.Refs, want)
	}
}

func TestGenReaderCloseStopsGenerator(t *testing.T) {
	finished := make(chan bool, 1)
	g := Generate(1, func(e *Emitter) {
		defer func() { finished <- true }()
		for i := 0; ; i++ {
			e.Load(0, mem.Addr(i)) // infinite generator
		}
	})
	// Read a little, then close.
	for i := 0; i < 10; i++ {
		if _, err := g.Next(); err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if !<-finished {
		t.Fatal("generator goroutine did not finish")
	}
	if _, err := g.Next(); err != ErrStopped {
		t.Errorf("Next after Close = %v, want ErrStopped", err)
	}
	if err := g.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestGenReaderPropagatesPanic(t *testing.T) {
	defer func() {
		// The panic surfaces in the generator goroutine and would crash
		// the test binary; we can't recover it here. Instead verify the
		// stop-panic is NOT swallowed for real panics by checking the
		// recover logic directly.
	}()
	// Closing before reading everything must not deadlock.
	g := Generate(1, func(e *Emitter) {
		for i := 0; i < 100000; i++ {
			e.Load(0, mem.Addr(i))
		}
	})
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

func randomTrace(rng *rand.Rand, procs, n int) *Trace {
	tr := New(procs)
	for i := 0; i < n; i++ {
		kind := Kind(rng.Intn(int(numKinds)))
		if kind == Phase {
			tr.Append(P()) // phase markers carry no operands
			continue
		}
		tr.Append(Ref{
			Proc: uint16(rng.Intn(procs)),
			Kind: kind,
			Addr: mem.Addr(rng.Intn(256)),
		})
	}
	return tr
}

func TestStatsCounts(t *testing.T) {
	tr := New(2,
		L(0, 1), L(0, 2), S(1, 1), A(1, 9), R(1, 9), P(),
		L(1, 3), P(),
	)
	s := NewStats(2, true)
	if err := Drive(tr.Reader(), s); err != nil {
		t.Fatal(err)
	}
	if s.Loads != 3 || s.Stores != 1 || s.Acquires != 1 || s.Releases != 1 {
		t.Errorf("counts = %d/%d/%d/%d", s.Loads, s.Stores, s.Acquires, s.Releases)
	}
	if s.DataRefs() != 4 || s.SyncRefs() != 2 || s.TotalRefs() != 6 {
		t.Errorf("aggregates wrong: %d %d %d", s.DataRefs(), s.SyncRefs(), s.TotalRefs())
	}
	// Footprint: words 1, 2, 3 (sync addr 9 is not data).
	if got := s.DataSetBytes(); got != 3*mem.WordBytes {
		t.Errorf("DataSetBytes = %d, want %d", got, 3*mem.WordBytes)
	}
	// Phase 1: proc0 work 2, proc1 work 3 -> max 3. Phase 2: proc1 work 1.
	// Critical path = 4, total = 6, speedup = 1.5.
	if got := s.Speedup(); got != 1.5 {
		t.Errorf("Speedup = %v, want 1.5", got)
	}
}

func TestStatsSpeedupTailPhase(t *testing.T) {
	// No phase markers at all: the whole trace is one phase.
	s := NewStats(2, false)
	s.Ref(L(0, 1))
	s.Ref(L(0, 2))
	s.Ref(L(1, 3))
	if got := s.Speedup(); got != 1.5 {
		t.Errorf("Speedup = %v, want 1.5", got)
	}
	if s.DataSetBytes() != 0 {
		t.Error("footprint tracking should be off")
	}
}

func TestStatsSpeedupEmpty(t *testing.T) {
	s := NewStats(2, false)
	if got := s.Speedup(); got != 0 {
		t.Errorf("Speedup of empty trace = %v, want 0", got)
	}
}

func TestStatsPerfectBalanceSpeedup(t *testing.T) {
	// 4 procs, each does 5 refs per phase, 3 phases: speedup must be 4.
	tr := New(4)
	for phase := 0; phase < 3; phase++ {
		for i := 0; i < 5; i++ {
			for p := 0; p < 4; p++ {
				tr.Append(L(p, mem.Addr(i)))
			}
		}
		tr.Append(P())
	}
	s := NewStats(4, false)
	if err := Drive(tr.Reader(), s); err != nil {
		t.Fatal(err)
	}
	if got := s.Speedup(); got != 4 {
		t.Errorf("Speedup = %v, want 4", got)
	}
}

func TestStatsQuickTotalsMatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 4, 200)
		s := NewStats(4, false)
		for _, r := range tr.Refs {
			s.Ref(r)
		}
		var perProc uint64
		for _, n := range s.PerProc {
			perProc += n
		}
		return perProc == s.TotalRefs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCollectClosesReader(t *testing.T) {
	g := Generate(1, func(e *Emitter) { e.Load(0, 1) })
	if _, err := Collect(g); err != nil {
		t.Fatal(err)
	}
	// After Collect drains the stream, the reader is done; a further
	// Next must report EOF (already closed) or ErrStopped.
	if _, err := g.Next(); err != io.EOF && err != ErrStopped {
		t.Errorf("Next after Collect = %v", err)
	}
}
