package trace

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/mem"
)

// FuzzDecoder checks that arbitrary input never panics the binary decoder
// and that every successfully decoded trace re-encodes to an equivalent
// stream.
func FuzzDecoder(f *testing.F) {
	// Seed with a valid trace and a few corruptions of it.
	var buf bytes.Buffer
	tr := New(4, L(0, 1), S(3, 1<<30), A(1, 7), R(1, 7), P())
	if err := WriteBinary(&buf, tr.Reader()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1]) // truncated record
	f.Add(valid[:5])            // header only, no proc count
	f.Add([]byte("UMTR\x01"))
	f.Add([]byte{})
	mutated := bytes.Clone(valid)
	mutated[6] ^= 0xff
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		got := New(dec.NumProcs())
		for {
			ref, err := dec.Next()
			if err != nil {
				break
			}
			got.Refs = append(got.Refs, ref)
		}
		// Whatever decoded must be valid and must round-trip.
		if err := got.Validate(); err != nil {
			t.Fatalf("decoder produced invalid trace: %v", err)
		}
		var re bytes.Buffer
		if err := WriteBinary(&re, got.Reader()); err != nil {
			t.Fatal(err)
		}
		dec2, err := NewDecoder(&re)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; ; i++ {
			ref, err := dec2.Next()
			if err == io.EOF {
				if i != got.Len() {
					t.Fatalf("re-decode lost refs: %d of %d", i, got.Len())
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if ref != got.Refs[i] {
				t.Fatalf("re-decode mismatch at %d", i)
			}
		}
	})
}

// FuzzParseText checks the text parser never panics and that parsed traces
// re-render and re-parse to the same refs.
func FuzzParseText(f *testing.F) {
	f.Add("procs 2\nP0 LD 1\nP1 ST 0x10\nPH\n")
	f.Add("procs 1\n# comment\n\nP0 ACQ 5\nP0 REL 5\n")
	f.Add("procs 0\n")
	f.Add("P0 LD 1\n")
	f.Add("procs 2\nP9 LD 1\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseText(bytes.NewReader([]byte(input)))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("parser produced invalid trace: %v", err)
		}
		var out bytes.Buffer
		if err := WriteText(&out, tr.Reader()); err != nil {
			t.Fatal(err)
		}
		again, err := ParseText(&out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.Len() != tr.Len() {
			t.Fatalf("re-parse lost refs: %d of %d", again.Len(), tr.Len())
		}
		for i := range tr.Refs {
			if again.Refs[i] != tr.Refs[i] {
				t.Fatalf("re-parse mismatch at %d: %v vs %v", i, again.Refs[i], tr.Refs[i])
			}
		}
	})
}

// FuzzClassifierRobustness drives arbitrary byte strings, interpreted as
// reference streams, through the full classification stack: nothing should
// panic and the accounting identities must hold.
func FuzzClassifierRobustness(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(3))
	f.Add([]byte{255, 254, 1, 1, 1}, uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, procsRaw uint8) {
		procs := int(procsRaw%8) + 1
		tr := New(procs)
		for i := 0; i+2 < len(data); i += 3 {
			kind := Load
			if data[i]&1 == 1 {
				kind = Store
			}
			tr.Append(Ref{
				Kind: kind,
				Proc: uint16(int(data[i+1]) % procs),
				Addr: mem.Addr(data[i+2]),
			})
		}
		s := NewStats(procs, true)
		for _, r := range tr.Refs {
			s.Ref(r)
		}
		if s.DataRefs() != uint64(tr.Len()) {
			t.Fatalf("stats lost refs: %d of %d", s.DataRefs(), tr.Len())
		}
	})
}
