// Package trace defines the memory-reference trace model used throughout the
// library: a trace is a sequence of references, each issued by a processor
// and tagged as a data load, data store, synchronization acquire/release, or
// a phase annotation. Traces can live in memory, stream from generators, or
// round-trip through compact binary and human-readable text codecs.
//
// The paper's methodology is trace-driven simulation (its §5): the same
// interleaved trace is replayed under different invalidation schedules so
// that scheduling effects are not confounded with changes to the execution.
package trace

import (
	"fmt"

	"repro/internal/mem"
)

// Kind is the type of a trace reference.
type Kind uint8

const (
	// Load is a data read of one word.
	Load Kind = iota
	// Store is a data write of one word.
	Store
	// Acquire is a synchronization acquire (lock acquisition, barrier
	// entry). Addr identifies the synchronization variable.
	Acquire
	// Release is a synchronization release (lock release, barrier exit).
	Release
	// Phase marks the end of a global computation phase. It is an
	// annotation emitted by workload generators: simulators and
	// classifiers ignore it; the statistics collector uses it to model
	// the parallel critical path (Table 2 speedups).
	Phase
	numKinds
)

// String implements fmt.Stringer with the mnemonics used by the text codec.
func (k Kind) String() string {
	switch k {
	case Load:
		return "LD"
	case Store:
		return "ST"
	case Acquire:
		return "ACQ"
	case Release:
		return "REL"
	case Phase:
		return "PH"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsData reports whether the kind is a data reference (load or store).
// Only data references enter miss-rate denominators and the classifiers.
func (k Kind) IsData() bool { return k == Load || k == Store }

// IsSync reports whether the kind is a synchronization reference.
func (k Kind) IsSync() bool { return k == Acquire || k == Release }

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool { return k < numKinds }

// Ref is a single trace reference.
type Ref struct {
	// Addr is the word address referenced. For Phase it is unused.
	Addr mem.Addr
	// Proc is the issuing processor, in [0, NumProcs).
	Proc uint16
	// Kind is the reference type.
	Kind Kind
}

// String implements fmt.Stringer in the text-codec line format.
func (r Ref) String() string {
	if r.Kind == Phase {
		return "PH"
	}
	return fmt.Sprintf("P%d %s %d", r.Proc, r.Kind, r.Addr)
}

// L, S, A, R and P are terse constructors used heavily by tests and by the
// paper-figure example traces.

// L returns a Load by proc at addr.
func L(proc int, addr mem.Addr) Ref { return Ref{Proc: uint16(proc), Kind: Load, Addr: addr} }

// S returns a Store by proc at addr.
func S(proc int, addr mem.Addr) Ref { return Ref{Proc: uint16(proc), Kind: Store, Addr: addr} }

// A returns an Acquire by proc on the sync variable at addr.
func A(proc int, addr mem.Addr) Ref { return Ref{Proc: uint16(proc), Kind: Acquire, Addr: addr} }

// R returns a Release by proc on the sync variable at addr.
func R(proc int, addr mem.Addr) Ref { return Ref{Proc: uint16(proc), Kind: Release, Addr: addr} }

// P returns a Phase marker.
func P() Ref { return Ref{Kind: Phase} }
