package trace

// Corruption-rejection tests for the CRC-framed binary codec: every way a
// version-2 stream can go bad on disk — a flipped byte, a truncation, a
// hostile chunk length — must surface as an error wrapping ErrCorrupt
// rather than misdecoded references, while unframed version-1 streams keep
// decoding for old trace files.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/mem"
)

// corruptTestBytes encodes a deterministic multi-chunk trace and returns
// the raw stream plus the header length (magic + version + procs varint).
func corruptTestBytes(t *testing.T) (data []byte, header int) {
	t.Helper()
	const procs = 4
	tr := New(procs)
	for i := 0; i < 20_000; i++ {
		p := i % procs
		tr.Append(L(p, mem.Addr(4096+8*i)), S(p, mem.Addr(8*i)))
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr.Reader()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), 6 // "UMTR" + version byte + uvarint(4)
}

// drainBinary decodes the stream to exhaustion and returns the terminal
// error (nil for a clean EOF).
func drainBinary(data []byte) error {
	dec, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		return err
	}
	for {
		if _, err := dec.Next(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// TestCorruptBitFlipRejected flips one byte at a spread of positions past
// the header; wherever the flip lands — length prefix, payload, checksum,
// end marker — the decoder must report ErrCorrupt, never silently deliver
// altered references.
func TestCorruptBitFlipRejected(t *testing.T) {
	data, header := corruptTestBytes(t)
	if err := drainBinary(data); err != nil {
		t.Fatalf("clean stream failed to decode: %v", err)
	}
	for _, pos := range []int{
		header,        // first chunk's length prefix
		header + 50,   // early payload
		len(data) / 2, // mid-stream payload
		len(data) - 5, // final chunk's checksum
		len(data) - 1, // end-of-stream marker
	} {
		mutated := bytes.Clone(data)
		mutated[pos] ^= 0x40
		err := drainBinary(mutated)
		if err == nil {
			t.Errorf("flip at byte %d: corrupt stream decoded cleanly", pos)
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("flip at byte %d: err = %v, want ErrCorrupt", pos, err)
		}
	}
}

// TestCorruptTruncationRejected cuts the stream off at a spread of points;
// a version-2 stream without its end-of-stream marker is corrupt by
// definition, so every truncation must be rejected.
func TestCorruptTruncationRejected(t *testing.T) {
	data, header := corruptTestBytes(t)
	for _, cut := range []int{header, header + 1, header + 100, len(data) / 2, len(data) - 1} {
		err := drainBinary(data[:cut])
		if err == nil {
			t.Errorf("truncation at byte %d: stream decoded cleanly", cut)
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation at byte %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
}

// TestCorruptHugeLengthRejected: a hostile chunk length past maxChunkBytes
// must be rejected up front (ErrCorrupt), not used as an allocation size.
func TestCorruptHugeLengthRejected(t *testing.T) {
	stream := []byte{'U', 'M', 'T', 'R', binaryVersion, 4}
	stream = binary.AppendUvarint(stream, maxChunkBytes+1)
	err := drainBinary(stream)
	if err == nil {
		t.Fatal("hostile chunk length accepted")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

// TestV1StreamStillDecodes pins backward compatibility: an unframed
// version-1 stream (records straight after the header, bare EOF terminator)
// decodes to the same references the current encoder round-trips.
func TestV1StreamStillDecodes(t *testing.T) {
	want := New(3, L(0, 64), S(2, 128), A(1, 4096), R(1, 4096), P(), L(2, 192))
	stream := []byte{'U', 'M', 'T', 'R', binaryVersion1, 3}
	for _, ref := range want.Refs {
		stream = append(stream, byte(ref.Kind))
		stream = binary.AppendUvarint(stream, uint64(ref.Proc))
		stream = binary.AppendUvarint(stream, uint64(ref.Addr))
	}
	dec, err := NewDecoder(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(dec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Procs != want.Procs || len(got.Refs) != len(want.Refs) {
		t.Fatalf("decoded %d procs / %d refs, want %d / %d",
			got.Procs, len(got.Refs), want.Procs, len(want.Refs))
	}
	for i := range want.Refs {
		if got.Refs[i] != want.Refs[i] {
			t.Errorf("ref %d = %+v, want %+v", i, got.Refs[i], want.Refs[i])
		}
	}
}
