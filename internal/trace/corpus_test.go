package trace

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/mem"
)

var updateCorpus = flag.Bool("update-corpus", false, "rewrite the committed fuzz seed corpora")

// corpusEntry renders one seed in the `go test fuzz v1` file format, one
// argument literal per line.
func corpusEntry(args ...any) string {
	var b bytes.Buffer
	b.WriteString("go test fuzz v1\n")
	for _, arg := range args {
		switch v := arg.(type) {
		case []byte:
			fmt.Fprintf(&b, "[]byte(%s)\n", strconv.Quote(string(v)))
		case string:
			fmt.Fprintf(&b, "string(%s)\n", strconv.Quote(v))
		case uint8:
			fmt.Fprintf(&b, "byte(%s)\n", strconv.QuoteRune(rune(v)))
		default:
			panic(fmt.Sprintf("corpusEntry: unsupported seed type %T", arg))
		}
	}
	return b.String()
}

// seedCorpora enumerates the committed seeds for every fuzz target in this
// package. They mirror and extend the f.Add seeds: a valid binary trace and
// systematic corruptions of it, text traces exercising every directive, and
// classifier inputs touching the aliasing and wraparound edges.
func seedCorpora(t testing.TB) map[string][]string {
	var buf bytes.Buffer
	tr := New(4, L(0, 1), S(3, 1<<30), A(1, 7), R(1, 7), P())
	if err := WriteBinary(&buf, tr.Reader()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	truncated := valid[:len(valid)-1]
	mutated := bytes.Clone(valid)
	mutated[6] ^= 0xff

	// A version-1 stream built by hand (unframed records, bare-EOF
	// terminated) keeps the legacy decode path in the fuzz corpus now that
	// WriteBinary emits version 2.
	v1 := []byte{'U', 'M', 'T', 'R', binaryVersion1, 2} // header, procs=2
	for _, rec := range [][3]uint64{{uint64(Load), 0, 1}, {uint64(Store), 1, 1 << 20}, {uint64(Phase), 0, 0}} {
		v1 = append(v1, byte(rec[0]))
		v1 = binary.AppendUvarint(v1, rec[1])
		v1 = binary.AppendUvarint(v1, rec[2])
	}

	// Version-2 framing corruptions: a flipped checksum byte and an
	// implausible chunk length.
	badCRC := bytes.Clone(valid)
	badCRC[len(badCRC)-2] ^= 0xff // inside the final chunk's CRC
	hugeLen := append(bytes.Clone(valid[:6]), binary.AppendUvarint(nil, maxChunkBytes+1)...)

	var big bytes.Buffer
	wide := New(64)
	// Addresses clustered in one block's neighborhood so the decoder
	// exercises small deltas.
	const base = mem.Addr(1 << 12)
	for p := 0; p < 64; p++ {
		wide.Refs = append(wide.Refs, S(p, base+mem.Addr(p)), L(p, base))
	}
	if err := WriteBinary(&big, wide.Reader()); err != nil {
		t.Fatal(err)
	}

	return map[string][]string{
		"FuzzDecoder": {
			corpusEntry(valid),
			corpusEntry(truncated),
			corpusEntry(valid[:5]),
			corpusEntry([]byte("UMTR\x01")),
			corpusEntry([]byte{}),
			corpusEntry(mutated),
			corpusEntry(big.Bytes()),
			corpusEntry(append(bytes.Clone(valid), valid...)), // two headers back to back
			corpusEntry(v1),
			corpusEntry(badCRC),
			corpusEntry(hugeLen),
		},
		"FuzzParseText": {
			corpusEntry("procs 2\nP0 LD 1\nP1 ST 0x10\nPH\n"),
			corpusEntry("procs 1\n# comment\n\nP0 ACQ 5\nP0 REL 5\n"),
			corpusEntry("procs 0\n"),
			corpusEntry("P0 LD 1\n"),
			corpusEntry("procs 2\nP9 LD 1\n"),
			corpusEntry(""),
			corpusEntry("procs 16\nP15 ST 0xffffffff\nPH\nP0 LD 0\n"),
			corpusEntry("procs 2\nP0 LD 99999999999999999999\n"),
		},
		"FuzzClassifierRobustness": {
			corpusEntry([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(3)),
			corpusEntry([]byte{255, 254, 1, 1, 1}, uint8(1)),
			corpusEntry([]byte{1, 0, 16, 0, 1, 16, 1, 2, 16}, uint8(7)), // write races on one word
			corpusEntry(bytes.Repeat([]byte{1, 3, 255}, 32), uint8(0)),
			corpusEntry([]byte{}, uint8(255)),
		},
		// FuzzShardedEquivalence (external test package, sharded_fuzz_test.go)
		// decodes 3-byte records (kind, proc, addr) into mixed data/sync/phase
		// traces; the extra bytes pick the processor count/geometry and the
		// shard count.
		"FuzzShardedEquivalence": {
			corpusEntry([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8}, uint8(3), uint8(2)),
			corpusEntry([]byte{5, 0, 9, 0, 1, 9, 6, 0, 9}, uint8(1), uint8(7)), // acquire/store/release on one word
			corpusEntry([]byte{}, uint8(0), uint8(0)),
			corpusEntry(bytes.Repeat([]byte{3, 1, 8, 0, 2, 8, 7, 0, 0}, 16), uint8(5), uint8(63)), // contended block with phases
			corpusEntry([]byte{3, 0, 0, 0, 1, 0, 3, 1, 0, 0, 0, 0}, uint8(0), uint8(8)),           // ping-pong on one block
		},
		// FuzzFusedEquivalence (external test package, fused_fuzz_test.go)
		// decodes the same 3-byte records; geoRaw's low six bits select the
		// nested geometry set (4..128-byte blocks) and bit 6 duplicates a
		// level, so the hierarchical fused state sees every nesting shape.
		"FuzzFusedEquivalence": {
			corpusEntry([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8}, uint8(3), uint8(0b1011), uint8(2)),
			corpusEntry([]byte{5, 0, 9, 0, 1, 9, 6, 0, 9}, uint8(1), uint8(0b100001), uint8(7)), // finest+coarsest only
			corpusEntry([]byte{}, uint8(0), uint8(0), uint8(0)),
			corpusEntry(bytes.Repeat([]byte{3, 1, 8, 0, 2, 8, 7, 0, 0}, 16), uint8(5), uint8(0b1111111), uint8(63)), // all levels + duplicate
			corpusEntry([]byte{3, 0, 0, 0, 1, 0, 3, 1, 0, 0, 0, 0}, uint8(0), uint8(0b100), uint8(8)),               // ping-pong, single level
		},
	}
}

// TestFuzzSeedCorpora verifies the committed seed files under testdata/fuzz
// are exactly the canonical set (regenerate with -update-corpus). Plain
// `go test` also runs every committed seed through its fuzz target, so this
// test pins the files while the targets pin the behavior.
func TestFuzzSeedCorpora(t *testing.T) {
	for target, entries := range seedCorpora(t) {
		dir := filepath.Join("testdata", "fuzz", target)
		if *updateCorpus {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			for i, entry := range entries {
				name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
				if err := os.WriteFile(name, []byte(entry), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i, entry := range entries {
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			got, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("%s: %v (regenerate with -update-corpus)", name, err)
			}
			if string(got) != entry {
				t.Errorf("%s is stale (regenerate with -update-corpus)", name)
			}
			_ = i
		}
	}
}
