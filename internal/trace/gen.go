package trace

import (
	"io"

	"repro/internal/mem"
)

// batchSize is the number of references shipped per channel operation by
// generated streams. Large enough to amortize channel overhead, small enough
// to keep memory per stream negligible.
const batchSize = 4096

// Emitter is handed to a generator function; the function calls its methods
// to produce the trace. Emitter methods must only be called from the
// generator goroutine.
type Emitter struct {
	out  chan []Ref
	stop chan struct{}
	buf  []Ref
}

// stopPanic unwinds a generator whose reader was closed early.
type stopPanic struct{}

// Emit appends one reference to the stream.
func (e *Emitter) Emit(r Ref) {
	e.buf = append(e.buf, r)
	if len(e.buf) >= batchSize {
		e.flush()
	}
}

// Load emits a data load by proc at addr.
func (e *Emitter) Load(proc int, addr mem.Addr) { e.Emit(L(proc, addr)) }

// Store emits a data store by proc at addr.
func (e *Emitter) Store(proc int, addr mem.Addr) { e.Emit(S(proc, addr)) }

// Acquire emits a synchronization acquire by proc on addr.
func (e *Emitter) Acquire(proc int, addr mem.Addr) { e.Emit(A(proc, addr)) }

// Release emits a synchronization release by proc on addr.
func (e *Emitter) Release(proc int, addr mem.Addr) { e.Emit(R(proc, addr)) }

// Phase emits a phase-end annotation.
func (e *Emitter) Phase() { e.Emit(P()) }

func (e *Emitter) flush() {
	if len(e.buf) == 0 {
		return
	}
	select {
	case e.out <- e.buf:
		e.buf = make([]Ref, 0, batchSize)
	case <-e.stop:
		panic(stopPanic{})
	}
}

// GenReader streams references produced by a generator function running in
// its own goroutine. It implements Reader and io.Closer. Closing early stops
// the generator promptly.
type GenReader struct {
	procs  int
	out    chan []Ref
	stop   chan struct{}
	cur    []Ref
	pos    int
	done   bool
	closed bool
}

// Generate starts fn in a goroutine and returns a Reader over the references
// it emits. fn receives an Emitter; when fn returns, the stream ends.
func Generate(procs int, fn func(*Emitter)) *GenReader {
	g := &GenReader{
		procs: procs,
		out:   make(chan []Ref, 4),
		stop:  make(chan struct{}),
	}
	go func() {
		e := &Emitter{out: g.out, stop: g.stop, buf: make([]Ref, 0, batchSize)}
		defer close(g.out)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopPanic); !ok {
					panic(r) // real bug in the generator: propagate
				}
			}
		}()
		fn(e)
		e.flush()
	}()
	return g
}

// NumProcs implements Reader.
func (g *GenReader) NumProcs() int { return g.procs }

// Next implements Reader.
func (g *GenReader) Next() (Ref, error) {
	if g.closed {
		return Ref{}, ErrStopped
	}
	for g.pos >= len(g.cur) {
		if g.done {
			return Ref{}, io.EOF
		}
		batch, ok := <-g.out
		if !ok {
			g.done = true
			return Ref{}, io.EOF
		}
		g.cur, g.pos = batch, 0
	}
	r := g.cur[g.pos]
	g.pos++
	return r, nil
}

// NextBatch implements BatchReader by copying out of the current generator
// batch; at most one channel receive per call.
func (g *GenReader) NextBatch(buf []Ref) (int, error) {
	if g.closed {
		return 0, ErrStopped
	}
	for g.pos >= len(g.cur) {
		if g.done {
			return 0, io.EOF
		}
		batch, ok := <-g.out
		if !ok {
			g.done = true
			return 0, io.EOF
		}
		g.cur, g.pos = batch, 0
	}
	n := copy(buf, g.cur[g.pos:])
	g.pos += n
	return n, nil
}

// Close stops the generator goroutine. Subsequent Next calls return
// ErrStopped. Closing an exhausted or already-closed reader is a no-op.
func (g *GenReader) Close() error {
	if g.closed {
		return nil
	}
	g.closed = true
	close(g.stop)
	// Drain so the generator goroutine observes stop and exits.
	for range g.out { //nolint:revive // draining
	}
	return nil
}
