package trace

// Cancellation tests for the replay pumps: the allocation pin promised by
// DriveContext's doc comment, and the randomized cancel-mid-replay race
// suite over every worker/shard combination the CLI exposes (run it under
// -race: the interesting failures are ordering windows in the demux
// teardown, not deterministic logic).

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/mem"
)

// nopBatchConsumer is the cheapest possible BatchConsumer: the allocation
// pin must measure the pump, not the consumer.
type nopBatchConsumer struct{ refs uint64 }

func (c *nopBatchConsumer) Ref(Ref)             { c.refs++ }
func (c *nopBatchConsumer) RefBatch(refs []Ref) { c.refs += uint64(len(refs)) }

// cancelTestTrace builds a deterministic mixed trace of n references.
func cancelTestTrace(n int) *Trace {
	const procs = 4
	tr := New(procs)
	for i := 0; tr.Len() < n; i++ {
		p := i % procs
		addr := mem.Addr(4 * (i % 1024))
		tr.Append(L(p, addr), S(p, addr))
		if i%256 == 255 {
			tr.Append(A(p, 1<<30), R(p, 1<<30))
		}
	}
	return tr
}

// TestDriveContextAllocs pins the zero-alloc steady state the DriveContext
// doc comment promises: the per-batch ctx.Err() check adds no allocations
// to the replay loop, so the per-call allocation count is a small constant
// independent of trace length (only the batch buffer and the batcher table
// are allocated, once per call).
func TestDriveContextAllocs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := &nopBatchConsumer{}
	perCall := func(tr *Trace) float64 {
		t.Helper()
		return testing.AllocsPerRun(10, func() {
			if err := DriveContext(ctx, tr.Reader(), c); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := perCall(cancelTestTrace(4 << 10))
	large := perCall(cancelTestTrace(64 << 10))
	if small != large {
		t.Errorf("allocations grow with trace length: %v for 4k refs, %v for 64k refs",
			small, large)
	}
	// The fixed per-call cost: reader, batch buffer, batcher table.
	if large > 8 {
		t.Errorf("DriveContext allocates %v per call, want <= 8", large)
	}
}

// TestCollectContextCanceled: a pre-canceled collect returns ctx.Err() and
// still closes the reader.
func TestCollectContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := &closeTrackingReader{r: cancelTestTrace(1 << 10).Reader()}
	if _, err := CollectContext(ctx, src); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !src.closed {
		t.Error("reader not closed after canceled collect")
	}
}

// closeTrackingReader records whether Close was called.
type closeTrackingReader struct {
	r      Reader
	closed bool
}

func (c *closeTrackingReader) NumProcs() int      { return c.r.NumProcs() }
func (c *closeTrackingReader) Next() (Ref, error) { return c.r.Next() }
func (c *closeTrackingReader) Close() error {
	c.closed = true
	return CloseReader(c.r)
}

// TestCancelMidReplayRace is the cancellation race suite: for every
// worker/shard combination, cancel the shared context at a randomized point
// while the workers replay through demux pipelines, and require that every
// path winds down — each worker returns either a clean result or the
// context error (never ErrStopped, never a hang), the source readers are
// closed, and no goroutine outlives the run.
func TestCancelMidReplayRace(t *testing.T) {
	tr := cancelTestTrace(32 << 10)
	rng := rand.New(rand.NewSource(1))
	for _, workers := range []int{1, 8} {
		for _, shards := range []int{1, 8} {
			name := ""
			switch {
			case workers == 1 && shards == 1:
				name = "w1_s1"
			case workers == 1:
				name = "w1_s8"
			case shards == 1:
				name = "w8_s1"
			default:
				name = "w8_s8"
			}
			t.Run(name, func(t *testing.T) {
				base := runtime.NumGoroutine()
				for trial := 0; trial < 6; trial++ {
					delay := time.Duration(rng.Intn(2000)) * time.Microsecond
					runCancelTrial(t, tr, workers, shards, delay)
				}
				waitForGoroutines(t, base)
			})
		}
	}
}

// runCancelTrial replays tr through `workers` concurrent demux pipelines of
// `shards` shards each, cancelling the shared context after delay.
func runCancelTrial(t *testing.T, tr *Trace, workers, shards int, delay time.Duration) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	timer := time.AfterFunc(delay, cancel)
	defer timer.Stop()

	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := &closeTrackingReader{r: tr.Reader()}
			defer func() {
				if !src.closed {
					errs[w] = errors.New("source reader left open")
				}
			}()
			if shards <= 1 {
				errs[w] = DriveContext(ctx, src, &nopBatchConsumer{})
				return
			}
			g, gerr := mem.NewGeometry(64)
			if gerr != nil {
				errs[w] = gerr
				return
			}
			d := NewDemuxContext(ctx, src, shards, BlockShard(g, shards))
			defer d.Close()
			shardErrs := make([]error, shards)
			var sw sync.WaitGroup
			for s := 0; s < shards; s++ {
				sw.Add(1)
				go func(s int) {
					defer sw.Done()
					shardErrs[s] = DriveContext(ctx, d.Shard(s), &nopBatchConsumer{})
				}(s)
			}
			sw.Wait()
			for _, e := range shardErrs {
				if e != nil {
					errs[w] = e
					break
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		buf := make([]byte, 1<<16)
		t.Fatalf("replay deadlocked after cancel\n%s", buf[:runtime.Stack(buf, true)])
	}
	for w, err := range errs {
		if err == nil || errors.Is(err, context.Canceled) {
			continue
		}
		if err == io.EOF {
			t.Errorf("worker %d: raw io.EOF escaped the pump", w)
			continue
		}
		t.Errorf("worker %d: err = %v, want nil or context.Canceled", w, err)
	}
}
