package trace

// ShardReader tests: the shard-native filter must reproduce, shard by
// shard, exactly the streams a Demux fans out of one equivalent source —
// same routing, same broadcast order for sync/phase references — on both
// the Next and NextBatch paths, and its Close must propagate to the source.

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// TestShardReaderMatchesDemux is the core shard-native generation
// differential: for every shard, a ShardReader over an independent reader
// of the trace yields the identical ref sequence to the demux's shard
// stream.
func TestShardReaderMatchesDemux(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomDemuxTrace(rng, 4, 3000)
		g := mem.MustGeometry(16)
		const n = 4
		key := BlockShard(g, n)

		d := NewDemux(tr.Reader(), n, key)
		for i := 0; i < n; i++ {
			want := collectShard(t, d.Shard(i))
			got := collectShard(t, NewShardReader(tr.Reader(), i, key))
			if len(got) != len(want) {
				t.Fatalf("seed %d shard %d: ShardReader %d refs, demux %d", seed, i, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("seed %d shard %d ref %d: ShardReader %v, demux %v", seed, i, j, got[j], want[j])
				}
			}
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardReaderBatchMatchesNext: the NextBatch path must produce the same
// subsequence as the Next path, for both batched and unbatched sources, at
// awkward buffer sizes.
func TestShardReaderBatchMatchesNext(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := randomDemuxTrace(rng, 4, 2500)
	g := mem.MustGeometry(8)
	const n = 3
	key := BlockShard(g, n)

	for shard := 0; shard < n; shard++ {
		want := collectShard(t, NewShardReader(tr.Reader(), shard, key))
		for _, bufSize := range []int{1, 7, driveBatch, 5000} {
			for _, batched := range []bool{true, false} {
				var src Reader = tr.Reader()
				if !batched {
					src = unbatchedReader{src}
				}
				sr := NewShardReader(src, shard, key)
				var got []Ref
				buf := make([]Ref, bufSize)
				for {
					cnt, err := sr.NextBatch(buf)
					got = append(got, buf[:cnt]...)
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Fatal(err)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("shard %d buf %d batched %v: %d refs, want %d",
						shard, bufSize, batched, len(got), len(want))
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("shard %d buf %d batched %v ref %d: got %v, want %v",
							shard, bufSize, batched, j, got[j], want[j])
					}
				}
			}
		}
	}
}

// unbatchedReader hides a source's NextBatch to force the per-ref path.
type unbatchedReader struct{ r Reader }

func (u unbatchedReader) NumProcs() int      { return u.r.NumProcs() }
func (u unbatchedReader) Next() (Ref, error) { return u.r.Next() }

// TestShardReaderZeroBuf: a zero-length NextBatch buffer returns (0, nil)
// without consuming the source.
func TestShardReaderZeroBuf(t *testing.T) {
	tr := New(2, L(0, 0), L(1, 1))
	sr := NewShardReader(tr.Reader(), 0, func(Ref) int { return 0 })
	if n, err := sr.NextBatch(nil); n != 0 || err != nil {
		t.Fatalf("NextBatch(nil) = %d, %v; want 0, nil", n, err)
	}
	if got := collectShard(t, sr); len(got) != 2 {
		t.Fatalf("stream consumed by empty NextBatch: %d refs left, want 2", len(got))
	}
}

// TestShardReaderCloseAndErrors: Close reaches the source, a source error
// surfaces, and the constructor rejects bad arguments.
func TestShardReaderCloseAndErrors(t *testing.T) {
	src := &errAfterReader{n: 10, err: io.EOF}
	sr := NewShardReader(src, 0, func(Ref) int { return 0 })
	if sr.NumProcs() != src.NumProcs() {
		t.Fatalf("NumProcs = %d, want %d", sr.NumProcs(), src.NumProcs())
	}
	if err := sr.Close(); err != nil {
		t.Fatal(err)
	}
	if !src.closed {
		t.Error("source not closed through ShardReader.Close")
	}

	srcErr := io.ErrUnexpectedEOF
	sr = NewShardReader(&errAfterReader{n: 3, err: srcErr}, 1, func(Ref) int { return 0 })
	var err error
	for err == nil {
		_, err = sr.Next()
	}
	if err != srcErr {
		t.Fatalf("source error not propagated: got %v", err)
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil key", func() { NewShardReader(New(1).Reader(), 0, nil) })
	mustPanic("negative shard", func() { NewShardReader(New(1).Reader(), -1, func(Ref) int { return 0 }) })
}
