package coherence

// Behavioral tests: small hand-built scenarios pinning each protocol's
// defining mechanism — word invalidation for MIN/WBWI, the cost of
// ownership, receive delay until acquire for RD, send delay until release
// for SD/SRD, and the adversarial schedule for MAX.

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

var (
	g8  = mem.MustGeometry(8)  // 2 words
	g16 = mem.MustGeometry(16) // 4 words
)

func run(t *testing.T, name string, tr *trace.Trace, g mem.Geometry) Result {
	t.Helper()
	res, err := RunWith(name, tr.Reader(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != res.Counts.Total() {
		t.Fatalf("%s: miss counter %d != classified total %d", name, res.Misses, res.Counts.Total())
	}
	return res
}

func TestNewUnknownProtocol(t *testing.T) {
	if _, err := New("XYZ", 2, g8); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	for _, name := range Protocols {
		sim, err := New(name, 2, g8)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if sim.Name() != name {
			t.Errorf("Name() = %q, want %q", sim.Name(), name)
		}
	}
}

func TestOTFBasics(t *testing.T) {
	tr := trace.New(2,
		trace.L(0, 0), // P0 cold miss
		trace.L(0, 0), // hit
		trace.L(1, 0), // P1 cold miss
		trace.S(0, 0), // upgrade, invalidates P1
		trace.L(1, 0), // P1 misses again (PTS)
	)
	res := run(t, "OTF", tr, g8)
	if res.Misses != 3 {
		t.Errorf("misses = %d, want 3", res.Misses)
	}
	if res.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", res.Invalidations)
	}
	if res.Upgrades != 1 {
		t.Errorf("upgrades = %d, want 1", res.Upgrades)
	}
	if res.Counts.PTS != 1 || res.Counts.Cold() != 2 {
		t.Errorf("decomposition = %+v", res.Counts)
	}
	if res.DataRefs != 5 {
		t.Errorf("dataRefs = %d, want 5", res.DataRefs)
	}
}

// MIN invalidates at word grain: a store to word 1 must not disturb a
// sharer that only uses word 0 (the false-sharing miss is eliminated), but
// an access to word 1 itself must miss.
func TestMINWordInvalidation(t *testing.T) {
	tr := trace.New(2,
		trace.L(0, 0), // P0 cold
		trace.L(1, 1), // P1 cold (same block)
		trace.S(0, 1), // P0 writes word 1 -> word invalidation to P1
		trace.L(1, 0), // P1 reads word 0: HIT (no false sharing)
		trace.L(1, 1), // P1 reads word 1: miss (essential)
	)
	res := run(t, "MIN", tr, g8)
	if res.Misses != 3 {
		t.Errorf("misses = %d, want 3 (2 cold + 1 PTS)", res.Misses)
	}
	if res.Counts.PFS != 0 {
		t.Errorf("MIN produced false sharing: %+v", res.Counts)
	}
	if res.WriteThroughs != 1 {
		t.Errorf("write-throughs = %d, want 1", res.WriteThroughs)
	}
	if res.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1 (one sharer, one word)", res.Invalidations)
	}
	// On this trace the refetch also carries word 1's new value, which P1
	// reads next, so even OTF's miss is essential and the totals agree.
	otf := run(t, "OTF", tr, g8)
	if otf.Misses != 3 || otf.Counts.PFS != 0 {
		t.Errorf("OTF = %+v, want 3 essential misses", otf.Counts)
	}
}

// When the sharer never touches the modified word, OTF takes a useless miss
// that MIN eliminates entirely.
func TestMINEliminatesUselessMiss(t *testing.T) {
	tr := trace.New(2,
		trace.L(0, 0), // P0 cold
		trace.L(1, 1), // P1 cold
		trace.S(0, 1), // P0 modifies word 1
		trace.L(1, 0), // P1 only ever reads word 0 afterwards
		trace.L(1, 0),
	)
	min := run(t, "MIN", tr, g8)
	otf := run(t, "OTF", tr, g8)
	if min.Misses != 2 {
		t.Errorf("MIN misses = %d, want 2 (the invalidation is never triggered)", min.Misses)
	}
	if otf.Misses != 3 || otf.Counts.PFS != 1 {
		t.Errorf("OTF = %+v (misses %d), want one useless miss", otf.Counts, otf.Misses)
	}
}

// MIN's refetch brings a fresh copy: pending invalidations on other words
// are satisfied by the refetch, so only one miss per pending epoch.
func TestMINRefetchClearsAllPendingWords(t *testing.T) {
	tr := trace.New(2,
		trace.L(1, 0), // P1 cold
		trace.S(0, 0), // invalidate word 0 for P1
		trace.S(0, 1), // invalidate word 1 for P1
		trace.L(1, 0), // P1 miss, refetch clears both pendings
		trace.L(1, 1), // hit: word 1's new value came with the refetch
	)
	res := run(t, "MIN", tr, g16)
	if res.Misses != 3 { // P1 cold, P0 cold (store allocate), P1 refetch
		t.Errorf("misses = %d, want 3", res.Misses)
	}
}

// WBWI pays the cost of ownership: a store to a non-owned copy with a
// pending invalidation on ANY word of the block misses, where MIN keeps
// writing through.
func TestWBWIOwnershipCost(t *testing.T) {
	tr := trace.New(2,
		trace.L(1, 0), // P1 cold, gets the block
		trace.S(0, 1), // P0 cold store; word-invalidates word 1 for P1
		trace.S(1, 0), // P1 stores word 0: pending on word 1 -> ownership miss
	)
	wbwi := run(t, "WBWI", tr, g8)
	min := run(t, "MIN", tr, g8)
	if min.Misses != 2 {
		t.Errorf("MIN misses = %d, want 2 (P1 never touches word 1)", min.Misses)
	}
	if wbwi.Misses != 3 {
		t.Errorf("WBWI misses = %d, want 3 (ownership cost)", wbwi.Misses)
	}
}

// Without pending invalidations, WBWI ownership is a free upgrade.
func TestWBWIUpgradeFree(t *testing.T) {
	tr := trace.New(2,
		trace.L(0, 0), // P0 cold
		trace.S(0, 0), // first ownership on own clean copy: upgrade
		trace.L(1, 1), // P1 cold (word 1 pending? no: store was before load)
	)
	res := run(t, "WBWI", tr, g8)
	if res.Misses != 2 {
		t.Errorf("misses = %d, want 2", res.Misses)
	}
	if res.Upgrades != 1 {
		t.Errorf("upgrades = %d, want 1", res.Upgrades)
	}
}

// WBWI, like MIN, lets a sharer touch an invalidated word and miss on it.
func TestWBWILoadOfPendingWordMisses(t *testing.T) {
	tr := trace.New(2,
		trace.L(1, 0),
		trace.S(0, 0), // P0 store word 0: cold miss + word-inval to P1
		trace.L(1, 1), // P1 reads word 1: hit
		trace.L(1, 0), // P1 reads word 0: miss
	)
	res := run(t, "WBWI", tr, g8)
	if res.Misses != 3 {
		t.Errorf("misses = %d, want 3", res.Misses)
	}
}

// RD: the receiver keeps using its stale copy until its next acquire.
func TestRDDelaysInvalidationUntilAcquire(t *testing.T) {
	tr := trace.New(2,
		trace.L(1, 0),  // P1 cold
		trace.S(0, 0),  // P0 cold store; invalidation buffered at P1
		trace.L(1, 0),  // P1 still hits on the stale copy
		trace.L(1, 1),  // still hits
		trace.A(1, 99), // P1 acquires: buffered invalidation applied
		trace.L(1, 0),  // now P1 misses
	)
	res := run(t, "RD", tr, g8)
	if res.Misses != 3 {
		t.Errorf("misses = %d, want 3", res.Misses)
	}
	// Under OTF the load at T2 would already miss.
	otf := run(t, "OTF", tr, g8)
	if otf.Misses != 3 {
		t.Errorf("OTF misses = %d, want 3", otf.Misses)
	}
}

// RD: taking ownership on a copy with a buffered invalidation is a miss.
func TestRDOwnershipOnStaleCopyMisses(t *testing.T) {
	tr := trace.New(2,
		trace.L(1, 0),
		trace.S(0, 1), // invalidation buffered at P1
		trace.S(1, 0), // P1 stores: stale copy -> ownership miss
	)
	res := run(t, "RD", tr, g8)
	if res.Misses != 3 {
		t.Errorf("misses = %d, want 3", res.Misses)
	}
	// A store to a clean shared copy upgrades for free.
	clean := trace.New(2,
		trace.L(1, 0),
		trace.L(0, 0),
		trace.S(1, 0),
	)
	res = run(t, "RD", clean, g8)
	if res.Misses != 2 || res.Upgrades != 1 {
		t.Errorf("clean upgrade: misses=%d upgrades=%d, want 2 and 1", res.Misses, res.Upgrades)
	}
}

// SD: a non-owner's store is buffered; the sharers lose their copies only
// at the release, and stores to one block combine into one ownership action.
func TestSDDelaysSendUntilRelease(t *testing.T) {
	tr := trace.New(2,
		trace.L(1, 0),  // P1 cold
		trace.L(0, 0),  // P0 cold
		trace.S(0, 0),  // P0 buffers the store (non-owner)
		trace.S(0, 1),  // combines into the same buffered block
		trace.L(1, 0),  // P1 still hits: invalidation not sent yet
		trace.R(0, 99), // P0 releases: P1 invalidated now
		trace.L(1, 0),  // P1 misses
	)
	res := run(t, "SD", tr, g8)
	if res.Misses != 3 {
		t.Errorf("misses = %d, want 3", res.Misses)
	}
	if res.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1 (two stores combined)", res.Invalidations)
	}
}

// SD: the owner's stores complete without delay.
func TestSDOwnerStoresImmediate(t *testing.T) {
	tr := trace.New(2,
		trace.S(0, 0),  // P0 cold store, buffered (no owner yet)
		trace.R(0, 99), // flush: P0 becomes owner
		trace.L(1, 0),  // P1 cold
		trace.S(0, 1),  // owner store: invalidates P1 immediately
		trace.L(1, 0),  // P1 misses
	)
	res := run(t, "SD", tr, g8)
	if res.Misses != 3 {
		t.Errorf("misses = %d, want 3", res.Misses)
	}
}

// SD: a buffered store whose copy is invalidated before the release must
// refetch at the release.
func TestSDFlushAfterLosingCopyMisses(t *testing.T) {
	tr := trace.New(3,
		trace.S(0, 0),  // P0 buffers
		trace.S(1, 0),  // P1 buffers too (both have copies: store-miss allocate)
		trace.R(0, 99), // P0 flushes: owns, invalidates P1's copy
		trace.R(1, 99), // P1 flushes: copy gone -> miss, then owns
	)
	res := run(t, "SD", tr, g8)
	// P0 store-miss, P1 store-miss, P1 flush-miss.
	if res.Misses != 3 {
		t.Errorf("misses = %d, want 3", res.Misses)
	}
}

// SRD: invalidations are both send-delayed and receive-delayed.
func TestSRDDelaysBothEnds(t *testing.T) {
	tr := trace.New(2,
		trace.L(1, 0),
		trace.S(0, 0),  // buffered at sender
		trace.L(1, 0),  // hit
		trace.A(1, 99), // acquire: nothing pending yet (send not flushed)
		trace.L(1, 0),  // still a hit
		trace.R(0, 99), // P0 release: invalidation now buffered at P1
		trace.L(1, 0),  // STILL a hit: P1 has not acquired since
		trace.A(1, 99), // P1 acquire: invalidation applied
		trace.L(1, 0),  // miss
	)
	res := run(t, "SRD", tr, g8)
	if res.Misses != 3 {
		t.Errorf("misses = %d, want 3", res.Misses)
	}
}

// SRD release: taking ownership on a copy carrying a buffered invalidation
// costs a miss.
func TestSRDOwnershipOnPendingCopyMisses(t *testing.T) {
	tr := trace.New(2,
		trace.L(1, 0),
		trace.S(0, 0),  // P0 buffers (cold store miss)
		trace.R(0, 99), // flush: pending invalidation at P1
		trace.S(1, 1),  // P1 buffers a store on its pending copy
		trace.R(1, 99), // flush: pending -> ownership miss for P1
	)
	res := run(t, "SRD", tr, g8)
	// P1 cold, P0 store-miss, P1 ownership miss at its release.
	if res.Misses != 3 {
		t.Errorf("misses = %d, want 3", res.Misses)
	}
}

// MAX creates ping-pong OTF avoids: with two stores buffered inside one
// release window, the adversary can kill the reader's copy twice.
func TestMAXExceedsOTF(t *testing.T) {
	tr := trace.New(2,
		trace.L(1, 0), // P1 cold
		trace.S(0, 0), // P0 cold store; credit 1 against P1
		trace.S(0, 0), // credit 2 (still before P0's release)
		trace.L(1, 0), // P1: adversary fires credit 1 -> miss
		trace.L(1, 0), // adversary fires credit 2 -> miss again
		trace.L(1, 0), // no credits left -> hit
		trace.R(0, 99),
	)
	max := run(t, "MAX", tr, g8)
	otf := run(t, "OTF", tr, g8)
	if otf.Misses != 3 { // P1 cold, P0 store, P1 one invalidation miss
		t.Errorf("OTF misses = %d, want 3", otf.Misses)
	}
	if max.Misses != 4 {
		t.Errorf("MAX misses = %d, want 4", max.Misses)
	}
}

// MAX deadline: credits unspent at the sender's release are performed then,
// so a later access still misses; but a schedule can never invalidate after
// the release.
func TestMAXDeadlineFiresAtRelease(t *testing.T) {
	tr := trace.New(2,
		trace.L(1, 0),
		trace.S(0, 0),  // credit against P1
		trace.R(0, 99), // deadline: P1's copy invalidated here
		trace.L(1, 0),  // miss
		trace.L(1, 0),  // hit: no credits remain after the release
	)
	res := run(t, "MAX", tr, g8)
	if res.Misses != 3 {
		t.Errorf("misses = %d, want 3", res.Misses)
	}
}

// A store by the copy's own processor must never spend a credit against
// itself, and the upgrade is counted.
func TestMAXOwnStoreKeepsCopy(t *testing.T) {
	tr := trace.New(2,
		trace.S(0, 0), // P0 cold store
		trace.S(0, 0), // own credit must not kill own copy: hit
		trace.L(0, 0), // hit
	)
	res := run(t, "MAX", tr, g8)
	if res.Misses != 1 {
		t.Errorf("misses = %d, want 1", res.Misses)
	}
}

func TestSyncRefsAreNotDataRefs(t *testing.T) {
	tr := trace.New(2,
		trace.L(0, 0), trace.A(0, 50), trace.R(0, 50), trace.P(),
	)
	for _, name := range Protocols {
		res := run(t, name, tr, g8)
		if res.DataRefs != 1 {
			t.Errorf("%s: dataRefs = %d, want 1", name, res.DataRefs)
		}
	}
}
