package coherence

import (
	"repro/internal/dense"
	"repro/internal/mem"
	"repro/internal/trace"
)

// RD is the receive-delayed protocol (§4, after Dubois et al.'s delayed
// consistency): invalidations are sent at store time but buffered at each
// receiver, which keeps using its (possibly stale) copy until its next
// acquire; the acquire invalidates every block with a buffered invalidation.
// This combines invalidations at the receiving end, which the paper argues
// is the more effective end to combine at (§2.3). One stale bit per block
// suffices, versus a dirty bit per word for WBWI.
type RD struct {
	base
	blocks   *dense.Map[rdBlock]
	pendList [][]mem.Block // per proc: blocks with a buffered invalidation
}

type rdBlock struct {
	present uint64 // procs with a copy (possibly stale)
	pending uint64 // procs whose copy has a buffered invalidation
	owner   int8
}

// NewRD returns a receive-delayed simulator.
func NewRD(procs int, g mem.Geometry) *RD {
	return &RD{
		base:     newBase("RD", procs, g),
		blocks:   dense.NewMap[rdBlock](0),
		pendList: make([][]mem.Block, procs),
	}
}

func (s *RD) block(b mem.Block) *rdBlock {
	rb, existed := s.blocks.GetOrPut(uint64(b))
	if !existed {
		rb.owner = -1
	}
	return rb
}

// Ref implements trace.Consumer.
func (s *RD) Ref(r trace.Ref) {
	p := int(r.Proc)
	switch r.Kind {
	case trace.Load:
		s.load(p, r.Addr)
	case trace.Store:
		s.store(p, r.Addr)
	case trace.Acquire:
		s.acquire(p)
	}
}

// RefBatch implements trace.BatchConsumer.
func (s *RD) RefBatch(refs []trace.Ref) {
	for _, r := range refs {
		s.Ref(r)
	}
}

func (s *RD) load(p int, a mem.Addr) {
	s.dataRefs++
	blk := s.g.BlockOf(a)
	rb := s.block(blk)
	bit := uint64(1) << uint(p)
	if rb.present&bit == 0 {
		s.miss(p, a)
		rb.present |= bit
		rb.pending &^= bit // fresh copy: buffered invalidation satisfied
	}
	// A stale copy still hits: the invalidation waits for the acquire.
	s.life.Access(p, a)
}

func (s *RD) store(p int, a mem.Addr) {
	s.dataRefs++
	blk := s.g.BlockOf(a)
	rb := s.block(blk)
	bit := uint64(1) << uint(p)

	if rb.owner != int8(p) {
		switch {
		case rb.present&bit == 0:
			s.miss(p, a)
			rb.present |= bit
			rb.pending &^= bit
		case rb.pending&bit != 0:
			// Ownership on a stale copy costs a miss (§2.2).
			s.life.CloseInvalidate(p, blk)
			s.miss(p, a)
			rb.pending &^= bit
		default:
			s.upgrades++
		}
		rb.owner = int8(p)
	}
	s.life.Access(p, a)

	// Send invalidations immediately; they sit in the receivers'
	// buffers until their next acquire.
	sharers := rb.present &^ bit
	if sharers != 0 {
		s.invalidations += uint64(popcount(sharers))
		newPending := sharers &^ rb.pending
		rb.pending |= sharers
		forEachProc(newPending, func(q int) {
			s.pendList[q] = append(s.pendList[q], blk)
		})
	}
	s.life.RecordStore(p, a)
}

func (s *RD) acquire(p int) {
	bit := uint64(1) << uint(p)
	for _, blk := range s.pendList[p] {
		rb := s.blocks.Get(uint64(blk))
		if rb.pending&bit == 0 {
			continue // already satisfied by a refetch
		}
		rb.pending &^= bit
		rb.present &^= bit
		s.life.CloseInvalidate(p, blk)
	}
	s.pendList[p] = s.pendList[p][:0]
}

// Finish implements Simulator.
func (s *RD) Finish() Result { return s.result() }
