package coherence

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

func TestWBWILimitedValidation(t *testing.T) {
	g := mem.MustGeometry(16)
	if _, err := NewWBWILimited(2, g, 0); err == nil {
		t.Error("zero-entry buffer accepted")
	}
	if _, err := NewWBWILimited(2, g, 1); err != nil {
		t.Errorf("one-entry buffer rejected: %v", err)
	}
}

// With a buffer at least as large as the block, the limited WBWI behaves
// exactly like the unlimited one.
func TestWBWILimitedLargeBufferMatchesUnlimited(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr := randomSyncTrace(rng, 6, 3000, 48)
	for _, g := range geometries() {
		limited, err := NewWBWILimited(6, g, g.WordsPerBlock())
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Drive(tr.Reader(), limited); err != nil {
			t.Fatal(err)
		}
		unlimited, err := RunWith("WBWI", tr.Reader(), g)
		if err != nil {
			t.Fatal(err)
		}
		if got := limited.Finish(); got.Misses != unlimited.Misses {
			t.Errorf("%v: limited(full) %d misses != unlimited %d", g, got.Misses, unlimited.Misses)
		}
	}
}

// A one-word buffer overflows on the second distinct word: the copy is
// invalidated at once and the next access misses, like OTF.
func TestWBWILimitedOverflowInvalidates(t *testing.T) {
	g := mem.MustGeometry(16) // 4 words
	sim, err := NewWBWILimited(2, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	refs := []trace.Ref{
		trace.L(1, 3), // P1 caches the block
		trace.S(0, 0), // buffered word 0 (1 entry used)
		trace.S(0, 1), // would need a 2nd entry: P1's copy invalidated
		trace.L(1, 3), // P1 misses even though word 3 was never written
	}
	for _, r := range refs {
		sim.Ref(r)
	}
	res := sim.Finish()
	// Misses: P1 cold, P0 store cold, P1 refetch after overflow.
	if res.Misses != 3 {
		t.Errorf("misses = %d, want 3", res.Misses)
	}
	if res.Counts.PFS != 1 {
		t.Errorf("the overflow refetch reads nothing new: %+v", res.Counts)
	}

	// The unlimited protocol keeps the copy and never misses again.
	unlimited := NewWBWI(2, g)
	for _, r := range refs {
		unlimited.Ref(r)
	}
	if got := unlimited.Finish(); got.Misses != 2 {
		t.Errorf("unlimited misses = %d, want 2", got.Misses)
	}
}

// Repeated stores to the SAME word consume only one buffer entry: the
// invalidation combines.
func TestWBWILimitedSameWordCombines(t *testing.T) {
	g := mem.MustGeometry(16)
	sim, err := NewWBWILimited(2, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	refs := []trace.Ref{
		trace.L(1, 3),
		trace.S(0, 0),
		trace.S(0, 0), // same word: no new entry, no overflow
		trace.S(0, 0),
		trace.L(1, 3), // still a hit (word 3 clean, buffer holds word 0)
	}
	for _, r := range refs {
		sim.Ref(r)
	}
	if res := sim.Finish(); res.Misses != 2 {
		t.Errorf("misses = %d, want 2 (same-word stores must combine)", res.Misses)
	}
}

// Miss counts are monotone: smaller buffers can only add misses.
func TestWBWILimitedMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tr := randomSyncTrace(rng, 6, 4000, 32)
	g := mem.MustGeometry(64)
	prev := ^uint64(0)
	for _, entries := range []int{1, 2, 4, 8, 16} {
		sim, err := NewWBWILimited(6, g, entries)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Drive(tr.Reader(), sim); err != nil {
			t.Fatal(err)
		}
		res := sim.Finish()
		if res.Misses > prev {
			t.Errorf("buffer %d words: %d misses > smaller buffer's %d", entries, res.Misses, prev)
		}
		prev = res.Misses
	}
}
