package coherence

import (
	"math/bits"

	"repro/internal/mem"
	"repro/internal/trace"
)

// MIN is the paper's write-through protocol with per-word invalidation
// (§2.2, §4): every store propagates the written word's address to all other
// copies, where it is buffered (a dirty bit per word); a local access to a
// word with a buffered invalidation invalidates the block copy and misses.
// Write misses allocate. There is no ownership (stores write through), so
// MIN's miss count equals the essential miss count of the trace and its
// false-sharing component is zero by construction.
type MIN struct {
	base
	blocks map[mem.Block]*minBlock
}

type minBlock struct {
	present uint64   // procs with a copy
	pend    []uint64 // per word: procs with a buffered invalidation
}

// NewMIN returns a MIN simulator.
func NewMIN(procs int, g mem.Geometry) *MIN {
	return &MIN{base: newBase("MIN", procs, g), blocks: make(map[mem.Block]*minBlock)}
}

func (s *MIN) block(b mem.Block) *minBlock {
	mb := s.blocks[b]
	if mb == nil {
		mb = &minBlock{pend: make([]uint64, s.g.WordsPerBlock())}
		s.blocks[b] = mb
	}
	return mb
}

// Ref implements trace.Consumer.
func (s *MIN) Ref(r trace.Ref) {
	if !r.Kind.IsData() {
		return
	}
	s.dataRefs++
	p := int(r.Proc)
	blk := s.g.BlockOf(r.Addr)
	mb := s.block(blk)
	bit := uint64(1) << uint(p)
	off := s.g.OffsetOf(r.Addr)

	switch {
	case mb.present&bit == 0: // cold-path miss: allocate (also on writes)
		s.miss(p, r.Addr)
		mb.present |= bit
		clearPending(mb.pend, bit)
	case mb.pend[off]&bit != 0: // buffered invalidation on this word
		s.life.CloseInvalidate(p, blk)
		s.miss(p, r.Addr) // refetch a fresh copy
		clearPending(mb.pend, bit)
	}
	s.life.Access(p, r.Addr)

	if r.Kind == trace.Store {
		s.writeThroughs++
		sharers := mb.present &^ bit
		if sharers != 0 {
			// One word-invalidation message per remote copy,
			// buffered at each receiver.
			s.invalidations += uint64(popcount(sharers))
			mb.pend[off] |= sharers
		}
		s.life.RecordStore(p, r.Addr)
	}
}

// Finish implements Simulator.
func (s *MIN) Finish() Result { return s.result() }

func clearPending(pend []uint64, bit uint64) {
	for i := range pend {
		pend[i] &^= bit
	}
}

func popcount(m uint64) int { return bits.OnesCount64(m) }
