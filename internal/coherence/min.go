package coherence

import (
	"math/bits"

	"repro/internal/dense"
	"repro/internal/mem"
	"repro/internal/trace"
)

// MIN is the paper's write-through protocol with per-word invalidation
// (§2.2, §4): every store propagates the written word's address to all other
// copies, where it is buffered (a dirty bit per word); a local access to a
// word with a buffered invalidation invalidates the block copy and misses.
// Write misses allocate. There is no ownership (stores write through), so
// MIN's miss count equals the essential miss count of the trace and its
// false-sharing component is zero by construction.
type MIN struct {
	base
	blocks *dense.Map[minBlock]
	slab   *dense.Arena[uint64] // one cell per block: pend, words long
}

type minBlock struct {
	present uint64 // procs with a copy
	pend    uint32 // arena handle, per word: procs with a buffered invalidation
}

// NewMIN returns a MIN simulator.
func NewMIN(procs int, g mem.Geometry) *MIN {
	return &MIN{
		base:   newBase("MIN", procs, g),
		blocks: dense.NewMap[minBlock](0),
		slab:   dense.NewArena[uint64](g.WordsPerBlock()),
	}
}

func (s *MIN) block(b mem.Block) *minBlock {
	mb, existed := s.blocks.GetOrPut(uint64(b))
	if !existed {
		mb.pend = s.slab.Alloc()
	}
	return mb
}

// Ref implements trace.Consumer.
func (s *MIN) Ref(r trace.Ref) {
	if !r.Kind.IsData() {
		return
	}
	s.dataRefs++
	p := int(r.Proc)
	blk := s.g.BlockOf(r.Addr)
	mb := s.block(blk)
	pend := s.slab.Slice(mb.pend)
	bit := uint64(1) << uint(p)
	off := s.g.OffsetOf(r.Addr)

	switch {
	case mb.present&bit == 0: // cold-path miss: allocate (also on writes)
		s.miss(p, r.Addr)
		mb.present |= bit
		clearPending(pend, bit)
	case pend[off]&bit != 0: // buffered invalidation on this word
		s.life.CloseInvalidate(p, blk)
		s.miss(p, r.Addr) // refetch a fresh copy
		clearPending(pend, bit)
	}
	s.life.Access(p, r.Addr)

	if r.Kind == trace.Store {
		s.writeThroughs++
		sharers := mb.present &^ bit
		if sharers != 0 {
			// One word-invalidation message per remote copy,
			// buffered at each receiver.
			s.invalidations += uint64(popcount(sharers))
			pend[off] |= sharers
		}
		s.life.RecordStore(p, r.Addr)
	}
}

// RefBatch implements trace.BatchConsumer.
func (s *MIN) RefBatch(refs []trace.Ref) {
	for _, r := range refs {
		s.Ref(r)
	}
}

// Finish implements Simulator.
func (s *MIN) Finish() Result { return s.result() }

func clearPending(pend []uint64, bit uint64) {
	for i := range pend {
		pend[i] &^= bit
	}
}

func popcount(m uint64) int { return bits.OnesCount64(m) }
