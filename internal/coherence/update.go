package coherence

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/mem"
	"repro/internal/trace"
)

// The paper's conclusion (§8) observes that at large block sizes the
// remaining misses are dominated by true sharing plus the cost of
// ownership, and that "delayed write-broadcast or delayed protocols with
// competitive updates, which can reduce the number of essential misses, may
// become attractive". These two simulators implement that design point as
// an extension: they are not among the paper's seven schedules, but they
// complete its conclusion with numbers.

// ExtensionProtocols lists the update-based schedules implemented beyond
// the paper's seven (§8 outlook): "WU" (pure write-update) and "CU"
// (competitive update with the default threshold).
var ExtensionProtocols = []string{"WU", "CU"}

// DefaultCompetitiveThreshold is the number of consecutive remote updates
// after which a competitive-update copy self-invalidates.
const DefaultCompetitiveThreshold = 4

// WU is a write-update (write-broadcast) protocol: a store propagates the
// new value to every copy instead of invalidating, so with infinite caches
// the only misses left are cold misses — below even the essential miss rate
// of the write-invalidate classification, at the price of one update
// message per remote copy per store.
type WU struct {
	base
	present *dense.Map[uint64]
	updates uint64
}

// NewWU returns a write-update simulator.
func NewWU(procs int, g mem.Geometry) *WU {
	return &WU{base: newBase("WU", procs, g), present: dense.NewMap[uint64](0)}
}

// Ref implements trace.Consumer.
func (s *WU) Ref(r trace.Ref) {
	if !r.Kind.IsData() {
		return
	}
	s.dataRefs++
	p := int(r.Proc)
	blk := s.g.BlockOf(r.Addr)
	bit := uint64(1) << uint(p)

	present, _ := s.present.GetOrPut(uint64(blk))
	if *present&bit == 0 {
		s.miss(p, r.Addr)
		*present |= bit
	}
	s.life.Access(p, r.Addr)
	if r.Kind == trace.Store {
		s.updates += uint64(popcount(*present &^ bit))
		s.life.RecordStore(p, r.Addr)
	}
}

// RefBatch implements trace.BatchConsumer.
func (s *WU) RefBatch(refs []trace.Ref) {
	for _, r := range refs {
		s.Ref(r)
	}
}

// Finish implements Simulator.
func (s *WU) Finish() Result {
	res := s.result()
	res.Updates = s.updates
	return res
}

// CU is a competitive-update protocol: stores update remote copies like WU,
// but each copy carries a countdown — a remote update decrements it, a
// local access resets it, and at zero the copy self-invalidates, so copies
// that stopped being used stop receiving updates. The threshold trades
// update traffic against extra misses; the classic competitive argument
// bounds either cost to a constant factor of the other.
type CU struct {
	base
	threshold uint8
	blocks    *dense.Map[cuBlock]
	slab      *dense.Arena[uint8] // one cell per block: per-proc countdowns
	updates   uint64
}

type cuBlock struct {
	present uint64
	count   uint32 // arena handle, per processor: remaining remote updates before self-invalidation
}

// NewCU returns a competitive-update simulator with the given threshold
// (>=1); use DefaultCompetitiveThreshold for the standard setting.
func NewCU(procs int, g mem.Geometry, threshold int) (*CU, error) {
	if threshold < 1 || threshold > 255 {
		return nil, fmt.Errorf("coherence: competitive threshold %d out of range [1,255]", threshold)
	}
	return &CU{
		base:      newBase("CU", procs, g),
		threshold: uint8(threshold),
		blocks:    dense.NewMap[cuBlock](0),
		slab:      dense.NewArena[uint8](procs),
	}, nil
}

func (s *CU) block(b mem.Block) *cuBlock {
	cb, existed := s.blocks.GetOrPut(uint64(b))
	if !existed {
		cb.count = s.slab.Alloc()
	}
	return cb
}

// Ref implements trace.Consumer.
func (s *CU) Ref(r trace.Ref) {
	if !r.Kind.IsData() {
		return
	}
	s.dataRefs++
	p := int(r.Proc)
	blk := s.g.BlockOf(r.Addr)
	cb := s.block(blk)
	count := s.slab.Slice(cb.count)
	bit := uint64(1) << uint(p)

	if cb.present&bit == 0 {
		s.miss(p, r.Addr)
		cb.present |= bit
	}
	count[p] = s.threshold // local use resets the countdown
	s.life.Access(p, r.Addr)

	if r.Kind == trace.Store {
		sharers := cb.present &^ bit
		s.updates += uint64(popcount(sharers))
		forEachProc(sharers, func(q int) {
			count[q]--
			if count[q] == 0 {
				cb.present &^= 1 << uint(q)
				s.invalidate(q, blk)
			}
		})
		s.life.RecordStore(p, r.Addr)
	}
}

// RefBatch implements trace.BatchConsumer.
func (s *CU) RefBatch(refs []trace.Ref) {
	for _, r := range refs {
		s.Ref(r)
	}
}

// Finish implements Simulator.
func (s *CU) Finish() Result {
	res := s.result()
	res.Updates = s.updates
	return res
}
