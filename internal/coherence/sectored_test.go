package coherence

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

func TestNewSectoredValidation(t *testing.T) {
	g := mem.MustGeometry(64)
	for _, bad := range []int{0, 2, 3, 48, 128} {
		if _, err := NewSectored(4, g, bad); err == nil {
			t.Errorf("sector size %d accepted for 64-byte blocks", bad)
		}
	}
	sim, err := NewSectored(4, g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Name() != "SEC-16" {
		t.Errorf("name = %q", sim.Name())
	}
}

// Word-sized sectors are exactly WBWI.
func TestSectoredWordGrainEqualsWBWI(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := randomSyncTrace(rng, 6, 3000, 48)
	for _, g := range geometries() {
		sec, err := NewSectored(6, g, mem.WordBytes)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Drive(tr.Reader(), sec); err != nil {
			t.Fatal(err)
		}
		wbwi, err := RunWith("WBWI", tr.Reader(), g)
		if err != nil {
			t.Fatal(err)
		}
		if got := sec.Finish(); got.Misses != wbwi.Misses || got.Counts != wbwi.Counts {
			t.Errorf("%v: SEC-4 %+v != WBWI %+v", g, got.Counts, wbwi.Counts)
		}
	}
}

// Sector behavior: a store dirties its whole sector but not the others.
func TestSectoredGranularity(t *testing.T) {
	g := mem.MustGeometry(32)         // 8 words
	sim, err := NewSectored(2, g, 16) // 2 sectors of 4 words
	if err != nil {
		t.Fatal(err)
	}
	refs := []trace.Ref{
		trace.L(1, 0), // P1 caches the block
		trace.S(0, 1), // P0 dirties sector 0 (words 0-3) of P1's copy
		trace.L(1, 4), // sector 1 untouched: hit
		trace.L(1, 3), // sector 0, another word than the stored one: miss
	}
	for _, r := range refs {
		sim.Ref(r)
	}
	res := sim.Finish()
	if res.Misses != 3 {
		t.Errorf("misses = %d, want 3", res.Misses)
	}
	// The refetch reads word 3, which nobody wrote: useless.
	if res.Counts.PFS != 1 {
		t.Errorf("expected the sector-grain false-sharing miss: %+v", res.Counts)
	}
}

// Finer sectors can only remove misses (down to WBWI's word grain).
func TestSectoredMonotoneInGrain(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	tr := randomSyncTrace(rng, 6, 4000, 64)
	g := mem.MustGeometry(256)
	prev := uint64(0)
	for _, sector := range []int{4, 16, 64, 256} {
		sim, err := NewSectored(6, g, sector)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Drive(tr.Reader(), sim); err != nil {
			t.Fatal(err)
		}
		res := sim.Finish()
		if res.Misses < prev {
			t.Errorf("sector %d: misses %d < finer grain's %d", sector, res.Misses, prev)
		}
		prev = res.Misses
	}
}
