package coherence

// Fused multi-protocol differential suite: one fused replay feeding every
// schedule at once must reproduce, protocol by protocol and bit for bit,
// the Results of independent per-protocol replays — serially and over
// shard-native streams at every shard count.

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/trace"
)

// TestFusedProtocolsMatchSerial is the headline differential: the fused
// pass equals RunWith for every schedule, geometry and shard count.
func TestFusedProtocolsMatchSerial(t *testing.T) {
	protos := shardedProtocols()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomSyncTrace(rng, 6, 700, 56)
		open := func(int) (trace.Reader, error) { return tr.Reader(), nil }
		for _, g := range []mem.Geometry{mem.MustGeometry(8), mem.MustGeometry(64)} {
			want := make([]Result, len(protos))
			for i, name := range protos {
				res, err := RunWith(name, tr.Reader(), g)
				if err != nil {
					t.Log(err)
					return false
				}
				want[i] = res
			}
			for _, n := range shardCounts {
				got, err := RunProtocolsShardedOpen(context.Background(), open, tr.Procs, g, protos, n)
				if err != nil {
					t.Log(err)
					return false
				}
				for i := range protos {
					if got[i] != want[i] {
						t.Logf("%s %v shards=%d:\n got %+v\nwant %+v", protos[i], g, n, got[i], want[i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestFusible pins the predicate: every built-in schedule joins the fused
// pass; unknown names do not, and RunProtocolsShardedOpen rejects them
// before opening anything.
func TestFusible(t *testing.T) {
	for _, name := range shardedProtocols() {
		if !Fusible(name) {
			t.Errorf("built-in protocol %s reported non-fusible", name)
		}
	}
	if Fusible("BOGUS") {
		t.Error("unknown protocol reported fusible")
	}

	opened := false
	open := func(int) (trace.Reader, error) {
		opened = true
		return trace.New(2).Reader(), nil
	}
	if _, err := RunProtocolsShardedOpen(context.Background(), open, 2, mem.MustGeometry(16), []string{"OTF", "BOGUS"}, 4); err == nil {
		t.Error("expected an error for a non-fusible protocol")
	}
	if opened {
		t.Error("reader opened despite non-fusible protocol in the set")
	}

	// The empty protocol set is a no-op, not an error.
	res, err := RunProtocolsShardedOpen(context.Background(), open, 2, mem.MustGeometry(16), nil, 4)
	if err != nil || len(res) != 0 {
		t.Errorf("empty protocol set: got %v, %v", res, err)
	}
}
