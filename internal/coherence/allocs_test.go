package coherence

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// rdAllocRefs mixes loads, stores and acquires so the RD simulator exercises
// its miss, invalidation-buffer and acquire-drain paths on every pass.
func rdAllocRefs(procs, blocks int, g mem.Geometry) []trace.Ref {
	refs := make([]trace.Ref, 0, 4096)
	stride := mem.Addr(g.BlockBytes() / mem.WordBytes)
	for i := 0; i < 4096; i++ {
		p := i % procs
		a := mem.Addr(i%blocks)*stride + mem.Addr(i%4)
		switch i % 7 {
		case 0:
			refs = append(refs, trace.S(p, a))
		case 3:
			refs = append(refs, trace.A(p, 1))
		default:
			refs = append(refs, trace.L(p, a))
		}
	}
	return refs
}

// TestRDSteadyStateAllocs pins the receive-delayed simulator's hot path to
// zero steady-state allocations: the dense block table and the per-processor
// pending lists (drained with retained capacity at each acquire) must absorb
// a warmed-up pass without touching the heap.
func TestRDSteadyStateAllocs(t *testing.T) {
	g := mem.MustGeometry(64)
	refs := rdAllocRefs(4, 64, g)
	s := NewRD(4, g)
	s.RefBatch(refs) // warm up: block table + pendList capacities

	const ceiling = 0.0
	got := testing.AllocsPerRun(10, func() { s.RefBatch(refs) })
	if got > ceiling {
		t.Fatalf("RD steady state allocates %.1f allocs per pass, ceiling %.1f", got, ceiling)
	}
}
