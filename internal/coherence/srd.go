package coherence

import (
	"repro/internal/dense"
	"repro/internal/mem"
	"repro/internal/trace"
)

// SRD combines SD and RD (§4): stores to non-owned blocks are buffered at
// the sender until its next release (combining per block at the sending
// end), and invalidations are buffered at each receiver until its next
// acquire (combining at the receiving end).
type SRD struct {
	base
	blocks   *dense.Map[srdBlock]
	buffers  [][]sdPending // per proc: blocks with buffered stores
	pendList [][]mem.Block // per proc: blocks with buffered received invalidations
}

type srdBlock struct {
	present  uint64
	pending  uint64 // procs whose copy has a buffered received invalidation
	buffered uint64 // procs holding a buffered store to this block
	owner    int8
}

// NewSRD returns a send-and-receive-delayed simulator.
func NewSRD(procs int, g mem.Geometry) *SRD {
	return &SRD{
		base:     newBase("SRD", procs, g),
		blocks:   dense.NewMap[srdBlock](0),
		buffers:  make([][]sdPending, procs),
		pendList: make([][]mem.Block, procs),
	}
}

func (s *SRD) block(b mem.Block) *srdBlock {
	sb, existed := s.blocks.GetOrPut(uint64(b))
	if !existed {
		sb.owner = -1
	}
	return sb
}

// Ref implements trace.Consumer.
func (s *SRD) Ref(r trace.Ref) {
	p := int(r.Proc)
	switch r.Kind {
	case trace.Load:
		s.load(p, r.Addr)
	case trace.Store:
		s.store(p, r.Addr)
	case trace.Acquire:
		s.acquire(p)
	case trace.Release:
		s.release(p)
	}
}

// RefBatch implements trace.BatchConsumer.
func (s *SRD) RefBatch(refs []trace.Ref) {
	for _, r := range refs {
		s.Ref(r)
	}
}

func (s *SRD) load(p int, a mem.Addr) {
	s.dataRefs++
	sb := s.block(s.g.BlockOf(a))
	bit := uint64(1) << uint(p)
	if sb.present&bit == 0 {
		s.miss(p, a)
		sb.present |= bit
		sb.pending &^= bit
	}
	s.life.Access(p, a)
}

func (s *SRD) store(p int, a mem.Addr) {
	s.dataRefs++
	blk := s.g.BlockOf(a)
	sb := s.block(blk)
	bit := uint64(1) << uint(p)

	if sb.owner == int8(p) {
		// Owner stores complete immediately; the invalidations are
		// still receive-delayed.
		s.sendInvalidations(sb, blk, bit)
	} else {
		if sb.present&bit == 0 {
			s.miss(p, a)
			sb.present |= bit
			sb.pending &^= bit
		}
		if sb.buffered&bit == 0 {
			sb.buffered |= bit
			s.buffers[p] = append(s.buffers[p], sdPending{blk: blk, addr: a})
		}
	}
	s.life.Access(p, a)
	s.life.RecordStore(p, a)
}

// release flushes the store buffer: ownership is acquired per block and one
// combined invalidation per block goes out to the receivers' buffers.
func (s *SRD) release(p int) {
	bit := uint64(1) << uint(p)
	for _, pend := range s.buffers[p] {
		sb := s.blocks.Get(uint64(pend.blk))
		switch {
		case sb.present&bit == 0:
			s.miss(p, pend.addr)
			sb.present |= bit
			sb.pending &^= bit
		case sb.pending&bit != 0:
			// Taking ownership on a copy with a buffered
			// invalidation costs a miss (§2.2).
			s.life.CloseInvalidate(p, pend.blk)
			s.miss(p, pend.addr)
			sb.pending &^= bit
		case sb.owner != int8(p):
			s.upgrades++
		}
		sb.owner = int8(p)
		s.sendInvalidations(sb, pend.blk, bit)
		sb.buffered &^= bit
	}
	s.buffers[p] = s.buffers[p][:0]
}

// acquire performs all buffered received invalidations.
func (s *SRD) acquire(p int) {
	bit := uint64(1) << uint(p)
	for _, blk := range s.pendList[p] {
		sb := s.blocks.Get(uint64(blk))
		if sb.pending&bit == 0 {
			continue
		}
		sb.pending &^= bit
		sb.present &^= bit
		s.life.CloseInvalidate(p, blk)
	}
	s.pendList[p] = s.pendList[p][:0]
}

func (s *SRD) sendInvalidations(sb *srdBlock, blk mem.Block, bit uint64) {
	sharers := sb.present &^ bit
	if sharers == 0 {
		return
	}
	s.invalidations += uint64(popcount(sharers))
	newPending := sharers &^ sb.pending
	sb.pending |= sharers
	forEachProc(newPending, func(q int) {
		s.pendList[q] = append(s.pendList[q], blk)
	})
}

// Finish implements Simulator: pending sends are flushed and pending
// received invalidations performed, as if every processor ended with a
// release followed by an acquire.
func (s *SRD) Finish() Result {
	for p := range s.buffers {
		s.release(p)
	}
	for p := range s.pendList {
		s.acquire(p)
	}
	return s.result()
}
