package coherence

import (
	"repro/internal/mem"
	"repro/internal/trace"
)

// SRD combines SD and RD (§4): stores to non-owned blocks are buffered at
// the sender until its next release (combining per block at the sending
// end), and invalidations are buffered at each receiver until its next
// acquire (combining at the receiving end).
type SRD struct {
	base
	blocks   map[mem.Block]*srdBlock
	buffers  []sdBuffer    // per proc: blocks with buffered stores
	pendList [][]mem.Block // per proc: blocks with buffered received invalidations
}

type srdBlock struct {
	present uint64
	pending uint64 // procs whose copy has a buffered received invalidation
	owner   int8
}

// NewSRD returns a send-and-receive-delayed simulator.
func NewSRD(procs int, g mem.Geometry) *SRD {
	s := &SRD{
		base:     newBase("SRD", procs, g),
		blocks:   make(map[mem.Block]*srdBlock),
		buffers:  make([]sdBuffer, procs),
		pendList: make([][]mem.Block, procs),
	}
	for p := range s.buffers {
		s.buffers[p].member = make(map[mem.Block]bool)
	}
	return s
}

func (s *SRD) block(b mem.Block) *srdBlock {
	sb := s.blocks[b]
	if sb == nil {
		sb = &srdBlock{owner: -1}
		s.blocks[b] = sb
	}
	return sb
}

// Ref implements trace.Consumer.
func (s *SRD) Ref(r trace.Ref) {
	p := int(r.Proc)
	switch r.Kind {
	case trace.Load:
		s.load(p, r.Addr)
	case trace.Store:
		s.store(p, r.Addr)
	case trace.Acquire:
		s.acquire(p)
	case trace.Release:
		s.release(p)
	}
}

func (s *SRD) load(p int, a mem.Addr) {
	s.dataRefs++
	sb := s.block(s.g.BlockOf(a))
	bit := uint64(1) << uint(p)
	if sb.present&bit == 0 {
		s.miss(p, a)
		sb.present |= bit
		sb.pending &^= bit
	}
	s.life.Access(p, a)
}

func (s *SRD) store(p int, a mem.Addr) {
	s.dataRefs++
	blk := s.g.BlockOf(a)
	sb := s.block(blk)
	bit := uint64(1) << uint(p)

	if sb.owner == int8(p) {
		// Owner stores complete immediately; the invalidations are
		// still receive-delayed.
		s.sendInvalidations(sb, blk, bit)
	} else {
		if sb.present&bit == 0 {
			s.miss(p, a)
			sb.present |= bit
			sb.pending &^= bit
		}
		buf := &s.buffers[p]
		if !buf.member[blk] {
			buf.member[blk] = true
			buf.blocks = append(buf.blocks, sdPending{blk: blk, addr: a})
		}
	}
	s.life.Access(p, a)
	s.life.RecordStore(p, a)
}

// release flushes the store buffer: ownership is acquired per block and one
// combined invalidation per block goes out to the receivers' buffers.
func (s *SRD) release(p int) {
	buf := &s.buffers[p]
	bit := uint64(1) << uint(p)
	for _, pend := range buf.blocks {
		sb := s.blocks[pend.blk]
		switch {
		case sb.present&bit == 0:
			s.miss(p, pend.addr)
			sb.present |= bit
			sb.pending &^= bit
		case sb.pending&bit != 0:
			// Taking ownership on a copy with a buffered
			// invalidation costs a miss (§2.2).
			s.life.CloseInvalidate(p, pend.blk)
			s.miss(p, pend.addr)
			sb.pending &^= bit
		case sb.owner != int8(p):
			s.upgrades++
		}
		sb.owner = int8(p)
		s.sendInvalidations(sb, pend.blk, bit)
		delete(buf.member, pend.blk)
	}
	buf.blocks = buf.blocks[:0]
}

// acquire performs all buffered received invalidations.
func (s *SRD) acquire(p int) {
	bit := uint64(1) << uint(p)
	for _, blk := range s.pendList[p] {
		sb := s.blocks[blk]
		if sb.pending&bit == 0 {
			continue
		}
		sb.pending &^= bit
		sb.present &^= bit
		s.life.CloseInvalidate(p, blk)
	}
	s.pendList[p] = s.pendList[p][:0]
}

func (s *SRD) sendInvalidations(sb *srdBlock, blk mem.Block, bit uint64) {
	sharers := sb.present &^ bit
	if sharers == 0 {
		return
	}
	s.invalidations += uint64(popcount(sharers))
	newPending := sharers &^ sb.pending
	sb.pending |= sharers
	forEachProc(newPending, func(q int) {
		s.pendList[q] = append(s.pendList[q], blk)
	})
}

// Finish implements Simulator: pending sends are flushed and pending
// received invalidations performed, as if every processor ended with a
// release followed by an acquire.
func (s *SRD) Finish() Result {
	for p := range s.buffers {
		s.release(p)
	}
	for p := range s.pendList {
		s.acquire(p)
	}
	return s.result()
}
