package coherence

import (
	"repro/internal/obs"
)

// Protocol-simulation counters, bumped once per simulator Finish via
// base.result() (every protocol funnels through it). Sharded runs call
// Finish once per shard and each data reference lands on exactly one
// shard, so both totals are invariant across -j and -shards.
var (
	mCoherenceRefs = obs.Default.Counter(obs.NameCoherenceRefs)
	mCoherenceMiss = obs.Default.Counter(obs.NameCoherenceMiss)
)
