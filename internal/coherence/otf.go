package coherence

import (
	"repro/internal/dense"
	"repro/internal/mem"
	"repro/internal/trace"
)

// OTF is the on-the-fly schedule: every store's invalidations are performed
// immediately, before the next trace reference. Its miss rate is "the miss
// rate usually derived when using trace-driven simulations" (§4), and its
// miss decomposition is exactly the paper's Appendix A classification.
type OTF struct {
	base
	present *dense.Map[uint64]
}

// NewOTF returns an on-the-fly simulator.
func NewOTF(procs int, g mem.Geometry) *OTF {
	return &OTF{base: newBase("OTF", procs, g), present: dense.NewMap[uint64](0)}
}

// Ref implements trace.Consumer. Synchronization references are free under
// OTF: there is nothing to delay.
func (s *OTF) Ref(r trace.Ref) {
	if !r.Kind.IsData() {
		return
	}
	s.dataRefs++
	p := int(r.Proc)
	blk := s.g.BlockOf(r.Addr)
	bit := uint64(1) << uint(p)

	present, _ := s.present.GetOrPut(uint64(blk))
	missed := *present&bit == 0
	if missed {
		s.miss(p, r.Addr)
		*present |= bit
	}
	s.life.Access(p, r.Addr)

	if r.Kind == trace.Store {
		others := *present &^ bit
		if others != 0 {
			if !missed {
				s.upgrades++ // ownership taken without a miss
			}
			forEachProc(others, func(q int) { s.invalidate(q, blk) })
			*present = bit
		}
		s.life.RecordStore(p, r.Addr)
	}
}

// RefBatch implements trace.BatchConsumer.
func (s *OTF) RefBatch(refs []trace.Ref) {
	for _, r := range refs {
		s.Ref(r)
	}
}

// Finish implements Simulator.
func (s *OTF) Finish() Result { return s.result() }
