package coherence

import (
	"fmt"
	"math/bits"

	"repro/internal/dense"
	"repro/internal/mem"
	"repro/internal/trace"
)

// WBWI is the write-back word-invalidate protocol (§4): like MIN it keeps a
// dirty bit per word and invalidates a copy only when a buffered per-word
// invalidation is actually touched, but it maintains ownership to avoid
// write-through traffic. The cost of ownership (§2.2): a store to a
// non-owned copy with a buffered invalidation on ANY word of the block must
// miss, where MIN would have kept writing through.
type WBWI struct {
	base
	blocks *dense.Map[wbwiBlock]
	// pendSlab holds one cell per block (sectors words); cntSlab holds one
	// cell per block (procs counters, limited buffers only). Both are
	// created on the first block since NewSectored/NewWBWILimited adjust
	// the cell sizes after NewWBWI.
	pendSlab *dense.Arena[uint64]
	cntSlab  *dense.Arena[uint16]
	// sectorShift maps word offsets to invalidation sectors: 0 gives the
	// paper's word-grain WBWI; larger shifts coarsen the invalidation
	// grain up to the whole block (see NewSectored).
	sectorShift uint
	sectors     int
	// limit caps the per-copy invalidation buffer: at most limit words
	// of a copy may carry buffered invalidations; one more invalidates
	// the whole copy immediately. 0 means unlimited (a dirty bit per
	// word, the paper's WBWI). Small limits interpolate toward OTF and
	// model the hardware-cost concern of §7: "WBWI requires one dirty
	// bit per word whereas RD only needs one stale bit per block".
	limit int
}

type wbwiBlock struct {
	present uint64 // procs with a copy
	pendAny uint64 // procs with a buffered invalidation on >= 1 word
	owner   int8   // current owner, -1 if none yet
	pend    uint32 // arena handle, per word: procs with a buffered invalidation
	cnt     uint32 // arena handle, per proc: buffered words (limited buffers only)
}

// NewWBWI returns a WBWI simulator with an unlimited invalidation buffer
// (one dirty bit per word).
func NewWBWI(procs int, g mem.Geometry) *WBWI {
	return &WBWI{
		base:    newBase("WBWI", procs, g),
		blocks:  dense.NewMap[wbwiBlock](0),
		sectors: g.WordsPerBlock(),
	}
}

// NewSectored returns a WBWI-style simulator that invalidates at sector
// granularity instead of word granularity: remote stores mark the enclosing
// sector of every copy dirty, and touching a dirty sector misses. With
// sectorBytes equal to the word size this is exactly WBWI; with sectorBytes
// equal to the block size it degenerates to full-block invalidation. This
// is the §7 outlook — "systems with multiple block sizes, or even systems
// in which coherence is maintained on individual words" — as a runnable
// design point: fetch at the block size, keep coherence at the sector size.
func NewSectored(procs int, g mem.Geometry, sectorBytes int) (*WBWI, error) {
	if sectorBytes < mem.WordBytes || sectorBytes > g.BlockBytes() || sectorBytes&(sectorBytes-1) != 0 {
		return nil, fmt.Errorf("coherence: sector size %d not a power of two in [%d,%d]",
			sectorBytes, mem.WordBytes, g.BlockBytes())
	}
	s := NewWBWI(procs, g)
	s.name = fmt.Sprintf("SEC-%d", sectorBytes)
	sectorWords := sectorBytes / mem.WordBytes
	for 1<<s.sectorShift < sectorWords {
		s.sectorShift++
	}
	s.sectors = g.WordsPerBlock() >> s.sectorShift
	return s, nil
}

// NewWBWILimited returns a WBWI simulator whose per-copy invalidation
// buffer holds at most entries words; a store that would exceed it
// invalidates the victim copy outright.
func NewWBWILimited(procs int, g mem.Geometry, entries int) (*WBWI, error) {
	if entries < 1 {
		return nil, fmt.Errorf("coherence: WBWI buffer size %d < 1", entries)
	}
	s := NewWBWI(procs, g)
	s.limit = entries
	return s, nil
}

func (s *WBWI) block(b mem.Block) *wbwiBlock {
	wb, existed := s.blocks.GetOrPut(uint64(b))
	if !existed {
		if s.pendSlab == nil {
			s.pendSlab = dense.NewArena[uint64](s.sectors)
			if s.limit > 0 {
				s.cntSlab = dense.NewArena[uint16](s.procs)
			}
		}
		wb.owner = -1
		wb.pend = s.pendSlab.Alloc()
		if s.limit > 0 {
			wb.cnt = s.cntSlab.Alloc()
		}
	}
	return wb
}

// Ref implements trace.Consumer.
func (s *WBWI) Ref(r trace.Ref) {
	if !r.Kind.IsData() {
		return
	}
	s.dataRefs++
	p := int(r.Proc)
	blk := s.g.BlockOf(r.Addr)
	wb := s.block(blk)
	pend := s.pendSlab.Slice(wb.pend)
	bit := uint64(1) << uint(p)
	off := s.g.OffsetOf(r.Addr) >> s.sectorShift

	if r.Kind == trace.Load {
		switch {
		case wb.present&bit == 0:
			s.miss(p, r.Addr)
			wb.present |= bit
			s.clear(wb, pend, bit)
		case pend[off]&bit != 0: // touched a word-invalidated word
			s.life.CloseInvalidate(p, blk)
			s.miss(p, r.Addr)
			s.clear(wb, pend, bit)
		}
		s.life.Access(p, r.Addr)
		return
	}

	// Store: acquire ownership.
	switch {
	case wb.present&bit == 0:
		s.miss(p, r.Addr)
		wb.present |= bit
		s.clear(wb, pend, bit)
	case wb.pendAny&bit != 0:
		// Ownership on a copy with any buffered word invalidation
		// costs a miss: the fresh copy is fetched from the owner.
		s.life.CloseInvalidate(p, blk)
		s.miss(p, r.Addr)
		s.clear(wb, pend, bit)
	case wb.owner != int8(p):
		s.upgrades++
	}
	wb.owner = int8(p)
	s.life.Access(p, r.Addr)

	sharers := wb.present &^ bit
	if sharers != 0 {
		s.invalidations += uint64(popcount(sharers))
		newly := sharers &^ pend[off]
		pend[off] |= sharers
		wb.pendAny |= sharers
		if s.limit > 0 && newly != 0 {
			s.chargeBuffer(wb, pend, blk, newly)
		}
	}
	s.life.RecordStore(p, r.Addr)
}

// RefBatch implements trace.BatchConsumer.
func (s *WBWI) RefBatch(refs []trace.Ref) {
	for _, r := range refs {
		s.Ref(r)
	}
}

// chargeBuffer accounts one buffered word for each processor in mask and
// invalidates any copy whose buffer would overflow.
func (s *WBWI) chargeBuffer(wb *wbwiBlock, pend []uint64, blk mem.Block, mask uint64) {
	cnt := s.cntSlab.Slice(wb.cnt)
	forEachProc(mask, func(q int) {
		cnt[q]++
		if int(cnt[q]) <= s.limit {
			return
		}
		// Overflow: the hardware falls back to invalidating the
		// whole copy at once.
		qbit := uint64(1) << uint(q)
		wb.present &^= qbit
		s.clear(wb, pend, qbit)
		s.life.CloseInvalidate(q, blk)
	})
}

func (s *WBWI) clear(wb *wbwiBlock, pend []uint64, bit uint64) {
	if wb.cnt != 0 {
		s.cntSlab.Slice(wb.cnt)[bits.TrailingZeros64(bit)] = 0
	}
	if wb.pendAny&bit == 0 {
		return
	}
	clearPending(pend, bit)
	wb.pendAny &^= bit
}

// Finish implements Simulator.
func (s *WBWI) Finish() Result { return s.result() }
