package coherence

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// WU leaves only cold misses: updating instead of invalidating removes
// every coherence miss with infinite caches.
func TestWUOnlyColdMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomSyncTrace(rng, 6, 2000, 48)
	for _, g := range geometries() {
		res, err := RunWith("WU", tr.Reader(), g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Misses != res.Counts.Cold() {
			t.Errorf("%v: WU misses %d != cold %d", g, res.Misses, res.Counts.Cold())
		}
		min, err := RunWith("MIN", tr.Reader(), g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Misses > min.Misses {
			t.Errorf("%v: WU %d > MIN %d — updates must cut essential misses", g, res.Misses, min.Misses)
		}
		if res.Updates == 0 {
			t.Errorf("%v: no update traffic recorded", g)
		}
	}
}

// CU sits between WU (threshold -> infinity) and an invalidation protocol
// (threshold = 1 behaves like invalidate-on-second-store).
func TestCUBoundedByWUAndOTF(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := randomSyncTrace(rng, 6, 3000, 32)
	g := mem.MustGeometry(32)
	wu, err := RunWith("WU", tr.Reader(), g)
	if err != nil {
		t.Fatal(err)
	}
	prev := wu.Misses // threshold=infinity floor
	for _, threshold := range []int{64, 8, 2, 1} {
		sim, err := NewCU(6, g, threshold)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Drive(tr.Reader(), sim); err != nil {
			t.Fatal(err)
		}
		res := sim.Finish()
		if res.Misses < prev {
			t.Errorf("threshold %d: misses %d fell below the looser setting %d",
				threshold, res.Misses, prev)
		}
		prev = res.Misses
	}
}

func TestCUSelfInvalidation(t *testing.T) {
	g := mem.MustGeometry(8)
	sim, err := NewCU(2, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	refs := []trace.Ref{
		trace.L(1, 0), // P1 caches the block (countdown 2)
		trace.S(0, 0), // update 1: countdown 1
		trace.S(0, 0), // update 2: countdown 0 -> P1 self-invalidates
		trace.L(1, 0), // P1 misses (PTS: it reads the new value)
		trace.S(0, 0), // P1's countdown was reset by its access: update 1
		trace.L(1, 0), // still a hit
	}
	for _, r := range refs {
		sim.Ref(r)
	}
	res := sim.Finish()
	// Misses: P1 cold, P0 cold (first store), P1 refetch.
	if res.Misses != 3 {
		t.Errorf("misses = %d, want 3", res.Misses)
	}
	if res.Counts.PTS != 1 {
		t.Errorf("refetch should be essential: %+v", res.Counts)
	}
	if res.Updates != 3 {
		t.Errorf("updates = %d, want 3", res.Updates)
	}
}

func TestCUThresholdValidation(t *testing.T) {
	g := mem.MustGeometry(8)
	for _, bad := range []int{0, -1, 256} {
		if _, err := NewCU(2, g, bad); err == nil {
			t.Errorf("threshold %d accepted", bad)
		}
	}
}

func TestExtensionProtocolsRegistered(t *testing.T) {
	for _, name := range ExtensionProtocols {
		sim, err := New(name, 4, mem.MustGeometry(16))
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if sim.Name() != name {
			t.Errorf("Name = %q, want %q", sim.Name(), name)
		}
	}
	// The paper's seven stay separate from the extensions.
	for _, name := range Protocols {
		if name == "WU" || name == "CU" {
			t.Error("extension protocol leaked into the paper's list")
		}
	}
}

// The update protocols' miss decomposition stays consistent with the
// internal counter, like every other simulator.
func TestUpdateProtocolsDecompositionConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := randomSyncTrace(rng, 5, 2000, 64)
	for _, name := range ExtensionProtocols {
		for _, g := range geometries() {
			res, err := RunWith(name, tr.Reader(), g)
			if err != nil {
				t.Fatal(err)
			}
			if res.Misses != res.Counts.Total() {
				t.Errorf("%s %v: counter %d != classified %d", name, g, res.Misses, res.Counts.Total())
			}
			if res.Counts.Cold() == 0 && tr.DataRefs() > 0 {
				t.Errorf("%s %v: no cold misses", name, g)
			}
		}
	}
	// Cold counts agree with the invalidation protocols.
	g := mem.MustGeometry(16)
	otf, _ := RunWith("OTF", tr.Reader(), g)
	wu, _ := RunWith("WU", tr.Reader(), g)
	if otf.Counts.Cold() != wu.Counts.Cold() {
		t.Errorf("cold counts differ: OTF %d, WU %d", otf.Counts.Cold(), wu.Counts.Cold())
	}
}
