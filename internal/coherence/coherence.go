// Package coherence simulates the paper's seven invalidation schedules over
// reference traces (§4): the write-through word-invalidate minimum (MIN),
// the plain on-the-fly schedule (OTF), receive-delayed (RD), send-delayed
// (SD), send-and-receive-delayed (SRD), write-back word-invalidate (WBWI),
// and the worst-case schedule consistent with release consistency (MAX).
//
// All simulators model infinite caches with a write-invalidate policy.
// Misses are decomposed into cold / pure-true-sharing / pure-false-sharing
// using the communication-flag machinery of package core, applied to each
// protocol's own lifetimes, so Fig. 6's per-protocol miss splits can be
// regenerated.
//
// Ownership follows §2.2: a store needs ownership; acquiring it on a copy
// that carries a pending invalidation costs a miss ("the cost of
// maintaining ownership"), while acquiring it on a clean shared copy is a
// free upgrade.
package coherence

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Result reports a protocol run: the miss decomposition and traffic counts.
type Result struct {
	Protocol string
	// Counts decomposes the protocol's misses: cold (PC+CTS+CFS),
	// pure true sharing (PTS) and pure false sharing (PFS).
	Counts core.Counts
	// DataRefs is the number of load/store references: the miss-rate
	// denominator.
	DataRefs uint64
	// Misses is the protocol's miss count, tracked independently of
	// Counts as a cross-check; it always equals Counts.Total().
	Misses uint64
	// Invalidations is the number of invalidation messages delivered to
	// remote copies (word-grain for MIN/WBWI, block-grain otherwise).
	Invalidations uint64
	// Upgrades counts ownership acquisitions that did not need a miss.
	Upgrades uint64
	// WriteThroughs counts store propagations in write-through protocols
	// (MIN only).
	WriteThroughs uint64
	// Updates counts value-update messages delivered to remote copies
	// (the WU/CU extension protocols only).
	Updates uint64
}

// MissRate returns the total miss rate in percent of data references.
func (r Result) MissRate() float64 { return core.Rate(r.Misses, r.DataRefs) }

// Simulator consumes a trace and produces a Result. Implementations are
// single-use: create one per run.
type Simulator interface {
	trace.Consumer
	// Finish flushes end-of-trace state and returns the result.
	Finish() Result
	// Name returns the paper's name for the schedule (e.g. "WBWI").
	Name() string
}

// Protocols lists the schedule names in the order the paper's Fig. 6 plots
// them.
var Protocols = []string{"MIN", "OTF", "RD", "SD", "SRD", "WBWI", "MAX"}

// New returns a fresh simulator for the named protocol.
func New(name string, procs int, g mem.Geometry) (Simulator, error) {
	switch name {
	case "MIN":
		return NewMIN(procs, g), nil
	case "OTF":
		return NewOTF(procs, g), nil
	case "RD":
		return NewRD(procs, g), nil
	case "SD":
		return NewSD(procs, g), nil
	case "SRD":
		return NewSRD(procs, g), nil
	case "WBWI":
		return NewWBWI(procs, g), nil
	case "MAX":
		return NewMAX(procs, g), nil
	case "WU":
		return NewWU(procs, g), nil
	case "CU":
		return NewCU(procs, g, DefaultCompetitiveThreshold)
	default:
		return nil, fmt.Errorf("coherence: unknown protocol %q", name)
	}
}

// base carries the bookkeeping shared by every simulator.
type base struct {
	g     mem.Geometry
	procs int
	life  *core.Lifetimes

	name          string
	dataRefs      uint64
	misses        uint64
	invalidations uint64
	upgrades      uint64
	writeThroughs uint64
}

func newBase(name string, procs int, g mem.Geometry) base {
	return base{g: g, procs: procs, life: core.NewLifetimes(procs, g), name: name}
}

// Name implements Simulator.
func (b *base) Name() string { return b.name }

// MissCount returns the misses recorded so far. The timing model reads it
// around each reference to attribute blocking cycles.
func (b *base) MissCount() uint64 { return b.misses }

// UpgradeCount returns the ownership upgrades recorded so far.
func (b *base) UpgradeCount() uint64 { return b.upgrades }

// miss records a miss by p at a and opens its lifetime.
func (b *base) miss(p int, a mem.Addr) {
	b.misses++
	b.life.OpenMiss(p, a)
}

// invalidate ends q's lifetime on block blk and counts one delivered
// invalidation message.
func (b *base) invalidate(q int, blk mem.Block) {
	b.invalidations++
	b.life.CloseInvalidate(q, blk)
}

func (b *base) result() Result {
	mCoherenceRefs.Add(b.dataRefs)
	mCoherenceMiss.Add(b.misses)
	return Result{
		Protocol:      b.name,
		Counts:        b.life.Finish(),
		DataRefs:      b.dataRefs,
		Misses:        b.misses,
		Invalidations: b.invalidations,
		Upgrades:      b.upgrades,
		WriteThroughs: b.writeThroughs,
	}
}

// forEachProc calls fn for every processor in mask.
func forEachProc(mask uint64, fn func(p int)) {
	for mask != 0 {
		p := bits.TrailingZeros64(mask)
		mask &^= 1 << uint(p)
		fn(p)
	}
}

// RunWith replays a trace stream through the named protocol at geometry g.
func RunWith(name string, r trace.Reader, g mem.Geometry) (Result, error) {
	sim, err := New(name, r.NumProcs(), g)
	if err != nil {
		return Result{}, err
	}
	if err := trace.Drive(r, sim); err != nil {
		return Result{}, err
	}
	return sim.Finish(), nil
}
