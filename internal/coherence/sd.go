package coherence

import (
	"repro/internal/mem"
	"repro/internal/trace"
)

// SD is the send-delayed protocol (§4): a store by the block's owner
// completes immediately (its invalidations are performed at once), while a
// store to a non-owned block is buffered; all buffered stores are sent —
// combined per block — at the processor's next release, acquiring ownership
// then. Received invalidations are performed immediately in the cache.
type SD struct {
	base
	blocks  map[mem.Block]*sdBlock
	buffers []sdBuffer // per proc: blocks with buffered stores
}

type sdBlock struct {
	present uint64
	owner   int8
}

// sdBuffer is a per-processor store buffer holding one entry per block
// (stores to the same block combine).
type sdBuffer struct {
	blocks []sdPending
	member map[mem.Block]bool
}

// sdPending remembers one buffered-store block and a word address inside it
// (used to reopen a lifetime if the flush has to refetch).
type sdPending struct {
	blk  mem.Block
	addr mem.Addr
}

// NewSD returns a send-delayed simulator.
func NewSD(procs int, g mem.Geometry) *SD {
	s := &SD{
		base:    newBase("SD", procs, g),
		blocks:  make(map[mem.Block]*sdBlock),
		buffers: make([]sdBuffer, procs),
	}
	for p := range s.buffers {
		s.buffers[p].member = make(map[mem.Block]bool)
	}
	return s
}

func (s *SD) block(b mem.Block) *sdBlock {
	sb := s.blocks[b]
	if sb == nil {
		sb = &sdBlock{owner: -1}
		s.blocks[b] = sb
	}
	return sb
}

// Ref implements trace.Consumer.
func (s *SD) Ref(r trace.Ref) {
	p := int(r.Proc)
	switch r.Kind {
	case trace.Load:
		s.load(p, r.Addr)
	case trace.Store:
		s.store(p, r.Addr)
	case trace.Release:
		s.release(p)
	}
}

func (s *SD) load(p int, a mem.Addr) {
	s.dataRefs++
	sb := s.block(s.g.BlockOf(a))
	bit := uint64(1) << uint(p)
	if sb.present&bit == 0 {
		s.miss(p, a)
		sb.present |= bit
	}
	s.life.Access(p, a)
}

func (s *SD) store(p int, a mem.Addr) {
	s.dataRefs++
	blk := s.g.BlockOf(a)
	sb := s.block(blk)
	bit := uint64(1) << uint(p)

	if sb.owner == int8(p) {
		// The owner's store completes without delay: invalidate any
		// copies that appeared since it took ownership.
		s.invalidateSharers(sb, blk, bit)
	} else {
		if sb.present&bit == 0 {
			s.miss(p, a) // the data is needed now; only the send is delayed
			sb.present |= bit
		}
		buf := &s.buffers[p]
		if !buf.member[blk] {
			buf.member[blk] = true
			buf.blocks = append(buf.blocks, sdPending{blk: blk, addr: a})
		}
	}
	s.life.Access(p, a)
	s.life.RecordStore(p, a)
}

// release flushes the processor's store buffer: each buffered block's
// combined invalidation is sent (and performed immediately at the
// receivers), and the processor takes ownership. A copy lost between the
// buffered store and the release must be refetched: a miss.
func (s *SD) release(p int) {
	buf := &s.buffers[p]
	bit := uint64(1) << uint(p)
	for _, pend := range buf.blocks {
		sb := s.blocks[pend.blk]
		if sb.present&bit == 0 {
			// Someone else took ownership in between and
			// invalidated our copy; refetch to complete the store.
			s.miss(p, pend.addr)
			sb.present |= bit
		} else if sb.owner != int8(p) {
			s.upgrades++
		}
		sb.owner = int8(p)
		s.invalidateSharers(sb, pend.blk, bit)
		delete(buf.member, pend.blk)
	}
	buf.blocks = buf.blocks[:0]
}

func (s *SD) invalidateSharers(sb *sdBlock, blk mem.Block, bit uint64) {
	sharers := sb.present &^ bit
	if sharers == 0 {
		return
	}
	forEachProc(sharers, func(q int) { s.invalidate(q, blk) })
	sb.present &= bit
}

// Finish implements Simulator. Stores still buffered at the end of the
// trace are flushed first, as if each processor ended with a release.
func (s *SD) Finish() Result {
	for p := range s.buffers {
		s.release(p)
	}
	return s.result()
}
