package coherence

import (
	"repro/internal/dense"
	"repro/internal/mem"
	"repro/internal/trace"
)

// SD is the send-delayed protocol (§4): a store by the block's owner
// completes immediately (its invalidations are performed at once), while a
// store to a non-owned block is buffered; all buffered stores are sent —
// combined per block — at the processor's next release, acquiring ownership
// then. Received invalidations are performed immediately in the cache.
type SD struct {
	base
	blocks  *dense.Map[sdBlock]
	buffers [][]sdPending // per proc: blocks with buffered stores
}

type sdBlock struct {
	present  uint64
	buffered uint64 // procs holding a buffered store to this block
	owner    int8
}

// sdPending remembers one buffered-store block and a word address inside it
// (used to reopen a lifetime if the flush has to refetch).
type sdPending struct {
	blk  mem.Block
	addr mem.Addr
}

// NewSD returns a send-delayed simulator.
func NewSD(procs int, g mem.Geometry) *SD {
	return &SD{
		base:    newBase("SD", procs, g),
		blocks:  dense.NewMap[sdBlock](0),
		buffers: make([][]sdPending, procs),
	}
}

func (s *SD) block(b mem.Block) *sdBlock {
	sb, existed := s.blocks.GetOrPut(uint64(b))
	if !existed {
		sb.owner = -1
	}
	return sb
}

// Ref implements trace.Consumer.
func (s *SD) Ref(r trace.Ref) {
	p := int(r.Proc)
	switch r.Kind {
	case trace.Load:
		s.load(p, r.Addr)
	case trace.Store:
		s.store(p, r.Addr)
	case trace.Release:
		s.release(p)
	}
}

// RefBatch implements trace.BatchConsumer.
func (s *SD) RefBatch(refs []trace.Ref) {
	for _, r := range refs {
		s.Ref(r)
	}
}

func (s *SD) load(p int, a mem.Addr) {
	s.dataRefs++
	sb := s.block(s.g.BlockOf(a))
	bit := uint64(1) << uint(p)
	if sb.present&bit == 0 {
		s.miss(p, a)
		sb.present |= bit
	}
	s.life.Access(p, a)
}

func (s *SD) store(p int, a mem.Addr) {
	s.dataRefs++
	blk := s.g.BlockOf(a)
	sb := s.block(blk)
	bit := uint64(1) << uint(p)

	if sb.owner == int8(p) {
		// The owner's store completes without delay: invalidate any
		// copies that appeared since it took ownership.
		s.invalidateSharers(sb, blk, bit)
	} else {
		if sb.present&bit == 0 {
			s.miss(p, a) // the data is needed now; only the send is delayed
			sb.present |= bit
		}
		if sb.buffered&bit == 0 {
			sb.buffered |= bit
			s.buffers[p] = append(s.buffers[p], sdPending{blk: blk, addr: a})
		}
	}
	s.life.Access(p, a)
	s.life.RecordStore(p, a)
}

// release flushes the processor's store buffer: each buffered block's
// combined invalidation is sent (and performed immediately at the
// receivers), and the processor takes ownership. A copy lost between the
// buffered store and the release must be refetched: a miss.
func (s *SD) release(p int) {
	bit := uint64(1) << uint(p)
	for _, pend := range s.buffers[p] {
		sb := s.blocks.Get(uint64(pend.blk))
		if sb.present&bit == 0 {
			// Someone else took ownership in between and
			// invalidated our copy; refetch to complete the store.
			s.miss(p, pend.addr)
			sb.present |= bit
		} else if sb.owner != int8(p) {
			s.upgrades++
		}
		sb.owner = int8(p)
		s.invalidateSharers(sb, pend.blk, bit)
		sb.buffered &^= bit
	}
	s.buffers[p] = s.buffers[p][:0]
}

func (s *SD) invalidateSharers(sb *sdBlock, blk mem.Block, bit uint64) {
	sharers := sb.present &^ bit
	if sharers == 0 {
		return
	}
	forEachProc(sharers, func(q int) { s.invalidate(q, blk) })
	sb.present &= bit
}

// Finish implements Simulator. Stores still buffered at the end of the
// trace are flushed first, as if each processor ended with a release.
func (s *SD) Finish() Result {
	for p := range s.buffers {
		s.release(p)
	}
	return s.result()
}
