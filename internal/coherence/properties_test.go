package coherence

// Cross-protocol property tests on random traces:
//
//   - MIN's miss count equals the Appendix-A essential miss count, and MIN
//     never produces a false-sharing miss (§2.2);
//   - OTF's decomposition is identical to the Appendix-A classification;
//   - MAX dominates OTF; OTF and WBWI dominate MIN;
//   - every protocol's cold count is the same (cold misses are
//     schedule-independent);
//   - the internal miss counter always equals the classified total;
//   - when every store is followed by a release and an acquire on every
//     processor ("fully synchronized"), the delayed protocols degenerate to
//     OTF's miss count.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

// randomSyncTrace interleaves data references over a small contended range
// with occasional acquire/release pairs, so that the delayed protocols'
// drain points are exercised.
func randomSyncTrace(rng *rand.Rand, procs, n, addrRange int) *trace.Trace {
	tr := trace.New(procs)
	for i := 0; i < n; i++ {
		p := rng.Intn(procs)
		switch rng.Intn(10) {
		case 0:
			tr.Append(trace.A(p, mem.Addr(addrRange)))
		case 1:
			tr.Append(trace.R(p, mem.Addr(addrRange)))
		case 2, 3, 4:
			tr.Append(trace.S(p, mem.Addr(rng.Intn(addrRange))))
		default:
			tr.Append(trace.L(p, mem.Addr(rng.Intn(addrRange))))
		}
	}
	return tr
}

// saturate inserts, after every data reference, a release by its processor
// and an acquire by every processor, making all delay windows empty.
func saturate(tr *trace.Trace) *trace.Trace {
	out := trace.New(tr.Procs)
	for _, r := range tr.Refs {
		out.Append(r)
		if !r.Kind.IsData() {
			continue
		}
		out.Append(trace.R(int(r.Proc), 1<<20))
		for p := 0; p < tr.Procs; p++ {
			out.Append(trace.A(p, 1<<20))
		}
	}
	return out
}

func geometries() []mem.Geometry {
	return []mem.Geometry{
		mem.MustGeometry(4),
		mem.MustGeometry(8),
		mem.MustGeometry(32),
		mem.MustGeometry(128),
	}
}

func TestMINEqualsEssential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomSyncTrace(rng, 6, 600, 48)
		for _, g := range geometries() {
			counts, _, err := core.Classify(tr.Reader(), g)
			if err != nil {
				return false
			}
			res, err := RunWith("MIN", tr.Reader(), g)
			if err != nil {
				return false
			}
			if res.Misses != counts.Essential() {
				t.Logf("%v: MIN %d != essential %d", g, res.Misses, counts.Essential())
				return false
			}
			if res.Counts.PFS != 0 {
				t.Logf("%v: MIN produced PFS: %+v", g, res.Counts)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMINNoFalseSharingSmallTraces brute-forces thousands of short
// contended traces; MIN must never classify a useless miss. This guards the
// timestamped communication tracking in core.Lifetimes (a bit-per-word
// scheme fails here by conflating pre- and post-cold definitions).
func TestMINNoFalseSharingSmallTraces(t *testing.T) {
	g := mem.MustGeometry(8)
	for seed := int64(0); seed < 3000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		tr := trace.New(3)
		for i := 0; i < n; i++ {
			p := rng.Intn(3)
			if rng.Intn(2) == 0 {
				tr.Append(trace.S(p, mem.Addr(rng.Intn(4))))
			} else {
				tr.Append(trace.L(p, mem.Addr(rng.Intn(4))))
			}
		}
		res, err := RunWith("MIN", tr.Reader(), g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Counts.PFS != 0 {
			t.Fatalf("seed %d: MIN produced false sharing %+v\ntrace: %v", seed, res.Counts, tr.Refs)
		}
		counts, _, err := core.Classify(tr.Reader(), g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Misses != counts.Essential() {
			t.Fatalf("seed %d: MIN %d != essential %d\ntrace: %v", seed, res.Misses, counts.Essential(), tr.Refs)
		}
	}
}

func TestOTFMatchesClassifier(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomSyncTrace(rng, 5, 500, 64)
		for _, g := range geometries() {
			counts, refs, err := core.Classify(tr.Reader(), g)
			if err != nil {
				return false
			}
			res, err := RunWith("OTF", tr.Reader(), g)
			if err != nil {
				return false
			}
			if res.Counts != counts || res.DataRefs != refs {
				t.Logf("%v: OTF %+v != classifier %+v", g, res.Counts, counts)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDominanceOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomSyncTrace(rng, 6, 800, 40)
		for _, g := range geometries() {
			min, _ := RunWith("MIN", tr.Reader(), g)
			otf, _ := RunWith("OTF", tr.Reader(), g)
			max, _ := RunWith("MAX", tr.Reader(), g)
			wbwi, _ := RunWith("WBWI", tr.Reader(), g)
			if otf.Misses < min.Misses {
				t.Logf("%v: OTF %d < MIN %d", g, otf.Misses, min.Misses)
				return false
			}
			if max.Misses < otf.Misses {
				t.Logf("%v: MAX %d < OTF %d", g, max.Misses, otf.Misses)
				return false
			}
			if wbwi.Misses < min.Misses {
				t.Logf("%v: WBWI %d < MIN %d", g, wbwi.Misses, min.Misses)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestColdCountsScheduleIndependent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomSyncTrace(rng, 5, 600, 48)
		g := mem.MustGeometry(16)
		var cold []uint64
		for _, name := range Protocols {
			res, err := RunWith(name, tr.Reader(), g)
			if err != nil {
				return false
			}
			cold = append(cold, res.Counts.Cold())
		}
		for _, c := range cold[1:] {
			if c != cold[0] {
				t.Logf("cold counts differ across protocols: %v (%v)", cold, Protocols)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMissCounterMatchesClassifiedTotal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomSyncTrace(rng, 6, 700, 32)
		for _, name := range Protocols {
			for _, g := range geometries() {
				res, err := RunWith(name, tr.Reader(), g)
				if err != nil {
					return false
				}
				if res.Misses != res.Counts.Total() {
					t.Logf("%s %v: counter %d != total %d", name, g, res.Misses, res.Counts.Total())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSaturatedSyncDegeneratesToOTF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := saturate(randomSyncTrace(rng, 4, 300, 32))
		for _, g := range geometries() {
			otf, err := RunWith("OTF", tr.Reader(), g)
			if err != nil {
				return false
			}
			for _, name := range []string{"RD", "SD", "SRD"} {
				res, err := RunWith(name, tr.Reader(), g)
				if err != nil {
					return false
				}
				if res.Misses != otf.Misses {
					t.Logf("%s %v: %d misses, OTF %d", name, g, res.Misses, otf.Misses)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestProtocolsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := randomSyncTrace(rng, 8, 3000, 64)
	g := mem.MustGeometry(32)
	for _, name := range Protocols {
		a, err := RunWith(name, tr.Reader(), g)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunWith(name, tr.Reader(), g)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: two runs disagree:\n%+v\n%+v", name, a, b)
		}
	}
}

func TestSingleProcessorAllProtocolsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := randomSyncTrace(rng, 1, 400, 64)
	g := mem.MustGeometry(16)
	counts, _, err := core.Classify(tr.Reader(), g)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Protocols {
		res, err := RunWith(name, tr.Reader(), g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Misses != counts.Total() || res.Counts.PFS != 0 || res.Counts.PTS != 0 {
			t.Errorf("%s: single-proc run %+v, want all-cold %d", name, res.Counts, counts.Total())
		}
	}
}
