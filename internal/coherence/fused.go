package coherence

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

// This file is the schedules' entry into the fused sweep: one replay of the
// trace (per shard) feeds every protocol's simulator at once, so a whole
// Fig. 6 panel row costs one generation instead of one per protocol.
//
// The fusion is sound because the simulators are passive consumers: each
// keeps its own lifetime table, buffers and credit books, keyed by block,
// and reads nothing from the drive but the reference stream itself. Feeding
// N simulators from one stream is therefore exactly N independent replays
// of the same stream, and each Finish returns precisely the per-cell
// result. Sharding composes the same way it does per cell: all state is
// block-keyed and sync references are broadcast, so the shard-native
// streams drive every simulator through the serial schedule restricted to
// its blocks.

// Fusible reports whether the named protocol's simulator may join a fused
// multi-protocol pass. Every built-in schedule qualifies — the simulators
// are all passive block-keyed consumers — but the predicate is the
// extension point: a future protocol whose state couples to the drive loop
// (e.g. one that rewinds or peeks the stream) returns false here and the
// drivers fall back to per-cell replays for the whole grid row. Unknown
// names are not fusible.
func Fusible(name string) bool {
	switch name {
	case "MIN", "OTF", "RD", "SD", "SRD", "WBWI", "MAX", "WU", "CU":
		return true
	}
	return false
}

// multiSim feeds one reference stream to several simulators at once.
type multiSim struct{ sims []Simulator }

func (m *multiSim) Ref(r trace.Ref) {
	for _, s := range m.sims {
		s.Ref(r)
	}
}

// RefBatch implements trace.BatchConsumer, handing each simulator the whole
// batch so the per-batch drive overhead is paid once per simulator, not
// once per reference.
func (m *multiSim) RefBatch(refs []trace.Ref) {
	for _, s := range m.sims {
		if bc, ok := s.(trace.BatchConsumer); ok {
			bc.RefBatch(refs)
		} else {
			for _, r := range refs {
				s.Ref(r)
			}
		}
	}
}

func (m *multiSim) finish() []Result {
	out := make([]Result, len(m.sims))
	for i, s := range m.sims {
		out[i] = s.Finish()
	}
	return out
}

// mergeResultSlices folds two shards' per-protocol results element-wise.
func mergeResultSlices(a, b []Result) []Result {
	for i := range a {
		a[i] = MergeResults(a[i], b[i])
	}
	return a
}

// RunProtocolsShardedOpen replays the named protocols in one fused pass
// over shard-native streams: each shard opens its own reader via
// open(shard) (see core.RunShardedOpen) and drives all the protocols'
// simulators from it.
// The results are returned in protocol order and are bit-for-bit the
// results of RunWith per protocol, for every shard count; shards <= 1 is a
// single serial fused replay. Every protocol must satisfy Fusible.
func RunProtocolsShardedOpen(ctx context.Context, open func(shard int) (trace.Reader, error), procs int, g mem.Geometry, protos []string, shards int) ([]Result, error) {
	if len(protos) == 0 {
		return nil, nil
	}
	for _, name := range protos {
		if !Fusible(name) {
			return nil, fmt.Errorf("coherence: protocol %q cannot join a fused pass", name)
		}
	}
	n := shards
	if n < 1 {
		n = 1
	}
	groups := make([]*multiSim, n)
	for i := range groups {
		sims := make([]Simulator, len(protos))
		for j, name := range protos {
			sim, err := New(name, procs, g)
			if err != nil {
				return nil, err
			}
			sims[j] = sim
		}
		groups[i] = &multiSim{sims: sims}
	}
	return core.RunShardedOpen(ctx, open, shards, trace.BlockShard(g, shards),
		func(i int) *multiSim { return groups[i] },
		(*multiSim).finish,
		mergeResultSlices)
}
