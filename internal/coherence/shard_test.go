package coherence

// Shard-invariance differential suite for the invalidation schedules: the
// block-sharded pipeline must reproduce the serial Result — misses,
// decomposition, invalidations, upgrades, write-throughs and updates —
// bit for bit for every schedule, including the delayed ones whose drain
// points (acquire/release) reach every shard via the demux broadcast.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/trace"
)

var shardCounts = []int{1, 2, 3, 8, 64}

// shardedProtocols is every schedule the differential suite must cover:
// the paper's seven plus the update-based extensions.
func shardedProtocols() []string {
	return append(append([]string{}, Protocols...), ExtensionProtocols...)
}

// TestShardedProtocolMatchesSerial checks, for every schedule and shard
// count, that the merged sharded Result equals the serial RunWith Result
// in every field.
func TestShardedProtocolMatchesSerial(t *testing.T) {
	for _, name := range shardedProtocols() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				tr := randomSyncTrace(rng, 6, 700, 56)
				for _, g := range []mem.Geometry{mem.MustGeometry(8), mem.MustGeometry(64)} {
					want, err := RunWith(name, tr.Reader(), g)
					if err != nil {
						t.Log(err)
						return false
					}
					for _, n := range shardCounts {
						got, err := RunSharded(name, tr.Reader(), g, n)
						if err != nil {
							t.Log(err)
							return false
						}
						if got != want {
							t.Logf("%s %v shards=%d:\n got %+v\nwant %+v", name, g, n, got, want)
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardedProtocolCrossChecks re-asserts the paper's structural
// identities on MERGED results: MIN equals the essential count with no
// false sharing, OTF's decomposition equals the Appendix-A classification,
// and each protocol's internal miss counter matches its classified total.
func TestShardedProtocolCrossChecks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomSyncTrace(rng, 5, 600, 40)
		g := mem.MustGeometry(32)
		const n = 8
		minRes, err := RunSharded("MIN", tr.Reader(), g, n)
		if err != nil {
			t.Log(err)
			return false
		}
		otfRes, err := RunSharded("OTF", tr.Reader(), g, n)
		if err != nil {
			t.Log(err)
			return false
		}
		if minRes.Counts.PFS != 0 {
			t.Logf("sharded MIN has false sharing: %+v", minRes.Counts)
			return false
		}
		if minRes.Misses != otfRes.Counts.Essential() {
			t.Logf("sharded MIN misses %d != essential %d", minRes.Misses, otfRes.Counts.Essential())
			return false
		}
		for _, res := range []Result{minRes, otfRes} {
			if res.Misses != res.Counts.Total() {
				t.Logf("%s: miss counter %d != classified total %d", res.Protocol, res.Misses, res.Counts.Total())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedUnknownProtocol pins the validation path: an unknown name must
// fail before the demux starts and must still close the source reader.
func TestShardedUnknownProtocol(t *testing.T) {
	tr := trace.New(2, trace.L(0, 0))
	if _, err := RunSharded("BOGUS", tr.Reader(), mem.MustGeometry(16), 4); err == nil {
		t.Fatal("expected an error for an unknown protocol")
	}
}
