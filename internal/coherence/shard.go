package coherence

import (
	"context"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

// MergeResults folds two shard Results of the same protocol into one:
// every count is additive over a partition of the block space. The
// protocol name is taken from a.
func MergeResults(a, b Result) Result {
	a.Counts = a.Counts.Add(b.Counts)
	a.DataRefs += b.DataRefs
	a.Misses += b.Misses
	a.Invalidations += b.Invalidations
	a.Upgrades += b.Upgrades
	a.WriteThroughs += b.WriteThroughs
	a.Updates += b.Updates
	return a
}

// RunSharded replays a trace stream through the named protocol with the
// block space partitioned across shards parallel simulators and merges the
// per-shard Results.
//
// Every simulator's state is keyed by block — the per-processor structures
// (RD/SRD invalidation buffers, SD/SRD store buffers, MAX credit books)
// hold per-block entries — and the demux broadcasts synchronization
// references to every shard, so each shard replays exactly the serial
// schedule restricted to its blocks. The merged Result is identical to
// RunWith's for every shard count; shards <= 1 is exactly RunWith.
func RunSharded(name string, r trace.Reader, g mem.Geometry, shards int) (Result, error) {
	return RunShardedContext(context.Background(), name, r, g, shards)
}

// RunShardedContext is RunSharded with a cancellation context; see
// core.RunShardedContext.
func RunShardedContext(ctx context.Context, name string, r trace.Reader, g mem.Geometry, shards int) (Result, error) {
	if shards < 1 {
		shards = 1
	}
	procs := r.NumProcs()
	sims := make([]Simulator, shards)
	for i := range sims {
		sim, err := New(name, procs, g)
		if err != nil {
			trace.CloseReader(r) //nolint:errcheck // error path cleanup
			return Result{}, err
		}
		sims[i] = sim
	}
	return core.RunShardedContext(ctx, r, shards, trace.BlockShard(g, shards),
		func(i int) Simulator { return sims[i] },
		Simulator.Finish,
		MergeResults)
}
