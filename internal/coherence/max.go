package coherence

import (
	"math/bits"

	"repro/internal/dense"
	"repro/internal/mem"
	"repro/internal/trace"
)

// MAX is the worst-case propagation of invalidations consistent with
// release consistency (§4): each store may be performed — independently per
// receiving processor — at any time between its issue and the issuing
// processor's next release, and the schedule is chosen to maximize misses.
//
// The simulator plays the adversary with a greedy that dominates every
// legal schedule on infinite caches: every store grants one invalidation
// "credit" per remote processor, alive until the sender's next release.
// Just before a processor touches a block it holds, the adversary spends one
// live credit against it, performing that invalidation first so the access
// misses. Credits still alive at the sender's release are performed then
// (release consistency requires it), invalidating whatever copies remain so
// their owners' next accesses miss too. Invalidating can never reduce
// future misses in an infinite cache, so an access misses under this greedy
// whenever it could miss under any legal schedule.
type MAX struct {
	base
	blocks *dense.Map[maxBlock]
	// issuedSlab holds one cell per contested block (procs counters);
	// consumedSlab holds one cell per block that spent a credit
	// (procs*procs counters, flattened [sender*procs+receiver]). Both are
	// lazy: most blocks are never contested.
	issuedSlab   *dense.Arena[uint32]
	consumedSlab *dense.Arena[uint32]
	open         [][]mem.Block // per sender: blocks with credits issued since its last release
}

type maxBlock struct {
	present uint64
	owner   int8
	// issued is the arena handle of per-sender credit counts since that
	// sender's last release; consumed the handle of per-(sender,receiver)
	// spent counts. 0 means not yet allocated.
	issued   uint32
	consumed uint32
}

// NewMAX returns a worst-case-schedule simulator.
func NewMAX(procs int, g mem.Geometry) *MAX {
	return &MAX{
		base:         newBase("MAX", procs, g),
		blocks:       dense.NewMap[maxBlock](0),
		issuedSlab:   dense.NewArena[uint32](procs),
		consumedSlab: dense.NewArena[uint32](procs * procs),
		open:         make([][]mem.Block, procs),
	}
}

func (s *MAX) block(b mem.Block) *maxBlock {
	mb, existed := s.blocks.GetOrPut(uint64(b))
	if !existed {
		mb.owner = -1
	}
	return mb
}

// Ref implements trace.Consumer.
func (s *MAX) Ref(r trace.Ref) {
	p := int(r.Proc)
	switch r.Kind {
	case trace.Load, trace.Store:
		s.access(p, r.Addr, r.Kind == trace.Store)
	case trace.Release:
		s.releaseCredits(p)
	}
}

// RefBatch implements trace.BatchConsumer.
func (s *MAX) RefBatch(refs []trace.Ref) {
	for _, r := range refs {
		s.Ref(r)
	}
}

func (s *MAX) access(p int, a mem.Addr, store bool) {
	s.dataRefs++
	blk := s.g.BlockOf(a)
	mb := s.block(blk)
	bit := uint64(1) << uint(p)

	// Adversary move: if p holds a copy and some sender has a live
	// credit against p on this block, perform that invalidation just
	// before the access so the access misses.
	if mb.present&bit != 0 && s.spendCredit(mb, p) {
		mb.present &^= bit
		s.invalidate(p, blk)
	}

	missed := mb.present&bit == 0
	if missed {
		s.miss(p, a)
		mb.present |= bit
	}
	s.life.Access(p, a)

	if store {
		if !missed && mb.owner != int8(p) {
			s.upgrades++
		}
		mb.owner = int8(p)
		s.life.RecordStore(p, a)
		// Issue one credit per remote processor.
		if mb.issued == 0 {
			mb.issued = s.issuedSlab.Alloc()
		}
		issued := s.issuedSlab.Slice(mb.issued)
		if issued[p] == 0 {
			s.open[p] = append(s.open[p], blk)
		}
		issued[p]++
	}
}

// spendCredit consumes one live credit targeting processor q's copy, if any
// sender has one, and reports whether it did.
func (s *MAX) spendCredit(mb *maxBlock, q int) bool {
	if mb.issued == 0 {
		return false
	}
	issued := s.issuedSlab.Slice(mb.issued)
	for sender := range issued {
		if sender == q || issued[sender] == 0 {
			continue
		}
		if s.consumedCount(mb, sender, q) >= issued[sender] {
			continue
		}
		s.consumedRow(mb, sender)[q]++
		return true
	}
	return false
}

func (s *MAX) consumedCount(mb *maxBlock, sender, q int) uint32 {
	if mb.consumed == 0 {
		return 0
	}
	return s.consumedSlab.Slice(mb.consumed)[sender*s.procs+q]
}

func (s *MAX) consumedRow(mb *maxBlock, sender int) []uint32 {
	if mb.consumed == 0 {
		mb.consumed = s.consumedSlab.Alloc()
	}
	row := sender * s.procs
	return s.consumedSlab.Slice(mb.consumed)[row : row+s.procs]
}

// releaseCredits is the deadline: all of sender p's open credits must be
// performed now. Each remaining copy with an unspent credit from p is
// invalidated; the credit books for p are then cleared.
func (s *MAX) releaseCredits(p int) {
	for _, blk := range s.open[p] {
		mb := s.blocks.Get(uint64(blk))
		issued := s.issuedSlab.Slice(mb.issued)
		if issued[p] == 0 {
			continue
		}
		targets := mb.present &^ (1 << uint(p))
		for targets != 0 {
			q := bits.TrailingZeros64(targets)
			qbit := uint64(1) << uint(q)
			targets &^= qbit
			if s.consumedCount(mb, p, q) >= issued[p] {
				continue // every credit already spent on q
			}
			mb.present &^= qbit
			s.invalidate(q, blk)
		}
		issued[p] = 0
		if mb.consumed != 0 {
			clear(s.consumedRow(mb, p))
		}
	}
	s.open[p] = s.open[p][:0]
}

// Finish implements Simulator. Credits never released stay unperformed:
// performing them could only invalidate copies nobody touches again.
func (s *MAX) Finish() Result { return s.result() }
