// Package dense provides the flat data structures behind the replay hot
// path: an open-addressing hash map from uint64 keys (cache blocks, word
// addresses) to inline values, and a slab arena for fixed-size per-block
// state vectors.
//
// The classifiers and protocol simulators used to key their per-block state
// as map[mem.Block]*blockState: every reference paid a runtime map probe
// plus a pointer chase, and every newly touched block paid one heap
// allocation for the state struct and more for its slices. Map stores the
// values inline in the probe table (one cache line holds the key and the
// hot bitmasks) and Arena packs the per-block vectors (per-word definitions,
// per-processor bases, pending-invalidation masks) into a handful of large
// slabs, so the steady-state replay loop allocates nothing.
package dense

// emptySlot marks an unoccupied map slot. Keys are stored as key+1 so that
// key 0 (block 0, address 0) remains representable.
const emptySlot = 0

// minCapacity is the smallest probe-table size.
const minCapacity = 16

// Map is an open-addressing, linear-probing hash map from uint64 keys to
// inline values of type V. The zero Map is not ready for use; call NewMap.
//
// Pointers returned by Get and GetOrPut are valid until the next insertion
// (an insertion may grow and rehash the table); re-derive them after any
// call that can insert. Map has no delete: the replay state it backs only
// grows. Range iterates in table order, which is deterministic for a given
// insertion sequence.
type Map[V any] struct {
	keys  []uint64 // key+1; emptySlot marks a free slot
	vals  []V
	n     int
	mask  uint64
	shift uint
}

// NewMap returns a Map sized for about hint entries (hint may be 0).
func NewMap[V any](hint int) *Map[V] {
	capacity := minCapacity
	for capacity*3 < hint*4 { // keep the load factor under 3/4 at hint
		capacity *= 2
	}
	m := &Map[V]{}
	m.init(capacity)
	return m
}

func (m *Map[V]) init(capacity int) {
	m.keys = make([]uint64, capacity)
	m.vals = make([]V, capacity)
	m.mask = uint64(capacity - 1)
	m.shift = 64 - log2(capacity)
}

func log2(n int) uint {
	var s uint
	for 1<<s < n {
		s++
	}
	return s
}

// slot returns the preferred probe slot for key k: Fibonacci hashing spreads
// the sequential block numbers produced by array-walking workloads across
// the table instead of clustering them.
func (m *Map[V]) slot(k uint64) uint64 {
	return (k * 0x9E3779B97F4A7C15) >> m.shift
}

// Len returns the number of entries.
func (m *Map[V]) Len() int { return m.n }

// Get returns a pointer to k's value, or nil if k is absent. The pointer is
// invalidated by the next insertion.
func (m *Map[V]) Get(k uint64) *V {
	sk := k + 1
	for i := m.slot(k); ; i = (i + 1) & m.mask {
		switch m.keys[i] {
		case sk:
			return &m.vals[i]
		case emptySlot:
			return nil
		}
	}
}

// GetOrPut returns a pointer to k's value, inserting a zero value first if k
// is absent, and reports whether the key already existed. The pointer is
// invalidated by the next insertion.
func (m *Map[V]) GetOrPut(k uint64) (*V, bool) {
	sk := k + 1
	for i := m.slot(k); ; i = (i + 1) & m.mask {
		switch m.keys[i] {
		case sk:
			return &m.vals[i], true
		case emptySlot:
			if m.n*4 >= len(m.keys)*3 { // load factor 3/4: grow and retry
				m.grow()
				return m.GetOrPut(k)
			}
			m.keys[i] = sk
			m.n++
			return &m.vals[i], false
		}
	}
}

func (m *Map[V]) grow() {
	oldKeys, oldVals := m.keys, m.vals
	m.init(len(oldKeys) * 2)
	for i, sk := range oldKeys {
		if sk == emptySlot {
			continue
		}
		k := sk - 1
		for j := m.slot(k); ; j = (j + 1) & m.mask {
			if m.keys[j] == emptySlot {
				m.keys[j] = sk
				m.vals[j] = oldVals[i]
				break
			}
		}
	}
}

// Range calls fn for every entry, in table order. fn must not insert.
func (m *Map[V]) Range(fn func(k uint64, v *V)) {
	for i, sk := range m.keys {
		if sk != emptySlot {
			fn(sk-1, &m.vals[i])
		}
	}
}

// Arena is a slab allocator for fixed-size cells of T, used for the
// per-block state vectors (per-word definition stamps, per-processor bases,
// pending-invalidation masks). Cells are addressed by uint32 handles;
// handle 0 is reserved as the "no cell" sentinel, so a zero-valued handle
// field in a map entry means the vector was never allocated.
//
// Slices returned by Slice alias the slab and are invalidated by the next
// Alloc (the slab may grow); re-derive them after any allocation.
type Arena[T any] struct {
	cell int
	slab []T
	free []uint32
}

// NewArena returns an Arena whose cells hold cell elements of T each.
func NewArena[T any](cell int) *Arena[T] {
	if cell <= 0 {
		panic("dense: non-positive arena cell size")
	}
	return &Arena[T]{cell: cell, slab: make([]T, cell)} // cell 0 is the sentinel
}

// Alloc returns a handle to a zeroed cell.
func (a *Arena[T]) Alloc() uint32 {
	if n := len(a.free); n > 0 {
		h := a.free[n-1]
		a.free = a.free[:n-1]
		clear(a.slab[int(h)*a.cell : (int(h)+1)*a.cell])
		return h
	}
	h := uint32(len(a.slab) / a.cell)
	n := len(a.slab) + a.cell
	if n <= cap(a.slab) {
		// The region between len and cap has never been written (the
		// slab only grows), so it is still zeroed allocator memory.
		a.slab = a.slab[:n]
	} else {
		// Grow in one step: doubling amortizes the copy, and the floor of
		// 64 cells keeps a cold arena from re-copying through the tiny
		// early capacities cell by cell.
		newCap := 2 * cap(a.slab)
		if floor := 64 * a.cell; newCap < floor {
			newCap = floor
		}
		if newCap < n {
			newCap = n
		}
		grown := make([]T, n, newCap)
		copy(grown, a.slab)
		a.slab = grown
	}
	return h
}

// Free returns a cell to the arena's freelist. Freeing handle 0 panics.
func (a *Arena[T]) Free(h uint32) {
	if h == 0 {
		panic("dense: free of the sentinel cell")
	}
	a.free = append(a.free, h)
}

// Slice returns cell h's backing slice (length = the cell size). The slice
// is invalidated by the next Alloc.
func (a *Arena[T]) Slice(h uint32) []T {
	i := int(h) * a.cell
	return a.slab[i : i+a.cell : i+a.cell]
}

// Slab returns the whole backing slab; cell h occupies elements
// [h*cell, (h+1)*cell). Hot loops that touch many cells hoist the slab once
// instead of re-slicing per cell. Like Slice results, the slab is
// invalidated by the next Alloc.
func (a *Arena[T]) Slab() []T { return a.slab }

// Cells returns the number of live cells ever allocated, excluding the
// sentinel and cells currently on the freelist.
func (a *Arena[T]) Cells() int { return len(a.slab)/a.cell - 1 - len(a.free) }
