package dense

// Microbenchmarks for the flat replay structures, so `make bench` (which
// sweeps ./...) tracks the probe-table and arena costs the classifiers are
// built on, independently of any workload above them.

import "testing"

// benchKeys returns n pseudo-sequential block keys: array-walking workloads
// produce runs of adjacent blocks, the access pattern the Fibonacci slot
// hash has to spread.
func benchKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)*4 + uint64(i%3) // three interleaved strides
	}
	return keys
}

func BenchmarkMapGetOrPut(b *testing.B) {
	keys := benchKeys(1 << 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMap[uint64](len(keys))
		for _, k := range keys {
			v, _ := m.GetOrPut(k)
			*v++
		}
	}
}

func BenchmarkMapGetHot(b *testing.B) {
	keys := benchKeys(1 << 12)
	m := NewMap[uint64](len(keys))
	for _, k := range keys {
		v, _ := m.GetOrPut(k)
		*v = k
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum uint64
		for _, k := range keys {
			sum += *m.Get(k)
		}
		if sum == 0 {
			b.Fatal("lookups lost")
		}
	}
}

func BenchmarkMapGrowFromEmpty(b *testing.B) {
	keys := benchKeys(1 << 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMap[uint64](0) // every doubling from minCapacity up
		for _, k := range keys {
			m.GetOrPut(k)
		}
	}
}

func BenchmarkArenaAllocSlice(b *testing.B) {
	const cells = 1 << 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewArena[uint32](16)
		for c := 0; c < cells; c++ {
			h := a.Alloc()
			s := a.Slice(h)
			s[0] = uint32(c)
		}
	}
}

func BenchmarkArenaReuse(b *testing.B) {
	a := NewArena[uint32](16)
	h := a.Alloc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Free(h)
		h = a.Alloc() // freelist hit: no slab growth, a clear and a pop
	}
}
