package dense

// Hier resolves per-level state handles for a hierarchy of nested block
// granularities with a single fine-granularity map probe. It is the state
// backbone of the fused multi-configuration replay: block sizes are powers
// of two, so the blocks of every coarser level nest exactly inside the
// blocks of the finest level, and a level-l block number is the fine block
// number shifted right by the level's extra shift.
//
// Hier keys everything by the finest block. The steady-state lookup
// (Handles on an already-seen fine block) is one Map probe plus one Arena
// slice: the per-level handles for that fine block were resolved on first
// touch and cached in one arena cell. The per-level coarse maps are only
// consulted when a fine block is touched for the first time, to decide
// whether the enclosing coarse block already has state (another fine block
// inside it was touched earlier) or needs a fresh allocation.
//
// Hier does not own the per-level state; the alloc callback allocates it
// (typically an Arena cell in the caller) and Hier only routes handles.
// Levels with an extra shift of 0 (the finest level, and any duplicate of
// it) skip their coarse map entirely: a new fine block is a new level
// block by definition.
type Hier struct {
	// shifts[l] is level l's extra shift: level-l block = fine block >> shifts[l].
	shifts []uint
	// fine maps a fine block to its cells-arena handle.
	fine *Map[uint32]
	// coarse[l] maps a level-l block to its state handle; nil when
	// shifts[l] == 0 (the fine map already keys that level exactly).
	coarse []*Map[uint32]
	// cells holds one uint32 state handle per level for each fine block.
	cells *Arena[uint32]
	// alloc returns a fresh state handle for level l. It must not call
	// back into this Hier.
	alloc func(level int) uint32
}

// NewHier returns a Hier for the given per-level extra shifts (relative to
// the finest granularity; the finest level has shift 0). alloc is invoked
// once per new level block to allocate its state. It panics on an empty
// hierarchy or a nil alloc.
func NewHier(shifts []uint, alloc func(level int) uint32) *Hier {
	if len(shifts) == 0 {
		panic("dense: empty hierarchy")
	}
	if alloc == nil {
		panic("dense: nil hier alloc")
	}
	h := &Hier{
		shifts: append([]uint(nil), shifts...),
		fine:   NewMap[uint32](0),
		coarse: make([]*Map[uint32], len(shifts)),
		cells:  NewArena[uint32](len(shifts)),
		alloc:  alloc,
	}
	for l, s := range shifts {
		if s > 0 {
			h.coarse[l] = NewMap[uint32](0)
		}
	}
	return h
}

// Levels returns the number of levels.
func (h *Hier) Levels() int { return len(h.shifts) }

// Shift returns level l's extra shift relative to the finest granularity.
func (h *Hier) Shift(l int) uint { return h.shifts[l] }

// Handles returns the per-level state handles for fine block fb, allocating
// state for any level block seen for the first time. The returned slice
// aliases the cell arena: it is valid until the next Handles call that
// touches a new fine block, and must not be retained.
func (h *Hier) Handles(fb uint64) []uint32 {
	cell, existed := h.fine.GetOrPut(fb)
	if existed {
		return h.cells.Slice(*cell)
	}
	// First touch of this fine block: resolve every level. The alloc
	// callback and the coarse maps never touch h.fine or h.cells, so the
	// cell pointer from GetOrPut stays valid across the loop.
	c := h.cells.Alloc()
	hs := h.cells.Slice(c)
	for l, s := range h.shifts {
		if s == 0 {
			// A new fine block is a new level block: no coarse probe.
			hs[l] = h.alloc(l)
			continue
		}
		lh, ok := h.coarse[l].GetOrPut(fb >> s)
		if !ok {
			*lh = h.alloc(l)
		}
		hs[l] = *lh
	}
	*cell = c
	return hs
}

// RangeLevel calls fn for every level-l block with allocated state, with
// the level-l block number and its state handle, in map table order
// (deterministic for a given insertion sequence). fn must not call Handles.
func (h *Hier) RangeLevel(l int, fn func(block uint64, handle uint32)) {
	if h.coarse[l] != nil {
		h.coarse[l].Range(func(b uint64, v *uint32) { fn(b, *v) })
		return
	}
	h.fine.Range(func(fb uint64, cell *uint32) {
		fn(fb, h.cells.Slice(*cell)[l])
	})
}

// LevelBlocks returns the number of distinct level-l blocks with state.
func (h *Hier) LevelBlocks(l int) int {
	if h.coarse[l] != nil {
		return h.coarse[l].Len()
	}
	return h.fine.Len()
}
