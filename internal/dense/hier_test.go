package dense

import (
	"testing"
)

// newTestHier builds a Hier whose per-level state is a cell in one shared
// arena, tagging each allocation with its level so tests can check routing.
func newTestHier(t *testing.T, shifts []uint) (*Hier, *Arena[uint64]) {
	t.Helper()
	state := NewArena[uint64](1)
	h := NewHier(shifts, func(level int) uint32 {
		hdl := state.Alloc()
		state.Slice(hdl)[0] = uint64(level)<<32 | uint64(hdl)
		return hdl
	})
	return h, state
}

func TestHierNesting(t *testing.T) {
	// Levels: fine (shift 0), 4x coarser (shift 2), 16x coarser (shift 4).
	h, _ := newTestHier(t, []uint{0, 2, 4})
	if h.Levels() != 3 {
		t.Fatalf("Levels() = %d, want 3", h.Levels())
	}
	if h.Shift(1) != 2 {
		t.Fatalf("Shift(1) = %d, want 2", h.Shift(1))
	}

	// Fine blocks 0..3 share level-1 block 0 and level-2 block 0.
	first := append([]uint32(nil), h.Handles(0)...)
	for fb := uint64(1); fb < 4; fb++ {
		hs := h.Handles(fb)
		if hs[0] == first[0] {
			t.Fatalf("fine block %d shares level-0 state with block 0", fb)
		}
		if hs[1] != first[1] {
			t.Fatalf("fine block %d: level-1 handle %d, want shared %d", fb, hs[1], first[1])
		}
		if hs[2] != first[2] {
			t.Fatalf("fine block %d: level-2 handle %d, want shared %d", fb, hs[2], first[2])
		}
	}
	// Fine block 4 starts a new level-1 block but stays in level-2 block 0.
	hs := h.Handles(4)
	if hs[1] == first[1] {
		t.Fatalf("fine block 4 must not share level-1 state with block 0")
	}
	if hs[2] != first[2] {
		t.Fatalf("fine block 4: level-2 handle %d, want shared %d", hs[2], first[2])
	}
	// Fine block 16 starts a new block at every level.
	hs = h.Handles(16)
	if hs[1] == first[1] || hs[2] == first[2] {
		t.Fatalf("fine block 16 must not share coarse state with block 0: %v vs %v", hs, first)
	}

	if got := h.LevelBlocks(0); got != 6 {
		t.Errorf("LevelBlocks(0) = %d, want 6", got)
	}
	if got := h.LevelBlocks(1); got != 3 {
		t.Errorf("LevelBlocks(1) = %d, want 3", got)
	}
	if got := h.LevelBlocks(2); got != 2 {
		t.Errorf("LevelBlocks(2) = %d, want 2", got)
	}
}

func TestHierHandlesStable(t *testing.T) {
	h, _ := newTestHier(t, []uint{0, 3})
	want := map[uint64][]uint32{}
	for fb := uint64(0); fb < 64; fb++ {
		want[fb] = append([]uint32(nil), h.Handles(fb)...)
	}
	// Re-probing returns the same handles in any order.
	for fb := uint64(63); ; fb-- {
		got := h.Handles(fb)
		for l := range got {
			if got[l] != want[fb][l] {
				t.Fatalf("fine block %d level %d: handle %d, want %d", fb, l, got[l], want[fb][l])
			}
		}
		if fb == 0 {
			break
		}
	}
}

func TestHierDuplicateLevels(t *testing.T) {
	// Duplicate granularities get independent state: two shift-0 levels and
	// two shift-1 levels must never share handles (the test arena tags
	// handles with their level, so equal handles would collide anyway).
	h, state := newTestHier(t, []uint{0, 0, 1, 1})
	for fb := uint64(0); fb < 8; fb++ {
		hs := h.Handles(fb)
		if hs[0] == hs[1] || hs[2] == hs[3] {
			t.Fatalf("fine block %d: duplicate levels share state: %v", fb, hs)
		}
		for l, hdl := range hs {
			if lvl := state.Slice(hdl)[0] >> 32; int(lvl) != l {
				t.Fatalf("fine block %d level %d resolved to level-%d state", fb, l, lvl)
			}
		}
	}
}

func TestHierRangeLevel(t *testing.T) {
	h, _ := newTestHier(t, []uint{0, 2})
	handles := map[int]map[uint64]uint32{0: {}, 1: {}}
	for fb := uint64(0); fb < 10; fb++ {
		hs := h.Handles(fb)
		handles[0][fb] = hs[0]
		handles[1][fb>>2] = hs[1]
	}
	for l := 0; l < 2; l++ {
		seen := map[uint64]uint32{}
		h.RangeLevel(l, func(b uint64, hdl uint32) {
			if _, dup := seen[b]; dup {
				t.Fatalf("level %d block %d visited twice", l, b)
			}
			seen[b] = hdl
		})
		if len(seen) != len(handles[l]) {
			t.Fatalf("level %d: ranged %d blocks, want %d", l, len(seen), len(handles[l]))
		}
		for b, hdl := range handles[l] {
			if seen[b] != hdl {
				t.Fatalf("level %d block %d: ranged handle %d, want %d", l, b, seen[b], hdl)
			}
		}
	}
}

func TestHierPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty hierarchy", func() { NewHier(nil, func(int) uint32 { return 0 }) })
	mustPanic("nil alloc", func() { NewHier([]uint{0}, nil) })
}
