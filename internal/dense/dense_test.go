package dense

import (
	"math/rand"
	"testing"
)

func TestMapBasic(t *testing.T) {
	m := NewMap[uint64](0)
	if m.Len() != 0 {
		t.Fatalf("new map has %d entries", m.Len())
	}
	if got := m.Get(0); got != nil {
		t.Fatalf("Get(0) on empty map = %v, want nil", got)
	}
	v, existed := m.GetOrPut(0)
	if existed {
		t.Fatal("GetOrPut(0) reported an existing key on an empty map")
	}
	if *v != 0 {
		t.Fatalf("fresh value = %d, want zero", *v)
	}
	*v = 42
	if got := m.Get(0); got == nil || *got != 42 {
		t.Fatalf("Get(0) = %v, want 42", got)
	}
	v, existed = m.GetOrPut(0)
	if !existed || *v != 42 {
		t.Fatalf("GetOrPut(0) = %d existed=%v, want 42 true", *v, existed)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

// TestMapAgainstBuiltin drives the dense map and a builtin map with the same
// random key sequence (including key 0 and huge keys) through growth.
func TestMapAgainstBuiltin(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMap[uint64](0)
	ref := map[uint64]uint64{}
	keys := make([]uint64, 0, 4096)
	for i := 0; i < 4096; i++ {
		var k uint64
		switch rng.Intn(4) {
		case 0:
			k = uint64(rng.Intn(64)) // clustered small keys
		case 1:
			k = rng.Uint64() >> 1 // sparse huge keys
		default:
			k = uint64(rng.Intn(1 << 20)) // block-number-like keys
		}
		v, existed := m.GetOrPut(k)
		if _, ok := ref[k]; ok != existed {
			t.Fatalf("key %d: existed=%v, builtin says %v", k, existed, ok)
		}
		if !existed {
			keys = append(keys, k)
		}
		*v += k + 1
		ref[k] += k + 1
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(ref))
	}
	for k, want := range ref {
		got := m.Get(k)
		if got == nil || *got != want {
			t.Fatalf("Get(%d) = %v, want %d", k, got, want)
		}
	}
	// Absent keys stay absent.
	for i := 0; i < 1000; i++ {
		k := rng.Uint64()>>1 | 1<<62
		if _, ok := ref[k]; !ok && m.Get(k) != nil {
			t.Fatalf("Get(%d) found a never-inserted key", k)
		}
	}
	// Range visits every entry exactly once.
	seen := map[uint64]uint64{}
	m.Range(func(k uint64, v *uint64) { seen[k] = *v })
	if len(seen) != len(ref) {
		t.Fatalf("Range visited %d entries, want %d", len(seen), len(ref))
	}
	for k, v := range ref {
		if seen[k] != v {
			t.Fatalf("Range saw %d=%d, want %d", k, seen[k], v)
		}
	}
	_ = keys
}

func TestMapHint(t *testing.T) {
	m := NewMap[uint32](1000)
	if len(m.keys) < 1334 { // 1000 entries must fit under a 3/4 load factor
		t.Fatalf("hinted capacity %d too small for 1000 entries", len(m.keys))
	}
	for i := uint64(0); i < 1000; i++ {
		v, existed := m.GetOrPut(i * 7)
		if existed {
			t.Fatalf("key %d reported existing", i*7)
		}
		*v = uint32(i)
	}
	for i := uint64(0); i < 1000; i++ {
		if got := m.Get(i * 7); got == nil || *got != uint32(i) {
			t.Fatalf("Get(%d) = %v, want %d", i*7, got, i)
		}
	}
}

func TestArena(t *testing.T) {
	a := NewArena[uint64](4)
	h1 := a.Alloc()
	h2 := a.Alloc()
	if h1 == 0 || h2 == 0 || h1 == h2 {
		t.Fatalf("handles %d, %d: want distinct non-zero", h1, h2)
	}
	s1 := a.Slice(h1)
	if len(s1) != 4 {
		t.Fatalf("cell length %d, want 4", len(s1))
	}
	for i := range s1 {
		if s1[i] != 0 {
			t.Fatalf("fresh cell not zeroed: %v", s1)
		}
		s1[i] = uint64(100 + i)
	}
	if got := a.Slice(h2); got[0] != 0 {
		t.Fatalf("cell 2 contaminated: %v", got)
	}
	if got := a.Slice(h1); got[3] != 103 {
		t.Fatalf("cell 1 lost its values: %v", got)
	}
	if a.Cells() != 2 {
		t.Fatalf("Cells = %d, want 2", a.Cells())
	}

	// Free and re-alloc: the recycled cell must come back zeroed.
	a.Free(h1)
	if a.Cells() != 1 {
		t.Fatalf("Cells after Free = %d, want 1", a.Cells())
	}
	h3 := a.Alloc()
	if h3 != h1 {
		t.Fatalf("recycled handle %d, want %d", h3, h1)
	}
	for _, v := range a.Slice(h3) {
		if v != 0 {
			t.Fatalf("recycled cell not zeroed: %v", a.Slice(h3))
		}
	}
}

func TestArenaGrowthKeepsValues(t *testing.T) {
	a := NewArena[uint32](3)
	handles := make([]uint32, 1000)
	for i := range handles {
		handles[i] = a.Alloc()
		a.Slice(handles[i])[0] = uint32(i + 1)
		a.Slice(handles[i])[2] = uint32(i + 7)
	}
	for i, h := range handles {
		s := a.Slice(h)
		if s[0] != uint32(i+1) || s[1] != 0 || s[2] != uint32(i+7) {
			t.Fatalf("cell %d corrupted after growth: %v", i, s)
		}
	}
}

func TestArenaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Free(0) did not panic")
		}
	}()
	NewArena[uint8](2).Free(0)
}

// TestMapSteadyStateAllocs: once every key has been inserted, probing and
// value updates allocate nothing.
func TestMapSteadyStateAllocs(t *testing.T) {
	m := NewMap[uint64](0)
	for i := uint64(0); i < 300; i++ {
		m.GetOrPut(i * 13)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := uint64(0); i < 300; i++ {
			v, _ := m.GetOrPut(i * 13)
			*v++
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state GetOrPut allocated %v times per run", allocs)
	}
}
