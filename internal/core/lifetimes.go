package core

import (
	"fmt"
	"math/bits"

	"repro/internal/dense"
	"repro/internal/mem"
)

// Lifetimes is the engine behind the paper's Appendix A classification,
// factored out so that any invalidation schedule can have its misses
// decomposed into cold, pure-true-sharing and pure-false-sharing misses.
//
// A lifetime is the interval between a processor's miss on a block and the
// invalidation of the copy that miss loaded (or the end of the run). The
// caller — the on-the-fly Classifier, or one of the protocol simulators —
// tells Lifetimes when misses and invalidations happen under its schedule;
// Lifetimes tracks value communication independently of that schedule.
//
// Where the paper's Appendix A pseudocode keeps one communication (C) bit
// per word and processor, this engine keeps the last definition of each
// word (a logical store timestamp plus the writing processor) and, per
// processor and block, a communication base: the timestamp up to which the
// kept (essential) misses have already delivered values. An access is a
// communication event when it touches a word whose last definition is by
// another processor and newer than the accessor's base. The timestamped
// form is exactly the paper's §2 definition — "a value defined by a
// different processor since the last essential miss" — and unlike single
// bits it cannot conflate a value delivered by the cold miss with a later
// redefinition of the same word. It preserves the identity the paper builds
// MIN on: the MIN protocol's miss count equals the essential miss count
// under every schedule, with no false sharing.
//
// The miss is classified when the lifetime ends: the processor's first
// lifetime on a block is a cold miss (refined into PC/CTS/CFS), later
// lifetimes are PTS when essential and PFS otherwise.
type Lifetimes struct {
	geom   mem.Geometry
	procs  int
	words  int // geom.WordsPerBlock()
	blocks *dense.Map[lifeBlock]
	// slab holds each block's state vector in one arena cell:
	// [0:words) per-word definitions, [words:words+procs) commBase,
	// [words+procs:words+2*procs) openTick.
	slab   *dense.Arena[uint64]
	counts Counts
	tick   uint64 // advances on every RecordStore

	// OnClassify, if set, is called once per classified miss with the
	// processor, the block, and the verdict, at the moment the miss's
	// lifetime closes. Used by the cross-classification analysis.
	OnClassify func(p int, b mem.Block, class Class)
}

// Class is one miss verdict of the paper's classification.
type Class uint8

// The verdicts, in Counts field order.
const (
	ClassPC Class = iota
	ClassCTS
	ClassCFS
	ClassPTS
	ClassPFS
	ClassRepl
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassPC:
		return "PC"
	case ClassCTS:
		return "CTS"
	case ClassCFS:
		return "CFS"
	case ClassPTS:
		return "PTS"
	case ClassPFS:
		return "PFS"
	case ClassRepl:
		return "REPL"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Sharing collapses a verdict into the three-way cold/true/false split used
// when comparing classifications (replacement misses count as essential
// "true" communication-free refetches and are reported separately by
// callers; Sharing maps them to cold for lack of a better bucket — the
// cross analysis never sees them because it runs on infinite caches).
func (c Class) Sharing() SharingClass {
	switch c {
	case ClassPTS:
		return SharingTrue
	case ClassPFS:
		return SharingFalse
	default:
		return SharingCold
	}
}

// SharingClass is a three-way verdict: cold, true sharing, false sharing.
type SharingClass uint8

// The three-way verdicts.
const (
	SharingCold SharingClass = iota
	SharingTrue
	SharingFalse
)

// String implements fmt.Stringer.
func (s SharingClass) String() string {
	switch s {
	case SharingCold:
		return "COLD"
	case SharingTrue:
		return "TRUE"
	case SharingFalse:
		return "FALSE"
	default:
		return fmt.Sprintf("SharingClass(%d)", uint8(s))
	}
}

// A word's last definition is packed as tick<<6 | writer (MaxProcs is 64).
// Zero means never defined.
type wordDef = uint64

// lifeBlock is one block's inline map entry: the per-processor bitmasks live
// in the probe table itself, and the variable-size vectors (per-word
// definitions, commBase, openTick) live in one arena cell reached via state.
type lifeBlock struct {
	open     uint64 // procs with an open lifetime
	em       uint64 // procs whose open lifetime is already essential
	fr       uint64 // procs that have had a lifetime classified (FR flag)
	coldMod  uint64 // procs whose first lifetime opened on an already-modified block
	replNext uint64 // procs whose next lifetime follows a replacement (finite caches)
	replOpen uint64 // procs whose open lifetime followed a replacement
	modified bool   // some processor has stored to this block
	state    uint32 // arena cell: defs | commBase | openTick
}

// defs returns the block's per-word last-definition vector.
func (l *Lifetimes) defs(lb *lifeBlock) []wordDef {
	return l.slab.Slice(lb.state)[:l.words]
}

// commBase returns the block's per-processor communication bases:
// commBase[p] is the tick up to which values have been delivered to p by
// its kept (essential) misses.
func (l *Lifetimes) commBase(lb *lifeBlock) []uint64 {
	return l.slab.Slice(lb.state)[l.words : l.words+l.procs]
}

// openTick returns the block's per-processor lifetime-open ticks: the store
// tick at which p's current lifetime opened; the miss that opened it
// fetched all values defined up to then.
func (l *Lifetimes) openTick(lb *lifeBlock) []uint64 {
	return l.slab.Slice(lb.state)[l.words+l.procs : l.words+2*l.procs]
}

// NewLifetimes returns a Lifetimes engine for the given processor count and
// block geometry. It panics if procs is out of (0, MaxProcs].
func NewLifetimes(procs int, g mem.Geometry) *Lifetimes {
	if procs <= 0 || procs > MaxProcs {
		panic(fmt.Sprintf("core: processor count %d out of range (0,%d]", procs, MaxProcs))
	}
	w := g.WordsPerBlock()
	return &Lifetimes{
		geom:   g,
		procs:  procs,
		words:  w,
		blocks: dense.NewMap[lifeBlock](0),
		slab:   dense.NewArena[uint64](w + 2*procs),
	}
}

// Geometry returns the block geometry the engine was built with.
func (l *Lifetimes) Geometry() mem.Geometry { return l.geom }

// NumProcs returns the processor count.
func (l *Lifetimes) NumProcs() int { return l.procs }

func (l *Lifetimes) block(b mem.Block) *lifeBlock {
	lb, existed := l.blocks.GetOrPut(uint64(b))
	if !existed {
		lb.state = l.slab.Alloc()
	}
	return lb
}

// OpenMiss records a miss by processor p at word address a under the
// caller's schedule, opening a new lifetime. If p still has an open lifetime
// on the block (an upgrade-style miss on a copy that was never explicitly
// invalidated), the old lifetime is classified and closed first.
func (l *Lifetimes) OpenMiss(p int, a mem.Addr) {
	b := l.geom.BlockOf(a)
	lb := l.block(b)
	bit := uint64(1) << uint(p)
	if lb.open&bit != 0 {
		l.classify(lb, b, p, bit)
	}
	lb.open |= bit
	lb.em &^= bit
	l.openTick(lb)[p] = l.tick
	lb.replOpen = lb.replOpen&^bit | lb.replNext&bit
	lb.replNext &^= bit
	if lb.fr&bit == 0 && lb.modified {
		lb.coldMod |= bit
	}
}

// Access records a data access (load or store) by p to word a. If, during
// p's open lifetime, the word's last definition is by another processor and
// newer than everything p's essential misses have delivered, the lifetime
// becomes essential: the miss that opened it is needed, and it delivered
// every value defined up to its own open. Callers must have reported the
// miss (OpenMiss) first when the access missed; accesses without an open
// lifetime are ignored.
func (l *Lifetimes) Access(p int, a mem.Addr) {
	lb := l.blocks.Get(uint64(l.geom.BlockOf(a)))
	if lb == nil {
		return
	}
	bit := uint64(1) << uint(p)
	if lb.open&bit == 0 {
		return
	}
	def := l.defs(lb)[l.geom.OffsetOf(a)]
	commBase := l.commBase(lb)
	if def == 0 || int(def&(MaxProcs-1)) == p || def>>6 <= commBase[p] {
		return
	}
	lb.em |= bit
	if tick := l.openTick(lb)[p]; tick > commBase[p] {
		commBase[p] = tick
	}
}

// RecordStore records that p stored to word a, independently of when the
// caller's schedule propagates the invalidation: the word's last definition
// becomes this store.
func (l *Lifetimes) RecordStore(p int, a mem.Addr) {
	lb := l.block(l.geom.BlockOf(a))
	lb.modified = true
	l.tick++
	l.defs(lb)[l.geom.OffsetOf(a)] = l.tick<<6 | uint64(p)
}

// CloseInvalidate ends p's lifetime on block b because the caller's schedule
// invalidated p's copy, classifying the miss that opened it. Calling it
// without an open lifetime only cancels a pending replacement mark: a block
// that was evicted and then invalidated would miss even with an infinite
// cache, so the next miss is a coherence miss, not a replacement miss.
func (l *Lifetimes) CloseInvalidate(p int, b mem.Block) {
	lb := l.blocks.Get(uint64(b))
	if lb == nil {
		return
	}
	bit := uint64(1) << uint(p)
	lb.replNext &^= bit
	if lb.open&bit == 0 {
		return
	}
	l.classify(lb, b, p, bit)
	lb.open &^= bit
	lb.em &^= bit
}

// CloseReplace ends p's lifetime on block b because p's finite cache
// evicted the copy (§8 extension). The miss that opened the lifetime is
// classified as usual; p's next miss on the block will be a replacement
// miss — essential by definition, since the program still needs the values.
// Calling it without an open lifetime is a no-op.
func (l *Lifetimes) CloseReplace(p int, b mem.Block) {
	lb := l.blocks.Get(uint64(b))
	if lb == nil {
		return
	}
	bit := uint64(1) << uint(p)
	if lb.open&bit == 0 {
		return
	}
	l.classify(lb, b, p, bit)
	lb.open &^= bit
	lb.em &^= bit
	lb.replNext |= bit
}

// classify scores the lifetime of processor p and sets its FR flag.
// The caller adjusts the open/em bits.
func (l *Lifetimes) classify(lb *lifeBlock, b mem.Block, p int, bit uint64) {
	var class Class
	switch {
	case lb.replOpen&bit != 0:
		// The previous copy was evicted, not invalidated: refetching
		// it is essential no matter what is touched. The kept miss
		// delivered every value defined up to its open. A replaced
		// copy implies an earlier lifetime, so FR is already set.
		class = ClassRepl
		l.counts.Repl++
		if commBase, tick := l.commBase(lb), l.openTick(lb)[p]; tick > commBase[p] {
			commBase[p] = tick
		}
	case lb.fr&bit == 0: // first lifetime: a cold miss
		switch {
		case lb.em&bit != 0:
			class = ClassCTS
			l.counts.CTS++
		case lb.coldMod&bit != 0:
			class = ClassCFS
			l.counts.CFS++
		default:
			class = ClassPC
			l.counts.PC++
		}
		lb.fr |= bit
		// The cold miss is essential by definition, so it is kept:
		// it delivered every value defined before it (§2). Later
		// misses can only be essential for newer values.
		if commBase, tick := l.commBase(lb), l.openTick(lb)[p]; tick > commBase[p] {
			commBase[p] = tick
		}
	case lb.em&bit != 0:
		class = ClassPTS
		l.counts.PTS++
	default:
		class = ClassPFS
		l.counts.PFS++
	}
	if l.OnClassify != nil {
		l.OnClassify(p, b, class)
	}
}

// Finish classifies all still-open lifetimes (the paper's end_of_simulation
// step) and returns the totals. The engine must not be used afterwards.
func (l *Lifetimes) Finish() Counts {
	l.blocks.Range(func(b uint64, lb *lifeBlock) {
		open := lb.open
		for open != 0 {
			p := bits.TrailingZeros64(open)
			open &^= 1 << uint(p)
			l.classify(lb, mem.Block(b), p, 1<<uint(p))
		}
		lb.open = 0
		lb.em = 0
	})
	return l.counts
}

// Snapshot returns the counts classified so far, excluding open lifetimes.
func (l *Lifetimes) Snapshot() Counts { return l.counts }
